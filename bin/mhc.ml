(* mhc — the MiniHaskell compiler/interpreter.

   Subcommands:
     check    batch type check; report every diagnostic (--json), print
              the inferred qualified types of clean files
     core     print the dictionary-converted core program
     run      evaluate `main` (--backend tree|vm)
     counters evaluate `main` and report operation counters
     trace    print the structured compile-time event trace (--json)
     profile  rank overloaded dispatch sites by run-time hits (--json)
     disasm   print the VM bytecode
     stats    type check and report checker instrumentation
     serve    long-running NDJSON request loop over stdin/stdout

   Common flags select the implementation strategy (dictionaries with
   nested or flat layout, or run-time tags), the optimization pipeline,
   and the evaluation mode. Evaluating subcommands take a resource
   budget (--fuel, --timeout; 0 means unlimited) and --inject arms the
   deterministic fault injector for chaos testing.

   Exit codes: 0 success; 1 compile error; 2 runtime error or internal
   compiler error; 3 resource exhaustion (budget or memory). *)

open Cmdliner
module Pipeline = Typeclasses.Pipeline
module Serve = Typeclasses.Serve
module Trace = Tc_obs.Trace
module Rtrace = Tc_obs.Rtrace
module Profile = Tc_obs.Profile
module Metrics = Tc_obs.Metrics
module Mono = Tc_support.Mono
module Json = Tc_obs.Json
module Diag = Tc_obs.Diag
module Diagnostic = Tc_support.Diagnostic
module Budget = Tc_resilience.Budget
module Inject = Tc_resilience.Inject

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- common options ---- *)

let strategy_conv =
  let parse = function
    | "dict" | "dicts" | "nested" -> Ok Pipeline.Dicts
    | "dict-flat" | "flat" -> Ok Pipeline.Dicts_flat
    | "tags" | "tag" -> Ok Pipeline.Tags
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Pipeline.strategy_name s))

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Pipeline.Dicts
    & info [ "strategy"; "s" ] ~docv:"STRATEGY"
        ~doc:
          "Implementation strategy: $(b,dict) (dictionary passing, nested \
           layout), $(b,dict-flat) (flattened dictionaries, §8.1), or \
           $(b,tags) (run-time tag dispatch, §3).")

let opt_conv =
  let parse s =
    match Tc_opt.Opt.of_string s with
    | Some passes -> Ok passes
    | None -> Error (`Msg (Printf.sprintf "unknown optimization level %S" s))
  in
  Arg.conv (parse, fun ppf _ -> Fmt.string ppf "<passes>")

let opt_arg =
  Arg.(
    value
    & opt opt_conv []
    & info [ "opt"; "O" ] ~docv:"LEVEL"
        ~doc:
          "Optimizations: $(b,none), $(b,simplify), $(b,inner-entry), \
           $(b,hoist), $(b,spec), or $(b,all).")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("lazy", `Lazy); ("strict", `Strict) ]) `Lazy
    & info [ "eval" ] ~docv:"MODE" ~doc:"Evaluation mode: $(b,lazy) or $(b,strict).")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("tree", `Tree); ("vm", `Vm) ]) `Tree
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Execution backend: $(b,tree) (the instrumented tree-walking \
           evaluator) or $(b,vm) (compile to bytecode and run on the stack \
           VM). Both report identical results and dictionary counters.")

let no_prelude_arg =
  Arg.(value & flag & info [ "no-prelude" ] ~doc:"Do not load the prelude.")

let mono_literals_arg =
  Arg.(
    value & flag
    & info [ "monomorphic-literals" ]
        ~doc:"Integer literals are plain Int instead of (Num a) => a.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mhs")

let fuel_arg =
  Arg.(
    value & opt int 0
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Step budget: evaluation steps on the tree backend, instructions \
           on the VM ($(b,0) = unlimited). Exhaustion exits with code 3.")

let timeout_arg =
  Arg.(
    value & opt int 10_000
    & info [ "timeout" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline in milliseconds ($(b,0) = unlimited; the \
           default stops divergent programs after 10s). Exhaustion exits \
           with code 3.")

let budget_of ~fuel ~timeout : Budget.t =
  { Budget.unlimited with steps = fuel; wall_ms = float_of_int timeout }

let inject_conv =
  let parse s =
    match Inject.parse_spec s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf _ -> Fmt.string ppf "<plan>")

let inject_arg =
  Arg.(
    value
    & opt (some inject_conv) None
    & info [ "inject" ] ~docv:"POINT[:RATE[:SEED]]"
        ~doc:
          "Arm the deterministic fault injector at $(b,POINT) (e.g. \
           $(b,infer), $(b,vm-step:0.001), $(b,oom:1:42)) for chaos \
           testing. Injected faults must be contained like real ones: the \
           process reports a diagnostic and exits 1/2/3, never crashes.")

let arm_inject = function None -> () | Some plan -> Inject.arm plan

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

(* --metrics FILE: attach a live registry for the command's duration and
   write its snapshot (phase spans, counters, histograms) at the end. *)
let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON metrics snapshot — per-phase timing/allocation \
           spans, counters, latency histograms — to $(docv) ($(b,-) for \
           stdout) when the command finishes.")

let metrics_for = function
  | None -> Metrics.disabled
  | Some _ -> Metrics.create ()

let write_metrics dest (m : Metrics.t) =
  match dest with
  | None -> ()
  | Some "-" -> Fmt.pr "%s@." (Json.to_string (Metrics.snapshot m))
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Json.to_string (Metrics.snapshot m) ^ "\n"))

(* --trace-out FILE: attach a live flight recorder for the command's
   duration and write its Chrome trace-event dump at the end. *)
let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the per-request flight recorder's window as Chrome \
           trace-event JSON — loadable in Perfetto or chrome://tracing, \
           digestible with $(b,mhc stats --trace-in) — to $(docv) \
           ($(b,-) for stdout) when the command finishes (and, for \
           $(b,serve), whenever the process receives SIGUSR1).")

let rtrace_for = function
  | None -> Rtrace.disabled
  | Some _ -> Rtrace.create ()

let write_rtrace dest (rt : Rtrace.t) =
  match dest with
  | None -> ()
  | Some "-" -> Fmt.pr "%s@." (Rtrace.dump_string rt)
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Rtrace.dump_string rt ^ "\n"))

(* Batch commands have no serve ingress: mint the trace ID here and
   record a [request/<op>] root spanning the work, so a batch dump
   feeds [mhc stats --top-slow] exactly like a serve dump does. *)
let traced_root rt ~op f =
  if not (Rtrace.is_on rt) then f ()
  else begin
    let id = Rtrace.mint rt in
    Rtrace.set_current rt id;
    let t0 = Mono.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Rtrace.clear_current rt;
        Rtrace.record_as rt ~trace:id ~name:("request/" ^ op) ~ts_ns:t0
          ~dur_ns:(Mono.now_ns () - t0) ~words:0)
      f
  end

let build_opts ?(trace = Trace.none) ?(metrics = Metrics.disabled)
    ?(rtrace = Rtrace.disabled) ?(specialise = Pipeline.default_spec) strategy
    no_prelude mono_lits : Pipeline.options =
  {
    Pipeline.default_options with
    strategy;
    overloaded_literals = not mono_lits;
    include_prelude = not no_prelude;
    specialise;
    trace;
    metrics;
    rtrace;
  }

(* ---- spec profiles (the profile -> optimize loop) ---- *)

(* [mhc profile --emit-spec] writes one of these; [run]/[serve]
   [--spec-profile] loads it back to drive profile-guided
   specialization. A broken profile is a user error (exit 1), not an
   ICE. *)
let read_spec_profile path : Profile.spec =
  let fail m =
    raise
      (Diagnostic.Error
         (Diagnostic.make ~severity:Diagnostic.Error ~loc:Tc_support.Loc.none
            (Printf.sprintf "%s: %s" path m)))
  in
  match Json.parse (read_file path) with
  | Error m -> fail ("not valid JSON: " ^ m)
  | Ok j -> (
      match Profile.spec_of_json j with Ok sp -> sp | Error m -> fail m)

let spec_profile_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec-profile" ] ~docv:"FILE"
        ~doc:
          "Load a dispatch profile (written by $(b,mhc profile \
           --emit-spec)) and drive profile-guided specialization with it: \
           only overloaded bindings the profile shows as hot are cloned \
           at their concrete instance types; the cold tail keeps \
           dictionary dispatch. Implies $(b,-O spec) unless $(b,-O) is \
           given explicitly.")

let spec_options_of_profile = function
  | None -> Pipeline.default_spec
  | Some path ->
      {
        Pipeline.default_spec with
        Pipeline.spec_profile = Some (read_spec_profile path);
      }

(* When a profile is loaded but no -O was given, default to the
   specializing pipeline — the flag is useless without the pass. *)
let spec_default_passes ~spec_profile passes =
  match (spec_profile, passes) with
  | Some _, [] -> Option.value ~default:[] (Tc_opt.Opt.of_string "spec")
  | _ -> passes

let spec_report_json ~file (c : Pipeline.compiled) : Json.t =
  let body =
    match c.Pipeline.spec_report with
    | None -> Json.Null
    | Some r ->
        Json.Obj
          [
            ("clones", Json.Int r.Tc_opt.Specialise.sr_clones);
            ("call_sites", Json.Int r.Tc_opt.Specialise.sr_call_sites);
            ("hot_binds", Json.Int r.Tc_opt.Specialise.sr_hot_binds);
            ("cold_binds", Json.Int r.Tc_opt.Specialise.sr_cold_binds);
            ("budget_skips", Json.Int r.Tc_opt.Specialise.sr_budget_skips);
            ("size_before", Json.Int r.Tc_opt.Specialise.sr_size_before);
            ("size_after", Json.Int r.Tc_opt.Specialise.sr_size_after);
            ("growth", Json.Float (Tc_opt.Specialise.growth r));
            ("sels_before", Json.Int r.Tc_opt.Specialise.sr_sels_before);
            ("sels_after", Json.Int r.Tc_opt.Specialise.sr_sels_after);
            ("dicts_before", Json.Int r.Tc_opt.Specialise.sr_dicts_before);
            ("dicts_after", Json.Int r.Tc_opt.Specialise.sr_dicts_after);
            ( "profile_guided",
              Json.Bool r.Tc_opt.Specialise.sr_profile_guided );
          ]
  in
  Json.Obj [ ("file", Json.Str file); ("specialise", body) ]

let write_spec_report dest ~file c =
  match dest with
  | None -> ()
  | Some "-" -> Fmt.pr "%s@." (Json.to_string (spec_report_json ~file c))
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Json.to_string (spec_report_json ~file c) ^ "\n"))

let compile opts file =
  let src = read_file file in
  Pipeline.compile ~opts ~file src

let handle_errors f =
  try f () with
  | Tc_support.Diagnostic.Error d ->
      Fmt.epr "%a@." Tc_support.Diagnostic.pp d;
      exit 1
  | Tc_eval.Eval.Runtime_error m ->
      Fmt.epr "runtime error: %s@." m;
      exit 2
  | Tc_eval.Eval.User_error m ->
      Fmt.epr "error: %s@." m;
      exit 2
  | Tc_eval.Eval.Pattern_fail m ->
      Fmt.epr "pattern-match failure: %s@." m;
      exit 2
  | Budget.Exhausted { resource; spent; limit } ->
      Fmt.epr "%s@." (Budget.message resource ~spent ~limit);
      exit 3
  | Out_of_memory ->
      Fmt.epr "resource exhausted: memory@.";
      exit 3
  | exn ->
      (* ICE containment: never show a bare backtrace *)
      Fmt.epr "%a@." Tc_support.Diagnostic.pp
        (Tc_support.Diagnostic.of_exn ~stage:"mhc" ~loc:Tc_support.Loc.none exn);
      exit 2

let print_warnings (c : Pipeline.compiled) =
  List.iter (fun w -> Fmt.epr "%a@." Tc_support.Diagnostic.pp w) c.warnings

(* ---- subcommands ---- *)

let check_cmd =
  let doc =
    "Type check one or more programs, reporting every diagnostic. Parse \
     errors resynchronize at the next top-level declaration, type errors \
     are isolated per binding group, and unexpected compiler exceptions \
     become contained 'internal error' diagnostics, so one run reports all \
     independent problems across all files. Clean files get their inferred \
     qualified types printed. Exit code: 0 when no errors (warnings are \
     fine), 1 when any error was reported, 2 on an internal compiler error."
  in
  let files_arg =
    (* plain strings, not [Arg.file]: a missing file must become a
       diagnostic for that file, not a command-line error *)
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE.mhs")
  in
  let max_errors_arg =
    Arg.(
      value & opt int 100
      & info [ "max-errors" ] ~docv:"N"
          ~doc:
            "Record at most $(docv) errors per file before giving up on it \
             ($(b,0) or negative means unlimited).")
  in
  let run strategy no_prelude mono json max_errors inject mfile tfile files =
    handle_errors @@ fun () ->
    arm_inject inject;
    (* phase spans only record under a live registry, so --trace-out
       forces one even without --metrics *)
    let metrics =
      if tfile <> None then Metrics.create () else metrics_for mfile
    in
    let rtrace = rtrace_for tfile in
    let opts =
      {
        (build_opts ~metrics ~rtrace strategy no_prelude mono) with
        Pipeline.max_errors;
      }
    in
    let results =
      List.map
        (fun file ->
          match read_file file with
          | exception Sys_error m ->
              let d =
                Diagnostic.make ~severity:Diagnostic.Error
                  ~loc:Tc_support.Loc.none ("cannot read " ^ m)
              in
              (file, [ d ], None)
          | src ->
              let { Pipeline.diagnostics; artifact } =
                traced_root rtrace ~op:"check" (fun () ->
                    Pipeline.compile_collect ~opts ~file src)
              in
              (file, Diagnostic.sort diagnostics, artifact))
        files
    in
    let many = List.length files > 1 in
    if json then
      Fmt.pr "%s@."
        (Json.to_string
           (Diag.report (List.map (fun (f, ds, _) -> (f, ds)) results)))
    else
      List.iter
        (fun (file, ds, artifact) ->
          List.iter (fun d -> Fmt.epr "%a@." Diagnostic.pp d) ds;
          match artifact with
          | Some c ->
              if many then Fmt.pr "-- %s@." file;
              List.iter
                (fun (n, s) ->
                  Fmt.pr "%s :: %s@." (Tc_support.Ident.text n)
                    (Tc_types.Scheme.to_string s))
                c.Pipeline.user_schemes
          | None -> ())
        results;
    write_metrics mfile metrics;
    write_rtrace tfile rtrace;
    let all = List.concat_map (fun (_, ds, _) -> ds) results in
    if
      List.exists
        (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Bug)
        all
    then exit 2
    else if List.exists Diagnostic.is_error all then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ json_arg
      $ max_errors_arg $ inject_arg $ metrics_arg $ trace_out_arg $ files_arg)

let core_cmd =
  let doc = "Print the dictionary-converted (or tag-dispatching) core program." in
  let user_only_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Print the whole program including the prelude's translation.")
  in
  let run strategy no_prelude mono passes full file =
    handle_errors @@ fun () ->
    let c = compile (build_opts strategy no_prelude mono) file in
    let c = Pipeline.optimize passes c in
    print_warnings c;
    let user_names =
      List.map (fun (n, _) -> n) c.user_schemes |> Tc_support.Ident.Set.of_list
    in
    List.iter
      (fun g ->
        let binds = Tc_core_ir.Core.binds_of_group g in
        let interesting =
          full
          || List.exists
               (fun (b : Tc_core_ir.Core.bind) ->
                 Tc_support.Ident.Set.mem b.b_name user_names)
               binds
        in
        if interesting then Fmt.pr "%a@.@." Tc_core_ir.Core_pp.pp_group g)
      c.core.p_binds
  in
  Cmd.v (Cmd.info "core" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ opt_arg
      $ user_only_arg $ file_arg)

let run_cmd =
  let doc =
    "Compile and evaluate $(b,main) under a resource budget (a 10s \
     wall-clock deadline by default, so divergent programs terminate with \
     exit code 3 instead of hanging)."
  in
  let spec_report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec-report" ] ~docv:"FILE"
          ~doc:
            "Write the specializer's report — clones minted, call sites \
             rewritten, hot/cold binding split, budget refusals, code \
             growth — as JSON to $(docv) ($(b,-) for stdout) after \
             optimization.")
  in
  let run strategy no_prelude mono passes mode backend fuel timeout inject
      mfile tfile spec_profile spec_report file =
    handle_errors @@ fun () ->
    arm_inject inject;
    (* phase spans only record under a live registry, so --trace-out
       forces one even without --metrics *)
    let metrics =
      if tfile <> None then Metrics.create () else metrics_for mfile
    in
    let rtrace = rtrace_for tfile in
    let specialise = spec_options_of_profile spec_profile in
    let passes = spec_default_passes ~spec_profile passes in
    let c, r =
      traced_root rtrace ~op:"run" (fun () ->
          let c =
            compile
              (build_opts ~metrics ~rtrace ~specialise strategy no_prelude
                 mono)
              file
          in
          let c = Pipeline.optimize passes c in
          print_warnings c;
          ( c,
            Pipeline.exec ~backend ~mode ~budget:(budget_of ~fuel ~timeout) c
          ))
    in
    write_metrics mfile metrics;
    write_rtrace tfile rtrace;
    write_spec_report spec_report ~file c;
    Fmt.pr "%s@." r.Pipeline.rendered
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ opt_arg
      $ mode_arg $ backend_arg $ fuel_arg $ timeout_arg $ inject_arg
      $ metrics_arg $ trace_out_arg $ spec_profile_arg $ spec_report_arg
      $ file_arg)

let counters_cmd =
  let doc = "Evaluate $(b,main) and report run-time operation counters." in
  let run strategy no_prelude mono passes mode backend fuel timeout file =
    handle_errors @@ fun () ->
    let c = compile (build_opts strategy no_prelude mono) file in
    let c = Pipeline.optimize passes c in
    let r = Pipeline.exec ~backend ~mode ~budget:(budget_of ~fuel ~timeout) c in
    Fmt.pr "result: %s@." r.Pipeline.rendered;
    Fmt.pr "%a@." Tc_eval.Counters.pp r.Pipeline.counters
  in
  Cmd.v (Cmd.info "counters" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ opt_arg
      $ mode_arg $ backend_arg $ fuel_arg $ timeout_arg $ file_arg)

let counters_json (t : Tc_eval.Counters.t) : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Tc_eval.Counters.pairs t))

let trace_cmd =
  let doc =
    "Compile (and optionally optimize) with the structured event trace \
     attached, then print every event: context reductions, instance \
     lookups, placeholder creation/resolution, defaulting decisions, and \
     per-pass optimizer deltas."
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Include events arising from the prelude's own declarations.")
  in
  let run strategy no_prelude mono passes json full file =
    handle_errors @@ fun () ->
    let trace, events = Trace.collector () in
    let c = compile (build_opts ~trace strategy no_prelude mono) file in
    let c = Pipeline.optimize passes c in
    print_warnings c;
    let keep (e : Trace.event) =
      full
      ||
      match Trace.loc_of_event e with
      | None -> true  (* whole-program events (optimizer passes) *)
      | Some l -> Tc_support.Loc.is_none l || l.Tc_support.Loc.file = file
    in
    let evs = List.filter keep (events ()) in
    if json then
      Fmt.pr "%s@."
        (Json.to_string
           (Json.Obj
              [ ("file", Json.Str file); ("events", Trace.events_json evs) ]))
    else List.iter (fun e -> Fmt.pr "%a@." Trace.pp_event e) evs
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ opt_arg
      $ json_arg $ full_arg $ file_arg)

let profile_cmd =
  let doc =
    "Compile, execute $(b,main), and rank overloaded dispatch sites (method \
     selections and dictionary constructions) by run-time hits. Per-site \
     totals sum exactly to the aggregate counters, on either backend."
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Show the $(docv) hottest sites of each kind (-1 = all).")
  in
  let emit_spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-spec" ] ~docv:"FILE"
          ~doc:
            "Also write the profile as a specialization input — every hit \
             dispatch site with its descriptor and count — to $(docv) \
             ($(b,-) for stdout). Feed it back with $(b,mhc run \
             --spec-profile) to clone exactly the hot sites.")
  in
  let run strategy no_prelude mono passes mode backend fuel timeout top json
      emit_spec spec_profile file =
    handle_errors @@ fun () ->
    let specialise = spec_options_of_profile spec_profile in
    let passes = spec_default_passes ~spec_profile passes in
    let c =
      compile (build_opts ~specialise strategy no_prelude mono) file
    in
    let c = Pipeline.optimize passes c in
    print_warnings c;
    let r =
      Pipeline.exec ~backend ~mode ~budget:(budget_of ~fuel ~timeout)
        ~profile:true c
    in
    let report = Option.get r.Pipeline.profile in
    (match emit_spec with
    | None -> ()
    | Some dest ->
        let text =
          Json.to_string (Profile.spec_json (Profile.spec_of_report report))
          ^ "\n"
        in
        if dest = "-" then print_string text
        else
          Out_channel.with_open_bin dest (fun oc ->
              Out_channel.output_string oc text));
    if json then
      Fmt.pr "%s@."
        (Json.to_string
           (Json.Obj
              [
                ("file", Json.Str file);
                ( "backend",
                  Json.Str (match backend with `Tree -> "tree" | `Vm -> "vm") );
                ("result", Json.Str r.Pipeline.rendered);
                ("counters", counters_json r.Pipeline.counters);
                ("profile", Profile.report_json ~top report);
              ]))
    else begin
      Fmt.pr "result: %s@." r.Pipeline.rendered;
      Fmt.pr "%a@." Tc_eval.Counters.pp r.Pipeline.counters;
      Fmt.pr "%a@?" (Profile.pp_report ~top) report
    end
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ opt_arg
      $ mode_arg $ backend_arg $ fuel_arg $ timeout_arg $ top_arg $ json_arg
      $ emit_spec_arg $ spec_profile_arg $ file_arg)

let disasm_cmd =
  let doc = "Compile to VM bytecode and print the disassembly." in
  let run strategy no_prelude mono passes mode file =
    handle_errors @@ fun () ->
    let c = compile (build_opts strategy no_prelude mono) file in
    let c = Pipeline.optimize passes c in
    print_warnings c;
    let prog = Pipeline.bytecode ~mode c in
    Fmt.pr "%a@?" Tc_vm.Bytecode.pp_program prog
  in
  Cmd.v (Cmd.info "disasm" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ opt_arg
      $ mode_arg $ file_arg)

let stats_cmd =
  let doc =
    "Type check and report checker instrumentation (unifications, context \
     reductions, placeholders). With $(b,--json), also report the phase \
     spans of the compile — per-stage wall-clock and allocation — from \
     the metrics registry. With $(b,--trace-in), digest a flight-recorder \
     dump instead: rank the slowest requests by latency with their \
     dominant phase ($(b,--top-slow))."
  in
  let stable_arg =
    Arg.(
      value & flag
      & info [ "stable" ]
          ~doc:
            "With $(b,--json): redact machine-dependent quantities \
             (durations, allocated words, histogram detail) down to \
             counts, so the output is deterministic across runs and \
             machines.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "With $(b,--json): also summarize the persistent compile \
             cache rooted at $(docv) — valid entries, their payload \
             bytes, and files failing validation (torn or corrupt).")
  in
  let trace_in_arg =
    Arg.(
      value & opt (some file) None
      & info [ "trace-in" ] ~docv:"FILE"
          ~doc:
            "Digest a flight-recorder dump (written by $(b,--trace-out), \
             the serve $(b,trace) op, or SIGUSR1) instead of checking a \
             source file: report the slowest requests in the window — \
             see $(b,--top-slow).")
  in
  let top_slow_arg =
    Arg.(
      value & opt int 10
      & info [ "top-slow" ] ~docv:"N"
          ~doc:
            "With $(b,--trace-in): rank the $(docv) slowest complete \
             requests — trace ID, op, latency, dominant phase \
             ($(b,--json) for machine-readable digests).")
  in
  let digest_trace ~json ~top_slow path =
    let fail m =
      raise
        (Diagnostic.Error
           (Diagnostic.make ~severity:Diagnostic.Error ~loc:Tc_support.Loc.none
              (Printf.sprintf "%s: %s" path m)))
    in
    let doc =
      match Json.parse (read_file path) with
      | Error m -> fail ("not valid JSON: " ^ m)
      | Ok j -> j
    in
    match Rtrace.top_slow ~n:top_slow doc with
    | Error m -> fail m
    | Ok digests ->
        if json then
          Fmt.pr "%s@."
            (Json.to_string
               (Json.Obj
                  [
                    ("file", Json.Str path);
                    ("top_slow", Rtrace.digest_json digests);
                  ]))
        else if digests = [] then
          Fmt.pr "no complete requests in %s@." path
        else begin
          Fmt.pr "slowest requests in %s:@." path;
          List.iter
            (fun (d : Rtrace.digest) ->
              let ms ns = float_of_int ns /. 1e6 in
              Fmt.pr "  trace %-6d %-8s %9.3f ms  %s@." d.Rtrace.dg_trace
                d.Rtrace.dg_op
                (ms d.Rtrace.dg_latency_ns)
                (if d.Rtrace.dg_phase = "" then "-"
                 else
                   Printf.sprintf "%s (%.3f ms)" d.Rtrace.dg_phase
                     (ms d.Rtrace.dg_phase_ns)))
            digests
        end
  in
  let run strategy no_prelude mono json stable cache_dir trace_in top_slow
      file =
    handle_errors @@ fun () ->
    match (trace_in, file) with
    | Some path, _ -> digest_trace ~json ~top_slow path
    | None, None ->
        Fmt.epr
          "mhc stats: a FILE.mhs argument is required unless --trace-in is \
           given@.";
        exit 1
    | None, Some file ->
    let metrics = if json then Metrics.create () else Metrics.disabled in
    let c = compile (build_opts ~metrics strategy no_prelude mono) file in
    if json then begin
      let fields =
        [
          ("file", Json.Str file);
          ( "checker",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Int v))
                 (Tc_types.Stats.pairs c.checker_stats)) );
          ("metrics", Metrics.snapshot ~stable metrics);
        ]
      in
      let fields =
        match cache_dir with
        | None -> fields
        | Some dir ->
            let entries, bytes, corrupt = Tc_scale.Persist.scan ~dir in
            fields
            @ [
                ( "cache_dir",
                  Json.Obj
                    (("entries", Json.Int entries)
                     :: (if stable then []
                         (* marshaled payload sizes are
                            compiler-version-dependent *)
                         else [ ("bytes", Json.Int bytes) ])
                    @ [ ("corrupt", Json.Int corrupt) ]) );
              ]
      in
      Fmt.pr "%s@." (Json.to_string (Json.Obj fields))
    end
    else Fmt.pr "%a@." Tc_types.Stats.pp c.checker_stats
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg $ json_arg
      $ stable_arg $ cache_dir_arg $ trace_in_arg $ top_slow_arg
      $ Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.mhs"))

(* ---- the REPL ---- *)

let repl_help =
  {|Commands:
  <expr>            evaluate an expression
  <decl>            add a declaration (data/class/instance/type/infix/binding)
  :t <expr>         show the qualified type of an expression
  :core <name>      show a binding's dictionary translation
  :load <file>      add all declarations from a file
  :browse           list the types of the declarations entered so far
  :{ ... :}         multi-line block (e.g. a class with methods)
  :reset            forget all declarations
  :quit             exit|}

let is_decl_line line =
  let starts_with p =
    String.length line >= String.length p && String.sub line 0 (String.length p) = p
  in
  List.exists starts_with
    [ "data "; "class "; "instance "; "type "; "infixl "; "infixr "; "infix " ]
  ||
  (* a top-level binding or signature: ident/operator ... = / :: *)
  (let lexed =
     try Some (Tc_syntax.Lexer.tokenize ~file:"<repl>" line)
     with Tc_support.Diagnostic.Error _ -> None
   in
   match lexed with
   | None -> false
   | Some toks ->
       let toks = List.map (fun (t : Tc_syntax.Token.spanned) -> t.tok) toks in
       let rec scan depth = function
         | [] -> false
         | Tc_syntax.Token.LPAREN :: rest
         | Tc_syntax.Token.LBRACKET :: rest -> scan (depth + 1) rest
         | Tc_syntax.Token.RPAREN :: rest
         | Tc_syntax.Token.RBRACKET :: rest -> scan (depth - 1) rest
         (* '=' or '::' at depth 0 makes it a declaration; stop at any
            expression-only keyword *)
         | Tc_syntax.Token.EQUALS :: _ when depth = 0 -> true
         | Tc_syntax.Token.DCOLON :: _ when depth = 0 -> false
         | (Tc_syntax.Token.KW_let | Tc_syntax.Token.KW_if
           | Tc_syntax.Token.KW_case | Tc_syntax.Token.LAMBDA) :: _ -> false
         | _ :: rest -> scan depth rest
       in
       scan 0 toks)

let repl_cmd =
  let doc = "An interactive read-eval-print loop." in
  let run () =
    let decls = ref [] in
    let source () = String.concat "\n" (List.rev !decls) in
    let compile_current extra =
      Pipeline.compile ~file:"<repl>" (source () ^ "\n" ^ extra)
    in
    Fmt.pr "mhc — MiniHaskell with type classes (Peterson & Jones, PLDI 1993)@.";
    Fmt.pr "type :? for help@.";
    let rec read_block acc =
      match In_channel.input_line stdin with
      | None -> String.concat "\n" (List.rev acc)
      | Some line when String.trim line = ":}" -> String.concat "\n" (List.rev acc)
      | Some line -> read_block (line :: acc)
    in
    let handle input =
      let input = String.trim input in
      let with_errors f =
        try f () with
        | Tc_support.Diagnostic.Error d ->
            Fmt.pr "%a@." Tc_support.Diagnostic.pp d
        | Tc_eval.Eval.Runtime_error m -> Fmt.pr "runtime error: %s@." m
        | Tc_eval.Eval.User_error m -> Fmt.pr "error: %s@." m
        | Tc_eval.Eval.Pattern_fail m -> Fmt.pr "pattern-match failure: %s@." m
        | Budget.Exhausted { resource; spent; limit } ->
            Fmt.pr "%s@." (Budget.message resource ~spent ~limit)
      in
      match input with
      | "" -> ()
      | ":q" | ":quit" -> raise Exit
      | ":?" | ":h" | ":help" -> Fmt.pr "%s@." repl_help
      | ":reset" ->
          decls := [];
          Fmt.pr "declarations cleared@."
      | ":browse" ->
          with_errors (fun () ->
              let c = compile_current "" in
              List.iter
                (fun (n, s) ->
                  Fmt.pr "%s :: %s@." (Tc_support.Ident.text n)
                    (Tc_types.Scheme.to_string s))
                c.user_schemes)
      | _ when String.length input >= 3 && String.sub input 0 3 = ":t " ->
          with_errors (fun () ->
              let expr = String.sub input 3 (String.length input - 3) in
              let c = compile_current "" in
              Fmt.pr "%s :: %s@." (String.trim expr)
                (Pipeline.expression_type c expr))
      | _ when String.length input >= 6 && String.sub input 0 6 = ":core " ->
          with_errors (fun () ->
              let name = String.trim (String.sub input 6 (String.length input - 6)) in
              let c = compile_current "" in
              let id = Tc_support.Ident.intern name in
              let found = ref false in
              List.iter
                (fun g ->
                  List.iter
                    (fun (b : Tc_core_ir.Core.bind) ->
                      if Tc_support.Ident.equal b.b_name id then begin
                        found := true;
                        Fmt.pr "%a@." Tc_core_ir.Core_pp.pp_group g
                      end)
                    (Tc_core_ir.Core.binds_of_group g))
                c.core.p_binds;
              if not !found then Fmt.pr "no binding '%s'@." name)
      | _ when String.length input >= 6 && String.sub input 0 6 = ":load " ->
          with_errors (fun () ->
              let path = String.trim (String.sub input 6 (String.length input - 6)) in
              let text = read_file path in
              let attempt = text :: !decls in
              let saved = !decls in
              decls := attempt;
              (try ignore (compile_current "") with e -> decls := saved; raise e);
              Fmt.pr "loaded %s@." path)
      | _ when is_decl_line input ->
          with_errors (fun () ->
              let saved = !decls in
              decls := input :: !decls;
              try ignore (compile_current "") with e -> decls := saved; raise e)
      | expr ->
          with_errors (fun () ->
              let c = compile_current (Printf.sprintf "replIt' = (%s)" expr) in
              let cons = Tc_eval.Eval.con_table_of_env c.env in
              (* bounded in steps and time: a divergent expression must
                 come back to the prompt, not hang the session *)
              let st =
                Tc_eval.Eval.create_state
                  ~budget:
                    { (Budget.fuel 200_000_000) with Budget.wall_ms = 10_000. }
                  cons
              in
              let v =
                Tc_eval.Eval.run ~entry:(Tc_support.Ident.intern "replIt'") st c.core
              in
              Fmt.pr "%s@." (Tc_eval.Eval.render st v))
    in
    let rec loop () =
      Fmt.pr "mhs> %!";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line ->
          let input =
            if String.trim line = ":{" then read_block [] else line
          in
          (try handle input with Exit -> raise Exit);
          loop ()
    in
    (try loop () with Exit -> ());
    Fmt.pr "bye@."
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run $ const ())

(* ---- serve ---- *)

(* Scaling flags shared by [serve] and [bench serve]. *)
let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Handle requests on $(docv) parallel worker domains (responses \
           stay in request order); $(b,1) keeps the sequential loop.")

let cache_mb_arg =
  Arg.(
    value & opt int 64
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:
          "Byte budget of the content-addressed compile cache (repeated \
           sources skip the front end); $(b,0) disables caching.")

let cache_verify_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-verify" ] ~docv:"N"
        ~doc:
          "Recompile every $(docv)-th cache hit per entry and verify the \
           cached artifact against it ($(b,0) disables).")

let max_line_arg =
  Arg.(
    value & opt int (1 lsl 20)
    & info [ "max-line" ] ~docv:"BYTES"
        ~doc:
          "Answer $(b,bad-request) for request lines longer than $(docv) \
           bytes, buffering at most that much ($(b,0) removes the cap).")

let deadline_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline: a request that has already \
           waited longer than $(docv) in the pool queue when a worker \
           dequeues it is answered $(b,shed) without compiling \
           ($(b,0) disables; a request's own $(b,deadline_ms) field \
           overrides the default).")

(* --listen HOST:PORT. An empty host (":8080") defaults to 127.0.0.1;
   the port is mandatory ("0" asks the kernel for an ephemeral one).
   The listener socket is PF_INET, so IPv6 literals — bracketed or not
   — are rejected here with a clear message instead of failing later
   as an unresolvable host. *)
let parse_listen s =
  match String.rindex_opt s ':' with
  | None -> Error "expected HOST:PORT"
  | Some i -> (
      let host = String.sub s 0 i in
      if String.contains host ':' || String.contains host '[' then
        Error "IPv6 hosts are not supported (the listener is IPv4-only)"
      else
        let host = if host = "" then "127.0.0.1" else host in
        match
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
        | _ -> Error "invalid port")

let serve_cmd =
  let doc =
    "Serve newline-delimited JSON requests ($(b,check), $(b,compile), \
     $(b,run), $(b,stats), $(b,metrics), $(b,trace), $(b,ping), \
     $(b,health), $(b,ready)) over \
     stdin/stdout — or over TCP with $(b,--listen HOST:PORT) — one \
     response line per request line, in order (per connection). Each \
     request is isolated — fresh compile, its own resource budget, full \
     error containment — so no request (bad JSON, type errors, \
     divergence, injected faults, even simulated OOM) can kill the \
     process. Transient faults retry with exponential backoff; with \
     $(b,--workers) > 1 even a crashed worker domain is survived — its \
     request answered $(b,worker-crash), the domain respawned under \
     $(b,--max-restarts). EOF, SIGINT or SIGTERM drains gracefully \
     (networked: stop accepting, finish the requests already read, \
     bounded by $(b,--drain-timeout)) and prints a summary to stderr."
  in
  let retries_arg =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries per request for transient faults.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 10.
      & info [ "backoff" ] ~docv:"MS"
          ~doc:"Initial retry backoff in milliseconds (doubles per retry).")
  in
  let metrics_every_arg =
    Arg.(
      value & opt int 0
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:
            "Emit a spontaneous $(b,metrics-snapshot) line every $(docv) \
             requests ($(b,0) disables). Snapshot lines are out-of-band: \
             with $(b,--workers) > 1 they ride the emitter thread \
             (reporting the pool and cache registries), and with \
             $(b,--listen) each one is broadcast to every connected \
             client — responses stay strictly one-per-request.")
  in
  let trace_sample_arg =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Record one request in $(docv) into the flight recorder \
             (trace IDs are still minted for every request, so every \
             response carries its $(b,trace) field). $(b,0) (default) \
             records every request when $(b,--trace-out) is given and \
             disables the recorder otherwise. Dump with \
             $(b,--trace-out), the $(b,trace) op, or SIGUSR1.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Add a crash-safe persistent tier to the compile cache \
             rooted at $(docv) (created if needed): fresh compiles are \
             written through with atomic renames, a version header and \
             per-entry checksums, so a restarted server starts warm; \
             torn or corrupt entries are dropped and healed on read. \
             Implies a cache even with $(b,--cache-mb 0).")
  in
  let max_restarts_arg =
    Arg.(
      value & opt int 8
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Budget of worker domains respawned after a crash, per \
             server lifetime; past it the pool shrinks (the last worker \
             degrades to answering every request $(b,worker-crash)).")
  in
  let shed_grace_arg =
    Arg.(
      value & opt float (-1.)
      & info [ "shed-grace" ] ~docv:"MS"
          ~doc:
            "Admission control: once the request queue has been full \
             for $(docv) milliseconds, answer new requests $(b,shed) at \
             admission instead of queueing them (negative disables).")
  in
  let listen_arg =
    Arg.(
      value & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Serve over TCP instead of stdin/stdout: accept concurrent \
             connections on $(docv) (port $(b,0) picks an ephemeral \
             one), each speaking the same NDJSON protocol, multiplexed \
             onto one shared worker pool. Exits 2 if the address is \
             already bound.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 256
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Admission limit for $(b,--listen): past $(docv) concurrent \
             connections, new arrivals are answered with one \
             $(b,overloaded) line and closed.")
  in
  let conn_read_timeout_arg =
    Arg.(
      value & opt int 10_000
      & info [ "conn-read-timeout" ] ~docv:"MS"
          ~doc:
            "Reap a connection stuck mid-request-line longer than \
             $(docv) (slowloris defense; $(b,0) disables).")
  in
  let conn_idle_timeout_arg =
    Arg.(
      value & opt int 60_000
      & info [ "conn-idle-timeout" ] ~docv:"MS"
          ~doc:
            "Reap a connection quiet between requests longer than \
             $(docv) ($(b,0) disables).")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt int 5_000
      & info [ "drain-timeout" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT, bound the graceful drain: if the \
             in-flight tail outlives $(docv), emit the final snapshot, \
             shed the rest and still exit 0.")
  in
  let run strategy no_prelude mono timeout retries backoff_ms inject mfile
      tfile trace_sample every workers cache_mb cache_verify max_line
      spec_profile deadline_ms cache_dir max_restarts shed_grace listen
      max_conns conn_read_timeout conn_idle_timeout drain_timeout =
    handle_errors @@ fun () ->
    arm_inject inject;
    let rtrace =
      if tfile <> None || trace_sample > 0 then
        Rtrace.create ~sample:(max 1 trace_sample) ()
      else Rtrace.disabled
    in
    let cache =
      if cache_mb <= 0 && cache_dir = None then None
      else
        Some
          (Tc_scale.Cache.create
             ~max_bytes:(max 0 cache_mb * 1024 * 1024)
             ~verify_every:cache_verify ?dir:cache_dir ())
    in
    let hooks =
      let cached =
        match cache with
        | None -> Serve.no_hooks
        | Some c ->
            {
              Serve.no_hooks with
              Serve.compile =
                Some
                  (fun ~opts ~passes ~src ->
                    Tc_scale.Cache.compile_run c ~opts ~passes ~src);
              check = Some (fun ~opts ~src -> Tc_scale.Cache.check c ~opts ~src);
            }
      in
      match spec_profile with
      | None -> cached
      | Some path ->
          (* The specialise seam composes after the compile/cache seam:
             cache hits get re-specialized against the loaded profile
             (the cache stores unspecialized artifacts under a key that
             excludes this server-side profile). *)
          let specialise = spec_options_of_profile (Some path) in
          let passes = spec_default_passes ~spec_profile [] in
          {
            cached with
            Serve.specialise =
              Some
                (fun c ->
                  Pipeline.optimize passes
                    {
                      c with
                      Pipeline.options =
                        { c.Pipeline.options with Pipeline.specialise };
                    });
          }
    in
    let config =
      {
        Serve.default_config with
        Serve.base_opts = build_opts strategy no_prelude mono;
        default_budget = budget_of ~fuel:0 ~timeout;
        retries;
        backoff_ms;
        snapshot_every = every;
        max_line_bytes = max_line;
        default_deadline_ms = deadline_ms;
        extra_metrics =
          (* in-band [stats]/[metrics] requests see the shared cache
             registry alongside the handling worker's own *)
          Option.map
            (fun c () -> Tc_scale.Cache.metrics_view c)
            cache;
        rtrace;
        hooks;
      }
    in
    (* Shared postlude: fold the cache registry into the summary's,
       write the metrics file, print the stderr recap. *)
    let finish (summary : Tc_scale.Pool.summary) =
      Option.iter Tc_scale.Cache.close cache;
      let merged = summary.Tc_scale.Pool.metrics in
      Option.iter
        (fun c -> Metrics.merge ~into:merged (Tc_scale.Cache.metrics c))
        cache;
      write_metrics mfile merged;
      write_rtrace tfile rtrace;
      let s = summary.Tc_scale.Pool.stats in
      Fmt.epr
        "serve: %d requests, %d ok, %d failed, %d retried (%d worker%s, %d \
         restart%s)@."
        s.Serve.requests s.Serve.ok s.Serve.failed s.Serve.retried
        summary.Tc_scale.Pool.workers
        (if summary.Tc_scale.Pool.workers = 1 then "" else "s")
        summary.Tc_scale.Pool.restarts
        (if summary.Tc_scale.Pool.restarts = 1 then "" else "s")
    in
    let set_signals handler =
      try
        Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)
      with Invalid_argument _ | Sys_error _ -> ()
    in
    (* SIGUSR1 dumps the flight recorder without disturbing the loop:
       to --trace-out if given, else one line to stderr. [Rtrace.dump]
       takes no lock, so firing mid-request cannot deadlock. *)
    if Rtrace.is_on rtrace then begin
      let dump _ =
        match tfile with
        | Some dest when dest <> "-" ->
            (try write_rtrace (Some dest) rtrace with Sys_error _ -> ())
        | _ -> Fmt.epr "%s@." (Rtrace.dump_string rtrace)
      in
      try Sys.set_signal Sys.sigusr1 (Sys.Signal_handle dump)
      with Invalid_argument _ | Sys_error _ -> ()
    end;
    match listen with
    | None ->
        (* stdio: SIGINT and SIGTERM request the same graceful drain —
           stop reading, let the pool finish what it holds *)
        let stopped = ref false in
        set_signals (fun _ -> stopped := true);
        let next = Serve.bounded_next ~max_bytes:max_line stdin in
        let next () =
          (* a signal can interrupt the blocking read; treat it as EOF
             and let the drain path run *)
          try next () with Sys_error _ -> None
        in
        let emit line =
          print_string line;
          print_newline ();
          flush stdout
        in
        finish
          (Tc_scale.Pool.run ~workers ~config ~max_restarts
             ~shed_grace_ms:shed_grace
             ~stop:(fun () -> !stopped)
             ~next ~emit ())
    | Some spec -> (
        let host, port =
          match parse_listen spec with
          | Ok hp -> hp
          | Error m ->
              Fmt.epr "mhc serve: bad --listen %S: %s@." spec m;
              exit 2
        in
        let server_ref = ref None in
        let on_drain_deadline () =
          (* The in-flight tail outlived --drain-timeout: a bounded exit
             was promised, so emit what the listener knows and exit 0.
             (The pool summary never materialized; its workers are shed
             with the process.) *)
          (match !server_ref with
          | None -> ()
          | Some srv ->
              let m = Tc_net.Net.metrics_view srv in
              Option.iter
                (fun c ->
                  Metrics.merge ~into:m (Tc_scale.Cache.metrics_view c))
                cache;
              write_metrics mfile m);
          (try write_rtrace tfile rtrace with Sys_error _ -> ());
          Fmt.epr "serve: drain timeout reached; remaining work shed@.";
          exit 0
        in
        match
          Tc_net.Net.create ~max_conns ~read_timeout_ms:conn_read_timeout
            ~idle_timeout_ms:conn_idle_timeout ~drain_timeout_ms:drain_timeout
            ~on_drain_deadline ~host ~port ()
        with
        | exception Tc_net.Net.Bind_error m ->
            Fmt.epr "mhc serve: %s@." m;
            exit 2
        | server ->
            server_ref := Some server;
            set_signals (fun _ -> Tc_net.Net.drain server);
            Fmt.epr "serve: listening on %s:%d (%d worker%s)@." host
              (Tc_net.Net.port server) workers
              (if workers = 1 then "" else "s");
            finish
              (Tc_net.Net.run server ~workers ~max_restarts
                 ~shed_grace_ms:shed_grace ~config ()))
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ strategy_arg $ no_prelude_arg $ mono_literals_arg
      $ timeout_arg $ retries_arg $ backoff_arg $ inject_arg $ metrics_arg
      $ trace_out_arg $ trace_sample_arg $ metrics_every_arg $ workers_arg
      $ cache_mb_arg $ cache_verify_arg $ max_line_arg $ spec_profile_arg
      $ deadline_arg $ cache_dir_arg $ max_restarts_arg $ shed_grace_arg
      $ listen_arg $ max_conns_arg $ conn_read_timeout_arg
      $ conn_idle_timeout_arg $ drain_timeout_arg)

(* ---- bench ---- *)

let bench_serve_cmd =
  let doc =
    "Load-test the serve loop in-process: a cold phase (every request a \
     distinct program — all compile-cache misses) then a hot phase \
     (requests cycling over $(b,--clients) programs — cache hits after one \
     warm-up miss each), through the same worker pool and compile cache \
     $(b,mhc serve) uses. Prints a JSON report with throughput, p50/p99 \
     latency, the hot/cold speedup, cache hit/miss totals, and whether \
     the telemetry invariant held in the merged multi-worker registry; \
     $(b,--out) also writes the BENCH_SERVE.json trajectory rows. With \
     $(b,--connect HOST:PORT) the same experiment runs over TCP against \
     an already-running $(b,mhc serve --listen) server instead: one \
     connection per client thread, client-side wall-time latencies, and \
     the invariant checked from an in-band $(b,metrics) snapshot."
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N"
          ~doc:"Distinct programs the hot phase cycles over.")
  in
  let requests_arg =
    Arg.(
      value & opt int 64
      & info [ "requests" ] ~docv:"M" ~doc:"Requests per phase.")
  in
  let op_arg =
    Arg.(
      value & opt (enum [ ("run", `Run); ("check", `Check) ]) `Run
      & info [ "op" ] ~docv:"OP" ~doc:"Request op: $(b,run) or $(b,check).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory to write BENCH_SERVE.json trajectory rows into.")
  in
  let connect_arg =
    Arg.(
      value & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Run the experiment over TCP against a running $(b,mhc serve \
             --listen) server at $(docv) instead of in-process.")
  in
  let run clients requests workers cache_mb cache_verify op out deadline_ms
      connect =
    handle_errors @@ fun () ->
    let report =
      match connect with
      | None ->
          Tc_scale.Loadgen.run ~clients ~requests ~workers ~op ~cache_mb
            ~verify_every:cache_verify ~deadline_ms ()
      | Some spec -> (
          match parse_listen spec with
          | Error m ->
              Fmt.epr "mhc bench serve: bad --connect %S: %s@." spec m;
              exit 2
          | Ok (host, port) ->
              Tc_scale.Loadgen.run_socket ~clients ~requests ~op ~host ~port
                ())
    in
    print_string (Json.to_line (Tc_scale.Loadgen.report_json report));
    print_newline ();
    Option.iter
      (fun dir ->
        let path = Tc_scale.Loadgen.write_bench_rows ~dir report in
        Fmt.epr "wrote %s@." path)
      out;
    if not report.Tc_scale.Loadgen.invariant_ok then begin
      Fmt.epr
        "bench serve: telemetry invariant violated (latency counts do not \
         sum to serve/requests)@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ clients_arg $ requests_arg $ workers_arg $ cache_mb_arg
      $ cache_verify_arg $ op_arg $ out_arg $ deadline_arg $ connect_arg)

let bench_cmd =
  let doc = "Scaling benchmarks (load generation against the serve loop)." in
  Cmd.group (Cmd.info "bench" ~doc) [ bench_serve_cmd ]

let main_cmd =
  let doc = "A MiniHaskell compiler implementing type classes by dictionary \
             conversion (Peterson & Jones, PLDI 1993)" in
  Cmd.group (Cmd.info "mhc" ~doc ~version:"1.0.0")
    [ check_cmd; core_cmd; run_cmd; counters_cmd; trace_cmd; profile_cmd;
      disasm_cmd; stats_cmd; repl_cmd; serve_cmd; bench_cmd ]

let () = exit (Cmd.eval main_cmd)
