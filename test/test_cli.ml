(** Integration tests for the mhc command-line driver: run the real binary
    on real files and check stdout/stderr and exit codes. *)

let mhc = "../bin/mhc.exe"

(** Run mhc with [args]; returns (exit code, stdout ^ stderr). *)
let run_mhc args : int * string =
  let out = Filename.temp_file "mhc_test" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote mhc)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic; Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let with_program src (f : string -> unit) =
  let path = Filename.temp_file "prog" ".mhs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc src;
      close_out oc;
      f path)

let case = Helpers.case

let demo = "double :: Num a => a -> a\ndouble x = x + x\nmain = double 21\n"

let tests =
  [
    ( "cli",
      [
        case "run prints the result" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "run"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check string) "output" "42\n" out));
        case "check prints user types only" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "check"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check string) "output"
                  "double :: Num a => a -> a\nmain :: Int\n" out));
        case "counters reports dictionary operations" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "counters"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check bool) "result line" true
                  (Helpers.contains ~needle:"result: 42" out);
                Alcotest.(check bool) "counters line" true
                  (Helpers.contains ~needle:"dict-constructions=" out)));
        case "core shows the dictionary translation" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "core"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check bool) "has dict lambda" true
                  (Helpers.contains ~needle:"d$Num" out)));
        case "strategy tags agrees" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "run"; "-s"; "tags"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check string) "output" "42\n" out));
        case "optimization flag accepted" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "run"; "-O"; "all"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check string) "output" "42\n" out));
        case "type errors exit 1 with a located message" (fun () ->
            with_program "main = 1 + 'c'\n" (fun path ->
                let code, out = run_mhc [ "run"; path ] in
                Alcotest.(check int) "exit" 1 code;
                Alcotest.(check bool) "message" true
                  (Helpers.contains ~needle:"no instance for 'Num Char'" out)));
        case "runtime errors exit 2" (fun () ->
            with_program "main = head ([] :: [Int])\n" (fun path ->
                let code, out = run_mhc [ "run"; path ] in
                Alcotest.(check int) "exit" 2 code;
                Alcotest.(check bool) "message" true
                  (Helpers.contains ~needle:"non-exhaustive" out)));
        case "warnings go to stderr but do not fail the run" (fun () ->
            with_program "f (Just x) = x\nmain = f (Just 5)\n" (fun path ->
                let code, out = run_mhc [ "run"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check bool) "warning shown" true
                  (Helpers.contains ~needle:"non-exhaustive" out);
                Alcotest.(check bool) "result shown" true
                  (Helpers.contains ~needle:"5" out)));
        case "stats reports checker instrumentation" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "stats"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check bool) "has placeholders" true
                  (Helpers.contains ~needle:"placeholders-created=" out)));
        case "stats --json emits checker counters and phase spans" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "stats"; "--json"; path ] in
                Alcotest.(check int) "exit" 0 code;
                match Tc_obs.Json.parse out with
                | Error e -> Alcotest.failf "not JSON (%s): %s" e out
                | Ok j ->
                    let member k v =
                      match Tc_obs.Json.member k v with
                      | Some x -> x
                      | None -> Alcotest.failf "stats lacks %S" k
                    in
                    ignore (member "placeholders_created" (member "checker" j));
                    (match member "spans" (member "metrics" j) with
                    | Tc_obs.Json.List (_ :: _) -> ()
                    | _ -> Alcotest.fail "expected compile spans")));
        case "stats --json --stable is identical across runs" (fun () ->
            with_program demo (fun path ->
                let args = [ "stats"; "--json"; "--stable"; path ] in
                let code1, out1 = run_mhc args in
                let code2, out2 = run_mhc args in
                Alcotest.(check int) "exit" 0 code1;
                Alcotest.(check int) "exit" 0 code2;
                Alcotest.(check string) "deterministic" out1 out2));
        case "run --metrics FILE writes a parseable snapshot" (fun () ->
            with_program demo (fun path ->
                let mfile = Filename.temp_file "metrics" ".json" in
                Fun.protect
                  ~finally:(fun () -> Sys.remove mfile)
                  (fun () ->
                    let code, out =
                      run_mhc [ "run"; "--metrics"; mfile; path ]
                    in
                    Alcotest.(check int) "exit" 0 code;
                    Alcotest.(check string) "result still printed" "42\n" out;
                    let ic = open_in_bin mfile in
                    let text =
                      Fun.protect
                        ~finally:(fun () -> close_in_noerr ic)
                        (fun () ->
                          really_input_string ic (in_channel_length ic))
                    in
                    match Tc_obs.Json.parse text with
                    | Error e -> Alcotest.failf "metrics file not JSON: %s" e
                    | Ok j ->
                        Alcotest.(check bool) "has spans" true
                          (Tc_obs.Json.member "spans" j <> None))));
        case "check --metrics - prints the snapshot to stdout" (fun () ->
            with_program demo (fun path ->
                let code, out = run_mhc [ "check"; "--metrics"; "-"; path ] in
                Alcotest.(check int) "exit" 0 code;
                Alcotest.(check bool) "snapshot inline" true
                  (Helpers.contains ~needle:{|"spans"|} out)));
        case "repl evaluates piped input" (fun () ->
            let out_file = Filename.temp_file "repl" ".out" in
            let cmd =
              Printf.sprintf
                "printf 'double x = x + x\\ndouble 4\\n:t double\\n:q\\n' | %s \
                 repl > %s 2>&1"
                (Filename.quote mhc) (Filename.quote out_file)
            in
            let code = Sys.command cmd in
            let ic = open_in_bin out_file in
            let text =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic; Sys.remove out_file)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            Alcotest.(check int) "exit" 0 code;
            Alcotest.(check bool) "evaluated" true
              (Helpers.contains ~needle:"8" text);
            Alcotest.(check bool) "typed" true
              (Helpers.contains ~needle:"double :: Num a => a -> a" text));
        case "check reports every error in one run and exits 1" (fun () ->
            with_program "f x = = x\n\ng :: Int\ng = True\n\nmain = show []\n"
              (fun path ->
                let code, out = run_mhc [ "check"; path ] in
                Alcotest.(check int) "exit" 1 code;
                List.iter
                  (fun needle ->
                    Alcotest.(check bool) needle true
                      (Helpers.contains ~needle out))
                  [ "parse error: expected an expression";
                    "cannot unify 'Bool' with 'Int'";
                    "ambiguous overloading" ]));
        case "check --json emits the machine-readable report" (fun () ->
            with_program "g :: Int\ng = True\nmain = 0\n" (fun path ->
                let code, out = run_mhc [ "check"; "--json"; path ] in
                Alcotest.(check int) "exit" 1 code;
                List.iter
                  (fun needle ->
                    Alcotest.(check bool) needle true
                      (Helpers.contains ~needle out))
                  [ "\"diagnostics\""; "\"severity\": \"error\"";
                    "\"errors\": 1"; "\"warnings\": 0"; "\"ice\": 0";
                    "\"line\": 2" ]));
        case "check continues past a failing file in a batch" (fun () ->
            with_program "broken = )\n" (fun bad ->
                with_program demo (fun good ->
                    let code, out = run_mhc [ "check"; bad; good ] in
                    Alcotest.(check int) "exit" 1 code;
                    Alcotest.(check bool) "bad file reported" true
                      (Helpers.contains ~needle:"parse error" out);
                    (* the clean file's types still come out *)
                    Alcotest.(check bool) "good file typed" true
                      (Helpers.contains
                         ~needle:"double :: Num a => a -> a" out))));
        case "check --max-errors truncates with a notice" (fun () ->
            let buf = Buffer.create 256 in
            for i = 1 to 10 do
              Buffer.add_string buf
                (Printf.sprintf "v%d :: Int\nv%d = 'c'\n" i i)
            done;
            Buffer.add_string buf "main = 0\n";
            with_program (Buffer.contents buf) (fun path ->
                let code, out =
                  run_mhc [ "check"; "--max-errors"; "2"; path ]
                in
                Alcotest.(check int) "exit" 1 code;
                Alcotest.(check bool) "truncation notice" true
                  (Helpers.contains ~needle:"too many errors" out)));
        case "check reports an unreadable file and keeps going" (fun () ->
            with_program demo (fun good ->
                let code, out =
                  run_mhc [ "check"; "/nonexistent/nope.mhs"; good ]
                in
                Alcotest.(check int) "exit" 1 code;
                Alcotest.(check bool) "read error reported" true
                  (Helpers.contains ~needle:"cannot read" out);
                Alcotest.(check bool) "good file typed" true
                  (Helpers.contains ~needle:"double :: Num a => a -> a" out)));
        case "run exits 3 on step-budget exhaustion" (fun () ->
            with_program "loop n = loop (n + 1)\nmain = loop (0 :: Int)\n"
              (fun path ->
                let code, out = run_mhc [ "run"; "--fuel"; "10000"; path ] in
                Alcotest.(check int) "exit" 3 code;
                Alcotest.(check bool) "classified" true
                  (Helpers.contains ~needle:"resource exhausted: steps" out)));
        case "run exits 3 when a divergent program hits --timeout" (fun () ->
            with_program "loop n = loop (n + 1)\nmain = loop (0 :: Int)\n"
              (fun path ->
                let code, out =
                  run_mhc [ "run"; "--backend"; "vm"; "--timeout"; "200"; path ]
                in
                Alcotest.(check int) "exit" 3 code;
                Alcotest.(check bool) "classified" true
                  (Helpers.contains ~needle:"resource exhausted: wall-clock"
                     out)));
        case "run --inject contains a runtime fault as an ICE (exit 2)"
          (fun () ->
            with_program demo (fun path ->
                let code, out =
                  run_mhc [ "run"; "--inject"; "eval-step:1:1"; path ]
                in
                Alcotest.(check int) "exit" 2 code;
                Alcotest.(check bool) "contained" true
                  (Helpers.contains ~needle:"internal error" out)));
        case "run --inject oom exits 3, not a crash" (fun () ->
            with_program demo (fun path ->
                let code, out =
                  run_mhc [ "run"; "--inject"; "oom:1:1"; path ]
                in
                Alcotest.(check int) "exit" 3 code;
                Alcotest.(check bool) "classified" true
                  (Helpers.contains ~needle:"resource exhausted: memory" out)));
        case "check --inject contains a front-end fault as one ICE (exit 2)"
          (fun () ->
            with_program demo (fun path ->
                let code, out =
                  run_mhc [ "check"; "--inject"; "infer:1:1"; path ]
                in
                Alcotest.(check int) "exit" 2 code;
                Alcotest.(check bool) "contained" true
                  (Helpers.contains ~needle:"internal error" out)));
        case "profile --emit-spec round-trips through run --spec-profile"
          (fun () ->
            let src =
              "mySum :: Num a => a -> a\n\
               mySum n = if n == 0 then 0 else n + mySum (n - 1)\n\
               main = mySum (40 :: Int)\n"
            in
            with_program src (fun path ->
                let spec = Filename.temp_file "spec" ".json" in
                let report = Filename.temp_file "specrep" ".json" in
                Fun.protect
                  ~finally:(fun () -> Sys.remove spec; Sys.remove report)
                  (fun () ->
                    let code, _ =
                      run_mhc [ "profile"; "--emit-spec"; spec; path ]
                    in
                    Alcotest.(check int) "profile exit" 0 code;
                    let read f =
                      let ic = open_in_bin f in
                      Fun.protect
                        ~finally:(fun () -> close_in_noerr ic)
                        (fun () ->
                          really_input_string ic (in_channel_length ic))
                    in
                    Alcotest.(check bool) "spec profile is typed JSON" true
                      (Helpers.contains ~needle:"mhc-spec-profile"
                         (read spec));
                    let code_plain, out_plain = run_mhc [ "run"; path ] in
                    let code_spec, out_spec =
                      run_mhc
                        [ "run"; "--spec-profile"; spec;
                          "--spec-report"; report; path ]
                    in
                    Alcotest.(check int) "plain exit" 0 code_plain;
                    Alcotest.(check int) "spec exit" 0 code_spec;
                    Alcotest.(check string) "same result" out_plain out_spec;
                    (* and on the VM backend *)
                    let code_vm, out_vm =
                      run_mhc
                        [ "run"; "--backend"; "vm"; "--spec-profile"; spec;
                          path ]
                    in
                    Alcotest.(check int) "vm exit" 0 code_vm;
                    Alcotest.(check string) "vm agrees" out_plain out_vm;
                    let rep = read report in
                    Alcotest.(check bool) "report profile-guided" true
                      (Helpers.contains ~needle:{|"profile_guided": true|}
                         rep);
                    Alcotest.(check bool) "report is not the null report"
                      false
                      (Helpers.contains ~needle:{|"clones": 0|} rep))));
        case "a profile matching nothing leaves the program unchanged"
          (fun () ->
            (* the cold tail: a spec profile recorded from a different
               program attributes no hits, so no binding is hot and the
               compile is byte-for-byte the unspecialized one *)
            with_program demo (fun other ->
                let src = "main = sum (enumFromTo 1 10)\n" in
                with_program src (fun path ->
                    let spec = Filename.temp_file "spec" ".json" in
                    let report = Filename.temp_file "specrep" ".json" in
                    Fun.protect
                      ~finally:(fun () ->
                        Sys.remove spec; Sys.remove report)
                      (fun () ->
                        let code, _ =
                          run_mhc [ "profile"; "--emit-spec"; spec; other ]
                        in
                        Alcotest.(check int) "profile exit" 0 code;
                        let code, out =
                          run_mhc
                            [ "run"; "--spec-profile"; spec;
                              "--spec-report"; report; path ]
                        in
                        Alcotest.(check int) "exit" 0 code;
                        Alcotest.(check string) "result" "55\n" out;
                        let ic = open_in_bin report in
                        let rep =
                          Fun.protect
                            ~finally:(fun () -> close_in_noerr ic)
                            (fun () ->
                              really_input_string ic (in_channel_length ic))
                        in
                        Alcotest.(check bool) "zero clones" true
                          (Helpers.contains ~needle:{|"clones": 0|} rep)))));
        case "run --spec-profile rejects a broken profile with exit 1"
          (fun () ->
            with_program demo (fun path ->
                with_program "this is not json" (fun bogus ->
                    let code, out =
                      run_mhc [ "run"; "--spec-profile"; bogus; path ]
                    in
                    Alcotest.(check int) "exit" 1 code;
                    Alcotest.(check bool) "diagnosed" true
                      (Helpers.contains ~needle:"not valid JSON" out))));
        case "serve --spec-profile answers run requests identically" (fun () ->
            with_program demo (fun path ->
                let spec = Filename.temp_file "spec" ".json" in
                Fun.protect
                  ~finally:(fun () -> Sys.remove spec)
                  (fun () ->
                    let code, _ =
                      run_mhc [ "profile"; "--emit-spec"; spec; path ]
                    in
                    Alcotest.(check int) "profile exit" 0 code;
                    let out = Filename.temp_file "serve" ".out" in
                    let request =
                      (* as a printf *argument* (not its format string) the
                         \n stays a two-character JSON escape *)
                      "{\"op\":\"run\",\"src\":\"double :: Num a => a -> \
                       a\\ndouble x = x + x\\nmain = double 21\"}"
                    in
                    let cmd =
                      Printf.sprintf
                        "printf '%%s\\n' %s | %s serve --spec-profile %s \
                         > %s 2>/dev/null"
                        (Filename.quote request) (Filename.quote mhc)
                        (Filename.quote spec) (Filename.quote out)
                    in
                    let code = Sys.command cmd in
                    let ic = open_in_bin out in
                    let text =
                      Fun.protect
                        ~finally:(fun () ->
                          close_in_noerr ic; Sys.remove out)
                        (fun () ->
                          really_input_string ic (in_channel_length ic))
                    in
                    Alcotest.(check int) "exit" 0 code;
                    Alcotest.(check bool) "answered with the result" true
                      (Helpers.contains ~needle:"\"value\":\"42\"" text))));
        case "serve answers over stdin and drains at EOF" (fun () ->
            with_program demo (fun _ ->
                let out = Filename.temp_file "serve" ".out" in
                let cmd =
                  Printf.sprintf
                    "printf '%s\\n%s\\n' | %s serve > %s 2>/dev/null"
                    "{\"op\":\"ping\",\"id\":1}"
                    "{\"op\":\"run\",\"src\":\"main = 1 + 1\"}"
                    (Filename.quote mhc) (Filename.quote out)
                in
                let code = Sys.command cmd in
                let ic = open_in_bin out in
                let text =
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic; Sys.remove out)
                    (fun () -> really_input_string ic (in_channel_length ic))
                in
                Alcotest.(check int) "exit" 0 code;
                let lines =
                  List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
                in
                Alcotest.(check int) "one response per request" 2
                  (List.length lines);
                Alcotest.(check bool) "ping ok" true
                  (Helpers.contains ~needle:"\"ok\":true" (List.nth lines 0));
                Alcotest.(check bool) "run value" true
                  (Helpers.contains ~needle:"\"value\":\"2\""
                     (List.nth lines 1))));
        case "serve --cache-dir survives a real process restart warm"
          (fun () ->
            with_program demo (fun path ->
                let dir = Filename.temp_file "mhc_cachedir" "" in
                Sys.remove dir;
                Sys.mkdir dir 0o755;
                let mfile = Filename.temp_file "mhc_cachedir" ".json" in
                let cleanup () =
                  Array.iter
                    (fun f ->
                      try Sys.remove (Filename.concat dir f)
                      with Sys_error _ -> ())
                    (try Sys.readdir dir with Sys_error _ -> [||]);
                  (try Sys.rmdir dir with Sys_error _ -> ());
                  try Sys.remove mfile with Sys_error _ -> ()
                in
                Fun.protect ~finally:cleanup @@ fun () ->
                let serve extra =
                  Sys.command
                    (Printf.sprintf
                       "printf '%s\\n' | %s serve --cache-dir %s %s \
                        >/dev/null 2>&1"
                       "{\"op\":\"run\",\"src\":\"main = 1 + 1\"}"
                       (Filename.quote mhc) (Filename.quote dir) extra)
                in
                Alcotest.(check int) "first server exits clean" 0 (serve "");
                (* a different process, same directory: starts warm *)
                Alcotest.(check int) "second server exits clean" 0
                  (serve (Printf.sprintf "--metrics %s"
                            (Filename.quote mfile)));
                let metrics =
                  let ic = open_in_bin mfile in
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () ->
                      really_input_string ic (in_channel_length ic))
                in
                Alcotest.(check bool) "restart hit the disk tier" true
                  (Helpers.contains
                     ~needle:"\"scale/cache/persist/hits\": 1" metrics);
                (* stats --json surfaces the directory summary *)
                let code, out =
                  run_mhc
                    [ "stats"; "--json"; "--stable"; "--cache-dir"; dir;
                      path ]
                in
                Alcotest.(check int) "stats exit" 0 code;
                Alcotest.(check bool) "one valid entry reported" true
                  (Helpers.contains ~needle:"\"entries\": 1" out);
                Alcotest.(check bool) "nothing corrupt" true
                  (Helpers.contains ~needle:"\"corrupt\": 0" out)));
        case "serve --listen rejects IPv6 literals with a clear diagnostic"
          (fun () ->
            List.iter
              (fun addr ->
                let code, out = run_mhc [ "serve"; "--listen"; addr ] in
                Alcotest.(check int) (addr ^ " exits 2") 2 code;
                Alcotest.(check bool) (addr ^ " says IPv4-only") true
                  (Helpers.contains ~needle:"IPv4-only" out))
              [ "[::1]:8080"; "::1:8080" ]);
      ] );
  ]
