(** The scaling layer: content-addressed compile cache, domain worker
    pool, and load generator.

    - Cache keys cover exactly the output-relevant inputs: source,
      strategy, optimizer passes; observation sinks are excluded.
    - A cache hit skips the front end entirely — over a serving pair of
      identical requests the [compile] phase span count stays at 1
      while [serve/requests] reaches 2.
    - Eviction respects the byte budget; verification recompiles
      sampled hits and self-heals on mismatch.
    - The pool preserves request→response order under out-of-order
      completion, and its merged registry preserves the telemetry
      invariant (latency counts sum to [serve/requests]).
    - Oversized request lines classify as [bad-request] without
      unbounded buffering. *)

open Helpers
module Pipeline = Typeclasses.Pipeline
module Serve = Typeclasses.Serve
module Metrics = Tc_obs.Metrics
module Json = Tc_obs.Json
module Cache = Tc_scale.Cache
module Pool = Tc_scale.Pool
module Loadgen = Tc_scale.Loadgen

let demo = "double :: Num a => a -> a\ndouble x = x + x\nmain = double 21\n"

let counter_of m name =
  match List.assoc_opt name (Metrics.counters m) with
  | Some n -> n
  | None -> 0

let cache_counter c name = counter_of (Cache.metrics c) ("scale/cache/" ^ name)

let default_opts = Pipeline.default_options

(* ------------------------------------------------------------------ *)
(* Cache.                                                              *)
(* ------------------------------------------------------------------ *)

let cache_cases =
  [
    case "second compile of identical source is a hit" (fun () ->
        let c = Cache.create () in
        let a = Cache.compile_run c ~opts:default_opts ~passes:[] ~src:demo in
        let b = Cache.compile_run c ~opts:default_opts ~passes:[] ~src:demo in
        Alcotest.(check int) "one miss" 1 (cache_counter c "misses");
        Alcotest.(check int) "one hit" 1 (cache_counter c "hits");
        Alcotest.(check int) "one insert" 1 (cache_counter c "inserts");
        Alcotest.(check int) "one entry" 1 (Cache.entries c);
        Alcotest.(check bool) "bytes accounted" true (Cache.bytes c > 0);
        (* both artifacts execute to the same answer *)
        let exec x =
          (Pipeline.exec ~budget:(Pipeline.Budget.fuel 1_000_000) x)
            .Pipeline.rendered
        in
        Alcotest.(check string) "same result" (exec a) (exec b));
    case "key covers src, strategy and passes; not sinks" (fun () ->
        let k = Cache.key (`Run []) ~opts:default_opts ~src:demo in
        Alcotest.(check bool) "src changes the key" true
          (k <> Cache.key (`Run []) ~opts:default_opts ~src:(demo ^ " "));
        Alcotest.(check bool) "strategy changes the key" true
          (k
          <> Cache.key (`Run [])
               ~opts:{ default_opts with Pipeline.strategy = Pipeline.Tags }
               ~src:demo);
        (match Tc_opt.Opt.of_string "all" with
        | Some passes ->
            Alcotest.(check bool) "passes change the key" true
              (k <> Cache.key (`Run passes) ~opts:default_opts ~src:demo)
        | None -> Alcotest.fail "opt level \"all\" should parse");
        Alcotest.(check bool) "check path is keyed apart" true
          (k <> Cache.key `Check ~opts:default_opts ~src:demo);
        Alcotest.(check string) "metrics/trace excluded" k
          (Cache.key (`Run [])
             ~opts:{ default_opts with Pipeline.metrics = Metrics.create () }
             ~src:demo);
        (* the specializer options are artifact-relevant: a loaded profile
           or a different budget must key apart (spec_signature), else a
           hit could hand back a differently-specialized artifact *)
        let spec_opts s =
          { default_opts with Pipeline.specialise = s }
        in
        let profiled =
          let c = Pipeline.compile ~file:"cache.mhs" demo in
          Tc_obs.Profile.spec_of_report
            (Option.get (Pipeline.exec ~profile:true c).Pipeline.profile)
        in
        Alcotest.(check bool) "a spec profile changes the key" true
          (k
          <> Cache.key (`Run [])
               ~opts:
                 (spec_opts
                    {
                      Pipeline.default_spec with
                      Pipeline.spec_profile = Some profiled;
                    })
               ~src:demo);
        Alcotest.(check bool) "the clone budget changes the key" true
          (k
          <> Cache.key (`Run [])
               ~opts:
                 (spec_opts
                    { Pipeline.default_spec with Pipeline.spec_max_clones = 7 })
               ~src:demo);
        Alcotest.(check string) "the default spec options are the baseline" k
          (Cache.key (`Run [])
             ~opts:(spec_opts Pipeline.default_spec)
             ~src:demo));
    case "serve hit skips the front end (compile span stays at 1)"
      (fun () ->
        let cache = Cache.create () in
        let config =
          {
            Serve.default_config with
            Serve.sleep = (fun _ -> ());
            hooks =
              {
                Serve.no_hooks with
                Serve.compile =
                  Some
                    (fun ~opts ~passes ~src ->
                      Cache.compile_run cache ~opts ~passes ~src);
              };
          }
        in
        let t = Serve.create ~config () in
        let req =
          Json.to_line
            (Json.Obj [ ("op", Json.Str "run"); ("src", Json.Str demo) ])
        in
        ignore (Serve.handle_line t req);
        ignore (Serve.handle_line t req);
        Alcotest.(check int) "two requests" 2
          (counter_of (Serve.metrics t) "serve/requests");
        Alcotest.(check int) "one cache hit" 1 (cache_counter cache "hits");
        let compile_spans =
          List.filter
            (fun (s : Metrics.span_stat) -> s.Metrics.sp_name = "compile")
            (Metrics.spans (Serve.metrics t))
        in
        match compile_spans with
        | [ s ] ->
            Alcotest.(check int)
              "front end ran once for two requests" 1 s.Metrics.sp_count
        | l -> Alcotest.failf "expected one compile span, got %d"
                 (List.length l));
    case "byte budget evicts least-recently-used entries" (fun () ->
        (* budget far below one artifact: every insert evicts the last *)
        let c = Cache.create ~max_bytes:1024 () in
        let src i = Printf.sprintf "main = %d" i in
        for i = 1 to 3 do
          ignore (Cache.compile_run c ~opts:default_opts ~passes:[]
                    ~src:(src i))
        done;
        Alcotest.(check int) "three inserts" 3 (cache_counter c "inserts");
        Alcotest.(check bool) "evictions happened" true
          (cache_counter c "evictions" >= 2);
        Alcotest.(check bool) "occupancy bounded" true (Cache.entries c <= 1));
    case "verification recompiles sampled hits and passes" (fun () ->
        let c = Cache.create ~verify_every:1 () in
        ignore (Cache.compile_run c ~opts:default_opts ~passes:[] ~src:demo);
        ignore (Cache.compile_run c ~opts:default_opts ~passes:[] ~src:demo);
        ignore (Cache.compile_run c ~opts:default_opts ~passes:[] ~src:demo);
        Alcotest.(check int) "every hit verified" 2
          (cache_counter c "verified");
        Alcotest.(check int) "no mismatches" 0
          (cache_counter c "verify_fail");
        (* the fingerprint itself is gensym-invariant across compiles *)
        let fp () =
          Cache.fingerprint (Pipeline.compile ~file:"t.mhs" demo)
        in
        Alcotest.(check string) "stable fingerprint" (fp ()) (fp ()));
    case "compile errors propagate and are never cached" (fun () ->
        let c = Cache.create () in
        let bad = "main = notInScope" in
        let attempt () =
          match
            Cache.compile_run c ~opts:default_opts ~passes:[] ~src:bad
          with
          | _ -> Alcotest.fail "expected a compile error"
          | exception Tc_support.Diagnostic.Error _ -> ()
        in
        attempt ();
        attempt ();
        Alcotest.(check int) "both attempts missed" 2
          (cache_counter c "misses");
        Alcotest.(check int) "nothing inserted" 0 (Cache.entries c);
        (* the accumulating path *does* cache its diagnostics *)
        let ck1 = Cache.check c ~opts:default_opts ~src:bad in
        let ck2 = Cache.check c ~opts:default_opts ~src:bad in
        Alcotest.(check bool) "no artifact" true
          (ck1.Pipeline.artifact = None && ck2.Pipeline.artifact = None);
        Alcotest.(check int) "check hit" 1 (cache_counter c "hits"));
  ]

(* ------------------------------------------------------------------ *)
(* Pool.                                                               *)
(* ------------------------------------------------------------------ *)

let pool_requests n =
  Array.init n (fun i ->
      Json.to_line
        (Json.Obj
           [
             ("op", Json.Str "run");
             ("id", Json.Int i);
             ("src", Json.Str (Printf.sprintf "main = %d + %d" i i));
           ]))

let run_pool ?config ?max_restarts ?shed_grace_ms ~workers lines =
  let i = ref 0 in
  let next () =
    if !i >= Array.length lines then None
    else begin
      let l = lines.(!i) in
      incr i;
      Some l
    end
  in
  let out = ref [] in
  let config =
    match config with
    | Some c -> c
    | None -> { Serve.default_config with Serve.sleep = (fun _ -> ()) }
  in
  let summary =
    Pool.run ~workers ~config ?max_restarts ?shed_grace_ms ~next
      ~emit:(fun l -> out := l :: !out)
      ()
  in
  (summary, List.rev !out)

let response_id line =
  match Json.parse line with
  | Ok r -> Option.bind (Json.member "id" r) Json.to_int
  | Error _ -> None

let response_class line =
  match Json.parse line with
  | Ok r ->
      Option.bind (Json.member "error" r) (fun e ->
          Option.bind (Json.member "class" e) Json.to_str)
  | Error _ -> None

let class_count (s : Serve.stats) cls =
  match List.assoc_opt cls s.Serve.by_class with Some n -> n | None -> 0

let pool_cases =
  [
    case "responses come back in request order across 4 workers" (fun () ->
        let n = 12 in
        let summary, out = run_pool ~workers:4 (pool_requests n) in
        Alcotest.(check int) "every response emitted" n (List.length out);
        Alcotest.(check (list int)) "in request order"
          (List.init n Fun.id)
          (List.filter_map response_id out);
        Alcotest.(check int) "4 workers joined" 4 summary.Pool.workers);
    case "merged registry preserves the telemetry invariant" (fun () ->
        let n = 10 in
        let summary, _ = run_pool ~workers:3 (pool_requests n) in
        Alcotest.(check int) "stats merged across workers" n
          summary.Pool.stats.Serve.requests;
        Alcotest.(check int) "all ok" n summary.Pool.stats.Serve.ok;
        Alcotest.(check int) "merged request counter" n
          (counter_of summary.Pool.metrics "serve/requests");
        Alcotest.(check bool) "latency counts sum to serve/requests" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "workers=1 falls back to the sequential loop" (fun () ->
        let n = 3 in
        let summary, out = run_pool ~workers:1 (pool_requests n) in
        Alcotest.(check int) "one worker" 1 summary.Pool.workers;
        Alcotest.(check (list int)) "ordered"
          (List.init n Fun.id)
          (List.filter_map response_id out);
        Alcotest.(check bool) "invariant" true
          (Loadgen.invariant_holds summary.Pool.metrics));
  ]

(* ------------------------------------------------------------------ *)
(* Supervision: crashed workers, restart budgets, shedding.            *)
(* ------------------------------------------------------------------ *)

module Inject = Tc_resilience.Inject

let with_inject plan f =
  Inject.arm plan;
  Fun.protect ~finally:Inject.disarm f

let supervision_cases =
  [
    case "a crashed worker answers worker-crash and the pool recovers"
      (fun () ->
        (* rate 1 + max_faults 3: exactly the first three dequeues crash
           their worker domain, deterministically *)
        let n = 12 in
        let summary, out =
          with_inject
            (Inject.plan ~rate:1.0 ~points:[ Inject.Worker_crash ]
               ~max_faults:3 ())
            (fun () -> run_pool ~workers:4 (pool_requests n))
        in
        Alcotest.(check int) "every request answered" n (List.length out);
        Alcotest.(check (list int)) "in request order"
          (List.init n Fun.id)
          (List.filter_map response_id out);
        let crashed =
          List.filter (fun l -> response_class l = Some "worker-crash") out
        in
        Alcotest.(check int) "three requests died with their workers" 3
          (List.length crashed);
        Alcotest.(check int) "three respawns" 3 summary.Pool.restarts;
        Alcotest.(check int) "restarts exported as a counter" 3
          (counter_of summary.Pool.metrics "scale/pool/restarts");
        (* the dead incarnations' accounting still reaches the totals *)
        Alcotest.(check int) "crashes tallied by class" 3
          (class_count summary.Pool.stats "worker-crash");
        Alcotest.(check int) "stats count every request" n
          summary.Pool.stats.Serve.requests;
        Alcotest.(check int) "the rest succeeded" (n - 3)
          summary.Pool.stats.Serve.ok;
        Alcotest.(check int) "merged request counter" n
          (counter_of summary.Pool.metrics "serve/requests");
        Alcotest.(check bool)
          "telemetry invariant holds with synthetic responses" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "an exhausted restart budget degrades to a lame-duck drainer"
      (fun () ->
        (* every dequeue crashes; with a budget of 1 the pool shrinks to
           nothing and the last dying worker must still drain the rest *)
        let n = 8 in
        let summary, out =
          with_inject
            (Inject.plan ~rate:1.0 ~points:[ Inject.Worker_crash ] ())
            (fun () -> run_pool ~workers:2 ~max_restarts:1 (pool_requests n))
        in
        Alcotest.(check int) "no request lost" n (List.length out);
        Alcotest.(check (list int)) "order survives total worker loss"
          (List.init n Fun.id)
          (List.filter_map response_id out);
        Alcotest.(check bool) "every response is worker-crash" true
          (List.for_all (fun l -> response_class l = Some "worker-crash") out);
        Alcotest.(check int) "budget respected" 1 summary.Pool.restarts;
        Alcotest.(check bool) "invariant still holds" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "queue age past the deadline sheds instead of compiling"
      (fun () ->
        (* a fake clock advancing 50ms per reading makes every request's
           measured queue age exceed a 10ms deadline, deterministically *)
        let m = Mutex.create () in
        let now = ref 0. in
        let clock () =
          Mutex.protect m (fun () ->
              now := !now +. 0.05;
              !now)
        in
        let config =
          {
            Serve.default_config with
            Serve.sleep = (fun _ -> ());
            clock;
            default_deadline_ms = 10;
          }
        in
        let n = 6 in
        let summary, out = run_pool ~config ~workers:2 (pool_requests n) in
        Alcotest.(check int) "every request answered" n (List.length out);
        Alcotest.(check (list int)) "in order"
          (List.init n Fun.id)
          (List.filter_map response_id out);
        Alcotest.(check bool) "every response shed" true
          (List.for_all (fun l -> response_class l = Some "shed") out);
        Alcotest.(check int) "shed tallied by class" n
          (class_count summary.Pool.stats "shed");
        Alcotest.(check bool) "shed responses keep the invariant" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "a request's own deadline_ms field overrides the default"
      (fun () ->
        let t = Serve.create ~config:Serve.default_config () in
        let req deadline =
          Json.to_line
            (Json.Obj
               [
                 ("op", Json.Str "ping");
                 ("id", Json.Int 1);
                 ("deadline_ms", Json.Int deadline);
               ])
        in
        (* 50ms in queue vs a 10ms per-request deadline: shed *)
        Alcotest.(check (option string)) "aged out" (Some "shed")
          (response_class (Serve.handle_line ~queued_us:50_000 t (req 10)));
        (* deadline 0 disables shedding for that request *)
        Alcotest.(check bool) "no deadline, no shed" true
          (Helpers.contains ~needle:"\"ok\":true"
             (Serve.handle_line ~queued_us:50_000 t (req 0)));
        Alcotest.(check bool) "shed responses are counted" true
          (Loadgen.invariant_holds (Serve.metrics t)));
    case "admission shedding accounts every shed exactly once" (fun () ->
        (* shed_grace_ms = 0: any wake-up while the queue is still full
           sheds at admission. Whether that race fires depends on
           scheduling, so assert the accounting identities rather than a
           specific shed count. *)
        let n = 16 in
        let summary, out =
          run_pool ~workers:2 ~shed_grace_ms:0. (pool_requests n)
        in
        Alcotest.(check int) "every request answered" n (List.length out);
        Alcotest.(check (list int)) "in order"
          (List.init n Fun.id)
          (List.filter_map response_id out);
        let shed_responses =
          List.length
            (List.filter (fun l -> response_class l = Some "shed") out)
        in
        Alcotest.(check int) "stats agree with responses" shed_responses
          (class_count summary.Pool.stats "shed");
        Alcotest.(check int) "pool counter agrees" shed_responses
          (counter_of summary.Pool.metrics "scale/pool/shed");
        Alcotest.(check bool) "invariant holds" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "in-band metrics requests see the pool registry" (fun () ->
        let lines =
          Array.append (pool_requests 3)
            [| Json.to_line (Json.Obj [ ("op", Json.Str "metrics") ]) |]
        in
        let _, out = run_pool ~workers:2 lines in
        Alcotest.(check int) "four responses" 4 (List.length out);
        Alcotest.(check bool) "pool gauges visible in-band" true
          (List.exists
             (fun l -> Helpers.contains ~needle:"scale/pool/" l)
             out));
  ]

(* ------------------------------------------------------------------ *)
(* The persistent cache tier.                                          *)
(* ------------------------------------------------------------------ *)

let tmpdir () =
  let d = Filename.temp_file "mhc_persist" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Sys.rmdir dir with Sys_error _ -> ()

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> String.starts_with ~prefix:"entry-" f)

let persist_cases =
  [
    case "a warm restart serves from disk with the front end skipped"
      (fun () ->
        let dir = tmpdir () in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let a = Cache.create ~dir () in
        ignore (Cache.compile_run a ~opts:default_opts ~passes:[] ~src:demo);
        Alcotest.(check int) "written through" 1
          (cache_counter a "persist/writes");
        Cache.close a;
        (* a fresh cache over the same directory: the restarted server *)
        let b = Cache.create ~dir () in
        let config =
          {
            Serve.default_config with
            Serve.sleep = (fun _ -> ());
            hooks =
              {
                Serve.no_hooks with
                Serve.compile =
                  Some
                    (fun ~opts ~passes ~src ->
                      Cache.compile_run b ~opts ~passes ~src);
              };
          }
        in
        let t = Serve.create ~config () in
        let req =
          Json.to_line
            (Json.Obj [ ("op", Json.Str "run"); ("src", Json.Str demo) ])
        in
        let resp = Serve.handle_line t req in
        Alcotest.(check bool) "served ok from disk" true
          (Helpers.contains ~needle:"\"ok\":true" resp);
        Alcotest.(check int) "disk hit" 1 (cache_counter b "persist/hits");
        Alcotest.(check int)
          "no compile span at all: the front end never ran" 0
          (List.length
             (List.filter
                (fun (s : Metrics.span_stat) -> s.Metrics.sp_name = "compile")
                (Metrics.spans (Serve.metrics t)))));
    case "a corrupt entry is healed on read, never an exception" (fun () ->
        let dir = tmpdir () in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let a = Cache.create ~dir () in
        ignore (Cache.compile_run a ~opts:default_opts ~passes:[] ~src:demo);
        Cache.close a;
        (* tear the entry in half, as a crashed non-atomic writer would *)
        (match entry_files dir with
        | [ f ] ->
            let path = Filename.concat dir f in
            let bytes = In_channel.with_open_bin path In_channel.input_all in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc
                  (String.sub bytes 0 (String.length bytes / 2)))
        | l -> Alcotest.failf "expected one entry file, found %d"
                 (List.length l));
        let _, _, corrupt = Tc_scale.Persist.scan ~dir in
        Alcotest.(check int) "scan flags the torn entry" 1 corrupt;
        let b = Cache.create ~dir () in
        let art =
          Cache.compile_run b ~opts:default_opts ~passes:[] ~src:demo
        in
        Alcotest.(check int) "detected and dropped" 1
          (cache_counter b "persist/corrupt");
        Alcotest.(check int) "recompiled fresh" 1 (cache_counter b "misses");
        let exec =
          (Pipeline.exec ~budget:(Pipeline.Budget.fuel 1_000_000) art)
            .Pipeline.rendered
        in
        Alcotest.(check string) "fresh compile answers" "42" exec;
        Cache.close b;
        (* the heal rewrote the entry: a third start hits clean *)
        let c = Cache.create ~dir () in
        ignore (Cache.compile_run c ~opts:default_opts ~passes:[] ~src:demo);
        Alcotest.(check int) "healed entry hits" 1
          (cache_counter c "persist/hits");
        Alcotest.(check int) "nothing corrupt remains" 0
          (cache_counter c "persist/corrupt");
        Cache.close c);
    case "an injected torn write is a miss on restart, then healed"
      (fun () ->
        let dir = tmpdir () in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let a = Cache.create ~dir () in
        with_inject
          (Inject.plan ~rate:1.0 ~points:[ Inject.Cache_write ] ())
          (fun () ->
            ignore
              (Cache.compile_run a ~opts:default_opts ~passes:[] ~src:demo));
        Cache.close a;
        (* the torn bytes are on disk but can never validate *)
        let _, _, corrupt = Tc_scale.Persist.scan ~dir in
        Alcotest.(check int) "torn entry present, invalid" 1 corrupt;
        let b = Cache.create ~dir () in
        ignore (Cache.compile_run b ~opts:default_opts ~passes:[] ~src:demo);
        Alcotest.(check int) "torn entry dropped on read" 1
          (cache_counter b "persist/corrupt");
        Alcotest.(check int) "compiled fresh and rewrote" 1
          (cache_counter b "persist/writes");
        Cache.close b);
    case "an injected read fault heals like real corruption" (fun () ->
        let dir = tmpdir () in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let a = Cache.create ~dir () in
        ignore (Cache.compile_run a ~opts:default_opts ~passes:[] ~src:demo);
        Cache.close a;
        let b = Cache.create ~dir () in
        with_inject
          (Inject.plan ~rate:1.0 ~points:[ Inject.Cache_read ] ())
          (fun () ->
            ignore
              (Cache.compile_run b ~opts:default_opts ~passes:[] ~src:demo));
        Alcotest.(check int) "read fault counted as corruption" 1
          (cache_counter b "persist/corrupt");
        Alcotest.(check int) "request still served by recompiling" 1
          (cache_counter b "misses");
        Cache.close b);
    case "the Ident intern snapshot adopts into a compatible process"
      (fun () ->
        let module Ident = Tc_support.Ident in
        (* our own snapshot is trivially compatible *)
        Alcotest.(check bool) "self-adopt" true
          (Ident.adopt (Ident.snapshot ()));
        (* a snapshot claiming an existing spelling at a clashing stamp
           must be rejected, or persisted artifacts would lie *)
        let x = Ident.intern "persist_adopt_probe" in
        let _, ceiling = Ident.snapshot () in
        Alcotest.(check bool) "clashing stamp rejected" false
          (Ident.adopt
             ([ (Ident.text x, Ident.stamp x + 1) ], ceiling + 1)));
  ]

(* ------------------------------------------------------------------ *)
(* Oversized lines.                                                    *)
(* ------------------------------------------------------------------ *)

let oversize_cases =
  [
    case "a line over the cap answers bad-request (op oversized)"
      (fun () ->
        let config =
          {
            Serve.default_config with
            Serve.sleep = (fun _ -> ());
            max_line_bytes = 64;
          }
        in
        let t = Serve.create ~config () in
        let big =
          Json.to_line
            (Json.Obj
               [
                 ("op", Json.Str "run");
                 ("src", Json.Str (String.make 200 'x'));
               ])
        in
        let resp = Serve.handle_line t big in
        (match Json.parse resp with
        | Error m -> Alcotest.failf "unparseable response: %s" m
        | Ok r ->
            Alcotest.(check bool) "not ok" true
              (Json.member "ok" r = Some (Json.Bool false));
            Alcotest.(check bool) "op oversized" true
              (Json.member "op" r = Some (Json.Str "oversized")));
        Alcotest.(check int) "counted as a request" 1
          (counter_of (Serve.metrics t) "serve/requests");
        (* a line exactly at the cap still parses *)
        let small = Json.to_line (Json.Obj [ ("op", Json.Str "ping") ]) in
        Alcotest.(check bool) "under the cap is served" true
          (Helpers.contains ~needle:"\"ok\":true"
             (Serve.handle_line t small)));
    case "bounded_next buffers at most max_bytes + 1" (fun () ->
        let path = Filename.temp_file "mhc_scale" ".ndjson" in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.make 1000 'x');
            Out_channel.output_string oc "\nshort\n");
        let ic = In_channel.open_bin path in
        Fun.protect
          ~finally:(fun () ->
            In_channel.close ic;
            Sys.remove path)
          (fun () ->
            let next = Serve.bounded_next ~max_bytes:8 ic in
            (match next () with
            | Some l ->
                Alcotest.(check int) "truncated to cap + 1" 9
                  (String.length l)
            | None -> Alcotest.fail "expected the oversized line");
            Alcotest.(check (option string))
              "following line intact" (Some "short") (next ());
            Alcotest.(check (option string)) "then EOF" None (next ())));
  ]

(* ------------------------------------------------------------------ *)
(* Load generator.                                                     *)
(* ------------------------------------------------------------------ *)

let loadgen_cases =
  [
    case "a small run reports sane phases and holds the invariant"
      (fun () ->
        (* one worker: deterministic cache arithmetic (with more workers,
           simultaneous requests for a not-yet-inserted key can each
           miss — first-writer-wins racing is by design) *)
        let r = Loadgen.run ~clients:2 ~requests:6 ~workers:1 () in
        Alcotest.(check int) "cold all ok" 6 r.Loadgen.cold.Loadgen.ph_ok;
        Alcotest.(check int) "hot all ok" 6 r.Loadgen.hot.Loadgen.ph_ok;
        Alcotest.(check int) "hot phase: one warm-up miss per client" 4
          r.Loadgen.cache_hits;
        Alcotest.(check int) "misses: cold + warm-up" 8
          r.Loadgen.cache_misses;
        Alcotest.(check bool) "invariant held" true r.Loadgen.invariant_ok;
        (* trajectory rows parse and carry the gated metrics *)
        let dir = Filename.temp_file "mhc_bench" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let path = Loadgen.write_bench_rows ~dir r in
        let rows = In_channel.with_open_bin path In_channel.input_all in
        Sys.remove path;
        Sys.rmdir dir;
        match Json.parse rows with
        | Error m -> Alcotest.failf "BENCH_SERVE.json unparseable: %s" m
        | Ok (Json.List items) ->
            Alcotest.(check int) "nine rows" 9 (List.length items);
            Alcotest.(check bool) "shed row present for --slo bounds" true
              (List.exists
                 (fun row ->
                   Json.member "metric" row = Some (Json.Str "shed"))
                 items);
            Alcotest.(check bool) "hot_speedup row present" true
              (List.exists
                 (fun row ->
                   Json.member "metric" row = Some (Json.Str "hot_speedup"))
                 items)
        | Ok _ -> Alcotest.fail "expected a JSON array");
  ]

let tests =
  [
    ("scale cache", cache_cases);
    ("scale pool", pool_cases);
    ("scale supervision", supervision_cases);
    ("scale persist", persist_cases);
    ("scale oversize", oversize_cases);
    ("scale loadgen", loadgen_cases);
  ]
