let () =
  Alcotest.run "typeclasses"
    (Test_lexer.tests @ Test_parser.tests @ Test_types.tests
    @ Test_static.tests @ Test_infer.tests @ Test_eval.tests
    @ Test_translate.tests @ Test_opt.tests @ Test_tags.tests
    @ Test_prelude.tests @ Test_props.tests @ Test_programs.tests
    @ Test_fuzz.tests @ Test_deferral.tests @ Test_errors.tests
    @ Test_check.tests @ Test_cli.tests
    @ Test_differential.tests @ Test_vm.tests @ Test_obs.tests
    @ Test_resilience.tests @ Test_metrics.tests @ Test_rtrace.tests
    @ Test_scale.tests @ Test_net.tests)
