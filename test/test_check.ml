(** Tests for the accumulating front end ({!Pipeline.compile_collect}):
    multi-error recovery, diagnostic ordering, error caps and cascade
    control. Golden messages here pin down locations, so a regression in
    recovery shows up as a moved or missing diagnostic. *)

open Helpers
module Pipeline = Typeclasses.Pipeline
module Diagnostic = Tc_support.Diagnostic

let collect ?opts src : Pipeline.checked =
  Pipeline.compile_collect ?opts ~file:"test.mhs" src

(** Sorted, rendered diagnostics — what [mhc check] shows the user. *)
let rendered ?opts src : string list =
  List.map Diagnostic.to_string (Diagnostic.sort (collect ?opts src).diagnostics)

let check_diags name ?opts src expected =
  case name (fun () ->
      Alcotest.(check (list string)) name expected (rendered ?opts src))

(* A file with one parse error, one unification error and one ambiguity
   error: the issue's acceptance program. *)
let mixed = "f x = = x\n\ng :: Int\ng = True\n\nmain = show []\n"

let tests =
  [
    ( "check-collect",
      [
        check_diags "three independent errors in one run" mixed
          [ "test.mhs:1:7-7: error: parse error: expected an expression \
             (found '=')";
            "test.mhs:4:1-1: error: type mismatch: cannot unify 'Bool' with \
             'Int'";
            "test.mhs:6:8-11: error: ambiguous overloading: cannot determine \
             a type satisfying the context 'Text a => a'" ];
        check_diags "clean program yields no diagnostics"
          "double x = x + x\nmain = double 21\n" [];
        case "clean program still compiles to an artifact" (fun () ->
            match (collect "main = 42\n").artifact with
            | Some _ -> ()
            | None -> Alcotest.fail "expected an artifact");
        case "any error suppresses the artifact" (fun () ->
            match (collect mixed).artifact with
            | None -> ()
            | Some _ -> Alcotest.fail "expected no artifact");
        case "accumulating compile agrees with the fail-fast shim" (fun () ->
            (* same program, both entry points: compile must still raise
               (the compatibility contract), and its first error must be
               among the collected ones *)
            match compile mixed with
            | exception Tc_support.Diagnostic.Error d ->
                let first = Diagnostic.to_string d in
                let all = rendered mixed in
                if not (List.mem first all) then
                  Alcotest.failf "fail-fast error %S not collected" first
            | _ -> Alcotest.fail "expected compile to raise");
        check_diags "parser resynchronizes past two parse errors"
          "good1 = 41\n\noops1 = )\n\ngood2 = good1 + 1\n\noops2 x = let in \
           x\n\nbad :: Int\nbad = 'c'\n\nmain = good2\n"
          [ "test.mhs:3:9-9: error: parse error: expected an expression \
             (found ')')";
            "test.mhs:7:15-16: error: parse error: expected a pattern (found \
             'in')";
            "test.mhs:10:1-3: error: type mismatch: cannot unify 'Char' with \
             'Int'" ];
        check_diags "bad class declarations are isolated per declaration"
          "data Color = Red | Green | Blue\n\ninstance Eq Color where\n  x == \
           y = True\n\ninstance Eq Color where\n  x == y = False\n\ninstance \
           Frobnicable Color where\n  frob x = x\n\nmain = Red == Green\n"
          [ "test.mhs:6:1-9:8: error: duplicate instance 'Eq Color'";
            "test.mhs:9:1-12:4: error: unknown class 'Frobnicable'" ];
        case "one type error does not cascade into its uses" (fun () ->
            (* [g]'s body is broken, but [g] gets an error scheme, so the
               (well-typed) uses of [g] stay silent. *)
            let ds =
              rendered "g :: Int\ng = True\nh = g + 1\nk = g * 2\nmain = h + k\n"
            in
            Alcotest.(check int) "one diagnostic" 1 (List.length ds));
        case "diagnostics come out sorted by location" (fun () ->
            let ds = Diagnostic.sort (collect mixed).diagnostics in
            let locs =
              List.map (fun (d : Diagnostic.t) -> d.loc.Tc_support.Loc.start_pos.line) ds
            in
            Alcotest.(check (list int)) "line order" [ 1; 4; 6 ] locs);
        case "--max-errors caps the error count" (fun () ->
            (* ten independent type errors, capped at 3: three errors plus
               the "too many errors" warning *)
            let buf = Buffer.create 256 in
            for i = 1 to 10 do
              Buffer.add_string buf
                (Printf.sprintf "v%d :: Int\nv%d = 'c'\n" i i)
            done;
            Buffer.add_string buf "main = 0\n";
            let opts = { Pipeline.default_options with max_errors = 3 } in
            let r = collect ~opts (Buffer.contents buf) in
            let errors =
              List.filter Diagnostic.is_error r.diagnostics |> List.length
            in
            Alcotest.(check int) "errors capped" 3 errors;
            let truncated =
              List.exists
                (fun (d : Diagnostic.t) ->
                  contains ~needle:"too many errors" d.message)
                r.diagnostics
            in
            Alcotest.(check bool) "truncation notice" true truncated);
        case "max_errors <= 0 means unlimited" (fun () ->
            let buf = Buffer.create 256 in
            for i = 1 to 10 do
              Buffer.add_string buf
                (Printf.sprintf "v%d :: Int\nv%d = 'c'\n" i i)
            done;
            Buffer.add_string buf "main = 0\n";
            let opts = { Pipeline.default_options with max_errors = 0 } in
            let r = collect ~opts (Buffer.contents buf) in
            let errors =
              List.filter Diagnostic.is_error r.diagnostics |> List.length
            in
            Alcotest.(check int) "all ten" 10 errors);
        case "no diagnostics carry the Bug severity on user errors" (fun () ->
            let r = collect mixed in
            Alcotest.(check bool) "no ICE" false
              (List.exists
                 (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Bug)
                 r.diagnostics));
        case "warnings alone do not suppress the artifact" (fun () ->
            (* shadowing the prelude currently warns; any warning-only
               program must still produce an artifact *)
            let r = collect "main = 42\n" in
            Alcotest.(check bool) "artifact present" true
              (r.artifact <> None));
      ] );
  ]
