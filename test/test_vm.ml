(** Differential tests: the bytecode VM against the tree evaluator.

    For every example program and a small inline corpus, across
    strategy (dict, dict-flat, tags) × optimization (none, all) ×
    evaluation mode (lazy, strict), both backends must print the same
    result and report identical dictionary counters
    (dict_constructions, dict_fields, selections — plus applications,
    prim_calls and tag_dispatches, which also agree by construction).
    Error programs must fail with the same exception and message.
    The VM additionally honours its step and frame budgets, reported
    as the classified [Budget.Exhausted]. *)

open Helpers
module Pipeline = Typeclasses.Pipeline
module Counters = Tc_eval.Counters
module Eval = Tc_eval.Eval
module Budget = Tc_resilience.Budget

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let program name =
  read_file (Filename.concat "../examples/programs" (name ^ ".mhs"))

let flat_opts =
  { Pipeline.default_options with strategy = Pipeline.Dicts_flat }

(* The counters that must agree exactly between backends. *)
let signature (c : Counters.t) : int list =
  [
    c.dict_constructions; c.dict_fields; c.selections; c.applications;
    c.prim_calls; c.tag_dispatches;
  ]

let check_parity ?(what = "") (c : Pipeline.compiled) mode =
  let t = Pipeline.exec ~backend:`Tree ~mode ~budget:(Pipeline.Budget.fuel 50_000_000) c in
  let v = Pipeline.exec ~backend:`Vm ~mode ~budget:(Pipeline.Budget.fuel 500_000_000) c in
  Alcotest.(check string)
    (what ^ " rendered result") t.Pipeline.rendered v.Pipeline.rendered;
  Alcotest.(check (list int))
    (what ^ " counters [dicts; fields; sels; apps; prims; tags]")
    (signature t.Pipeline.counters)
    (signature v.Pipeline.counters)

(* ------------------------------------------------------------------ *)
(* Example programs: full matrix.                                      *)
(* ------------------------------------------------------------------ *)

let examples =
  [
    ("matrix", `Both); ("set", `Both); ("calculator", `Both);
    ("nqueens", `Both); ("parsec", `Both); ("regex", `Both);
    ("stats", `Both); ("primes", `Lazy_only);
  ]

let example_cases =
  List.concat_map
    (fun (name, modes) ->
      let src = lazy (program name) in
      List.concat_map
        (fun (sname, opts) ->
          List.map
            (fun (pname, passes) ->
              case
                (Printf.sprintf "%s %s %s" name sname pname)
                (fun () ->
                  let c = compile ~opts (Lazy.force src) in
                  let c = Pipeline.optimize passes c in
                  check_parity ~what:"lazy" c `Lazy;
                  match modes with
                  | `Both -> check_parity ~what:"strict" c `Strict
                  | `Lazy_only -> ()))
            [ ("opt=none", []); ("opt=all", Tc_opt.Opt.all) ])
        [ ("dict", Pipeline.default_options); ("dict-flat", flat_opts) ]
      @ [
          (* the §3 baseline runs on both backends too *)
          case (name ^ " tags") (fun () ->
              match
                Pipeline.compile
                  ~opts:{ Pipeline.default_options with
                          strategy = Pipeline.Tags }
                  ~file:"test.mhs" (Lazy.force src)
              with
              | c -> check_parity ~what:"tags" c `Lazy
              | exception Tc_support.Diagnostic.Error _ ->
                  (* some examples legitimately need dictionaries *)
                  ());
        ])
    examples

(* ------------------------------------------------------------------ *)
(* Inline corpus: targeted language features.                          *)
(* ------------------------------------------------------------------ *)

let corpus =
  [
    ( "superclass and defaults",
      {|
class MyEq a where
  eq :: a -> a -> Bool

class MyEq a => MyOrd a where
  lte :: a -> a -> Bool
  gt :: a -> a -> Bool
  gt x y = if lte x y then False else True

instance MyEq Int where
  eq = (==)

instance MyOrd Int where
  lte = (<=)

biggest :: MyOrd a => [a] -> a -> a
biggest [] b = b
biggest (x:xs) b = biggest xs (if gt x b then x else b)

main = (biggest [3,1,4,1,5] 0, eq (2 :: Int) 2)
|} );
    ( "dictionaries over nested lists",
      {|
elemOf :: Eq a => a -> [a] -> Bool
elemOf x [] = False
elemOf x (y:ys) = x == y || elemOf x ys

main = ( elemOf [1,2] [[0],[1,2],[3]]
       , elemOf "ab" ["cd", "ab"]
       , elemOf (1, 'x') [(2, 'y'), (1, 'x')] )
|} );
    ( "return-type overloading via literals",
      {|
double :: Num a => a -> a
double x = x + x

main = (double 21, double 1.25, double (3 :: Int))
|} );
    ( "case on literals with default",
      {|
describe :: Int -> [Char]
describe 0 = "zero"
describe 1 = "one"
describe n = "many"

main = (describe 0, describe 1, describe 7, case 'x' of { 'y' -> 0; _ -> 1 })
|} );
    ( "over- and partial application",
      {|
add :: Int -> Int -> Int
add x y = x + y

compose f g x = f (g x)

main = ( (\x -> \y -> x + y) 3 4
       , map (add 10) [1,2,3]
       , compose (add 1) (add 2) 5 )
|} );
    ( "mutual recursion in a letrec",
      {|
main =
  let isEven n = if n == 0 then True else isOdd (n - 1)
      isOdd n = if n == 0 then False else isEven (n - 1)
  in (isEven 10, isOdd 7, take 5 fibs)
  where fibs = 1 : 1 : zipWith (+) fibs (tail fibs)
|} );
    ( "laziness: infinite structures",
      {|
nats :: [Int]
nats = 0 : map (\n -> n + 1) nats

main = (take 5 nats, head (filter (\n -> n > 10) nats))
|} );
  ]

let corpus_cases =
  List.concat_map
    (fun (name, src) ->
      List.map
        (fun (sname, opts, passes) ->
          case
            (Printf.sprintf "corpus: %s (%s)" name sname)
            (fun () ->
              let c = compile ~opts src in
              let c = Pipeline.optimize passes c in
              check_parity ~what:"lazy" c `Lazy))
        [
          ("dict", Pipeline.default_options, []);
          ("dict-flat", flat_opts, []);
          ("dict opt", Pipeline.default_options, Tc_opt.Opt.all);
        ])
    corpus

(* ------------------------------------------------------------------ *)
(* Error parity: same exception, same message, both backends.          *)
(* ------------------------------------------------------------------ *)

let outcome f =
  match f () with
  | (r : Pipeline.result) -> "ok: " ^ r.Pipeline.rendered
  | exception Eval.User_error m -> "user error: " ^ m
  | exception Eval.Pattern_fail m -> "pattern fail: " ^ m
  | exception Eval.Runtime_error m -> "runtime error: " ^ m
  | exception Budget.Exhausted { resource; _ } ->
      "exhausted: " ^ Budget.resource_name resource

let error_programs =
  [
    ("user error", {|main = if True then error "boom" else (0 :: Int)|});
    ( "pattern fail",
      {|
firstOdd :: [Int] -> Int
firstOdd (x:xs) = if x == 1 then x else firstOdd xs
main = firstOdd [2, 4, 6]
|} );
    ( "error inside laziness",
      {|main = take 3 (1 : 2 : 3 : error "tail") |} );
  ]

let error_cases =
  List.map
    (fun (name, src) ->
      case ("errors: " ^ name) (fun () ->
          let c = compile src in
          let t = outcome (fun () -> Pipeline.exec ~backend:`Tree c) in
          let v = outcome (fun () -> Pipeline.exec ~backend:`Vm c) in
          Alcotest.(check string) name t v))
    error_programs

(* ------------------------------------------------------------------ *)
(* Budgets: fuel and the frame-stack runaway guard.                    *)
(* ------------------------------------------------------------------ *)

let deep_src =
  {|
count :: Int -> Int
count n = if n == 0 then 0 else 1 + count (n - 1)
main = count 50000
|}

let loop_src =
  {|
loop :: Int -> Int -> Int
loop acc n = if n == 0 then acc else loop (acc + n) (n - 1)
main = loop 0 100000
|}

let budget_cases =
  [
    case "deep non-tail recursion completes within the default budget"
      (fun () ->
        let c = compile deep_src in
        let r = Pipeline.exec ~backend:`Vm c in
        Alcotest.(check string) "result" "50000" r.Pipeline.rendered);
    case "frame budget reports deep recursion as classified exhaustion"
      (fun () ->
        let c = compile deep_src in
        let budget = { Budget.unlimited with frames = 1_000 } in
        match Pipeline.exec ~backend:`Vm ~budget c with
        | _ -> Alcotest.fail "expected Exhausted from the frame budget"
        | exception Budget.Exhausted { resource; limit; _ } ->
            Alcotest.(check string)
              "resource" "frames" (Budget.resource_name resource);
            Alcotest.(check int) "limit" 1_000 limit);
    case "step budget raises classified exhaustion" (fun () ->
        let c = compile deep_src in
        match Pipeline.exec ~backend:`Vm ~budget:(Budget.fuel 1_000) c with
        | _ -> Alcotest.fail "expected Exhausted"
        | exception Budget.Exhausted { resource; _ } ->
            Alcotest.(check string)
              "resource" "steps" (Budget.resource_name resource));
    case "tail calls run in constant frame space" (fun () ->
        (* 100k iterations under a 1k frame budget: only possible if
           TAILCALL replaces the frame instead of growing the stack *)
        let c = compile loop_src in
        let budget = { Budget.unlimited with frames = 1_000 } in
        let r = Pipeline.exec ~backend:`Vm ~mode:`Strict ~budget c in
        Alcotest.(check string) "result" "5000050000" r.Pipeline.rendered);
  ]

(* ------------------------------------------------------------------ *)
(* The disassembler names the dictionary instructions.                 *)
(* ------------------------------------------------------------------ *)

let disasm_cases =
  [
    case "disassembly spells out MKDICT/DICTSEL/TAILCALL" (fun () ->
        let c =
          compile
            {|
elemOf :: Eq a => a -> [a] -> Bool
elemOf x [] = False
elemOf x (y:ys) = x == y || elemOf x ys
main = elemOf [1] [[2], [1]]
|}
        in
        let text = Fmt.str "%a" Tc_vm.Bytecode.pp_program (Pipeline.bytecode c) in
        List.iter
          (fun needle ->
            if not (contains ~needle text) then
              Alcotest.failf "disassembly does not mention %s" needle)
          [ "MKDICT"; "DICTSEL"; "TAILCALL"; "SWITCH"; "proto" ]);
  ]

let tests =
  [
    ("vm-differential", example_cases);
    ("vm-corpus", corpus_cases @ error_cases);
    ("vm-budgets", budget_cases @ disasm_cases);
  ]
