(** Optimizer tests (§8.4, §8.8, §6.3, §9): semantics preservation and the
    operation-count improvements each pass promises. *)

open Helpers
module Opt = Tc_opt.Opt

let programs =
  [
    ("member-nested", "main = member [1,2] [[1],[1,2],[3]]");
    ("sum-int", "main = sum (enumFromTo 1 50)");
    ( "sort",
      {|
qsort :: Ord a => [a] -> [a]
qsort [] = []
qsort (x:xs) = qsort (filter (\y -> y <= x) xs) ++ [x] ++ qsort (filter (\y -> y > x) xs)
main = (qsort [3,1,2], qsort "typeclasses")
|} );
    ( "show-tree",
      {|
data Tree a = Leaf | Node (Tree a) a (Tree a) deriving (Eq, Text)
insert :: Ord a => a -> Tree a -> Tree a
insert x Leaf = Node Leaf x Leaf
insert x (Node l v r) = if x <= v then Node (insert x l) v r else Node l v (insert x r)
main = str (foldr insert Leaf [3,1,2])
|} );
    ( "defaults",
      "main = (3 /= 4, max 'a' 'b', [1] >= [1], signum (-9), abs (-2.5))" );
    ( "hoistable",
      {|
chain :: Eq a => a -> [[a]] -> Bool
chain x []       = False
chain x (ys:yss) = member [x] [ys] || chain x yss
main = chain 5 (map (\n -> [n]) (enumFromTo 1 20))
|} );
  ]

let pipelines =
  [
    ("none", []);
    ("simplify", [ Opt.Simplify ]);
    ("inner-entry", Opt.[ Simplify; Inner_entry ]);
    ("hoist", Opt.[ Simplify; Inner_entry; Hoist ]);
    ("spec", Opt.[ Simplify; Specialise; Simplify; Dce ]);
    ("all", Opt.all);
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the realistic example programs join the preservation corpus (primes is
   lazy-only: infinite streams) *)
let example_programs =
  List.map
    (fun name ->
      (name, read_file (Printf.sprintf "../examples/programs/%s.mhs" name)))
    [ "matrix"; "set"; "calculator"; "regex"; "parsec"; "stats" ]

let preservation_cases =
  List.map
    (fun (pname, src) ->
      case (Printf.sprintf "%s preserved by every pipeline" pname) (fun () ->
          let reference = run src in
          List.iter
            (fun (oname, passes) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/%s" pname oname)
                reference (run ~passes src);
              Alcotest.(check string)
                (Printf.sprintf "%s/%s strict" pname oname)
                reference
                (run ~mode:`Strict ~passes src))
            pipelines))
    (programs @ example_programs)

(* the same corpus under the flat dictionary layout: the optimizer must
   respect whichever layout the translation chose *)
let flat_opts =
  { Typeclasses.Pipeline.default_options with
    strategy = Typeclasses.Pipeline.Dicts_flat }

let flat_preservation_cases =
  List.map
    (fun (pname, src) ->
      case
        (Printf.sprintf "%s preserved under the flat layout" pname)
        (fun () ->
          let reference = run ~opts:flat_opts src in
          List.iter
            (fun (oname, passes) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/flat/%s" pname oname)
                reference
                (run ~opts:flat_opts ~passes src))
            pipelines))
    (programs @ example_programs)

(* ------------------------------------------------------------------ *)
(* Profile-guided specialization (§9 + the redesigned optimizer API):   *)
(* policy budgets, the typed report, hot/cold splitting.                *)
(* ------------------------------------------------------------------ *)

module Pipeline = Typeclasses.Pipeline
module S = Tc_opt.Specialise
module Profile = Tc_obs.Profile

let spec_passes = Opt.[ Simplify; Specialise; Simplify; Dce ]

let render_core (p : Tc_core_ir.Core.program) : string =
  Fmt.str "%a" Tc_core_ir.Core_pp.pp_program p

(* The profile -> optimize loop in process: compile, profile one run,
   feed the spec profile back into the same artifact, re-optimize. *)
let pgo ?(threshold = 1) ?(max_clones = 2000) ?(max_growth = 0.)
    ?(passes = spec_passes) src : Pipeline.compiled =
  let c = compile src in
  let r =
    Pipeline.exec ~profile:true ~budget:(Pipeline.Budget.fuel 50_000_000) c
  in
  let sp = Profile.spec_of_report (Option.get r.Pipeline.profile) in
  let c =
    {
      c with
      Pipeline.options =
        {
          c.Pipeline.options with
          Pipeline.specialise =
            {
              Pipeline.spec_profile = Some sp;
              spec_threshold = threshold;
              spec_max_clones = max_clones;
              spec_max_growth = max_growth;
            };
        };
    }
  in
  Pipeline.optimize passes c

let exec_counters (c : Pipeline.compiled) =
  let r = Pipeline.exec ~budget:(Pipeline.Budget.fuel 50_000_000) c in
  (r.Pipeline.rendered, r.Pipeline.counters)

let report_of (c : Pipeline.compiled) : S.report =
  match c.Pipeline.spec_report with
  | Some r -> r
  | None -> Alcotest.fail "optimize ran Specialise but left no spec_report"

(* one clearly hot recursion next to a binding executed only once *)
let hotcold_src =
  {|
hotSum :: Num a => a -> a
hotSum n = if n == 0 then 0 else n + hotSum (n - 1)
coldSquare :: Num a => a -> a
coldSquare x = x * x
main = (hotSum (200 :: Int), coldSquare (2 :: Int))
|}

let pgo_cases =
  [
    case "clone budget 0 is the identity transform" (fun () ->
        List.iter
          (fun (pname, src) ->
            let c = compile src in
            let before = render_core c.Pipeline.core in
            let p', rep =
              S.program ~policy:{ S.default_policy with S.max_clones = 0 }
                c.Pipeline.core
            in
            Alcotest.(check string)
              (pname ^ " core unchanged") before (render_core p');
            Alcotest.(check int) (pname ^ " no clones") 0 rep.S.sr_clones;
            Alcotest.(check int)
              (pname ^ " no sites rewritten") 0 rep.S.sr_call_sites;
            Alcotest.(check int)
              (pname ^ " size unchanged") rep.S.sr_size_before
              rep.S.sr_size_after)
          programs);
    case "budget 0 through the Pipeline options is also the identity"
      (fun () ->
        let c = compile hotcold_src in
        let before = render_core c.Pipeline.core in
        let c' =
          Pipeline.optimize [ Opt.Specialise ]
            {
              c with
              Pipeline.options =
                {
                  c.Pipeline.options with
                  Pipeline.specialise =
                    { Pipeline.default_spec with Pipeline.spec_max_clones = 0 };
                };
            }
        in
        Alcotest.(check string) "core unchanged" before
          (render_core c'.Pipeline.core);
        Alcotest.(check int) "report shows zero clones" 0
          (report_of c').S.sr_clones);
    case "profiled hotness splits hot from cold bindings" (fun () ->
        (* threshold 50: hotSum's sites carry ~200 hits each, coldSquare's
           exactly one — only hotSum may be cloned *)
        let cs = pgo ~threshold:50 ~passes:Opt.[ Simplify; Specialise ]
            hotcold_src
        in
        let rep = report_of cs in
        Alcotest.(check bool) "profile-guided" true rep.S.sr_profile_guided;
        Alcotest.(check bool) "some binding is hot" true
          (rep.S.sr_hot_binds >= 1);
        Alcotest.(check bool) "the cold tail exists" true
          (rep.S.sr_cold_binds >= 1);
        Alcotest.(check bool) "hot bindings got clones" true
          (rep.S.sr_clones >= 1);
        (* semantics preserved, and the hot dispatch is gone: the only
           selections left at run time are coldSquare's single visit *)
        let rendered, counters = exec_counters cs in
        let reference, before = run_counters hotcold_src in
        Alcotest.(check string) "same result" reference rendered;
        Alcotest.(check bool) "hot dispatch eliminated" true
          (counters.selections < 20);
        Alcotest.(check bool) "cold tail still dispatches" true
          (counters.selections > 0);
        Alcotest.(check bool) "was dispatch-heavy before" true
          (before.selections > 400));
    case "zero selections remain at specialized sites" (fun () ->
        (* every executed binding is hot at threshold 1: re-profiling the
           specialized artifact must find no dispatch at all *)
        let src =
          {|
class Work a where
  work :: a -> Int
instance Work Int where
  work n = n + 1
runAll :: Work a => Int -> a -> Int
runAll n x = if n == 0 then 0 else work x + runAll (n - 1) x
main = runAll 50 (1 :: Int)
|}
        in
        let cs = pgo src in
        let r =
          Pipeline.exec ~profile:true
            ~budget:(Pipeline.Budget.fuel 50_000_000) cs
        in
        Alcotest.(check int) "no run-time selections" 0
          r.Pipeline.counters.selections;
        Alcotest.(check int) "no run-time constructions" 0
          r.Pipeline.counters.dict_constructions;
        match r.Pipeline.profile with
        | Some p ->
            Alcotest.(check int) "re-profile finds no hit sel sites" 0
              (List.length p.Profile.r_sels)
        | None -> Alcotest.fail "profiling was requested");
    case "clone budget refusals are counted, semantics preserved" (fun () ->
        let cs = pgo ~max_clones:1 hotcold_src in
        let rep = report_of cs in
        Alcotest.(check int) "one clone minted" 1 rep.S.sr_clones;
        Alcotest.(check bool) "refusals counted" true
          (rep.S.sr_budget_skips >= 1);
        let rendered, _ = exec_counters cs in
        Alcotest.(check string) "same result" (run hotcold_src) rendered);
    case "growth cap at 1.0 refuses every clone" (fun () ->
        let c = compile hotcold_src in
        let _, rep =
          S.program ~policy:{ S.default_policy with S.max_growth = 1.0 }
            c.Pipeline.core
        in
        Alcotest.(check int) "no clones fit" 0 rep.S.sr_clones;
        Alcotest.(check bool) "refusals counted" true
          (rep.S.sr_budget_skips >= 1));
    case "report accounting is internally consistent" (fun () ->
        let cs = pgo hotcold_src in
        let rep = report_of cs in
        Alcotest.(check bool) "sizes positive" true
          (rep.S.sr_size_before > 0 && rep.S.sr_size_after > 0);
        Alcotest.(check bool) "growth matches sizes" true
          (Float.abs
             (S.growth rep
             -. float_of_int rep.S.sr_size_after
                /. float_of_int rep.S.sr_size_before)
          < 1e-9);
        Alcotest.(check bool) "rewrites need clones" true
          (rep.S.sr_clones = 0 || rep.S.sr_call_sites >= rep.S.sr_clones));
    case "static mode (no profile) still specializes everything" (fun () ->
        let c = compile hotcold_src in
        let c' = Pipeline.optimize spec_passes c in
        let rep = report_of c' in
        Alcotest.(check bool) "not profile-guided" false
          rep.S.sr_profile_guided;
        Alcotest.(check int) "no cold tail without a profile" 0
          rep.S.sr_cold_binds;
        let rendered, counters = exec_counters c' in
        Alcotest.(check string) "same result" (run hotcold_src) rendered;
        Alcotest.(check int) "all dispatch gone" 0 counters.selections);
  ]

let tests =
  [
    ("opt-preservation", preservation_cases);
    ("opt-preservation-flat", flat_preservation_cases);
    ( "opt-improvements",
      [
        case "specialization eliminates dictionary operations (§9, E4)"
          (fun () ->
            let src = "main = (sum (enumFromTo 1 40), member 3 [1,2,3])" in
            let _, before = run_counters src in
            let _, after =
              run_counters ~passes:Opt.[ Simplify; Specialise; Simplify; Dce ] src
            in
            Alcotest.(check bool) "had dispatch before" true
              (before.selections > 0);
            Alcotest.(check int) "no selections after" 0 after.selections;
            Alcotest.(check int) "no constructions after" 0
              after.dict_constructions);
        case "hoisting makes per-iteration construction constant (§8.8, E5)"
          (fun () ->
            let src n =
              Printf.sprintf
                {|
chain :: Eq a => a -> [[a]] -> Bool
chain x []       = False
chain x (ys:yss) = member [x] [ys] || chain x yss
main = chain 0 (map (\n -> [n]) (enumFromTo 1 %d))
|}
                n
            in
            let dicts ?passes n =
              (snd (run_counters ?passes (src n))).dict_constructions
            in
            (* naive: grows with n *)
            Alcotest.(check bool) "naive grows" true (dicts 40 > dicts 20 + 10);
            (* hoisted: constant in n *)
            let h = Opt.[ Simplify; Inner_entry; Hoist ] in
            Alcotest.(check int) "hoisted constant" (dicts ~passes:h 20)
              (dicts ~passes:h 40));
        case "inner entry avoids repeated dictionary passing (§6.3, E10)"
          (fun () ->
            let src = "main = sum (enumFromTo 1 60)" in
            let _, plain = run_counters ~passes:[ Opt.Simplify ] src in
            let _, inner =
              run_counters ~passes:Opt.[ Simplify; Inner_entry ] src
            in
            Alcotest.(check bool) "fewer applications" true
              (inner.applications < plain.applications));
        case "dead code elimination shrinks the program" (fun () ->
            let c = compile "main = 42" in
            let count p =
              List.length
                (List.concat_map Tc_core_ir.Core.binds_of_group
                   p.Typeclasses.Pipeline.core.p_binds)
            in
            let c' = Typeclasses.Pipeline.optimize [ Opt.Dce ] c in
            Alcotest.(check bool) "smaller" true (count c' < count c));
        case "simplify collapses selection from a literal dictionary" (fun () ->
            let open Tc_core_ir.Core in
            let tag =
              { dt_class = Tc_support.Ident.intern "C";
                dt_tycon = Tc_support.Ident.intern "T";
                dt_site = fresh_site () }
            in
            let d = MkDict (tag, [ Lit (Tc_syntax.Ast.LInt 1); Lit (Tc_syntax.Ast.LInt 2) ]) in
            let e =
              Sel
                ( { sel_class = tag.dt_class; sel_index = 1; sel_label = "m";
                    sel_site = fresh_site () },
                  d )
            in
            match Tc_opt.Simplify.expr e with
            | Lit (Tc_syntax.Ast.LInt 2) -> ()
            | other ->
                Alcotest.failf "expected literal 2, got %s"
                  (Tc_core_ir.Core_pp.to_string other));
        case "local function at one overloading loses its dictionary (§8.4)"
          (fun () ->
            (* "local functions which are inferred to have an overloaded
               type but are used at only one overloading ... the dictionary
               can be reduced to a constant" *)
            let src =
              {|
f :: [Int] -> [Int]
f xs = let g y = y + y + 1 in map g (map g xs)
main = f [1,2,3]
|}
            in
            let rendered, after =
              run_counters ~passes:Opt.[ Simplify; Specialise; Simplify; Dce ] src
            in
            Alcotest.(check string) "result" "[7, 11, 15]" rendered;
            Alcotest.(check int) "no selections" 0 after.selections;
            Alcotest.(check int) "no constructions" 0 after.dict_constructions);
        case "local reduction leaves multi-overloading functions alone"
          (fun () ->
            (* g is used at two types: its dictionary must stay *)
            let src =
              {|
f :: (Int, Float)
f = let g y = y + y in (g 1, g 1.5)
main = f
|}
            in
            Alcotest.(check string) "still correct" "(2, 3.0)"
              (run ~passes:Opt.[ Simplify; Specialise; Simplify; Dce ] src));
        case "specialization respects shadowing of overloaded names" (fun () ->
            (* regression: a local binding shadowing a top-level overloaded
               name (here the prelude's member) must not be rewritten
               against the top-level body *)
            let src = {|main = let member = \x -> x * 10 in member (3 :: Int)|} in
            Alcotest.(check string) "shadowed local wins" "30"
              (run ~passes:Opt.all src);
            let src2 =
              {|
f :: Int -> Int
f n = let g y = y + y in let g z = z * 100 in g n
main = f 3
|}
            in
            Alcotest.(check string) "nested shadowing" "300"
              (run ~passes:Opt.all src2));
        case "optimizer output stays lint-clean" (fun () ->
            List.iter
              (fun (_, src) ->
                let c = compile src in
                List.iter
                  (fun (_, passes) ->
                    ignore (Typeclasses.Pipeline.optimize passes c))
                  pipelines)
              programs);
      ] );
    ("opt-specialise-pgo", pgo_cases);
  ]
