(** Optimizer tests (§8.4, §8.8, §6.3, §9): semantics preservation and the
    operation-count improvements each pass promises. *)

open Helpers
module Opt = Tc_opt.Opt

let programs =
  [
    ("member-nested", "main = member [1,2] [[1],[1,2],[3]]");
    ("sum-int", "main = sum (enumFromTo 1 50)");
    ( "sort",
      {|
qsort :: Ord a => [a] -> [a]
qsort [] = []
qsort (x:xs) = qsort (filter (\y -> y <= x) xs) ++ [x] ++ qsort (filter (\y -> y > x) xs)
main = (qsort [3,1,2], qsort "typeclasses")
|} );
    ( "show-tree",
      {|
data Tree a = Leaf | Node (Tree a) a (Tree a) deriving (Eq, Text)
insert :: Ord a => a -> Tree a -> Tree a
insert x Leaf = Node Leaf x Leaf
insert x (Node l v r) = if x <= v then Node (insert x l) v r else Node l v (insert x r)
main = str (foldr insert Leaf [3,1,2])
|} );
    ( "defaults",
      "main = (3 /= 4, max 'a' 'b', [1] >= [1], signum (-9), abs (-2.5))" );
    ( "hoistable",
      {|
chain :: Eq a => a -> [[a]] -> Bool
chain x []       = False
chain x (ys:yss) = member [x] [ys] || chain x yss
main = chain 5 (map (\n -> [n]) (enumFromTo 1 20))
|} );
  ]

let pipelines =
  [
    ("none", []);
    ("simplify", [ Opt.Simplify ]);
    ("inner-entry", Opt.[ Simplify; Inner_entry ]);
    ("hoist", Opt.[ Simplify; Inner_entry; Hoist ]);
    ("spec", Opt.[ Simplify; Specialise; Simplify; Dce ]);
    ("all", Opt.all);
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the realistic example programs join the preservation corpus (primes is
   lazy-only: infinite streams) *)
let example_programs =
  List.map
    (fun name ->
      (name, read_file (Printf.sprintf "../examples/programs/%s.mhs" name)))
    [ "matrix"; "set"; "calculator"; "regex"; "parsec"; "stats" ]

let preservation_cases =
  List.map
    (fun (pname, src) ->
      case (Printf.sprintf "%s preserved by every pipeline" pname) (fun () ->
          let reference = run src in
          List.iter
            (fun (oname, passes) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/%s" pname oname)
                reference (run ~passes src);
              Alcotest.(check string)
                (Printf.sprintf "%s/%s strict" pname oname)
                reference
                (run ~mode:`Strict ~passes src))
            pipelines))
    (programs @ example_programs)

(* the same corpus under the flat dictionary layout: the optimizer must
   respect whichever layout the translation chose *)
let flat_opts =
  { Typeclasses.Pipeline.default_options with
    strategy = Typeclasses.Pipeline.Dicts_flat }

let flat_preservation_cases =
  List.map
    (fun (pname, src) ->
      case
        (Printf.sprintf "%s preserved under the flat layout" pname)
        (fun () ->
          let reference = run ~opts:flat_opts src in
          List.iter
            (fun (oname, passes) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/flat/%s" pname oname)
                reference
                (run ~opts:flat_opts ~passes src))
            pipelines))
    (programs @ example_programs)

let tests =
  [
    ("opt-preservation", preservation_cases);
    ("opt-preservation-flat", flat_preservation_cases);
    ( "opt-improvements",
      [
        case "specialization eliminates dictionary operations (§9, E4)"
          (fun () ->
            let src = "main = (sum (enumFromTo 1 40), member 3 [1,2,3])" in
            let _, before = run_counters src in
            let _, after =
              run_counters ~passes:Opt.[ Simplify; Specialise; Simplify; Dce ] src
            in
            Alcotest.(check bool) "had dispatch before" true
              (before.selections > 0);
            Alcotest.(check int) "no selections after" 0 after.selections;
            Alcotest.(check int) "no constructions after" 0
              after.dict_constructions);
        case "hoisting makes per-iteration construction constant (§8.8, E5)"
          (fun () ->
            let src n =
              Printf.sprintf
                {|
chain :: Eq a => a -> [[a]] -> Bool
chain x []       = False
chain x (ys:yss) = member [x] [ys] || chain x yss
main = chain 0 (map (\n -> [n]) (enumFromTo 1 %d))
|}
                n
            in
            let dicts ?passes n =
              (snd (run_counters ?passes (src n))).dict_constructions
            in
            (* naive: grows with n *)
            Alcotest.(check bool) "naive grows" true (dicts 40 > dicts 20 + 10);
            (* hoisted: constant in n *)
            let h = Opt.[ Simplify; Inner_entry; Hoist ] in
            Alcotest.(check int) "hoisted constant" (dicts ~passes:h 20)
              (dicts ~passes:h 40));
        case "inner entry avoids repeated dictionary passing (§6.3, E10)"
          (fun () ->
            let src = "main = sum (enumFromTo 1 60)" in
            let _, plain = run_counters ~passes:[ Opt.Simplify ] src in
            let _, inner =
              run_counters ~passes:Opt.[ Simplify; Inner_entry ] src
            in
            Alcotest.(check bool) "fewer applications" true
              (inner.applications < plain.applications));
        case "dead code elimination shrinks the program" (fun () ->
            let c = compile "main = 42" in
            let count p =
              List.length
                (List.concat_map Tc_core_ir.Core.binds_of_group
                   p.Typeclasses.Pipeline.core.p_binds)
            in
            let c' = Typeclasses.Pipeline.optimize [ Opt.Dce ] c in
            Alcotest.(check bool) "smaller" true (count c' < count c));
        case "simplify collapses selection from a literal dictionary" (fun () ->
            let open Tc_core_ir.Core in
            let tag =
              { dt_class = Tc_support.Ident.intern "C";
                dt_tycon = Tc_support.Ident.intern "T";
                dt_site = fresh_site () }
            in
            let d = MkDict (tag, [ Lit (Tc_syntax.Ast.LInt 1); Lit (Tc_syntax.Ast.LInt 2) ]) in
            let e =
              Sel
                ( { sel_class = tag.dt_class; sel_index = 1; sel_label = "m";
                    sel_site = fresh_site () },
                  d )
            in
            match Tc_opt.Simplify.expr e with
            | Lit (Tc_syntax.Ast.LInt 2) -> ()
            | other ->
                Alcotest.failf "expected literal 2, got %s"
                  (Tc_core_ir.Core_pp.to_string other));
        case "local function at one overloading loses its dictionary (§8.4)"
          (fun () ->
            (* "local functions which are inferred to have an overloaded
               type but are used at only one overloading ... the dictionary
               can be reduced to a constant" *)
            let src =
              {|
f :: [Int] -> [Int]
f xs = let g y = y + y + 1 in map g (map g xs)
main = f [1,2,3]
|}
            in
            let rendered, after =
              run_counters ~passes:Opt.[ Simplify; Specialise; Simplify; Dce ] src
            in
            Alcotest.(check string) "result" "[7, 11, 15]" rendered;
            Alcotest.(check int) "no selections" 0 after.selections;
            Alcotest.(check int) "no constructions" 0 after.dict_constructions);
        case "local reduction leaves multi-overloading functions alone"
          (fun () ->
            (* g is used at two types: its dictionary must stay *)
            let src =
              {|
f :: (Int, Float)
f = let g y = y + y in (g 1, g 1.5)
main = f
|}
            in
            Alcotest.(check string) "still correct" "(2, 3.0)"
              (run ~passes:Opt.[ Simplify; Specialise; Simplify; Dce ] src));
        case "specialization respects shadowing of overloaded names" (fun () ->
            (* regression: a local binding shadowing a top-level overloaded
               name (here the prelude's member) must not be rewritten
               against the top-level body *)
            let src = {|main = let member = \x -> x * 10 in member (3 :: Int)|} in
            Alcotest.(check string) "shadowed local wins" "30"
              (run ~passes:Opt.all src);
            let src2 =
              {|
f :: Int -> Int
f n = let g y = y + y in let g z = z * 100 in g n
main = f 3
|}
            in
            Alcotest.(check string) "nested shadowing" "300"
              (run ~passes:Opt.all src2));
        case "optimizer output stays lint-clean" (fun () ->
            List.iter
              (fun (_, src) ->
                let c = compile src in
                List.iter
                  (fun (_, passes) ->
                    ignore (Typeclasses.Pipeline.optimize passes c))
                  pipelines)
              programs);
      ] );
  ]
