(** Lexer and layout tests. *)

open Tc_syntax

let toks src =
  List.map (fun (t : Token.spanned) -> t.tok) (Lexer.tokenize ~file:"t" src)

let laid src =
  List.map (fun (t : Token.spanned) -> t.tok) (Layout.tokenize ~file:"t" src)

let show ts = String.concat " " (List.map Token.to_string ts)

let check name src expected =
  Helpers.case name (fun () ->
      Alcotest.(check string) name expected (show (toks src)))

let check_layout name src expected =
  Helpers.case name (fun () ->
      Alcotest.(check string) name expected (show (laid src)))

let strip_eof s = s ^ " <eof>"

let tests =
  [
    ( "lexer",
      [
        check "identifiers" "foo Bar baz'" (strip_eof "foo Bar baz'");
        check "keywords" "let in where class instance data"
          (strip_eof "let in where class instance data");
        check "integers" "0 42 100" (strip_eof "0 42 100");
        Helpers.case "floats" (fun () ->
            match toks "1.5 2.0e3" with
            | [ Token.FLOAT a; Token.FLOAT b; Token.EOF ] ->
                Alcotest.(check (float 1e-9)) "a" 1.5 a;
                Alcotest.(check (float 1e-9)) "b" 2000.0 b
            | _ -> Alcotest.fail "expected two float tokens");
        check "operators" "== /= <= + ++ . $"
          (strip_eof "== /= <= + ++ . $");
        check "reserved operators" "= :: => -> \\ | @"
          (strip_eof "= :: => -> \\ | @");
        check "cons is a consym" "x : xs" (strip_eof "x : xs");
        Helpers.case "char literals" (fun () ->
            match toks {|'a' '\n' '\\'|} with
            | [ Token.CHAR 'a'; Token.CHAR '\n'; Token.CHAR '\\'; Token.EOF ] -> ()
            | _ -> Alcotest.fail "bad char literals");
        Helpers.case "string literals" (fun () ->
            match toks {|"hello\nworld"|} with
            | [ Token.STRING "hello\nworld"; Token.EOF ] -> ()
            | _ -> Alcotest.fail "bad string literal");
        check "line comment" "x -- a comment\ny" (strip_eof "x y");
        check "dashes operator is not a comment start" "x --> y"
          (strip_eof "x --> y");
        check "block comment" "x {- hi -} y" (strip_eof "x y");
        check "nested block comment" "x {- a {- b -} c -} y" (strip_eof "x y");
        check "underscore wildcard" "_ _x" (strip_eof "_ _x");
        check "negative-looking minus" "-5" (strip_eof "- 5");
        Helpers.case "unterminated string fails" (fun () ->
            match toks {|"abc|} with
            | exception Tc_support.Diagnostic.Error _ -> ()
            | _ -> Alcotest.fail "expected a lexer error");
        Helpers.case "unterminated comment fails" (fun () ->
            match toks "{- foo" with
            | exception Tc_support.Diagnostic.Error _ -> ()
            | _ -> Alcotest.fail "expected a lexer error");
        Helpers.case "positions recorded" (fun () ->
            match Lexer.tokenize ~file:"t" "ab\n  cd" with
            | [ a; b; _eof ] ->
                Alcotest.(check int) "a line" 1 a.loc.start_pos.line;
                Alcotest.(check int) "b line" 2 b.loc.start_pos.line;
                Alcotest.(check int) "b col" 3 b.loc.start_pos.col
            | _ -> Alcotest.fail "expected two tokens");
      ] );
    ( "layout",
      [
        check_layout "empty input yields an empty block" ""
          "{(layout) }(layout) <eof>";
        check_layout "top level opens a block" "x = 1"
          (strip_eof "{(layout) x = 1 }(layout)");
        check_layout "same column separates" "x = 1\ny = 2"
          (strip_eof "{(layout) x = 1 ;(layout) y = 2 }(layout)");
        check_layout "continuation line" "x = 1 +\n      2"
          (strip_eof "{(layout) x = 1 + 2 }(layout)");
        check_layout "where opens nested block" "f = y where\n  y = 1"
          (strip_eof "{(layout) f = y where {(layout) y = 1 }(layout) }(layout)");
        check_layout "let/in inline" "v = let x = 1 in x"
          (strip_eof "{(layout) v = let {(layout) x = 1 }(layout) in x }(layout)");
        check_layout "let multiline with in" "v = let x = 1\n        y = 2\n    in x"
          (strip_eof
             "{(layout) v = let {(layout) x = 1 ;(layout) y = 2 }(layout) in \
              x }(layout)");
        check_layout "explicit braces respected" "f = g where { a = 1; b = 2 }"
          (strip_eof
             "{(layout) f = g where { a = 1 ; b = 2 } }(layout)");
        check_layout "case alternatives" "f = case x of\n  1 -> a\n  2 -> b"
          (strip_eof
             "{(layout) f = case x of {(layout) 1 -> a ;(layout) 2 -> b \
              }(layout) }(layout)");
        check_layout "dedent closes nested blocks"
          "f = x where\n  g = y where\n    h = 1\nk = 2"
          (strip_eof
             "{(layout) f = x where {(layout) g = y where {(layout) h = 1 \
              }(layout) }(layout) ;(layout) k = 2 }(layout)");
      ] );
  ]
