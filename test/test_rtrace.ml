(** The per-request flight recorder and its propagation through serve
    and the worker pool.

    - Trace IDs mint atomically from 1; sampling keeps every Nth ID and
      the disabled recorder mints 0 — and, like a disabled {!Metrics}
      registry, allocates nothing (checked with the same
      [Gc.minor_words] delta technique).
    - The per-domain ring is bounded: wraparound keeps the newest
      events and counts the overwritten ones as [dropped].
    - Dumps are Chrome trace-event JSON, and {!Rtrace.top_slow} reads
      one back into a slowest-requests digest.
    - Under serve (injected clock, both backends) every response
      carries one trace ID, the recorded phase events nest inside that
      request's [request/<op>] root span, and the per-phase durations
      sum to no more than the root's.
    - Under a 4-worker pool the same holds, plus [queue] and [emit]
      events recorded off the handling worker's domain share the
      request's ID. *)

open Helpers
module Serve = Typeclasses.Serve
module Pool = Tc_scale.Pool
module Rtrace = Tc_obs.Rtrace
module Metrics = Tc_obs.Metrics
module Span = Tc_obs.Span
module Json = Tc_obs.Json

let decode line =
  match Json.parse line with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad response %s: %s" line m

let events_of_dump d =
  match Json.member "traceEvents" d with
  | Some (Json.List evs) -> evs
  | _ -> Alcotest.failf "no traceEvents array: %s" (Json.to_line d)

let dropped_of_dump d =
  match Json.member "dropped" d with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.fail "no dropped count"

let ev_name e =
  match Json.member "name" e with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail "event without name"

(* ts/dur are microseconds (floats) in the dump *)
let ev_num field e =
  match Json.member field e with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "event without %s" field

let ev_trace e =
  match Option.bind (Json.member "args" e) (Json.member "trace") with
  | Some (Json.Int t) -> t
  | _ -> Alcotest.fail "event without args.trace"

let is_root e = String.starts_with ~prefix:"request/" (ev_name e)

(* top-level phases only (no '/'): summing nested sub-spans too would
   double-count time already inside their parents *)
let is_phase e =
  let n = ev_name e in
  (not (is_root e)) && (not (String.contains n '/')) && n <> "queue"
  && n <> "emit"

(* ------------------------------------------------------------------ *)
(* The recorder.                                                       *)
(* ------------------------------------------------------------------ *)

let recorder_cases =
  [
    case "IDs mint atomically from 1; sampling keeps every Nth" (fun () ->
        let rt = Rtrace.create ~sample:3 () in
        let a = Rtrace.mint rt in
        let b = Rtrace.mint rt in
        let c = Rtrace.mint rt in
        Alcotest.(check (list int)) "1, 2, 3" [ 1; 2; 3 ] [ a; b; c ];
        Alcotest.(check (list bool)) "1 and 4 sampled"
          [ true; false; false; true; false ]
          (List.map (Rtrace.sampled rt) [ 1; 2; 3; 4; 5 ]);
        Alcotest.(check bool) "0 never sampled" false (Rtrace.sampled rt 0);
        Alcotest.(check int) "sample rate" 3 (Rtrace.sample_rate rt);
        Alcotest.(check int) "disabled mints 0" 0
          (Rtrace.mint Rtrace.disabled);
        Alcotest.(check bool) "disabled never samples" false
          (Rtrace.sampled Rtrace.disabled 1));
    case "record charges the ambient current trace; unsampled IDs record \
          nothing"
      (fun () ->
        let rt = Rtrace.create ~sample:2 () in
        (* id 1 is sampled, id 2 is not *)
        Rtrace.set_current rt 1;
        Rtrace.record rt ~name:"kept" ~ts_ns:10 ~dur_ns:5 ~words:7;
        Rtrace.clear_current rt;
        Rtrace.record rt ~name:"no-current" ~ts_ns:20 ~dur_ns:5 ~words:0;
        Rtrace.set_current rt 2;
        Rtrace.record rt ~name:"unsampled" ~ts_ns:30 ~dur_ns:5 ~words:0;
        Rtrace.clear_current rt;
        Rtrace.record_as rt ~trace:2 ~name:"unsampled-as" ~ts_ns:40 ~dur_ns:5
          ~words:0;
        let evs = events_of_dump (Rtrace.dump rt) in
        Alcotest.(check (list string)) "only the sampled, current event"
          [ "kept" ] (List.map ev_name evs);
        Alcotest.(check (list int)) "charged to id 1" [ 1 ]
          (List.map ev_trace evs));
    case "ring wraparound keeps the newest events and counts drops"
      (fun () ->
        let rt = Rtrace.create ~capacity:16 () in
        Alcotest.(check int) "capacity clamps at 16" 16 (Rtrace.capacity rt);
        let id = Rtrace.mint rt in
        Rtrace.set_current rt id;
        for i = 1 to 40 do
          Rtrace.record rt
            ~name:(Printf.sprintf "e%d" i)
            ~ts_ns:(i * 1000) ~dur_ns:100 ~words:0
        done;
        Rtrace.clear_current rt;
        let d = Rtrace.dump rt in
        let evs = events_of_dump d in
        Alcotest.(check int) "window is the ring bound" 16 (List.length evs);
        Alcotest.(check int) "overwrites counted" 24 (dropped_of_dump d);
        Alcotest.(check (list string)) "newest 16 survive, oldest first"
          (List.init 16 (fun i -> Printf.sprintf "e%d" (25 + i)))
          (List.map ev_name evs));
    case "dump events are Chrome trace-event shaped" (fun () ->
        let rt = Rtrace.create () in
        Rtrace.record_as rt ~trace:1 ~name:"compile" ~ts_ns:2_000
          ~dur_ns:1_500 ~words:42;
        match events_of_dump (Rtrace.dump rt) with
        | [ e ] ->
            Alcotest.(check string) "name" "compile" (ev_name e);
            Alcotest.(check bool) "complete-event phase" true
              (Json.member "ph" e = Some (Json.Str "X"));
            Alcotest.(check (float 0.001)) "ts in us" 2.0 (ev_num "ts" e);
            Alcotest.(check (float 0.001)) "dur in us" 1.5 (ev_num "dur" e);
            Alcotest.(check bool) "pid" true
              (Json.member "pid" e = Some (Json.Int 1));
            Alcotest.(check bool) "tid is a domain" true
              (Json.member "tid" e <> None);
            Alcotest.(check int) "args.trace" 1 (ev_trace e);
            Alcotest.(check bool) "args.words" true
              (Option.bind (Json.member "args" e) (Json.member "words")
              = Some (Json.Int 42))
        | evs -> Alcotest.failf "expected one event, got %d" (List.length evs));
    case "disabled recorder is inert and allocation-free" (fun () ->
        let rt = Rtrace.disabled in
        Alcotest.(check bool) "off" false (Rtrace.is_on rt);
        Alcotest.(check int) "no capacity" 0 (Rtrace.capacity rt);
        Alcotest.(check int) "no sampling" 0 (Rtrace.sample_rate rt);
        Alcotest.(check (list string)) "empty dump" []
          (List.map ev_name (events_of_dump (Rtrace.dump rt)));
        let noop () = () in
        let delta f =
          let w0 = Gc.minor_words () in
          f ();
          Gc.minor_words () -. w0
        in
        let bump () =
          for _ = 1 to 10_000 do
            ignore (Rtrace.mint rt);
            ignore (Rtrace.sampled rt 1);
            Rtrace.set_current rt 1;
            ignore (Rtrace.current rt);
            Rtrace.record rt ~name:"e" ~ts_ns:1 ~dur_ns:1 ~words:1;
            Rtrace.record_as rt ~trace:1 ~name:"e" ~ts_ns:1 ~dur_ns:1
              ~words:1;
            Rtrace.clear_current rt;
            Span.wrap_rt rt Metrics.disabled "noop" noop
          done
        in
        (* both measurements carry the same fixed boxing overhead from
           [Gc.minor_words] itself, so equal deltas mean the ops
           allocated nothing *)
        let base = delta noop in
        let d = delta bump in
        Alcotest.(check (float 0.)) "no allocation across 80k ops" base d);
  ]

(* ------------------------------------------------------------------ *)
(* The offline digest.                                                 *)
(* ------------------------------------------------------------------ *)

let digest_cases =
  [
    case "top_slow ranks complete requests and names the dominant phase"
      (fun () ->
        let rt = Rtrace.create () in
        (* request 1: 1ms, compile-dominant *)
        Rtrace.record_as rt ~trace:1 ~name:"compile" ~ts_ns:100_000
          ~dur_ns:800_000 ~words:10;
        Rtrace.record_as rt ~trace:1 ~name:"exec" ~ts_ns:900_000
          ~dur_ns:50_000 ~words:0;
        Rtrace.record_as rt ~trace:1 ~name:"request/run" ~ts_ns:0
          ~dur_ns:1_000_000 ~words:0;
        (* request 2: a fast ping, no phases *)
        Rtrace.record_as rt ~trace:2 ~name:"request/ping" ~ts_ns:2_000_000
          ~dur_ns:10_000 ~words:0;
        (* trace 3 has no root: incomplete, excluded however slow *)
        Rtrace.record_as rt ~trace:3 ~name:"compile" ~ts_ns:3_000_000
          ~dur_ns:999_000_000 ~words:0;
        (match Rtrace.top_slow (Rtrace.dump rt) with
        | Error m -> Alcotest.failf "digest failed: %s" m
        | Ok [ slow; fast ] ->
            Alcotest.(check int) "slowest first" 1 slow.Rtrace.dg_trace;
            Alcotest.(check string) "its op" "run" slow.Rtrace.dg_op;
            Alcotest.(check int) "its latency" 1_000_000
              slow.Rtrace.dg_latency_ns;
            Alcotest.(check string) "dominant phase" "compile"
              slow.Rtrace.dg_phase;
            Alcotest.(check int) "phase time" 800_000 slow.Rtrace.dg_phase_ns;
            Alcotest.(check int) "runner-up" 2 fast.Rtrace.dg_trace;
            Alcotest.(check string) "phaseless digest" ""
              fast.Rtrace.dg_phase
        | Ok ds -> Alcotest.failf "expected 2 digests, got %d" (List.length ds));
        match Rtrace.top_slow ~n:1 (Rtrace.dump rt) with
        | Ok [ only ] ->
            Alcotest.(check int) "n bounds the digest" 1 only.Rtrace.dg_trace
        | Ok _ | Error _ -> Alcotest.fail "n=1 should keep the slowest");
    case "top_slow rejects a document without traceEvents" (fun () ->
        match Rtrace.top_slow (Json.Obj [ ("nope", Json.Int 1) ]) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
  ]

(* ------------------------------------------------------------------ *)
(* Propagation: serve and the pool.                                    *)
(* ------------------------------------------------------------------ *)

let demo = "double x = x + x\nmain = double (21 :: Int)\n"

let run_req ?(backend = "tree") ?id src =
  Json.to_line
    (Json.Obj
       ([ ("op", Json.Str "run"); ("src", Json.Str src);
          ("backend", Json.Str backend) ]
       @ match id with Some i -> [ ("id", Json.Int i) ] | None -> []))

(* one millisecond per reading: request latencies in the serve metrics
   are deterministic, so this test isolates the recorder's own (mono)
   clock from the serve clock *)
let ticking () =
  let n = ref 0 in
  fun () ->
    incr n;
    float_of_int !n *. 0.001

let trace_of resp =
  match Json.member "trace" resp with
  | Some (Json.Int t) when t > 0 -> t
  | _ -> Alcotest.failf "response without trace: %s" (Json.to_line resp)

(* Check one request's timeline in [evs]: exactly one [request/<op>]
   root, every other event nested inside it, and the top-level phase
   durations summing to at most the root's. Returns the root's
   duration (us). Tolerance covers the ns -> us float conversion. *)
let check_timeline evs tr =
  let mine = List.filter (fun e -> ev_trace e = tr) evs in
  let roots, rest = List.partition is_root mine in
  match roots with
  | [ root ] ->
      let t0 = ev_num "ts" root in
      let t1 = t0 +. ev_num "dur" root in
      List.iter
        (fun e ->
          if ev_name e <> "queue" && ev_name e <> "emit" then begin
            Alcotest.(check bool)
              (ev_name e ^ " starts inside the root span")
              true
              (ev_num "ts" e >= t0 -. 0.5);
            Alcotest.(check bool)
              (ev_name e ^ " ends inside the root span")
              true
              (ev_num "ts" e +. ev_num "dur" e <= t1 +. 0.5)
          end)
        rest;
      let phase_sum =
        List.fold_left
          (fun acc e -> if is_phase e then acc +. ev_num "dur" e else acc)
          0. rest
      in
      Alcotest.(check bool) "phase durations sum within the request's" true
        (phase_sum <= ev_num "dur" root +. 1.0);
      ev_num "dur" root
  | _ ->
      Alcotest.failf "trace %d: expected one request/ root, got %d" tr
        (List.length roots)

let propagation_cases =
  [
    case "serve: every response carries its trace ID and its events nest \
          inside the request span (both backends)"
      (fun () ->
        let rt = Rtrace.create () in
        let config =
          {
            Serve.default_config with
            Serve.sleep = (fun _ -> ());
            clock = ticking ();
            rtrace = rt;
          }
        in
        let t = Serve.create ~config () in
        let traces =
          List.map
            (fun backend ->
              trace_of (decode (Serve.handle_line t (run_req ~backend demo))))
            [ "tree"; "vm" ]
        in
        Alcotest.(check bool) "distinct IDs" true
          (List.length (List.sort_uniq compare traces) = 2);
        let evs = events_of_dump (Rtrace.dump rt) in
        List.iter
          (fun tr ->
            let dur = check_timeline evs tr in
            Alcotest.(check bool) "request took time" true (dur > 0.))
          traces);
    case "serve: an unsampled request still gets an ID but records no \
          events"
      (fun () ->
        let rt = Rtrace.create ~sample:2 () in
        let config =
          {
            Serve.default_config with
            Serve.sleep = (fun _ -> ());
            rtrace = rt;
          }
        in
        let t = Serve.create ~config () in
        let tr1 =
          trace_of (decode (Serve.handle_line t (run_req ~id:1 demo)))
        in
        let tr2 =
          trace_of (decode (Serve.handle_line t (run_req ~id:2 demo)))
        in
        let evs = events_of_dump (Rtrace.dump rt) in
        Alcotest.(check bool) "sampled request recorded" true
          (List.exists (fun e -> ev_trace e = tr1) evs);
        Alcotest.(check bool) "unsampled request silent" false
          (List.exists (fun e -> ev_trace e = tr2) evs));
    case "pool: 4 workers, queue and emit events share each request's ID"
      (fun () ->
        let rt = Rtrace.create () in
        let config =
          {
            Serve.default_config with
            Serve.sleep = (fun _ -> ());
            clock = ticking ();
            rtrace = rt;
          }
        in
        let lines =
          Array.init 8 (fun i ->
              run_req ~id:i
                ~backend:(if i mod 2 = 0 then "tree" else "vm")
                demo)
        in
        let i = ref 0 in
        let next () =
          if !i >= Array.length lines then None
          else begin
            let l = lines.(!i) in
            incr i;
            Some l
          end
        in
        let out = ref [] in
        let summary =
          Pool.run ~workers:4 ~config ~next
            ~emit:(fun l -> out := l :: !out)
            ()
        in
        Alcotest.(check int) "all answered" 8
          summary.Pool.stats.Serve.responses;
        let traces = List.map (fun l -> trace_of (decode l)) !out in
        Alcotest.(check int) "8 distinct trace IDs" 8
          (List.length (List.sort_uniq compare traces));
        let evs = events_of_dump (Rtrace.dump rt) in
        List.iter
          (fun tr ->
            ignore (check_timeline evs tr);
            let mine = List.filter (fun e -> ev_trace e = tr) evs in
            Alcotest.(check bool) "queue wait recorded" true
              (List.exists (fun e -> ev_name e = "queue") mine);
            Alcotest.(check bool) "emit recorded" true
              (List.exists (fun e -> ev_name e = "emit") mine))
          traces);
  ]

let tests =
  [
    ("rtrace recorder", recorder_cases);
    ("rtrace digest", digest_cases);
    ("rtrace propagation", propagation_cases);
  ]
