(** Golden tests for the example programs in examples/programs/: each must
    compile, run (lazy; strict where meaningful) and print its expected
    result — under plain dictionary passing and fully optimized. *)

open Helpers

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let program name = read_file (Filename.concat "../examples/programs" (name ^ ".mhs"))

let golden =
  [
    ( "matrix",
      "([1, 2, 3, 5, 8, 13, 21, 34], True, \"[2 2; 2 0]\")",
      `Both );
    ( "set",
      "([1, 2, 3, 4, 5, 6, 9], True, [(1, 'a'), (2, 'a'), (2, 'b')], 4)",
      `Both );
    ( "calculator",
      "(-10, -9.5, \"(Add (Lit [2]) (Mul (Lit [3]) (Neg (Lit [4]))))\")",
      `Both );
    ( "nqueens",
      "([1, 0, 0, 2, 10, 4], [(6, 5), (5, 3), (4, 1), (3, 6), (2, 4), (1, 2)])",
      `Both );
    ("parsec", "(7, 9, 101, 7)", `Both);
    ("regex", "(True, False, True, False, True)", `Both);
    ( "stats",
      "(5.0, 4.0, 4.5, [1, 3, 6, 10], [0.5, 0.75], (2.0, 9.0), ('a', 't'))",
      `Both );
    (* infinite streams require call-by-need *)
    ( "primes",
      "([2, 3, 5, 7, 11, 13, 17, 19, 23, 29], [3, 5, 6, 9, 10, 12, 15, 18], \
       [2, 3, 5, 7, 11, 13, 17, 19, 23, 29])",
      `Lazy_only );
  ]

let tests =
  [
    ( "example-programs",
      List.concat_map
        (fun (name, expected, modes) ->
          let src = lazy (program name) in
          let check_mode mode_name mode passes =
            case
              (Printf.sprintf "%s (%s)" name mode_name)
              (fun () ->
                Alcotest.(check string) name expected
                  (run ~mode ~passes (Lazy.force src)))
          in
          [ check_mode "lazy" `Lazy [] ]
          @ (match modes with
             | `Both -> [ check_mode "strict" `Strict [] ]
             | `Lazy_only -> [])
          @ [ check_mode "optimized" `Lazy Tc_opt.Opt.all ])
        golden );
  ]
