(** Parser and fixity-resolution tests: parse then pretty-print and compare
    against the expected rendering. *)

open Tc_syntax

let parse_pp src =
  let prog = Parser.parse_program ~file:"t" src in
  let prog, _ = Fixity.resolve_program prog in
  Fmt.str "%a" Ast_pp.pp_program prog

let parse_expr_pp src =
  let e = Parser.parse_expression ~file:"t" src in
  let env = Fixity.builtin in
  Fmt.str "%a" Ast_pp.pp_expr (Fixity.expr env e)

let check name src expected =
  Helpers.case name (fun () ->
      Alcotest.(check string) name expected (parse_pp src))

let check_expr name src expected =
  Helpers.case name (fun () ->
      Alcotest.(check string) name expected (parse_expr_pp src))

let check_fails name src =
  Helpers.case name (fun () ->
      match Parser.parse_program ~file:"t" src with
      | exception Tc_support.Diagnostic.Error _ -> ()
      | _ -> Alcotest.fail "expected a parse error")

let tests =
  [
    ( "parser-expr",
      [
        check_expr "application binds tighter than operators" "f x + g y"
          "+ (f x) (g y)";
        check_expr "left associative" "1 - 2 - 3" "- (- 1 2) 3";
        check_expr "right associative" "a ++ b ++ c" "++ a (++ b c)";
        check_expr "precedence" "1 + 2 * 3" "+ 1 (* 2 3)";
        check_expr "cons chains right" "1 : 2 : []" ": 1 (: 2 [])";
        check_expr "comparison vs arithmetic" "a + 1 == b" "== (+ a 1) b";
        check_expr "backquoted operator" "x `elem` xs" "elem x xs";
        check_expr "unary minus" "- x + y" "+ (- x) y";
        check_expr "lambda swallows operators" "\\x -> x + 1"
          "\\x -> + x 1";
        check_expr "if-then-else" "if a then 1 else 2" "if a then 1 else 2";
        check_expr "operator section left" "(x +)" "(x +)";
        check_expr "operator section right" "(+ x)" "(+ x)";
        check_expr "operator reference" "(++)" "++";
        check_expr "annotation" "x :: Int" "(x :: Int)";
        check_expr "qualified annotation" "f :: Eq a => a -> Bool"
          "(f :: Eq a => a -> Bool)";
        check_expr "tuples" "(1, 2, 3)" "(1, 2, 3)";
        check_expr "unit" "()" "()";
        check_expr "list sugar" "[1, 2]" "[1, 2]";
        check_expr "case with guards"
          "case x of { y | y == 1 -> a | otherwise -> b }"
          "case x of {y | == y 1 -> a | otherwise -> b}";
        check_expr "let in expression" "let { x = 1 } in x + x"
          "let {x = 1} in + x x";
      ] );
    ( "parser-decl",
      [
        check "function equations" "f 0 = 1\nf n = n"
          "f 0 = 1\nf n = n";
        check "infix definition" "x <+> y = x" "<+> x y = x";
        check "operator binding" "(==>) a b = b" "==> a b = b";
        check "variable operator binding" "f = (+)" "f = +";
        check "signature" "f :: Eq a => a -> Bool\nf x = True"
          "f :: Eq a => a -> Bool\nf x = True";
        check "multi-name signature" "f, g :: Int\nf = 1\ng = 2"
          "f, g :: Int\nf = 1\ng = 2";
        check "guards and where" "f x | x == 0 = y where y = 1"
          "f x | == x 0 = y where {y = 1}";
        check "data declaration" "data T a = A a Int | B"
          "data T a = A a Int | B";
        check "data with deriving" "data C = R | G deriving (Eq, Ord)"
          "data C = R | G deriving (Eq, Ord)";
        check "type synonym" "type S a = [(a, Int)]" "type S a = [(a, Int)]";
        check "class with default" "class Eq a where\n  (==) :: a -> a -> Bool"
          "class Eq a where {== :: a -> a -> Bool}";
        check "class with superclass" "class Eq a => Ord a where\n  (<=) :: a -> a -> Bool"
          "class (Eq a) => Ord a where {<= :: a -> a -> Bool}";
        check "instance with context"
          "instance (Eq a, Eq b) => Eq (a, b) where\n  p == q = True"
          "instance (Eq a, Eq b) => Eq (a, b) where {== p q = True}";
        check "fixity declaration" "infixr 5 ++, +++" "infixr 5 ++, +++";
        check "pattern binding" "(a, b) = p" "(a, b) = p";
        check "as pattern" "f all@(x:xs) = all" "f all@(x : xs) = all";
        check "wildcard and literals" "f _ 'x' \"s\" = 1"
          "f _ 'x' \"s\" = 1";
        check "negative literal pattern" "f (-1) = 0" "f -1 = 0";
      ] );
    ( "parser-errors",
      [
        check_fails "missing rhs" "f x =";
        check_fails "unbalanced paren" "f = (1 + 2";
        check_fails "bad fixity level" "infixl 12 +";
        check_fails "class without variable" "class Eq where";
        check_fails "stray operator" "f = + +";
        Helpers.case "nonassoc operators need parens" (fun () ->
            match parse_pp "f = 1 == 2 == 3" with
            | exception Tc_support.Diagnostic.Error d ->
                if
                  not
                    (Helpers.contains ~needle:"ambiguous"
                       (Tc_support.Diagnostic.to_string d))
                then Alcotest.fail "wrong error"
            | _ -> Alcotest.fail "expected a fixity error");
        Helpers.case "mixed same-precedence associativity rejected" (fun () ->
            (* custom operators with equal precedence but different assoc *)
            match parse_pp "infixl 5 <<\ninfixr 5 >>\nf = a << b >> c" with
            | exception Tc_support.Diagnostic.Error _ -> ()
            | _ -> Alcotest.fail "expected a fixity error");
      ] );
  ]
