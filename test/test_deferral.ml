(** Tests for placeholder deferral (paper §6.3 case 3: "the type variable
    may still be bound in an outer type environment; the processing of the
    placeholder must be deferred to the outer declaration") and other
    subtle interactions between nested scopes and overloading. *)

open Helpers

let tests =
  [
    ( "deferral",
      [
        (* the == inside g is at f's type variable: g's generalization
           cannot resolve it, f's must *)
        check_type "inner overloading defers to the outer binding"
          "f x = let g y = x == y in g x\nmain = 0" "f" "Eq a => a -> Bool";
        check_run "deferred placeholder resolves to the outer dictionary"
          "f x = let g y = x == y in g x\nmain = (f 1, f 'a', f [1,2])"
          "(True, True, True)";
        check_type "deferral through two levels"
          {|
f x = let g y = let h z = (x == z, y + z) in h y in g x
main = 0
|}
          "f" "Num a => a -> (Bool, a)";
        check_run "deferral through two levels runs"
          {|
f x = let g y = let h z = (x == z, y + z) in h y in g x
main = f (21 :: Int)
|}
          "(True, 42)";
        check_type "inner binding generalizes what it can"
          {|
f x = let pair y = (y, x == x) in (pair 1, pair "s")
main = 0
|}
          "f" "(Eq a, Num b) => a -> ((b, Bool), ([Char], Bool))";
        check_run "inner overloaded function at two of its own types"
          {|
f b = let showIt x = str x ++ str b in (showIt 1, showIt 'c')
main = f True
|}
          "(\"1True\", \"cTrue\")";
        check_type "mixed own and deferred context"
          "f x = let g y = (x == x, y <= y) in g\nmain = 0" "f"
          "(Eq a, Ord b) => a -> b -> (Bool, Bool)";
        check_run "deferred method placeholder (not just dictionaries)"
          {|
outer x = inner where inner = x + x
main = outer (7 :: Int)
|}
          "14";
        check_type "deferred method keeps the function overloaded"
          "outer x = inner where inner = x + x\nmain = 0" "outer"
          "Num a => a -> a";
        check_run "restricted inner binding shares across uses"
          {|
f x = let shared = x + x in (shared, shared)
main = f 5
|}
          "(10, 10)";
        check_run "deferral interacts with instance contexts"
          {|
f x = let g ys = member [x] ys in g [[x]]
main = (f 3, f 'z')
|}
          "(True, True)";
        check_type "class placeholder deferred from a lambda"
          "f x = (\\y -> y == x) x\nmain = 0" "f" "Eq a => a -> Bool";
      ] );
    ( "nested-signatures",
      [
        check_run "local signatures fix local dictionary order"
          {|
f :: (Num a, Text a) => a -> [Char]
f x = g x where
  g :: (Text b, Num b) => b -> [Char]
  g y = str (y + y)
main = f (4 :: Int)
|}
          "\"8\"";
        check_type "local monomorphic signature restricts"
          {|
f x = g x where
  g :: Int -> Int
  g y = y + 1
main = 0
|}
          "f" "Int -> Int";
        check_error "local signature too general is an error"
          {|
f x = g x where
  g :: a -> a
  g y = y + 1
main = 0
|}
          "too general";
        check_run "annotation at an inner use site picks the instance"
          "main = let twice x = x + x in (twice (2 :: Int), twice 2.5)"
          "(4, 5.0)";
      ] );
  ]
