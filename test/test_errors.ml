(** Golden tests for full diagnostic messages: the exact, located text a
    user sees. These pin down error quality, not just error presence. *)

open Helpers

let diag src : string =
  match compile src with
  | exception Tc_support.Diagnostic.Error d -> Tc_support.Diagnostic.to_string d
  | _ -> Alcotest.fail "expected a compile-time error"

let golden name src expected =
  case name (fun () -> Alcotest.(check string) name expected (diag src))

let tests =
  [
    ( "error-messages",
      [
        golden "unbound variable"
          "main = frobnicate"
          "test.mhs:1:8-17: error: variable 'frobnicate' is not in scope";
        golden "no instance, with the offending type"
          "main = (\\x -> x) == id"
          "test.mhs:1:18-19: error: no instance for 'Eq (a -> a)'";
        golden "missing instance through context reduction"
          "main = [id] == [id]"
          "test.mhs:1:13-14: error: no instance for 'Eq (a -> a)'";
        golden "occurs check"
          "f x = x x\nmain = 0"
          "test.mhs:1:7-7: error: occurs check failed: cannot construct the \
           infinite type a ~ a -> b";
        golden "constructor arity in a pattern"
          "f (Just x y) = x\nmain = 0"
          "test.mhs:1:4-11: error: constructor 'Just' expects 1 argument(s) \
           but the pattern has 2";
        golden "signature too weak for the body"
          "f :: a -> a\nf x = x + x\nmain = 0"
          "test.mhs:2:1-3:4: error: the signature is too general: it does \
           not allow the required constraint 'Num a'";
        golden "ambiguous overloading at the top level"
          "main = [] == []"
          "test.mhs:1:11-12: error: ambiguous overloading: cannot \
           determine a type satisfying the context 'Eq a => a'";
        golden "duplicate instance"
          "instance Eq Int where\n  x == y = True\nmain = 0"
          "test.mhs:1:1-3:4: error: duplicate instance 'Eq Int'";
        golden "kind error: unsaturated constructor"
          "bad :: Maybe\nbad = bad\nmain = 0"
          "test.mhs:1:8-2:3: error: type constructor 'Maybe' has kind \
           * -> * but is applied to 0 argument(s)";
        golden "unknown class"
          "f :: Monoid a => a -> a\nf x = x\nmain = 0"
          "test.mhs:1:6-16: error: unknown class 'Monoid'";
        golden "parse error with location and found-token"
          "main = (1 +"
          "test.mhs:1:12-11: error: parse error: expected an expression \
           (found '}(layout)')";
        golden "layout-sensitive parse error"
          "f = 1\n  g = 2\nmain = 0"
          "test.mhs:2:5-5: error: parse error: expected ';' or end of block \
           (found '=')";
      ] );
  ]
