(** Property-based tests (qcheck): invariants of contexts, unification, the
    prelude (against OCaml reference implementations), derived instances,
    and optimizer preservation under random pass sequences. *)

open Tc_support
module Ty = Tc_types.Ty
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval
module Pipeline = Typeclasses.Pipeline
module Opt = Tc_opt.Opt

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* An evaluation session: compile a library once, call functions on     *)
(* randomly generated core arguments.                                   *)
(* ------------------------------------------------------------------ *)

type session = { st : Eval.state }

let make_session src : session =
  let c = Pipeline.compile ~file:"prop.mhs" src in
  let cons = Eval.con_table_of_env c.env in
  let st =
    Eval.create_state ~budget:(Eval.Budget.fuel 100_000_000) cons
  in
  Eval.load_program st c.core;
  { st }

let nil = Core.Con (Ident.intern "[]")
let cons_e h t = Core.apps (Core.Con (Ident.intern ":")) [ h; t ]
let int_e n = Core.Lit (Tc_syntax.Ast.LInt n)
let list_e elts = List.fold_right cons_e elts nil
let int_list_e ns = list_e (List.map int_e ns)

let call (s : session) fn args : string =
  let e = Core.apps (Core.Var (Ident.intern fn)) args in
  Eval.render s.st (Eval.eval_expr s.st e)

let render_int_list ns =
  "[" ^ String.concat ", " (List.map string_of_int ns) ^ "]"

let d name = Core.Var (Ident.intern name)

(* sessions are compiled once, lazily *)

let list_session =
  lazy
    (make_session
       {|
qsort :: Ord a => [a] -> [a]
qsort [] = []
qsort (x:xs) = qsort (filter (\y -> y <= x) xs) ++ [x] ++ qsort (filter (\y -> y > x) xs)

listEq :: [Int] -> [Int] -> Bool
listEq = (==)

listLe :: [Int] -> [Int] -> Bool
listLe = (<=)

main = 0
|})

let tree_session =
  lazy
    (make_session
       {|
data Tree = Leaf | Node Tree Int Tree deriving (Eq, Ord, Text)
treeEq :: Tree -> Tree -> Bool
treeEq a b = a == b
treeLe :: Tree -> Tree -> Bool
treeLe a b = a <= b
main = 0
|})

let opt_compiled =
  lazy
    (Pipeline.compile ~file:"opt-prop.mhs"
       {|
main = (qsort [5,1,4,2], sum (enumFromTo 1 10), str (Just True))
qsort :: Ord a => [a] -> [a]
qsort [] = []
qsort (x:xs) = qsort (filter (\y -> y <= x) xs) ++ [x] ++ qsort (filter (\y -> y > x) xs)
|})

let opt_reference = lazy (Pipeline.exec (Lazy.force opt_compiled)).rendered

(* ------------------------------------------------------------------ *)
(* Generators.                                                          *)
(* ------------------------------------------------------------------ *)

let small_int = QCheck2.Gen.int_range (-50) 50
let int_list = QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15) small_int

type tree = Leaf | Node of tree * int * tree

let tree_gen : tree QCheck2.Gen.t =
  QCheck2.Gen.sized_size (QCheck2.Gen.int_range 0 12)
    (QCheck2.Gen.fix (fun self n ->
         if n = 0 then QCheck2.Gen.pure Leaf
         else
           QCheck2.Gen.oneof
             [
               QCheck2.Gen.pure Leaf;
               QCheck2.Gen.map3
                 (fun l v r -> Node (l, v, r))
                 (self (n / 2))
                 (QCheck2.Gen.int_range 0 5)
                 (self (n / 2));
             ]))

let rec tree_expr = function
  | Leaf -> Core.Con (Ident.intern "Leaf")
  | Node (l, v, r) ->
      Core.apps (Core.Con (Ident.intern "Node")) [ tree_expr l; int_e v; tree_expr r ]

(* OCaml reference for the derived Ord on Tree: constructor order first
   (Leaf < Node), then lexicographic fields *)
let rec tree_le a b =
  match (a, b) with
  | Leaf, _ -> true
  | Node _, Leaf -> false
  | Node (l1, v1, r1), Node (l2, v2, r2) ->
      tree_lt l1 l2
      || (l1 = l2 && (v1 < v2 || (v1 = v2 && tree_le r1 r2)))

and tree_lt a b = tree_le a b && a <> b

(* ------------------------------------------------------------------ *)

let tests =
  [
    ( "properties-prelude",
      [
        prop "qsort agrees with List.sort" int_list (fun ns ->
            let s = Lazy.force list_session in
            call s "qsort" [ d "d$Ord$Int"; int_list_e ns ]
            = render_int_list (List.sort compare ns));
        prop "qsort is idempotent" int_list (fun ns ->
            let s = Lazy.force list_session in
            let sorted = List.sort compare ns in
            call s "qsort" [ d "d$Ord$Int"; int_list_e ns ]
            = call s "qsort" [ d "d$Ord$Int"; int_list_e sorted ]);
        prop "member agrees with List.mem"
          QCheck2.Gen.(pair small_int int_list)
          (fun (x, ns) ->
            let s = Lazy.force list_session in
            call s "member" [ d "d$Eq$Int"; int_e x; int_list_e ns ]
            = if List.mem x ns then "True" else "False");
        prop "reverse agrees with List.rev" int_list (fun ns ->
            let s = Lazy.force list_session in
            call s "reverse" [ int_list_e ns ] = render_int_list (List.rev ns));
        prop "sum agrees with fold_left (+)" int_list (fun ns ->
            let s = Lazy.force list_session in
            call s "sum" [ d "d$Num$Int"; int_list_e ns ]
            = string_of_int (List.fold_left ( + ) 0 ns));
        prop "length agrees" int_list (fun ns ->
            let s = Lazy.force list_session in
            call s "length" [ int_list_e ns ] = string_of_int (List.length ns));
        prop "take/drop split the list"
          QCheck2.Gen.(pair (int_range 0 20) int_list)
          (fun (n, ns) ->
            let s = Lazy.force list_session in
            let rec split i l =
              match (i, l) with
              | 0, rest -> ([], rest)
              | _, [] -> ([], [])
              | i, x :: rest ->
                  let a, b = split (i - 1) rest in
                  (x :: a, b)
            in
            let a, b = split n ns in
            call s "take" [ int_e n; int_list_e ns ] = render_int_list a
            && call s "drop" [ int_e n; int_list_e ns ] = render_int_list b);
        prop "instance Eq [Int] agrees with (=)"
          QCheck2.Gen.(pair int_list int_list)
          (fun (a, b) ->
            let s = Lazy.force list_session in
            call s "listEq" [ int_list_e a; int_list_e b ]
            = (if a = b then "True" else "False"));
        prop "instance Ord [Int] is lexicographic"
          QCheck2.Gen.(pair int_list int_list)
          (fun (a, b) ->
            let s = Lazy.force list_session in
            call s "listLe" [ int_list_e a; int_list_e b ]
            = (if compare a b <= 0 then "True" else "False"));
      ] );
    ( "properties-contexts",
      [
        prop "Context.add keeps the set sorted and duplicate-free"
          QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 5))
          (fun ids ->
            let names =
              List.map (fun i -> Ident.intern (Printf.sprintf "C%d" i)) ids
            in
            let ctx =
              List.fold_left
                (fun acc c -> Ty.Context.add c acc)
                Ty.Context.empty names
            in
            let rec sorted = function
              | a :: (b :: _ as rest) -> Ident.compare a b < 0 && sorted rest
              | _ -> true
            in
            sorted ctx
            && List.length ctx = List.length (List.sort_uniq Ident.compare names));
        prop "Context.union is commutative"
          QCheck2.Gen.(
            pair
              (list_size (int_range 0 6) (int_range 0 5))
              (list_size (int_range 0 6) (int_range 0 5)))
          (fun (a, b) ->
            let mk l =
              Ty.Context.of_list
                (List.map (fun i -> Ident.intern (Printf.sprintf "C%d" i)) l)
            in
            Ty.Context.union (mk a) (mk b) = Ty.Context.union (mk b) (mk a));
        prop "Context.union is idempotent"
          QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 5))
          (fun l ->
            let mk l =
              Ty.Context.of_list
                (List.map (fun i -> Ident.intern (Printf.sprintf "C%d" i)) l)
            in
            Ty.Context.union (mk l) (mk l) = mk l);
      ] );
    ( "properties-unify",
      [
        prop "unify t t succeeds" ~count:60 (QCheck2.Gen.int_range 0 100000)
          (fun seed ->
            let rec build depth s =
              let s = (s * 1103515245 + 12345) land 0x3FFFFFFF in
              if depth > 3 then Ty.int
              else
                match s mod 5 with
                | 0 -> Ty.int
                | 1 -> Ty.char
                | 2 -> Ty.list (build (depth + 1) (s / 7))
                | 3 ->
                    Ty.arrow (build (depth + 1) (s / 7)) (build (depth + 1) (s / 11))
                | _ ->
                    Ty.tuple
                      [ build (depth + 1) (s / 7); build (depth + 1) (s / 11) ]
            in
            let t = build 0 seed in
            let env = Tc_types.Class_env.create () in
            Tc_types.Unify.unify env ~loc:Loc.none t t;
            true);
        prop "a fresh variable takes any closed type" ~count:60
          (QCheck2.Gen.int_range 0 100000)
          (fun seed ->
            let rec build depth s =
              let s = (s * 48271) land 0x3FFFFFFF in
              if depth > 3 then Ty.float
              else
                match s mod 4 with
                | 0 -> Ty.float
                | 1 -> Ty.list (build (depth + 1) (s / 7))
                | 2 -> Ty.arrow (build (depth + 1) (s / 7)) Ty.int
                | _ -> Ty.unit
            in
            let t = build 0 seed in
            let env = Tc_types.Class_env.create () in
            let v = Ty.fresh ~level:1 () in
            Tc_types.Unify.unify env ~loc:Loc.none v t;
            Ty.to_string (Ty.prune v) = Ty.to_string t);
      ] );
    ( "properties-derived",
      [
        prop "derived Eq on trees is structural equality" ~count:80
          QCheck2.Gen.(pair tree_gen tree_gen)
          (fun (t1, t2) ->
            let s = Lazy.force tree_session in
            call s "treeEq" [ tree_expr t1; tree_expr t2 ]
            = (if t1 = t2 then "True" else "False"));
        prop "derived Eq is reflexive" ~count:40 tree_gen (fun t ->
            let s = Lazy.force tree_session in
            call s "treeEq" [ tree_expr t; tree_expr t ] = "True");
        prop "derived Ord matches the reference order" ~count:80
          QCheck2.Gen.(pair tree_gen tree_gen)
          (fun (t1, t2) ->
            let s = Lazy.force tree_session in
            call s "treeLe" [ tree_expr t1; tree_expr t2 ]
            = (if tree_le t1 t2 then "True" else "False"));
        prop "derived Ord is total" ~count:60
          QCheck2.Gen.(pair tree_gen tree_gen)
          (fun (t1, t2) ->
            let s = Lazy.force tree_session in
            call s "treeLe" [ tree_expr t1; tree_expr t2 ] = "True"
            || call s "treeLe" [ tree_expr t2; tree_expr t1 ] = "True");
      ] );
    ( "properties-optimizer",
      [
        prop "random pass sequences preserve results" ~count:40
          (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 5)
             (QCheck2.Gen.int_range 0 4))
          (fun pass_ids ->
            let passes =
              List.map
                (fun i ->
                  List.nth
                    [ Opt.Simplify; Opt.Inner_entry; Opt.Hoist; Opt.Specialise;
                      Opt.Dce ]
                    i)
                pass_ids
            in
            let c = Pipeline.optimize passes (Lazy.force opt_compiled) in
            (Pipeline.exec c).rendered = Lazy.force opt_reference);
      ] );
  ]
