(** The metrics registry and its consumers: histogram bucketing, span
    nesting, snapshot determinism, the allocation-free disabled path,
    pipeline phase spans, and serve request telemetry.

    - Bucket boundaries are total over all of [int]: 0 and negatives in
      bucket 0, powers of two open a new bucket, [max_int] lands in the
      clamped last bucket, and [merge_hist] equals observing both
      streams into one histogram.
    - Spans build slash-separated nesting paths and list parents before
      children, deterministically across runs.
    - Snapshots round-trip through {!Tc_obs.Json} and are byte-identical
      across runs under [~stable:true].
    - Serve labels a latency histogram per op and per failure class, and
      in every snapshot the per-op latency counts sum exactly to the
      [serve/requests] counter — including snapshots taken mid-stream by
      the [metrics] op. *)

open Helpers
module Pipeline = Typeclasses.Pipeline
module Serve = Typeclasses.Serve
module Inject = Tc_resilience.Inject
module Metrics = Tc_obs.Metrics
module Span = Tc_obs.Span
module Json = Tc_obs.Json

let demo = "double :: Num a => a -> a\ndouble x = x + x\nmain = double 21\n"

(* ------------------------------------------------------------------ *)
(* Instruments.                                                        *)
(* ------------------------------------------------------------------ *)

let instrument_cases =
  [
    case "counters and gauges accumulate through shared handles" (fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m "events" in
        Metrics.incr c;
        Metrics.add c 4;
        (* same name, same instrument *)
        Metrics.incr (Metrics.counter m "events");
        Alcotest.(check int) "counter" 6 (Metrics.counter_value c);
        let g = Metrics.gauge m "depth" in
        Metrics.set g 3;
        Metrics.set (Metrics.gauge m "depth") 7;
        Alcotest.(check int) "gauge last-write-wins" 7 (Metrics.gauge_value g);
        Alcotest.(check (list (pair string int)))
          "listing sorted" [ ("events", 6) ] (Metrics.counters m));
    case "histogram bucket boundaries: 0, 1, powers of two, max_int"
      (fun () ->
        Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_of 0);
        Alcotest.(check int) "negative -> bucket 0" 0 (Metrics.bucket_of (-5));
        Alcotest.(check int) "1 -> bucket 1" 1 (Metrics.bucket_of 1);
        Alcotest.(check int) "2 opens bucket 2" 2 (Metrics.bucket_of 2);
        Alcotest.(check int) "3 stays in bucket 2" 2 (Metrics.bucket_of 3);
        Alcotest.(check int) "1000 -> bucket 10" 10 (Metrics.bucket_of 1000);
        Alcotest.(check int)
          "max_int -> last bucket" 62
          (Metrics.bucket_of max_int);
        Alcotest.(check int) "bucket_hi 0" 0 (Metrics.bucket_hi 0);
        Alcotest.(check int) "bucket_hi 1" 1 (Metrics.bucket_hi 1);
        Alcotest.(check int) "bucket_hi 10" 1023 (Metrics.bucket_hi 10);
        Alcotest.(check int)
          "last bucket clamps at max_int" max_int (Metrics.bucket_hi 62);
        (* bucket_of v is the smallest i with v <= bucket_hi i *)
        List.iter
          (fun v ->
            let i = Metrics.bucket_of v in
            Alcotest.(check bool)
              (Printf.sprintf "%d <= hi(bucket %d)" v i)
              true
              (v <= Metrics.bucket_hi i);
            if i > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "%d > hi(bucket %d)" v (i - 1))
                true
                (v > Metrics.bucket_hi (i - 1)))
          [ 0; 1; 2; 3; 4; 7; 8; 1000; 1023; 1024; 1 lsl 40; max_int ]);
    case "histogram quantiles are bucket upper bounds" (fun () ->
        let m = Metrics.create () in
        let h = Metrics.histogram m "h" in
        Alcotest.(check int) "empty quantile" 0 (Metrics.quantile h 0.5);
        Metrics.observe h 0;
        Metrics.observe h 1;
        Metrics.observe h max_int;
        Alcotest.(check int) "count" 3 (Metrics.hist_count h);
        Alcotest.(check int) "sum saturates" max_int (Metrics.hist_sum h);
        Alcotest.(check int) "p50 = hi of middle value" 1
          (Metrics.quantile h 0.5);
        Alcotest.(check int) "p100" max_int (Metrics.quantile h 1.0);
        let u = Metrics.histogram m "u" in
        for _ = 1 to 4 do Metrics.observe u 1000 done;
        Alcotest.(check int) "uniform p50 overestimates by < 2x" 1023
          (Metrics.quantile u 0.5));
    case "merge equals observing both streams into one histogram"
      (fun () ->
        let m = Metrics.create () in
        let a = Metrics.histogram m "a"
        and b = Metrics.histogram m "b"
        and both = Metrics.histogram m "both" in
        let xs = [ 1; 5; 9 ] and ys = [ 0; 1000; max_int ] in
        List.iter (Metrics.observe a) xs;
        List.iter (Metrics.observe b) ys;
        List.iter (Metrics.observe both) (xs @ ys);
        let before = Metrics.hist_count a in
        Metrics.merge_hist ~into:a b;
        Alcotest.(check bool) "merge is monotone" true
          (Metrics.hist_count a > before);
        Alcotest.(check int) "count" (Metrics.hist_count both)
          (Metrics.hist_count a);
        Alcotest.(check int) "sum" (Metrics.hist_sum both)
          (Metrics.hist_sum a);
        List.iter
          (fun q ->
            Alcotest.(check int)
              (Printf.sprintf "q=%.2f" q)
              (Metrics.quantile both q) (Metrics.quantile a q))
          [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ]);
    case "disabled registry is inert and allocation-free" (fun () ->
        let m = Metrics.disabled in
        let c = Metrics.counter m "c"
        and g = Metrics.gauge m "g"
        and h = Metrics.histogram m "h" in
        let noop () = () in
        let delta f =
          let w0 = Gc.minor_words () in
          f ();
          Gc.minor_words () -. w0
        in
        let bump () =
          for _ = 1 to 10_000 do
            Metrics.incr c;
            Metrics.add c 2;
            Metrics.set g 5;
            Metrics.observe h 12345;
            Span.wrap m "noop" noop
          done
        in
        (* both measurements carry the same fixed boxing overhead from
           [Gc.minor_words] itself, so equal deltas mean the bumps
           allocated nothing *)
        let base = delta noop in
        let d = delta bump in
        Alcotest.(check (float 0.)) "no allocation across 50k bumps" base d;
        Alcotest.(check (list (pair string int))) "nothing registered" []
          (Metrics.counters m);
        Alcotest.(check bool) "snapshot is empty" true
          (Json.member "spans" (Metrics.snapshot m) = Some (Json.List [])));
  ]

(* ------------------------------------------------------------------ *)
(* Spans.                                                              *)
(* ------------------------------------------------------------------ *)

let span_names m = List.map (fun s -> s.Metrics.sp_name) (Metrics.spans m)

let span_cases =
  [
    case "nesting builds slash paths, parents listed before children"
      (fun () ->
        let m = Metrics.create () in
        Span.wrap m "a" (fun () ->
            Span.wrap m "b" ignore;
            Span.wrap m "c" ignore);
        Span.wrap m "a" (fun () -> Span.wrap m "b" ignore);
        Alcotest.(check (list string))
          "entry order" [ "a"; "a/b"; "a/c" ] (span_names m);
        let counts =
          List.map (fun s -> s.Metrics.sp_count) (Metrics.spans m)
        in
        Alcotest.(check (list int)) "counts accumulate" [ 2; 2; 1 ] counts);
    case "a span records even when its body raises" (fun () ->
        let m = Metrics.create () in
        (try Span.wrap m "boom" (fun () -> failwith "no") with
        | Failure _ -> ());
        Span.wrap m "after" ignore;
        Alcotest.(check (list string))
          "recorded and stack unwound" [ "boom"; "after" ] (span_names m);
        match Metrics.spans m with
        | b :: _ -> Alcotest.(check int) "count" 1 b.Metrics.sp_count
        | [] -> Alcotest.fail "no spans");
    case "every pipeline phase appears as a span" (fun () ->
        let m = Metrics.create () in
        let opts = { Pipeline.default_options with Pipeline.metrics = m } in
        let c = Pipeline.compile ~opts ~file:"metrics.mhs" demo in
        let c = Pipeline.optimize Tc_opt.Opt.all c in
        ignore (Pipeline.exec c);
        ignore (Pipeline.exec ~backend:`Vm c);
        let names = span_names m in
        List.iter
          (fun n ->
            Alcotest.(check bool) ("span " ^ n) true (List.mem n names))
          [
            "compile"; "compile/lex"; "compile/layout"; "compile/parse";
            "compile/desugar"; "compile/infer"; "compile/methods";
            "compile/dicts"; "compile/resolve"; "compile/normalize";
            "optimize"; "optimize/simplify"; "optimize/specialise";
            "exec"; "exec/eval"; "exec/lower"; "exec/render";
          ];
        let index n =
          let rec go i = function
            | [] -> Alcotest.failf "span %s missing" n
            | x :: _ when x = n -> i
            | _ :: rest -> go (i + 1) rest
          in
          go 0 names
        in
        Alcotest.(check bool) "compile precedes its phases" true
          (index "compile" < index "compile/infer");
        Alcotest.(check bool) "exec precedes eval" true
          (index "exec" < index "exec/eval");
        (* both backends fold into the same aggregated span *)
        let eval = List.find (fun s -> s.Metrics.sp_name = "exec/eval")
            (Metrics.spans m) in
        Alcotest.(check int) "eval ran twice" 2 eval.Metrics.sp_count);
    case "span order and stable snapshots are deterministic across runs"
      (fun () ->
        let shot () =
          let m = Metrics.create () in
          let opts = { Pipeline.default_options with Pipeline.metrics = m } in
          ignore
            (Pipeline.exec (Pipeline.compile ~opts ~file:"metrics.mhs" demo));
          (span_names m, Json.to_string (Metrics.snapshot ~stable:true m))
        in
        let names1, stable1 = shot () in
        let names2, stable2 = shot () in
        Alcotest.(check (list string)) "same span order" names1 names2;
        Alcotest.(check string) "byte-identical stable snapshot" stable1
          stable2);
  ]

(* ------------------------------------------------------------------ *)
(* Snapshots and JSON.                                                 *)
(* ------------------------------------------------------------------ *)

let json_cases =
  [
    case "snapshot round-trips through Tc_obs.Json" (fun () ->
        let m = Metrics.create () in
        Metrics.add (Metrics.counter m "reqs") 17;
        Metrics.set (Metrics.gauge m "depth") 3;
        let h = Metrics.histogram m "lat" in
        List.iter (Metrics.observe h) [ 0; 1; 7; 1000; max_int ];
        Span.wrap m "outer" (fun () -> Span.wrap m "inner" ignore);
        let snap = Metrics.snapshot m in
        (match Json.parse (Json.to_string snap) with
        | Ok v -> Alcotest.(check bool) "pretty form" true (v = snap)
        | Error e -> Alcotest.failf "parse failed: %s" e);
        match Json.parse (Json.to_line snap) with
        | Ok v -> Alcotest.(check bool) "line form" true (v = snap)
        | Error e -> Alcotest.failf "parse failed: %s" e);
    case "stable snapshots redact machine-dependent detail" (fun () ->
        let m = Metrics.create () in
        Metrics.observe (Metrics.histogram m "lat") 1234;
        Span.wrap m "work" ignore;
        let get path j =
          List.fold_left
            (fun acc k ->
              match acc with
              | Some o -> Json.member k o
              | None -> None)
            (Some j) path
        in
        let full = Metrics.snapshot m in
        Alcotest.(check bool) "full has sum" true
          (get [ "histograms"; "lat"; "sum" ] full <> None);
        let stable = Metrics.snapshot ~stable:true m in
        Alcotest.(check bool) "stable drops sum" true
          (get [ "histograms"; "lat"; "sum" ] stable = None);
        Alcotest.(check bool) "stable keeps count" true
          (get [ "histograms"; "lat"; "count" ] stable = Some (Json.Int 1));
        match get [ "spans" ] stable with
        | Some (Json.List [ Json.Obj fields ]) ->
            Alcotest.(check bool) "span keeps no duration" true
              (not (List.mem_assoc "total_ns" fields))
        | _ -> Alcotest.fail "expected one span");
  ]

(* ------------------------------------------------------------------ *)
(* Serve telemetry.                                                    *)
(* ------------------------------------------------------------------ *)

let test_config = { Serve.default_config with Serve.sleep = (fun _ -> ()) }

let with_plan plan f =
  Inject.arm plan;
  Fun.protect ~finally:Inject.disarm f

let decode line =
  match Json.parse line with
  | Ok v -> v
  | Error m -> Alcotest.failf "response is not JSON (%s): %s" m line

let field name resp =
  match Json.member name resp with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_line resp)

let error_class resp =
  match Json.member "class" (field "error" resp) with
  | Some (Json.Str c) -> c
  | _ -> Alcotest.failf "no error class: %s" (Json.to_line resp)

let req fields = Json.to_line (Json.Obj fields)

let run_req ?(extra = []) src =
  req ([ ("op", Json.Str "run"); ("src", Json.Str src) ] @ extra)

let latency_total m =
  List.fold_left
    (fun acc (name, h) ->
      if String.starts_with ~prefix:"serve/latency/" name then
        acc + Metrics.hist_count h
      else acc)
    0 (Metrics.histograms m)

(* A clock that advances exactly one millisecond per reading: every
   request takes precisely 1000us of "time", so latency quantiles are
   exact constants. *)
let ticking () =
  let n = ref 0 in
  fun () ->
    incr n;
    float_of_int !n *. 0.001

let serve_cases =
  [
    case "every failure class gets its own latency histogram" (fun () ->
        let t = Serve.create ~config:test_config () in
        let expect cls line =
          let resp = decode (Serve.handle_line t line) in
          Alcotest.(check string) ("class " ^ cls) cls (error_class resp)
        in
        expect "bad-request" "{this is not json";
        expect "bad-request" (req [ ("op", Json.Str "frobnicate") ]);
        expect "compile" (run_req {|main = "five" + 5|});
        expect "runtime" (run_req {|main = error "boom"|});
        expect "resource"
          (run_req "loop n = loop (n + 1)\nmain = loop (0 :: Int)"
             ~extra:[ ("fuel", Json.Int 1000) ]);
        with_plan
          (Inject.plan ~rate:1. ~points:[ Inject.Serve_transient ] ())
          (fun () -> expect "transient" (run_req "main = 1 + 1"));
        with_plan
          (Inject.plan ~rate:1. ~points:[ Inject.Eval_step ] ~max_faults:1 ())
          (fun () -> expect "ice" (run_req "main = 1 + 1"));
        let m = Serve.metrics t in
        let hists = Metrics.histograms m in
        List.iter
          (fun cls ->
            match List.assoc_opt ("serve/failures/" ^ cls) hists with
            | Some h ->
                Alcotest.(check bool)
                  ("failures/" ^ cls ^ " observed")
                  true
                  (Metrics.hist_count h >= 1)
            | None -> Alcotest.failf "no serve/failures/%s histogram" cls)
          [ "bad-request"; "compile"; "runtime"; "resource"; "transient";
            "ice" ]);
    case "per-op latency counts sum exactly to the request counter"
      (fun () ->
        let t = Serve.create ~config:test_config () in
        let handle line = decode (Serve.handle_line t line) in
        ignore (handle (req [ ("op", Json.Str "ping") ]));
        ignore (handle (run_req demo));
        ignore (handle (req [ ("op", Json.Str "check");
                              ("src", Json.Str {|main = "five" + 5|}) ]));
        ignore (handle "{nope");
        (* the mid-stream snapshot excludes the in-flight metrics request
           from both sides of the invariant *)
        let snap = field "metrics" (handle (req [ ("op", Json.Str "metrics") ]))
        in
        (match Json.member "counters" snap with
        | Some counters ->
            Alcotest.(check bool) "mid-stream counter" true
              (Json.member "serve/requests" counters = Some (Json.Int 4))
        | None -> Alcotest.fail "snapshot lacks counters");
        ignore (handle (req [ ("op", Json.Str "stats") ]));
        let m = Serve.metrics t in
        let requests =
          Metrics.counter_value (Metrics.counter m "serve/requests")
        in
        Alcotest.(check int) "all six requests counted" 6 requests;
        Alcotest.(check int) "latency counts sum to the counter" requests
          (latency_total m);
        (* pipeline spans accumulate across requests in the same registry *)
        Alcotest.(check bool) "compile spans present" true
          (List.mem "compile" (span_names m)));
    case "injectable clock: deterministic latency quantiles and uptime"
      (fun () ->
        let config = { test_config with Serve.clock = ticking () } in
        let t = Serve.create ~config () in
        for _ = 1 to 3 do
          ignore (Serve.handle_line t (req [ ("op", Json.Str "ping") ]))
        done;
        let resp = decode (Serve.handle_line t (req [ ("op", Json.Str "stats") ]))
        in
        let stats = field "stats" resp in
        let latency = field "latency" stats in
        Alcotest.(check bool) "three observed" true
          (Json.member "count" latency = Some (Json.Int 3));
        (* each ping took exactly one 1000us tick: both quantiles are the
           upper bound of the bucket holding 1000 *)
        Alcotest.(check bool) "p50" true
          (Json.member "p50_us" latency = Some (Json.Int 1023));
        Alcotest.(check bool) "p99" true
          (Json.member "p99_us" latency = Some (Json.Int 1023));
        match Json.member "uptime_ms" stats with
        | Some (Json.Int ms) ->
            Alcotest.(check bool) "uptime counts ticks" true (ms > 0);
            Alcotest.(check bool) "uptime from server accessor" true
              (Serve.uptime_ms t > ms)
        | _ -> Alcotest.fail "no uptime_ms");
    case "metrics op honours the stable flag" (fun () ->
        let t = Serve.create ~config:test_config () in
        ignore (Serve.handle_line t (req [ ("op", Json.Str "ping") ]));
        let snap stable =
          let extra = if stable then [ ("stable", Json.Bool true) ] else [] in
          field "metrics"
            (decode
               (Serve.handle_line t
                  (req ([ ("op", Json.Str "metrics") ] @ extra))))
        in
        let hist snapshot =
          match Json.member "histograms" snapshot with
          | Some h -> Json.member "serve/latency/ping" h
          | None -> None
        in
        (match hist (snap false) with
        | Some h ->
            Alcotest.(check bool) "full detail" true
              (Json.member "p99" h <> None)
        | None -> Alcotest.fail "no ping latency histogram");
        match hist (snap true) with
        | Some (Json.Obj fields) ->
            Alcotest.(check (list string)) "stable is counts only"
              [ "count" ] (List.map fst fields)
        | _ -> Alcotest.fail "no stable ping latency histogram");
    case "run emits a spontaneous snapshot line every N requests"
      (fun () ->
        let config = { test_config with Serve.snapshot_every = 2 } in
        let server = Serve.create ~config () in
        let inputs =
          ref (List.init 5 (fun _ -> req [ ("op", Json.Str "ping") ]))
        in
        let next () =
          match !inputs with
          | [] -> None
          | x :: rest ->
              inputs := rest;
              Some x
        in
        let emitted = ref [] in
        let stats =
          Serve.run ~server ~next ~emit:(fun l -> emitted := l :: !emitted) ()
        in
        Alcotest.(check int) "five responses" 5 stats.Serve.responses;
        let events =
          List.filter
            (fun l -> Json.member "event" (decode l) <> None)
            (List.rev !emitted)
        in
        Alcotest.(check int) "snapshots after requests 2 and 4" 2
          (List.length events);
        List.iter
          (fun l ->
            let e = decode l in
            Alcotest.(check bool) "event tag" true
              (Json.member "event" e = Some (Json.Str "metrics-snapshot"));
            Alcotest.(check bool) "carries the registry" true
              (Json.member "metrics" e <> None))
          events);
  ]

(* ------------------------------------------------------------------ *)
(* Registry merging (the multi-worker aggregation path).               *)
(* ------------------------------------------------------------------ *)

let merge_cases =
  [
    case "merge with disjoint counter keys keeps both" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        Metrics.add (Metrics.counter a "serve/requests") 3;
        Metrics.add (Metrics.counter b "scale/cache/hits") 5;
        Metrics.merge ~into:a b;
        Alcotest.(check (list (pair string int)))
          "disjoint keys union, shared order by name"
          [ ("scale/cache/hits", 5); ("serve/requests", 3) ]
          (Metrics.counters a));
    case "merge adds shared counters and maxes gauges" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        Metrics.add (Metrics.counter a "reqs") 3;
        Metrics.add (Metrics.counter b "reqs") 4;
        Metrics.set (Metrics.gauge a "depth") 9;
        Metrics.set (Metrics.gauge b "depth") 2;
        Metrics.set (Metrics.gauge b "only-b") 6;
        Metrics.merge ~into:a b;
        Alcotest.(check int) "counters add" 7
          (Metrics.counter_value (Metrics.counter a "reqs"));
        Alcotest.(check (list (pair string int)))
          "gauges take max; new gauges appear"
          [ ("depth", 9); ("only-b", 6) ]
          (Metrics.gauges a));
    case "merging an empty registry is the identity" (fun () ->
        let a = Metrics.create () in
        Metrics.add (Metrics.counter a "reqs") 2;
        Metrics.observe (Metrics.histogram a "lat") 100;
        ignore (Metrics.span_push a "compile");
        Metrics.span_pop a;
        Metrics.span_record a "compile" ~ns:10 ~words:1;
        let before = Json.to_string (Metrics.snapshot a) in
        Metrics.merge ~into:a (Metrics.create ());
        Alcotest.(check string) "into unchanged" before
          (Json.to_string (Metrics.snapshot a));
        (* ... and merging into an empty registry copies the source. *)
        let fresh = Metrics.create () in
        Metrics.merge ~into:fresh a;
        Alcotest.(check string) "copy into empty" before
          (Json.to_string (Metrics.snapshot fresh));
        (* Disabled on either side is a no-op, not a crash. *)
        Metrics.merge ~into:Metrics.disabled a;
        Metrics.merge ~into:a Metrics.disabled;
        Alcotest.(check string) "disabled no-op" before
          (Json.to_string (Metrics.snapshot a)));
    case "histogram merge preserves quantile monotonicity" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        let ha = Metrics.histogram a "lat" and hb = Metrics.histogram b "lat" in
        (* One low-latency stream, one heavy-tailed stream. *)
        List.iter (Metrics.observe ha) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
        List.iter (Metrics.observe hb) [ 1000; 2000; 4000; 1 lsl 30 ];
        (* Reference: every observation in a single histogram. *)
        let all = Metrics.create () in
        let href = Metrics.histogram all "lat" in
        List.iter (Metrics.observe href)
          [ 1; 2; 3; 4; 5; 6; 7; 8; 1000; 2000; 4000; 1 lsl 30 ];
        Metrics.merge ~into:a b;
        Alcotest.(check int) "count sums" 12 (Metrics.hist_count ha);
        List.iter
          (fun q ->
            Alcotest.(check int)
              (Printf.sprintf "q%.2f equals single-stream histogram" q)
              (Metrics.quantile href q) (Metrics.quantile ha q))
          [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
        let qs = List.map (Metrics.quantile ha) [ 0.5; 0.9; 0.99; 1.0 ] in
        let rec mono = function
          | x :: (y :: _ as rest) -> x <= y && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "p50 <= p90 <= p99 <= p100" true (mono qs));
    case "merge accumulates span stats preserving entry order" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        let enter m name =
          ignore (Metrics.span_push m name);
          Metrics.span_pop m
        in
        enter a "compile";
        Metrics.span_record a "compile" ~ns:100 ~words:10;
        enter b "compile";
        enter b "exec";
        Metrics.span_record b "compile" ~ns:50 ~words:5;
        Metrics.span_record b "exec" ~ns:7 ~words:1;
        Metrics.merge ~into:a b;
        match Metrics.spans a with
        | [ c; e ] ->
            Alcotest.(check string) "into's span first" "compile" c.sp_name;
            Alcotest.(check int) "counts add" 2 c.sp_count;
            Alcotest.(check int) "ns add" 150 c.sp_ns;
            Alcotest.(check string) "new span appended" "exec" e.sp_name;
            Alcotest.(check int) "new span count" 1 e.sp_count
        | l ->
            Alcotest.failf "expected 2 spans, got %d" (List.length l));
  ]

let tests =
  [
    ("metrics instruments", instrument_cases);
    ("metrics spans", span_cases);
    ("metrics snapshots", json_cases);
    ("metrics merge", merge_cases);
    ("serve telemetry", serve_cases);
  ]
