(** Dictionary-conversion tests: properties of the translated core program
    (§4–§6) — well-formedness, direct calls at known types, dictionary
    layouts, operation counts. *)

open Helpers
module Core = Tc_core_ir.Core
module Pipeline = Typeclasses.Pipeline

let flat_opts =
  { Pipeline.default_options with strategy = Pipeline.Dicts_flat }

(* find a top-level binding's expression *)
let binding (c : Pipeline.compiled) name =
  let id = Tc_support.Ident.intern name in
  let all = List.concat_map Core.binds_of_group c.core.p_binds in
  match List.find_opt (fun (b : Core.bind) -> Tc_support.Ident.equal b.b_name id) all with
  | Some b -> b.b_expr
  | None -> Alcotest.failf "no core binding '%s'" name

let rec count_nodes pred (e : Core.expr) =
  let n = ref (if pred e then 1 else 0) in
  Core.iter_sub (fun sub -> n := !n + count_nodes pred sub) e;
  !n

let count_sels = count_nodes (function Core.Sel _ -> true | _ -> false)
let count_mkdicts = count_nodes (function Core.MkDict _ -> true | _ -> false)

let count_lam_params (c : Pipeline.compiled) name =
  match binding c name with Core.Lam (vs, _) -> List.length vs | _ -> 0

let tests =
  [
    ( "translation",
      [
        case "core is lint-clean for a large program" (fun () ->
            (* compile runs the linter; reaching here is the assertion *)
            ignore
              (compile
                 {|
data T = A | B deriving (Eq, Ord, Text)
f :: (Ord a, Num b) => [a] -> b -> [Char]
f xs n = str (n + n) ++ str (maximum xs == minimum xs)
main = f [A, B] (3 :: Int)
|}));
        case "overloaded function gains one dictionary parameter" (fun () ->
            let c = compile "f x y = x == y\nmain = 0" in
            Alcotest.(check int) "params" 3 (count_lam_params c "f"));
        case "two contexts mean two dictionary parameters" (fun () ->
            let c = compile "f x y = (x == x, y + y)\nmain = 0" in
            Alcotest.(check int) "params" 4 (count_lam_params c "f"));
        case "unconstrained functions get no dictionaries" (fun () ->
            let c = compile "f x = (x, x)\nmain = 0" in
            Alcotest.(check int) "params" 1 (count_lam_params c "f"));
        case "method at a known type becomes a direct call (§6.3 case 2)"
          (fun () ->
            let c = compile "f :: Int -> Bool\nf n = n == n\nmain = 0" in
            let e = binding c "f" in
            Alcotest.(check int) "no selections" 0 (count_sels e);
            Alcotest.(check int) "no constructions" 0 (count_mkdicts e));
        case "method at the class variable selects from the dictionary"
          (fun () ->
            let c = compile "f x = x == x\nmain = 0" in
            Alcotest.(check int) "one selection" 1 (count_sels (binding c "f")));
        case "recursive calls pass dictionaries unchanged (§6.3)" (fun () ->
            let c =
              compile "mem x (y:ys) = x == y || mem x ys\nmem x [] = False\nmain = 0"
            in
            (* the recursive call must reference mem applied to its own
               dictionary parameter *)
            let e = binding c "mem" in
            match e with
            | Core.Lam (d :: _, _) ->
                let uses_d_in_call = ref false in
                let rec walk e =
                  (match Core.unfold_app e [] with
                   | Core.Var f, Core.Var d' :: _
                     when Tc_support.Ident.text f = "mem"
                          && Tc_support.Ident.equal d d' ->
                       uses_d_in_call := true
                   | _ -> ());
                  Core.iter_sub walk e
                in
                walk e;
                Alcotest.(check bool) "passes its dictionary" true !uses_d_in_call
            | _ -> Alcotest.fail "expected a lambda");
        case "instance context captured by partial application (§4)" (fun () ->
            (* member at [[Int]]: d$Eq$List (d$Eq$List d$Eq$Int) *)
            let c = compile "main = member [[1]] [[[1]]]" in
            let e = binding c "main" in
            let found = ref false in
            let rec walk e =
              (match Core.unfold_app e [] with
               | Core.Var f, [ arg ]
                 when Tc_support.Ident.text f = "d$Eq$List" -> (
                   match Core.unfold_app arg [] with
                   | Core.Var g, [ _ ] when Tc_support.Ident.text g = "d$Eq$List" ->
                       found := true
                   | _ -> ())
               | _ -> ());
              Core.iter_sub walk e
            in
            walk e;
            Alcotest.(check bool) "nested dictionary application" true !found);
        case "monomorphic code pays nothing with classes in scope (§9, E8)"
          (fun () ->
            let _, counters =
              run_counters
                {|
step :: Int -> Int
step x = x * 3 + 1
iter :: Int -> Int -> Int
iter n x = if n == 0 then x else iter (n - 1) (step x)
main = iter 100 1
|}
            in
            Alcotest.(check int) "no dictionary constructions" 0
              counters.dict_constructions;
            Alcotest.(check int) "no selections" 0 counters.selections);
      ] );
    ( "dictionary-layouts",
      [
        case "flat and nested layouts agree on results" (fun () ->
            let src =
              {|
f :: Ord a => [a] -> (Bool, a, a)
f xs = (head xs == last xs, maximum xs, minimum xs)
main = (f [3,1,2], f "ba", sum [1,2,3])
|}
            in
            Alcotest.(check string) "same result" (run src) (run ~opts:flat_opts src));
        case "flat layout reaches superclass methods in one selection"
          (fun () ->
            (* under Ord a, an == use selects from: nested = 2 hops,
               flat = 1 hop *)
            let src = "f x y = (x <= y, x == y)\nmain = 0" in
            let nested = compile src and flat = compile ~opts:flat_opts src in
            let sels_of c =
              let e = binding c "f" in
              let max_chain = ref 0 in
              let rec chain (e : Core.expr) =
                match e with Core.Sel (_, d) -> 1 + chain d | _ -> 0
              in
              let rec walk e =
                max_chain := max !max_chain (chain e);
                Core.iter_sub walk e
              in
              walk e;
              !max_chain
            in
            Alcotest.(check int) "nested needs a chain" 2 (sels_of nested);
            Alcotest.(check int) "flat needs one hop" 1 (sels_of flat));
        case "flat dictionaries are wider" (fun () ->
            let src = "f x y = x <= y\nmain = f (1::Int) 2" in
            let nested = compile src and flat = compile ~opts:flat_opts src in
            let width c =
              match binding c "d$Ord$Int" with
              | Core.MkDict (_, fields) -> List.length fields
              | Core.Let (Core.Rec [ { b_expr = Core.MkDict (_, fields); _ } ], _) ->
                  List.length fields
              | _ -> Alcotest.fail "expected a dictionary"
            in
            (* nested: 1 superclass + 7 methods; flat: 7 + 2 methods *)
            Alcotest.(check int) "nested width" 8 (width nested);
            Alcotest.(check int) "flat width" 9 (width flat));
        case "diamond superclass hierarchies deduplicate (both layouts)"
          (fun () ->
            (*      A
                   / \
                  B   C     flat slots of D must contain A's method once *)
            let src =
              {|
class A a where
  ma :: a -> Int
class A a => B a where
  mb :: a -> Int
class A a => C a where
  mc :: a -> Int
class (B a, C a) => D a where
  md :: a -> Int

instance A Int where
  ma x = 1
instance B Int where
  mb x = 2
instance C Int where
  mc x = 4
instance D Int where
  md x = 8

useAll :: D a => a -> Int
useAll x = ma x + mb x + mc x + md x

viaB :: B a => a -> Int
viaB = ma

fromD :: D a => a -> Int
fromD x = viaB x + useAll x

main = (useAll (0 :: Int), fromD (0 :: Int))
|}
            in
            let nested = run src and flat = run ~opts:flat_opts src in
            Alcotest.(check string) "nested" "(15, 16)" nested;
            Alcotest.(check string) "flat" "(15, 16)" flat);
        case "flat slot list has no duplicates in a diamond" (fun () ->
            let c =
              compile
                {|
class A a where
  ma :: a -> Int
class A a => B a where
  mb :: a -> Int
class A a => C a where
  mc :: a -> Int
class (B a, C a) => D a where
  md :: a -> Int
main = 0
|}
            in
            let slots =
              Tc_dicts.Layout.flat_slots c.env (Tc_support.Ident.intern "D")
            in
            let names = List.map (fun (_, m) -> Tc_support.Ident.text m) slots in
            Alcotest.(check (list string)) "canonical order"
              [ "md"; "mb"; "ma"; "mc" ] names);
        case "superclass defaults work under both layouts" (fun () ->
            let src =
              {|
data T = T1 | T2 deriving (Eq, Ord, Text)
main = (T1 < T2, max T1 T2, T1 >= T1)
|}
            in
            Alcotest.(check string) "agree" (run src) (run ~opts:flat_opts src));
      ] );
    ( "overloaded-methods",
      [
        (* §8.5: a method with context beyond the class variable *)
        case "method with extra context checks and runs" (fun () ->
            let out =
              run
                {|
class Container f where
  contains :: Eq a => f -> [a] -> Bool

data Probe = Probe Int

instance Container Probe where
  contains (Probe n) xs = length xs == n

main = (contains (Probe 2) [True, False], contains (Probe 1) "xy")
|}
            in
            Alcotest.(check string) "result" "(True, False)" out);
        case "extra-context dictionaries flow to the implementation" (fun () ->
            let out =
              run
                {|
class Searchable s where
  findIn :: Eq a => s -> a -> [a] -> Bool

data Fwd = Fwd
data Bwd = Bwd

instance Searchable Fwd where
  findIn s x xs = member x xs

instance Searchable Bwd where
  findIn s x xs = member x (reverse xs)

search :: (Searchable s, Eq a) => s -> a -> [a] -> Bool
search = findIn

main = (search Fwd 1 [1,2], search Bwd 'z' "xyz")
|}
            in
            Alcotest.(check string) "result" "(True, True)" out);
      ] );
  ]
