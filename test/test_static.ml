(** Static analysis tests (paper §4): declaration processing, instance
    uniqueness, superclass coverage, deriving. *)

open Helpers

let tests =
  [
    ( "static",
      [
        check_error "duplicate instance"
          {|
instance Eq Bool where
  x == y = True
main = 0
|}
          "duplicate instance";
        check_error "unknown class in instance" "instance Foo Int\nmain = 0"
          "unknown class";
        check_error "unknown superclass" "class Foo a => Bar a where\n  bar :: a -> a\nmain = 0"
          "unknown superclass";
        check_error "superclass cycle"
          "class B a => A a where\n  fa :: a -> a\nclass A a => B a where\n  fb :: a -> a\nmain = 0"
          "cycle";
        check_error "missing superclass instance"
          {|
data T = T
instance Ord T where
  x <= y = True
main = 0
|}
          "superclass instance";
        check_error "instance context too weak for superclass dictionary"
          {|
data Box a = Box a
instance Eq a => Eq (Box a) where
  x == y = True
instance Ord (Box a) where
  x <= y = True
|}
          "cannot build its superclass";
        check_error "duplicate data declaration" "data T = A\ndata T = B\nmain = 0"
          "defined twice";
        check_error "duplicate constructor" "data T = A\ndata U = A\nmain = 0"
          "defined twice";
        check_error "unbound type variable in data"
          "data T = MkT b\nmain = 0" "not bound";
        check_error "duplicate class" "class Eq a where\n  eqq :: a -> a\nmain = 0"
          "defined twice";
        check_error "method in two classes"
          "class A a where\n  m :: a -> a\nclass B a where\n  m :: a -> a\nmain = 0"
          "more than one class";
        check_error "method must mention class variable"
          "class A a where\n  m :: Int -> Int\nmain = 0" "class variable";
        check_error "method context cannot constrain class variable"
          "class A a where\n  m :: Eq a => a -> a\nmain = 0"
          "may not further constrain";
        check_error "instance head must use variables"
          "instance Eq [Int] where\n  x == y = True\nmain = 0"
          "instance head";
        check_error "instance head variables distinct"
          "instance Eq (a, a) where\n  x == y = True\nmain = 0" "duplicate";
        check_error "instance method not in class"
          {|
data T = T
instance Eq T where
  x == y = True
  foo x = x
|}
          "not a method";
        check_error "cyclic type synonym" "type A = [B]\ntype B = [A]\nmain = 0"
          "cyclic";
        check_error "synonym arity" "type P a = (a, a)\nbad :: P\nbad = bad\nmain = 0"
          "expects 1 argument";
        check_error "instance on a synonym"
          "type S = Int\nclass C a where\n  c :: a -> a\ninstance C S where\n  c x = x\nmain = 0"
          "synonym";
        case "instance body may use where clauses" (fun () ->
            let out =
              run
                {|
data T = T1 | T2
instance Eq T where
  x == y = both x y where
    both T1 T1 = True
    both T2 T2 = True
    both a b = False
main = (T1 == T1, T1 == T2)
|}
            in
            Alcotest.(check string) "result" "(True, False)" out);
        case "empty instance body uses defaults" (fun () ->
            let out =
              run
                {|
class Greet a where
  greet :: a -> [Char]
  greet x = "hello"
data T = T
instance Greet T
main = greet T
|}
            in
            Alcotest.(check string) "result" "\"hello\"" out);
        case "missing method without default warns and fails at run time"
          (fun () ->
            let src =
              {|
data T = T
class C a where
  m1 :: a -> Int
  m2 :: a -> Int
instance C T where
  m1 x = 1
main = m2 T
|}
            in
            let c = compile src in
            Alcotest.(check bool) "warned" true (c.warnings <> []);
            match Typeclasses.Pipeline.exec c with
            | exception Tc_eval.Eval.Pattern_fail m ->
                Alcotest.(check bool) "message" true
                  (contains ~needle:"no definition for method" m)
            | _ -> Alcotest.fail "expected a run-time failure");
      ] );
    ( "deriving",
      [
        check_run "derived Eq on products"
          {|
data P = P Int Bool deriving (Eq)
main = (P 1 True == P 1 True, P 1 True == P 1 False, P 1 True /= P 2 True)
|}
          "(True, False, True)";
        check_run "derived Eq is structural and recursive"
          {|
data Tree = Leaf | Node Tree Int Tree deriving (Eq)
main = ( Node Leaf 1 Leaf == Node Leaf 1 Leaf
       , Node Leaf 1 Leaf == Leaf )
|}
          "(True, False)";
        check_run "derived Ord orders by constructor then arguments"
          {|
data C = R | G | B deriving (Eq, Ord, Text)
main = (R < G, B > G, G <= G, max R B, [R, B] < [R, B, G], minimum [B, R, G])
|}
          "(True, True, True, B, True, R)";
        check_run "derived Text"
          {|
data Shape = Dot | Box Int Int deriving (Text)
main = (str Dot, str (Box 1 2))
|}
          "(\"Dot\", \"(Box 1 2)\")";
        check_run "derived instances on parametric types"
          {|
data Pair a b = Pair a b deriving (Eq, Text)
main = (Pair 1 'x' == Pair 1 'x', str (Pair 2 False))
|}
          "(True, \"(Pair 2 False)\")";
        check_error "deriving requires instances for fields"
          {|
data F = F (Int -> Int) deriving (Eq)
main = F id == F id
|}
          "no instance";
        check_error "unknown derivable class"
          "data T = T deriving (Show)\nmain = 0" "cannot derive";
      ] );
  ]
