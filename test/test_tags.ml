(** Run-time tag dispatch tests (§3): agreement with the dictionary
    strategy on dispatchable programs, and rejection of return-type
    overloading. *)

open Helpers
module Pipeline = Typeclasses.Pipeline

let tags_opts = { Pipeline.default_options with strategy = Pipeline.Tags }

let compile_tags src = Pipeline.compile ~opts:tags_opts ~file:"test.mhs" src

let run_tags ?(mode = `Lazy) src =
  (Pipeline.exec ~mode ~budget:(Pipeline.Budget.fuel 50_000_000) (compile_tags src)).rendered

let counters_tags src =
  let r = Pipeline.exec ~budget:(Pipeline.Budget.fuel 50_000_000) (compile_tags src) in
  (r.rendered, r.counters)

let check_agree name src =
  case name (fun () ->
      Alcotest.(check string) name (run src) (run_tags src))

let expect_tags_error name src needle =
  case name (fun () ->
      match compile_tags src with
      | exception Tc_support.Diagnostic.Error d ->
          if not (contains ~needle (Tc_support.Diagnostic.to_string d)) then
            Alcotest.failf "wrong error: %s" (Tc_support.Diagnostic.to_string d)
      | _ -> Alcotest.fail "expected tag-dispatch translation to fail")

let tests =
  [
    ( "tag-dispatch",
      [
        check_agree "equality on primitives" "main = (1 == 1, 'a' == 'b', 1.5 == 1.5)";
        check_agree "equality on structures"
          "main = ([1,2] == [1,2], (1, 'x') == (1, 'y'), Just 1 == Just 1)";
        check_agree "arithmetic dispatches per type"
          "main = (1 + 2, 1.5 + 2.5, negate 4)";
        check_agree "ordering with defaults"
          "main = (1 < 2, 'b' >= 'a', max 1 2, min 2.5 1.5)";
        check_agree "printing" "main = (str 42, str True, str [1,2])";
        check_agree "user instances"
          {|
data C = R | G | B deriving (Eq, Text)
main = (R == R, G == B, str B)
|};
        check_agree "overloaded user functions stay overloaded"
          {|
double x = x + x
main = (double 2, double 2.5)
|};
        case "dispatch happens per call at run time" (fun () ->
            (* the prelude's sum uses fromInt, which tags cannot run; use a
               local accumulation instead *)
            let _, c =
              counters_tags
                "total [] = 0\ntotal (x:xs) = x + total xs\nmain = total (enumFromTo 1 20)"
            in
            (* + dispatches on every element *)
            Alcotest.(check bool) "many dispatches" true (c.tag_dispatches >= 20);
            Alcotest.(check int) "no dictionaries" 0 c.dict_constructions);
        case "structural equality re-dispatches per element" (fun () ->
            let _, c10 = counters_tags "main = [1,2,3,4,5] == [1,2,3,4,5]" in
            let _, c2 = counters_tags "main = [1] == [1]" in
            Alcotest.(check bool) "grows with structure" true
              (c10.tag_dispatches > c2.tag_dispatches));
        expect_tags_error "return-type overloading rejected (the paper's read)"
          {|main = (parse "1" :: Int)|} "result type";
        expect_tags_error "fromInt in user code rejected"
          "f :: Num a => Int -> a\nf = fromInt\nmain = 0" "result type";
        expect_tags_error "class-constant methods rejected"
          {|
class HasZero a where
  zero :: a
instance HasZero Int where
  zero = 0
main = (zero :: Int)
|}
          "result type";
        case "buried dispatch position rejected distinctly" (fun () ->
            match
              compile_tags
                {|
class Sized a where
  total :: [a] -> Int
instance Sized Int where
  total xs = length xs
main = total [1,2,3 :: Int]
|}
            with
            | exception Tc_support.Diagnostic.Error d ->
                Alcotest.(check bool) "mentions buried" true
                  (contains ~needle:"buried" (Tc_support.Diagnostic.to_string d))
            | _ -> Alcotest.fail "expected rejection");
        case "prelude survives in lenient mode; stub fails only when called"
          (fun () ->
            match run_tags "main = (fromIntegral 3 :: Float)" with
            | exception Tc_eval.Eval.Pattern_fail m ->
                Alcotest.(check bool) "explains" true
                  (contains ~needle:"return-type overloading" m)
            | r -> Alcotest.failf "expected run-time failure, got %s" r);
        case "tags agree with dictionaries in strict mode too" (fun () ->
            let src =
              "total [] = 0\ntotal (x:xs) = x + total xs\nmain = (total (enumFromTo 1 10), [1,2] == [1,2])"
            in
            Alcotest.(check string) "strict" (run ~mode:`Strict src)
              (run_tags ~mode:`Strict src));
      ] );
  ]
