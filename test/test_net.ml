(** The TCP front end: connection supervision, deadlines, admission,
    drain, probes — plus the satellites that ride along (monotonic
    clock, striped cache under concurrency, [bounded_next] edge cases
    over real sockets).

    Every server here binds port 0 (ephemeral) on loopback and is torn
    down through the same graceful-drain path the CLI uses, so each
    case also re-checks the two global invariants: the pool answers
    exactly one response per request read, and the merged registry
    keeps the per-op latency counts summing to [serve/requests] with
    the [net/...] instruments merged in. *)

open Helpers
module Serve = Typeclasses.Serve
module Pipeline = Typeclasses.Pipeline
module Metrics = Tc_obs.Metrics
module Json = Tc_obs.Json
module Inject = Tc_resilience.Inject
module Net = Tc_net.Net
module Pool = Tc_scale.Pool
module Cache = Tc_scale.Cache
module Loadgen = Tc_scale.Loadgen
module Mono = Tc_support.Mono

let counter_of m name =
  match List.assoc_opt name (Metrics.counters m) with
  | Some n -> n
  | None -> 0

let fast_config () =
  { Serve.default_config with Serve.sleep = (fun _ -> ()) }

(* Run a server on an ephemeral loopback port, hand the client body its
   port, then drain and return (body result, pool summary). *)
let with_server ?max_conns ?(read_timeout_ms = 10_000)
    ?(idle_timeout_ms = 60_000) ?(drain_timeout_ms = 10_000)
    ?on_drain_deadline ?(workers = 1) ?(config = fast_config ()) f =
  let srv =
    Net.create ?max_conns ~read_timeout_ms ~idle_timeout_ms ~drain_timeout_ms
      ?on_drain_deadline ~host:"127.0.0.1" ~port:0 ()
  in
  let summary = ref None in
  let thr =
    Thread.create
      (fun () -> summary := Some (Net.run srv ~workers ~config ()))
      ()
  in
  let fin () =
    Net.drain srv;
    Thread.join thr
  in
  Fun.protect ~finally:fin @@ fun () ->
  let v = f srv (Net.port srv) in
  fin ();
  match !summary with
  | Some s -> (v, s)
  | None -> Alcotest.fail "server thread produced no summary"

(* ---- a minimal NDJSON client ---- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd)

let close_client fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send fd s =
  try ignore (Unix.write_substring fd s 0 (String.length s))
  with Unix.Unix_error _ -> ()

let recv ic = try Some (input_line ic) with End_of_file | Sys_error _ -> None

let req ?id op extra =
  let fields =
    [ ("op", Json.Str op) ]
    @ (match id with Some i -> [ ("id", Json.Int i) ] | None -> [])
    @ extra
  in
  Json.to_line (Json.Obj fields) ^ "\n"

let ping ?id () = req ?id "ping" []
let demo = "double :: Num a => a -> a\ndouble x = x + x\nmain = double 21\n"

let got = function
  | Some l -> l
  | None -> Alcotest.fail "connection closed before a response arrived"

(* ------------------------------------------------------------------ *)
(* Request/response over TCP.                                          *)
(* ------------------------------------------------------------------ *)

let e2e_cases =
  [
    case "requests answer in order on their own connection" (fun () ->
        let (a, b), summary =
          with_server @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          send fd (ping ~id:1 ());
          send fd (req ~id:2 "run" [ ("src", Json.Str demo) ]);
          (* bind in sequence: tuple components evaluate right-to-left *)
          let a = got (recv ic) in
          let b = got (recv ic) in
          (a, b)
        in
        Alcotest.(check bool) "ping ok" true (contains ~needle:"\"ok\":true" a);
        Alcotest.(check bool) "ping first" true (contains ~needle:"\"id\":1" a);
        Alcotest.(check bool) "run ok" true (contains ~needle:"\"ok\":true" b);
        Alcotest.(check bool) "run second" true (contains ~needle:"\"id\":2" b);
        Alcotest.(check bool) "run answered 42" true (contains ~needle:"42" b);
        Alcotest.(check int) "two requests" 2 summary.Pool.stats.Serve.requests;
        Alcotest.(check int) "one conn accepted" 1
          (counter_of summary.Pool.metrics "net/accepted");
        Alcotest.(check bool) "invariant holds with net/* merged in" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "a closed-loop client against a multi-worker pool never deadlocks"
      (fun () ->
        (* a client that awaits each response before sending the next
           request: with workers > 1 this once deadlocked, the pool
           coordinator blocked in [next] while the response sat in the
           reorder buffer with nobody left to emit it *)
        let n, summary =
          with_server ~workers:2 @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          let served = ref 0 in
          for i = 1 to 5 do
            send fd (ping ~id:i ());
            let resp = got (recv ic) in
            if contains ~needle:(Printf.sprintf "\"id\":%d" i) resp then
              incr served
          done;
          !served
        in
        Alcotest.(check int) "every round trip answered in turn" 5 n;
        Alcotest.(check int) "pool saw all five" 5
          summary.Pool.stats.Serve.requests;
        Alcotest.(check bool) "invariant holds" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "health and ready probes answer over the socket" (fun () ->
        let (h, r), _ =
          with_server @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          send fd (req ~id:7 "health" []);
          send fd (req ~id:8 "ready" []);
          let h = got (recv ic) in
          let r = got (recv ic) in
          (h, r)
        in
        Alcotest.(check bool) "health ok" true
          (contains ~needle:"\"status\":\"ok\"" h);
        Alcotest.(check bool) "health reports uptime" true
          (contains ~needle:"uptime_ms" h);
        Alcotest.(check bool) "ready before drain" true
          (contains ~needle:"\"ready\":true" r));
    case "ready reports false when the config says not ready" (fun () ->
        (* the Net layer composes its own "not draining, not lame-duck"
           predicate with the caller's; the op itself just reports the
           composed verdict — exercise the reporting seam directly *)
        let t =
          Serve.create
            ~config:
              { Serve.default_config with Serve.ready = (fun () -> false) }
            ()
        in
        let resp = Serve.handle_line t {|{"op":"ready"}|} in
        Alcotest.(check bool) "still ok:true" true
          (contains ~needle:"\"ok\":true" resp);
        Alcotest.(check bool) "ready:false" true
          (contains ~needle:"\"ready\":false" resp));
    case "drain flips the draining flag immediately" (fun () ->
        let (), _ =
          with_server @@ fun srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          send fd (ping ());
          ignore (got (recv ic));
          Alcotest.(check bool) "not draining yet" false (Net.draining srv);
          Net.drain srv;
          Alcotest.(check bool) "draining after signal" true (Net.draining srv)
        in
        ());
    case "CRLF request lines are tolerated" (fun () ->
        let a, _ =
          with_server @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          send fd "{\"op\":\"ping\",\"id\":3}\r\n";
          got (recv ic)
        in
        Alcotest.(check bool) "ok" true (contains ~needle:"\"ok\":true" a);
        Alcotest.(check bool) "id echoed" true (contains ~needle:"\"id\":3" a));
    case "a line split across TCP segments reassembles" (fun () ->
        let a, _ =
          with_server @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          let line = ping ~id:4 () in
          let half = String.length line / 2 in
          send fd (String.sub line 0 half);
          Thread.delay 0.15;
          send fd (String.sub line half (String.length line - half));
          got (recv ic)
        in
        Alcotest.(check bool) "ok" true (contains ~needle:"\"ok\":true" a);
        Alcotest.(check bool) "id echoed" true (contains ~needle:"\"id\":4" a));
    case "an oversized line answers bad-request, then the connection keeps \
          working"
      (fun () ->
        let config =
          { (fast_config ()) with Serve.max_line_bytes = 64 }
        in
        let (big, after), summary =
          with_server ~config @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          send fd (String.make 256 'x' ^ "\n");
          send fd (ping ~id:5 ());
          let big = got (recv ic) in
          let after = got (recv ic) in
          (big, after)
        in
        Alcotest.(check bool) "oversized classified" true
          (contains ~needle:"oversized" big);
        Alcotest.(check bool) "bad-request class" true
          (contains ~needle:"bad-request" big);
        Alcotest.(check bool) "same connection still serves" true
          (contains ~needle:"\"id\":5" after);
        Alcotest.(check bool) "invariant counts the oversized request" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "snapshot_every over TCP: responses stay paired, snapshots arrive \
          out-of-band"
      (fun () ->
        (* A spontaneous metrics-snapshot line used to be an [emit] with
           no [next] pop behind it — it crashed the routing FIFO
           (Queue.Empty) on the Nth request, so [Net.run] forced it off.
           Now the pool routes snapshots out-of-band and the front end
           broadcasts them: responses must still pair with requests,
           [and] the snapshot lines must actually reach the socket. *)
        let config = { (fast_config ()) with Serve.snapshot_every = 1 } in
        let (replies, snapshots), summary =
          with_server ~config @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          (* Read until all three responses are in; snapshot broadcasts
             interleave on the same socket as separate lines. *)
          let replies = ref [] and snapshots = ref [] in
          List.iter
            (fun i ->
              send fd (ping ~id:i ());
              let rec read_response () =
                let line = got (recv ic) in
                if contains ~needle:"metrics-snapshot" line then begin
                  snapshots := line :: !snapshots;
                  read_response ()
                end
                else replies := line :: !replies
              in
              read_response ())
            [ 1; 2; 3 ];
          (* Snapshots may trail their request's response; three were
             queued (snapshot_every = 1), so if none interleaved yet a
             blocking read is guaranteed to find one. *)
          while !snapshots = [] do
            let line = got (recv ic) in
            if contains ~needle:"metrics-snapshot" line then
              snapshots := line :: !snapshots
          done;
          (List.rev !replies, List.rev !snapshots)
        in
        List.iteri
          (fun i reply ->
            Alcotest.(check bool) "response routed to its request" true
              (contains ~needle:(Printf.sprintf "\"id\":%d" (i + 1)) reply);
            Alcotest.(check bool) "no snapshot payload inside a response" false
              (contains ~needle:"metrics-snapshot" reply))
          replies;
        Alcotest.(check bool) "snapshots arrive as out-of-band lines" true
          (List.length snapshots >= 1);
        List.iter
          (fun snap ->
            Alcotest.(check bool) "snapshot line is tagged" true
              (contains ~needle:"\"event\":\"metrics-snapshot\"" snap);
            Alcotest.(check bool) "snapshot line carries no response id" false
              (contains ~needle:"\"ok\":" snap))
          snapshots;
        Alcotest.(check int) "three requests" 3
          summary.Pool.stats.Serve.requests;
        Alcotest.(check bool) "invariant holds" true
          (Loadgen.invariant_holds summary.Pool.metrics));
  ]

(* ------------------------------------------------------------------ *)
(* Supervision: admission, deadlines, isolation, drain.                *)
(* ------------------------------------------------------------------ *)

let supervision_cases =
  [
    case "past max-conns a new arrival is refused with one overloaded line"
      (fun () ->
        let (refusal, still), summary =
          with_server ~max_conns:1 @@ fun _srv port ->
          let fd1, ic1 = connect port in
          Fun.protect ~finally:(fun () -> close_client fd1) @@ fun () ->
          send fd1 (ping ~id:1 ());
          ignore (got (recv ic1));
          let fd2, ic2 = connect port in
          Fun.protect ~finally:(fun () -> close_client fd2) @@ fun () ->
          let refusal = got (recv ic2) in
          let eof = recv ic2 in
          Alcotest.(check bool) "refused conn then closes" true (eof = None);
          (* the admitted connection is unaffected *)
          send fd1 (ping ~id:2 ());
          (refusal, got (recv ic1))
        in
        Alcotest.(check bool) "overloaded class" true
          (contains ~needle:"\"class\":\"overloaded\"" refusal);
        Alcotest.(check bool) "admitted conn still served" true
          (contains ~needle:"\"id\":2" still);
        Alcotest.(check int) "one rejection counted" 1
          (counter_of summary.Pool.metrics "net/rejected");
        Alcotest.(check int) "one acceptance counted" 1
          (counter_of summary.Pool.metrics "net/accepted"));
    case "a connection quiet past the idle deadline is reaped" (fun () ->
        let eof, summary =
          with_server ~idle_timeout_ms:100 @@ fun _srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          (* never send a byte: the reaper should shut us down *)
          recv ic
        in
        Alcotest.(check bool) "reaped to EOF" true (eof = None);
        Alcotest.(check int) "reap counted" 1
          (counter_of summary.Pool.metrics "net/reaped"));
    case "a slowloris mid-line is reaped without touching its neighbor"
      (fun () ->
        let (eof, neighbor), summary =
          with_server ~read_timeout_ms:100 @@ fun _srv port ->
          let slow_fd, slow_ic = connect port in
          Fun.protect ~finally:(fun () -> close_client slow_fd) @@ fun () ->
          send slow_fd "{\"op\":\"pi";
          (* no newline, ever *)
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          let eof = recv slow_ic in
          send fd (ping ~id:9 ());
          (eof, got (recv ic))
        in
        Alcotest.(check bool) "slowloris reaped to EOF" true (eof = None);
        Alcotest.(check bool) "neighbor unaffected" true
          (contains ~needle:"\"id\":9" neighbor);
        Alcotest.(check int) "reap counted" 1
          (counter_of summary.Pool.metrics "net/reaped"));
    case "a vanished client drops only its own responses" (fun () ->
        let mine, summary =
          with_server @@ fun _srv port ->
          let fd1, _ic1 = connect port in
          send fd1 (req ~id:1 "run" [ ("src", Json.Str demo) ]);
          (* vanish with the response still in flight *)
          close_client fd1;
          let fd2, ic2 = connect port in
          Fun.protect ~finally:(fun () -> close_client fd2) @@ fun () ->
          send fd2 (ping ~id:2 ());
          got (recv ic2)
        in
        Alcotest.(check bool) "the survivor gets its own response" true
          (contains ~needle:"\"id\":2" mine);
        Alcotest.(check bool) "the survivor never sees the orphan" false
          (contains ~needle:"\"id\":1" mine);
        (* pool accounting never loses the orphaned request *)
        Alcotest.(check int) "both requests processed" 2
          summary.Pool.stats.Serve.requests;
        Alcotest.(check int) "both responses accounted" 2
          summary.Pool.stats.Serve.responses;
        Alcotest.(check bool) "invariant holds" true
          (Loadgen.invariant_holds summary.Pool.metrics));
    case "drain finishes requests already read, then exits" (fun () ->
        let deadline_fired = ref false in
        let resp, summary =
          with_server ~on_drain_deadline:(fun () -> deadline_fired := true)
          @@ fun srv port ->
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          send fd (req ~id:1 "run" [ ("src", Json.Str demo) ]);
          (* let the reader ingest it, then pull the plug *)
          Thread.delay 0.2;
          Net.drain srv;
          got (recv ic)
        in
        Alcotest.(check bool) "in-flight response still delivered" true
          (contains ~needle:"\"id\":1" resp);
        Alcotest.(check int) "request counted" 1
          summary.Pool.stats.Serve.requests;
        Alcotest.(check bool) "clean drain never fires the deadline" false
          !deadline_fired);
    case "binding a busy port raises Bind_error; port 0 is ephemeral"
      (fun () ->
        let srv = Net.create ~host:"127.0.0.1" ~port:0 () in
        let p = Net.port srv in
        Alcotest.(check bool) "ephemeral port assigned" true (p > 0);
        (match Net.create ~host:"127.0.0.1" ~port:p () with
        | exception Net.Bind_error m ->
            Alcotest.(check bool) "diagnostic names the address" true
              (contains ~needle:(string_of_int p) m)
        | _ -> Alcotest.fail "second bind should have failed");
        (* tear the first listener down through the normal path *)
        Net.drain srv;
        ignore (Net.run srv ~config:(fast_config ()) ()));
  ]

(* ------------------------------------------------------------------ *)
(* Fault injection at the three net points.                            *)
(* ------------------------------------------------------------------ *)

let armed points f =
  Inject.arm (Inject.plan ~rate:1.0 ~points ());
  Fun.protect ~finally:Inject.disarm f

let inject_cases =
  [
    case "accept-fail: the listener backs off and keeps accepting"
      (fun () ->
        let resp, summary =
          with_server @@ fun _srv port ->
          armed [ Inject.Accept_fail ] (fun () ->
              (* the kernel completes the handshake (backlog); the
                 server's accept keeps faulting until we disarm *)
              let fd, ic = connect port in
              Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
              Thread.delay 0.3;
              Inject.disarm ();
              send fd (ping ~id:1 ());
              got (recv ic))
        in
        Alcotest.(check bool) "served after the faults stop" true
          (contains ~needle:"\"id\":1" resp);
        Alcotest.(check bool) "accept failures counted" true
          (counter_of summary.Pool.metrics "net/accept_fails" >= 1));
    case "conn-drop: the connection dies abruptly, neighbors survive"
      (fun () ->
        let (eof, neighbor), summary =
          with_server @@ fun _srv port ->
          let eof =
            armed [ Inject.Conn_drop ] (fun () ->
                let fd, ic = connect port in
                Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
                send fd (ping ~id:1 ());
                recv ic)
          in
          let fd, ic = connect port in
          Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
          send fd (ping ~id:2 ());
          (eof, got (recv ic))
        in
        Alcotest.(check bool) "dropped without a response" true (eof = None);
        Alcotest.(check bool) "drop counted" true
          (counter_of summary.Pool.metrics "net/dropped" >= 1);
        Alcotest.(check bool) "neighbor served after disarm" true
          (contains ~needle:"\"id\":2" neighbor));
    case "slow-read: the stalled connection goes through the reap path"
      (fun () ->
        let eof, summary =
          with_server @@ fun _srv port ->
          armed [ Inject.Slow_read ] (fun () ->
              let fd, ic = connect port in
              Fun.protect ~finally:(fun () -> close_client fd) @@ fun () ->
              send fd (ping ());
              recv ic)
        in
        Alcotest.(check bool) "stall reaped to EOF" true (eof = None);
        Alcotest.(check bool) "reap counted" true
          (counter_of summary.Pool.metrics "net/reaped" >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* bounded_next edge cases (the shared line-cap semantics).            *)
(* ------------------------------------------------------------------ *)

let chan_of_string s f =
  let path = Filename.temp_file "mhc_net" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () -> f ic

let bounded_next_cases =
  [
    case "bounded_next strips CRLF off in-cap lines" (fun () ->
        chan_of_string "{\"op\":\"ping\"}\r\n{\"op\":\"ping\"}\n" @@ fun ic ->
        let next = Serve.bounded_next ~max_bytes:64 ic in
        Alcotest.(check (option string)) "CR stripped"
          (Some "{\"op\":\"ping\"}") (next ());
        Alcotest.(check (option string)) "LF-only unchanged"
          (Some "{\"op\":\"ping\"}") (next ());
        Alcotest.(check (option string)) "then EOF" None (next ()));
    case "bounded_next keeps the final unterminated line" (fun () ->
        chan_of_string "{\"op\":\"ping\"}" @@ fun ic ->
        let next = Serve.bounded_next ~max_bytes:64 ic in
        Alcotest.(check (option string)) "EOF flushes the tail"
          (Some "{\"op\":\"ping\"}") (next ());
        Alcotest.(check (option string)) "then EOF" None (next ()));
    case "CR stripping never demotes an oversized line back under the cap"
      (fun () ->
        (* 9 bytes kept of an over-cap line whose last kept byte is CR:
           stripping it would shrink the line to exactly max_bytes and
           misclassify it as plain invalid JSON instead of oversized *)
        let cap = 8 in
        chan_of_string (String.make cap 'x' ^ "\r___more\n") @@ fun ic ->
        let next = Serve.bounded_next ~max_bytes:cap ic in
        match next () with
        | Some line ->
            Alcotest.(check bool) "still over the cap" true
              (String.length line > cap)
        | None -> Alcotest.fail "expected the truncated line");
  ]

(* ------------------------------------------------------------------ *)
(* Satellites: monotonic clock, striped cache, socket load generator.  *)
(* ------------------------------------------------------------------ *)

let satellite_cases =
  [
    case "the monotonic clock never goes backwards" (fun () ->
        let prev = ref (Mono.now_ns ()) in
        for _ = 1 to 10_000 do
          let t = Mono.now_ns () in
          if t < !prev then Alcotest.fail "monotonic clock went backwards";
          prev := t
        done;
        let s0 = Mono.now_s () in
        Thread.delay 0.01;
        let s1 = Mono.now_s () in
        Alcotest.(check bool) "now_s advances with real time" true
          (s1 -. s0 >= 0.005));
    case "the striped cache stays consistent under concurrent domains"
      (fun () ->
        let c = Cache.create () in
        let domains = 4 and per = 8 in
        let src d i =
          Printf.sprintf "main = %d + %d\n" (100 * (d + 1)) i
        in
        let opts = Pipeline.default_options in
        let workers =
          List.init domains (fun d ->
              Domain.spawn (fun () ->
                  for i = 0 to per - 1 do
                    ignore
                      (Cache.compile_run c ~opts ~passes:[] ~src:(src d i))
                  done))
        in
        List.iter Domain.join workers;
        let total = domains * per in
        Alcotest.(check int) "every distinct program cached" total
          (Cache.entries c);
        Alcotest.(check int) "all first compiles were misses" total
          (counter_of (Cache.metrics c) "scale/cache/misses");
        (* a second full sweep hits every stripe *)
        for d = 0 to domains - 1 do
          for i = 0 to per - 1 do
            ignore (Cache.compile_run c ~opts ~passes:[] ~src:(src d i))
          done
        done;
        Alcotest.(check int) "second sweep all hits" total
          (counter_of (Cache.metrics c) "scale/cache/hits"));
    case "the socket load generator reports over a live server" (fun () ->
        let report, _ =
          with_server @@ fun _srv port ->
          Loadgen.run_socket ~clients:2 ~requests:6 ~host:"127.0.0.1" ~port ()
        in
        Alcotest.(check string) "socket mode" "socket"
          report.Loadgen.mode;
        Alcotest.(check int) "cold phase all ok" 6
          report.Loadgen.cold.Loadgen.ph_ok;
        Alcotest.(check int) "hot phase all ok" 6
          report.Loadgen.hot.Loadgen.ph_ok;
        Alcotest.(check bool) "invariant verified from the in-band snapshot"
          true report.Loadgen.invariant_ok;
        Alcotest.(check bool) "cache hits observed in the hot phase" true
          (report.Loadgen.cache_hits >= 0));
  ]

let tests =
  [
    ("net over tcp", e2e_cases);
    ("net supervision", supervision_cases);
    ("net injection", inject_cases);
    ("net bounded lines", bounded_next_cases);
    ("net satellites", satellite_cases);
  ]
