(** Differential testing with generated well-typed programs.

    A typed expression generator builds random MiniHaskell programs over
    Int / Bool / lists; every implementation strategy the paper discusses
    must agree on them:

    - dictionary passing (lazy and strict),
    - flattened dictionaries (§8.1),
    - every optimizer pipeline (§8.4/§8.8/§6.3/§9),
    - run-time tag dispatch (§3).

    Programs are generated to avoid the known, *documented* divergences
    (no `sum`/`fromInt` under tags, no unbounded structures). *)

open Helpers
module Pipeline = Typeclasses.Pipeline
module Opt = Tc_opt.Opt

let prop name ?(count = 60) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Typed expression generator.                                         *)
(* ------------------------------------------------------------------ *)

type gty = GInt | GBool | GList of gty

let rec render_ty = function
  | GInt -> "Int"
  | GBool -> "Bool"
  | GList t -> "[" ^ render_ty t ^ "]"

open QCheck2.Gen

let small = int_range (-9) 9

(* Every generated expression is parenthesized, so precedence is a
   non-issue; programs stay total (no head/div). *)
let rec gen_expr (t : gty) (depth : int) : string QCheck2.Gen.t =
  if depth <= 0 then gen_leaf t
  else
    let sub = depth - 1 in
    match t with
    | GInt ->
        oneof
          [
            gen_leaf GInt;
            (let* a = gen_expr GInt sub and* b = gen_expr GInt sub
             and* op = oneofl [ "+"; "-"; "*"; "`max`"; "`min`" ] in
             pure (Printf.sprintf "(%s %s %s)" a op b));
            (let* a = gen_expr (GList GInt) sub in
             (* length also discards the element type *)
             pure (Printf.sprintf "(length (%s :: [Int]))" a));
            (let* a = gen_expr (GList GInt) sub in
             pure (Printf.sprintf "(foldr (+) 0 %s)" a));
            gen_if GInt sub;
            (let* a = gen_expr GInt sub in pure (Printf.sprintf "(negate %s)" a));
            (let* a = gen_expr GInt sub and* k = small in
             pure (Printf.sprintf "((\\x -> x + %d) %s)" k a));
          ]
    | GBool ->
        oneof
          [
            gen_leaf GBool;
            (let* et = gen_eq_ty in
             let* a = gen_expr et sub and* b = gen_expr et sub
             and* op = oneofl [ "=="; "/="; "<="; "<"; ">"; ">=" ] in
             (* annotate one operand: comparing two unconstrained [] is
                ambiguous, as in Haskell *)
             pure
               (Printf.sprintf "(%s %s (%s :: %s))" a op b (render_ty et)));
            (let* a = gen_expr GBool sub and* b = gen_expr GBool sub
             and* op = oneofl [ "&&"; "||" ] in
             pure (Printf.sprintf "(%s %s %s)" a op b));
            (let* a = gen_expr GBool sub in pure (Printf.sprintf "(not %s)" a));
            (let* x = gen_expr GInt sub and* xs = gen_expr (GList GInt) sub in
             pure (Printf.sprintf "(member %s %s)" x xs));
            (let* a = gen_expr (GList GBool) sub in
             (* null discards the element type; annotate to avoid ambiguity *)
             pure (Printf.sprintf "(null (%s :: [Bool]))" a));
            gen_if GBool sub;
          ]
    | GList elt ->
        oneof
          [
            gen_leaf t;
            (let* x = gen_expr elt sub and* xs = gen_expr t sub in
             pure (Printf.sprintf "(%s : %s)" x xs));
            (let* a = gen_expr t sub and* b = gen_expr t sub in
             pure (Printf.sprintf "(%s ++ %s)" a b));
            (let* a = gen_expr t sub in pure (Printf.sprintf "(reverse %s)" a));
            (let* n = int_range 0 4 and* a = gen_expr t sub in
             pure (Printf.sprintf "(take %d %s)" n a));
            (let* a = gen_expr t sub in
             pure (Printf.sprintf "(sort %s)" a));
            gen_if t sub;
          ]

and gen_if t sub =
  let* c = gen_expr GBool sub
  and* a = gen_expr t sub
  and* b = gen_expr t sub in
  pure (Printf.sprintf "(if %s then %s else %s)" c a b)

and gen_eq_ty : gty QCheck2.Gen.t =
  oneofl [ GInt; GBool; GList GInt; GList GBool ]

and gen_leaf (t : gty) : string QCheck2.Gen.t =
  match t with
  | GInt ->
      (* parenthesize negatives: a bare -8 as an argument would parse as
         binary subtraction, exactly as in Haskell *)
      map (fun n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n) small
  | GBool -> oneofl [ "True"; "False" ]
  | GList elt ->
      let* n = int_range 0 3 in
      let* elts = list_size (pure n) (gen_leaf elt) in
      pure ("[" ^ String.concat ", " elts ^ "]")

let gen_program : string QCheck2.Gen.t =
  let* t = oneofl [ GInt; GBool; GList GInt; GList GBool; GList (GList GInt) ] in
  let* d = int_range 1 4 in
  let* e = gen_expr t d in
  pure (Printf.sprintf "main = (%s) :: %s" e (render_ty t))

(* ------------------------------------------------------------------ *)

let flat_opts =
  { Pipeline.default_options with strategy = Pipeline.Dicts_flat }

let tags_opts = { Pipeline.default_options with strategy = Pipeline.Tags }

let run_tags src =
  let c = Pipeline.compile ~opts:tags_opts ~file:"diff.mhs" src in
  (Pipeline.exec ~budget:(Pipeline.Budget.fuel 50_000_000) c).rendered

let budget = Pipeline.Budget.fuel 50_000_000

let spec_passes = Opt.[ Simplify; Specialise; Simplify; Dce ]

(* Profile-guided specialization of an already-compiled artifact: profile
   one run, feed the spec profile back, re-optimize (site ids match). *)
let pgo_of (c : Pipeline.compiled) : Pipeline.compiled =
  let r = Pipeline.exec ~profile:true ~budget c in
  let sp = Tc_obs.Profile.spec_of_report (Option.get r.Pipeline.profile) in
  Pipeline.optimize spec_passes
    {
      c with
      Pipeline.options =
        {
          c.Pipeline.options with
          Pipeline.specialise =
            { Pipeline.default_spec with Pipeline.spec_profile = Some sp };
        };
    }

let exec_on backend (c : Pipeline.compiled) : string =
  (Pipeline.exec ~backend ~budget c).Pipeline.rendered

let render_core (p : Tc_core_ir.Core.program) : string =
  Fmt.str "%a" Tc_core_ir.Core_pp.pp_program p

(* the realistic example corpus (primes excluded: lazy-only infinite
   streams make it too slow to profile repeatedly here) *)
let corpus = Test_opt.example_programs

let tests =
  [
    ( "differential",
      [
        prop "all strategies agree on generated programs" ~count:120
          gen_program
          (fun src ->
            let reference = run src in
            reference = run ~mode:`Strict src
            && reference = run ~opts:flat_opts src
            && reference = run ~passes:Opt.all src
            && reference = run ~opts:flat_opts ~passes:Opt.all src
            && reference = run_tags src);
        prop "tree and VM agree with specialization on and off" ~count:60
          gen_program
          (fun src ->
            let c = Pipeline.compile ~file:"diff.mhs" src in
            let cs = pgo_of c in
            let reference = exec_on `Tree c in
            reference = exec_on `Vm c
            && reference = exec_on `Tree cs
            && reference = exec_on `Vm cs);
        prop "clone budget 0 is the identity on generated programs" ~count:60
          gen_program
          (fun src ->
            let c = Pipeline.compile ~file:"diff.mhs" src in
            let p', rep =
              Tc_opt.Specialise.program
                ~policy:
                  {
                    Tc_opt.Specialise.default_policy with
                    Tc_opt.Specialise.max_clones = 0;
                  }
                c.Pipeline.core
            in
            rep.Tc_opt.Specialise.sr_clones = 0
            && render_core c.Pipeline.core = render_core p');
        prop "specialization never increases dictionary operations"
          ~count:60 gen_program
          (fun src ->
            (* full elimination is workload-dependent (dictionaries passed
               through higher-order positions can survive), but the pass
               must never pessimize *)
            let _, before = run_counters src in
            let _, after =
              run_counters ~passes:Opt.[ Simplify; Specialise; Simplify; Dce ] src
            in
            after.selections <= before.selections
            && after.dict_constructions <= before.dict_constructions);
        case "corpus: spec on/off agrees across backends, never pessimizes"
          (fun () ->
            List.iter
              (fun (name, src) ->
                let c = Pipeline.compile ~file:(name ^ ".mhs") src in
                let before =
                  (Pipeline.exec ~budget c).Pipeline.counters
                in
                let cs = pgo_of c in
                let reference = exec_on `Tree c in
                List.iter
                  (fun (label, v) ->
                    Alcotest.(check string)
                      (Printf.sprintf "%s/%s" name label) reference v)
                  [
                    ("vm", exec_on `Vm c);
                    ("tree+spec", exec_on `Tree cs);
                    ("vm+spec", exec_on `Vm cs);
                  ];
                let after = (Pipeline.exec ~budget cs).Pipeline.counters in
                Alcotest.(check bool)
                  (name ^ " dispatch not pessimized") true
                  (after.selections <= before.selections))
              corpus);
      ] );
  ]
