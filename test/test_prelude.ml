(** Prelude behaviour battery: every prelude function does what its Haskell
    namesake does (both evaluation modes where meaningful). *)

open Helpers

let t name src expected =
  case name (fun () ->
      Alcotest.(check string) (name ^ " lazy") expected (run src);
      Alcotest.(check string) (name ^ " strict") expected (run ~mode:`Strict src))

let lazy_only name src expected =
  case name (fun () -> Alcotest.(check string) name expected (run src))

let tests =
  [
    ( "prelude-core",
      [
        t "not / otherwise" "main = (not True, otherwise)" "(False, True)";
        lazy_only "and or shortcut (non-strict)"
          {|main = (False && error "no", True || error "no")|} "(False, True)";
        t "and or truth table"
          "main = (True && True, True && False, False || True, False || False)"
          "(True, False, True, False)";
        t "eq and neq" "main = (2 == 2, 2 /= 2, 'a' /= 'b')"
          "(True, False, True)";
        t "ord family" "main = (3 < 5, 3 > 5, 3 <= 3, 3 >= 4, max 2 9, min 2 9)"
          "(True, False, True, False, 9, 2)";
        t "num family" "main = (2 + 3, 2 - 3, 2 * 3, negate 2, abs (-7), signum (-7))"
          "(5, -1, 6, -2, 7, -1)";
        t "div mod even odd" "main = (div 17 5, mod 17 5, even 4, odd 4)"
          "(3, 2, True, False)";
        t "float family"
          "main = (1.5 * 2.0, 7.0 / 2.0, abs (-1.5), signum 0.0, fromIntegral 3 + 0.5)"
          "(3.0, 3.5, 1.5, 0.0, 3.5)";
        t "char family" "main = (ord 'a', chr 98, 'a' < 'b')" "(97, 'b', True)";
        t "id const flip" "main = (id 7, const 1 2, flip const 1 2)" "(7, 1, 2)";
        t "composition" "main = ((not . not) True, (.) negate negate 5)"
          "(True, 5)";
        t "fst snd curry uncurry"
          "main = (fst (1,2), snd (1,2), curry fst 3 4, uncurry const (5, 6))"
          "(1, 2, 3, 5)";
        t "maybe helpers"
          "main = (maybe 0 negate (Just 3), maybe 0 negate Nothing, isJust (Just 1), fromMaybe 9 Nothing)"
          "(-3, 0, True, 9)";
        t "either helper"
          "main = (either negate id (Left 3), either negate id (Right 4))"
          "(-3, 4)";
      ] );
    ( "prelude-lists",
      [
        t "append" {|main = ([1,2] ++ [3], "ab" ++ "cd", [] ++ [1])|}
          "([1, 2, 3], \"abcd\", [1])";
        t "map filter" "main = (map negate [1,2], filter even [1,2,3,4])"
          "([-1, -2], [2, 4])";
        t "folds"
          "main = (foldr (:) [] [1,2], foldl (flip (:)) [] [1,2,3], foldr (+) 0 [1,2,3])"
          "([1, 2], [3, 2, 1], 6)";
        t "length null reverse"
          {|main = (length "abc", null [], null [1], reverse [1,2,3])|}
          "(3, True, False, [3, 2, 1])";
        t "member elem notElem"
          "main = (member 2 [1,2], elem 5 [1,2], notElem 5 [1,2])"
          "(True, False, True)";
        t "sum product" "main = (sum [1,2,3], product [1,2,3,4], sum [0.5, 0.25])"
          "(6, 24, 0.75)";
        t "take drop" "main = (take 2 [1,2,3], drop 2 [1,2,3], take 9 [1], drop 9 [1])"
          "([1, 2], [3], [1], [])";
        t "replicate enumFromTo" "main = (replicate 3 'x', enumFromTo 2 5)"
          "(\"xxx\", [2, 3, 4, 5])";
        t "zip zipWith unzip"
          "main = (zip [1,2] \"ab\", zipWith (+) [1,2] [10,20], unzip [(1,'a'),(2,'b')])"
          "([(1, 'a'), (2, 'b')], [11, 22], ([1, 2], \"ab\"))";
        t "concat concatMap"
          "main = (concat [[1],[2,3]], concatMap (\\x -> [x,x]) [1,2])"
          "([1, 2, 3], [1, 1, 2, 2])";
        t "lookup" "main = (lookup 2 [(1,'a'),(2,'b')], lookup 9 [(1,'a')])"
          "((Just 'b'), Nothing)";
        t "all any" "main = (all even [2,4], all even [2,3], any odd [2,4], any odd [2,3])"
          "(True, False, False, True)";
        t "head tail last init"
          "main = (head [1,2,3], tail [1,2,3], last [1,2,3], init [1,2,3])"
          "(1, [2, 3], 3, [1, 2])";
        t "takeWhile dropWhile"
          "main = (takeWhile even [2,4,5,6], dropWhile even [2,4,5,6])"
          "([2, 4], [5, 6])";
        t "maximum minimum"
          {|main = (maximum [3,1,2], minimum "banana", maximum [1.5, 2.5])|}
          "(3, 'a', 2.5)";
        t "break words lines"
          {|main = (break even [1,3,4,5], words "ab cd  ef", lines "one\ntwo")|}
          "(([1, 3], [4, 5]), [\"ab\", \"cd\", \"ef\"], [\"one\", \"two\"])";
        lazy_only "iterate repeat are productive"
          "main = (take 3 (iterate not True), take 2 (repeat 0))"
          "([True, False, True], [0, 0])";
      ] );
    ( "prelude-extras",
      [
        t "Ordering and compare"
          "main = (compare 1 2, compare 2 2, compare 3 2, LT < EQ, str GT)"
          "(LT, EQ, GT, True, \"GT\")";
        t "compare works on structures"
          "main = (compare [1,2] [1,3], compare \"b\" \"a\", compare (1,'a') (1,'a'))"
          "(LT, GT, EQ)";
        t "sort and sortBy"
          {|main = (sort [3,1,2], sort "cba", sortBy (\a b -> b <= a) [1,3,2])|}
          "([1, 2, 3], \"abc\", [3, 2, 1])";
        t "span splitAt"
          "main = (span even [2,4,5,6], splitAt 2 [1,2,3])"
          "(([2, 4], [5, 6]), ([1, 2], [3]))";
        t "and or" "main = (and [True, True], and [True, False], or [False, True])"
          "(True, False, True)";
        t "zip3" "main = zip3 [1,2] \"ab\" [True, False]"
          "[(1, 'a', True), (2, 'b', False)]";
        t "nub delete" "main = (nub [1,2,1,3,2], delete 2 [1,2,3,2])"
          "([1, 2, 3], [1, 3, 2])";
        t "foldr1 foldl1" "main = (foldr1 (+) [1,2,3], foldl1 (flip const) [1,2,3])"
          "(6, 3)";
        t "intersperse" {|main = (intersperse ',' "abc", intersperse 0 [1,2])|}
          "(\"a,b,c\", [1, 0, 2])";
        t "until" "main = until (\\x -> x > 100) (\\x -> x * 2) 1" "128";
        t "gcd lcm" "main = (gcd 12 18, gcd (-4) 6, lcm 4 6, lcm 0 5)"
          "(6, 2, 12, 0)";
        t "unwords unlines" {|main = (unwords ["a","b"], unlines ["x","y"])|}
          "(\"a b\", \"x\\ny\\n\")";
      ] );
    ( "prelude-text-parse",
      [
        t "str on primitives" "main = (str 42, str (-3), str 2.5, str 'x', str True)"
          "(\"42\", \"-3\", \"2.5\", \"x\", \"True\")";
        t "str on structures"
          "main = (str [1,2], str (1, True), str (Just [1]), str (1,2,3))"
          "(\"[1, 2]\", \"(1, True)\", \"(Just [1])\", \"(1, 2, 3)\")";
        t "show is str" "main = show [True]" "\"[True]\"";
        t "parse int float bool"
          {|main = (parse "42" + 0, parse "-7" + 0, parse "2.5" + 0.0, parse "True" && True)|}
          "(42, -7, 2.5, True)";
        t "parse-str round trip" {|main = parse (str (123 :: Int)) + (0 :: Int)|}
          "123";
        case "parse failure raises a user error" (fun () ->
            match run {|main = (parse "zork" :: Int)|} with
            | exception Tc_eval.Eval.User_error _ -> ()
            | r -> Alcotest.failf "expected parse failure, got %s" r);
        lazy_only "unused error is not raised (non-strict)"
          {|main = const 1 (error "unused")|} "1";
      ] );
  ]
