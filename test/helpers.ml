(** Shared test helpers. *)

open Typeclasses

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let compile ?opts src = Pipeline.compile ?opts ~file:"test.mhs" src

(** Compile and run, returning the rendered result. *)
let run ?opts ?(mode = `Lazy) ?(passes = []) src : string =
  let c = compile ?opts src in
  let c = Pipeline.optimize passes c in
  (Pipeline.exec ~mode ~budget:(Pipeline.Budget.fuel 50_000_000) c).rendered

(** Compile and run, returning rendered result and counters. *)
let run_counters ?opts ?(mode = `Lazy) ?(passes = []) src :
    string * Tc_eval.Counters.t =
  let c = compile ?opts src in
  let c = Pipeline.optimize passes c in
  let r = Pipeline.exec ~mode ~budget:(Pipeline.Budget.fuel 50_000_000) c in
  (r.rendered, r.counters)

(** The inferred type of a user binding, rendered. *)
let type_of ?opts src name : string =
  let c = compile ?opts src in
  match
    List.find_opt (fun (n, _) -> Tc_support.Ident.text n = name) c.user_schemes
  with
  | Some (_, s) -> Tc_types.Scheme.to_string s
  | None -> Alcotest.failf "no binding '%s' in test program" name

(** Expect compilation to fail with a diagnostic containing [substring]. *)
let expect_error ?opts src (substring : string) : unit =
  match compile ?opts src with
  | exception Tc_support.Diagnostic.Error d ->
      let msg = Tc_support.Diagnostic.to_string d in
      if not (contains ~needle:substring msg) then
        Alcotest.failf "error message %S does not mention %S" msg substring
  | _ -> Alcotest.failf "expected a compile-time error mentioning %S" substring

(* alcotest case builders *)

let case name f = Alcotest.test_case name `Quick f

let check_run name ?opts ?mode ?passes src expected =
  case name (fun () ->
      Alcotest.(check string) name expected (run ?opts ?mode ?passes src))

let check_type name src binding expected =
  case name (fun () ->
      Alcotest.(check string) name expected (type_of src binding))

let check_error name ?opts src substring =
  case name (fun () -> expect_error ?opts src substring)
