(** Observability tests: the structured compile-time trace ({!Tc_obs.Trace}),
    the per-site dispatch profile ({!Tc_obs.Profile}), the JSON renderings,
    and the [mhc trace]/[mhc profile] subcommands.

    The load-bearing invariant: per-site dispatch totals sum {e exactly} to
    the aggregate counters, with the tree evaluator and the VM agreeing on
    every site. *)

open Typeclasses
module Trace = Tc_obs.Trace
module Profile = Tc_obs.Profile
module Json = Tc_obs.Json

let case = Helpers.case

(** Compile with a collector sink attached; returns the compile and the
    events recorded so far. *)
let compile_traced ?(opts = Pipeline.default_options) src =
  let trace, events = Trace.collector () in
  let c = Pipeline.compile ~opts:{ opts with trace } ~file:"obs.mhs" src in
  (c, events)

let demo = "double :: Num a => a -> a\ndouble x = x + x\nmain = double 21\n"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    case "strings are escaped" (fun () ->
        Alcotest.(check string) "escapes"
          {|"a\"b\\c\nd\u0001"|}
          (Json.to_string (Json.Str "a\"b\\c\nd\001")));
    case "objects keep field order" (fun () ->
        Alcotest.(check string) "order"
          {|{"b": 1, "a": [true, null, 2.5]}|}
          (Json.to_string
             (Json.Obj
                [ ("b", Json.Int 1);
                  ("a", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
                ])));
  ]

(* ------------------------------------------------------------------ *)
(* The compile-time trace                                              *)
(* ------------------------------------------------------------------ *)

let count_kind name evs =
  List.length
    (List.filter
       (fun e ->
         match (Trace.event_json e : Json.t) with
         | Json.Obj (("event", Json.Str n) :: _) -> n = name
         | _ -> false)
       evs)

let trace_tests =
  [
    case "trace sink and metrics registry coexist on one compile" (fun () ->
        let m = Tc_obs.Metrics.create () in
        let _, events =
          compile_traced
            ~opts:{ Pipeline.default_options with Pipeline.metrics = m }
            demo
        in
        Alcotest.(check bool) "trace events recorded" true (events () <> []);
        let spans =
          List.map
            (fun s -> s.Tc_obs.Metrics.sp_name)
            (Tc_obs.Metrics.spans m)
        in
        Alcotest.(check bool) "phase spans recorded" true
          (List.mem "compile/infer" spans));
    case "tracing is off by default" (fun () ->
        Alcotest.(check bool) "no sink" false
          (Trace.is_on Pipeline.default_options.trace));
    case "compiling emits inference events" (fun () ->
        let _, events = compile_traced demo in
        let evs = events () in
        Alcotest.(check bool) "placeholders created" true
          (count_kind "placeholder-created" evs > 0);
        Alcotest.(check bool) "placeholders resolved" true
          (count_kind "placeholder-resolved" evs > 0);
        Alcotest.(check bool) "context reductions" true
          (count_kind "context-reduction" evs > 0);
        Alcotest.(check bool) "instance lookups" true
          (count_kind "instance-lookup" evs > 0));
    case "every placeholder created is resolved" (fun () ->
        let _, events = compile_traced demo in
        let created = Hashtbl.create 16 and resolved = Hashtbl.create 16 in
        List.iter
          (fun e ->
            match e with
            | Trace.Placeholder_created { id; _ } ->
                Hashtbl.replace created id ()
            | Trace.Placeholder_resolved { id; _ } ->
                Hashtbl.replace resolved id ()
            | _ -> ())
          (events ());
        Alcotest.(check bool) "some placeholders" true
          (Hashtbl.length created > 0);
        Hashtbl.iter
          (fun id () ->
            if not (Hashtbl.mem resolved id) then
              Alcotest.failf "placeholder %d never resolved" id)
          created);
    case "restricted top-level bindings record a defaulting decision"
      (fun () ->
        let _, events = compile_traced "main = 2 + 3\n" in
        let chosen =
          List.filter_map
            (function
              | Trace.Defaulting { chosen; _ } -> Some chosen
              | _ -> None)
            (events ())
        in
        Alcotest.(check bool) "defaulting happened" true (chosen <> []);
        Alcotest.(check bool) "Int chosen" true
          (List.mem (Some "Int") chosen));
    case "optimizer passes report size and dict-op deltas" (fun () ->
        let c, events = compile_traced demo in
        let before = List.length (events ()) in
        let _ = Pipeline.optimize Tc_opt.Opt.all c in
        let opt_evs =
          List.filteri (fun i _ -> i >= before) (events ())
          |> List.filter_map (function
               | Trace.Opt_pass
                   { pass; size_before; size_after; sels_before; sels_after;
                     dicts_before; dicts_after } ->
                   Some
                     ( pass,
                       (size_before, size_after),
                       (sels_before, sels_after, dicts_before, dicts_after) )
               | _ -> None)
        in
        Alcotest.(check int) "one event per pass"
          (List.length Tc_opt.Opt.all)
          (List.length opt_evs);
        List.iter
          (fun (pass, (size_before, size_after), (sb, sa, db, da)) ->
            Alcotest.(check bool) (pass ^ " sizes positive") true
              (size_before > 0 && size_after > 0);
            Alcotest.(check bool) (pass ^ " static counts sane") true
              (sb >= 0 && sa >= 0 && db >= 0 && da >= 0))
          opt_evs);
    case "trace events render as JSON with stable tags" (fun () ->
        let _, events = compile_traced demo in
        match Json.to_string (Trace.events_json (events ())) with
        | "" -> Alcotest.fail "empty rendering"
        | s ->
            Alcotest.(check bool) "mentions placeholder-created" true
              (Helpers.contains ~needle:{|"event": "placeholder-created"|} s));
  ]

(* ------------------------------------------------------------------ *)
(* The dispatch profile                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let example_programs =
  [ "calculator"; "matrix"; "nqueens"; "primes"; "set"; "stats" ]

let example_source name =
  read_file (Filename.concat "../examples/programs" (name ^ ".mhs"))

(** (site id -> count) pairs of a report, sorted by id. *)
let site_counts (entries : Profile.entry list) : (int * int) list =
  entries
  |> List.map (fun (e : Profile.entry) -> (e.e_site.Profile.s_id, e.e_count))
  |> List.sort compare

let totals (entries : Profile.entry list) : int =
  List.fold_left (fun acc (e : Profile.entry) -> acc + e.e_count) 0 entries

(** The acceptance invariant, on one backend. *)
let check_profile_invariant what (r : Pipeline.result) =
  let report = Option.get r.Pipeline.profile in
  Alcotest.(check int)
    (what ^ ": selection sites sum to the selections counter")
    r.Pipeline.counters.Tc_eval.Counters.selections
    (totals report.Profile.r_sels);
  Alcotest.(check int)
    (what ^ ": construction sites sum to the dict-constructions counter")
    r.Pipeline.counters.Tc_eval.Counters.dict_constructions
    (totals report.Profile.r_dicts);
  Alcotest.(check int) (what ^ ": report total (sels)")
    r.Pipeline.counters.Tc_eval.Counters.selections
    report.Profile.r_sel_total;
  Alcotest.(check int) (what ^ ": report total (dicts)")
    r.Pipeline.counters.Tc_eval.Counters.dict_constructions
    report.Profile.r_dict_total;
  report

let differential_case ?opts ?(passes = []) name src =
  case name (fun () ->
      let c = Pipeline.compile ?opts ~file:(name ^ ".mhs") src in
      let c = Pipeline.optimize passes c in
      let t =
        Pipeline.exec ~backend:`Tree ~budget:(Pipeline.Budget.fuel 50_000_000) ~profile:true c
      in
      let v =
        Pipeline.exec ~backend:`Vm ~budget:(Pipeline.Budget.fuel 500_000_000) ~profile:true c
      in
      let tr = check_profile_invariant (name ^ " tree") t in
      let vr = check_profile_invariant (name ^ " vm") v in
      Alcotest.(check (list (pair int int)))
        (name ^ ": per-site selections agree between backends")
        (site_counts tr.Profile.r_sels)
        (site_counts vr.Profile.r_sels);
      Alcotest.(check (list (pair int int)))
        (name ^ ": per-site constructions agree between backends")
        (site_counts tr.Profile.r_dicts)
        (site_counts vr.Profile.r_dicts))

let profile_tests =
  [
    case "profiling is opt-in" (fun () ->
        let c = Pipeline.compile ~file:"obs.mhs" demo in
        let r = Pipeline.exec c in
        Alcotest.(check bool) "no report" true (r.Pipeline.profile = None));
    case "hot sites rank first and carry class/method labels" (fun () ->
        let src =
          {|
eqAll :: Eq a => [a] -> Bool
eqAll [] = True
eqAll [_] = True
eqAll (x:y:r) = x == y && eqAll (y:r)
main = eqAll (replicate 40 (3 :: Int))
|}
        in
        let c = Pipeline.compile ~file:"obs.mhs" src in
        let r = Pipeline.exec ~profile:true c in
        let report = check_profile_invariant "rank" r in
        match report.Profile.r_sels with
        | [] -> Alcotest.fail "expected selection sites"
        | top :: rest ->
            List.iter
              (fun (e : Profile.entry) ->
                Alcotest.(check bool) "sorted descending" true
                  (e.e_count <= top.Profile.e_count))
              rest;
            Alcotest.(check string) "hottest site is Eq.=="
              "Eq" (Tc_support.Ident.text top.e_site.Profile.s_class));
    case "report JSON totals match" (fun () ->
        let c = Pipeline.compile ~file:"obs.mhs" demo in
        let r = Pipeline.exec ~profile:true c in
        let report = Option.get r.Pipeline.profile in
        match Profile.report_json report with
        | Json.Obj (("totals", Json.Obj totals) :: _) ->
            Alcotest.(check bool) "selections field" true
              (List.assoc "selections" totals
              = Json.Int r.Pipeline.counters.Tc_eval.Counters.selections)
        | _ -> Alcotest.fail "unexpected report shape");
  ]
  @ List.map
      (fun name -> differential_case name (example_source name))
      example_programs
  @ [
      differential_case ~passes:Tc_opt.Opt.all "primes -O all"
        (example_source "primes");
      differential_case
        ~opts:{ Pipeline.default_options with strategy = Pipeline.Dicts_flat }
        "primes flat layout" (example_source "primes");
    ]

(* ------------------------------------------------------------------ *)
(* CLI golden output                                                   *)
(* ------------------------------------------------------------------ *)

(** Run a program from a fixed file name (in the test working directory) so
    locations — and therefore the JSON — are bit-for-bit reproducible. *)
let with_fixed_program name src (f : unit -> unit) =
  let oc = open_out name in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove name) f

let trace_golden_src =
  "data T = A | B\nclass C a where\n  f :: a -> T\ninstance C T where\n\
   \  f x = A\nmain = f B\n"

let trace_golden_expected =
  {|{"file": "golden_obs.mhs",
  "events": [{"event": "placeholder-created",
               "id": 1,
               "kind": "method f",
               "type": "C a => a",
               "loc": "golden_obs.mhs:6:8-8"},
              {"event": "context-reduction",
                "class": "C",
                "type": "T",
                "loc": "golden_obs.mhs:6:8-8"},
              {"event": "instance-lookup",
                "class": "C",
                "tycon": "T",
                "found": true,
                "loc": "golden_obs.mhs:6:8-8"},
              {"event": "placeholder-resolved",
                "id": 1,
                "via": "direct-call",
                "detail": "m$C$T$f",
                "loc": "golden_obs.mhs:6:8-8"}]}
|}

let profile_golden_src =
  "data N = Z | S N\nclass Size a where\n  size :: a -> N\n\
   instance Size N where\n  size x = Z\nmeasure :: Size a => a -> N\n\
   measure x = size x\nmain = measure (S Z)\n"

let profile_golden_expected =
  {|{"file": "golden_prof.mhs",
  "backend": "tree",
  "result": "Z",
  "counters": {"steps": 14,
                "applications": 3,
                "dict_constructions": 1,
                "dict_fields": 1,
                "selections": 1,
                "thunk_forces": 6,
                "allocations": 5,
                "prim_calls": 0,
                "tag_dispatches": 0},
  "profile": {"totals": {"selections": 1, "dict_constructions": 1},
               "static_sites": 2,
               "selection_sites": [{"site": 1,
                                     "kind": "sel",
                                     "class": "Size",
                                     "label": "size",
                                     "loc": "golden_prof.mhs:7:13-16",
                                     "count": 1}],
               "construction_sites": [{"site": 2,
                                        "kind": "mkdict",
                                        "class": "Size",
                                        "label": "N",
                                        "loc": "golden_prof.mhs:4:1-6:7",
                                        "count": 1}]}}
|}

let cli_tests =
  [
    case "mhc trace --json golden" (fun () ->
        with_fixed_program "golden_obs.mhs" trace_golden_src (fun () ->
            let code, out =
              Test_cli.run_mhc
                [ "trace"; "--json"; "--no-prelude"; "golden_obs.mhs" ]
            in
            Alcotest.(check int) "exit" 0 code;
            Alcotest.(check string) "golden" trace_golden_expected out));
    case "mhc profile --json golden" (fun () ->
        with_fixed_program "golden_prof.mhs" profile_golden_src (fun () ->
            let code, out =
              Test_cli.run_mhc
                [ "profile"; "--json"; "--no-prelude"; "golden_prof.mhs" ]
            in
            Alcotest.(check int) "exit" 0 code;
            Alcotest.(check string) "golden" profile_golden_expected out));
    case "mhc profile agrees across backends (text)" (fun () ->
        with_fixed_program "golden_prof.mhs" profile_golden_src (fun () ->
            let _, tree =
              Test_cli.run_mhc [ "profile"; "--no-prelude"; "golden_prof.mhs" ]
            in
            let _, vm =
              Test_cli.run_mhc
                [ "profile"; "--backend"; "vm"; "--no-prelude";
                  "golden_prof.mhs" ]
            in
            Alcotest.(check bool) "tree lists the hot site" true
              (Helpers.contains ~needle:"Size.size" tree);
            (* the two texts differ only in steps/forces (backend-specific
               aggregate counters), never in the per-site profile *)
            let profile_part s =
              let marker = "dispatch profile:" in
              let rec find i =
                if i + String.length marker > String.length s then s
                else if String.sub s i (String.length marker) = marker then
                  String.sub s i (String.length s - i)
                else find (i + 1)
              in
              find 0
            in
            Alcotest.(check string) "same per-site profile"
              (profile_part tree) (profile_part vm)));
    case "mhc trace human output mentions resolution" (fun () ->
        with_fixed_program "golden_obs.mhs" trace_golden_src (fun () ->
            let code, out =
              Test_cli.run_mhc [ "trace"; "--no-prelude"; "golden_obs.mhs" ]
            in
            Alcotest.(check int) "exit" 0 code;
            Alcotest.(check bool) "resolved line" true
              (Helpers.contains ~needle:"placeholder 1 resolved: direct-call"
                 out)));
    case "mhc trace -O reports optimizer passes" (fun () ->
        with_fixed_program "golden_obs.mhs" trace_golden_src (fun () ->
            let code, out =
              Test_cli.run_mhc
                [ "trace"; "-O"; "all"; "--no-prelude"; "golden_obs.mhs" ]
            in
            Alcotest.(check int) "exit" 0 code;
            Alcotest.(check bool) "opt-pass line" true
              (Helpers.contains ~needle:"opt-pass" out)));
  ]

let tests =
  [
    ("obs-json", json_tests);
    ("obs-trace", trace_tests);
    ("obs-profile", profile_tests);
    ("obs-cli", cli_tests);
  ]
