(** Runtime resilience: unified budgets, the fault injector, and the
    [mhc serve] request loop.

    - Both back ends exhaust every budget dimension with the same
      classified [Budget.Exhausted] (never diverge, never a bare
      exception) on the same looping/hungry programs.
    - The deterministic injector fires reproducibly from its seed, and
      every injection point is contained: front-end faults become one
      Bug diagnostic in [compile_collect]; run-time faults become one
      classified error response in [serve] — the process always lives.
    - A serve soak: thousands of mixed requests (clean, broken,
      divergent, malformed, chaos-injected) produce exactly one response
      per request. *)

open Helpers
module Pipeline = Typeclasses.Pipeline
module Serve = Typeclasses.Serve
module Budget = Tc_resilience.Budget
module Inject = Tc_resilience.Inject
module Json = Tc_obs.Json
module Diagnostic = Tc_support.Diagnostic

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Programs.                                                           *)
(* ------------------------------------------------------------------ *)

let clean_src = "double :: Num a => a -> a\ndouble x = x + x\nmain = double 21"
let broken_src = {|main = "five" + 5|}

let diverge_src =
  "loop :: Int -> Int\nloop n = loop (n + 1)\nmain = loop 0"

let deep_src =
  "count :: Int -> Int\ncount n = if n == 0 then 0 else 1 + count (n - 1)\n\
   main = count 1000000"

let hungry_src = "main = length (replicate 1000000 1)"
let wide_src = "main = replicate 2000 1"

(* ------------------------------------------------------------------ *)
(* Budget exhaustion parity: same classification on both back ends.    *)
(* ------------------------------------------------------------------ *)

let exhaust_on backend src budget : Budget.resource =
  let c = compile src in
  match Pipeline.exec ~backend ~budget c with
  | r ->
      Alcotest.failf "expected exhaustion, got result %s" r.Pipeline.rendered
  | exception Budget.Exhausted { resource; _ } -> resource

let check_parity name src budget expected =
  case name (fun () ->
      List.iter
        (fun backend ->
          let r = exhaust_on backend src budget in
          Alcotest.(check string)
            (name ^ " resource")
            (Budget.resource_name expected)
            (Budget.resource_name r))
        [ `Tree; `Vm ])

let budget_cases =
  [
    check_parity "steps: both backends exhaust on a divergent loop"
      diverge_src (Budget.fuel 200_000) Budget.Steps;
    check_parity "frames: both backends exhaust on deep recursion" deep_src
      { Budget.unlimited with frames = 200 }
      Budget.Frames;
    check_parity "wall-clock: both backends stop a divergent loop"
      diverge_src (Budget.deadline 150.) Budget.Wall_clock;
    check_parity "allocations: both backends cap a hungry program"
      hungry_src
      { Budget.unlimited with allocations = 5_000 }
      Budget.Allocations;
    check_parity "output: both backends cap the rendered result" wide_src
      { Budget.unlimited with output_bytes = 100 }
      Budget.Output;
    case "unlimited budget still completes" (fun () ->
        let c = compile clean_src in
        List.iter
          (fun backend ->
            let r = Pipeline.exec ~backend c in
            Alcotest.(check string) "result" "42" r.Pipeline.rendered)
          [ `Tree; `Vm ]);
    case "exhaustion message is classified and bounded" (fun () ->
        Alcotest.(check string)
          "message" "resource exhausted: steps (spent 10, limit 10)"
          (Budget.message Budget.Steps ~spent:10 ~limit:10);
        match exhaust_on `Tree diverge_src (Budget.fuel 1_000) with
        | r -> Alcotest.(check string) "steps" "steps" (Budget.resource_name r));
  ]

(* ------------------------------------------------------------------ *)
(* The injector: deterministic, seeded, contained.                     *)
(* ------------------------------------------------------------------ *)

let with_plan plan f =
  Inject.arm plan;
  Fun.protect ~finally:Inject.disarm f

let front_points =
  [ Inject.Lex; Inject.Parse; Inject.Static; Inject.Infer; Inject.Translate ]

let injector_cases =
  [
    case "same seed fires the same visits" (fun () ->
        let fire_pattern seed =
          with_plan (Inject.plan ~seed ~rate:0.5 ~points:[ Inject.Eval_step ] ())
            (fun () ->
              let c = compile clean_src in
              (try ignore (Pipeline.exec c) with Inject.Fault _ -> ());
              Inject.fired ())
        in
        Alcotest.(check int) "reproducible" (fire_pattern 42) (fire_pattern 42);
        Alcotest.(check bool) "disarmed afterwards" false (Inject.armed ()));
    case "rate 0 never fires, rate 1 always fires" (fun () ->
        with_plan (Inject.plan ~rate:0. ()) (fun () ->
            Inject.hit Inject.Lex;
            Alcotest.(check int) "rate 0" 0 (Inject.fired ()));
        with_plan (Inject.plan ~rate:1. ~points:[ Inject.Lex ] ()) (fun () ->
            (try
               Inject.hit Inject.Lex;
               Alcotest.fail "expected a fault"
             with Inject.Fault _ -> ());
            Alcotest.(check int) "rate 1" 1 (Inject.fired ())));
    case "max_faults stops the storm" (fun () ->
        with_plan (Inject.plan ~rate:1. ~max_faults:2 ()) (fun () ->
            let faults = ref 0 in
            for _ = 1 to 5 do
              try Inject.hit Inject.Lex with Inject.Fault _ -> incr faults
            done;
            Alcotest.(check int) "capped" 2 !faults));
    case "spec parsing" (fun () ->
        (match Inject.parse_spec "vm-step:0.5:42" with
        | Ok p ->
            Alcotest.(check bool) "points" true (p.points = [ Inject.Vm_step ]);
            Alcotest.(check int) "seed" 42 p.seed
        | Error m -> Alcotest.failf "parse failed: %s" m);
        match Inject.parse_spec "no-such-point" with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error _ -> ());
    case "every point name round-trips" (fun () ->
        List.iter
          (fun p ->
            match Inject.point_of_name (Inject.point_name p) with
            | Some p' ->
                Alcotest.(check string)
                  "name" (Inject.point_name p) (Inject.point_name p')
            | None -> Alcotest.failf "point %s" (Inject.point_name p))
          Inject.all_points);
  ]

(* Front-end chaos: every compile-stage fault is contained by
   [compile_collect] as exactly one Bug diagnostic; it never raises. *)
let front_chaos_cases =
  List.map
    (fun point ->
      case
        ("chaos: compile_collect contains a fault at "
        ^ Inject.point_name point)
        (fun () ->
          with_plan (Inject.plan ~rate:1. ~points:[ point ] ~max_faults:1 ())
            (fun () ->
              match Pipeline.compile_collect ~file:"<chaos>" clean_src with
              | { Pipeline.diagnostics; artifact = _ } ->
                  let bugs =
                    List.filter
                      (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Bug)
                      diagnostics
                  in
                  Alcotest.(check int) "one Bug diagnostic" 1 (List.length bugs)
              | exception e ->
                  Alcotest.failf "compile_collect raised %s"
                    (Printexc.to_string e))))
    front_points

(* ------------------------------------------------------------------ *)
(* Serve: decoding, isolation, classification.                         *)
(* ------------------------------------------------------------------ *)

(* A serve config that never really sleeps: backoff must not slow tests. *)
let test_config =
  { Serve.default_config with Serve.sleep = (fun _ -> ()) }

let server () = Serve.create ~config:test_config ()

let decode line =
  match Json.parse line with
  | Ok v -> v
  | Error m -> Alcotest.failf "response is not JSON (%s): %s" m line

let field name resp =
  match Json.member name resp with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_line resp)

let is_ok resp = field "ok" resp = Json.Bool true

let error_class resp =
  match Json.member "class" (field "error" resp) with
  | Some (Json.Str c) -> c
  | _ -> Alcotest.failf "no error class: %s" (Json.to_line resp)

let req fields = Json.to_line (Json.Obj fields)

let run_req ?(extra = []) src =
  req ([ ("op", Json.Str "run"); ("src", Json.Str src) ] @ extra)

let serve_cases =
  [
    case "ping echoes the id" (fun () ->
        let t = server () in
        let resp =
          decode (Serve.handle_line t {|{"op":"ping","id":"abc"}|})
        in
        Alcotest.(check bool) "ok" true (is_ok resp);
        Alcotest.(check bool) "id" true (field "id" resp = Json.Str "abc"));
    case "run returns the rendered value and counters" (fun () ->
        let t = server () in
        let resp = decode (Serve.handle_line t (run_req clean_src)) in
        Alcotest.(check bool) "ok" true (is_ok resp);
        Alcotest.(check bool) "value" true (field "value" resp = Json.Str "42");
        ignore (field "counters" resp));
    case "run on both backends and all strategies" (fun () ->
        let t = server () in
        List.iter
          (fun extra ->
            let resp =
              decode (Serve.handle_line t (run_req ~extra clean_src))
            in
            Alcotest.(check bool)
              ("ok " ^ req extra)
              true (is_ok resp);
            Alcotest.(check bool)
              ("value " ^ req extra)
              true
              (field "value" resp = Json.Str "42"))
          [
            [ ("backend", Json.Str "vm") ];
            [ ("backend", Json.Str "vm"); ("mode", Json.Str "strict") ];
            [ ("strategy", Json.Str "tags") ];
            [ ("strategy", Json.Str "dict-flat"); ("opt", Json.Str "all") ];
          ]);
    case "check reports diagnostics without failing the request" (fun () ->
        let t = server () in
        let resp =
          decode
            (Serve.handle_line t
               (req [ ("op", Json.Str "check"); ("src", Json.Str broken_src) ]))
        in
        Alcotest.(check bool) "ok" true (is_ok resp);
        Alcotest.(check bool) "errors > 0" true
          (match field "errors" resp with Json.Int n -> n > 0 | _ -> false);
        Alcotest.(check bool) "no artifact" true
          (field "artifact" resp = Json.Bool false));
    case "compile returns user schemes" (fun () ->
        let t = server () in
        let resp =
          decode
            (Serve.handle_line t
               (req [ ("op", Json.Str "compile"); ("src", Json.Str clean_src) ]))
        in
        Alcotest.(check bool) "ok" true (is_ok resp);
        match Json.member "double" (field "schemes" resp) with
        | Some (Json.Str s) ->
            Alcotest.(check string) "scheme" "Num a => a -> a" s
        | _ -> Alcotest.fail "missing scheme for double");
    case "failure classes" (fun () ->
        let t = server () in
        let cls line = error_class (decode (Serve.handle_line t line)) in
        Alcotest.(check string) "bad json" "bad-request" (cls "{nope");
        Alcotest.(check string) "missing op" "bad-request" (cls "{}");
        Alcotest.(check string) "unknown op" "bad-request"
          (cls {|{"op":"explode"}|});
        Alcotest.(check string) "missing src" "bad-request"
          (cls {|{"op":"run"}|});
        Alcotest.(check string) "compile error" "compile"
          (cls (run_req broken_src));
        Alcotest.(check string) "runtime error" "runtime"
          (cls (run_req {|main = error "boom"|}));
        Alcotest.(check string) "fuel" "resource"
          (cls (run_req ~extra:[ ("fuel", Json.Int 1000) ] diverge_src));
        Alcotest.(check string) "timeout" "resource"
          (cls (run_req ~extra:[ ("timeout_ms", Json.Int 150) ] diverge_src)));
    case "per-request isolation: a failure does not poison the next"
      (fun () ->
        let t = server () in
        ignore (Serve.handle_line t (run_req broken_src));
        ignore
          (Serve.handle_line t
             (run_req ~extra:[ ("fuel", Json.Int 100) ] diverge_src));
        let resp = decode (Serve.handle_line t (run_req clean_src)) in
        Alcotest.(check bool) "clean run still works" true (is_ok resp);
        Alcotest.(check bool) "value" true (field "value" resp = Json.Str "42"));
    case "stats tallies requests by op and failure class" (fun () ->
        let t = server () in
        ignore (Serve.handle_line t (run_req clean_src));
        ignore (Serve.handle_line t (run_req broken_src));
        ignore (Serve.handle_line t "{nope");
        let resp = decode (Serve.handle_line t {|{"op":"stats"}|}) in
        let stats = field "stats" resp in
        Alcotest.(check bool) "requests" true
          (field "requests" stats = Json.Int 4);
        Alcotest.(check bool) "compile tally" true
          (Json.member "compile" (field "by_class" stats) = Some (Json.Int 1));
        Alcotest.(check bool) "bad-request tally" true
          (Json.member "bad-request" (field "by_class" stats)
          = Some (Json.Int 1)));
    case "graceful drain on EOF returns the tally" (fun () ->
        let inputs = ref [ run_req clean_src; {|{"op":"ping"}|} ] in
        let outputs = ref [] in
        let stats =
          Serve.run ~config:test_config
            ~next:(fun () ->
              match !inputs with
              | [] -> None
              | l :: rest ->
                  inputs := rest;
                  Some l)
            ~emit:(fun l -> outputs := l :: !outputs)
            ()
        in
        Alcotest.(check int) "responses" 2 (List.length !outputs);
        Alcotest.(check int) "stats.requests" 2 stats.Serve.requests;
        Alcotest.(check int) "stats.ok" 2 stats.Serve.ok);
    case "stop flag drains between requests" (fun () ->
        let served = ref 0 in
        let stats =
          Serve.run ~config:test_config
            ~stop:(fun () -> !served >= 2)
            ~next:(fun () -> Some {|{"op":"ping"}|})
            ~emit:(fun _ -> incr served)
            ()
        in
        Alcotest.(check int) "stopped after two" 2 stats.Serve.responses);
  ]

(* ------------------------------------------------------------------ *)
(* Serve chaos matrix: every injection point, both backends — one      *)
(* classified response per request, the server never dies.             *)
(* ------------------------------------------------------------------ *)

let serve_chaos_cases =
  let matrix =
    List.concat_map
      (fun point -> [ (point, "tree"); (point, "vm") ])
      Inject.all_points
  in
  List.map
    (fun (point, backend) ->
      case
        (Printf.sprintf "chaos: serve contains %s on %s"
           (Inject.point_name point) backend)
        (fun () ->
          with_plan (Inject.plan ~rate:1. ~points:[ point ] ~max_faults:1 ())
            (fun () ->
              let t =
                Serve.create
                  ~config:{ test_config with Serve.retries = 0 }
                  ()
              in
              let line =
                run_req
                  ~extra:
                    [
                      ("backend", Json.Str backend); ("opt", Json.Str "all");
                    ]
                  clean_src
              in
              let resp = decode (Serve.handle_line t line) in
              (* the fault either fired (classified error response) or
                 that point was never visited on this backend (clean
                 answer) — either way exactly one response, no escape *)
              if Inject.fired () > 0 then begin
                Alcotest.(check bool) "not ok" false (is_ok resp);
                let cls = error_class resp in
                Alcotest.(check bool)
                  ("classified: " ^ cls)
                  true
                  (List.mem cls [ "ice"; "resource"; "transient" ])
              end
              else Alcotest.(check bool) "clean" true (is_ok resp);
              (* and the server survives to answer another request *)
              Inject.disarm ();
              let again = decode (Serve.handle_line t (run_req clean_src)) in
              Alcotest.(check bool) "server alive" true (is_ok again))))
    matrix

let retry_cases =
  [
    case "transient faults retry with backoff and then succeed" (fun () ->
        with_plan
          (Inject.plan ~rate:1. ~points:[ Inject.Serve_transient ]
             ~max_faults:2 ())
          (fun () ->
            let slept = ref [] in
            let config =
              {
                test_config with
                Serve.retries = 3;
                backoff_ms = 10.;
                sleep = (fun s -> slept := s :: !slept);
              }
            in
            let t = Serve.create ~config () in
            let resp = decode (Serve.handle_line t (run_req clean_src)) in
            Alcotest.(check bool) "eventually ok" true (is_ok resp);
            Alcotest.(check int) "retried twice" 2 (Serve.stats t).Serve.retried;
            (* exponential: 10ms then 20ms *)
            Alcotest.(check (list (float 0.0001)))
              "backoff doubles" [ 0.01; 0.02 ]
              (List.rev !slept)));
    case "transient faults beyond the retry cap are classified" (fun () ->
        with_plan
          (Inject.plan ~rate:1. ~points:[ Inject.Serve_transient ] ())
          (fun () ->
            let config = { test_config with Serve.retries = 2 } in
            let t = Serve.create ~config () in
            let resp = decode (Serve.handle_line t (run_req clean_src)) in
            Alcotest.(check bool) "failed" false (is_ok resp);
            Alcotest.(check string) "class" "transient" (error_class resp)));
  ]

(* ------------------------------------------------------------------ *)
(* Soak: thousands of mixed requests, exactly one response each.       *)
(* ------------------------------------------------------------------ *)

let soak_cases =
  [
    case "soak: 2400 mixed requests, one response per request" (fun () ->
        let shapes =
          [|
            (fun _ -> req [ ("op", Json.Str "ping"); ("id", Json.Int 0) ]);
            (fun _ -> run_req clean_src);
            (fun _ -> run_req ~extra:[ ("backend", Json.Str "vm") ] clean_src);
            (fun _ -> run_req broken_src);
            (fun _ ->
              req [ ("op", Json.Str "check"); ("src", Json.Str broken_src) ]);
            (fun _ -> run_req ~extra:[ ("fuel", Json.Int 5_000) ] diverge_src);
            (fun _ ->
              run_req
                ~extra:
                  [ ("backend", Json.Str "vm"); ("fuel", Json.Int 5_000) ]
                diverge_src);
            (fun _ -> "this is not json");
            (fun _ -> {|{"op":"no-such-op"}|});
            (fun _ -> {|{"op":"run"}|});
            (fun _ -> {|{"op":"stats"}|});
            (fun i ->
              run_req
                ~extra:[ ("id", Json.Int i); ("mode", Json.Str "strict") ]
                clean_src);
          |]
        in
        let n = 2400 in
        let sent = ref 0 and received = ref 0 in
        let stats =
          Serve.run ~config:test_config
            ~next:(fun () ->
              if !sent >= n then None
              else begin
                incr sent;
                Some (shapes.(!sent mod Array.length shapes) !sent)
              end)
            ~emit:(fun line ->
              incr received;
              ignore (decode line))
            ()
        in
        Alcotest.(check int) "every request answered" n !received;
        Alcotest.(check int) "stats agree" n stats.Serve.responses;
        Alcotest.(check int) "requests counted" n stats.Serve.requests;
        Alcotest.(check bool) "some succeeded" true (stats.Serve.ok > 0);
        Alcotest.(check bool) "some failed" true (stats.Serve.failed > 0));
    case "soak: sporadic chaos-injected eval faults never kill the loop"
      (fun () ->
        with_plan
          (Inject.plan ~seed:7 ~rate:0.0005 ~points:[ Inject.Eval_step ] ())
          (fun () ->
            let n = 50 in
            let sent = ref 0 and received = ref 0 in
            ignore
              (Serve.run ~config:test_config
                 ~next:(fun () ->
                   if !sent >= n then None
                   else begin
                     incr sent;
                     Some (run_req clean_src)
                   end)
                 ~emit:(fun line ->
                   incr received;
                   ignore (decode line))
                 ());
            Alcotest.(check int) "every request answered" n !received));
  ]

(* ------------------------------------------------------------------ *)
(* Property tests: random budgets, random request mixes.               *)
(* ------------------------------------------------------------------ *)

let prop_cases =
  [
    prop "any budget: exec returns or raises classified Exhausted" ~count:60
      QCheck2.Gen.(
        quad (int_range 0 50_000) (int_range 0 500) (int_range 0 20_000)
          (int_range 0 2_000))
      (fun (steps, frames, allocations, output_bytes) ->
        let budget =
          { Budget.unlimited with steps; frames; allocations; output_bytes }
        in
        let c = compile clean_src in
        List.for_all
          (fun backend ->
            match Pipeline.exec ~backend ~budget c with
            | r -> r.Pipeline.rendered = "42"
            | exception Budget.Exhausted _ -> true)
          [ `Tree; `Vm ]);
    prop "any budget fields: serve answers exactly once" ~count:60
      QCheck2.Gen.(
        triple (int_range 1_000 100_000) (int_range 0 300) bool)
      (fun (fuel, frames, vm) ->
        let t = server () in
        let extra =
          [
            ("fuel", Json.Int fuel);
            ("frames", Json.Int frames);
            (* wall-clock backstop so no combination can stall the suite *)
            ("timeout_ms", Json.Int 2_000);
            ("backend", Json.Str (if vm then "vm" else "tree"));
          ]
        in
        let resp = decode (Serve.handle_line t (run_req ~extra diverge_src)) in
        (* divergent program: must fail, and must fail classified *)
        (not (is_ok resp))
        && List.mem (error_class resp) [ "resource" ]
        && (Serve.stats t).Serve.responses = 1);
  ]

(* ------------------------------------------------------------------ *)
(* JSON parser round-trip.                                             *)
(* ------------------------------------------------------------------ *)

let json_cases =
  [
    case "parse round-trips the printer" (fun () ->
        let samples =
          [
            Json.Null;
            Json.Bool true;
            Json.Int (-42);
            Json.Float 1.5;
            Json.Str "he said \"hi\"\n\ttab";
            Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
            Json.Obj
              [
                ("a", Json.Int 1);
                ("nested", Json.Obj [ ("b", Json.List [] ) ]);
                ("s", Json.Str "x");
              ];
          ]
        in
        List.iter
          (fun v ->
            match Json.parse (Json.to_line v) with
            | Ok v' ->
                Alcotest.(check string)
                  "round-trip" (Json.to_line v) (Json.to_line v')
            | Error m -> Alcotest.failf "parse failed (%s)" m)
          samples);
    case "parse rejects malformed input" (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          [ ""; "{"; "[1,"; {|{"a" 1}|}; "tru"; {|"unterminated|}; "1 2" ]);
    case "parse handles unicode escapes" (fun () ->
        match Json.parse "\"\\u00e9A\"" with
        | Ok (Json.Str s) -> Alcotest.(check string) "decoded" "\xc3\xa9A" s
        | _ -> Alcotest.fail "expected a string");
  ]

let tests =
  [
    ("resilience-budget", budget_cases);
    ("resilience-inject", injector_cases @ front_chaos_cases);
    ("resilience-serve", serve_cases @ retry_cases);
    ("resilience-chaos", serve_chaos_cases);
    ("resilience-soak", soak_cases @ prop_cases);
    ("resilience-json", json_cases);
  ]
