(** Robustness fuzzing: the compiler must always either succeed or raise a
    clean {!Tc_support.Diagnostic.Error} — never an assertion failure,
    [Match_failure], [Invalid_argument] or other internal exception —
    whatever we throw at it. *)

open Helpers
module Pipeline = Typeclasses.Pipeline

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(** Compiling is "clean" if it returns or raises Diagnostic.Error. *)
let compiles_cleanly src =
  match Pipeline.compile ~file:"fuzz.mhs" src with
  | _ -> true
  | exception Tc_support.Diagnostic.Error _ -> true

(** Running is additionally allowed the evaluator's own exceptions. *)
let runs_cleanly src =
  match run ~mode:`Lazy src with
  | _ -> true
  | exception Tc_support.Diagnostic.Error _ -> true
  | exception Tc_eval.Eval.Runtime_error _ -> true
  | exception Tc_eval.Eval.User_error _ -> true
  | exception Tc_eval.Eval.Pattern_fail _ -> true
  | exception Tc_resilience.Budget.Exhausted _ -> true

(** The accumulating front end must not raise at all — not even
    [Diagnostic.Error]: every failure must come back as a recorded
    diagnostic in the [checked] result. *)
let collect_never_raises src =
  match Pipeline.compile_collect ~file:"fuzz.mhs" src with
  | _ -> true
  | exception e ->
      QCheck2.Test.fail_reportf "compile_collect raised %s on:@.%s"
        (Printexc.to_string e) src

(** Generated programs that run successfully on the tree evaluator must
    replay identically on the bytecode VM; a VM crash or a different
    rendered result is a located failure. *)
let vm_agrees src =
  match Pipeline.compile ~file:"fuzz.mhs" src with
  | exception Tc_support.Diagnostic.Error _ -> true
  | c -> (
      match Pipeline.exec ~backend:`Tree ~budget:(Pipeline.Budget.fuel 2_000_000) c with
      | exception _ -> true (* only successful tree runs are replayed *)
      | t -> (
          match Pipeline.exec ~backend:`Vm ~budget:(Pipeline.Budget.fuel 50_000_000) c with
          | v ->
              if t.Pipeline.rendered = v.Pipeline.rendered then true
              else
                QCheck2.Test.fail_reportf
                  "backends disagree:@.tree: %s@.vm:   %s@.on:@.%s"
                  t.Pipeline.rendered v.Pipeline.rendered src
          | exception e ->
              QCheck2.Test.fail_reportf
                "tree succeeded (%s) but the VM raised %s on:@.%s"
                t.Pipeline.rendered (Printexc.to_string e) src))

(* ------------------------------------------------------------------ *)
(* Generators.                                                          *)
(* ------------------------------------------------------------------ *)

open QCheck2.Gen

(** Random token soup from the language's vocabulary. *)
let token_soup : string t =
  let tokens =
    [ "x"; "y"; "f"; "Just"; "Nothing"; "True"; "=="; "+"; "::"; "=>"; "->";
      "\\"; "("; ")"; "["; "]"; ","; "let"; "in"; "where"; "case"; "of";
      "if"; "then"; "else"; "data"; "class"; "instance"; "deriving"; "=";
      "|"; "1"; "2.5"; "'c'"; "\"s\""; "Eq"; "Int"; "a"; ":"; "++"; "`"; "@";
      "_"; ";"; "{"; "}" ]
  in
  let* words = list_size (int_range 0 40) (oneofl tokens) in
  let* breaks = list_size (pure (List.length words)) (int_range 0 6) in
  let buf = Buffer.create 128 in
  List.iter2
    (fun w b ->
      Buffer.add_string buf w;
      if b = 0 then Buffer.add_string buf "\n  "
      else if b = 1 then Buffer.add_char buf '\n'
      else Buffer.add_char buf ' ')
    words breaks;
  pure (Buffer.contents buf)

(** Random structured (often ill-typed) expressions. *)
let rec expr_gen n : string t =
  if n <= 0 then
    oneofl [ "x"; "y"; "1"; "2.5"; "'c'"; "\"str\""; "True"; "Nothing"; "[]" ]
  else
    let sub = expr_gen (n / 2) in
    oneof
      [
        (let* a = sub and* b = sub in pure (Printf.sprintf "(%s %s)" a b));
        (let* a = sub and* b = sub
         and* op = oneofl [ "+"; "=="; "++"; ":"; "<="; "&&" ] in
         pure (Printf.sprintf "(%s %s %s)" a op b));
        (let* a = sub in pure (Printf.sprintf "(\\x -> %s)" a));
        (let* a = sub and* b = sub in
         pure (Printf.sprintf "(let y = %s in %s)" a b));
        (let* a = sub and* b = sub and* c = sub in
         pure (Printf.sprintf "(if %s then %s else %s)" a b c));
        (let* a = sub and* b = sub in
         pure
           (Printf.sprintf "(case %s of { [] -> %s; (h:t) -> h })" a b));
        (let* a = sub in pure (Printf.sprintf "(Just %s)" a));
        (let* a = sub and* b = sub in pure (Printf.sprintf "(%s, %s)" a b));
        (let* a = sub in pure (Printf.sprintf "(%s :: Int)" a));
      ]

(** Random (often ill-formed) top-level declaration sets. *)
let program_gen : string t =
  let* body = expr_gen 4 in
  let* extra =
    oneofl
      [
        "";
        "data T = MkT Int | Empty deriving (Eq)";
        "data T a = MkT a";
        "class C a where\n  m :: a -> a";
        "class C a where\n  m :: a -> a\ninstance C Int where\n  m x = x";
        "f :: Eq a => a -> Bool\nf q = q == q";
        "g 0 = 1\ng n = n";
        "type S = [Int]";
        "infixl 6 <+>\nx <+> y = x";
      ]
  in
  pure (Printf.sprintf "%s\nmain = f1\nf1 = %s\n" extra body)

let tests =
  [
    ( "fuzz",
      [
        prop "token soup never crashes the pipeline" ~count:400 token_soup
          compiles_cleanly;
        prop "random expressions never crash the pipeline" ~count:300
          (let* e = expr_gen 5 in
           pure ("main = " ^ e))
          compiles_cleanly;
        prop "random programs never crash compile-or-run" ~count:200
          program_gen runs_cleanly;
        prop "tree-successful programs replay identically on the VM"
          ~count:200 program_gen vm_agrees;
        prop "random expressions replay identically on the VM" ~count:150
          (let* e = expr_gen 5 in
           pure ("main = " ^ e))
          vm_agrees;
        prop "token soup never crashes the tag translation" ~count:200
          token_soup
          (fun src ->
            match
              Pipeline.compile
                ~opts:{ Pipeline.default_options with
                        strategy = Pipeline.Tags }
                ~file:"fuzz.mhs" src
            with
            | _ -> true
            | exception Tc_support.Diagnostic.Error _ -> true);
        prop "random bytes never crash the lexer+layout" ~count:300
          (string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 60))
          (fun s ->
            match Tc_syntax.Layout.tokenize ~file:"fuzz" s with
            | _ -> true
            | exception Tc_support.Diagnostic.Error _ -> true);
        prop "token soup never escapes the accumulating front end" ~count:400
          token_soup collect_never_raises;
        prop "random expressions never escape the accumulating front end"
          ~count:300
          (let* e = expr_gen 5 in
           pure ("main = " ^ e))
          collect_never_raises;
        prop "random programs never escape the accumulating front end"
          ~count:200 program_gen collect_never_raises;
        prop "arbitrary bytes never escape the accumulating front end"
          ~count:400
          (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 120))
          collect_never_raises;
        prop "collected artifacts replay like fail-fast ones" ~count:150
          program_gen
          (fun src ->
            (* when the accumulating path produces an artifact, the
               fail-fast path must succeed too and agree on the result *)
            match Pipeline.compile_collect ~file:"fuzz.mhs" src with
            | { Pipeline.artifact = None; _ } -> true
            | { Pipeline.artifact = Some c; _ } -> (
                match Pipeline.compile ~file:"fuzz.mhs" src with
                | exception Tc_support.Diagnostic.Error d ->
                    QCheck2.Test.fail_reportf
                      "collect produced an artifact but compile failed \
                       (%s) on:@.%s"
                      (Tc_support.Diagnostic.to_string d) src
                | c' -> (
                    match
                      ( Pipeline.exec ~budget:(Pipeline.Budget.fuel 2_000_000) c,
                        Pipeline.exec ~budget:(Pipeline.Budget.fuel 2_000_000) c' )
                    with
                    | r, r' -> r.Pipeline.rendered = r'.Pipeline.rendered
                    | exception _ -> true (* runtime failures are out of scope *))));
      ] );
  ]
