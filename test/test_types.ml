(** Unification, context propagation/reduction and class-environment tests
    (paper §4–§5), exercised at the library level. *)

open Tc_support
module Ty = Tc_types.Ty
module Unify = Tc_types.Unify
module Class_env = Tc_types.Class_env
module Static = Tc_types.Static
module Scheme = Tc_types.Scheme
module Parser = Tc_syntax.Parser
module Fixity = Tc_syntax.Fixity

(* A small static environment: Eq, Ord (superclass Eq), Num (supers Eq,
   Text), Text; instances for Int and lists/pairs. *)
let env () =
  let src =
    {|
data Bool = False | True
class Eq a where
  (==) :: a -> a -> Bool
class Eq a => Ord a where
  (<=) :: a -> a -> Bool
class Text a where
  str :: a -> [Char]
class (Eq a, Text a) => Num a where
  (+) :: a -> a -> a
instance Eq Int where
  x == y = True
instance Ord Int where
  x <= y = True
instance Text Int where
  str x = []
instance Num Int where
  x + y = x
instance Eq a => Eq [a] where
  x == y = True
instance Text a => Text [a] where
  str x = []
instance (Eq a, Eq b) => Eq (a, b) where
  x == y = True
|}
  in
  let prog = Parser.parse_program ~file:"env" src in
  let prog, _ = Fixity.resolve_program prog in
  (Static.process prog).env

let eq = Ident.intern "Eq"
let ord = Ident.intern "Ord"
let num = Ident.intern "Num"
let text = Ident.intern "Text"

let fresh ?context () = Ty.fresh_var ?context ~level:1 ()

let ty_str t = Ty.to_string_qualified t

let case = Helpers.case

let unify_ok env a b = Unify.unify env ~loc:Loc.none a b

let expect_unify_error env a b needle =
  match Unify.unify env ~loc:Loc.none a b with
  | exception Diagnostic.Error d ->
      if not (Helpers.contains ~needle (Diagnostic.to_string d)) then
        Alcotest.failf "wrong unification error: %s" (Diagnostic.to_string d)
  | () -> Alcotest.fail "expected a unification error"

let tests =
  [
    ( "unify",
      [
        case "variable instantiation" (fun () ->
            let env = env () in
            let a = fresh () in
            unify_ok env (Ty.TVar a) Ty.int;
            Alcotest.(check string) "type" "Int" (ty_str (Ty.TVar a)));
        case "structural unification" (fun () ->
            let env = env () in
            let a = fresh () and b = fresh () in
            unify_ok env
              (Ty.list (Ty.arrow (Ty.TVar a) Ty.int))
              (Ty.list (Ty.arrow Ty.char (Ty.TVar b)));
            Alcotest.(check string) "a" "Char" (ty_str (Ty.TVar a));
            Alcotest.(check string) "b" "Int" (ty_str (Ty.TVar b)));
        case "occurs check" (fun () ->
            let env = env () in
            let a = fresh () in
            expect_unify_error env (Ty.TVar a) (Ty.list (Ty.TVar a)) "occurs");
        case "constructor clash" (fun () ->
            let env = env () in
            expect_unify_error env Ty.int Ty.char "mismatch");
        case "arity respected by kinds" (fun () ->
            let env = env () in
            expect_unify_error env (Ty.list Ty.int) Ty.int "mismatch");
        case "var-var merges contexts" (fun () ->
            let env = env () in
            let a = fresh ~context:[ eq ] () in
            let b = fresh ~context:[ text ] () in
            unify_ok env (Ty.TVar a) (Ty.TVar b);
            let merged = Ty.prune (Ty.TVar a) in
            Alcotest.(check string) "context union" "(Eq a, Text a) => a"
              (ty_str merged));
      ] );
    ( "context-reduction",
      [
        case "paper example: Eq a ~ [Int]" (fun () ->
            (* unifying (Eq a) => a with [Integer] consults the instance
               declarations and leaves no residual constraints (§5) *)
            let env = env () in
            let a = fresh ~context:[ eq ] () in
            unify_ok env (Ty.TVar a) (Ty.list Ty.int);
            Alcotest.(check string) "no residual context" "[Int]"
              (ty_str (Ty.prune (Ty.TVar a))));
        case "paper example: Eq a ~ [b] leaves Eq b" (fun () ->
            let env = env () in
            let a = fresh ~context:[ eq ] () in
            let b = fresh () in
            unify_ok env (Ty.TVar a) (Ty.list (Ty.TVar b));
            Alcotest.(check string) "context propagated" "Eq a => [a]"
              (ty_str (Ty.prune (Ty.TVar a))));
        case "missing instance is a type error" (fun () ->
            let env = env () in
            let a = fresh ~context:[ eq ] () in
            expect_unify_error env (Ty.TVar a) (Ty.arrow Ty.int Ty.int)
              "no instance");
        case "pair instance distributes per argument" (fun () ->
            let env = env () in
            let a = fresh ~context:[ eq ] () in
            let x = fresh () and y = fresh () in
            unify_ok env (Ty.TVar a) (Ty.tuple [ Ty.TVar x; Ty.TVar y ]);
            Alcotest.(check string) "both constrained"
              "(Eq a, Eq b) => (a, b)"
              (ty_str (Ty.prune (Ty.TVar a))));
        case "nested reduction" (fun () ->
            let env = env () in
            let a = fresh ~context:[ eq ] () in
            let b = fresh () in
            unify_ok env (Ty.TVar a) (Ty.list (Ty.list (Ty.TVar b)));
            Alcotest.(check string) "through two instances" "Eq a => [[a]]"
              (ty_str (Ty.prune (Ty.TVar a))));
      ] );
    ( "superclasses",
      [
        case "closure" (fun () ->
            let env = env () in
            let closure = Class_env.supers_closure env num in
            let names = List.map Ident.text closure |> List.sort compare in
            Alcotest.(check (list string)) "Num's supers" [ "Eq"; "Text" ] names);
        case "implies is reflexive-transitive" (fun () ->
            let env = env () in
            Alcotest.(check bool) "Ord => Eq" true (Class_env.implies env ord eq);
            Alcotest.(check bool) "Eq !=> Ord" false (Class_env.implies env eq ord);
            Alcotest.(check bool) "refl" true (Class_env.implies env eq eq));
        case "context reduced by superclass absorption (§8.1)" (fun () ->
            let env = env () in
            let ctx =
              Class_env.context_add env (Ty.Context.of_list [ eq ]) ord
            in
            Alcotest.(check (list string)) "Eq absorbed by Ord" [ "Ord" ]
              (List.map Ident.text ctx));
        case "adding an implied class is a no-op" (fun () ->
            let env = env () in
            let ctx =
              Class_env.context_add env (Ty.Context.of_list [ num ]) eq
            in
            Alcotest.(check (list string)) "still just Num" [ "Num" ]
              (List.map Ident.text ctx));
      ] );
    ( "schemes",
      [
        case "instantiation is fresh" (fun () ->
            let a = Ty.fresh_var ~context:[ eq ] ~level:Ty.generic_level () in
            let s = { Scheme.vars = [ a ]; ty = Ty.arrow (Ty.TVar a) (Ty.TVar a) } in
            let t1, f1 = Scheme.instantiate ~level:1 s in
            let t2, _f2 = Scheme.instantiate ~level:1 s in
            let env = env () in
            (* instantiations do not interfere *)
            unify_ok env t1 (Ty.arrow Ty.int Ty.int);
            Alcotest.(check string) "t2 untouched" "Eq a => a -> a" (ty_str t2);
            match f1 with
            | [ fv ] ->
                Alcotest.(check string) "context copied" "Int"
                  (ty_str (Ty.prune (Ty.TVar fv)))
            | _ -> Alcotest.fail "expected one fresh variable");
        case "dictionary order follows quantifier order" (fun () ->
            let a = Ty.fresh_var ~context:[ num ] ~level:Ty.generic_level () in
            let b = Ty.fresh_var ~context:[ text ] ~level:Ty.generic_level () in
            let s =
              { Scheme.vars = [ a; b ]; ty = Ty.arrow (Ty.TVar a) (Ty.TVar b) }
            in
            Alcotest.(check (list (pair string int)))
              "context order"
              [ ("Num", 0); ("Text", 1) ]
              (List.map (fun (c, i) -> (Ident.text c, i)) (Scheme.context s)));
      ] );
    ( "read-only",
      [
        case "read-only variable refuses instantiation" (fun () ->
            let env = env () in
            let a = Ty.fresh_var ~read_only:true ~level:1 () in
            expect_unify_error env (Ty.TVar a) Ty.int "rigid");
        case "read-only variable refuses new context" (fun () ->
            let env = env () in
            let ro = Ty.fresh_var ~read_only:true ~level:1 () in
            let flex = Ty.fresh_var ~context:[ eq ] ~level:1 () in
            expect_unify_error env (Ty.TVar flex) (Ty.TVar ro) "too general");
        case "read-only context admits implied classes" (fun () ->
            let env = env () in
            let ro = Ty.fresh_var ~read_only:true ~context:[ ord ] ~level:1 () in
            let flex = Ty.fresh_var ~context:[ eq ] ~level:1 () in
            (* Eq is implied by the declared Ord, so this is fine *)
            unify_ok env (Ty.TVar flex) (Ty.TVar ro));
      ] );
  ]
