(** Evaluator tests: language semantics under both evaluation modes,
    pattern-match compilation behaviour, laziness, failures. *)

open Helpers

(* run the same program lazily and strictly and require agreement *)
let check_both name src expected =
  case name (fun () ->
      Alcotest.(check string) (name ^ " (lazy)") expected (run ~mode:`Lazy src);
      Alcotest.(check string) (name ^ " (strict)") expected
        (run ~mode:`Strict src))

let tests =
  [
    ( "eval-basics",
      [
        check_both "arithmetic" "main = (1 + 2 * 3, 10 - 4, div 7 2, mod 7 2)"
          "(7, 6, 3, 1)";
        check_both "floats"
          "main = (1.5 + 2.25, 10.0 / 4.0, negate 2.5, abs (-3.5))"
          "(3.75, 2.5, -2.5, 3.5)";
        check_both "booleans" "main = (True && False, True || False, not True)"
          "(False, True, False)";
        check_both "comparisons" "main = (1 < 2, 'b' >= 'a', [1,2] <= [1,3])"
          "(True, True, True)";
        check_both "chars and strings"
          {|main = (ord 'A', chr 66, "ab" ++ "cd")|} "(65, 'B', \"abcd\")";
        check_both "tuples" "main = (fst (1, 'a'), snd (1, 'a'))" "(1, 'a')";
        check_both "higher-order functions"
          {|main = (map (\x -> x * x) [1,2,3], flip (++) "b" "a")|}
          "([1, 4, 9], \"ab\")";
        check_both "composition and dollar"
          "main = (length . filter id $ [True, False, True])" "2";
        check_both "currying and partial application"
          "main = map (primAddInt 10) [1, 2]" "[11, 12]";
        check_both "let polymorphism"
          "main = let i = \\x -> x in (i 1, i 'c')" "(1, 'c')";
        check_both "shadowing"
          "main = let x = 1 in let x = 2 in x" "2";
        check_both "closures capture"
          "main = let mk = \\n -> (\\x -> x + n) in map (mk 100) [1,2]"
          "[101, 102]";
        check_both "string rendering of results" {|main = "hi"|} "\"hi\"";
        check_both "deeply recursive (tail-ish)"
          "main = length (enumFromTo 1 5000)" "5000";
      ] );
    ( "eval-patterns",
      [
        check_both "nested constructor patterns"
          {|
f (Just (Left x))  = x + 1
f (Just (Right b)) = if b then 1 else 0
f Nothing          = 42
main = (f (Just (Left 1)), f (Just (Right True)), f Nothing)
|}
          "(2, 1, 42)";
        check_both "literal patterns with default"
          {|
digit 0 = "zero"
digit 1 = "one"
digit n = "many"
main = map digit [0, 1, 7]
|}
          "[\"zero\", \"one\", \"many\"]";
        check_both "string patterns"
          {|
greet "hi"  = 1
greet "bye" = 2
greet s     = 0
main = (greet "hi", greet "bye", greet "what")
|}
          "(1, 2, 0)";
        check_both "as patterns"
          {|
dup all@(x:xs) = x : all
dup [] = []
main = dup [1,2]
|}
          "[1, 1, 2]";
        check_both "guards fall through equations"
          {|
classify n | n < 0 = 0
classify 0 = 1
classify n | even n = 2
           | otherwise = 3
main = map classify [-1, 0, 2, 5]
|}
          "[0, 1, 2, 3]";
        check_both "where scopes over guards"
          {|
f x | big = "big" | otherwise = "small" where big = x > 10
main = (f 20, f 1)
|}
          "(\"big\", \"small\")";
        check_both "case expressions with nesting"
          {|
main = case [1, 2] of
  []     -> 0
  (x:xs) -> case xs of
    []    -> x
    (y:_) -> x + y
|}
          "3";
        check_both "pattern bindings project"
          {|
(a, b) = (1, 'x')
(p:ps) = "hey"
main = (a, b, p, ps)
|}
          "(1, 'x', 'h', \"ey\")";
        check_both "tuple wildcards"
          "f (_, y, _) = y\nmain = f (1, 2, 3)" "2";
        case "non-exhaustive function fails with its name" (fun () ->
            match run "f (Just x) = x\nmain = f Nothing" with
            | exception Tc_eval.Eval.Pattern_fail m ->
                Alcotest.(check bool) "mentions f" true (contains ~needle:"'f'" m)
            | r -> Alcotest.failf "expected failure, got %s" r);
        case "non-exhaustive case fails" (fun () ->
            match run "main = case [] of { (x:xs) -> x }" with
            | exception Tc_eval.Eval.Pattern_fail _ -> ()
            | r -> Alcotest.failf "expected failure, got %s" r);
      ] );
    ( "eval-laziness",
      [
        check_run "infinite list with take"
          "main = take 5 (iterate (\\x -> x + x) 1)" "[1, 2, 4, 8, 16]";
        check_run "repeat with zip"
          "main = take 3 (zip (repeat 'a') (enumFromTo 1 100))"
          "[('a', 1), ('a', 2), ('a', 3)]";
        check_run "unused diverging binding is fine"
          "main = let boom = error \"no\" in 42" "42";
        check_run "const discards a diverging argument"
          "main = const 1 (error \"no\")" "1";
        case "error propagates when demanded" (fun () ->
            match run {|main = 1 + error "boom"|} with
            | exception Tc_eval.Eval.User_error m ->
                Alcotest.(check string) "message" "boom" m
            | r -> Alcotest.failf "expected user error, got %s" r);
        case "strict mode evaluates arguments first" (fun () ->
            match run ~mode:`Strict {|main = const 1 (error "boom")|} with
            | exception Tc_eval.Eval.User_error _ -> ()
            | r -> Alcotest.failf "expected user error in strict mode, got %s" r);
        case "knot-tied value detected" (fun () ->
            match run "x = 1 + x\nmain = x" with
            | exception Tc_eval.Eval.Runtime_error m ->
                Alcotest.(check bool) "loop" true (contains ~needle:"loop" m)
            | exception Tc_resilience.Budget.Exhausted _ -> ()
            | r -> Alcotest.failf "expected loop detection, got %s" r);
        check_run "lazy dictionary fields allow cyclic structure"
          {|
ones = 1 : ones
main = take 3 ones
|}
          "[1, 1, 1]";
        check_run "seq forces its first argument"
          "main = seq 1 2" "2";
        case "seq on error diverges" (fun () ->
            match run {|main = seq (error "x") 2|} with
            | exception Tc_eval.Eval.User_error _ -> ()
            | r -> Alcotest.failf "expected error, got %s" r);
      ] );
    ( "ranges-and-warnings",
      [
        check_both "bounded ranges" "main = ([1..5], [3..3], [4..1], sum [1..100])"
          "([1, 2, 3, 4, 5], [3], [], 5050)";
        check_run "unbounded ranges are lazy" "main = take 4 [10..]"
          "[10, 11, 12, 13]";
        check_both "range bounds are expressions"
          "main = [1 + 1 .. 2 * 3]" "[2, 3, 4, 5, 6]";
        case "non-exhaustive definitions warn" (fun () ->
            let c = compile "f (Just x) = x\nmain = f (Just 1)" in
            Alcotest.(check bool) "warned" true
              (List.exists
                 (fun w ->
                   contains ~needle:"non-exhaustive"
                     (Tc_support.Diagnostic.to_string w))
                 c.warnings));
        case "otherwise-guarded definitions do not warn" (fun () ->
            let c =
              compile
                "g n | even n = 1\n    | otherwise = 0\nmain = g 3"
            in
            Alcotest.(check int) "no warnings" 0 (List.length c.warnings));
        case "exhaustive constructor coverage does not warn" (fun () ->
            let c =
              compile
                "f (Just x) = x\nf Nothing = 0\nmain = f (Just 1)"
            in
            Alcotest.(check int) "no warnings" 0 (List.length c.warnings));
        case "non-exhaustive case warns" (fun () ->
            let c = compile "main = case [1] of { (x:_) -> x }" in
            Alcotest.(check bool) "warned" true (c.warnings <> []));
      ] );
    ( "eval-rendering",
      [
        check_run "negative numbers" "main = (-5, -2.5)" "(-5, -2.5)";
        check_run "strings of chars render as strings"
          "main = ['h', 'i']" "\"hi\"";
        check_run "unit value" "main = ()" "()";
        check_run "nested data"
          "main = Just (Left [1,2])" "(Just (Left [1, 2]))";
        check_run "empty list" "main = ([] :: [Int])" "[]";
        check_run "function result renders opaquely" "main = \\x -> x"
          "<function>";
      ] );
  ]
