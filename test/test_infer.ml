(** Type inference tests: inferred qualified types, signatures (§8.6), the
    monomorphism restriction (§8.7), letrec common contexts (§8.3),
    defaulting and ambiguity, and type errors. *)

open Helpers

let tests =
  [
    ( "inferred-types",
      [
        check_type "simple polymorphism" "f x = x\nmain = 0" "f" "a -> a";
        check_type "overloading from a method" "f x y = x == y\nmain = 0" "f"
          "Eq a => a -> a -> Bool";
        check_type "context from two methods" "f x = str (x + x)\nmain = 0" "f"
          "Num a => a -> [Char]";
        check_type "the paper's member"
          "mem x [] = False\nmem x (y:ys) = x == y || mem x ys\nmain = 0" "mem"
          "Eq a => a -> [a] -> Bool";
        check_type "context reduction through instances"
          "f x ys = [x] == ys\nmain = 0" "f" "Eq a => a -> [a] -> Bool";
        check_type "two independent contexts"
          "f x y = (x == x, y + y)\nmain = 0" "f"
          "(Eq a, Num b) => a -> b -> (Bool, b)";
        check_type "superclass absorption in inferred context (§8.1)"
          "f x y = (x == y, x <= y)\nmain = 0" "f"
          "Ord a => a -> a -> (Bool, Bool)";
        check_type "overloaded literal (function binding)"
          "addTwo x = x + 2\nmain = 0" "addTwo" "Num a => a -> a";
        (* `two = \x -> ...` is a simple pattern binding: the monomorphism
           restriction (§8.7) fixes it at Int via defaulting *)
        check_type "overloaded literal under the restriction"
          "two = \\x -> x + 2\nmain = 0" "two" "Int -> Int";
        check_type "instance-specific use is unqualified"
          "f n = n + (1 :: Int)\nmain = 0" "f" "Int -> Int";
        check_type "annotation restricts" "f = \\x -> (x :: Float) + x\nmain = 0"
          "f" "Float -> Float";
        check_type "higher order" "appTwice f x = f (f x)\nmain = 0" "appTwice"
          "(a -> a) -> a -> a";
        check_type "constructors are polymorphic"
          "f x = Just (Left x)\nmain = 0" "f" "a -> Maybe (Either a b)";
      ] );
    ( "signatures",
      [
        check_type "signature fixes dictionary order (§8.6)"
          "f :: (Text b, Num a) => a -> b -> [Char]\nf x y = str (x + x) ++ str y\nmain = 0"
          "f" "(Text b, Num a) => a -> b -> [Char]";
        check_type "signature can restrict a polymorphic function"
          "f :: Int -> Int\nf x = x\nmain = 0" "f" "Int -> Int";
        check_type "signature may over-constrain"
          "f :: Ord a => a -> Bool\nf x = x == x\nmain = 0" "f"
          "Ord a => a -> Bool";
        check_error "signature too general"
          "f :: a -> a\nf x = x + x\nmain = 0" "too general";
        check_error "signature misses a needed constraint"
          "f :: Text a => a -> Bool\nf x = x == x\nmain = 0" "too general";
        check_error "signature wrong shape"
          "f :: Int -> Int\nf x = [x]\nmain = 0" "mismatch";
        check_error "signature without binding" "f :: Int -> Int\nmain = 0"
          "lacks an accompanying binding";
        check_error "two distinct rigid variables cannot unify"
          "f :: a -> b -> a\nf x y = y\nmain = 0" "rigid";
        case "inline annotations work like signatures" (fun () ->
            Alcotest.(check string) "type" "Int"
              (type_of "v = (id :: Int -> Int) 3\nmain = 0" "v"));
      ] );
    ( "monomorphism-restriction",
      [
        (* §8.7: a value binding's constrained variables are not
           generalized; the value is computed once, not once per dictionary *)
        case "restricted binding is shared and defaulted" (fun () ->
            let rendered, counters =
              run_counters "twice = 2 + 2\nmain = (twice, twice)"
            in
            Alcotest.(check string) "value" "(4, 4)" rendered;
            (* no dictionaries pass through main *)
            Alcotest.(check int) "no dict constructions" 0
              counters.dict_constructions);
        check_type "restricted binding gets a monomorphic type"
          "twice = 2 + 2\nmain = twice" "twice" "Int";
        check_type "function bindings are not restricted"
          "d x = x + x\nmain = 0" "d" "Num a => a -> a";
        check_type "a signature lifts the restriction"
          "twice :: Num a => a\ntwice = 2 + 2\nmain = 0" "twice" "Num a => a";
        case "signature-lifted binding usable at two types" (fun () ->
            Alcotest.(check string) "value" "(4, 4.0)"
              (run
                 "twice :: Num a => a\ntwice = 2 + 2\nmain = (twice :: Int, twice :: Float)"));
        check_type "unconstrained variables still generalize"
          "pairUp = \\x -> (x, x)\nmain = 0" "pairUp" "a -> (a, a)";
      ] );
    ( "letrec",
      [
        check_type "mutual recursion with shared context (§8.3)"
          {|
isEven n = n == 0 || isOdd (n - 1)
isOdd n = if n == 0 then False else isEven (n - 1)
main = 0
|}
          "isEven" "Num a => a -> Bool";
        case "common context member warning" (fun () ->
            (* g's own type does not mention f's constrained variable *)
            let c =
              compile
                {|
f x = g (x == x)
g b = if b then 1 else f (0 :: Int)
main = 0
|}
            in
            ignore c;
            (* both belong to one group; typing succeeds *)
            Alcotest.(check bool) "compiled" true true);
        check_run "polymorphic recursion is not attempted (monomorphic rec)"
          {|
len :: [a] -> Int
len [] = 0
len (x:xs) = 1 + len xs
main = len "abcd"
|}
          "4";
        check_run "recursive overloaded function passes dictionaries through"
          {|
countDown :: Num a => a -> [a]
countDown n = if n == 0 then [] else n : countDown (n - 1)
main = countDown (3 :: Int)
|}
          "[3, 2, 1]";
      ] );
    ( "defaulting-ambiguity",
      [
        check_run "top-level numeric default is Int" "main = 2 + 3" "5";
        check_run "defaulting picks Float when Int fails"
          "main = 2 + 2.5" "4.5";
        check_type "main type after defaulting" "main = 2 + 3" "main" "Int";
        check_run "show of a defaulted literal" "main = str 42" "\"42\"";
        check_error "ambiguity that defaulting cannot solve"
          "main = [] == []" "ambiguous";
        check_error "non-numeric ambiguity"
          {|main = str (parse "hi")|} "ambiguous";
        case "defaulting disabled is an error" (fun () ->
            let opts =
              { Typeclasses.Pipeline.default_options with defaulting = false }
            in
            expect_error ~opts "main = 2 + 3" "ambiguous");
        case "monomorphic literals option" (fun () ->
            let opts =
              { Typeclasses.Pipeline.default_options with
                overloaded_literals = false }
            in
            Alcotest.(check string) "type" "Int -> Int"
              (type_of ~opts "f x = x + 1\nmain = 0" "f"));
      ] );
    ( "soundness",
      [
        (* level discipline: a lambda-bound variable's type must not be
           generalized by an inner let *)
        check_type "inner let does not generalize outer variables"
          "f x = let g y = x in g\nmain = 0" "f" "a -> b -> a";
        check_error "monomorphic lambda binder cannot be used at two types"
          "f = \\x -> let y = x in (y True, y 'a')\nmain = 0" "mismatch";
        check_run "inner let shares the outer value"
          "f x = let g y = x in (g 1, g 'c')\nmain = f True" "(True, True)";
        check_type "polymorphic inner lets still generalize their own vars"
          "f x = let pair y = (y, y) in (pair x, pair 1)\nmain = 0" "f"
          "Num b => a -> ((a, a), (b, b))";
        case "local bindings shadow class methods" (fun () ->
            Alcotest.(check string) "shadowed"
              "(False, True)"
              (run
                 {|
weird :: Int -> Int -> (Bool, Bool)
weird a b = let (==) = \x y -> False in (a == b, a `primEqInt` a)
main = weird 1 1
|}));
        check_run "recursive use inside a guard"
          {|
upTo :: Int -> [Int]
upTo n | n == 0 = []
       | otherwise = upTo (n - 1) ++ [n]
main = upTo 4
|}
          "[1, 2, 3, 4]";
        check_run "dictionaries for instance methods used polymorphically"
          {|
pairEq :: Eq a => (a, a) -> Bool
pairEq p = fst p == snd p
main = (pairEq (1, 1), pairEq ("a", "b"), pairEq ((1,'c'), (1,'c')))
|}
          "(True, False, True)";
      ] );
    ( "type-errors",
      [
        check_error "unbound variable" "main = nosuchthing" "not in scope";
        check_error "unbound constructor" "main = Nope" "unknown data constructor";
        check_error "no instance" "main = id == id" "no instance";
        check_error "condition must be Bool" "main = if 1 then 2 else 3"
          "no instance for 'Num Bool'";
        check_error "condition must be Bool (non-literal)"
          "main = if 'c' then 2 else 3" "mismatch";
        check_error "branch types must agree" "main = if True then 1 else 'c'"
          "no instance for 'Num Char'";
        check_error "branch types must agree (non-literal)"
          "main = if True then 'a' else []" "mismatch";
        check_error "occurs check" "f x = x x\nmain = 0" "occurs";
        check_error "application of non-function" "main = 'a' 'b'" "mismatch";
        check_error "case alternatives must agree"
          "f x = case x of\n  True -> 'a'\n  False -> []\nmain = 0" "mismatch";
        check_error "redefining a method at top level"
          "(==) :: Int -> Int -> Bool\nx == y = True\nmain = 0" "class method";
        check_error "duplicate top-level binding" "f = 1\nf = 2\nmain = 0"
          "bound more than once";
        check_error "pattern variables are linear" "f x x = x\nmain = 0"
          "bound twice";
        check_error "arity mismatch between equations"
          "f x = x\nf x y = x\nmain = 0" "different numbers of arguments";
      ] );
  ]
