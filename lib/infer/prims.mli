(** Primitive operations: names and typing schemes. Primitives are ordinary
    variables to the type checker; the evaluator interprets them. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Ty = Tc_types.Ty
module Scheme = Tc_types.Scheme

val p_eq_int : Ident.t
val p_eq_float : Ident.t
val p_eq_char : Ident.t
val p_le_int : Ident.t
val p_le_float : Ident.t
val p_le_char : Ident.t
val p_add_int : Ident.t
val p_sub_int : Ident.t
val p_mul_int : Ident.t
val p_div_int : Ident.t
val p_mod_int : Ident.t
val p_neg_int : Ident.t
val p_add_float : Ident.t
val p_sub_float : Ident.t
val p_mul_float : Ident.t
val p_div_float : Ident.t
val p_neg_float : Ident.t
val p_int_to_float : Ident.t
val p_int_str : Ident.t
val p_float_str : Ident.t
val p_str_int : Ident.t
val p_str_float : Ident.t
val p_chr : Ident.t
val p_ord : Ident.t
val p_error : Ident.t
val p_failure : Ident.t
val p_force : Ident.t
val p_type_tag : Ident.t

(** The type of [Bool] in an environment ([Bool] is a prelude data type). *)
val bool_ty : Class_env.t -> Ty.t

(** Typing schemes of all primitives available to source programs. *)
val schemes : Class_env.t -> (Ident.t * Scheme.t) list

(** Every primitive name (for scope checking). *)
val names : Ident.t list
