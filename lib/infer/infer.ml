(** Type inference with integrated dictionary conversion (paper §5–§6).

    The checker walks the kernel program once, producing a core translation
    as it goes. Occurrences of overloaded variables and methods become
    {e placeholders} ([Core.Hole] nodes, recorded in the innermost pending
    scope). When a binding group is generalized:

    - dictionary parameters are invented for the context of each
      generalized type variable (§6.2);
    - every pending placeholder is resolved by the paper's four cases
      (§6.3): dictionary-parameter lookup, instance lookup, deferral to the
      enclosing declaration, or ambiguity (handled by numeric defaulting
      when possible);
    - recursive-call placeholders are rewritten into calls passing the
      dictionaries through unchanged.

    Also implemented here: the letrec common context (§8.3), user-supplied
    signatures via read-only variables fixing dictionary order (§8.6), the
    monomorphism restriction (§8.7), and overloaded integer literals with
    Haskell-style defaulting. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Ty = Tc_types.Ty
module Scheme = Tc_types.Scheme
module Class_env = Tc_types.Class_env
module Unify = Tc_types.Unify
module Elaborate = Tc_types.Elaborate
module Stats = Tc_types.Stats
module Tycon = Tc_types.Tycon
module Kernel = Tc_desugar.Kernel
module Core = Tc_core_ir.Core
module Layout = Tc_dicts.Layout
module Access = Tc_dicts.Access
module Trace = Tc_obs.Trace

let err = Diagnostic.errorf

(* ------------------------------------------------------------------ *)
(* Options and state.                                                  *)
(* ------------------------------------------------------------------ *)

type options = {
  strategy : Layout.strategy;
  overloaded_literals : bool;  (* integer literals via fromInt (Num a => a) *)
  defaulting : bool;           (* resolve ambiguous numeric contexts *)
}

let default_options =
  { strategy = Layout.Nested; overloaded_literals = true; defaulting = true }

(** Value-environment entries. *)
type entry =
  | Mono of Ty.t           (* lambda / case binders *)
  | Poly of Scheme.t       (* generalized bindings *)
  | Recursive of Ty.t      (* members of the group currently being checked *)

type venv = entry Ident.Map.t

type ph_kind =
  | PhDict of Ident.t                   (* a dictionary for this class *)
  | PhMethod of Class_env.method_info   (* a method occurrence *)
  | PhRec of Ident.t                    (* a recursive-call occurrence *)

type ph = {
  ph_hole : Core.hole;
  ph_kind : ph_kind;
  ph_ty : Ty.t;
  ph_loc : Loc.t;
}

type state = {
  env : Class_env.t;
  opts : options;
  sink : Diagnostic.Sink.sink;
  mutable level : int;
  mutable scopes : ph list ref list;  (* innermost first *)
}

let create_state ?(opts = default_options) env =
  { env; opts; sink = env.Class_env.sink; level = 0; scopes = [] }

(** The trace sink events go to (owned by the class environment so that
    unification can reach it too). *)
let trace st = st.env.Class_env.trace

let kind_label = function
  | PhDict c -> "dict " ^ Ident.text c
  | PhMethod (mi : Class_env.method_info) -> "method " ^ Ident.text mi.mi_name
  | PhRec x -> "recursive " ^ Ident.text x

let push_scope st = st.scopes <- ref [] :: st.scopes

(** The unresolved placeholders of a popped scope. *)
type pending = ph list

let pop_scope st : pending =
  match st.scopes with
  | s :: rest ->
      st.scopes <- rest;
      List.rev !s
  | [] -> invalid_arg "Infer.pop_scope: no scope"

let new_hole st kind ty loc : ph * Core.expr =
  (Stats.current ()).holes_created <- (Stats.current ()).holes_created + 1;
  let hole = Core.fresh_hole () in
  let ph = { ph_hole = hole; ph_kind = kind; ph_ty = ty; ph_loc = loc } in
  (match st.scopes with
   | s :: _ -> s := ph :: !s
   | [] -> invalid_arg "Infer.new_hole: no scope");
  Trace.emit (trace st) (fun () ->
      Trace.Placeholder_created
        { id = hole.Core.hole_id; kind = kind_label kind;
          ty = Fmt.str "%a" Ty.pp_qualified ty; loc });
  (ph, Core.Hole hole)

(* ------------------------------------------------------------------ *)
(* Occurrences.                                                        *)
(* ------------------------------------------------------------------ *)

(** An occurrence of a generalized variable: instantiate and apply to one
    dictionary placeholder per context element, in scheme order (§6.1). *)
let poly_occurrence st ~loc x (scheme : Scheme.t) : Ty.t * Core.expr =
  let ty, fresh = Scheme.instantiate ~level:st.level scheme in
  let holes =
    List.concat
      (List.map2
         (fun (gv : Ty.tyvar) (fv : Ty.tyvar) ->
           List.map
             (fun c ->
               let _, h = new_hole st (PhDict c) (Ty.TVar fv) loc in
               h)
             (Ty.unbound_exn gv).context)
         scheme.vars fresh)
  in
  (ty, Core.apps (Core.Var x) holes)

(** An occurrence of a class method: a method placeholder for the class
    variable, applied to dictionary placeholders for any extra context in
    the method's signature (§8.5). *)
let method_occurrence st ~loc (mi : Class_env.method_info) : Ty.t * Core.expr =
  let ci = Class_env.class_exn st.env mi.mi_class in
  let scope = Elaborate.new_scope () in
  let class_tv =
    Ty.fresh_var ~context:(Ty.Context.singleton mi.mi_class) ~level:st.level ()
  in
  Hashtbl.add scope ci.ci_var class_tv;
  let ty =
    Elaborate.elaborate st.env scope ~level:st.level ~read_only:false
      mi.mi_sig.sq_ty
  in
  Elaborate.apply_context st.env scope ~level:st.level ~read_only:false
    mi.mi_sig.sq_context;
  let _, mh = new_hole st (PhMethod mi) (Ty.TVar class_tv) loc in
  let extra =
    List.map
      (fun (p : Ast.spred) ->
        match p.sp_ty with
        | Ast.TSVar v ->
            let tv = Elaborate.lookup_var scope ~level:st.level ~read_only:false v in
            let _, h = new_hole st (PhDict p.sp_class) (Ty.TVar tv) loc in
            h
        | _ -> err ~loc:p.sp_loc "method context must constrain type variables")
      mi.mi_sig.sq_context
  in
  (ty, Core.apps mh extra)

let con_occurrence st ~loc c : Ty.t * Core.expr =
  match Class_env.find_datacon st.env c with
  | Some info ->
      let ty, _ = Scheme.instantiate ~level:st.level info.con_scheme in
      (ty, Core.Con c)
  | None -> err ~loc "unknown data constructor '%a'" Ident.pp c

let bool_ty st = Prims.bool_ty st.env

(** One dictionary parameter of a binding: (type variable, class, name). *)
type param_env = (Ty.tyvar * Ident.t * Ident.t) list

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)
(* ------------------------------------------------------------------ *)

let rec infer_expr st (venv : venv) (e : Kernel.expr) : Ty.t * Core.expr =
  match e with
  | Kernel.KVar (x, loc) -> (
      match Ident.Map.find_opt x venv with
      | Some (Mono ty) -> (ty, Core.Var x)
      | Some (Poly scheme) -> poly_occurrence st ~loc x scheme
      | Some (Recursive ty) ->
          (* paper §6.1: recursive references become placeholders until the
             group's context is known *)
          let _, h = new_hole st (PhRec x) ty loc in
          (ty, h)
      | None -> (
          match Class_env.find_method st.env x with
          | Some mi -> method_occurrence st ~loc mi
          | None -> err ~loc "variable '%a' is not in scope" Ident.pp x))
  | Kernel.KCon (c, loc) -> con_occurrence st ~loc c
  | Kernel.KLit (Ast.LInt n, loc) when st.opts.overloaded_literals -> (
      (* an integer literal denotes [fromInt n] at type [Num a => a] *)
      match Class_env.find_method st.env (Ident.intern "fromInt") with
      | Some mi ->
          let tm, cm = method_occurrence st ~loc mi in
          let result = Ty.fresh ~level:st.level () in
          Unify.unify st.env ~loc tm (Ty.arrow Ty.int result);
          (result, Core.App (cm, Core.Lit (Ast.LInt n)))
      | None -> (Ty.int, Core.Lit (Ast.LInt n)))
  | Kernel.KLit (l, _) ->
      let ty =
        match l with
        | Ast.LInt _ -> Ty.int
        | Ast.LFloat _ -> Ty.float
        | Ast.LChar _ -> Ty.char
        | Ast.LString _ ->
            invalid_arg "Infer: string literals must be desugared"
      in
      (ty, Core.Lit l)
  | Kernel.KApp (f, a) ->
      let tf, cf = infer_expr st venv f in
      let ta, ca = infer_expr st venv a in
      let result = Ty.fresh ~level:st.level () in
      Unify.unify st.env ~loc:(Kernel.loc_of f) tf (Ty.arrow ta result);
      (result, Core.App (cf, ca))
  | Kernel.KLam (vs, body) ->
      let arg_tys = List.map (fun _ -> Ty.fresh ~level:st.level ()) vs in
      let venv' =
        List.fold_left2
          (fun m v t -> Ident.Map.add v (Mono t) m)
          venv vs arg_tys
      in
      let tb, cb = infer_expr st venv' body in
      (Ty.arrows arg_tys tb, Core.lam vs cb)
  | Kernel.KLet (g, body) ->
      let venv', cg = infer_group st venv g in
      let tb, cb = infer_expr st venv' body in
      (tb, Core.Let (cg, cb))
  | Kernel.KIf (c, t, f) ->
      let tc, cc = infer_expr st venv c in
      Unify.unify st.env ~loc:(Kernel.loc_of c) tc (bool_ty st);
      let tt, ct = infer_expr st venv t in
      let tf, cf = infer_expr st venv f in
      Unify.unify st.env ~loc:(Kernel.loc_of f) tt tf;
      (tt, Core.If (cc, ct, cf))
  | Kernel.KCase (scrut, alts, default) ->
      let ts, cs = infer_expr st venv scrut in
      let result = Ty.fresh ~level:st.level () in
      let alts' =
        List.map
          (fun (a : Kernel.alt) ->
            match a.ka_test with
            | Kernel.KTcon c ->
                let info =
                  match Class_env.find_datacon st.env c with
                  | Some info -> info
                  | None ->
                      err ~loc:(Kernel.loc_of scrut)
                        "unknown data constructor '%a'" Ident.pp c
                in
                let con_ty, _ = Scheme.instantiate ~level:st.level info.con_scheme in
                let rec peel n ty args =
                  if n = 0 then (List.rev args, ty)
                  else
                    match Ty.prune ty with
                    | Ty.TCon (tc, [ a'; b ]) when Tycon.is_arrow tc ->
                        peel (n - 1) b (a' :: args)
                    | _ -> assert false
                in
                let field_tys, res_ty = peel info.con_arity con_ty [] in
                Unify.unify st.env ~loc:(Kernel.loc_of scrut) ts res_ty;
                let venv' =
                  List.fold_left2
                    (fun m v t -> Ident.Map.add v (Mono t) m)
                    venv a.ka_vars field_tys
                in
                let tb, cb = infer_expr st venv' a.ka_body in
                Unify.unify st.env ~loc:(Kernel.loc_of a.ka_body) tb result;
                { Core.alt_con = Core.Tcon c; alt_vars = a.ka_vars; alt_body = cb }
            | Kernel.KTlit l ->
                let lit_ty =
                  match l with
                  | Ast.LInt _ -> Ty.int
                  | Ast.LFloat _ -> Ty.float
                  | Ast.LChar _ -> Ty.char
                  | Ast.LString _ -> assert false
                in
                Unify.unify st.env ~loc:(Kernel.loc_of scrut) ts lit_ty;
                let tb, cb = infer_expr st venv a.ka_body in
                Unify.unify st.env ~loc:(Kernel.loc_of a.ka_body) tb result;
                { Core.alt_con = Core.Tlit l; alt_vars = []; alt_body = cb })
          alts
      in
      let default' =
        Option.map
          (fun d ->
            let td, cd = infer_expr st venv d in
            Unify.unify st.env ~loc:(Kernel.loc_of d) td result;
            cd)
          default
      in
      (result, Core.Case (cs, alts', default'))
  | Kernel.KAnnot (e1, q, loc) ->
      let t, c = infer_expr st venv e1 in
      let sig_ty, _ = Elaborate.signature st.env ~level:st.level q in
      Unify.unify st.env ~loc t sig_ty;
      (sig_ty, c)
  | Kernel.KFail (msg, _) ->
      let a = Ty.fresh ~level:st.level () in
      ( a,
        Core.App (Core.Var Prims.p_failure, Core.Lit (Ast.LString msg)) )

(* ------------------------------------------------------------------ *)
(* Binding groups: generalization and placeholder resolution.          *)
(* ------------------------------------------------------------------ *)

(** Resolve a dictionary requirement [(cls, ty)] into a core expression.
    Implements the four cases of §6.3 for class placeholders. *)
and resolve_dict st (penv : param_env) ~loc (cls : Ident.t) (ty : Ty.t) :
    Core.expr =
  match Ty.prune ty with
  | Ty.TVar v when Ty.is_generic v -> (
      (* case 1: a variable generalized here — use a dictionary parameter *)
      match
        List.find_opt
          (fun (v', c', _) -> v'.Ty.tv_id = v.Ty.tv_id && Class_env.implies st.env c' cls)
          penv
      with
      | Some (_, c', p) ->
          Access.super_dict st.env st.opts.strategy ~loc ~have:c' ~target:cls
            (Core.Var p)
      | None ->
          err ~loc
            "internal: no dictionary parameter supplies '%a' for a \
             generalized type variable"
            Ident.pp cls)
  | Ty.TVar v ->
      let u = Ty.unbound_exn v in
      if u.level <= st.level then begin
        (* case 3: the variable is bound in an outer declaration — defer *)
        let ph, h = new_hole_deferred st (PhDict cls) (Ty.TVar v) loc in
        ignore ph;
        h
      end
      else begin
        (* case 4: ambiguous — try defaulting, else report *)
        if try_default st ~loc v then resolve_dict st penv ~loc cls ty
        else
          err ~loc
            "ambiguous overloading: cannot determine a type satisfying the \
             context '%a'"
            Ty.pp_qualified (Ty.TVar v)
      end
  | Ty.TCon (tc, args) -> (
      (* case 2: instantiated to a constructor — use the instance dictionary,
         recursively resolving the instance's own context *)
      let found = Class_env.find_instance st.env ~cls ~tycon:tc.Tycon.name in
      Trace.emit (trace st) (fun () ->
          Trace.Instance_lookup
            { cls; tycon = tc.Tycon.name; found = found <> None; loc });
      match found with
      | None ->
          err ~loc "no instance for '%a %a'" Ident.pp cls (Ty.pp_with 2)
            (Ty.TCon (tc, args))
      | Some inst ->
          let sub =
            List.concat
              (List.mapi
                 (fun i arg ->
                   List.map
                     (fun c -> resolve_dict st penv ~loc c arg)
                     inst.in_context.(i))
                 args)
          in
          Core.apps (Core.Var inst.in_dict) sub)

(** Like {!new_hole}, but for deferral: attach to the {e enclosing} scope
    (the innermost scope on the stack at resolution time). At the very top
    level there is nowhere to defer to, so attempt defaulting directly. *)
and new_hole_deferred st kind ty loc : ph * Core.expr =
  match st.scopes with
  | _ :: _ -> new_hole st kind ty loc
  | [] ->
      (match Ty.prune ty with
       | Ty.TVar v when not (Ty.is_generic v) ->
           if not (try_default st ~loc v) then
             err ~loc "ambiguous overloading at the top level: %a"
               Ty.pp_qualified ty
       | _ -> ());
      let hole = Core.fresh_hole () in
      let ph = { ph_hole = hole; ph_kind = kind; ph_ty = ty; ph_loc = loc } in
      resolve_ph st [] ph;
      (ph, Core.Hole hole)

(** Numeric defaulting: if the variable's context is rooted in [Num], try
    [Int] then [Float]. Returns [true] when the variable was instantiated. *)
and try_default st ~loc (v : Ty.tyvar) : bool =
  st.opts.defaulting
  &&
  match v.Ty.tv_repr with
  | Ty.Link _ -> false
  | Ty.Unbound u ->
      let num = Ident.intern "Num" in
      let numeric =
        Class_env.find_class st.env num <> None
        && List.exists (fun c -> Class_env.implies st.env c num) u.context
      in
      numeric
      &&
      let tr = trace st in
      (* render the qualified variable before trial unification links it *)
      let rendered =
        if Trace.is_on tr then Fmt.str "%a" Ty.pp_qualified (Ty.TVar v) else ""
      in
      let chosen =
        List.find_opt
          (fun candidate ->
            (* trial unification: instantiation links the variable before
               context propagation can fail, so restore its representation
               when a candidate is rejected *)
            let saved = v.Ty.tv_repr in
            try
              Unify.unify st.env ~loc (Ty.TVar v) candidate;
              true
            with Diagnostic.Error _ ->
              v.Ty.tv_repr <- saved;
              false)
          [ Ty.int; Ty.float ]
      in
      Trace.emit tr (fun () ->
          Trace.Defaulting
            { ty = rendered; chosen = Option.map (Fmt.str "%a" Ty.pp) chosen;
              loc });
      chosen <> None

(** Resolve one placeholder (§6.3). *)
and resolve_ph st (penv : param_env) (ph : ph) : unit =
  if ph.ph_hole.hole_fill = None then begin
    (Stats.current ()).holes_resolved <- (Stats.current ()).holes_resolved + 1;
    (* [why] is only forced when a trace sink is attached *)
    let fill ~why e =
      Trace.emit (trace st) (fun () ->
          let via, detail = why () in
          Trace.Placeholder_resolved
            { id = ph.ph_hole.Core.hole_id; via; detail; loc = ph.ph_loc });
      ph.ph_hole.hole_fill <- Some e
    in
    match ph.ph_kind with
    | PhDict cls ->
        let e = resolve_dict st penv ~loc:ph.ph_loc cls ph.ph_ty in
        (* classify after resolution: case 4 defaulting may have just fixed
           the type to a constructor *)
        let why () =
          match Ty.prune ph.ph_ty with
          | Ty.TVar v when Ty.is_generic v ->
              ("dict-parameter", Ident.text cls)
          | Ty.TVar _ -> ("deferred", Ident.text cls)
          | Ty.TCon (tc, _) ->
              ("instance", Ident.text cls ^ " " ^ Ident.text tc.Tycon.name)
        in
        fill ~why e
    | PhMethod mi -> (
        let loc = ph.ph_loc in
        match Ty.prune ph.ph_ty with
        | Ty.TVar v when Ty.is_generic v -> (
            match
              List.find_opt
                (fun (v', c', _) ->
                  v'.Ty.tv_id = v.Ty.tv_id
                  && Class_env.implies st.env c' mi.mi_class)
                penv
            with
            | Some (_, c', p) ->
                fill
                  ~why:(fun () -> ("dict-parameter", Ident.text c'))
                  (Access.method_access st.env st.opts.strategy ~loc ~have:c'
                     ~cls:mi.mi_class ~meth:mi.mi_name (Core.Var p))
            | None ->
                err ~loc
                  "internal: no dictionary parameter supplies method '%a'"
                  Ident.pp mi.mi_name)
        | Ty.TVar v ->
            let u = Ty.unbound_exn v in
            if u.level <= st.level then begin
              let ph', h = new_hole_deferred st ph.ph_kind ph.ph_ty loc in
              ignore ph';
              fill ~why:(fun () -> ("deferred", Ident.text mi.mi_name)) h
            end
            else if try_default st ~loc v then resolve_ph_again st penv ph
            else
              err ~loc
                "ambiguous overloading: cannot choose an instance for method \
                 '%a' at type %a"
                Ident.pp mi.mi_name Ty.pp_qualified (Ty.TVar v)
        | Ty.TCon (tc, args) -> (
            let found =
              Class_env.find_instance st.env ~cls:mi.mi_class
                ~tycon:tc.Tycon.name
            in
            Trace.emit (trace st) (fun () ->
                Trace.Instance_lookup
                  { cls = mi.mi_class; tycon = tc.Tycon.name;
                    found = found <> None; loc });
            match found with
            | None ->
                err ~loc "no instance for '%a %a'" Ident.pp mi.mi_class
                  (Ty.pp_with 2)
                  (Ty.TCon (tc, args))
            | Some inst -> (
                match List.assoc_opt mi.mi_name inst.in_impls with
                | Some (Class_env.User_impl impl) ->
                    (* direct call to the instance function: when the type is
                       known the dictionary is bypassed entirely (§4) *)
                    let sub =
                      List.concat
                        (List.mapi
                           (fun i arg ->
                             List.map
                               (fun c -> resolve_dict st penv ~loc c arg)
                               inst.in_context.(i))
                           args)
                    in
                    fill
                      ~why:(fun () -> ("direct-call", Ident.text impl))
                      (Core.apps (Core.Var impl) sub)
                | Some Class_env.Default_impl ->
                    let dict =
                      resolve_dict st penv ~loc mi.mi_class ph.ph_ty
                    in
                    fill
                      ~why:(fun () ->
                        ( "default-method",
                          Ident.text mi.mi_class ^ "." ^ Ident.text mi.mi_name ))
                      (Core.App
                         ( Core.Var
                             (Class_env.default_name ~cls:mi.mi_class
                                ~meth:mi.mi_name),
                           dict ))
                | None ->
                    err ~loc "instance '%a %a' has no method '%a'" Ident.pp
                      mi.mi_class Ident.pp tc.Tycon.name Ident.pp mi.mi_name)))
    | PhRec _ ->
        (* handled in [infer_group]; anything left here leaked *)
        err ~loc:ph.ph_loc
          "internal: unresolved recursive-call placeholder"
  end

and resolve_ph_again st penv ph =
  (Stats.current ()).holes_resolved <- (Stats.current ()).holes_resolved - 1;
  resolve_ph st penv ph

(* ------------------------------------------------------------------ *)

and infer_group st (venv : venv) (g : Kernel.group) : venv * Core.bind_group =
  let binds = Kernel.binds_of_group g in
  let is_rec = match g with Kernel.KRec _ -> true | Kernel.KNonrec _ -> false in
  st.level <- st.level + 1;
  (* assumed types; signatures give read-only variables in declared order *)
  let assumed =
    List.map
      (fun (b : Kernel.bind) ->
        match b.kb_sig with
        | Some q ->
            let ty, sig_vars = Elaborate.signature st.env ~level:st.level q in
            (b, ty, Some sig_vars)
        | None -> (b, Ty.fresh ~level:st.level (), None))
      binds
  in
  let venv_rec =
    if is_rec then
      List.fold_left
        (fun m (b, ty, _) -> Ident.Map.add b.Kernel.kb_name (Recursive ty) m)
        venv assumed
    else venv
  in
  (* infer each body against its assumed type, collecting placeholders *)
  let inferred =
    List.map
      (fun ((b : Kernel.bind), ty, sig_vars) ->
        push_scope st;
        let t, core = infer_expr st venv_rec b.kb_expr in
        Unify.unify st.env ~loc:b.kb_loc t ty;
        let pending = pop_scope st in
        (b, ty, sig_vars, core, pending))
      assumed
  in
  st.level <- st.level - 1;
  (* ---- generalization (§6.2) ---- *)
  let restricted =
    List.exists (fun (b : Kernel.bind) -> b.kb_restricted) binds
  in
  (* candidate variables: free in some binding's type, born at the inner
     level *)
  let candidates : Ty.tyvar list =
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun (_, ty, _, _, _) ->
        List.filter
          (fun (tv : Ty.tyvar) ->
            match tv.tv_repr with
            | Ty.Unbound u ->
                u.level > st.level
                && u.level <> Ty.generic_level
                &&
                if Hashtbl.mem seen tv.tv_id then false
                else begin
                  Hashtbl.add seen tv.tv_id ();
                  true
                end
            | Ty.Link _ -> false)
          (Ty.free_vars ty))
      inferred
  in
  let sig_var_ids =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (_, _, sig_vars, _, _) ->
        match sig_vars with
        | Some vs -> List.iter (fun (v : Ty.tyvar) -> Hashtbl.add tbl v.tv_id ()) vs
        | None -> ())
      inferred;
    tbl
  in
  let has_context (tv : Ty.tyvar) = (Ty.unbound_exn tv).context <> [] in
  (* monomorphism restriction (§8.7): constrained variables of a restricted
     group are not generalized; they stay in the enclosing level *)
  let generalized, demoted =
    List.partition
      (fun tv ->
        (not restricted) || (not (has_context tv)) || Hashtbl.mem sig_var_ids tv.Ty.tv_id)
      candidates
  in
  List.iter
    (fun (tv : Ty.tyvar) -> (Ty.unbound_exn tv).level <- Ty.generic_level)
    generalized;
  List.iter
    (fun (tv : Ty.tyvar) -> (Ty.unbound_exn tv).level <- st.level)
    demoted;
  (* the group's common context (§8.3): every constrained generalized
     variable, shared by all unsigned members; kept in order of first
     appearance in the group's types, which fixes dictionary order *)
  let ctx_vars = List.filter (fun tv -> has_context tv) generalized in
  (* per-binding schemes *)
  let with_schemes =
    List.map
      (fun ((b : Kernel.bind), ty, sig_vars, core, pending) ->
        let scheme =
          match sig_vars with
          | Some vs -> { Scheme.vars = vs; ty }
          | None ->
              let own =
                List.filter
                  (fun (tv : Ty.tyvar) -> Ty.is_generic tv)
                  (Ty.free_vars ty)
              in
              let in_own (tv : Ty.tyvar) =
                List.exists (fun (o : Ty.tyvar) -> o.tv_id = tv.tv_id) own
              in
              let extra_ctx =
                List.filter (fun tv -> not (in_own tv)) ctx_vars
              in
              if (not restricted) && extra_ctx <> [] then
                Diagnostic.Sink.warn st.sink ~loc:b.kb_loc
                  "'%a' shares the overloading context of its recursive group \
                   but its own type does not determine it; it can only be \
                   called from within the group"
                  Ident.pp b.kb_name;
              let in_ctx (tv : Ty.tyvar) =
                List.exists (fun (o : Ty.tyvar) -> o.tv_id = tv.tv_id) ctx_vars
              in
              let vars =
                if restricted then own
                else ctx_vars @ List.filter (fun tv -> not (in_ctx tv)) own
              in
              { Scheme.vars = vars; ty }
        in
        (b, scheme, core, pending))
      inferred
  in
  (* dictionary parameters + parameter environments (§6.2) *)
  let finished =
    List.map
      (fun ((b : Kernel.bind), (scheme : Scheme.t), core, pending) ->
        let penv : param_env =
          List.concat_map
            (fun (tv : Ty.tyvar) ->
              List.map
                (* the "d$" prefix marks dictionary parameters; the
                   optimizer relies on it to recognize them *)
                (fun c -> (tv, c, Ident.gensym ("d$" ^ Ident.text c)))
                (Ty.unbound_exn tv).context)
            scheme.vars
        in
        (b, scheme, core, pending, penv))
      with_schemes
  in
  let group_schemes =
    List.map (fun (b, s, _, _, _) -> (b.Kernel.kb_name, s)) finished
  in
  (* resolve placeholders (§6.3) *)
  List.iter
    (fun ((_ : Kernel.bind), _, _, pending, penv) ->
      List.iter
        (fun ph ->
          match ph.ph_kind with
          | PhRec x -> (
              match List.assoc_opt x group_schemes with
              | Some (xs : Scheme.t) ->
                  if ph.ph_hole.hole_fill = None then begin
                    (Stats.current ()).holes_resolved <-
                      (Stats.current ()).holes_resolved + 1;
                    let dicts =
                      List.concat_map
                        (fun (tv : Ty.tyvar) ->
                          List.map
                            (fun c ->
                              resolve_dict st penv ~loc:ph.ph_loc c (Ty.TVar tv))
                            (Ty.unbound_exn tv).context)
                        xs.vars
                    in
                    Trace.emit (trace st) (fun () ->
                        Trace.Placeholder_resolved
                          { id = ph.ph_hole.Core.hole_id;
                            via = "recursive-call"; detail = Ident.text x;
                            loc = ph.ph_loc });
                    ph.ph_hole.hole_fill <- Some (Core.apps (Core.Var x) dicts)
                  end
              | None ->
                  (* recursive reference to an outer group: defer *)
                  let _, h = new_hole_deferred st ph.ph_kind ph.ph_ty ph.ph_loc in
                  Trace.emit (trace st) (fun () ->
                      Trace.Placeholder_resolved
                        { id = ph.ph_hole.Core.hole_id; via = "deferred";
                          detail = Ident.text x; loc = ph.ph_loc });
                  ph.ph_hole.hole_fill <- Some h)
          | PhDict _ | PhMethod _ -> resolve_ph st penv ph)
        pending)
    finished;
  (* assemble *)
  let core_binds =
    List.map
      (fun ((b : Kernel.bind), _, core, _, penv) ->
        let params = List.map (fun (_, _, p) -> p) penv in
        { Core.b_name = b.kb_name; b_expr = Core.lam params core })
      finished
  in
  let venv' =
    List.fold_left
      (fun m (name, s) -> Ident.Map.add name (Poly s) m)
      venv group_schemes
  in
  let group =
    match core_binds with
    | [ cb ] when not is_rec -> Core.Nonrec cb
    | _ -> Core.Rec core_binds
  in
  (venv', group)

(* ------------------------------------------------------------------ *)
(* Checking a binding against an externally-supplied signature.        *)
(* Used for instance method implementations and default methods.       *)
(* ------------------------------------------------------------------ *)

(** [check_signature_binding st venv ~name ~q expr] type checks [expr]
    against the qualified type [q] and returns the core binding (with
    dictionary parameters in the order of [q]'s context) and its scheme. *)
and check_signature_binding st (venv : venv) ~(name : Ident.t)
    ~(q : Ast.sqtyp) ~loc (expr : Kernel.expr) : Core.bind * Scheme.t =
  let kb : Kernel.bind =
    { kb_name = name; kb_expr = expr; kb_sig = Some q; kb_restricted = false;
      kb_loc = loc }
  in
  let venv', g = infer_group st venv (Kernel.KNonrec kb) in
  ignore venv';
  match g with
  | Core.Nonrec b | Core.Rec [ b ] ->
      let scheme =
        match Ident.Map.find_opt name venv' with
        | Some (Poly s) -> s
        | _ -> assert false
      in
      (b, scheme)
  | Core.Rec _ -> assert false

(* ------------------------------------------------------------------ *)
(* Top-level driving helpers.                                          *)
(* ------------------------------------------------------------------ *)

(** Resolve everything deferred to the top level (restricted bindings,
    ambiguous literals, ...), applying defaulting. Call once after the whole
    program has been checked. *)
let final_resolve ?(isolate = false) st =
  let pending = pop_scope st in
  let resolve1 ph =
    match ph.ph_kind with
    | PhRec _ ->
        err ~loc:ph.ph_loc "internal: recursive placeholder escaped its group"
    | _ -> (
        (* force defaulting for still-unbound variables *)
        (match Ty.prune ph.ph_ty with
         | Ty.TVar v when not (Ty.is_generic v) ->
             if not (try_default st ~loc:ph.ph_loc v) then
               err ~loc:ph.ph_loc
                 "ambiguous overloading at the top level: %a" Ty.pp_qualified
                 (Ty.TVar v)
         | _ -> ());
        resolve_ph st [] ph)
  in
  List.iter
    (fun ph ->
      if isolate then
        (* each unresolved placeholder (ambiguity, missing instance) is an
           independent diagnostic; the erroneous core is discarded anyway *)
        Diagnostic.guard ~sink:st.sink ~stage:"placeholder resolution"
          ~loc:ph.ph_loc
          ~recover:(fun () -> ())
          (fun () -> resolve1 ph)
      else resolve1 ph)
    pending

(* ------------------------------------------------------------------ *)
(* Fault isolation.                                                    *)
(* ------------------------------------------------------------------ *)

(** The scheme assigned to binders of a failed binding group:
    [forall a. a]. It instantiates to a fresh unconstrained variable at
    every occurrence, so it unifies with anything, generates no
    dictionary placeholders, and never causes a second report. *)
let error_scheme () : Scheme.t =
  let v = Ty.fresh_var ~level:Ty.generic_level () in
  { Scheme.vars = [ v ]; ty = Ty.TVar v }

(** [protect st ~stage ~loc ~recover f] is {!Diagnostic.guard}
    specialized to checker state: on failure the current level and the
    placeholder-scope stack are restored (scopes opened by [f] are
    dropped; placeholders [f] added to surviving scopes — including
    deferrals into enclosing scopes — are removed, since they belong to
    the discarded translation). *)
let protect st ~stage ~loc ~(recover : unit -> 'a) (f : unit -> 'a) : 'a =
  let level = st.level in
  let scopes = st.scopes in
  let lens = List.map (fun r -> List.length !r) scopes in
  let rollback () =
    st.level <- level;
    st.scopes <- scopes;
    (* placeholders are prepended, so drop the newest from each scope *)
    List.iter2
      (fun r n ->
        let rec drop k xs =
          if k <= 0 then xs
          else match xs with [] -> [] | _ :: t -> drop (k - 1) t
        in
        let extra = List.length !r - n in
        if extra > 0 then r := drop extra !r)
      scopes lens
  in
  Diagnostic.guard ~sink:st.sink ~stage ~loc
    ~recover:(fun () ->
      rollback ();
      recover ())
    f
