(** Type inference with integrated dictionary conversion (paper §5–§6).

    One walk over the kernel program produces a core translation:
    overloaded occurrences become placeholders ([Core.Hole]); at
    generalization, dictionary parameters are invented for each
    generalized variable's context (§6.2) and every pending placeholder is
    resolved by the four cases of §6.3 (parameter lookup / instance lookup
    / deferral / defaulting-or-ambiguity). Also implemented here: letrec
    common contexts (§8.3), signatures via read-only variables (§8.6), the
    monomorphism restriction (§8.7) and overloaded integer literals. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Ty = Tc_types.Ty
module Scheme = Tc_types.Scheme
module Class_env = Tc_types.Class_env
module Kernel = Tc_desugar.Kernel
module Core = Tc_core_ir.Core
module Layout = Tc_dicts.Layout

type options = {
  strategy : Layout.strategy;
  overloaded_literals : bool;  (** integer literals as [Num a => a] *)
  defaulting : bool;           (** resolve ambiguous numeric contexts *)
}

val default_options : options

(** Value-environment entries. *)
type entry =
  | Mono of Ty.t           (** lambda / case binders *)
  | Poly of Scheme.t       (** generalized bindings *)
  | Recursive of Ty.t      (** members of the group being checked *)

type venv = entry Ident.Map.t

(** Checker state: the class environment, current level and the stack of
    pending-placeholder scopes. *)
type state

val create_state : ?opts:options -> Class_env.t -> state

(** Open/close a pending-placeholder scope. The caller must push one
    top-level scope before checking and call {!final_resolve} at the end. *)
val push_scope : state -> unit

(** Pop the innermost scope, returning its unresolved placeholders (opaque;
    tooling that only types an expression discards them). *)
type pending

val pop_scope : state -> pending

(** Infer a type and core translation for an expression. *)
val infer_expr : state -> venv -> Kernel.expr -> Ty.t * Core.expr

(** Check one binding group: inference, generalization with dictionary
    parameters, placeholder resolution. Returns the extended environment
    and the translated group. *)
val infer_group : state -> venv -> Kernel.group -> venv * Core.bind_group

(** Check a binding against an externally-supplied qualified type (used for
    instance method implementations and class defaults); the signature's
    context order fixes the dictionary parameters. *)
val check_signature_binding :
  state ->
  venv ->
  name:Ident.t ->
  q:Ast.sqtyp ->
  loc:Loc.t ->
  Kernel.expr ->
  Core.bind * Scheme.t

(** Resolve everything deferred to the top level (restricted bindings,
    ambiguous literals), applying defaulting. With [~isolate:true], each
    placeholder that fails to resolve (ambiguity, missing instance)
    records its own diagnostic in the sink and resolution continues with
    the remaining placeholders. *)
val final_resolve : ?isolate:bool -> state -> unit

(** The scheme assigned to binders of a failed binding group:
    [forall a. a]. Unifies with anything, carries no context, and so
    never produces a second diagnostic downstream. *)
val error_scheme : unit -> Scheme.t

(** [protect st ~stage ~loc ~recover f]: run [f]; when it raises
    {!Tc_support.Diagnostic.Error} (or any unexpected exception, recorded
    as an ICE), record the diagnostic in the state's sink, restore the
    checker's level and placeholder-scope stack to their state before the
    call, and return [recover ()]. The per-binding-group fault-isolation
    boundary. *)
val protect :
  state ->
  stage:string ->
  loc:Loc.t ->
  recover:(unit -> 'a) ->
  (unit -> 'a) ->
  'a
