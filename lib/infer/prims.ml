(** Primitive operations: names and typing schemes.

    Primitives are ordinary variables as far as the type checker is
    concerned; the evaluator interprets them. Their schemes are built
    against a given static environment because several mention [Bool],
    which is an ordinary prelude data type. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Ty = Tc_types.Ty
module Scheme = Tc_types.Scheme
module Tycon = Tc_types.Tycon

let id = Ident.intern

let p_eq_int = id "primEqInt"
let p_eq_float = id "primEqFloat"
let p_eq_char = id "primEqChar"
let p_le_int = id "primLeInt"
let p_le_float = id "primLeFloat"
let p_le_char = id "primLeChar"
let p_add_int = id "primAddInt"
let p_sub_int = id "primSubInt"
let p_mul_int = id "primMulInt"
let p_div_int = id "primDivInt"
let p_mod_int = id "primModInt"
let p_neg_int = id "primNegInt"
let p_add_float = id "primAddFloat"
let p_sub_float = id "primSubFloat"
let p_mul_float = id "primMulFloat"
let p_div_float = id "primDivFloat"
let p_neg_float = id "primNegFloat"
let p_int_to_float = id "primIntToFloat"
let p_int_str = id "primIntStr"
let p_float_str = id "primFloatStr"
let p_str_int = id "primStrInt"     (* parse an Int; run-time error on junk *)
let p_str_float = id "primStrFloat"
let p_chr = id "primChr"
let p_ord = id "primOrd"
let p_error = id "primError"        (* user error: [Char] -> a *)
let p_failure = id "primFailure"    (* internal: literal message -> a *)
let p_force = id "primForce"        (* seq-like: force first arg, return second *)
let p_type_tag = id "primTypeTag"   (* tag-dispatch mode only; not in scope for source programs *)

(** The type of [Bool] in [env]; [Bool] is defined by the prelude. *)
let bool_ty env : Ty.t =
  match Class_env.find_tycon env (id "Bool") with
  | Some tc -> Ty.TCon (tc, [])
  | None ->
      (* allow prelude-less programs that never touch Bool primitives *)
      Ty.TCon (Tycon.make (id "Bool") 0, [])

(** All primitive schemes. *)
let schemes env : (Ident.t * Scheme.t) list =
  let b = bool_ty env in
  let i = Ty.int and f = Ty.float and c = Ty.char in
  let str = Ty.list Ty.char in
  let mono t = Scheme.mono t in
  let poly1 mk =
    let a = Ty.fresh_var ~level:Ty.generic_level () in
    { Scheme.vars = [ a ]; ty = mk (Ty.TVar a) }
  in
  let poly2 mk =
    let a = Ty.fresh_var ~level:Ty.generic_level () in
    let b' = Ty.fresh_var ~level:Ty.generic_level () in
    { Scheme.vars = [ a; b' ]; ty = mk (Ty.TVar a) (Ty.TVar b') }
  in
  [
    (p_eq_int, mono (Ty.arrows [ i; i ] b));
    (p_eq_float, mono (Ty.arrows [ f; f ] b));
    (p_eq_char, mono (Ty.arrows [ c; c ] b));
    (p_le_int, mono (Ty.arrows [ i; i ] b));
    (p_le_float, mono (Ty.arrows [ f; f ] b));
    (p_le_char, mono (Ty.arrows [ c; c ] b));
    (p_add_int, mono (Ty.arrows [ i; i ] i));
    (p_sub_int, mono (Ty.arrows [ i; i ] i));
    (p_mul_int, mono (Ty.arrows [ i; i ] i));
    (p_div_int, mono (Ty.arrows [ i; i ] i));
    (p_mod_int, mono (Ty.arrows [ i; i ] i));
    (p_neg_int, mono (Ty.arrow i i));
    (p_add_float, mono (Ty.arrows [ f; f ] f));
    (p_sub_float, mono (Ty.arrows [ f; f ] f));
    (p_mul_float, mono (Ty.arrows [ f; f ] f));
    (p_div_float, mono (Ty.arrows [ f; f ] f));
    (p_neg_float, mono (Ty.arrow f f));
    (p_int_to_float, mono (Ty.arrow i f));
    (p_int_str, mono (Ty.arrow i str));
    (p_float_str, mono (Ty.arrow f str));
    (p_str_int, mono (Ty.arrow str i));
    (p_str_float, mono (Ty.arrow str f));
    (p_chr, mono (Ty.arrow i c));
    (p_ord, mono (Ty.arrow c i));
    (p_error, poly1 (fun a -> Ty.arrow str a));
    (p_failure, poly2 (fun a b' -> Ty.arrow a b'));
    (p_force, poly2 (fun a b' -> Ty.arrows [ a; b' ] b'));
  ]

let names : Ident.t list =
  [
    p_eq_int; p_eq_float; p_eq_char; p_le_int; p_le_float; p_le_char;
    p_add_int; p_sub_int; p_mul_int; p_div_int; p_mod_int; p_neg_int;
    p_add_float; p_sub_float; p_mul_float; p_div_float; p_neg_float;
    p_int_to_float; p_int_str; p_float_str; p_str_int; p_str_float;
    p_chr; p_ord; p_error; p_failure; p_force; p_type_tag;
  ]
