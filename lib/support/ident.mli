(** Interned identifiers.

    Identifiers are interned so equality and comparison are O(1), and
    generated names (dictionary variables, specialized clones, ...) can be
    minted without collision. *)

type t = {
  id : int;      (** unique stamp *)
  text : string; (** user-visible spelling *)
}

(** [intern s] returns the canonical identifier spelled [s]: two calls with
    the same string yield equal identifiers. *)
val intern : string -> t

(** [gensym base] mints an identifier distinct from every other identifier,
    with a spelling derived from [base]. *)
val gensym : string -> t

(** [snapshot ()] captures the intern table (spelling, stamp pairs,
    sorted) and the stamp counter. Persisted next to marshaled artifacts
    so a later process can {!adopt} the stamps those artifacts embed. *)
val snapshot : unit -> (string * int) list * int

(** [adopt snap] merges a saved {!snapshot} into the live table: every
    saved spelling must either already intern to the same stamp, or be
    new with a stamp above the current counter. Returns [false] (table
    untouched) when the snapshot is incompatible — persisted artifacts
    from that snapshot must then be discarded. On success the counter is
    raised past the snapshot's ceiling. *)
val adopt : (string * int) list * int -> bool

val text : t -> string
val stamp : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Print with the unique stamp (for IR dumps where spellings may repeat). *)
val pp_unique : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
