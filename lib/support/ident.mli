(** Interned identifiers.

    Identifiers are interned so equality and comparison are O(1), and
    generated names (dictionary variables, specialized clones, ...) can be
    minted without collision. *)

type t = {
  id : int;      (** unique stamp *)
  text : string; (** user-visible spelling *)
}

(** [intern s] returns the canonical identifier spelled [s]: two calls with
    the same string yield equal identifiers. *)
val intern : string -> t

(** [gensym base] mints an identifier distinct from every other identifier,
    with a spelling derived from [base]. *)
val gensym : string -> t

val text : t -> string
val stamp : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Print with the unique stamp (for IR dumps where spellings may repeat). *)
val pp_unique : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
