(** Source locations: positions and spans within a named input. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;   (** 1-based column number *)
}

type t = {
  file : string;
  start_pos : pos;
  end_pos : pos;
}

(** The absent location (e.g. for generated code). *)
val none : t

val is_none : t -> bool
val make : file:string -> start_pos:pos -> end_pos:pos -> t
val point : file:string -> line:int -> col:int -> t

(** [merge a b] spans from the start of [a] to the end of [b]. *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A value paired with its source location. *)
type 'a loc = { item : 'a; loc : t }

val mk : loc:t -> 'a -> 'a loc
