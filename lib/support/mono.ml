(** Monotonic clock (see the interface). *)

external now_ns : unit -> int = "mhc_monotonic_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) /. 1e9
