/* Monotonic time for Tc_support.Mono.

   clock_gettime(CLOCK_MONOTONIC) where available, falling back to
   gettimeofday — a fallback that reintroduces wall-clock steps, but
   only on platforms without a monotonic clock at all. The value is
   returned as an immediate OCaml int (nanoseconds since an arbitrary
   origin): 63 bits hold ~292 years of uptime, so no boxing. */

#include <caml/mlvalues.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value mhc_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return Val_long((intnat)tv.tv_sec * 1000000000
                    + (intnat)tv.tv_usec * 1000);
  }
}
