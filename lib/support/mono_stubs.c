/* Monotonic time for Tc_support.Mono.

   clock_gettime(CLOCK_MONOTONIC) where available, falling back to
   gettimeofday — a fallback that reintroduces wall-clock steps, but
   only on platforms without a monotonic clock at all. The value is
   returned as an immediate OCaml int (nanoseconds since an arbitrary
   origin): 63 bits hold ~292 years of uptime, so no boxing. That
   representation requires a 64-bit OCaml — a 31-bit int wraps roughly
   every second, silently corrupting every deadline and latency — so
   32-bit builds are rejected below rather than miscounting time. */

#include <caml/mlvalues.h>
#include <time.h>
#include <sys/time.h>

#ifndef ARCH_SIXTYFOUR
#error "Tc_support.Mono packs nanoseconds into an immediate OCaml int, \
which needs a 64-bit OCaml (a 31-bit int wraps ~every second). Port \
mhc_monotonic_ns to Int64 before building on a 32-bit target."
#endif

CAMLprim value mhc_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return Val_long((intnat)tv.tv_sec * 1000000000
                    + (intnat)tv.tv_usec * 1000);
  }
}
