(** A monotonic clock.

    Wall-clock time ([Unix.gettimeofday]) steps when NTP or an operator
    adjusts the system clock; a deadline armed against it can expire
    every in-flight budget at once (a forward step) or never (a backward
    step), and latencies measured across a step come out negative. Every
    duration in this codebase — budget deadlines, span timings, serve
    latencies, queue ages — therefore measures against this clock
    instead: [CLOCK_MONOTONIC], which only ever advances, at ~1 Hz per
    second, regardless of what the system clock does.

    The origin is arbitrary (boot time on Linux): values are only
    meaningful as differences. Use wall-clock time only for timestamps
    shown to humans. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed origin; never decreases. *)

val now_s : unit -> float
(** {!now_ns} in seconds — a drop-in for [Unix.gettimeofday] callers
    that only ever subtract two readings. *)
