(** Monotonic counters for minting unique integers (type-variable ids,
    placeholder ids, ...). Distinct supplies are independent. *)

type t = { mutable next : int }

let create ?(start = 0) () = { next = start }

let next t =
  let n = t.next in
  t.next <- n + 1;
  n

let peek t = t.next
