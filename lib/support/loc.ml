(** Source locations: positions and spans within a named input. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;   (** 1-based column number *)
}

type t = {
  file : string;
  start_pos : pos;
  end_pos : pos;
}

let none = { file = "<none>"; start_pos = { line = 0; col = 0 }; end_pos = { line = 0; col = 0 } }

let is_none t = t.file = "<none>" && t.start_pos.line = 0

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let point ~file ~line ~col =
  { file; start_pos = { line; col }; end_pos = { line; col } }

(** [merge a b] spans from the start of [a] to the end of [b]. *)
let merge a b =
  if is_none a then b
  else if is_none b then a
  else { a with end_pos = b.end_pos }

let pp ppf t =
  if is_none t then Fmt.string ppf "<unknown location>"
  else if t.start_pos.line = t.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" t.file t.start_pos.line t.start_pos.col t.end_pos.col
  else
    Fmt.pf ppf "%s:%d:%d-%d:%d" t.file t.start_pos.line t.start_pos.col t.end_pos.line
      t.end_pos.col

let to_string t = Fmt.str "%a" pp t

(** A value paired with its source location. *)
type 'a loc = { item : 'a; loc : t }

let mk ~loc item = { item; loc }
