(** Interned identifiers.

    Identifiers are interned so that equality and comparison are O(1) and
    stable, and so generated names (dictionary variables, specialized clones,
    ...) can be minted cheaply without collision. *)

type t = {
  id : int;      (** unique stamp *)
  text : string; (** user-visible spelling *)
}

(* The intern table and stamp counter are process-global (stamps must be
   canonical across every compile, including compiles running on other
   domains in the [Tc_scale.Pool] worker pool), so both are guarded by
   one mutex. The critical sections are a hashtable probe and an
   integer bump; uncontended lock/unlock costs a few nanoseconds. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 512
let counter = ref 0
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let fresh_stamp () =
  incr counter;
  !counter

(** [intern s] returns the canonical identifier spelled [s]. Two calls with
    the same string yield physically equal identifiers, on any domain. *)
let intern text =
  locked @@ fun () ->
  match Hashtbl.find_opt table text with
  | Some id -> id
  | None ->
      let id = { id = fresh_stamp (); text } in
      Hashtbl.add table text id;
      id

(** [gensym base] mints an identifier distinct from every other identifier,
    interned or generated, with a spelling derived from [base]. *)
let gensym base =
  let stamp = locked fresh_stamp in
  { id = stamp; text = Printf.sprintf "%s_%d" base stamp }

let text t = t.text
let stamp t = t.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id
let pp ppf t = Fmt.string ppf t.text

(** Print with the unique stamp; useful when dumping IR where distinct
    identifiers may share a spelling. *)
let pp_unique ppf t = Fmt.pf ppf "%s/%d" t.text t.id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
