(** Interned identifiers.

    Identifiers are interned so that equality and comparison are O(1) and
    stable, and so generated names (dictionary variables, specialized clones,
    ...) can be minted cheaply without collision. *)

type t = {
  id : int;      (** unique stamp *)
  text : string; (** user-visible spelling *)
}

(* The intern table and stamp counter are process-global (stamps must be
   canonical across every compile, including compiles running on other
   domains in the [Tc_scale.Pool] worker pool), so both are guarded by
   one mutex. The critical sections are a hashtable probe and an
   integer bump; uncontended lock/unlock costs a few nanoseconds. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 512
let counter = ref 0
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let fresh_stamp () =
  incr counter;
  !counter

(** [intern s] returns the canonical identifier spelled [s]. Two calls with
    the same string yield physically equal identifiers, on any domain. *)
let intern text =
  locked @@ fun () ->
  match Hashtbl.find_opt table text with
  | Some id -> id
  | None ->
      let id = { id = fresh_stamp (); text } in
      Hashtbl.add table text id;
      id

(** [gensym base] mints an identifier distinct from every other identifier,
    interned or generated, with a spelling derived from [base]. *)
let gensym base =
  let stamp = locked fresh_stamp in
  { id = stamp; text = Printf.sprintf "%s_%d" base stamp }

(* ---- persistence support ---- *)

(* Marshaled artifacts (the scale layer's disk cache) embed identifiers,
   and identifier equality is stamp equality — so bytes written by one
   process are only meaningful to a process whose intern table agrees on
   every shared spelling. [snapshot] captures the table; [adopt] replays
   a saved snapshot into a compatible process (typically at cold start,
   before any compile has interned request-specific names). *)

let snapshot () : (string * int) list * int =
  locked @@ fun () ->
  let pairs = Hashtbl.fold (fun text id acc -> (text, id.id) :: acc) table [] in
  (List.sort compare pairs, !counter)

(** [adopt (pairs, ceiling)] merges a saved snapshot into the live table.
    Compatible iff every saved spelling either already interns to the
    same stamp here, or is new with a stamp above the current counter
    (so it cannot collide with any stamp already minted). On success the
    new spellings are installed and the counter is raised past the
    snapshot's ceiling, so future [gensym]/[intern] stamps stay unique;
    on failure the table is left untouched and the caller must treat the
    persisted bytes as unusable. *)
let adopt ((pairs, ceiling) : (string * int) list * int) : bool =
  locked @@ fun () ->
  let c0 = !counter in
  let compatible =
    List.for_all
      (fun (text, stamp) ->
        match Hashtbl.find_opt table text with
        | Some id -> id.id = stamp
        | None -> stamp > c0)
      pairs
  in
  if compatible then begin
    List.iter
      (fun (text, stamp) ->
        if not (Hashtbl.mem table text) then
          Hashtbl.add table text { id = stamp; text })
      pairs;
    counter := max !counter ceiling
  end;
  compatible

let text t = t.text
let stamp t = t.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id
let pp ppf t = Fmt.string ppf t.text

(** Print with the unique stamp; useful when dumping IR where distinct
    identifiers may share a spelling. *)
let pp_unique ppf t = Fmt.pf ppf "%s/%d" t.text t.id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
