(** Monotonic counters for minting unique integers. Distinct supplies are
    independent. *)

type t

val create : ?start:int -> unit -> t

(** Return the next integer, advancing the supply. *)
val next : t -> int

(** The value [next] would return, without advancing. *)
val peek : t -> int
