(** Compiler diagnostics: located errors and warnings.

    Fatal errors are raised as the {!Error} exception; warnings are
    accumulated in a {!Sink.sink} that callers may inspect or print. *)

type severity = Error | Warning

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  hints : string list;
}

exception Error of t

val make : ?hints:string list -> severity:severity -> loc:Loc.t -> string -> t

(** [errorf ?loc fmt ...] raises {!Error} with a formatted message. *)
val errorf : ?loc:Loc.t -> ?hints:string list -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Warning sink: a mutable accumulator threaded through compilation. *)
module Sink : sig
  type sink

  val create : unit -> sink

  val warn :
    ?hints:string list ->
    sink ->
    loc:Loc.t ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a

  (** Warnings in the order they were issued. *)
  val warnings : sink -> t list
end
