(** Compiler diagnostics: located errors, warnings and internal errors.

    Fail-fast code raises errors as the {!Error} exception; recovery
    boundaries catch it and record the diagnostic in a {!Sink.sink}, so one
    compilation pass can report every independent problem. The [Bug]
    severity marks internal compiler errors (ICEs) produced by stage
    guards from unexpected exceptions. *)

type severity = Error | Warning | Bug

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  hints : string list;
}

exception Error of t

val make : ?hints:string list -> severity:severity -> loc:Loc.t -> string -> t

(** [errorf ?loc fmt ...] raises {!Error} with a formatted message. *)
val errorf : ?loc:Loc.t -> ?hints:string list -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val severity_label : severity -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [Error] or [Bug] (both fail a compile); [Warning] does not. *)
val is_error : t -> bool

(** Total order for display: file, then span, then severity, then message.
    Stable-sorting with this keeps issue order for ties. *)
val compare : t -> t -> int

(** Stable sort by {!compare}. *)
val sort : t list -> t list

(** Convert an unexpected exception into an ICE ([Bug]) diagnostic:
    "internal error in <stage>", carrying the enclosing declaration's
    location when known. *)
val of_exn : stage:string -> loc:Loc.t -> exn -> t

(** Diagnostic sink: a mutable accumulator threaded through compilation.
    Collects warnings and, at recovery boundaries, errors — with a
    configurable cap on recorded errors. *)
module Sink : sig
  type sink

  (** Raised by {!report} when recording an error would exceed the sink's
      error cap. Recovery boundaries must let it propagate. *)
  exception Limit_reached

  (** [create ?max_errors ()] makes a fresh sink. [max_errors <= 0] (the
      default) means unlimited. *)
  val create : ?max_errors:int -> unit -> sink

  val set_max_errors : sink -> int -> unit

  (** Record a diagnostic; raises {!Limit_reached} at the error cap. *)
  val report : sink -> t -> unit

  val error :
    ?hints:string list ->
    sink ->
    loc:Loc.t ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a

  val warn :
    ?hints:string list ->
    sink ->
    loc:Loc.t ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a

  (** All diagnostics in the order they were issued. *)
  val diagnostics : sink -> t list

  (** Warnings only, in issue order. *)
  val warnings : sink -> t list

  (** Errors and bugs only, in issue order. *)
  val errors : sink -> t list

  val error_count : sink -> int
  val has_errors : sink -> bool

  (** Whether any recorded diagnostic is an ICE ([Bug]). *)
  val has_bug : sink -> bool

  (** The first error recorded — what fail-fast compilation would have
      raised. *)
  val first_error : sink -> t option
end

(** [guard ~sink ~stage ~loc ~recover f]: run [f]; on {!Error} record it
    and return [recover ()]; on any other exception (except
    {!Sink.Limit_reached} and [Out_of_memory]) record an ICE for [stage]
    at [loc] and return [recover ()]. The universal recovery boundary. *)
val guard :
  sink:Sink.sink ->
  stage:string ->
  loc:Loc.t ->
  recover:(unit -> 'a) ->
  (unit -> 'a) ->
  'a
