(** Compiler diagnostics: located errors, warnings and internal errors.

    Two reporting disciplines coexist:

    - {e fail-fast}: an error is raised as the {!Error} exception and aborts
      whatever was running. [errorf] below and most checking code work this
      way; external callers that catch {!Error} keep working unchanged.
    - {e accumulating}: a recovery boundary (parser resynchronization,
      per-declaration static analysis, per-binding-group inference, a
      pipeline stage guard) catches {!Error} and records the diagnostic in
      the {!Sink.sink}, then continues with a degraded result, so one pass
      reports every independent problem.

    The [Bug] severity marks internal compiler errors (ICEs): unexpected
    exceptions converted by a stage guard via {!of_exn}. They render as
    "internal error" and drive the distinct exit code of [mhc check]. *)

type severity = Error | Warning | Bug

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  hints : string list;
}

exception Error of t

let make ?(hints = []) ~severity ~loc message = { severity; loc; message; hints }

let errorf ?(loc = Loc.none) ?(hints = []) fmt =
  Format.kasprintf
    (fun message -> raise (Error (make ~hints ~severity:Error ~loc message)))
    fmt

let severity_label : severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Bug -> "internal error"

let pp ppf d =
  let label = severity_label d.severity in
  if Loc.is_none d.loc then Fmt.pf ppf "%s: %s" label d.message
  else Fmt.pf ppf "%a: %s: %s" Loc.pp d.loc label d.message;
  List.iter (fun h -> Fmt.pf ppf "@\n  hint: %s" h) d.hints

let to_string d = Fmt.str "%a" pp d

let is_error d = match d.severity with Error | Bug -> true | Warning -> false

(* Bugs sort before errors before warnings at the same location, so the
   most severe problem at a point leads. *)
let severity_rank : severity -> int = function Bug -> 0 | Error -> 1 | Warning -> 2

(** Total order for display: by file, then span start/end, then severity,
    then message. Unlocated diagnostics sort before located ones of the
    same file (they describe the file as a whole). Use with
    [List.stable_sort] so diagnostics at the same point keep issue order. *)
let compare a b =
  let key d =
    ( d.loc.Loc.file,
      (if Loc.is_none d.loc then 0 else 1),
      d.loc.Loc.start_pos.line,
      d.loc.Loc.start_pos.col,
      d.loc.Loc.end_pos.line,
      d.loc.Loc.end_pos.col,
      severity_rank d.severity )
  in
  let c = Stdlib.compare (key a) (key b) in
  if c <> 0 then c else Stdlib.compare a.message b.message

let sort ds = List.stable_sort compare ds

(** Convert an unexpected exception into an ICE diagnostic: "internal error
    in <stage>", located at the enclosing declaration when known. *)
let of_exn ~stage ~loc (exn : exn) : t =
  let detail =
    match exn with
    | Failure m -> m
    | Invalid_argument m -> "invalid argument: " ^ m
    | Not_found -> "Not_found"
    | Stack_overflow -> "stack overflow"
    | Assert_failure (f, l, c) -> Printf.sprintf "assertion failed at %s:%d:%d" f l c
    | Match_failure (f, l, c) -> Printf.sprintf "match failure at %s:%d:%d" f l c
    | e -> Printexc.to_string e
  in
  make ~severity:Bug ~loc
    ~hints:
      [ "this is a bug in the compiler, not an error in your program" ]
    (Printf.sprintf "internal error in %s: %s" stage detail)

(** Diagnostic sink: a mutable accumulator threaded through compilation.
    Collects warnings and — at recovery boundaries — errors, with a
    configurable cap on the number of errors recorded. *)
module Sink = struct
  type sink = {
    mutable diags : t list;  (* newest first *)
    mutable n_errors : int;  (* errors + bugs recorded *)
    mutable max_errors : int;  (* <= 0 means unlimited *)
  }

  exception Limit_reached

  let create ?(max_errors = 0) () = { diags = []; n_errors = 0; max_errors }

  let set_max_errors sink n = sink.max_errors <- n

  (** Record a diagnostic. Raises {!Limit_reached} when recording an error
      would exceed the sink's cap; recovery boundaries must let that
      exception propagate so the whole run stops. *)
  let report sink (d : t) =
    if is_error d then begin
      if sink.max_errors > 0 && sink.n_errors >= sink.max_errors then
        raise Limit_reached;
      sink.n_errors <- sink.n_errors + 1
    end;
    sink.diags <- d :: sink.diags

  let error ?(hints = []) sink ~loc fmt =
    Format.kasprintf
      (fun message -> report sink (make ~hints ~severity:Error ~loc message))
      fmt

  let warn ?(hints = []) sink ~loc fmt =
    Format.kasprintf
      (fun message -> report sink (make ~hints ~severity:Warning ~loc message))
      fmt

  let diagnostics sink = List.rev sink.diags
  let warnings sink = List.filter (fun d -> d.severity = Warning) (diagnostics sink)
  let errors sink = List.filter is_error (diagnostics sink)
  let error_count sink = sink.n_errors
  let has_errors sink = sink.n_errors > 0
  let has_bug sink = List.exists (fun d -> d.severity = Bug) sink.diags

  (** The first error recorded, in issue order — what fail-fast compilation
      would have raised. *)
  let first_error sink =
    let rec last = function
      | [] -> None
      | [ d ] -> Some d
      | _ :: rest -> last rest
    in
    last (List.filter is_error sink.diags)
end

(** [guard ~sink ~stage ~loc ~recover f] is the universal recovery
    boundary: run [f]; on {!Error} record the diagnostic and return
    [recover ()]; on any other exception (except {!Sink.Limit_reached} and
    [Out_of_memory], which propagate) record an ICE diagnostic for [stage]
    and return [recover ()]. *)
let guard ~sink ~stage ~loc ~(recover : unit -> 'a) (f : unit -> 'a) : 'a =
  try f () with
  | Error d ->
      (* An unlocated diagnostic at least inherits the guard's location,
         so the user learns which declaration it came from. *)
      let d = if Loc.is_none d.loc then { d with loc } else d in
      Sink.report sink d;
      recover ()
  | (Sink.Limit_reached | Out_of_memory) as e -> raise e
  | exn ->
      Sink.report sink (of_exn ~stage ~loc exn);
      recover ()
