(** Compiler diagnostics: located errors and warnings.

    Fatal errors are raised as the {!Error} exception; warnings are
    accumulated in a sink that callers may inspect or print. *)

type severity = Error | Warning

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  hints : string list;
}

exception Error of t

let make ?(hints = []) ~severity ~loc message = { severity; loc; message; hints }

let errorf ?(loc = Loc.none) ?(hints = []) fmt =
  Format.kasprintf
    (fun message -> raise (Error (make ~hints ~severity:Error ~loc message)))
    fmt

let pp ppf d =
  let label = match d.severity with Error -> "error" | Warning -> "warning" in
  if Loc.is_none d.loc then Fmt.pf ppf "%s: %s" label d.message
  else Fmt.pf ppf "%a: %s: %s" Loc.pp d.loc label d.message;
  List.iter (fun h -> Fmt.pf ppf "@\n  hint: %s" h) d.hints

let to_string d = Fmt.str "%a" pp d

(** Warning sink: a mutable accumulator threaded through compilation. *)
module Sink = struct
  type sink = { mutable warnings : t list }

  let create () = { warnings = [] }

  let warn ?(hints = []) sink ~loc fmt =
    Format.kasprintf
      (fun message ->
        sink.warnings <- make ~hints ~severity:Warning ~loc message :: sink.warnings)
      fmt

  let warnings sink = List.rev sink.warnings
end
