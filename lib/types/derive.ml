(** Derived instances (paper §3: "Haskell allows the programmer to use
    derived instances for some of the standard classes like Eq, automatically
    generating appropriate instance definitions").

    Supports deriving [Eq], [Ord] and [Text] for algebraic data types. The
    generated code is ordinary surface syntax (already fixity-resolved, i.e.
    applications rather than operator sequences) and is type checked and
    dictionary-converted like hand-written instances. *)

open Tc_support
module Ast = Tc_syntax.Ast

let v name = Ident.intern name

let evar x = Ast.mk_expr ~loc:Loc.none (Ast.EVar x)
let econ x = Ast.mk_expr ~loc:Loc.none (Ast.ECon x)
let elit l = Ast.mk_expr ~loc:Loc.none (Ast.ELit l)
let pvar x = Ast.mk_pat ~loc:Loc.none (Ast.PVar x)
let pwild = Ast.mk_pat ~loc:Loc.none Ast.PWild
let pcon c args = Ast.mk_pat ~loc:Loc.none (Ast.PCon (c, args))

let app2 f a b = Ast.apply (evar f) [ a; b ]

let etrue = econ (v "True")
let efalse = econ (v "False")

(** Fresh-ish argument variable names; '$' keeps them out of user namespace. *)
let arg_vars prefix n = List.init n (fun i -> v (Printf.sprintf "%s$%d" prefix i))

let unguarded e : Ast.rhs =
  { rhs_body = Ast.Unguarded e; rhs_where = []; rhs_loc = Loc.none }

let equation pats e : Ast.equation = { eq_pats = pats; eq_rhs = unguarded e }

(** The instance head [T a1 ... an] as a source type. *)
let head_of (d : Ast.data_decl) : Ast.styp =
  List.fold_left
    (fun acc p -> Ast.TSApp (acc, Ast.TSVar p))
    (Ast.TSCon d.td_name) d.td_params

(** Context [C a1, ..., C an]. *)
let context_of cls (d : Ast.data_decl) : Ast.spred list =
  List.map
    (fun p -> { Ast.sp_class = cls; sp_ty = Ast.TSVar p; sp_loc = Loc.none })
    d.td_params

let mk_instance cls d body : Ast.inst_decl =
  {
    ti_context = context_of cls d;
    ti_class = cls;
    ti_head = head_of d;
    ti_body = body;
    ti_loc = d.Ast.td_loc;
  }

(* ------------------------------------------------------------------ *)
(* deriving Eq                                                         *)
(* ------------------------------------------------------------------ *)

let derive_eq (d : Ast.data_decl) : Ast.inst_decl =
  let eq = v "==" in
  let con_eq (c : Ast.con_decl) : Ast.decl =
    let n = List.length c.cd_args in
    let xs = arg_vars "x" n and ys = arg_vars "y" n in
    let lhs = pcon c.cd_name (List.map pvar xs)
    and rhs = pcon c.cd_name (List.map pvar ys) in
    let body =
      match List.combine xs ys with
      | [] -> etrue
      | pairs ->
          let comparisons =
            List.map (fun (x, y) -> app2 eq (evar x) (evar y)) pairs
          in
          List.fold_right
            (fun cmp acc ->
              match acc with None -> Some cmp | Some a -> Some (app2 (v "&&") cmp a))
            comparisons None
          |> Option.get
    in
    Ast.DFun (eq, equation [ lhs; rhs ] body, Loc.none)
  in
  let catch_all =
    if List.length d.td_cons > 1 then
      [ Ast.DFun (eq, equation [ pwild; pwild ] efalse, Loc.none) ]
    else []
  in
  mk_instance (v "Eq") d (List.map con_eq d.td_cons @ catch_all)

(* ------------------------------------------------------------------ *)
(* deriving Ord                                                        *)
(* ------------------------------------------------------------------ *)

(** Derived ordering: constructors compare by declaration order, arguments
    lexicographically. Only [<=] is generated; the other comparisons are
    class defaults. *)
let derive_ord (d : Ast.data_decl) : Ast.inst_decl =
  let le = v "<=" in
  let eqs = ref [] in
  let ncons = List.length d.td_cons in
  List.iteri
    (fun i (ci : Ast.con_decl) ->
      let n = List.length ci.cd_args in
      (* same constructor: lexicographic on arguments *)
      let xs = arg_vars "x" n and ys = arg_vars "y" n in
      let rec lex pairs =
        match pairs with
        | [] -> etrue
        | [ (x, y) ] -> app2 le (evar x) (evar y)
        | (x, y) :: rest ->
            (* x < y || (x == y && lex rest) *)
            app2 (v "||")
              (app2 (v "<") (evar x) (evar y))
              (app2 (v "&&") (app2 (v "==") (evar x) (evar y)) (lex rest))
      in
      eqs :=
        Ast.DFun
          ( le,
            equation
              [ pcon ci.cd_name (List.map pvar xs);
                pcon ci.cd_name (List.map pvar ys) ]
              (lex (List.combine xs ys)),
            Loc.none )
        :: !eqs;
      (* different constructors: tag order; one catch-all per left con *)
      if ncons > 1 then begin
        (* Ci _ <= Cj _ for j > i is True; else False.  Encode as: for each
           i, [Ci .. <= y] with y matching any of the later constructors =
           True, and a final catch-all False. *)
        List.iteri
          (fun j (cj : Ast.con_decl) ->
            if j > i then
              eqs :=
                Ast.DFun
                  ( le,
                    equation
                      [ pcon ci.cd_name (List.map (fun _ -> pwild) ci.cd_args);
                        pcon cj.cd_name (List.map (fun _ -> pwild) cj.cd_args) ]
                      etrue,
                    Loc.none )
                :: !eqs)
          d.td_cons
      end)
    d.td_cons;
  let catch_all =
    if ncons > 1 then [ Ast.DFun (le, equation [ pwild; pwild ] efalse, Loc.none) ]
    else []
  in
  mk_instance (v "Ord") d (List.rev !eqs @ catch_all)

(* ------------------------------------------------------------------ *)
(* deriving Text                                                       *)
(* ------------------------------------------------------------------ *)

(** Derived printer: [str (C x1 .. xn) = "(C " ++ str x1 ++ ... ++ ")"],
    without parentheses for nullary constructors. *)
let derive_text (d : Ast.data_decl) : Ast.inst_decl =
  let str = v "str" in
  let con_str (c : Ast.con_decl) : Ast.decl =
    let n = List.length c.cd_args in
    let xs = arg_vars "x" n in
    let name_str = elit (Ast.LString (Ident.text c.cd_name)) in
    let body =
      if n = 0 then name_str
      else
        let pieces =
          List.concat_map
            (fun x -> [ elit (Ast.LString " "); Ast.apply (evar str) [ evar x ] ])
            xs
        in
        let inner =
          List.fold_right
            (fun p acc -> app2 (v "++") p acc)
            (name_str :: pieces)
            (elit (Ast.LString ")"))
        in
        app2 (v "++") (elit (Ast.LString "(")) inner
    in
    Ast.DFun (str, equation [ pcon c.cd_name (List.map pvar xs) ] body, Loc.none)
  in
  mk_instance (v "Text") d (List.map con_str d.td_cons)

(* ------------------------------------------------------------------ *)

let derive (cls : Ident.t) (d : Ast.data_decl) : Ast.inst_decl =
  match Ident.text cls with
  | "Eq" -> derive_eq d
  | "Ord" -> derive_ord d
  | "Text" -> derive_text d
  | s ->
      Diagnostic.errorf ~loc:d.td_loc
        "cannot derive an instance of class '%s' (only Eq, Ord and Text are \
         derivable)"
        s
