(** Derived instances for [Eq], [Ord] and [Text] (paper §3): generate
    ordinary surface-syntax instance declarations from a data declaration,
    type checked like hand-written ones. *)

open Tc_support
module Ast = Tc_syntax.Ast

(** [derive cls d] is the derived instance of [cls] for [d]. Raises
    {!Diagnostic.Error} for a non-derivable class. *)
val derive : Ident.t -> Ast.data_decl -> Ast.inst_decl
