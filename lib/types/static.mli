(** Static analysis (paper §4): collect and validate all top-level type,
    class and instance declarations into a {!Class_env.t}; expand
    [deriving] clauses; return the value-level declarations for the
    type checker. *)

module Ast = Tc_syntax.Ast

type result = {
  env : Class_env.t;
  value_decls : Ast.decl list;
}

(** Process a program's top-level declarations.

    With [fail_fast] (the default), raises {!Tc_support.Diagnostic.Error}
    on duplicate instances, superclass cycles or missing coverage,
    malformed heads, etc. With [~fail_fast:false], each bad declaration's
    error is recorded in the environment's sink, the declaration is
    skipped, and analysis continues with the remaining declarations. *)
val process : ?env:Class_env.t -> ?fail_fast:bool -> Ast.program -> result
