(** Type-checker instrumentation counters (experiments E1/E9). *)

type t = {
  mutable unifications : int;
  mutable var_instantiations : int;
  mutable context_propagations : int;
  mutable context_reductions : int;
  mutable holes_created : int;
  mutable holes_resolved : int;
  mutable schemes_instantiated : int;
}

val create : unit -> t

(** The calling domain's counters, reset per compilation. Domain-local:
    parallel compiles on worker domains each instrument their own
    record. *)
val current : unit -> t

val reset : unit -> unit
val snapshot : unit -> t

(** Name/value pairs in display order (for JSON and tabular output). *)
val pairs : t -> (string * int) list

val pp : Format.formatter -> t -> unit
