(** The static type environment (paper §4).

    Collects everything the type checker needs about top-level declarations:
    type constructors, data constructors, type synonyms, classes (with
    superclasses, methods and default methods) and instances (with their
    contexts and generated dictionary names). *)

open Tc_support
module Ast = Tc_syntax.Ast

(* ------------------------------------------------------------------ *)
(* Records.                                                            *)
(* ------------------------------------------------------------------ *)

type con_info = {
  con_name : Ident.t;
  con_tycon : Tycon.t;
  con_scheme : Scheme.t;     (* forall as. t1 -> ... -> tn -> T as *)
  con_params : Ty.tyvar list; (* the quantified vars, in head order *)
  con_args : Ty.t list;      (* argument types over [con_params] *)
  con_tag : int;             (* position among the tycon's constructors *)
  con_arity : int;
  con_span : int;            (* number of constructors of the tycon *)
}

type method_info = {
  mi_name : Ident.t;
  mi_class : Ident.t;
  mi_index : int;            (* slot among the methods of its class *)
  mi_sig : Ast.sqtyp;        (* declared signature; may add extra context (§8.5) *)
  mi_has_default : bool;
}

type class_info = {
  ci_name : Ident.t;
  ci_var : Ident.t;          (* the class type variable *)
  ci_supers : Ident.t list;  (* direct superclasses *)
  ci_methods : Ident.t list; (* method names, declaration order *)
  ci_defaults : (Ident.t * Ast.fun_bind) list; (* default method bodies *)
  ci_loc : Loc.t;
}

(** How an instance fills a method slot. *)
type impl =
  | User_impl of Ident.t     (* generated global holding the user definition *)
  | Default_impl             (* fall back to the class default (§8.2) *)

type inst_info = {
  in_class : Ident.t;
  in_tycon : Ident.t;
  in_params : Ident.t list;          (* instance head variables a1..an *)
  in_context : Ty.Context.t array;   (* per head variable (paper §4) *)
  in_dict : Ident.t;                 (* generated dictionary name, d$C$T *)
  in_impls : (Ident.t * impl) list;  (* per method, class declaration order *)
  in_body : Ast.decl list;           (* the user's method definitions *)
  in_loc : Loc.t;
}

type t = {
  mutable tycons : Tycon.t Ident.Map.t;
  mutable datacons : con_info Ident.Map.t;
  mutable tycon_cons : Ident.t list Ident.Map.t; (* tycon -> constructor names *)
  mutable synonyms : (Ident.t list * Ast.styp) Ident.Map.t;
  mutable classes : class_info Ident.Map.t;
  mutable methods : method_info Ident.Map.t;
  (* instances: class -> tycon -> info *)
  mutable instances : inst_info Ident.Map.t Ident.Map.t;
  sink : Diagnostic.Sink.sink;
  (* observability: where inference/unification emit trace events. Set by
     the pipeline after construction; [Trace.none] disables tracing. *)
  mutable trace : Tc_obs.Trace.t;
}

(** Builtin data constructors: nil, cons, unit. Tuple constructors are
    registered on demand (see {!tuple_con}). *)
let builtin_datacons () : con_info list =
  let a = Ty.fresh_var ~level:Ty.generic_level () in
  let list_a = Ty.list (Ty.TVar a) in
  let nil =
    {
      con_name = Ident.intern "[]";
      con_tycon = Tycon.list;
      con_scheme = { Scheme.vars = [ a ]; ty = list_a };
      con_params = [ a ];
      con_args = [];
      con_tag = 0;
      con_arity = 0;
      con_span = 2;
    }
  in
  let cons =
    {
      con_name = Ident.intern ":";
      con_tycon = Tycon.list;
      con_scheme =
        { Scheme.vars = [ a ]; ty = Ty.arrows [ Ty.TVar a; list_a ] list_a };
      con_params = [ a ];
      con_args = [ Ty.TVar a; list_a ];
      con_tag = 1;
      con_arity = 2;
      con_span = 2;
    }
  in
  let unit =
    {
      con_name = Ident.intern "()";
      con_tycon = Tycon.unit;
      con_scheme = { Scheme.vars = []; ty = Ty.unit };
      con_params = [];
      con_args = [];
      con_tag = 0;
      con_arity = 0;
      con_span = 1;
    }
  in
  [ nil; cons; unit ]

let create ?(sink = Diagnostic.Sink.create ()) () =
  let tycons =
    List.fold_left
      (fun m (tc : Tycon.t) -> Ident.Map.add tc.name tc m)
      Ident.Map.empty Tycon.builtins
  in
  let datacons =
    List.fold_left
      (fun m (ci : con_info) -> Ident.Map.add ci.con_name ci m)
      Ident.Map.empty (builtin_datacons ())
  in
  {
    tycons;
    datacons;
    tycon_cons =
      Ident.Map.of_list
        [
          (Tycon.list.Tycon.name, [ Ident.intern "[]"; Ident.intern ":" ]);
          (Tycon.unit.Tycon.name, [ Ident.intern "()" ]);
        ];
    synonyms = Ident.Map.empty;
    classes = Ident.Map.empty;
    methods = Ident.Map.empty;
    instances = Ident.Map.empty;
    sink;
    trace = Tc_obs.Trace.none;
  }

(** The constructor of the [n]-tuple, registered on first use. *)
let tuple_con env n : con_info =
  if n < 2 then invalid_arg "Class_env.tuple_con";
  let tc = Tycon.tuple n in
  match Ident.Map.find_opt tc.Tycon.name env.datacons with
  | Some ci -> ci
  | None ->
      let params = List.init n (fun _ -> Ty.fresh_var ~level:Ty.generic_level ()) in
      let args = List.map (fun tv -> Ty.TVar tv) params in
      let result = Ty.TCon (tc, args) in
      let ci =
        {
          con_name = tc.Tycon.name;
          con_tycon = tc;
          con_scheme = { Scheme.vars = params; ty = Ty.arrows args result };
          con_params = params;
          con_args = args;
          con_tag = 0;
          con_arity = n;
          con_span = 1;
        }
      in
      env.datacons <- Ident.Map.add tc.Tycon.name ci env.datacons;
      env.tycon_cons <- Ident.Map.add tc.Tycon.name [ tc.Tycon.name ] env.tycon_cons;
      (if not (Ident.Map.mem tc.Tycon.name env.tycons) then
         env.tycons <- Ident.Map.add tc.Tycon.name tc env.tycons);
      ci

(* ------------------------------------------------------------------ *)
(* Lookup.                                                             *)
(* ------------------------------------------------------------------ *)

let find_tycon env name = Ident.Map.find_opt name env.tycons
let find_datacon env name = Ident.Map.find_opt name env.datacons
let find_synonym env name = Ident.Map.find_opt name env.synonyms
let find_class env name = Ident.Map.find_opt name env.classes
let find_method env name = Ident.Map.find_opt name env.methods

let class_exn env ?(loc = Loc.none) name =
  match find_class env name with
  | Some c -> c
  | None -> Diagnostic.errorf ~loc "unknown class '%a'" Ident.pp name

let constructors_of env tycon_name =
  match Ident.Map.find_opt tycon_name env.tycon_cons with
  | Some cs -> cs
  | None -> []

let find_instance env ~cls ~tycon : inst_info option =
  match Ident.Map.find_opt cls env.instances with
  | None -> None
  | Some by_tycon -> Ident.Map.find_opt tycon by_tycon

let all_instances env : inst_info list =
  Ident.Map.fold
    (fun _ by_tycon acc -> Ident.Map.fold (fun _ i acc -> i :: acc) by_tycon acc)
    env.instances []

let all_classes env : class_info list =
  Ident.Map.fold (fun _ c acc -> c :: acc) env.classes []

(* ------------------------------------------------------------------ *)
(* Superclass relation (§8.1).                                         *)
(* ------------------------------------------------------------------ *)

(** All strict superclasses of [c], transitively. *)
let supers_closure env c : Ident.t list =
  let seen = ref Ident.Set.empty in
  let rec go c =
    match find_class env c with
    | None -> ()
    | Some ci ->
        List.iter
          (fun s ->
            if not (Ident.Set.mem s !seen) then begin
              seen := Ident.Set.add s !seen;
              go s
            end)
          ci.ci_supers
  in
  go c;
  Ident.Set.elements !seen

(** [implies env c c'] holds when a [c] dictionary can supply a [c']
    dictionary: [c = c'] or [c'] is a (transitive) superclass of [c]. *)
let implies env c c' =
  Ident.equal c c' || List.exists (Ident.equal c') (supers_closure env c)

(** Remove classes implied by other members of the context (superclass
    absorption, §8.1): [(Num a, Eq a)] becomes [Num a]. *)
let reduce_context env (ctx : Ty.Context.t) : Ty.Context.t =
  List.filter
    (fun c ->
      not
        (List.exists (fun c' -> (not (Ident.equal c c')) && implies env c' c) ctx))
    ctx

(** Add a class to a context, keeping it superclass-reduced. *)
let context_add env (ctx : Ty.Context.t) c : Ty.Context.t =
  if List.exists (fun c' -> implies env c' c) ctx then ctx
  else reduce_context env (Ty.Context.add c ctx)

let context_union env a b = List.fold_left (context_add env) b a

(* ------------------------------------------------------------------ *)
(* Generated names.                                                    *)
(* ------------------------------------------------------------------ *)

(* '$' cannot appear in source identifiers, so generated names are fresh. *)

let tycon_label (name : Ident.t) =
  (* bracket-free label for list/tuple/unit tycons *)
  match Ident.text name with
  | "[]" -> "List"
  | "()" -> "Unit"
  | "->" -> "Fun"
  | s when String.length s >= 3 && s.[0] = '(' && s.[1] = ',' ->
      Printf.sprintf "Tup%d" (String.length s - 1)
  | s -> s

let dict_name ~cls ~tycon =
  Ident.intern (Printf.sprintf "d$%s$%s" (Ident.text cls) (tycon_label tycon))

let impl_name ~cls ~tycon ~meth =
  Ident.intern
    (Printf.sprintf "m$%s$%s$%s" (Ident.text cls) (tycon_label tycon)
       (Ident.text meth))

let default_name ~cls ~meth =
  Ident.intern (Printf.sprintf "def$%s$%s" (Ident.text cls) (Ident.text meth))
