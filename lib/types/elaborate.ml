(** Elaboration of source types ({!Tc_syntax.Ast.styp}) into internal types.

    Performs kind (saturation) checking, type-synonym expansion, and scoping
    of source type variables. Signature elaboration creates *read-only*
    variables carrying the declared context (§8.6). *)

open Tc_support
module Ast = Tc_syntax.Ast

(** Scope of source type variables during elaboration. *)
type scope = (Ident.t, Ty.tyvar) Hashtbl.t

let new_scope () : scope = Hashtbl.create 8

let lookup_var (scope : scope) ~level ~read_only v =
  match Hashtbl.find_opt scope v with
  | Some tv -> tv
  | None ->
      let tv = Ty.fresh_var ~read_only ~level () in
      Hashtbl.add scope v tv;
      tv

let max_synonym_depth = 100

(** [elaborate env scope ~level ~read_only styp] converts a source type.
    Unknown type variables are created in [scope] with the given flags. *)
let rec elaborate env (scope : scope) ~level ~read_only (t : Ast.styp) : Ty.t =
  elab ~depth:0 env scope ~level ~read_only t

and elab ~depth env scope ~level ~read_only (t : Ast.styp) : Ty.t =
  if depth > max_synonym_depth then
    Diagnostic.errorf "type synonym expansion too deep (cyclic synonym?)";
  let recur = elab ~depth env scope ~level ~read_only in
  match t with
  | Ast.TSVar v -> Ty.TVar (lookup_var scope ~level ~read_only v)
  | Ast.TSFun (a, b) -> Ty.arrow (recur a) (recur b)
  | Ast.TSList a -> Ty.list (recur a)
  | Ast.TSTuple ts -> Ty.tuple (List.map recur ts)
  | Ast.TSCon _ | Ast.TSApp _ ->
      let head, args = flatten t [] in
      apply_con ~depth env scope ~level ~read_only head args

and flatten t args =
  match t with
  | Ast.TSApp (f, a) -> flatten f (a :: args)
  | _ -> (t, args)

and apply_con ~depth env scope ~level ~read_only head args =
  let recur = elab ~depth env scope ~level ~read_only in
  match head with
  | Ast.TSCon name -> (
      match Class_env.find_synonym env name with
      | Some (params, body) ->
          let n_expected = List.length params and n_given = List.length args in
          if n_expected <> n_given then
            Diagnostic.errorf
              "type synonym '%a' expects %d argument(s) but is given %d"
              Ident.pp name n_expected n_given;
          (* substitute source-level, then continue elaborating *)
          let subst =
            List.combine params args
          in
          elab ~depth:(depth + 1) env scope ~level ~read_only
            (subst_styp subst body)
      | None -> (
          match Class_env.find_tycon env name with
          | None -> Diagnostic.errorf "unknown type constructor '%a'" Ident.pp name
          | Some tc ->
              if tc.Tycon.arity <> List.length args then
                Diagnostic.errorf
                  "type constructor '%a' has kind %a but is applied to %d \
                   argument(s)"
                  Ident.pp name Kind.pp (Tycon.kind tc) (List.length args);
              Ty.TCon (tc, List.map recur args)))
  | Ast.TSVar v ->
      if args = [] then Ty.TVar (lookup_var scope ~level ~read_only v)
      else
        Diagnostic.errorf
          "type variable '%a' is applied to arguments: higher-kinded type \
           variables are not supported"
          Ident.pp v
  | _ ->
      (* [[t] u] or [(a,b) u]: structurally impossible to apply *)
      Diagnostic.errorf "ill-kinded type application"

and subst_styp subst (t : Ast.styp) : Ast.styp =
  match t with
  | Ast.TSVar v -> (
      match List.find_opt (fun (p, _) -> Ident.equal p v) subst with
      | Some (_, replacement) -> replacement
      | None -> t)
  | Ast.TSCon _ -> t
  | Ast.TSApp (f, a) -> Ast.TSApp (subst_styp subst f, subst_styp subst a)
  | Ast.TSFun (a, b) -> Ast.TSFun (subst_styp subst a, subst_styp subst b)
  | Ast.TSList a -> Ast.TSList (subst_styp subst a)
  | Ast.TSTuple ts -> Ast.TSTuple (List.map (subst_styp subst) ts)

(** Apply the context of a qualified type to the variables in [scope].
    Every predicate must constrain a type variable. *)
let apply_context env (scope : scope) ~level ~read_only (preds : Ast.spred list) :
    unit =
  List.iter
    (fun (p : Ast.spred) ->
      (match Class_env.find_class env p.sp_class with
       | Some _ -> ()
       | None ->
           Diagnostic.errorf ~loc:p.sp_loc "unknown class '%a'" Ident.pp
             p.sp_class);
      match p.sp_ty with
      | Ast.TSVar v ->
          let tv = lookup_var scope ~level ~read_only v in
          let u = Ty.unbound_exn tv in
          u.context <- Class_env.context_add env u.context p.sp_class
      | _ ->
          Diagnostic.errorf ~loc:p.sp_loc
            "class constraints must apply to type variables")
    preds

(** Elaborate a user signature: context applied to read-only variables.
    Returns the type and the signature's variables in context-declaration
    order then first-occurrence order (fixing dictionary order, §8.6). *)
let rec signature env ~level (q : Ast.sqtyp) : Ty.t * Ty.tyvar list =
  (* attach the signature's own location to otherwise location-less
     elaboration errors (unknown constructors, kind errors, ...) *)
  try signature_inner env ~level q
  with Diagnostic.Error d when Loc.is_none d.loc ->
    raise (Diagnostic.Error { d with loc = q.sq_loc })

and signature_inner env ~level (q : Ast.sqtyp) : Ty.t * Ty.tyvar list =
  let scope = new_scope () in
  (* Seed variables in the order they appear in the context, so the
     declared context fixes dictionary parameter order. *)
  List.iter
    (fun (p : Ast.spred) ->
      match p.sp_ty with
      | Ast.TSVar v -> ignore (lookup_var scope ~level ~read_only:true v)
      | _ -> ())
    q.sq_context;
  let order = ref [] in
  let seen = Hashtbl.create 8 in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      order := v :: !order
    end
  in
  List.iter
    (fun (p : Ast.spred) ->
      match p.sp_ty with Ast.TSVar v -> note v | _ -> ())
    q.sq_context;
  let rec note_vars (t : Ast.styp) =
    match t with
    | Ast.TSVar v -> note v
    | Ast.TSCon _ -> ()
    | Ast.TSApp (a, b) | Ast.TSFun (a, b) ->
        note_vars a;
        note_vars b
    | Ast.TSList a -> note_vars a
    | Ast.TSTuple ts -> List.iter note_vars ts
  in
  note_vars q.sq_ty;
  let ty = elaborate env scope ~level ~read_only:true q.sq_ty in
  apply_context env scope ~level ~read_only:true q.sq_context;
  (* [!order] is the reverse of encounter order, so [rev_map] restores it. *)
  let vars =
    List.rev_map
      (fun v ->
        match Hashtbl.find_opt scope v with
        | Some tv -> tv
        | None -> lookup_var scope ~level ~read_only:true v)
      !order
  in
  (ty, vars)
