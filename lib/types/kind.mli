(** Kinds. MiniHaskell is first-order (type constructors are always
    saturated, variables have kind [*]), so kinds only record constructor
    arity — but keep the arrow structure so they print familiarly. *)

type t =
  | Star
  | Arrow of t * t

(** [of_arity n] is [* -> ... -> *] with [n] arrows. *)
val of_arity : int -> t

val arity : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
