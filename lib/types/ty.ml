(** Types with mutable unification variables.

    Following the paper (§5), every uninstantiated type variable carries a
    *context*: the set of classes its eventual instantiation must belong to.
    Unification instantiates variables and propagates their contexts; see
    {!Unify}. Variables also carry:

    - a [level] for efficient let-generalization (variables born inside the
      binding being generalized have a higher level than the environment);
      generalized variables get [generic_level];
    - a [read_only] flag implementing §8.6 user-supplied signatures: a
      read-only variable refuses instantiation and context growth. *)

open Tc_support

type t =
  | TVar of tyvar
  | TCon of Tycon.t * t list  (* always saturated *)

and tyvar = { tv_id : int; mutable tv_repr : repr }

and repr =
  | Unbound of unbound
  | Link of t

and unbound = {
  mutable level : int;
  mutable context : Ident.t list;  (* sorted, duplicate-free class names *)
  read_only : bool;
}

let generic_level = max_int

let tyvar_supply = Supply.create ~start:1 ()

let fresh_var ?(context = []) ?(read_only = false) ~level () =
  { tv_id = Supply.next tyvar_supply; tv_repr = Unbound { level; context; read_only } }

let fresh ?context ?read_only ~level () = TVar (fresh_var ?context ?read_only ~level ())

(* ------------------------------------------------------------------ *)
(* Context sets: sorted ident lists.                                   *)
(* ------------------------------------------------------------------ *)

module Context = struct
  type t = Ident.t list

  let empty : t = []
  let singleton c : t = [ c ]

  let rec add c = function
    | [] -> [ c ]
    | c' :: rest as l ->
        let cmp = Ident.compare c c' in
        if cmp = 0 then l else if cmp < 0 then c :: l else c' :: add c rest

  let union a b = List.fold_left (fun acc c -> add c acc) b a
  let mem c (l : t) = List.exists (Ident.equal c) l
  let of_list l = List.fold_left (fun acc c -> add c acc) empty l
  let pp ppf (l : t) = Fmt.list ~sep:(Fmt.any ", ") Ident.pp ppf l
end

(* ------------------------------------------------------------------ *)
(* Structure helpers.                                                  *)
(* ------------------------------------------------------------------ *)

(** Follow [Link]s until reaching an unbound variable or a constructor.
    Performs path compression. *)
let rec prune (t : t) : t =
  match t with
  | TVar ({ tv_repr = Link inner; _ } as tv) ->
      let r = prune inner in
      tv.tv_repr <- Link r;
      r
  | _ -> t

(** The unbound payload of a pruned [TVar]; fails on links. *)
let unbound_exn tv =
  match tv.tv_repr with
  | Unbound u -> u
  | Link _ -> invalid_arg "Ty.unbound_exn: variable is bound"

let is_generic tv =
  match tv.tv_repr with Unbound u -> u.level = generic_level | Link _ -> false

(* Constructors for common types. *)

let int = TCon (Tycon.int, [])
let float = TCon (Tycon.float, [])
let char = TCon (Tycon.char, [])
let unit = TCon (Tycon.unit, [])
let arrow a b = TCon (Tycon.arrow, [ a; b ])
let list t = TCon (Tycon.list, [ t ])

let tuple ts =
  match ts with
  | [] -> unit
  | [ t ] -> t
  | _ -> TCon (Tycon.tuple (List.length ts), ts)

let arrows args res = List.fold_right arrow args res

(** Split [a -> b -> ... -> r] into ([a; b; ...], [r]). *)
let rec unfold_arrow t =
  match prune t with
  | TCon (tc, [ a; b ]) when Tycon.is_arrow tc ->
      let args, res = unfold_arrow b in
      (a :: args, res)
  | t -> ([], t)

(** Free (unbound) type variables, in first-occurrence order. *)
let free_vars (t : t) : tyvar list =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go t =
    match prune t with
    | TVar tv ->
        if not (Hashtbl.mem seen tv.tv_id) then begin
          Hashtbl.add seen tv.tv_id ();
          acc := tv :: !acc
        end
    | TCon (_, args) -> List.iter go args
  in
  go t;
  List.rev !acc

(** Does [tv] occur (unbound) in [t]? *)
let occurs tv t =
  let rec go t =
    match prune t with
    | TVar tv' -> tv'.tv_id = tv.tv_id
    | TCon (_, args) -> List.exists go args
  in
  go t

(* ------------------------------------------------------------------ *)
(* Pretty printing.                                                    *)
(* ------------------------------------------------------------------ *)

(** Naming of type variables for display: 'a', 'b', ... assigned in order of
    appearance; a shared namer lets a qualified type's context and body agree. *)
module Namer = struct
  type nonrec t = (int, string) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let name (n : t) tv =
    match Hashtbl.find_opt n tv.tv_id with
    | Some s -> s
    | None ->
        let i = Hashtbl.length n in
        let s =
          if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
          else Printf.sprintf "t%d" i
        in
        Hashtbl.add n tv.tv_id s;
        s
end

let rec pp_with ?(namer : Namer.t option) prec ppf t =
  let namer = match namer with Some n -> n | None -> Namer.create () in
  let rec go prec ppf t =
    match prune t with
    | TVar tv -> Fmt.string ppf (Namer.name namer tv)
    | TCon (tc, [ a; b ]) when Tycon.is_arrow tc ->
        let doc ppf () = Fmt.pf ppf "%a -> %a" (go 1) a (go 0) b in
        if prec >= 1 then Fmt.parens doc ppf () else doc ppf ()
    | TCon (tc, [ a ]) when Tycon.is_list tc -> Fmt.pf ppf "[%a]" (go 0) a
    | TCon (tc, args) when Tycon.is_tuple tc ->
        Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") (go 0)) args
    | TCon (tc, []) -> Tycon.pp ppf tc
    | TCon (tc, args) ->
        let doc ppf () =
          Fmt.pf ppf "%a %a" Tycon.pp tc
            (Fmt.list ~sep:(Fmt.any " ") (go 2))
            args
        in
        if prec >= 2 then Fmt.parens doc ppf () else doc ppf ()
  in
  go prec ppf t

and pp ppf t = pp_with 0 ppf t

let to_string t = Fmt.str "%a" pp t

(** Render a type together with the contexts attached to its variables, e.g.
    ["(Eq a, Num b) => a -> b"]. This is how inferred types are reported. *)
let pp_qualified ppf t =
  let namer = Namer.create () in
  let vars = free_vars t in
  let preds =
    List.concat_map
      (fun tv ->
        match tv.tv_repr with
        | Unbound u -> List.map (fun c -> (c, tv)) u.context
        | Link _ -> [])
      vars
  in
  (* name variables in order of appearance first *)
  List.iter (fun tv -> ignore (Namer.name namer tv)) vars;
  (match preds with
   | [] -> ()
   | [ (c, tv) ] -> Fmt.pf ppf "%a %s => " Ident.pp c (Namer.name namer tv)
   | _ ->
       Fmt.pf ppf "(%a) => "
         (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (c, tv) ->
              Fmt.pf ppf "%a %s" Ident.pp c (Namer.name namer tv)))
         preds);
  pp_with ~namer 0 ppf t

let to_string_qualified t = Fmt.str "%a" pp_qualified t
