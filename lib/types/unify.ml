(** Unification with class-context propagation (paper §5).

    The only change relative to ML unification: when a type variable is
    instantiated, its context must be passed on to the instantiated value.
    Another variable absorbs the context by set union; a type constructor
    triggers *context reduction*, which consults the instance declarations
    and propagates the instance's context to the constructor's arguments —
    failing with "no instance" if the constructor does not belong to the
    class.

    Read-only variables (from user signatures, §8.6) refuse instantiation
    and context growth beyond what their declared context implies. *)

open Tc_support

let type_error ~loc t1 t2 reason =
  let namer = Ty.Namer.create () in
  Diagnostic.errorf ~loc "type mismatch: cannot unify '%a' with '%a'%s"
    (Ty.pp_with ~namer 0) t1 (Ty.pp_with ~namer 0) t2
    (if reason = "" then "" else ": " ^ reason)

(** Occurs check and level adjustment in one walk: every unbound variable in
    [t] must end up at a level no greater than [tv]'s. *)
let occurs_adjust ~loc (tv : Ty.tyvar) level whole =
  let rec go t =
    match Ty.prune t with
    | Ty.TVar tv' ->
        if tv'.tv_id = tv.tv_id then begin
          let namer = Ty.Namer.create () in
          Diagnostic.errorf ~loc
            "occurs check failed: cannot construct the infinite type %a ~ %a"
            (Ty.pp_with ~namer 0) (Ty.TVar tv) (Ty.pp_with ~namer 0) whole
        end;
        let u = Ty.unbound_exn tv' in
        if u.level > level then u.level <- level
    | Ty.TCon (_, args) -> List.iter go args
  in
  go whole

(** Propagate [classes] onto type [t] (the paper's [propagateClasses]). *)
let rec propagate_classes env ~loc (classes : Ty.Context.t) (t : Ty.t) : unit =
  if classes <> [] then begin
    (Stats.current ()).context_propagations <-
      (Stats.current ()).context_propagations + 1;
    match Ty.prune t with
    | Ty.TVar tv ->
        let u = Ty.unbound_exn tv in
        if u.read_only then
          List.iter
            (fun c ->
              if not (List.exists (fun c' -> Class_env.implies env c' c) u.context)
              then
                Diagnostic.errorf ~loc
                  "the signature is too general: it does not allow the \
                   required constraint '%a %a'"
                  Ident.pp c Ty.pp t)
            classes
        else u.context <- Class_env.context_union env classes u.context
    | Ty.TCon (tc, args) ->
        List.iter (fun c -> propagate_class_tycon env ~loc c tc args) classes
  end

(** Context reduction at a constructor (the paper's [propagateClassTycon]). *)
and propagate_class_tycon env ~loc c (tc : Tycon.t) args =
  (Stats.current ()).context_reductions <- (Stats.current ()).context_reductions + 1;
  Tc_obs.Trace.emit env.Class_env.trace (fun () ->
      Tc_obs.Trace.Context_reduction
        { cls = c; ty = Fmt.str "%a" (Ty.pp_with 2) (Ty.TCon (tc, args)); loc });
  match Class_env.find_instance env ~cls:c ~tycon:tc.Tycon.name with
  | None ->
      Diagnostic.errorf ~loc "no instance for '%a %a'" Ident.pp c
        (Ty.pp_with 2)
        (Ty.TCon (tc, args))
  | Some inst ->
      List.iteri
        (fun i arg -> propagate_classes env ~loc inst.Class_env.in_context.(i) arg)
        args

(** Instantiate the unbound variable [tv] to [t] (the paper's
    [instantiateTyvar]). *)
let instantiate_tyvar env ~loc (tv : Ty.tyvar) (t : Ty.t) : unit =
  (Stats.current ()).var_instantiations <- (Stats.current ()).var_instantiations + 1;
  let u = Ty.unbound_exn tv in
  if u.level = Ty.generic_level then
    invalid_arg "Unify: attempt to unify a generic (quantified) variable";
  if u.read_only then
    type_error ~loc (Ty.TVar tv) t
      "a rigid variable from a type signature cannot be instantiated";
  occurs_adjust ~loc tv u.level t;
  tv.tv_repr <- Link t;
  propagate_classes env ~loc u.context t

let rec unify env ~loc (t1 : Ty.t) (t2 : Ty.t) : unit =
  (Stats.current ()).unifications <- (Stats.current ()).unifications + 1;
  let t1 = Ty.prune t1 and t2 = Ty.prune t2 in
  match (t1, t2) with
  | Ty.TVar a, Ty.TVar b when a.tv_id = b.tv_id -> ()
  | Ty.TVar a, Ty.TVar b -> (
      (* Prefer instantiating the non-read-only side; keep the older
         (lower-level) variable when both are flexible. *)
      let ua = Ty.unbound_exn a and ub = Ty.unbound_exn b in
      match (ua.read_only, ub.read_only) with
      | true, true ->
          type_error ~loc t1 t2 "two distinct rigid signature variables"
      | true, false -> instantiate_tyvar env ~loc b t1
      | false, true -> instantiate_tyvar env ~loc a t2
      | false, false ->
          if ua.level <= ub.level then instantiate_tyvar env ~loc b t1
          else instantiate_tyvar env ~loc a t2)
  | Ty.TVar a, t | t, Ty.TVar a -> instantiate_tyvar env ~loc a t
  | Ty.TCon (tc1, args1), Ty.TCon (tc2, args2) ->
      if not (Tycon.equal tc1 tc2) then type_error ~loc t1 t2 "";
      List.iter2 (unify env ~loc) args1 args2

(** Convenience: require [t] to be a function type, returning domain and
    codomain (unifying with [a -> b] for fresh [a], [b] if needed). *)
let as_arrow env ~loc ~level t =
  match Ty.prune t with
  | Ty.TCon (tc, [ a; b ]) when Tycon.is_arrow tc -> (a, b)
  | t ->
      let a = Ty.fresh ~level () and b = Ty.fresh ~level () in
      unify env ~loc t (Ty.arrow a b);
      (a, b)
