(** Elaboration of source types into internal types: kind (saturation)
    checking, type-synonym expansion, and scoping of source type variables.
    Signatures create {e read-only} variables carrying the declared context
    (§8.6). *)

open Tc_support
module Ast = Tc_syntax.Ast

(** Scope of source type variables during elaboration. *)
type scope = (Ident.t, Ty.tyvar) Hashtbl.t

val new_scope : unit -> scope

(** Find or create the variable for a source type-variable name. *)
val lookup_var : scope -> level:int -> read_only:bool -> Ident.t -> Ty.tyvar

(** Convert a source type; unknown variables are created in [scope]. *)
val elaborate :
  Class_env.t -> scope -> level:int -> read_only:bool -> Ast.styp -> Ty.t

(** Source-level substitution of type variables (used for instance method
    signatures). *)
val subst_styp : (Ident.t * Ast.styp) list -> Ast.styp -> Ast.styp

(** Attach a qualified type's context to the variables in scope. *)
val apply_context :
  Class_env.t -> scope -> level:int -> read_only:bool -> Ast.spred list -> unit

(** Elaborate a user signature: read-only variables with the declared
    context; the returned variables are ordered context-first, fixing
    dictionary order (§8.6). *)
val signature : Class_env.t -> level:int -> Ast.sqtyp -> Ty.t * Ty.tyvar list
