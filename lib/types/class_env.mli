(** The static type environment (paper §4): type constructors, data
    constructors, type synonyms, classes (superclasses, methods, defaults)
    and instances (per-argument contexts and generated dictionary names).

    Populated by {!Static.process}; the record fields are mutable so the
    environment can be extended in passes. *)

open Tc_support
module Ast = Tc_syntax.Ast

type con_info = {
  con_name : Ident.t;
  con_tycon : Tycon.t;
  con_scheme : Scheme.t;      (** forall as. t1 -> ... -> tn -> T as *)
  con_params : Ty.tyvar list; (** quantified variables, head order *)
  con_args : Ty.t list;       (** argument types over [con_params] *)
  con_tag : int;              (** position among the tycon's constructors *)
  con_arity : int;
  con_span : int;             (** number of constructors of the tycon *)
}

type method_info = {
  mi_name : Ident.t;
  mi_class : Ident.t;
  mi_index : int;             (** slot among the methods of its class *)
  mi_sig : Ast.sqtyp;         (** declared signature; may add context (§8.5) *)
  mi_has_default : bool;
}

type class_info = {
  ci_name : Ident.t;
  ci_var : Ident.t;           (** the class type variable *)
  ci_supers : Ident.t list;   (** direct superclasses *)
  ci_methods : Ident.t list;  (** method names, declaration order *)
  ci_defaults : (Ident.t * Ast.fun_bind) list;  (** default bodies (§8.2) *)
  ci_loc : Loc.t;
}

(** How an instance fills a method slot. *)
type impl =
  | User_impl of Ident.t      (** generated global with the user definition *)
  | Default_impl              (** fall back to the class default (§8.2) *)

type inst_info = {
  in_class : Ident.t;
  in_tycon : Ident.t;
  in_params : Ident.t list;          (** instance head variables *)
  in_context : Ty.Context.t array;   (** per head variable (paper §4) *)
  in_dict : Ident.t;                 (** generated dictionary name, d$C$T *)
  in_impls : (Ident.t * impl) list;  (** per method, declaration order *)
  in_body : Ast.decl list;           (** the user's method definitions *)
  in_loc : Loc.t;
}

type t = {
  mutable tycons : Tycon.t Ident.Map.t;
  mutable datacons : con_info Ident.Map.t;
  mutable tycon_cons : Ident.t list Ident.Map.t;
  mutable synonyms : (Ident.t list * Ast.styp) Ident.Map.t;
  mutable classes : class_info Ident.Map.t;
  mutable methods : method_info Ident.Map.t;
  mutable instances : inst_info Ident.Map.t Ident.Map.t;  (** class → tycon → info *)
  sink : Diagnostic.Sink.sink;
  mutable trace : Tc_obs.Trace.t;
  (** where inference/unification emit trace events; [Trace.none] (the
      default) disables tracing *)
}

(** A fresh environment containing the builtin tycons and data constructors
    (nil, cons, unit). *)
val create : ?sink:Diagnostic.Sink.sink -> unit -> t

(** The constructor of the [n]-tuple, registered on first use. *)
val tuple_con : t -> int -> con_info

(** {2 Lookup} *)

val find_tycon : t -> Ident.t -> Tycon.t option
val find_datacon : t -> Ident.t -> con_info option
val find_synonym : t -> Ident.t -> (Ident.t list * Ast.styp) option
val find_class : t -> Ident.t -> class_info option
val find_method : t -> Ident.t -> method_info option
val class_exn : t -> ?loc:Loc.t -> Ident.t -> class_info
val constructors_of : t -> Ident.t -> Ident.t list
val find_instance : t -> cls:Ident.t -> tycon:Ident.t -> inst_info option
val all_instances : t -> inst_info list
val all_classes : t -> class_info list

(** {2 Superclasses (§8.1)} *)

(** All strict superclasses, transitively. *)
val supers_closure : t -> Ident.t -> Ident.t list

(** [implies env c c']: a [c] dictionary can supply a [c'] dictionary. *)
val implies : t -> Ident.t -> Ident.t -> bool

(** Remove classes implied by other members (superclass absorption). *)
val reduce_context : t -> Ty.Context.t -> Ty.Context.t

val context_add : t -> Ty.Context.t -> Ident.t -> Ty.Context.t
val context_union : t -> Ty.Context.t -> Ty.Context.t -> Ty.Context.t

(** {2 Generated names} ('$' cannot appear in source identifiers) *)

val tycon_label : Ident.t -> string
val dict_name : cls:Ident.t -> tycon:Ident.t -> Ident.t
val impl_name : cls:Ident.t -> tycon:Ident.t -> meth:Ident.t -> Ident.t
val default_name : cls:Ident.t -> meth:Ident.t -> Ident.t
