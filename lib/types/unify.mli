(** Unification with class-context propagation (paper §5).

    When a type variable is instantiated its context is passed on: another
    variable absorbs it by (superclass-reduced) union; a constructor
    triggers {e context reduction} through the instance declarations,
    failing with "no instance" when the constructor is not in the class.
    Read-only variables (§8.6) refuse instantiation and context growth. *)

open Tc_support

(** Propagate a context onto a type (the paper's [propagateClasses]).
    Raises {!Diagnostic.Error} on a missing instance or a read-only
    violation. *)
val propagate_classes :
  Class_env.t -> loc:Loc.t -> Ty.Context.t -> Ty.t -> unit

(** Context reduction at a constructor (the paper's [propagateClassTycon]). *)
val propagate_class_tycon :
  Class_env.t -> loc:Loc.t -> Ident.t -> Tycon.t -> Ty.t list -> unit

(** Instantiate an unbound variable (occurs check, level adjustment,
    context propagation). *)
val instantiate_tyvar : Class_env.t -> loc:Loc.t -> Ty.tyvar -> Ty.t -> unit

(** Unify two types. Raises {!Diagnostic.Error} with a located message on
    mismatch, occurs-check failure, missing instance, or a signature
    violation. *)
val unify : Class_env.t -> loc:Loc.t -> Ty.t -> Ty.t -> unit

(** Require [t] to be a function type, returning domain and codomain. *)
val as_arrow : Class_env.t -> loc:Loc.t -> level:int -> Ty.t -> Ty.t * Ty.t
