(** Type schemes: quantified {e generic} variables (each carrying its class
    context) over a body type.

    The order of [vars] is significant: it fixes the order of the hidden
    dictionary parameters (paper §6.2, §8.6). *)

open Tc_support

type t = {
  vars : Ty.tyvar list;  (** generic variables, in dictionary order *)
  ty : Ty.t;
}

(** A scheme with no quantified variables. *)
val mono : Ty.t -> t

val is_mono : t -> bool

(** [instantiate ~level s] copies the body with fresh variables (inheriting
    contexts) substituted for the generic ones; returns the fresh variables
    in quantifier order, for dictionary-placeholder insertion. *)
val instantiate : level:int -> t -> Ty.t * Ty.tyvar list

(** Number of dictionary parameters the scheme's context implies. *)
val dict_arity : t -> int

(** The context as (class, quantifier index) pairs, in dictionary order. *)
val context : t -> (Ident.t * int) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
