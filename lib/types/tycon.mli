(** Type constructors, identified by name. Builtins ([->], [[]], tuples,
    primitive types) are predefined; data declarations add more. *)

open Tc_support

type t = {
  name : Ident.t;
  arity : int;
}

val make : Ident.t -> int -> t
val kind : t -> Kind.t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** {2 Builtins} *)

val arrow : t
val list : t
val unit : t
val int : t
val float : t
val char : t

(** The [n]-tuple constructor, [n >= 2]. *)
val tuple : int -> t

val is_arrow : t -> bool
val is_list : t -> bool
val is_tuple : t -> bool
val builtins : t list
