(** Static analysis (paper §4).

    Collects and validates all top-level type, class and instance
    declarations, populating a {!Class_env.t}:

    - type constructors and synonyms (with cycle checking);
    - data constructors with their typing schemes;
    - classes: superclasses (acyclic), methods, default methods;
    - instances: converted to the paper's 4-tuple (data type, class,
      dictionary name, per-argument context), with uniqueness and
      superclass-coverage checks;
    - [deriving] clauses expanded via {!Derive}.

    Value-level declarations are returned for the type checker. *)

open Tc_support
module Ast = Tc_syntax.Ast

type result = {
  env : Class_env.t;
  value_decls : Ast.decl list;  (* top-level signatures and bindings *)
}

let err = Diagnostic.errorf

(** A per-declaration recovery boundary: in fail-fast mode it just runs
    the thunk; in accumulating mode it records any error (or ICE) in the
    class environment's sink and skips the declaration. *)
type decl_guard = loc:Loc.t -> (unit -> unit) -> unit

(* ------------------------------------------------------------------ *)
(* Pass 1: type constructors and synonyms.                             *)
(* ------------------------------------------------------------------ *)

let check_distinct ~loc what params =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen (Ident.text p) then
        err ~loc "duplicate %s '%a'" what Ident.pp p
      else Hashtbl.add seen (Ident.text p) ())
    params

let register_tycons (env : Class_env.t) (g : decl_guard) (prog : Ast.program) =
  List.iter
    (function
      | Ast.TData d ->
          g ~loc:d.td_loc (fun () ->
              if Class_env.find_tycon env d.td_name <> None
                 || Class_env.find_synonym env d.td_name <> None
              then
                err ~loc:d.td_loc "type '%a' is defined twice" Ident.pp d.td_name;
              check_distinct ~loc:d.td_loc "type parameter" d.td_params;
              env.tycons <-
                Ident.Map.add d.td_name
                  (Tycon.make d.td_name (List.length d.td_params))
                  env.tycons)
      | Ast.TSyn s ->
          g ~loc:s.ts_loc (fun () ->
              if Class_env.find_tycon env s.ts_name <> None
                 || Class_env.find_synonym env s.ts_name <> None
              then
                err ~loc:s.ts_loc "type '%a' is defined twice" Ident.pp s.ts_name;
              check_distinct ~loc:s.ts_loc "type parameter" s.ts_params;
              env.synonyms <-
                Ident.Map.add s.ts_name (s.ts_params, s.ts_body) env.synonyms)
      | _ -> ())
    prog

let check_synonym_cycles (env : Class_env.t) (g : decl_guard) =
  let rec styp_syns acc (t : Ast.styp) =
    match t with
    | Ast.TSVar _ -> acc
    | Ast.TSCon c ->
        if Ident.Map.mem c env.synonyms then c :: acc else acc
    | Ast.TSApp (a, b) | Ast.TSFun (a, b) -> styp_syns (styp_syns acc a) b
    | Ast.TSList a -> styp_syns acc a
    | Ast.TSTuple ts -> List.fold_left styp_syns acc ts
  in
  let visiting = Hashtbl.create 8 and done_ = Hashtbl.create 8 in
  let rec visit name =
    if Hashtbl.mem done_ name.Ident.id then ()
    else if Hashtbl.mem visiting name.Ident.id then
      err "type synonym '%a' is cyclic" Ident.pp name
    else begin
      Hashtbl.add visiting name.Ident.id ();
      (match Ident.Map.find_opt name env.synonyms with
       | Some (_, body) -> List.iter visit (styp_syns [] body)
       | None -> ());
      Hashtbl.remove visiting name.Ident.id;
      Hashtbl.add done_ name.Ident.id ()
    end
  in
  Ident.Map.iter (fun name _ -> g ~loc:Loc.none (fun () -> visit name)) env.synonyms

(* ------------------------------------------------------------------ *)
(* Pass 2: data constructors.                                          *)
(* ------------------------------------------------------------------ *)

let register_datacons (env : Class_env.t) (g : decl_guard) (prog : Ast.program) =
  List.iter
    (function
      | Ast.TData d -> (
          match Class_env.find_tycon env d.td_name with
          | None ->
              (* only possible when pass 1 already reported an error for
                 this declaration in accumulating mode — skip it *)
              ()
          | Some tc ->
              g ~loc:d.td_loc @@ fun () ->
          let params =
            List.map (fun _ -> Ty.fresh_var ~level:Ty.generic_level ()) d.td_params
          in
          let scope = Elaborate.new_scope () in
          List.iter2 (fun p tv -> Hashtbl.add scope p tv) d.td_params params;
          let result_ty = Ty.TCon (tc, List.map (fun tv -> Ty.TVar tv) params) in
          let span = List.length d.td_cons in
          List.iteri
            (fun tag (c : Ast.con_decl) ->
              if Class_env.find_datacon env c.cd_name <> None then
                err ~loc:c.cd_loc "data constructor '%a' is defined twice"
                  Ident.pp c.cd_name;
              let args =
                List.map
                  (fun a ->
                    let before = Hashtbl.length scope in
                    let ty =
                      Elaborate.elaborate env scope ~level:Ty.generic_level
                        ~read_only:false a
                    in
                    if Hashtbl.length scope <> before then
                      err ~loc:c.cd_loc
                        "constructor '%a' mentions a type variable not bound \
                         by the data declaration"
                        Ident.pp c.cd_name;
                    ty)
                  c.cd_args
              in
              let info : Class_env.con_info =
                {
                  con_name = c.cd_name;
                  con_tycon = tc;
                  con_scheme =
                    { Scheme.vars = params; ty = Ty.arrows args result_ty };
                  con_params = params;
                  con_args = args;
                  con_tag = tag;
                  con_arity = List.length args;
                  con_span = span;
                }
              in
              env.datacons <- Ident.Map.add c.cd_name info env.datacons)
            d.td_cons;
          env.tycon_cons <-
            Ident.Map.add d.td_name
              (List.map (fun (c : Ast.con_decl) -> c.cd_name) d.td_cons)
              env.tycon_cons)
      | _ -> ())
    prog

(* ------------------------------------------------------------------ *)
(* Pass 3: classes.                                                    *)
(* ------------------------------------------------------------------ *)

let register_classes (env : Class_env.t) (g : decl_guard) (prog : Ast.program) =
  (* 3a: skeletons, so superclass references can be forward. *)
  List.iter
    (function
      | Ast.TClass c ->
          g ~loc:c.tc_loc @@ fun () ->
          if Class_env.find_class env c.tc_name <> None then
            err ~loc:c.tc_loc "class '%a' is defined twice" Ident.pp c.tc_name;
          let supers =
            List.map
              (fun (p : Ast.spred) ->
                (match p.sp_ty with
                 | Ast.TSVar v when Ident.equal v c.tc_var -> ()
                 | _ ->
                     err ~loc:p.sp_loc
                       "superclass constraint must apply to the class \
                        variable '%a'"
                       Ident.pp c.tc_var);
                p.sp_class)
              c.tc_supers
          in
          let info : Class_env.class_info =
            {
              ci_name = c.tc_name;
              ci_var = c.tc_var;
              ci_supers = supers;
              ci_methods = [];
              ci_defaults = [];
              ci_loc = c.tc_loc;
            }
          in
          env.classes <- Ident.Map.add c.tc_name info env.classes
      | _ -> ())
    prog;
  (* 3b: superclasses exist and form a DAG. *)
  Ident.Map.iter
    (fun _ (ci : Class_env.class_info) ->
      g ~loc:ci.ci_loc @@ fun () ->
      List.iter
        (fun s ->
          if Class_env.find_class env s = None then
            err ~loc:ci.ci_loc "unknown superclass '%a' of class '%a'" Ident.pp s
              Ident.pp ci.ci_name)
        ci.ci_supers;
      if List.exists (Ident.equal ci.ci_name) (Class_env.supers_closure env ci.ci_name)
      then err ~loc:ci.ci_loc "superclass cycle involving '%a'" Ident.pp ci.ci_name)
    env.classes;
  (* 3c: methods and defaults. *)
  List.iter
    (function
      | Ast.TClass c when Class_env.find_class env c.tc_name <> None ->
          g ~loc:c.tc_loc @@ fun () ->
          let grouped = Ast.group_decls c.tc_body in
          let method_names = ref [] in
          List.iter
            (fun (names, (q : Ast.sqtyp), loc) ->
              List.iter
                (fun m ->
                  if Class_env.find_method env m <> None then
                    err ~loc "method '%a' is declared in more than one class"
                      Ident.pp m;
                  (* the signature must mention the class variable *)
                  let rec mentions (t : Ast.styp) =
                    match t with
                    | Ast.TSVar v -> Ident.equal v c.tc_var
                    | Ast.TSCon _ -> false
                    | Ast.TSApp (a, b) | Ast.TSFun (a, b) ->
                        mentions a || mentions b
                    | Ast.TSList a -> mentions a
                    | Ast.TSTuple ts -> List.exists mentions ts
                  in
                  if not (mentions q.sq_ty) then
                    err ~loc
                      "the type of method '%a' does not mention the class \
                       variable '%a'"
                      Ident.pp m Ident.pp c.tc_var;
                  List.iter
                    (fun (p : Ast.spred) ->
                      match p.sp_ty with
                      | Ast.TSVar v when Ident.equal v c.tc_var ->
                          err ~loc:p.sp_loc
                            "the context of method '%a' may not further \
                             constrain the class variable"
                            Ident.pp m
                      | _ -> ())
                    q.sq_context;
                  method_names := m :: !method_names;
                  let info : Class_env.method_info =
                    {
                      mi_name = m;
                      mi_class = c.tc_name;
                      mi_index = 0 (* assigned below *);
                      mi_sig = q;
                      mi_has_default = false (* updated below *);
                    }
                  in
                  env.methods <- Ident.Map.add m info env.methods)
                names)
            grouped.g_sigs;
          let methods = List.rev !method_names in
          (* defaults *)
          let defaults =
            List.filter_map
              (fun b ->
                match b with
                | Ast.BFun fb ->
                    if not (List.exists (Ident.equal fb.fb_name) methods) then
                      err ~loc:fb.fb_loc
                        "default definition of '%a' does not correspond to a \
                         method of class '%a'"
                        Ident.pp fb.fb_name Ident.pp c.tc_name;
                    Some (fb.fb_name, fb)
                | Ast.BPat ({ p = Ast.PVar m; p_loc }, rhs, loc) ->
                    if not (List.exists (Ident.equal m) methods) then
                      err ~loc:p_loc
                        "default definition of '%a' does not correspond to a \
                         method of class '%a'"
                        Ident.pp m Ident.pp c.tc_name;
                    Some
                      ( m,
                        {
                          Ast.fb_name = m;
                          fb_equations = [ { eq_pats = []; eq_rhs = rhs } ];
                          fb_loc = loc;
                        } )
                | Ast.BPat (p, _, _) ->
                    err ~loc:p.p_loc
                      "pattern bindings are not allowed in a class body")
              grouped.g_binds
          in
          (* record order, defaults, indices *)
          let ci = Class_env.class_exn env c.tc_name in
          env.classes <-
            Ident.Map.add c.tc_name
              { ci with ci_methods = methods; ci_defaults = defaults }
              env.classes;
          List.iteri
            (fun i m ->
              let mi = Option.get (Class_env.find_method env m) in
              let has_default =
                List.exists (fun (n, _) -> Ident.equal n m) defaults
              in
              env.methods <-
                Ident.Map.add m
                  { mi with mi_index = i; mi_has_default = has_default }
                  env.methods)
            methods
      | _ -> ())
    prog

(* ------------------------------------------------------------------ *)
(* Pass 4: instances.                                                  *)
(* ------------------------------------------------------------------ *)

(** Decompose an instance head [T a1 ... an] into the tycon name and its
    distinct variable parameters. *)
let decompose_head ~loc (env : Class_env.t) (head : Ast.styp) :
    Ident.t * Ident.t list =
  let var = function
    | Ast.TSVar v -> v
    | _ ->
        err ~loc
          "instance head must be a type constructor applied to distinct type \
           variables"
  in
  let name, params =
    match head with
    | Ast.TSCon c -> (c, [])
    | Ast.TSList t -> (Tycon.list.Tycon.name, [ var t ])
    | Ast.TSTuple [] -> (Tycon.unit.Tycon.name, [])
    | Ast.TSTuple ts ->
        (* ensure the tuple tycon/constructor are registered *)
        let ci = Class_env.tuple_con env (List.length ts) in
        (ci.con_tycon.Tycon.name, List.map var ts)
    | Ast.TSApp _ ->
        let rec flatten t args =
          match t with
          | Ast.TSApp (f, a) -> flatten f (var a :: args)
          | Ast.TSCon c -> (c, args)
          | _ ->
              err ~loc
                "instance head must be a type constructor applied to type \
                 variables"
        in
        flatten head []
    | Ast.TSFun (a, b) -> (Tycon.arrow.Tycon.name, [ var a; var b ])
    | Ast.TSVar _ -> err ~loc "instance head cannot be a bare type variable"
  in
  check_distinct ~loc "instance head variable" params;
  (match Class_env.find_synonym env name with
   | Some _ -> err ~loc "instance head cannot be a type synonym"
   | None -> ());
  (match Class_env.find_tycon env name with
   | None -> err ~loc "unknown type constructor '%a' in instance head" Ident.pp name
   | Some tc ->
       if tc.Tycon.arity <> List.length params then
         err ~loc "instance head for '%a' must apply it to exactly %d variable(s)"
           Ident.pp name tc.Tycon.arity);
  (name, params)

let process_instance (env : Class_env.t) (i : Ast.inst_decl) =
  let loc = i.ti_loc in
  let ci = Class_env.class_exn env ~loc i.ti_class in
  let tycon, params = decompose_head ~loc env i.ti_head in
  if Class_env.find_instance env ~cls:i.ti_class ~tycon <> None then
    err ~loc "duplicate instance '%a %a'" Ident.pp i.ti_class Ident.pp tycon;
  (* per-parameter context *)
  let context = Array.make (List.length params) Ty.Context.empty in
  List.iter
    (fun (p : Ast.spred) ->
      match p.sp_ty with
      | Ast.TSVar v -> (
          (match Class_env.find_class env p.sp_class with
           | Some _ -> ()
           | None -> err ~loc:p.sp_loc "unknown class '%a'" Ident.pp p.sp_class);
          match List.find_index (Ident.equal v) params with
          | Some idx ->
              context.(idx) <- Class_env.context_add env context.(idx) p.sp_class
          | None ->
              err ~loc:p.sp_loc
                "instance context mentions '%a', which is not a variable of \
                 the instance head"
                Ident.pp v)
      | _ ->
          err ~loc:p.sp_loc "instance context constraints must apply to type \
                             variables")
    i.ti_context;
  (* method implementations *)
  let grouped = Ast.group_decls i.ti_body in
  if grouped.g_sigs <> [] then
    err ~loc "type signatures are not allowed in an instance body";
  let given = Ident.Tbl.create 8 in
  List.iter
    (fun b ->
      match b with
      | Ast.BFun fb ->
          if not (List.exists (Ident.equal fb.fb_name) ci.ci_methods) then
            err ~loc:fb.fb_loc "'%a' is not a method of class '%a'" Ident.pp
              fb.fb_name Ident.pp i.ti_class;
          if Ident.Tbl.mem given fb.fb_name then
            err ~loc:fb.fb_loc "method '%a' is defined twice in this instance"
              Ident.pp fb.fb_name;
          Ident.Tbl.add given fb.fb_name fb
      | Ast.BPat ({ p = Ast.PVar m; _ }, rhs, bloc) ->
          if not (List.exists (Ident.equal m) ci.ci_methods) then
            err ~loc:bloc "'%a' is not a method of class '%a'" Ident.pp m
              Ident.pp i.ti_class;
          if Ident.Tbl.mem given m then
            err ~loc:bloc "method '%a' is defined twice in this instance"
              Ident.pp m;
          Ident.Tbl.add given m
            {
              Ast.fb_name = m;
              fb_equations = [ { eq_pats = []; eq_rhs = rhs } ];
              fb_loc = bloc;
            }
      | Ast.BPat (p, _, _) ->
          err ~loc:p.p_loc "pattern bindings are not allowed in an instance body")
    grouped.g_binds;
  let impls =
    List.map
      (fun m ->
        if Ident.Tbl.mem given m then
          (m, Class_env.User_impl (Class_env.impl_name ~cls:i.ti_class ~tycon ~meth:m))
        else begin
          let mi = Option.get (Class_env.find_method env m) in
          if not mi.mi_has_default then
            Diagnostic.Sink.warn env.sink ~loc
              "instance '%a %a' does not define method '%a' and the class \
               provides no default; calling it will fail at run time"
              Ident.pp i.ti_class Ident.pp tycon Ident.pp m;
          (m, Class_env.Default_impl)
        end)
      ci.ci_methods
  in
  let info : Class_env.inst_info =
    {
      in_class = i.ti_class;
      in_tycon = tycon;
      in_params = params;
      in_context = context;
      in_dict = Class_env.dict_name ~cls:i.ti_class ~tycon;
      in_impls = impls;
      in_body = i.ti_body;
      in_loc = loc;
    }
  in
  let by_tycon =
    match Ident.Map.find_opt i.ti_class env.instances with
    | Some m -> m
    | None -> Ident.Map.empty
  in
  env.instances <-
    Ident.Map.add i.ti_class (Ident.Map.add tycon info by_tycon) env.instances

(** Every instance must be able to build its superclass dictionaries
    (paper §8.1): the superclass instance must exist and its context must be
    implied by this instance's context, positionally. *)
let check_superclass_coverage (env : Class_env.t) (g : decl_guard) =
  List.iter
    (fun (inst : Class_env.inst_info) ->
      g ~loc:inst.in_loc @@ fun () ->
      let ci = Class_env.class_exn env inst.in_class in
      List.iter
        (fun s ->
          match Class_env.find_instance env ~cls:s ~tycon:inst.in_tycon with
          | None ->
              err ~loc:inst.in_loc
                "instance '%a %a' requires a superclass instance '%a %a', \
                 which is not defined"
                Ident.pp inst.in_class Ident.pp inst.in_tycon Ident.pp s
                Ident.pp inst.in_tycon
          | Some sinst ->
              Array.iteri
                (fun idx sctx ->
                  List.iter
                    (fun c ->
                      let have = inst.in_context.(idx) in
                      if not
                           (List.exists
                              (fun c' -> Class_env.implies env c' c)
                              have)
                      then
                        err ~loc:inst.in_loc
                          "instance '%a %a' cannot build its superclass '%a' \
                           dictionary: constraint '%a' on argument %d is not \
                           implied by the instance context"
                          Ident.pp inst.in_class Ident.pp inst.in_tycon
                          Ident.pp s Ident.pp c (idx + 1))
                    sctx)
                sinst.in_context)
        ci.ci_supers)
    (Class_env.all_instances env)

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let process ?(env = Class_env.create ()) ?(fail_fast = true) (prog : Ast.program)
    : result =
  let g : decl_guard =
   fun ~loc f ->
    if fail_fast then f ()
    else
      Diagnostic.guard ~sink:env.sink ~stage:"static analysis" ~loc
        ~recover:(fun () -> ())
        f
  in
  register_tycons env g prog;
  check_synonym_cycles env g;
  register_datacons env g prog;
  register_classes env g prog;
  (* explicit instances first, then derived ones *)
  List.iter
    (function
      | Ast.TInstance i -> g ~loc:i.ti_loc (fun () -> process_instance env i)
      | _ -> ())
    prog;
  List.iter
    (function
      | Ast.TData d ->
          List.iter
            (fun cls ->
              g ~loc:d.td_loc (fun () ->
                  process_instance env (Derive.derive cls d)))
            d.td_deriving
      | _ -> ())
    prog;
  check_superclass_coverage env g;
  let value_decls =
    List.filter_map (function Ast.TDecl d -> Some d | _ -> None) prog
  in
  { env; value_decls }
