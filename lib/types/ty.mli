(** Types with mutable unification variables.

    Following the paper (§5), every uninstantiated type variable carries a
    {e context}: the set of classes its instantiation must belong to.
    Variables also carry a [level] for let-generalization (generalized
    variables get {!generic_level}) and a [read_only] flag implementing
    §8.6 user-supplied signatures. *)

open Tc_support

type t =
  | TVar of tyvar
  | TCon of Tycon.t * t list  (** always saturated *)

and tyvar = { tv_id : int; mutable tv_repr : repr }

and repr =
  | Unbound of unbound
  | Link of t

and unbound = {
  mutable level : int;
  mutable context : Ident.t list;  (** sorted, duplicate-free class names *)
  read_only : bool;
}

(** The level marking generalized (quantified) variables. *)
val generic_level : int

val fresh_var :
  ?context:Ident.t list -> ?read_only:bool -> level:int -> unit -> tyvar

val fresh : ?context:Ident.t list -> ?read_only:bool -> level:int -> unit -> t

(** Class-context sets, represented as sorted ident lists. *)
module Context : sig
  type t = Ident.t list

  val empty : t
  val singleton : Ident.t -> t
  val add : Ident.t -> t -> t
  val union : t -> t -> t
  val mem : Ident.t -> t -> bool
  val of_list : Ident.t list -> t
  val pp : Format.formatter -> t -> unit
end

(** Follow links to the representative, with path compression. *)
val prune : t -> t

(** The unbound payload of a variable; fails if it is a link. *)
val unbound_exn : tyvar -> unbound

val is_generic : tyvar -> bool

(** {2 Constructors} *)

val int : t
val float : t
val char : t
val unit : t
val arrow : t -> t -> t
val list : t -> t

(** [tuple []] is unit; [tuple [t]] is [t]. *)
val tuple : t list -> t

val arrows : t list -> t -> t

(** Split [a -> b -> r] into ([a; b], r). *)
val unfold_arrow : t -> t list * t

(** Free (unbound) variables, in first-occurrence order. *)
val free_vars : t -> tyvar list

val occurs : tyvar -> t -> bool

(** {2 Printing} *)

(** Assigns display names 'a', 'b', ... to variables; share one namer to
    print several types consistently. *)
module Namer : sig
  type t

  val create : unit -> t
  val name : t -> tyvar -> string
end

val pp_with : ?namer:Namer.t -> int -> Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Render with the contexts attached to its variables, e.g.
    ["(Eq a, Num b) => a -> b"]. *)
val pp_qualified : Format.formatter -> t -> unit

val to_string_qualified : t -> string
