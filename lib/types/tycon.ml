(** Type constructors.

    A tycon is identified by its name; equality is name equality, so
    re-elaborating a program produces interchangeable tycons. Builtin
    constructors ([->], [[]], tuples, primitive types) are predefined. *)

open Tc_support

type t = {
  name : Ident.t;
  arity : int;
}

let make name arity = { name; arity }
let kind t = Kind.of_arity t.arity
let equal a b = Ident.equal a.name b.name
let compare a b = Ident.compare a.name b.name
let pp ppf t = Ident.pp ppf t.name

(* Builtins. Names in brackets cannot clash with user CONIDs. *)

let arrow = make (Ident.intern "->") 2
let list = make (Ident.intern "[]") 1
let unit = make (Ident.intern "()") 0
let int = make (Ident.intern "Int") 0
let float = make (Ident.intern "Float") 0
let char = make (Ident.intern "Char") 0

let tuple n =
  assert (n >= 2);
  make (Ident.intern (Printf.sprintf "(%s)" (String.make (n - 1) ','))) n

let is_arrow t = equal t arrow
let is_list t = equal t list

let is_tuple t =
  let s = Ident.text t.name in
  String.length s >= 3 && s.[0] = '(' && s.[1] = ','

let builtins = [ arrow; list; unit; int; float; char ]
