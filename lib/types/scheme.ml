(** Type schemes.

    A scheme quantifies a list of *generic* type variables (level =
    {!Ty.generic_level}), each carrying its class context. Generic variables
    are never unified directly: instantiation copies the body, replacing each
    generic variable with a fresh one at the current level that inherits a
    copy of the context.

    The order of [vars] is significant: it fixes the order of the hidden
    dictionary parameters (paper §6.2, §8.6), so instantiation reports the
    fresh variables in the same order for placeholder generation. *)

open Tc_support

type t = {
  vars : Ty.tyvar list;  (* generic variables, in dictionary-parameter order *)
  ty : Ty.t;
}

(** A scheme with no quantified variables (monomorphic environment entry). *)
let mono ty = { vars = []; ty }

let is_mono s = s.vars = []

(** [instantiate ~level s] returns the body with fresh variables substituted
    for the generic ones, together with the fresh variables in quantifier
    order (used to insert dictionary placeholders at occurrence sites). *)
let instantiate ~level (s : t) : Ty.t * Ty.tyvar list =
  (Stats.current ()).schemes_instantiated <- (Stats.current ()).schemes_instantiated + 1;
  if s.vars = [] then (s.ty, [])
  else begin
    let mapping = Hashtbl.create 8 in
    let fresh_vars =
      List.map
        (fun (tv : Ty.tyvar) ->
          let u = Ty.unbound_exn tv in
          let fresh = Ty.fresh_var ~context:u.context ~level () in
          Hashtbl.add mapping tv.tv_id fresh;
          fresh)
        s.vars
    in
    let rec copy t =
      match Ty.prune t with
      | Ty.TVar tv -> (
          match Hashtbl.find_opt mapping tv.tv_id with
          | Some fresh -> Ty.TVar fresh
          | None -> Ty.TVar tv (* free in the scheme: shared, not copied *))
      | Ty.TCon (tc, args) -> Ty.TCon (tc, List.map copy args)
    in
    (copy s.ty, fresh_vars)
  end

(** Total number of dictionary parameters implied by the scheme's context. *)
let dict_arity (s : t) =
  List.fold_left
    (fun n (tv : Ty.tyvar) -> n + List.length (Ty.unbound_exn tv).context)
    0 s.vars

(** The context of the scheme as (class, quantifier position) pairs, in
    dictionary-parameter order. *)
let context (s : t) : (Ident.t * int) list =
  List.concat
    (List.mapi
       (fun i (tv : Ty.tyvar) ->
         List.map (fun c -> (c, i)) (Ty.unbound_exn tv).context)
       s.vars)

let pp ppf (s : t) =
  let namer = Ty.Namer.create () in
  (* name variables by first appearance in the type (the context may
     quantify them in dictionary order, which can differ) *)
  List.iter (fun tv -> ignore (Ty.Namer.name namer tv)) (Ty.free_vars s.ty);
  List.iter (fun tv -> ignore (Ty.Namer.name namer tv)) s.vars;
  let preds =
    List.concat_map
      (fun (tv : Ty.tyvar) ->
        List.map (fun c -> (c, Ty.Namer.name namer tv)) (Ty.unbound_exn tv).context)
      s.vars
  in
  (match preds with
   | [] -> ()
   | [ (c, v) ] -> Fmt.pf ppf "%a %s => " Ident.pp c v
   | _ ->
       Fmt.pf ppf "(%a) => "
         (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (c, v) ->
              Fmt.pf ppf "%a %s" Ident.pp c v))
         preds);
  Ty.pp_with ~namer 0 ppf s.ty

let to_string s = Fmt.str "%a" pp s
