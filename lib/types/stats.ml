(** Type-checker instrumentation counters (experiments E1 and E9: the paper
    claims "a minor increase in the cost of unification and the placement
    and resolution of placeholders make up the majority of the extra
    processing required for type classes"). *)

type t = {
  mutable unifications : int;
  mutable var_instantiations : int;
  mutable context_propagations : int;  (* propagateClasses calls with work *)
  mutable context_reductions : int;    (* propagateClassTycon: instance lookups *)
  mutable holes_created : int;
  mutable holes_resolved : int;
  mutable schemes_instantiated : int;
}

let create () =
  {
    unifications = 0;
    var_instantiations = 0;
    context_propagations = 0;
    context_reductions = 0;
    holes_created = 0;
    holes_resolved = 0;
    schemes_instantiated = 0;
  }

(* Per-domain counters, reset per compilation: each domain running a
   compile (e.g. a [Tc_scale.Pool] serve worker) gets its own record, so
   parallel compiles never interleave their instrumentation. *)
let key : t Domain.DLS.key = Domain.DLS.new_key create

(** The calling domain's counters. *)
let current () = Domain.DLS.get key

let reset () =
  let c = current () in
  c.unifications <- 0;
  c.var_instantiations <- 0;
  c.context_propagations <- 0;
  c.context_reductions <- 0;
  c.holes_created <- 0;
  c.holes_resolved <- 0;
  c.schemes_instantiated <- 0

let snapshot () =
  let c = current () in
  { c with unifications = c.unifications }

(** Name/value pairs in display order (for JSON and tabular output). *)
let pairs t =
  [
    ("unifications", t.unifications);
    ("var_instantiations", t.var_instantiations);
    ("context_propagations", t.context_propagations);
    ("context_reductions", t.context_reductions);
    ("placeholders_created", t.holes_created);
    ("placeholders_resolved", t.holes_resolved);
    ("schemes_instantiated", t.schemes_instantiated);
  ]

let pp ppf t =
  Fmt.pf ppf
    "unifications=%d var-instantiations=%d context-propagations=%d \
     context-reductions=%d placeholders-created=%d placeholders-resolved=%d \
     schemes-instantiated=%d"
    t.unifications t.var_instantiations t.context_propagations
    t.context_reductions t.holes_created t.holes_resolved
    t.schemes_instantiated
