(** Kinds.

    MiniHaskell types are first-order: type constructors are always fully
    applied and type variables have kind [*] (classes in the paper's system
    range over plain types, not constructors). Kinds therefore record only
    constructor arity, and kind checking amounts to saturation checking —
    but we keep the usual arrow structure so kinds print familiarly. *)

type t =
  | Star
  | Arrow of t * t

let rec of_arity n = if n = 0 then Star else Arrow (Star, of_arity (n - 1))

let rec arity = function Star -> 0 | Arrow (_, k) -> 1 + arity k

let rec pp ppf = function
  | Star -> Fmt.string ppf "*"
  | Arrow (a, b) -> (
      match a with
      | Star -> Fmt.pf ppf "* -> %a" pp b
      | _ -> Fmt.pf ppf "(%a) -> %a" pp a pp b)

let to_string k = Fmt.str "%a" pp k

let equal : t -> t -> bool = ( = )
