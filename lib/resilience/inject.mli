(** Deterministic, seed-driven fault injection.

    The pipeline and both back ends call {!hit} at named points — every
    stage boundary plus the interpreter loops — and an armed {!plan}
    decides, reproducibly from its seed, whether that visit faults. A
    firing point raises {!Fault} (or {!Transient} at {!Serve_transient},
    or [Out_of_memory] at {!Oom}), exercising the same containment
    machinery a real compiler bug would: {!Tc_support.Diagnostic.guard}
    boundaries in the front end, the ICE handlers in the CLI driver and
    the per-request isolation of [mhc serve].

    The injector is process-global and off by default; when disarmed,
    {!hit} at the interpreter-loop points costs one mutable-bool read
    ({!live}). Tests and the chaos harness {!arm} it, run, and
    {!disarm} in a [Fun.protect] finalizer. *)

type point =
  | Lex          (** before lexing/parsing the source *)
  | Parse        (** after parsing, before fixity resolution *)
  | Static       (** before static analysis (§4) *)
  | Infer        (** before type inference of the binding groups *)
  | Translate    (** before dictionary construction *)
  | Optimize     (** before each optimizer pass ([detail] = pass name) *)
  | Eval_step    (** each tree-evaluator step *)
  | Vm_step      (** each VM instruction *)
  | Render       (** before rendering the result value *)
  | Oom          (** simulated out-of-memory (raises [Out_of_memory]) *)
  | Serve_transient
      (** per serve request; raises {!Transient}, the retryable class *)
  | Worker_crash
      (** in a pool worker, after dequeue and before the request handler
          — the fault escapes the per-request isolation and kills the
          worker domain, exercising pool supervision *)
  | Cache_write
      (** while persisting a compile-cache entry; the disk tier catches
          the fault and simulates a torn (truncated) write instead of a
          clean one *)
  | Cache_read
      (** while reading a persisted compile-cache entry; the disk tier
          treats the fault as on-disk corruption (entry dropped and
          healed, never an escaped exception) *)
  | Accept_fail
      (** in the TCP listener's accept loop; the listener counts the
          failure, backs off briefly and keeps accepting — existing
          connections are unaffected *)
  | Conn_drop
      (** per connection read: the server abruptly shuts the socket
          down, simulating a client that vanished mid-request; any
          in-flight response for that connection is dropped on write
          (EPIPE) without disturbing its neighbors *)
  | Slow_read
      (** per connection read: the reader stalls past the connection
          read deadline, simulating a slowloris client; the reaper must
          close it without affecting other connections *)

val point_name : point -> string
val point_of_name : string -> point option

(** Every point, for chaos matrices. *)
val all_points : point list

exception Fault of { point : point; detail : string }

(** A retryable fault: [mhc serve] retries these with backoff. *)
exception Transient of { point : point; detail : string }

type plan = {
  seed : int;
  rate : float;       (** firing probability per visit, in [0,1] *)
  points : point list;(** live points; [[]] means all *)
  max_faults : int;   (** stop firing after this many; [<= 0] unlimited *)
}

val plan : ?seed:int -> ?rate:float -> ?points:point list ->
  ?max_faults:int -> unit -> plan

(** [parse_spec "point[,point...][:rate[:seed]]"] — the CLI's
    [--inject] argument. Examples: ["infer"], ["vm-step:0.001"],
    ["oom:1:42"], ["worker-crash,conn-drop:0.1:11"]. *)
val parse_spec : string -> (plan, string) result

val arm : plan -> unit
val disarm : unit -> unit
val armed : unit -> bool

(** Whether the injector is armed — read this before calling {!hit} on
    hot paths. *)
val live : bool ref

(** Visit a named injection point; raises iff the armed plan fires. *)
val hit : ?detail:string -> point -> unit

(** Faults fired since the last {!arm}. *)
val fired : unit -> int
