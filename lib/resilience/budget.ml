(** Unified resource budgets. See the interface for the budget model and
    the per-backend unit of each limit. *)

type resource = Steps | Frames | Wall_clock | Allocations | Output

let resource_name = function
  | Steps -> "steps"
  | Frames -> "frames"
  | Wall_clock -> "wall-clock"
  | Allocations -> "allocations"
  | Output -> "output"

type t = {
  steps : int;
  frames : int;
  wall_ms : float;
  allocations : int;
  output_bytes : int;
}

let unlimited =
  { steps = 0; frames = 0; wall_ms = 0.; allocations = 0; output_bytes = 0 }

let fuel n = { unlimited with steps = n }
let deadline ms = { unlimited with wall_ms = ms }

exception Exhausted of { resource : resource; spent : int; limit : int }

let exhausted resource ~spent ~limit = raise (Exhausted { resource; spent; limit })

let message resource ~spent ~limit =
  if limit <= 0 then
    (* no configured limit: the host ran out (native stack, real OOM) *)
    Printf.sprintf "resource exhausted: %s" (resource_name resource)
  else
    Printf.sprintf "resource exhausted: %s (spent %d, limit %d%s)"
      (resource_name resource) spent limit
      (match resource with Wall_clock -> " ms" | _ -> "")

let message_of_exn = function
  | Exhausted { resource; spent; limit } -> Some (message resource ~spent ~limit)
  | _ -> None

(* The deadline is enforced to within this many steps; a clock read on
   every step would dominate the interpreter loop. *)
let clock_interval = 4096

(* Wall deadlines measure against the monotonic clock: an NTP step
   forward must not expire every in-flight budget at once, and a step
   backward must not let a divergent program outlive its deadline. *)
let now = Tc_support.Mono.now_s

type meter = {
  lim : t;
  mutable steps_left : int;       (* -1 = unlimited *)
  mutable spent : int;
  alloc_lim : int;                (* max_int = unlimited *)
  mutable depth : int;
  frame_lim : int;                (* max_int = unlimited *)
  deadline_at : float;            (* absolute seconds; infinity = none *)
  mutable clock_in : int;         (* steps until the next clock check *)
}

let meter (lim : t) : meter =
  {
    lim;
    steps_left = (if lim.steps > 0 then lim.steps else -1);
    spent = 0;
    alloc_lim = (if lim.allocations > 0 then lim.allocations else max_int);
    depth = 0;
    frame_lim = (if lim.frames > 0 then lim.frames else max_int);
    deadline_at =
      (if lim.wall_ms > 0. then now () +. (lim.wall_ms /. 1000.)
       else infinity);
    clock_in = clock_interval;
  }

let limits m = m.lim
let steps_spent m = m.spent

let check_clock m =
  m.clock_in <- clock_interval;
  if now () > m.deadline_at then
    exhausted Wall_clock ~spent:m.spent
      ~limit:(int_of_float m.lim.wall_ms)

let step m =
  m.spent <- m.spent + 1;
  (if m.steps_left >= 0 then
     if m.steps_left = 0 then
       exhausted Steps ~spent:m.spent ~limit:m.lim.steps
     else m.steps_left <- m.steps_left - 1);
  if m.deadline_at < infinity then begin
    m.clock_in <- m.clock_in - 1;
    if m.clock_in <= 0 then check_clock m
  end

let check_allocs m n =
  if n > m.alloc_lim then
    exhausted Allocations ~spent:n ~limit:m.lim.allocations

let enter_frame m =
  m.depth <- m.depth + 1;
  if m.depth > m.frame_lim then
    exhausted Frames ~spent:m.depth ~limit:m.lim.frames

let exit_frame m = m.depth <- m.depth - 1

let frame_limit m = m.frame_lim

let check_frames m depth =
  if depth > m.frame_lim then exhausted Frames ~spent:depth ~limit:m.lim.frames

let check_output m bytes =
  if m.lim.output_bytes > 0 && bytes > m.lim.output_bytes then
    exhausted Output ~spent:bytes ~limit:m.lim.output_bytes
