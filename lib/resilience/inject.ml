(** Deterministic fault injection; see the interface. *)

type point =
  | Lex
  | Parse
  | Static
  | Infer
  | Translate
  | Optimize
  | Eval_step
  | Vm_step
  | Render
  | Oom
  | Serve_transient
  | Worker_crash
  | Cache_write
  | Cache_read
  | Accept_fail
  | Conn_drop
  | Slow_read

let point_name = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Static -> "static"
  | Infer -> "infer"
  | Translate -> "translate"
  | Optimize -> "optimize"
  | Eval_step -> "eval-step"
  | Vm_step -> "vm-step"
  | Render -> "render"
  | Oom -> "oom"
  | Serve_transient -> "serve-transient"
  | Worker_crash -> "worker-crash"
  | Cache_write -> "cache-write"
  | Cache_read -> "cache-read"
  | Accept_fail -> "accept-fail"
  | Conn_drop -> "conn-drop"
  | Slow_read -> "slow-read"

let all_points =
  [ Lex; Parse; Static; Infer; Translate; Optimize; Eval_step; Vm_step;
    Render; Oom; Serve_transient; Worker_crash; Cache_write; Cache_read;
    Accept_fail; Conn_drop; Slow_read ]

let point_of_name s =
  List.find_opt (fun p -> point_name p = s) all_points

exception Fault of { point : point; detail : string }
exception Transient of { point : point; detail : string }

let () =
  Printexc.register_printer (function
    | Fault { point; detail } ->
        Some
          (Printf.sprintf "injected fault at %s%s" (point_name point)
             (if detail = "" then "" else " (" ^ detail ^ ")"))
    | Transient { point; detail } ->
        Some
          (Printf.sprintf "injected transient fault at %s%s"
             (point_name point)
             (if detail = "" then "" else " (" ^ detail ^ ")"))
    | _ -> None)

type plan = {
  seed : int;
  rate : float;
  points : point list;
  max_faults : int;
}

let plan ?(seed = 0) ?(rate = 1.0) ?(points = []) ?(max_faults = 0) () =
  { seed; rate; points; max_faults }

let parse_spec s =
  match String.split_on_char ':' s with
  | [] -> Error "empty --inject spec"
  | names :: rest -> (
      (* The point field is a comma-separated list so one armed plan can
         cover several points at once (a chaos run wanting worker crashes
         AND connection drops shares one rate and seed across both). *)
      let resolved =
        List.map
          (fun name -> (name, point_of_name name))
          (String.split_on_char ',' names)
      in
      match List.find_opt (fun (_, p) -> p = None) resolved with
      | Some (name, _) ->
          Error
            (Printf.sprintf "unknown injection point %S (one of: %s)" name
               (String.concat ", " (List.map point_name all_points)))
      | None -> (
          let points = List.filter_map snd resolved in
          let rate, seed =
            match rest with
            | [] -> (Some 1.0, Some 0)
            | [ r ] -> (float_of_string_opt r, Some 0)
            | [ r; sd ] -> (float_of_string_opt r, int_of_string_opt sd)
            | _ -> (None, None)
          in
          match (rate, seed) with
          | Some rate, Some seed when rate >= 0. && rate <= 1. && points <> []
            ->
              Ok { seed; rate; points; max_faults = 0 }
          | _ ->
              Error
                (Printf.sprintf
                   "bad --inject spec %S (expected point[,point...][:rate[:seed]])"
                   s)))

(* ------------------------------------------------------------------ *)
(* Global injector state.                                              *)
(* ------------------------------------------------------------------ *)

type state = {
  plan : plan;
  mutable rng : int64;     (* splitmix64 state *)
  mutable count : int;     (* faults fired since arm *)
}

let current : state option ref = ref None
let live = ref false

let arm p =
  current :=
    Some { plan = p; rng = Int64.of_int (p.seed lxor 0x9e3779b9); count = 0 };
  live := true

let disarm () =
  current := None;
  live := false

let armed () = Option.is_some !current

let fired () = match !current with Some s -> s.count | None -> 0

(* splitmix64: deterministic across platforms, no dependence on the
   global Random state (which user code or tests may perturb). *)
let next_unit_float (s : state) : float =
  let z = Int64.add s.rng 0x9e3779b97f4a7c15L in
  s.rng <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let hit ?(detail = "") (p : point) : unit =
  match !current with
  | None -> ()
  | Some s ->
      let pl = s.plan in
      let selected = pl.points = [] || List.memq p pl.points in
      if selected && (pl.max_faults <= 0 || s.count < pl.max_faults) then
        if next_unit_float s < pl.rate then begin
          s.count <- s.count + 1;
          match p with
          | Oom -> raise Out_of_memory
          | Serve_transient -> raise (Transient { point = p; detail })
          | _ -> raise (Fault { point = p; detail })
        end
