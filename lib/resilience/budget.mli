(** Unified resource budgets for program execution.

    One {!t} record bounds everything a runaway program can consume —
    evaluation steps, call depth, wall-clock time, value allocations and
    rendered-output size — and every limit is reported the same way on
    both back ends: the classified {!Exhausted} exception, carrying which
    resource ran out, how much was spent and what the limit was. Callers
    never see a bare "out of fuel" exception again.

    Units are per backend and documented here once:
    - [steps]: tree backend — {e expression evaluations} (one per
      [Eval.eval] entry); VM backend — {e instructions retired}. The VM
      executes several instructions per tree step, so a program needs a
      larger VM step budget (roughly 10x) for the same work.
    - [frames]: tree backend — {e recursion depth} of the evaluator
      (guarding the native stack); VM backend — {e frame-stack depth}
      (the VM is fully iterative, so this guards its explicit stack).
      The VM always applies a frame bound (default [1_000_000]) even
      under an unlimited budget, because an unbounded explicit stack
      would otherwise consume all memory before anything failed.
    - [wall_ms]: wall-clock milliseconds from {!meter} creation, checked
      every {!clock_interval} steps on both back ends.
    - [allocations]: heap value allocations (same accounting as the
      [allocations] counter).
    - [output_bytes]: size of the rendered result (checked when the
      final value is rendered).

    A limit [<= 0] means unlimited (except the VM frame default above). *)

type resource = Steps | Frames | Wall_clock | Allocations | Output

val resource_name : resource -> string
(** ["steps"], ["frames"], ["wall-clock"], ["allocations"], ["output"]. *)

type t = {
  steps : int;         (** eval steps (tree) / instructions (VM) *)
  frames : int;        (** recursion depth (tree) / frame stack (VM) *)
  wall_ms : float;     (** wall-clock deadline in milliseconds *)
  allocations : int;   (** heap value allocations *)
  output_bytes : int;  (** rendered result size *)
}

val unlimited : t

(** [fuel n] is {!unlimited} with a step budget of [n]. *)
val fuel : int -> t

(** [deadline ms] is {!unlimited} with a wall-clock deadline of [ms]. *)
val deadline : float -> t

exception Exhausted of { resource : resource; spent : int; limit : int }

(** Raise {!Exhausted}. *)
val exhausted : resource -> spent:int -> limit:int -> 'a

(** The classified one-line rendering used by diagnostics and the CLI:
    ["resource exhausted: <resource> (spent N, limit M)"]. *)
val message : resource -> spent:int -> limit:int -> string

(** Render a caught {!Exhausted} payload (convenience for handlers that
    matched the exception). *)
val message_of_exn : exn -> string option

(** How many steps pass between wall-clock checks (the deadline is
    enforced to within this many steps). *)
val clock_interval : int

(** Mutable enforcement state for one run. Creating a meter starts the
    wall clock. *)
type meter

val meter : t -> meter

val limits : meter -> t

(** Steps consumed so far. *)
val steps_spent : meter -> int

(** Charge one step; raises {!Exhausted} on step or wall-clock
    exhaustion. The hot-path entry point: one decrement and compare when
    no deadline is set. *)
val step : meter -> unit

(** [check_allocs m n] raises when the allocation count [n] (the back
    end's [allocations] counter) exceeds the cap. *)
val check_allocs : meter -> int -> unit

(** Enter/leave one recursion level (tree backend). [exit_frame] need not
    be called on exceptional exits; the meter is discarded with the run. *)
val enter_frame : meter -> unit

val exit_frame : meter -> unit

(** The frame bound as a plain limit, for back ends that already track
    their own depth (the VM frame stack): [max_int] when unlimited. *)
val frame_limit : meter -> int

(** [check_frames m depth] raises when [depth] exceeds the frame bound. *)
val check_frames : meter -> int -> unit

(** [check_output m bytes] raises when [bytes] exceeds the output cap. *)
val check_output : meter -> int -> unit
