(** The run-time tag dispatch baseline (paper §3, the SML/NJ-equality
    approach): methods compile to dispatchers that branch on the dynamic
    type tag of a designated argument. Return-type overloading (the
    paper's [read]) is rejected at compile time in user code; library code
    compiled leniently gets a run-time failure stub instead. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Kernel = Tc_desugar.Kernel
module Core = Tc_core_ir.Core

(** Where a dispatcher finds its type tag. *)
type dispatch =
  | Exact of int    (** argument [i] has exactly the class variable's type *)
  | Buried of int   (** mentioned inside argument [i]; not projectable *)
  | Impossible      (** return-type overloading *)

val dispatch_of : Class_env.t -> Class_env.method_info -> dispatch

(** The dispatch position, or a located error explaining why tag dispatch
    cannot implement the method. *)
val check_dispatchable :
  Class_env.t -> loc:Loc.t -> Class_env.method_info -> int

(** Translate a desugared program under the tag-dispatch strategy.
    Bindings whose source file is in [lenient_files] (default: the
    prelude) translate undispatchable method uses to run-time stubs
    instead of failing. *)
val translate_program :
  ?lenient_files:string list ->
  Class_env.t ->
  Kernel.group list ->
  Core.program
