(** The run-time tag dispatch baseline (paper §3).

    "One standard technique used in the implementation of run-time
    overloading is to attach some kind of tag to the concrete
    representation of each object. Overloaded functions such as the
    equality operator … can be implemented by inspecting the tags of their
    arguments and dispatching the appropriate function based on the tag
    value. This is essentially the method used to deal with the equality
    function in Standard ML of New Jersey."

    This translation compiles methods to {e dispatchers} that branch on the
    run-time type tag of a designated argument (via the [primTypeTag]
    primitive). It reproduces the approach's fundamental limitation: a
    method whose class variable does not appear (exactly) in an argument
    position — e.g. the paper's [read], our [parse] or [fromInt] — is
    rejected at compile time, because "it is not possible to implement
    functions where the overloading is defined by the returned type".

    Integer literals are monomorphic [Int] in this mode (as in ML), since
    overloaded literals are themselves return-type overloading. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Class_env = Tc_types.Class_env
module Kernel = Tc_desugar.Kernel
module Desugar = Tc_desugar.Desugar
module Core = Tc_core_ir.Core

let err = Diagnostic.errorf

let prim_type_tag = Ident.intern "primTypeTag"

(* ------------------------------------------------------------------ *)
(* Dispatch positions.                                                 *)
(* ------------------------------------------------------------------ *)

(** Argument positions of a method type (the arrow spine of its source
    signature). *)
let rec arg_positions (t : Ast.styp) : Ast.styp list =
  match t with
  | Ast.TSFun (a, b) -> a :: arg_positions b
  | _ -> []

let rec mentions_var v (t : Ast.styp) =
  match t with
  | Ast.TSVar v' -> Ident.equal v v'
  | Ast.TSCon _ -> false
  | Ast.TSApp (a, b) | Ast.TSFun (a, b) -> mentions_var v a || mentions_var v b
  | Ast.TSList a -> mentions_var v a
  | Ast.TSTuple ts -> List.exists (mentions_var v) ts

(** Where can a dispatcher find the type tag? [Exact i]: argument [i] has
    the class variable's type, so its own tag decides. Otherwise the
    variable is buried (or absent) and tag dispatch cannot implement the
    method. *)
type dispatch =
  | Exact of int
  | Buried of int   (* mentioned inside argument [i] but not projectable *)
  | Impossible      (* return-type overloading *)

let dispatch_of env (mi : Class_env.method_info) : dispatch =
  let ci = Class_env.class_exn env mi.mi_class in
  let args = arg_positions mi.mi_sig.sq_ty in
  let exact =
    List.find_index
      (fun t -> match t with Ast.TSVar v -> Ident.equal v ci.ci_var | _ -> false)
      args
  in
  match exact with
  | Some i -> Exact i
  | None -> (
      match List.find_index (mentions_var ci.ci_var) args with
      | Some i -> Buried i
      | None -> Impossible)

let check_dispatchable env ~loc (mi : Class_env.method_info) : int =
  match dispatch_of env mi with
  | Exact i -> i
  | Buried i ->
      err ~loc
        "method '%a' cannot be implemented by run-time tag dispatch: the \
         class variable is buried inside argument %d, so no tag is directly \
         available (consider the paper's dictionary translation instead)"
        Ident.pp mi.mi_name (i + 1)
  | Impossible ->
      err ~loc
        "method '%a' is overloaded only in its result type; run-time tag \
         dispatch cannot implement it (the paper's motivation for \
         dictionaries: 'it is not possible to implement functions where the \
         overloading is defined by the returned type')"
        Ident.pp mi.mi_name

(* ------------------------------------------------------------------ *)
(* Generated names.                                                    *)
(* ------------------------------------------------------------------ *)

let dyn_name ~cls ~meth =
  Ident.intern (Printf.sprintf "dyn$%s$%s" (Ident.text cls) (Ident.text meth))

let impl_name ~cls ~tycon ~meth =
  Ident.intern
    (Printf.sprintf "tag$%s$%s$%s" (Ident.text cls)
       (Class_env.tycon_label tycon) (Ident.text meth))

let default_name ~cls ~meth =
  Ident.intern (Printf.sprintf "tag$%s$default$%s" (Ident.text cls) (Ident.text meth))

(* ------------------------------------------------------------------ *)
(* Kernel → core translation with dispatching methods.                 *)
(* ------------------------------------------------------------------ *)

type state = {
  env : Class_env.t;
  mutable used_methods : Class_env.method_info Ident.Map.t;
  (* In lenient mode (library/prelude code), an undispatchable method
     occurrence becomes a run-time failure stub rather than a compile-time
     error, so that a prelude written for the dictionary strategy still
     loads; user code gets the hard error. *)
  mutable lenient : bool;
}

let rec translate st (scope : Ident.Set.t) (e : Kernel.expr) : Core.expr =
  match e with
  | Kernel.KVar (x, loc) -> (
      if Ident.Set.mem x scope then Core.Var x
      else
        match Class_env.find_method st.env x with
        | Some mi -> (
            match dispatch_of st.env mi with
            | Exact _ ->
                st.used_methods <- Ident.Map.add x mi st.used_methods;
                Core.Var (dyn_name ~cls:mi.mi_class ~meth:x)
            | Buried _ | Impossible when st.lenient ->
                Core.App
                  ( Core.Var (Ident.intern "primFailure"),
                    Core.Lit
                      (Ast.LString
                         (Printf.sprintf
                            "method %s requires return-type overloading, \
                             which run-time tag dispatch cannot implement"
                            (Ident.text x))) )
            | Buried _ | Impossible ->
                ignore (check_dispatchable st.env ~loc mi);
                assert false)
        | None -> Core.Var x)
  | Kernel.KCon (c, _) -> Core.Con c
  | Kernel.KLit (l, _) -> Core.Lit l
  | Kernel.KApp (f, a) -> Core.App (translate st scope f, translate st scope a)
  | Kernel.KLam (vs, b) ->
      Core.Lam (vs, translate st (List.fold_left (fun s v -> Ident.Set.add v s) scope vs) b)
  | Kernel.KLet (g, body) ->
      let binds = Kernel.binds_of_group g in
      let scope' =
        List.fold_left
          (fun s (b : Kernel.bind) -> Ident.Set.add b.kb_name s)
          scope binds
      in
      let rhs_scope = match g with Kernel.KNonrec _ -> scope | Kernel.KRec _ -> scope' in
      let cbinds =
        List.map
          (fun (b : Kernel.bind) ->
            { Core.b_name = b.kb_name; b_expr = translate st rhs_scope b.kb_expr })
          binds
      in
      let cg =
        match (g, cbinds) with
        | Kernel.KNonrec _, [ cb ] -> Core.Nonrec cb
        | _ -> Core.Rec cbinds
      in
      Core.Let (cg, translate st scope' body)
  | Kernel.KIf (c, t, f) ->
      Core.If (translate st scope c, translate st scope t, translate st scope f)
  | Kernel.KCase (s, alts, d) ->
      Core.Case
        ( translate st scope s,
          List.map
            (fun (a : Kernel.alt) ->
              let scope' =
                List.fold_left (fun s' v -> Ident.Set.add v s') scope a.ka_vars
              in
              {
                Core.alt_con =
                  (match a.ka_test with
                   | Kernel.KTcon c -> Core.Tcon c
                   | Kernel.KTlit l -> Core.Tlit l);
                alt_vars = a.ka_vars;
                alt_body = translate st scope' a.ka_body;
              })
            alts,
          Option.map (translate st scope) d )
  | Kernel.KAnnot (e1, _, _) -> translate st scope e1
  | Kernel.KFail (msg, _) ->
      Core.App (Core.Var (Ident.intern "primFailure"), Core.Lit (Ast.LString msg))

(* ------------------------------------------------------------------ *)
(* Dispatchers and implementations.                                    *)
(* ------------------------------------------------------------------ *)

(** The dispatcher for one method: inspect the tag of the dispatch
    argument and jump to the per-type implementation. *)
let dispatcher st (mi : Class_env.method_info) : Core.bind =
  let pos = check_dispatchable st.env ~loc:Loc.none mi in
  let params = List.init (pos + 1) (fun i -> Ident.gensym (Printf.sprintf "x%d" i)) in
  let disp_var = List.nth params pos in
  let instances =
    match Ident.Map.find_opt mi.mi_class st.env.Class_env.instances with
    | Some m -> Ident.Map.bindings m
    | None -> []
  in
  let apply_impl impl =
    Core.apps (Core.Var impl) (List.map (fun p -> Core.Var p) params)
  in
  let alts =
    List.map
      (fun (tycon, (inst : Class_env.inst_info)) ->
        let impl =
          match List.assoc_opt mi.mi_name inst.in_impls with
          | Some (Class_env.User_impl _) ->
              impl_name ~cls:mi.mi_class ~tycon ~meth:mi.mi_name
          | Some Class_env.Default_impl | None ->
              default_name ~cls:mi.mi_class ~meth:mi.mi_name
        in
        {
          Core.alt_con = Core.Tlit (Ast.LString (Ident.text tycon));
          alt_vars = [];
          alt_body = apply_impl impl;
        })
      instances
  in
  let failure =
    Core.App
      ( Core.Var (Ident.intern "primFailure"),
        Core.Lit
          (Ast.LString
             (Printf.sprintf "tag dispatch: no instance of %s"
                (Ident.text mi.mi_class))) )
  in
  let body =
    Core.Case
      ( Core.App (Core.Var prim_type_tag, Core.Var disp_var),
        alts,
        Some failure )
  in
  { Core.b_name = dyn_name ~cls:mi.mi_class ~meth:mi.mi_name;
    b_expr = Core.Lam (params, body) }

(** Per-instance method implementations (and class defaults), translated in
    tag mode themselves: their internal method uses re-dispatch at run
    time. *)
let impl_bindings st : Core.bind list =
  let instance_binds =
    List.concat_map
      (fun (inst : Class_env.inst_info) ->
        let bodies =
          let grouped = Ast.group_decls inst.in_body in
          List.filter_map
            (fun b ->
              match b with
              | Ast.BFun fb -> Some (fb.fb_name, fb)
              | Ast.BPat ({ p = Ast.PVar m; _ }, rhs, loc) ->
                  Some
                    ( m,
                      { Ast.fb_name = m;
                        fb_equations = [ { eq_pats = []; eq_rhs = rhs } ];
                        fb_loc = loc } )
              | Ast.BPat _ -> None)
            grouped.g_binds
        in
        List.filter_map
          (fun (m, impl) ->
            match impl with
            | Class_env.Default_impl -> None
            | Class_env.User_impl _ ->
                let fb = List.assoc m bodies in
                let kernel = Desugar.fun_bind_expr st.env fb in
                Some
                  {
                    Core.b_name =
                      impl_name ~cls:inst.in_class ~tycon:inst.in_tycon ~meth:m;
                    b_expr = translate st Ident.Set.empty kernel;
                  })
          inst.in_impls)
      (Class_env.all_instances st.env)
  in
  let default_binds =
    List.concat_map
      (fun (ci : Class_env.class_info) ->
        List.map
          (fun m ->
            match List.assoc_opt m ci.ci_defaults with
            | Some fb ->
                let kernel = Desugar.fun_bind_expr st.env fb in
                {
                  Core.b_name = default_name ~cls:ci.ci_name ~meth:m;
                  b_expr = translate st Ident.Set.empty kernel;
                }
            | None ->
                (* some instance may omit the method without a default:
                   calling it fails at run time *)
                {
                  Core.b_name = default_name ~cls:ci.ci_name ~meth:m;
                  b_expr =
                    Core.App
                      ( Core.Var (Ident.intern "primFailure"),
                        Core.Lit
                          (Ast.LString
                             (Printf.sprintf
                                "no definition for method %s" (Ident.text m)))
                      );
                })
          ci.ci_methods)
      (Class_env.all_classes st.env)
  in
  instance_binds @ default_binds

(* ------------------------------------------------------------------ *)
(* Whole programs.                                                     *)
(* ------------------------------------------------------------------ *)

(** Translate a desugared program under the tag-dispatch strategy. *)
let translate_program ?(lenient_files = [ "<prelude>" ]) (env : Class_env.t)
    (groups : Kernel.group list) : Core.program =
  let st = { env; used_methods = Ident.Map.empty; lenient = true } in
  let user =
    List.map
      (fun g ->
        let binds = Kernel.binds_of_group g in
        let cbinds =
          List.map
            (fun (b : Kernel.bind) ->
              st.lenient <- List.mem b.kb_loc.Loc.file lenient_files;
              { Core.b_name = b.kb_name;
                b_expr = translate st Ident.Set.empty b.kb_expr })
            binds
        in
        match (g, cbinds) with
        | Kernel.KNonrec _, [ cb ] -> Core.Nonrec cb
        | _ -> Core.Rec cbinds)
      groups
  in
  st.lenient <- true;  (* instance and default bodies: library code *)
  let impls = impl_bindings st in
  (* dispatchers for every dispatchable method (undispatchable methods are
     rejected at their use sites; unused ones need no dispatcher) *)
  let dispatchers =
    Ident.Map.fold
      (fun _ mi acc ->
        match dispatch_of env mi with
        | Exact _ -> dispatcher st mi :: acc
        | Buried _ | Impossible -> acc)
      env.Class_env.methods []
  in
  let main_id = Ident.intern "main" in
  let has_main =
    List.exists
      (fun g ->
        List.exists
          (fun (b : Core.bind) -> Ident.equal b.b_name main_id)
          (Core.binds_of_group g))
      user
  in
  let p : Core.program =
    {
      p_binds = user @ List.map (fun b -> Core.Nonrec b) (impls @ dispatchers);
      p_main = (if has_main then Some main_id else None);
    }
  in
  Tc_core_ir.Scc.regroup p
