(** Run-time operation counters.

    The paper's performance claims (§9) are about machine-independent
    operation counts: dictionary constructions, method selections,
    application overhead. The evaluator counts them directly. *)

type t = {
  mutable steps : int;               (* expression evaluations *)
  mutable applications : int;        (* function applications *)
  mutable dict_constructions : int;  (* MkDict evaluations *)
  mutable dict_fields : int;         (* total fields of constructed dicts *)
  mutable selections : int;          (* Sel evaluations *)
  mutable thunk_forces : int;        (* delayed computations forced *)
  mutable allocations : int;         (* data / dict / closure allocations *)
  mutable prim_calls : int;
  mutable tag_dispatches : int;      (* primTypeTag calls (tag-dispatch mode) *)
}

let create () =
  {
    steps = 0;
    applications = 0;
    dict_constructions = 0;
    dict_fields = 0;
    selections = 0;
    thunk_forces = 0;
    allocations = 0;
    prim_calls = 0;
    tag_dispatches = 0;
  }

let reset t =
  t.steps <- 0;
  t.applications <- 0;
  t.dict_constructions <- 0;
  t.dict_fields <- 0;
  t.selections <- 0;
  t.thunk_forces <- 0;
  t.allocations <- 0;
  t.prim_calls <- 0;
  t.tag_dispatches <- 0

let pairs t =
  [
    ("steps", t.steps);
    ("applications", t.applications);
    ("dict_constructions", t.dict_constructions);
    ("dict_fields", t.dict_fields);
    ("selections", t.selections);
    ("thunk_forces", t.thunk_forces);
    ("allocations", t.allocations);
    ("prim_calls", t.prim_calls);
    ("tag_dispatches", t.tag_dispatches);
  ]

let pp ppf t =
  Fmt.pf ppf
    "steps=%d apps=%d dict-constructions=%d dict-fields=%d selections=%d \
     forces=%d allocations=%d prim-calls=%d tag-dispatches=%d"
    t.steps t.applications t.dict_constructions t.dict_fields t.selections
    t.thunk_forces t.allocations t.prim_calls t.tag_dispatches

let merge dst src =
  dst.steps <- dst.steps + src.steps;
  dst.applications <- dst.applications + src.applications;
  dst.dict_constructions <- dst.dict_constructions + src.dict_constructions;
  dst.dict_fields <- dst.dict_fields + src.dict_fields;
  dst.selections <- dst.selections + src.selections;
  dst.thunk_forces <- dst.thunk_forces + src.thunk_forces;
  dst.allocations <- dst.allocations + src.allocations;
  dst.prim_calls <- dst.prim_calls + src.prim_calls;
  dst.tag_dispatches <- dst.tag_dispatches + src.tag_dispatches
