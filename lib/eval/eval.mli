(** An environment-based evaluator for the core language, supporting
    call-by-need ([`Lazy], the paper's setting) and call-by-value
    ([`Strict]). Recursive bindings are tied with back-patched thunks and
    dictionary fields are delayed in both modes. All dictionary operations
    are counted ({!Counters}). *)

open Tc_support
module Core = Tc_core_ir.Core
module Budget = Tc_resilience.Budget

exception Runtime_error of string

(** The program called [error]. *)
exception User_error of string

(** Pattern-match failure. *)
exception Pattern_fail of string

(** Run-time constructor descriptor. *)
type rcon = {
  rc_name : Ident.t;
  rc_arity : int;
  rc_tag : int;
  rc_tycon : Ident.t;
}

type con_table = rcon Ident.Tbl.t

val con_table_of_env : Tc_types.Class_env.t -> con_table

type value =
  | VInt of int
  | VFloat of float
  | VChar of char
  | VStr of string                       (** internal message strings *)
  | VData of rcon * thunk array
  | VConPartial of rcon * thunk list     (** unsaturated constructor *)
  | VClosure of env * Ident.t list * Core.expr
  | VDict of Core.dict_tag * thunk array
  | VPrim of prim * thunk list

and thunk = { mutable cell : cell }

and cell =
  | Done of value
  | Todo of env * Core.expr
  | Under_eval

and env = thunk Ident.Map.t

and prim = {
  pr_name : string;
  pr_arity : int;
  pr_fn : state -> thunk list -> value;
}

and state = {
  mode : [ `Lazy | `Strict ];
  cons : con_table;
  counters : Counters.t;
  profile : Tc_obs.Profile.rt option;  (** per-site dispatch counts *)
  budget : Budget.meter;
      (** unified resource enforcement; exhaustion raises
          {!Tc_resilience.Budget.Exhausted}. Steps here are expression
          evaluations; frames count thunk-forcing depth. *)
  mutable globals : env;
}

val done_ : value -> thunk

(** Render a float unambiguously (always with '.' or exponent). *)
val float_str : float -> string

val force : state -> thunk -> value
val eval : state -> env -> Core.expr -> value
val apply : state -> value -> thunk -> value

(** {2 Conversions and rendering} *)

val string_of_char_list : state -> value -> string
val char_list_of_string : state -> string -> value

(** Render a value, forcing its spine (depth-limited). *)
val render : ?depth:int -> state -> value -> string

(** The primitive table ([primEqInt], [primError], ...). *)
val primitives : (Ident.t * prim) list

(** {2 Whole programs} *)

(** [profile] attaches a per-site dispatch profile; every [Sel]/[MkDict]
    evaluated is also counted against its compile-time site. [budget]
    (default {!Tc_resilience.Budget.unlimited}) bounds the run; creating
    the state starts its wall clock. *)
val create_state :
  ?mode:[ `Lazy | `Strict ] ->
  ?budget:Budget.t ->
  ?profile:Tc_obs.Profile.rt ->
  con_table ->
  state

(** Install a program's top-level bindings (plus the primitives) into the
    state's global environment; top-level groups stay lazy (CAFs). *)
val load_program : state -> Core.program -> unit

(** Evaluate an expression in the loaded global environment. *)
val eval_expr : state -> Core.expr -> value

(** Run the requested [entry], or the program's [main]. *)
val run : ?entry:Ident.t -> state -> Core.program -> value
