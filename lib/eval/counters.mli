(** Run-time operation counters: the machine-independent quantities behind
    the paper's §9 performance claims. *)

type t = {
  mutable steps : int;               (** expression evaluations *)
  mutable applications : int;
  mutable dict_constructions : int;  (** MkDict evaluations *)
  mutable dict_fields : int;         (** total fields of constructed dicts *)
  mutable selections : int;          (** Sel evaluations *)
  mutable thunk_forces : int;
  mutable allocations : int;
  mutable prim_calls : int;
  mutable tag_dispatches : int;      (** primTypeTag calls (tag mode) *)
}

val create : unit -> t
val reset : t -> unit

(** [merge dst src] adds [src]'s counts into [dst] — cumulative totals
    across runs (used by [mhc serve] statistics). *)
val merge : t -> t -> unit

(** Every counter as a (name, value) pair, in declaration order — the basis
    for the JSON renderings used by [mhc counters]/[trace]/[profile]. *)
val pairs : t -> (string * int) list

val pp : Format.formatter -> t -> unit
