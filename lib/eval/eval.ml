(** An environment-based evaluator for the core language.

    Supports call-by-need ([`Lazy], the paper's Haskell setting) and
    call-by-value ([`Strict]) parameter passing. In both modes, recursive
    bindings are tied with back-patched thunks and dictionary fields are
    delayed (a strict implementation would use eta-expanded method slots;
    delaying gives the same operation counts without needing recursive
    values).

    All dictionary operations are counted; see {!Counters}. *)

open Tc_support
module Core = Tc_core_ir.Core
module Ast = Tc_syntax.Ast
module Budget = Tc_resilience.Budget
module Inject = Tc_resilience.Inject

exception Runtime_error of string
exception User_error of string      (* the program called [error] *)
exception Pattern_fail of string    (* pattern-match failure *)

let runtime fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

(** A condition the front end is supposed to have ruled out: a well-typed
    core program can never reach it, so hitting one is a compiler bug, not
    an error in the user's program. *)
let bug fmt = Format.kasprintf (fun m -> raise (Runtime_error ("[BUG] " ^ m))) fmt

(** Run-time constructor descriptor. *)
type rcon = {
  rc_name : Ident.t;
  rc_arity : int;
  rc_tag : int;
  rc_tycon : Ident.t;
}

(** Run-time constructor table, derived from the static environment. *)
type con_table = rcon Ident.Tbl.t

let con_table_of_env (env : Tc_types.Class_env.t) : con_table =
  let tbl = Ident.Tbl.create 64 in
  Ident.Map.iter
    (fun name (ci : Tc_types.Class_env.con_info) ->
      Ident.Tbl.replace tbl name
        {
          rc_name = name;
          rc_arity = ci.con_arity;
          rc_tag = ci.con_tag;
          rc_tycon = ci.con_tycon.Tc_types.Tycon.name;
        })
    env.Tc_types.Class_env.datacons;
  tbl

type value =
  | VInt of int
  | VFloat of float
  | VChar of char
  | VStr of string                       (* internal message strings *)
  | VData of rcon * thunk array
  | VConPartial of rcon * thunk list     (* unsaturated constructor *)
  | VClosure of env * Ident.t list * Core.expr
  | VDict of Core.dict_tag * thunk array
  | VPrim of prim * thunk list           (* partially applied primitive *)

and thunk = { mutable cell : cell }

and cell =
  | Done of value
  | Todo of env * Core.expr
  | Under_eval  (* black hole *)

and env = thunk Ident.Map.t

and prim = {
  pr_name : string;
  pr_arity : int;
  pr_fn : state -> thunk list -> value;
}

and state = {
  mode : [ `Lazy | `Strict ];
  cons : con_table;
  counters : Counters.t;
  profile : Tc_obs.Profile.rt option;  (* per-site dispatch counts *)
  budget : Budget.meter;       (* step/frame/wall/alloc enforcement *)
  mutable globals : env;       (* top-level bindings, for rendering etc. *)
}

let done_ v = { cell = Done v }

(** Render a float unambiguously (always with a '.' or exponent). *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

(* ------------------------------------------------------------------ *)
(* Forcing and evaluation.                                             *)
(* ------------------------------------------------------------------ *)

(* Frame accounting on this backend counts thunk-forcing depth: [force]'s
   recursion into [eval] is the evaluator's only inherently non-tail
   spine (the object program's tail calls run as OCaml tail calls and
   must stay frameless), so it is both what actually consumes native
   stack under deep non-tail object recursion and safe to bracket. *)
let rec force st (t : thunk) : value =
  match t.cell with
  | Done v -> v
  | Under_eval -> runtime "<<loop>> (value depends on itself)"
  | Todo (env, e) ->
      st.counters.thunk_forces <- st.counters.thunk_forces + 1;
      t.cell <- Under_eval;
      Budget.enter_frame st.budget;
      let v = eval st env e in
      Budget.exit_frame st.budget;
      t.cell <- Done v;
      v

and eval st (env : env) (e : Core.expr) : value =
  st.counters.steps <- st.counters.steps + 1;
  Budget.step st.budget;
  Budget.check_allocs st.budget st.counters.allocations;
  if !Inject.live then Inject.hit Inject.Eval_step;
  match e with
  | Core.Var x -> (
      match Ident.Map.find_opt x env with
      | Some t -> force st t
      | None -> bug "unbound variable '%s'" (Ident.text x))
  | Core.Lit (Ast.LInt n) -> VInt n
  | Core.Lit (Ast.LFloat f) -> VFloat f
  | Core.Lit (Ast.LChar c) -> VChar c
  | Core.Lit (Ast.LString s) -> VStr s
  | Core.Con c -> (
      match Ident.Tbl.find_opt st.cons c with
      | None -> bug "unknown constructor '%s'" (Ident.text c)
      | Some rc ->
          if rc.rc_arity = 0 then begin
            st.counters.allocations <- st.counters.allocations + 1;
            VData (rc, [||])
          end
          else VConPartial (rc, []))
  | Core.App (f, a) ->
      let vf = eval st env f in
      let arg =
        match st.mode with
        | `Lazy -> { cell = Todo (env, a) }
        | `Strict -> done_ (eval st env a)
      in
      apply st vf arg
  | Core.Lam (vs, b) ->
      st.counters.allocations <- st.counters.allocations + 1;
      VClosure (env, vs, b)
  | Core.Let (Core.Nonrec bd, body) ->
      let t =
        match st.mode with
        | `Lazy -> { cell = Todo (env, bd.b_expr) }
        | `Strict -> done_ (eval st env bd.b_expr)
      in
      eval st (Ident.Map.add bd.b_name t env) body
  | Core.Let (Core.Rec bds, body) ->
      let env' = bind_rec st env bds in
      eval st env' body
  | Core.If (c, t, f) -> (
      match eval st env c with
      | VData (rc, _) -> (
          match Ident.text rc.rc_name with
          | "True" -> eval st env t
          | "False" -> eval st env f
          | s -> bug "if: expected a Bool, got constructor '%s'" s)
      | _ -> bug "if: condition is not a Bool")
  | Core.Case (s, alts, default) -> (
      let v = eval st env s in
      let run_default () =
        match default with
        | Some d -> eval st env d
        | None -> bug "case: no matching alternative"
      in
      match v with
      | VData (rc, fields) -> (
          match
            List.find_opt
              (fun (a : Core.alt) ->
                match a.alt_con with
                | Core.Tcon c -> Ident.equal c rc.rc_name
                | Core.Tlit _ -> false)
              alts
          with
          | Some a ->
              let env' =
                List.fold_left2
                  (fun m v' t -> Ident.Map.add v' t m)
                  env a.alt_vars (Array.to_list fields)
              in
              eval st env' a.alt_body
          | None -> run_default ())
      | VInt _ | VFloat _ | VChar _ | VStr _ -> (
          match
            List.find_opt
              (fun (a : Core.alt) ->
                match a.alt_con with
                | Core.Tlit l -> lit_matches l v
                | Core.Tcon _ -> false)
              alts
          with
          | Some a -> eval st env a.alt_body
          | None -> run_default ())
      | _ -> bug "case: scrutinee is not a data value")
  | Core.MkDict (tag, fields) ->
      st.counters.dict_constructions <- st.counters.dict_constructions + 1;
      st.counters.dict_fields <- st.counters.dict_fields + List.length fields;
      st.counters.allocations <- st.counters.allocations + 1;
      (match st.profile with
       | Some p -> Tc_obs.Profile.hit_dict p tag
       | None -> ());
      (* dictionary fields are always delayed; see module comment *)
      VDict (tag, Array.of_list (List.map (fun f -> { cell = Todo (env, f) }) fields))
  | Core.Sel (info, d) -> (
      st.counters.selections <- st.counters.selections + 1;
      (match st.profile with
       | Some p -> Tc_obs.Profile.hit_sel p info
       | None -> ());
      match eval st env d with
      | VDict (_, fields) ->
          if info.sel_index >= Array.length fields then
            bug "dictionary selection out of range (%d of %d)"
              info.sel_index (Array.length fields)
          else force st fields.(info.sel_index)
      | _ -> bug "selection from a non-dictionary value")
  | Core.Hole h -> (
      match h.hole_fill with
      | Some inner -> eval st env inner
      | None -> bug "evaluated an unresolved placeholder")

and lit_matches (l : Core.lit) (v : value) : bool =
  match (l, v) with
  | Ast.LInt a, VInt b -> a = b
  | Ast.LFloat a, VFloat b -> a = b
  | Ast.LChar a, VChar b -> a = b
  | Ast.LString a, VStr b -> a = b  (* tag-dispatch branches on type tags *)
  | _ -> false

and bind_rec st env (bds : Core.bind list) : env =
  let thunks = List.map (fun _ -> { cell = Under_eval }) bds in
  let env' =
    List.fold_left2
      (fun m (bd : Core.bind) t -> Ident.Map.add bd.b_name t m)
      env bds thunks
  in
  List.iter2
    (fun (bd : Core.bind) t -> t.cell <- Todo (env', bd.b_expr))
    bds thunks;
  (if st.mode = `Strict then
     (* force in order; dictionary knots survive because MkDict delays *)
     List.iter (fun t -> ignore (force st t)) thunks);
  env'

and apply st (vf : value) (arg : thunk) : value =
  st.counters.applications <- st.counters.applications + 1;
  match vf with
  | VClosure (cenv, [ v ], b) -> eval st (Ident.Map.add v arg cenv) b
  | VClosure (cenv, v :: vs, b) ->
      st.counters.allocations <- st.counters.allocations + 1;
      VClosure (Ident.Map.add v arg cenv, vs, b)
  | VClosure (_, [], _) -> assert false
  | VConPartial (rc, args) ->
      let args' = arg :: args in
      if List.length args' = rc.rc_arity then begin
        st.counters.allocations <- st.counters.allocations + 1;
        VData (rc, Array.of_list (List.rev args'))
      end
      else VConPartial (rc, args')
  | VPrim (p, args) ->
      let args' = arg :: args in
      if List.length args' = p.pr_arity then begin
        st.counters.prim_calls <- st.counters.prim_calls + 1;
        p.pr_fn st (List.rev args')
      end
      else VPrim (p, args')
  | VInt _ | VFloat _ | VChar _ | VStr _ | VData _ | VDict _ ->
      bug "applied a non-function value"

(* ------------------------------------------------------------------ *)
(* Conversions between values and OCaml strings / lists.               *)
(* ------------------------------------------------------------------ *)

let string_of_char_list st (v : value) : string =
  let buf = Buffer.create 16 in
  let rec go v =
    match v with
    | VData (rc, fields) -> (
        match Ident.text rc.rc_name with
        | "[]" -> ()
        | ":" -> (
            (match force st fields.(0) with
             | VChar c -> Buffer.add_char buf c
             | _ -> bug "expected a character in a string");
            go (force st fields.(1)))
        | s -> bug "expected a list of characters, got '%s'" s)
    | _ -> bug "expected a list of characters"
  in
  go v;
  Buffer.contents buf

and char_list_of_string st (s : string) : value =
  let nil_rc =
    match Ident.Tbl.find_opt st.cons (Ident.intern "[]") with
    | Some rc -> rc
    | None -> runtime "list constructors not registered"
  in
  let cons_rc = Option.get (Ident.Tbl.find_opt st.cons (Ident.intern ":")) in
  let rec build i =
    if i >= String.length s then VData (nil_rc, [||])
    else VData (cons_rc, [| done_ (VChar s.[i]); done_ (build (i + 1)) |])
  in
  build 0

(* ------------------------------------------------------------------ *)
(* Rendering results (forces the value's spine).                       *)
(* ------------------------------------------------------------------ *)

let rec render ?(depth = 50) st (v : value) : string =
  if depth = 0 then "..."
  else
    match v with
    | VInt n -> string_of_int n
    | VFloat f -> float_str f
    | VChar c -> Printf.sprintf "%C" c
    | VStr s -> Printf.sprintf "%S" s
    | VDict (tag, fields) ->
        Printf.sprintf "<dict %s %s (%d fields)>"
          (Ident.text tag.dt_class) (Ident.text tag.dt_tycon)
          (Array.length fields)
    | VClosure _ | VConPartial _ | VPrim _ -> "<function>"
    | VData (rc, fields) -> render_data ~depth st rc fields

and render_data ~depth st rc fields =
  let name = Ident.text rc.rc_name in
  if name = ":" || name = "[]" then render_list ~depth st rc fields
  else if String.length name >= 2 && name.[0] = '(' && (name.[1] = ',' || name.[1] = ')')
  then
    (* tuples and unit *)
    if Array.length fields = 0 then "()"
    else
      "("
      ^ String.concat ", "
          (Array.to_list
             (Array.map (fun t -> render ~depth:(depth - 1) st (force st t)) fields))
      ^ ")"
  else if Array.length fields = 0 then name
  else
    "("
    ^ name
    ^ Array.fold_left
        (fun acc t -> acc ^ " " ^ render ~depth:(depth - 1) st (force st t))
        "" fields
    ^ ")"

and render_list ~depth st rc fields =
  (* try to render as a string if all elements are chars, else as a list *)
  let items = ref [] in
  let rec collect rc fields =
    match Ident.text rc.rc_name with
    | "[]" -> true
    | ":" -> (
        items := force st fields.(0) :: !items;
        match force st fields.(1) with
        | VData (rc', fields') -> collect rc' fields'
        | _ -> false)
    | _ -> false
  in
  let proper = collect rc fields in
  let items = List.rev !items in
  if proper && items <> [] && List.for_all (function VChar _ -> true | _ -> false) items
  then
    Printf.sprintf "%S"
      (String.init (List.length items)
         (fun i ->
           match List.nth items i with VChar c -> c | _ -> assert false))
  else
    "["
    ^ String.concat ", " (List.map (render ~depth:(depth - 1) st) items)
    ^ (if proper then "" else " ...")
    ^ "]"

(* ------------------------------------------------------------------ *)
(* Primitives.                                                         *)
(* ------------------------------------------------------------------ *)

let prim name arity fn = (Ident.intern name, { pr_name = name; pr_arity = arity; pr_fn = fn })

let bool_value st b : value =
  let name = if b then "True" else "False" in
  match Ident.Tbl.find_opt st.cons (Ident.intern name) with
  | Some rc -> VData (rc, [||])
  | None -> runtime "Bool is not defined (missing prelude?)"

let int_arg st t =
  match force st t with
  | VInt n -> n
  | _ -> bug "primitive expected an Int"

let float_arg st t =
  match force st t with
  | VFloat f -> f
  | _ -> bug "primitive expected a Float"

let char_arg st t =
  match force st t with
  | VChar c -> c
  | _ -> bug "primitive expected a Char"

let int2 f = fun st args ->
  match args with
  | [ a; b ] -> VInt (f (int_arg st a) (int_arg st b))
  | _ -> assert false

let float2 f = fun st args ->
  match args with
  | [ a; b ] -> VFloat (f (float_arg st a) (float_arg st b))
  | _ -> assert false

let primitives : (Ident.t * prim) list =
  [
    prim "primEqInt" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (int_arg st a = int_arg st b)
        | _ -> assert false);
    prim "primEqFloat" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (float_arg st a = float_arg st b)
        | _ -> assert false);
    prim "primEqChar" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (char_arg st a = char_arg st b)
        | _ -> assert false);
    prim "primLeInt" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (int_arg st a <= int_arg st b)
        | _ -> assert false);
    prim "primLeFloat" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (float_arg st a <= float_arg st b)
        | _ -> assert false);
    prim "primLeChar" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (char_arg st a <= char_arg st b)
        | _ -> assert false);
    prim "primAddInt" 2 (int2 ( + ));
    prim "primSubInt" 2 (int2 ( - ));
    prim "primMulInt" 2 (int2 ( * ));
    prim "primDivInt" 2 (fun st args ->
        match args with
        | [ a; b ] ->
            let d = int_arg st b in
            if d = 0 then runtime "division by zero"
            else VInt (int_arg st a / d)
        | _ -> assert false);
    prim "primModInt" 2 (fun st args ->
        match args with
        | [ a; b ] ->
            let d = int_arg st b in
            if d = 0 then runtime "modulo by zero"
            else VInt (int_arg st a mod d)
        | _ -> assert false);
    prim "primNegInt" 1 (fun st args ->
        match args with
        | [ a ] -> VInt (-int_arg st a)
        | _ -> assert false);
    prim "primAddFloat" 2 (float2 ( +. ));
    prim "primSubFloat" 2 (float2 ( -. ));
    prim "primMulFloat" 2 (float2 ( *. ));
    prim "primDivFloat" 2 (float2 ( /. ));
    prim "primNegFloat" 1 (fun st args ->
        match args with
        | [ a ] -> VFloat (-.float_arg st a)
        | _ -> assert false);
    prim "primIntToFloat" 1 (fun st args ->
        match args with
        | [ a ] -> VFloat (float_of_int (int_arg st a))
        | _ -> assert false);
    prim "primIntStr" 1 (fun st args ->
        match args with
        | [ a ] -> char_list_of_string st (string_of_int (int_arg st a))
        | _ -> assert false);
    prim "primFloatStr" 1 (fun st args ->
        match args with
        | [ a ] -> char_list_of_string st (float_str (float_arg st a))
        | _ -> assert false);
    prim "primStrInt" 1 (fun st args ->
        match args with
        | [ a ] -> (
            let s = string_of_char_list st (force st a) in
            match int_of_string_opt (String.trim s) with
            | Some n -> VInt n
            | None -> raise (User_error (Printf.sprintf "primStrInt: cannot parse %S" s)))
        | _ -> assert false);
    prim "primStrFloat" 1 (fun st args ->
        match args with
        | [ a ] -> (
            let s = string_of_char_list st (force st a) in
            match float_of_string_opt (String.trim s) with
            | Some f -> VFloat f
            | None ->
                raise (User_error (Printf.sprintf "primStrFloat: cannot parse %S" s)))
        | _ -> assert false);
    prim "primChr" 1 (fun st args ->
        match args with
        | [ a ] ->
            let n = int_arg st a in
            if n < 0 || n > 255 then runtime "primChr: out of range"
            else VChar (Char.chr n)
        | _ -> assert false);
    prim "primOrd" 1 (fun st args ->
        match args with
        | [ a ] -> VInt (Char.code (char_arg st a))
        | _ -> assert false);
    prim "primError" 1 (fun st args ->
        match args with
        | [ a ] -> raise (User_error (string_of_char_list st (force st a)))
        | _ -> assert false);
    prim "primFailure" 1 (fun st args ->
        match args with
        | [ a ] -> (
            match force st a with
            | VStr s -> raise (Pattern_fail s)
            | _ -> raise (Pattern_fail "pattern-match failure"))
        | _ -> assert false);
    prim "primTypeTag" 1 (fun st args ->
        match args with
        | [ a ] ->
            st.counters.tag_dispatches <- st.counters.tag_dispatches + 1;
            let tag =
              match force st a with
              | VInt _ -> "Int"
              | VFloat _ -> "Float"
              | VChar _ -> "Char"
              | VStr _ -> "<str>"
              | VData (rc, _) -> Ident.text rc.rc_tycon
              | VClosure _ | VConPartial _ | VPrim _ -> "->"
              | VDict _ -> "<dict>"
            in
            VStr tag
        | _ -> assert false);
    prim "primForce" 2 (fun st args ->
        match args with
        | [ a; b ] ->
            ignore (force st a);
            force st b
        | _ -> assert false);
  ]

(* ------------------------------------------------------------------ *)
(* Whole programs.                                                     *)
(* ------------------------------------------------------------------ *)

let create_state ?(mode = `Lazy) ?(budget = Budget.unlimited) ?profile
    (cons : con_table) : state =
  {
    mode;
    cons;
    counters = Counters.create ();
    profile;
    budget = Budget.meter budget;
    globals = Ident.Map.empty;
  }

(** Install the top-level bindings of [p] (and the primitives) into the
    state's global environment. *)
let load_program st (p : Core.program) : unit =
  let env0 =
    List.fold_left
      (fun m (name, pr) -> Ident.Map.add name (done_ (VPrim (pr, []))) m)
      Ident.Map.empty primitives
  in
  let env =
    List.fold_left
      (fun env g ->
        match g with
        | Core.Nonrec bd ->
            Ident.Map.add bd.b_name { cell = Todo (env, bd.b_expr) } env
        | Core.Rec bds ->
            (* delay: never force top-level groups eagerly, even in strict
               mode — top-level values behave like CAFs *)
            let thunks = List.map (fun _ -> { cell = Under_eval }) bds in
            let env' =
              List.fold_left2
                (fun m (bd : Core.bind) t -> Ident.Map.add bd.b_name t m)
                env bds thunks
            in
            List.iter2
              (fun (bd : Core.bind) t -> t.cell <- Todo (env', bd.b_expr))
              bds thunks;
            env')
      env0 p.p_binds
  in
  st.globals <- env

(** Evaluate an expression in the loaded global environment. *)
let eval_expr st (e : Core.expr) : value = eval st st.globals e

(** Run a binding to a value: the explicitly requested [entry], else the
    program's [main]. *)
let run ?entry st (p : Core.program) : value =
  load_program st p;
  let entry =
    match entry with
    | Some e -> e
    | None -> (
        match p.p_main with Some m -> m | None -> Ident.intern "main")
  in
  match Ident.Map.find_opt entry st.globals with
  | Some t -> force st t
  | None -> runtime "no '%s' binding to run" (Ident.text entry)
