(** Dispatch-site profiling.

    Every [Core.Sel] and [Core.MkDict] carries a {e site}: a unique id
    minted when the node is created during dictionary conversion, plus the
    source location it was created for. Sites survive optimization (the
    optimizer rebuilds expressions around the same [sel_info]/[dict_tag]
    records) and travel into VM bytecode unchanged, so both backends can
    attribute each runtime selection / dictionary construction to the
    compile-time site that caused it.

    The compile-time side is {!site_table} — the sites present in a final
    core program; the run-time side is {!rt} — per-site hit counts bumped
    by the evaluator and the VM next to the aggregate {!Tc_eval.Counters}
    bumps, so per-site totals sum exactly to the aggregate counters. *)

open Tc_support
module Core = Tc_core_ir.Core

type site_kind = Selection | Construction

let kind_name = function Selection -> "sel" | Construction -> "mkdict"

(** A static dispatch site of a compiled program. *)
type site_info = {
  s_id : int;
  s_kind : site_kind;
  s_class : Ident.t;   (* class whose dictionary is consulted / built *)
  s_detail : string;   (* method or slot label; instance tycon for MkDict *)
  s_loc : Loc.t;
}

(* ------------------------------------------------------------------ *)
(* Compile-time: the site table of a program.                          *)
(* ------------------------------------------------------------------ *)

let site_table (p : Core.program) : site_info list =
  let tbl : (int, site_info) Hashtbl.t = Hashtbl.create 64 in
  let add (info : site_info) =
    if not (Hashtbl.mem tbl info.s_id) then Hashtbl.add tbl info.s_id info
  in
  let rec go (e : Core.expr) =
    (match e with
     | Core.Sel (s, _) ->
         add
           { s_id = s.Core.sel_site.Core.site_id;
             s_kind = Selection;
             s_class = s.Core.sel_class;
             s_detail = s.Core.sel_label;
             s_loc = s.Core.sel_site.Core.site_loc }
     | Core.MkDict (t, _) ->
         add
           { s_id = t.Core.dt_site.Core.site_id;
             s_kind = Construction;
             s_class = t.Core.dt_class;
             s_detail = Ident.text t.Core.dt_tycon;
             s_loc = t.Core.dt_site.Core.site_loc }
     | _ -> ());
    Core.iter_sub go e
  in
  List.iter
    (fun g ->
      List.iter (fun (b : Core.bind) -> go b.Core.b_expr) (Core.binds_of_group g))
    p.Core.p_binds;
  Hashtbl.fold (fun _ i acc -> i :: acc) tbl []
  |> List.sort (fun a b -> compare a.s_id b.s_id)

(** Static dictionary-operation counts of a program: (Sel nodes, MkDict
    nodes). Used for the optimizer's per-pass deltas. *)
let static_dict_ops (p : Core.program) : int * int =
  let sels = ref 0 and dicts = ref 0 in
  let rec go (e : Core.expr) =
    (match e with
     | Core.Sel _ -> incr sels
     | Core.MkDict _ -> incr dicts
     | _ -> ());
    Core.iter_sub go e
  in
  List.iter
    (fun g ->
      List.iter (fun (b : Core.bind) -> go b.Core.b_expr) (Core.binds_of_group g))
    p.Core.p_binds;
  (!sels, !dicts)

let program_size (p : Core.program) : int =
  List.fold_left
    (fun acc g ->
      List.fold_left
        (fun acc (b : Core.bind) -> acc + Core.size b.Core.b_expr)
        acc (Core.binds_of_group g))
    0 p.Core.p_binds

(* ------------------------------------------------------------------ *)
(* Run-time: per-site hit counts.                                      *)
(* ------------------------------------------------------------------ *)

(** Per-site hit counts for one execution. *)
type rt = {
  sel_counts : (int, int) Hashtbl.t;
  dict_counts : (int, int) Hashtbl.t;
}

let create_rt () : rt =
  { sel_counts = Hashtbl.create 64; dict_counts = Hashtbl.create 64 }

let bump tbl id =
  match Hashtbl.find_opt tbl id with
  | Some n -> Hashtbl.replace tbl id (n + 1)
  | None -> Hashtbl.add tbl id 1

let hit_sel (rt : rt) (s : Core.sel_info) : unit =
  bump rt.sel_counts s.Core.sel_site.Core.site_id

let hit_dict (rt : rt) (t : Core.dict_tag) : unit =
  bump rt.dict_counts t.Core.dt_site.Core.site_id

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)
(* ------------------------------------------------------------------ *)

type entry = { e_site : site_info; e_count : int }

type report = {
  r_sels : entry list;   (* hit selection sites, count desc then id asc *)
  r_dicts : entry list;  (* hit construction sites, same order *)
  r_sel_total : int;     (* equals the aggregate [selections] counter *)
  r_dict_total : int;    (* equals the aggregate [dict_constructions] *)
  r_static_sites : int;  (* distinct sites in the compiled program *)
}

let make ~(sites : site_info list) (rt : rt) : report =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.s_id s) sites;
  let entries kind tbl =
    Hashtbl.fold
      (fun id count acc ->
        let site =
          match Hashtbl.find_opt by_id id with
          | Some s -> s
          | None ->
              (* a site executed but absent from the final program text
                 should be impossible; keep the count honest regardless *)
              { s_id = id; s_kind = kind; s_class = Ident.intern "?";
                s_detail = "<unknown>"; s_loc = Loc.none }
        in
        { e_site = site; e_count = count } :: acc)
      tbl []
    |> List.sort (fun a b ->
           match compare b.e_count a.e_count with
           | 0 -> compare a.e_site.s_id b.e_site.s_id
           | c -> c)
  in
  let total tbl = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0 in
  {
    r_sels = entries Selection rt.sel_counts;
    r_dicts = entries Construction rt.dict_counts;
    r_sel_total = total rt.sel_counts;
    r_dict_total = total rt.dict_counts;
    r_static_sites = List.length sites;
  }

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  if n < 0 then xs else go n xs

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "%8d  #%-4d %a.%s%a" e.e_count e.e_site.s_id Ident.pp
    e.e_site.s_class e.e_site.s_detail
    (fun ppf loc -> if Loc.is_none loc then () else Fmt.pf ppf "  [%a]" Loc.pp loc)
    e.e_site.s_loc

(** Human-readable report: totals plus the hottest [top] sites of each
    kind. *)
let pp_report ?(top = 10) ppf (r : report) =
  Fmt.pf ppf "dispatch profile: %d selections over %d sites, %d dictionary \
              constructions over %d sites (%d static sites)@."
    r.r_sel_total (List.length r.r_sels) r.r_dict_total (List.length r.r_dicts)
    r.r_static_sites;
  if r.r_sels <> [] then begin
    Fmt.pf ppf "top selection sites:@.";
    List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (take top r.r_sels)
  end;
  if r.r_dicts <> [] then begin
    Fmt.pf ppf "top construction sites:@.";
    List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (take top r.r_dicts)
  end

let entry_json (e : entry) : Json.t =
  Json.Obj
    [ ("site", Json.Int e.e_site.s_id);
      ("kind", Json.Str (kind_name e.e_site.s_kind));
      ("class", Json.Str (Ident.text e.e_site.s_class));
      ("label", Json.Str e.e_site.s_detail);
      ("loc",
       if Loc.is_none e.e_site.s_loc then Json.Null
       else Json.Str (Loc.to_string e.e_site.s_loc));
      ("count", Json.Int e.e_count) ]

let report_json ?(top = -1) (r : report) : Json.t =
  Json.Obj
    [ ("totals",
       Json.Obj
         [ ("selections", Json.Int r.r_sel_total);
           ("dict_constructions", Json.Int r.r_dict_total) ]);
      ("static_sites", Json.Int r.r_static_sites);
      ("selection_sites", Json.List (List.map entry_json (take top r.r_sels)));
      ("construction_sites",
       Json.List (List.map entry_json (take top r.r_dicts))) ]

(* ------------------------------------------------------------------ *)
(* Spec profiles: the persisted form of a dispatch profile, consumed   *)
(* by the profile-guided specializer on a later compile.               *)
(* ------------------------------------------------------------------ *)

type spec_site = {
  ss_id : int;
  ss_kind : site_kind;
  ss_class : string;
  ss_detail : string;
  ss_loc : string;  (* rendered location; "" when none *)
  ss_count : int;
}

type spec = spec_site list

let spec_of_entry (e : entry) : spec_site =
  {
    ss_id = e.e_site.s_id;
    ss_kind = e.e_site.s_kind;
    ss_class = Ident.text e.e_site.s_class;
    ss_detail = e.e_site.s_detail;
    ss_loc =
      (if Loc.is_none e.e_site.s_loc then ""
       else Loc.to_string e.e_site.s_loc);
    ss_count = e.e_count;
  }

let spec_of_report (r : report) : spec =
  List.map spec_of_entry (r.r_sels @ r.r_dicts)

let spec_json (s : spec) : Json.t =
  Json.Obj
    [ ("version", Json.Int 1);
      ("kind", Json.Str "mhc-spec-profile");
      ("sites",
       Json.List
         (List.map
            (fun ss ->
              Json.Obj
                [ ("site", Json.Int ss.ss_id);
                  ("kind", Json.Str (kind_name ss.ss_kind));
                  ("class", Json.Str ss.ss_class);
                  ("label", Json.Str ss.ss_detail);
                  ("loc",
                   if ss.ss_loc = "" then Json.Null else Json.Str ss.ss_loc);
                  ("count", Json.Int ss.ss_count) ])
            s)) ]

let site_of_json (j : Json.t) : (spec_site, string) result =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  match (int "site", str "kind", int "count") with
  | Some id, Some kind, Some count -> (
      match kind with
      | "sel" | "mkdict" ->
          Ok
            {
              ss_id = id;
              ss_kind = (if kind = "sel" then Selection else Construction);
              ss_class = Option.value ~default:"?" (str "class");
              ss_detail = Option.value ~default:"" (str "label");
              ss_loc = Option.value ~default:"" (str "loc");
              ss_count = count;
            }
      | k -> Error (Printf.sprintf "unknown site kind %S" k))
  | _ ->
      Error
        "site entry needs integer \"site\", string \"kind\" and integer \
         \"count\""

let sites_of_json (j : Json.t) : (spec, string) result =
  match j with
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          match (acc, site_of_json item) with
          | Error _, _ -> acc
          | _, Error e -> Error e
          | Ok ss, Ok s -> Ok (s :: ss))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "expected a JSON array of sites"

(** Accepts both the compact [--emit-spec] form ([{"sites": [...]}]) and
    the full [mhc profile --json] report
    ([{"selection_sites": [...], "construction_sites": [...]}]). *)
let spec_of_json (j : Json.t) : (spec, string) result =
  match
    ( Json.member "sites" j,
      Json.member "selection_sites" j,
      Json.member "construction_sites" j )
  with
  | Some sites, _, _ -> sites_of_json sites
  | None, Some sels, Some dicts -> (
      match (sites_of_json sels, sites_of_json dicts) with
      | Ok a, Ok b -> Ok (a @ b)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | _ ->
      Error
        "not a dispatch profile: expected a \"sites\" array or \
         \"selection_sites\"/\"construction_sites\""

let spec_digest (s : spec) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun ss ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%s|%s|%s|%s|%d\n" ss.ss_id (kind_name ss.ss_kind)
           ss.ss_class ss.ss_detail ss.ss_loc ss.ss_count))
    s;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Remapping a loaded spec onto the current program's site table.

   Site ids are deterministic for identical source + options in a fresh
   process, but a profile may have been taken against a slightly different
   compile (other passes applied first, an edited file). So matching is
   descriptor-first — (kind, class, label, loc) identifies a site across
   compiles, with counts summed when desugaring duplicates a location —
   and falls back to the raw id only for sites whose descriptor is absent
   from the profile. *)
let descriptor ~kind ~cls ~detail ~loc =
  kind ^ "|" ^ cls ^ "|" ^ detail ^ "|" ^ loc

let counts_for (s : spec) (sites : site_info list) : (int * int) list =
  let by_desc : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let by_id : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ss ->
      let d =
        descriptor ~kind:(kind_name ss.ss_kind) ~cls:ss.ss_class
          ~detail:ss.ss_detail ~loc:ss.ss_loc
      in
      let prev = Option.value ~default:0 (Hashtbl.find_opt by_desc d) in
      Hashtbl.replace by_desc d (prev + ss.ss_count);
      Hashtbl.replace by_id ss.ss_id ss.ss_count)
    s;
  List.filter_map
    (fun (si : site_info) ->
      let d =
        descriptor ~kind:(kind_name si.s_kind)
          ~cls:(Ident.text si.s_class) ~detail:si.s_detail
          ~loc:
            (if Loc.is_none si.s_loc then "" else Loc.to_string si.s_loc)
      in
      match Hashtbl.find_opt by_desc d with
      | Some n when n > 0 -> Some (si.s_id, n)
      | Some _ -> None
      | None -> (
          match Hashtbl.find_opt by_id si.s_id with
          | Some n when n > 0 -> Some (si.s_id, n)
          | _ -> None))
    sites
