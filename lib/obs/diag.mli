(** Machine-readable (JSON) rendering of compiler diagnostics, used by
    [mhc check --json]. Field order is fixed, so output is deterministic. *)

open Tc_support

(** ["error"], ["warning"] or ["ice"]. *)
val severity_string : Diagnostic.severity -> string

(** One diagnostic:
    [{file, line, col, endLine, endCol, severity, message, hints}].
    Location fields are [null] for unlocated diagnostics; [line]/[col]
    are 1-based and [endLine]/[endCol] are inclusive. *)
val json : Diagnostic.t -> Json.t

val json_list : Diagnostic.t list -> Json.t

(** Per-file roll-up: [{file, errors, warnings, ice}]. *)
val file_summary : file:string -> Diagnostic.t list -> Json.t

(** The [mhc check --json] report over a batch of files:
    [{files: [{file, errors, warnings, ice}], diagnostics: [...],
    errors, warnings, ice}]. *)
val report : (string * Diagnostic.t list) list -> Json.t
