(** Structured compile-time tracing.

    The checker's operational story — context reduction (§5), placeholder
    creation and resolution (§6.3), defaulting — and the optimizer's
    per-pass effect are reported as a stream of typed events. A [sink]
    receives events as they happen; [none] (the default everywhere)
    disables tracing. Event payloads are only constructed when a sink is
    installed: emitters pass a thunk to {!emit}, so the disabled path is a
    single [match] on an option. *)

open Tc_support

type event =
  | Context_reduction of {
      cls : Ident.t;       (* constraint being reduced *)
      ty : string;         (* rendered constructor type it lands on *)
      loc : Loc.t;
    }
  | Instance_lookup of {
      cls : Ident.t;
      tycon : Ident.t;
      found : bool;
      loc : Loc.t;
    }
  | Placeholder_created of {
      id : int;            (* Core hole id *)
      kind : string;       (* "dict C" | "method m" | "recursive f" *)
      ty : string;         (* rendered qualified type at creation *)
      loc : Loc.t;
    }
  | Placeholder_resolved of {
      id : int;
      via : string;        (* which §6.3 case applied *)
      detail : string;
      loc : Loc.t;
    }
  | Defaulting of {
      ty : string;                (* rendered ambiguous qualified type *)
      chosen : string option;     (* the defaulted type, if any applied *)
      loc : Loc.t;
    }
  | Opt_pass of {
      pass : string;
      size_before : int;
      size_after : int;
      sels_before : int;          (* static Sel node counts *)
      sels_after : int;
      dicts_before : int;         (* static MkDict node counts *)
      dicts_after : int;
    }
  | Spec_report of {
      clones : int;               (* type-specific clones minted *)
      call_sites : int;           (* calls redirected to clones *)
      hot_binds : int;            (* overloaded bindings deemed hot *)
      cold_binds : int;           (* left on dictionary dispatch *)
      budget_skips : int;         (* clones refused by the budget *)
      size_before : int;
      size_after : int;
      profile_guided : bool;      (* hotness from a loaded profile? *)
    }

type sink = { emit : event -> unit }

type t = sink option

let none : t = None

let of_fn f : t = Some { emit = f }

let collector () : t * (unit -> event list) =
  let buf = ref [] in
  (Some { emit = (fun e -> buf := e :: !buf) }, fun () -> List.rev !buf)

let is_on (t : t) = Option.is_some t

let emit (t : t) (f : unit -> event) : unit =
  match t with None -> () | Some s -> s.emit (f ())

(** The source location an event is anchored to; [None] for whole-program
    events ([Opt_pass]). *)
let loc_of_event = function
  | Context_reduction { loc; _ }
  | Instance_lookup { loc; _ }
  | Placeholder_created { loc; _ }
  | Placeholder_resolved { loc; _ }
  | Defaulting { loc; _ } -> Some loc
  | Opt_pass _ | Spec_report _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)
(* ------------------------------------------------------------------ *)

let pp_loc ppf (loc : Loc.t) =
  if Loc.is_none loc then () else Fmt.pf ppf "  [%a]" Loc.pp loc

let pp_event ppf (e : event) =
  match e with
  | Context_reduction { cls; ty; loc } ->
      Fmt.pf ppf "context-reduction: %a %s%a" Ident.pp cls ty pp_loc loc
  | Instance_lookup { cls; tycon; found; loc } ->
      Fmt.pf ppf "instance-lookup: %a %a -> %s%a" Ident.pp cls Ident.pp tycon
        (if found then "found" else "missing")
        pp_loc loc
  | Placeholder_created { id; kind; ty; loc } ->
      Fmt.pf ppf "placeholder %d created: %s : %s%a" id kind ty pp_loc loc
  | Placeholder_resolved { id; via; detail; loc } ->
      Fmt.pf ppf "placeholder %d resolved: %s%s%a" id via
        (if detail = "" then "" else " (" ^ detail ^ ")")
        pp_loc loc
  | Defaulting { ty; chosen; loc } ->
      Fmt.pf ppf "defaulting: %s -> %s%a" ty
        (match chosen with Some t -> t | None -> "<failed>")
        pp_loc loc
  | Opt_pass { pass; size_before; size_after; sels_before; sels_after;
               dicts_before; dicts_after } ->
      Fmt.pf ppf
        "opt-pass %s: size %d -> %d, sels %d -> %d, dicts %d -> %d" pass
        size_before size_after sels_before sels_after dicts_before dicts_after
  | Spec_report { clones; call_sites; hot_binds; cold_binds; budget_skips;
                  size_before; size_after; profile_guided } ->
      Fmt.pf ppf
        "specialise%s: %d clone(s) over %d call site(s), %d hot / %d cold \
         binding(s), %d budget skip(s), size %d -> %d (growth %.2fx)"
        (if profile_guided then " (profile-guided)" else "")
        clones call_sites hot_binds cold_binds budget_skips size_before
        size_after
        (if size_before = 0 then 1.
         else float_of_int size_after /. float_of_int size_before)

let loc_json (loc : Loc.t) : Json.t =
  if Loc.is_none loc then Json.Null else Json.Str (Loc.to_string loc)

let event_json (e : event) : Json.t =
  match e with
  | Context_reduction { cls; ty; loc } ->
      Json.Obj
        [ ("event", Json.Str "context-reduction");
          ("class", Json.Str (Ident.text cls));
          ("type", Json.Str ty);
          ("loc", loc_json loc) ]
  | Instance_lookup { cls; tycon; found; loc } ->
      Json.Obj
        [ ("event", Json.Str "instance-lookup");
          ("class", Json.Str (Ident.text cls));
          ("tycon", Json.Str (Ident.text tycon));
          ("found", Json.Bool found);
          ("loc", loc_json loc) ]
  | Placeholder_created { id; kind; ty; loc } ->
      Json.Obj
        [ ("event", Json.Str "placeholder-created");
          ("id", Json.Int id);
          ("kind", Json.Str kind);
          ("type", Json.Str ty);
          ("loc", loc_json loc) ]
  | Placeholder_resolved { id; via; detail; loc } ->
      Json.Obj
        [ ("event", Json.Str "placeholder-resolved");
          ("id", Json.Int id);
          ("via", Json.Str via);
          ("detail", Json.Str detail);
          ("loc", loc_json loc) ]
  | Defaulting { ty; chosen; loc } ->
      Json.Obj
        [ ("event", Json.Str "defaulting");
          ("type", Json.Str ty);
          ("chosen",
           match chosen with Some t -> Json.Str t | None -> Json.Null);
          ("loc", loc_json loc) ]
  | Opt_pass { pass; size_before; size_after; sels_before; sels_after;
               dicts_before; dicts_after } ->
      Json.Obj
        [ ("event", Json.Str "opt-pass");
          ("pass", Json.Str pass);
          ("size_before", Json.Int size_before);
          ("size_after", Json.Int size_after);
          ("sels_before", Json.Int sels_before);
          ("sels_after", Json.Int sels_after);
          ("dicts_before", Json.Int dicts_before);
          ("dicts_after", Json.Int dicts_after) ]
  | Spec_report { clones; call_sites; hot_binds; cold_binds; budget_skips;
                  size_before; size_after; profile_guided } ->
      Json.Obj
        [ ("event", Json.Str "spec-report");
          ("clones", Json.Int clones);
          ("call_sites", Json.Int call_sites);
          ("hot_binds", Json.Int hot_binds);
          ("cold_binds", Json.Int cold_binds);
          ("budget_skips", Json.Int budget_skips);
          ("size_before", Json.Int size_before);
          ("size_after", Json.Int size_after);
          ("profile_guided", Json.Bool profile_guided) ]

let events_json (es : event list) : Json.t = Json.List (List.map event_json es)
