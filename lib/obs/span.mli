(** Phase spans: time a pipeline stage and charge wall-clock nanoseconds
    plus allocated words ([Gc.minor_words]) to a {!Metrics} registry,
    under the span's full nesting path (e.g. ["compile/infer"]). A
    disabled registry makes {!wrap} a single [match] and a tail call. *)

val wrap : Metrics.t -> string -> (unit -> 'a) -> 'a
(** [wrap m name f] runs [f] under a span named [name]; the observation
    is recorded even when [f] raises (the exception is re-raised). *)
