(** Phase spans: time a pipeline stage and charge wall-clock nanoseconds
    plus allocated words ([Gc.minor_words]) to a {!Metrics} registry,
    under the span's full nesting path (e.g. ["compile/infer"]). A
    disabled registry makes {!wrap} a single [match] and a tail call. *)

val wrap_rt : Rtrace.t -> Metrics.t -> string -> (unit -> 'a) -> 'a
(** [wrap_rt rt m name f] runs [f] under a span named [name]; the
    observation is recorded even when [f] raises (the exception is
    re-raised). A live [rt] additionally appends the observation to the
    flight recorder, charged to the domain's current trace ID; recorder
    events require a live [m] (they share its span-path bookkeeping and
    timing reads). [rt] is a plain argument — not [?rt] — so hot call
    sites pass {!Rtrace.disabled} without boxing a [Some] per span. *)

val wrap : ?rt:Rtrace.t -> Metrics.t -> string -> (unit -> 'a) -> 'a
(** {!wrap_rt} with [rt] optional (default {!Rtrace.disabled}), for
    call sites without a recorder. *)
