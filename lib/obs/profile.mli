(** Dispatch-site profiling: attribute each runtime dictionary selection /
    construction to the compile-time site that produced the [Sel]/[MkDict]
    node. Sites survive optimization and VM compilation, so the tree
    evaluator and the VM report identical per-site counts, and per-site
    totals sum exactly to the aggregate {!Tc_eval.Counters}. *)

open Tc_support
module Core = Tc_core_ir.Core

type site_kind = Selection | Construction

val kind_name : site_kind -> string

(** A static dispatch site of a compiled program. *)
type site_info = {
  s_id : int;
  s_kind : site_kind;
  s_class : Ident.t;
  s_detail : string;  (** method/slot label; instance tycon for MkDict *)
  s_loc : Loc.t;
}

(** All distinct sites of a program, ascending id. *)
val site_table : Core.program -> site_info list

(** Static (Sel, MkDict) node counts, for optimizer deltas. *)
val static_dict_ops : Core.program -> int * int

val program_size : Core.program -> int

(** {2 Run-time counts} *)

(** Per-site hit counts for one execution. *)
type rt = {
  sel_counts : (int, int) Hashtbl.t;
  dict_counts : (int, int) Hashtbl.t;
}

val create_rt : unit -> rt

(** Bump the selection count of the site carried by [sel_info]; called by
    both backends next to the aggregate counter bump. *)
val hit_sel : rt -> Core.sel_info -> unit

val hit_dict : rt -> Core.dict_tag -> unit

(** {2 Reports} *)

type entry = { e_site : site_info; e_count : int }

type report = {
  r_sels : entry list;   (** hit selection sites, count desc then id asc *)
  r_dicts : entry list;
  r_sel_total : int;     (** equals the aggregate [selections] counter *)
  r_dict_total : int;    (** equals the aggregate [dict_constructions] *)
  r_static_sites : int;  (** distinct sites in the compiled program *)
}

val make : sites:site_info list -> rt -> report

(** Totals plus the hottest [top] (default 10) sites of each kind. *)
val pp_report : ?top:int -> Format.formatter -> report -> unit

(** JSON report; [top] limits each site list (default: all). *)
val report_json : ?top:int -> report -> Json.t

(** {2 Spec profiles}

    The persisted form of a dispatch profile — what [mhc profile
    --emit-spec] writes and [mhc run --spec-profile] reads back to drive
    profile-guided specialization. Each site keeps its id, descriptor
    (kind, class, method/tycon label, rendered location) and hit count;
    the descriptor makes remapping robust when the consuming compile
    minted different site ids than the profiled one. *)

type spec_site = {
  ss_id : int;
  ss_kind : site_kind;
  ss_class : string;
  ss_detail : string;
  ss_loc : string;  (** rendered location; [""] when none *)
  ss_count : int;
}

type spec = spec_site list

(** Every hit site of a run, selections then constructions. *)
val spec_of_report : report -> spec

val spec_json : spec -> Json.t

(** Accepts both the compact [--emit-spec] form and the full
    [mhc profile --json] report. *)
val spec_of_json : Json.t -> (spec, string) result

(** Content digest, for compile-cache keys. *)
val spec_digest : spec -> string

(** [counts_for spec sites] attributes profiled hit counts to the sites
    of the current program: descriptor-first matching (counts summed per
    descriptor), raw-id fallback. Sites with no profiled hits are
    omitted. *)
val counts_for : spec -> site_info list -> (int * int) list
