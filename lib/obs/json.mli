(** A minimal JSON value type and printer (no external dependency).
    Object fields print in the order given, so output is deterministic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
