(** A minimal JSON value type and printer (no external dependency).
    Object fields print in the order given, so output is deterministic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Compact single-line rendering (never wraps) — the encoding for
    newline-delimited JSON protocols like [mhc serve]. *)
val to_line : t -> string

(** Parse one JSON document (the decoding half of {!to_string}; accepts
    anything the printer emits plus standard escapes and [\uXXXX]).
    Never raises. *)
val parse : string -> (t, string) result

(** {2 Accessors} — decoding helpers for [mhc serve] requests. *)

(** Object field lookup; [None] on non-objects and absent fields. *)
val member : string -> t -> t option

val to_str : t -> string option

(** Accepts [Int] and integral [Float]. *)
val to_int : t -> int option

val to_float : t -> float option
