(** A metrics registry: counters, gauges and log-bucketed histograms with
    deterministic JSON snapshots.

    The quantitative half of the observability layer. A {!t} is either a
    live registry or {!disabled} (the default everywhere); instruments are
    looked up by name once and then bumped through their handle, and every
    bump on either path is a plain mutation — no allocation, no hashtable
    traffic. {!snapshot} renders the whole registry as one deterministic
    {!Json.t}: instruments ordered by name, spans by first-entered order,
    no timestamps; [~stable:true] further redacts machine-dependent
    quantities (durations, allocation totals, histogram value detail) so
    golden tests can compare snapshots byte-for-byte. *)

type t

val disabled : t
(** The no-op registry: handles are shared dummies, bumps mutate dead
    state, {!snapshot} is empty. *)

val create : unit -> t
val is_on : t -> bool

(** {1 Counters} — monotonically increasing event counts. *)

type counter

val counter : t -> string -> counter
(** Find or register the counter [name] (a shared dummy when disabled). *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — last-write-wins instantaneous values. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} — log-bucketed distributions.

    Bucket 0 holds [v <= 0]; bucket [i >= 1] holds [2^(i-1) <= v < 2^i];
    the last bucket is clamped at [max_int]. *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit
val hist_count : histogram -> int

val hist_sum : histogram -> int
(** Saturating: never wraps past [max_int]. *)

val quantile : histogram -> float -> int
(** [quantile h q] for [q] in [0,1]: the inclusive upper bound of the
    bucket holding the [ceil (q * count)]-th smallest observation (an
    overestimate by at most 2x); [0] when empty. *)

val merge_hist : into:histogram -> histogram -> unit
(** Elementwise addition; counts, sums and extrema combine so the merge
    equals observing both streams into one histogram. *)

val merge : into:t -> t -> unit
(** Fold every instrument of the source registry into [into]: counters
    add, gauges take the maximum, histograms {!merge_hist}, and span
    stats accumulate counts/durations/allocations (span paths new to
    [into] keep their relative first-entered order). Used to combine
    per-worker registries into one serve-wide view; no-op when either
    side is {!disabled}. *)

val bucket_of : int -> int
(** The bucket index a value bins into (total over all of [int]). *)

val bucket_hi : int -> int
(** Inclusive upper bound of a bucket: [bucket_of v] is the smallest [i]
    with [v <= bucket_hi i] (for [v >= 0]). *)

(** {1 Spans} — aggregated phase statistics, recorded via {!Span}. *)

type span_stat = {
  sp_name : string;  (** full nesting path, e.g. ["compile/infer"] *)
  sp_seq : int;      (** first-entered order *)
  mutable sp_count : int;
  mutable sp_ns : int;     (** total wall-clock nanoseconds *)
  mutable sp_words : int;  (** total allocated words *)
}

val span_push : t -> string -> string
(** Enter a span: returns its full path given the active nesting ([""]
    when disabled) and mints its stat record on first entry. *)

val span_pop : t -> unit

val span_record : t -> string -> ns:int -> words:int -> unit

(** {1 Reading and snapshots} *)

val counters : t -> (string * int) list  (** sorted by name *)

val gauges : t -> (string * int) list  (** sorted by name *)

val histograms : t -> (string * histogram) list  (** sorted by name *)

val spans : t -> span_stat list  (** in first-entered order *)

val snapshot : ?stable:bool -> t -> Json.t
(** The whole registry as one deterministic JSON object with fields
    [counters], [gauges], [histograms], [spans]. [~stable:true] keeps
    only counts (redacting durations, sums, extrema, quantiles and
    buckets), for golden output. *)
