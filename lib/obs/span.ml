(** Phase spans: time a pipeline stage and charge it to the registry.

    [wrap m "infer" f] runs [f] and records one observation — wall-clock
    nanoseconds and allocated words — against the span's full nesting
    path ("compile/infer" when entered under an open "compile" span) in
    the {!Metrics} registry [m]. Spans nest through a stack carried by
    the registry, so the path structure mirrors the dynamic call
    structure; the stat record is minted at entry, so the snapshot lists
    parents before children in a deterministic order.

    When [m] is {!Metrics.disabled}, [wrap] is a single [match] and a
    tail call — no clock read, no [Gc] read, no allocation beyond the
    closure the caller already built.

    Allocation accounting uses [Gc.minor_words]: the monotonically
    increasing count of words allocated in the minor heap, which (with
    OCaml's bump allocator) is the "how much did this phase allocate"
    quick stat — cheap enough to read at every span boundary, precise
    enough to rank phases. *)

(* Monotonic: a system-clock step mid-span must not produce a negative
   (or wildly inflated) phase duration. *)
let now_ns () : int = Tc_support.Mono.now_ns ()

(** Run [f] under a span named [name]. The observation is recorded even
    when [f] raises (the exception is re-raised), so a failing compile
    still reports where its time went. With a live [rt] the same
    observation is also appended to the flight recorder as a
    per-request event (charged to the domain's current trace ID);
    recorder events ride the metrics-on path, so they require a live
    registry — the serve loop and [--trace-out] both guarantee one.

    [rt] is a plain (non-optional) argument so the pipeline's hot call
    sites pass {!Rtrace.disabled} without boxing a [Some] per span. *)
let wrap_rt (rt : Rtrace.t) (m : Metrics.t) (name : string) (f : unit -> 'a) :
    'a =
  if not (Metrics.is_on m) then f ()
  else begin
    let path = Metrics.span_push m name in
    let t0 = now_ns () in
    let w0 = Gc.minor_words () in
    Fun.protect
      ~finally:(fun () ->
        let ns = now_ns () - t0 in
        let words = int_of_float (Gc.minor_words () -. w0) in
        Metrics.span_record m path ~ns ~words;
        Rtrace.record rt ~name:path ~ts_ns:t0 ~dur_ns:ns ~words;
        Metrics.span_pop m)
      f
  end

let wrap ?(rt = Rtrace.disabled) (m : Metrics.t) (name : string)
    (f : unit -> 'a) : 'a =
  wrap_rt rt m name f
