(** A minimal JSON value type and printer.

    The observability layer emits machine-readable output ([mhc trace
    --json], [mhc profile --json]) without an external JSON dependency;
    this is the one place the encoding lives. Output is deterministic:
    object fields print in the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec pp ppf (v : t) =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.string ppf (float_str f)
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List vs ->
      Fmt.pf ppf "@[<hv 2>[%a]@]"
        (Fmt.list ~sep:(Fmt.any ",@ ") pp) vs
  | Obj fields ->
      Fmt.pf ppf "@[<hv 2>{%a}@]"
        (Fmt.list ~sep:(Fmt.any ",@ ")
           (fun ppf (k, v) -> Fmt.pf ppf "\"%s\": %a" (escape k) pp v))
        fields

let to_string (v : t) : string = Fmt.str "%a" pp v

(* Single-line rendering for NDJSON protocols ([mhc serve]): no
   formatter boxes, so the output can never wrap. *)
let to_line (v : t) : string =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing. [mhc serve] reads newline-delimited JSON requests; this     *)
(* recursive-descent parser is the decoding half of the encoder above.  *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> parse_fail "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> parse_fail "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word (v : t) : t =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else parse_fail "bad literal at offset %d" c.pos

let parse_string_body c : string =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> parse_fail "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
                 if c.pos + 4 > String.length c.src then
                   parse_fail "truncated \\u escape";
                 let hex = String.sub c.src c.pos 4 in
                 c.pos <- c.pos + 4;
                 let code =
                   match int_of_string_opt ("0x" ^ hex) with
                   | Some n -> n
                   | None -> parse_fail "bad \\u escape %S" hex
                 in
                 (match Uchar.of_int code with
                  | u -> Buffer.add_utf_8_uchar buf u
                  | exception Invalid_argument _ ->
                      Buffer.add_utf_8_uchar buf Uchar.rep)
             | e -> parse_fail "bad escape '\\%c'" e);
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c : t =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.src start (c.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail "bad number %S at offset %d" text start)

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> parse_fail "unexpected end of input"
  | Some '"' ->
      c.pos <- c.pos + 1;
      Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin c.pos <- c.pos + 1; List [] end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; items (v :: acc)
          | Some ']' -> c.pos <- c.pos + 1; List (List.rev (v :: acc))
          | _ -> parse_fail "expected ',' or ']' at offset %d" c.pos
        in
        items []
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin c.pos <- c.pos + 1; Obj [] end
      else
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; fields (kv :: acc)
          | Some '}' -> c.pos <- c.pos + 1; Obj (List.rev (kv :: acc))
          | _ -> parse_fail "expected ',' or '}' at offset %d" c.pos
        in
        fields []
  | Some _ -> parse_number c

let parse (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing input at offset %d" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors (for decoding requests).                                  *)
(* ------------------------------------------------------------------ *)

let member (k : string) (v : t) : t option =
  match v with Obj fields -> List.assoc_opt k fields | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
