(** A minimal JSON value type and printer.

    The observability layer emits machine-readable output ([mhc trace
    --json], [mhc profile --json]) without an external JSON dependency;
    this is the one place the encoding lives. Output is deterministic:
    object fields print in the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec pp ppf (v : t) =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.string ppf (float_str f)
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List vs ->
      Fmt.pf ppf "@[<hv 2>[%a]@]"
        (Fmt.list ~sep:(Fmt.any ",@ ") pp) vs
  | Obj fields ->
      Fmt.pf ppf "@[<hv 2>{%a}@]"
        (Fmt.list ~sep:(Fmt.any ",@ ")
           (fun ppf (k, v) -> Fmt.pf ppf "\"%s\": %a" (escape k) pp v))
        fields

let to_string (v : t) : string = Fmt.str "%a" pp v
