(** Structured compile-time tracing: inference events (context reduction,
    instance lookup, placeholder creation/resolution, defaulting) and
    optimizer per-pass deltas, delivered to an optional sink. With no sink
    installed ({!none}) emission is a single option check and event
    payloads are never built. *)

open Tc_support

type event =
  | Context_reduction of { cls : Ident.t; ty : string; loc : Loc.t }
  | Instance_lookup of {
      cls : Ident.t;
      tycon : Ident.t;
      found : bool;
      loc : Loc.t;
    }
  | Placeholder_created of {
      id : int;
      kind : string;
      ty : string;
      loc : Loc.t;
    }
  | Placeholder_resolved of {
      id : int;
      via : string;
      detail : string;
      loc : Loc.t;
    }
  | Defaulting of { ty : string; chosen : string option; loc : Loc.t }
  | Opt_pass of {
      pass : string;
      size_before : int;
      size_after : int;
      sels_before : int;
      sels_after : int;
      dicts_before : int;
      dicts_after : int;
    }
  | Spec_report of {
      clones : int;
      call_sites : int;
      hot_binds : int;
      cold_binds : int;
      budget_skips : int;
      size_before : int;
      size_after : int;
      profile_guided : bool;
    }  (** the specializer's typed report (see {!Tc_opt.Specialise}) *)

type sink = { emit : event -> unit }

(** A trace target: [None] means tracing is off. *)
type t = sink option

val none : t
val of_fn : (event -> unit) -> t

(** A sink that accumulates events; the second component returns them in
    emission order. *)
val collector : unit -> t * (unit -> event list)

val is_on : t -> bool

(** [emit t f] delivers [f ()] if a sink is installed; [f] is not called
    otherwise. *)
val emit : t -> (unit -> event) -> unit

(** The event's source anchor; [None] for whole-program events. *)
val loc_of_event : event -> Loc.t option

val pp_event : Format.formatter -> event -> unit
val event_json : event -> Json.t
val events_json : event list -> Json.t
