(** A metrics registry: counters, gauges and log-bucketed histograms.

    The quantitative half of the observability layer ({!Trace} and
    {!Profile} are the qualitative half): named instruments registered in
    one {!t}, snapshotted as deterministic JSON. Design rules, in the
    style of [trace.ml]:

    - {e Allocation-free when disabled.} [disabled] is the default
      everywhere; instrument lookup on a disabled registry returns a
      shared dummy handle, and every bump ([incr]/[add]/[set]/[observe])
      is a plain mutation of preallocated state. No closure, no boxing,
      no hashtable traffic on the disabled path.
    - {e Deterministic snapshots.} [snapshot] orders counters, gauges and
      histograms by name and spans by first-registration order, and
      carries no timestamps. Under [~stable:true] every
      machine-dependent quantity (durations, allocation totals,
      latency-derived histogram detail) is redacted down to event
      counts, so golden tests can compare snapshots byte-for-byte.
    - {e Log-bucketed histograms.} Values are binned by bit width:
      bucket 0 holds [v <= 0], bucket [i >= 1] holds
      [2^(i-1) <= v < 2^i] (the last bucket is clamped at [max_int]).
      Bucketing is two instructions, merge is elementwise addition, and
      quantiles come from the cumulative counts as the upper bound of
      the quantile's bucket — an overestimate by at most 2x, stable
      across runs that bin identically. *)

(* ------------------------------------------------------------------ *)
(* Instruments.                                                        *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }

(* 63 buckets cover every OCaml int: bucket 0 for v <= 0, bucket i for
   [2^(i-1), 2^i), bucket 62 (values >= 2^61) clamped at max_int. *)
let bucket_count = 63

type histogram = {
  h_name : string;
  h_buckets : int array;  (* length [bucket_count] *)
  mutable h_count : int;
  mutable h_sum : int;    (* saturating *)
  mutable h_min : int;    (* [max_int] while empty *)
  mutable h_max : int;    (* [min_int] while empty *)
}

type span_stat = {
  sp_name : string;  (* full path, outermost first: "compile/infer" *)
  sp_seq : int;      (* first-registration order, for stable listing *)
  mutable sp_count : int;
  mutable sp_ns : int;     (* total wall-clock nanoseconds *)
  mutable sp_words : int;  (* total allocated words (minor counter) *)
}

type registry = {
  r_counters : (string, counter) Hashtbl.t;
  r_gauges : (string, gauge) Hashtbl.t;
  r_hists : (string, histogram) Hashtbl.t;
  r_spans : (string, span_stat) Hashtbl.t;
  mutable r_stack : string list;  (* active span paths, innermost first *)
  mutable r_seq : int;
}

type t = registry option

let disabled : t = None

let create () : t =
  Some
    {
      r_counters = Hashtbl.create 16;
      r_gauges = Hashtbl.create 16;
      r_hists = Hashtbl.create 16;
      r_spans = Hashtbl.create 16;
      r_stack = [];
      r_seq = 0;
    }

let is_on : t -> bool = Option.is_some

(* Shared dummies handed out by a disabled registry: bumping them is
   harmless (they are never snapshotted) and allocates nothing. *)
let null_counter = { c_name = ""; c_value = 0 }
let null_gauge = { g_name = ""; g_value = 0 }

let fresh_hist name =
  {
    h_name = name;
    h_buckets = Array.make bucket_count 0;
    h_count = 0;
    h_sum = 0;
    h_min = max_int;
    h_max = min_int;
  }

let null_hist = fresh_hist ""

let find_or_add tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v

let counter (t : t) name : counter =
  match t with
  | None -> null_counter
  | Some r ->
      find_or_add r.r_counters name (fun () -> { c_name = name; c_value = 0 })

let gauge (t : t) name : gauge =
  match t with
  | None -> null_gauge
  | Some r ->
      find_or_add r.r_gauges name (fun () -> { g_name = name; g_value = 0 })

let histogram (t : t) name : histogram =
  match t with
  | None -> null_hist
  | Some r -> find_or_add r.r_hists name (fun () -> fresh_hist name)

let incr (c : counter) = c.c_value <- c.c_value + 1
let add (c : counter) n = c.c_value <- c.c_value + n
let counter_value (c : counter) = c.c_value

let set (g : gauge) v = g.g_value <- v
let gauge_value (g : gauge) = g.g_value

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)
(* ------------------------------------------------------------------ *)

let bucket_of (v : int) : int =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v): the number of significant bits *)
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    let b = bits v 0 in
    if b >= bucket_count then bucket_count - 1 else b
  end

(** Inclusive upper bound of a bucket: the largest value that bins there. *)
let bucket_hi (i : int) : int =
  if i <= 0 then 0
  else if i >= bucket_count - 1 then max_int
  else (1 lsl i) - 1

let sat_add a b =
  let s = a + b in
  if a > 0 && b > 0 && s < 0 then max_int else s

let observe (h : histogram) (v : int) : unit =
  h.h_buckets.(bucket_of v) <- h.h_buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- sat_add h.h_sum v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count (h : histogram) = h.h_count
let hist_sum (h : histogram) = h.h_sum

(** [quantile h q] for [q] in [0,1]: the upper bound of the bucket holding
    the [ceil (q * count)]-th smallest observation; [0] when empty. *)
let quantile (h : histogram) (q : float) : int =
  if h.h_count = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 (min h.h_count rank) in
    let rec go i acc =
      if i >= bucket_count then max_int
      else
        let acc = acc + h.h_buckets.(i) in
        if acc >= rank then bucket_hi i else go (i + 1) acc
    in
    go 0 0
  end

(** Elementwise-add [src] into [into]; counts, sums and extrema combine so
    merged quantiles are consistent with observing both streams into one
    histogram. *)
let merge_hist ~(into : histogram) (src : histogram) : unit =
  Array.iteri
    (fun i n -> into.h_buckets.(i) <- into.h_buckets.(i) + n)
    src.h_buckets;
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- sat_add into.h_sum src.h_sum;
  if src.h_min < into.h_min then into.h_min <- src.h_min;
  if src.h_max > into.h_max then into.h_max <- src.h_max

(** Fold every instrument of [src] into [into]: counters add, gauges
    take the maximum (last-write-wins has no cross-registry order, and
    the peak is the useful aggregate for e.g. cache occupancy),
    histograms merge elementwise, and span stats are found-or-minted in
    [into] (keeping [into]'s own registration order for names it already
    has) with counts, nanoseconds and allocation totals added. Merging a
    disabled registry, or into one, is a no-op. *)
let merge ~(into : t) (src : t) : unit =
  match (into, src) with
  | None, _ | _, None -> ()
  | Some dst, Some src ->
      Hashtbl.iter
        (fun name (c : counter) ->
          let d =
            find_or_add dst.r_counters name (fun () ->
                { c_name = name; c_value = 0 })
          in
          d.c_value <- d.c_value + c.c_value)
        src.r_counters;
      Hashtbl.iter
        (fun name (g : gauge) ->
          let d =
            find_or_add dst.r_gauges name (fun () ->
                { g_name = name; g_value = g.g_value })
          in
          if g.g_value > d.g_value then d.g_value <- g.g_value)
        src.r_gauges;
      Hashtbl.iter
        (fun name (h : histogram) ->
          let d = find_or_add dst.r_hists name (fun () -> fresh_hist name) in
          merge_hist ~into:d h)
        src.r_hists;
      (* Merge spans in the source's first-entered order so paths new to
         [dst] keep their relative order (parents before children). *)
      Hashtbl.fold (fun _ s acc -> s :: acc) src.r_spans []
      |> List.sort (fun a b -> compare a.sp_seq b.sp_seq)
      |> List.iter (fun (s : span_stat) ->
             let d =
               find_or_add dst.r_spans s.sp_name (fun () ->
                   let d =
                     { sp_name = s.sp_name; sp_seq = dst.r_seq; sp_count = 0;
                       sp_ns = 0; sp_words = 0 }
                   in
                   dst.r_seq <- dst.r_seq + 1;
                   d)
             in
             d.sp_count <- d.sp_count + s.sp_count;
             d.sp_ns <- sat_add d.sp_ns s.sp_ns;
             d.sp_words <- sat_add d.sp_words s.sp_words)

(* ------------------------------------------------------------------ *)
(* Spans (recording half; the timing half is {!Span}).                 *)
(* ------------------------------------------------------------------ *)

(** Push a span name, returning its full nesting path ("" when
    disabled). The span's stat record is minted at push, so listing order
    is entry order — parents always precede their children. *)
let span_push (t : t) (name : string) : string =
  match t with
  | None -> ""
  | Some r ->
      let path =
        match r.r_stack with [] -> name | p :: _ -> p ^ "/" ^ name
      in
      (match Hashtbl.find_opt r.r_spans path with
       | Some _ -> ()
       | None ->
           Hashtbl.add r.r_spans path
             { sp_name = path; sp_seq = r.r_seq; sp_count = 0; sp_ns = 0;
               sp_words = 0 };
           r.r_seq <- r.r_seq + 1);
      r.r_stack <- path :: r.r_stack;
      path

let span_pop (t : t) : unit =
  match t with
  | None -> ()
  | Some r -> (
      match r.r_stack with [] -> () | _ :: rest -> r.r_stack <- rest)

let span_record (t : t) (path : string) ~(ns : int) ~(words : int) : unit =
  match t with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.r_spans path with
      | None -> ()
      | Some s ->
          s.sp_count <- s.sp_count + 1;
          s.sp_ns <- sat_add s.sp_ns ns;
          s.sp_words <- sat_add s.sp_words words)

(* ------------------------------------------------------------------ *)
(* Listing and snapshots.                                              *)
(* ------------------------------------------------------------------ *)

let sorted_by_name tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters (t : t) : (string * int) list =
  match t with
  | None -> []
  | Some r -> sorted_by_name r.r_counters (fun c -> c.c_value)

let gauges (t : t) : (string * int) list =
  match t with
  | None -> []
  | Some r -> sorted_by_name r.r_gauges (fun g -> g.g_value)

let histograms (t : t) : (string * histogram) list =
  match t with
  | None -> []
  | Some r -> sorted_by_name r.r_hists (fun h -> h)

let spans (t : t) : span_stat list =
  match t with
  | None -> []
  | Some r ->
      Hashtbl.fold (fun _ s acc -> s :: acc) r.r_spans []
      |> List.sort (fun a b -> compare a.sp_seq b.sp_seq)

let hist_json ~stable (h : histogram) : Json.t =
  if stable then Json.Obj [ ("count", Json.Int h.h_count) ]
  else
    let buckets =
      Array.to_list h.h_buckets
      |> List.mapi (fun i n -> (i, n))
      |> List.filter (fun (_, n) -> n > 0)
      |> List.map (fun (i, n) ->
             Json.Obj [ ("le", Json.Int (bucket_hi i)); ("count", Json.Int n) ])
    in
    Json.Obj
      [
        ("count", Json.Int h.h_count);
        ("sum", Json.Int h.h_sum);
        ("min", Json.Int (if h.h_count = 0 then 0 else h.h_min));
        ("max", Json.Int (if h.h_count = 0 then 0 else h.h_max));
        ("p50", Json.Int (quantile h 0.5));
        ("p90", Json.Int (quantile h 0.9));
        ("p99", Json.Int (quantile h 0.99));
        ("buckets", Json.List buckets);
      ]

let span_json ~stable (s : span_stat) : Json.t =
  if stable then
    Json.Obj [ ("span", Json.Str s.sp_name); ("count", Json.Int s.sp_count) ]
  else
    Json.Obj
      [
        ("span", Json.Str s.sp_name);
        ("count", Json.Int s.sp_count);
        ("total_ns", Json.Int s.sp_ns);
        ("total_words", Json.Int s.sp_words);
      ]

(** One deterministic JSON object for the whole registry. Counters,
    gauges and histograms list alphabetically; spans list in
    first-entered order (parents before children). [~stable:true]
    redacts durations, allocation totals and histogram value detail,
    keeping only counts — the golden-test rendering. *)
let snapshot ?(stable = false) (t : t) : Json.t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (gauges t)) );
      ( "histograms",
        Json.Obj
          (List.map (fun (k, h) -> (k, hist_json ~stable h)) (histograms t)) );
      ("spans", Json.List (List.map (span_json ~stable) (spans t)));
    ]
