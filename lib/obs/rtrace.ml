(* A sampled per-request flight recorder. One bounded ring of events
   per domain, registered lazily through [Domain.DLS]; the disabled
   recorder is [None] so every operation is a single match and zero
   allocation. [dump] never takes the lock — the mutex guards only
   ring registration, so a SIGUSR1 handler can dump while workers are
   mid-record (it reads a slightly stale window, never deadlocks). *)

type event = {
  ev_trace : int;
  ev_name : string;
  ev_ts : int;
  ev_dur : int;
  ev_words : int;
  ev_dom : int;
}

type ring = {
  slots : event option array;
  mutable written : int;  (* total ever recorded, for the drop count *)
  mutable cur : int;
  mutable cur_trace : int;  (* ambient trace ID, 0 = none *)
  dom : int;
}

type recorder = {
  cap : int;
  sample : int;
  next_id : int Atomic.t;
  lock : Mutex.t;
  rings : ring list ref;
  key : ring Domain.DLS.key;
}

type t = recorder option

let disabled : t = None

let create ?(capacity = 4096) ?(sample = 1) () : t =
  let cap = max 16 capacity and sample = max 1 sample in
  let lock = Mutex.create () in
  let rings = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let ring =
          {
            slots = Array.make cap None;
            written = 0;
            cur = 0;
            cur_trace = 0;
            dom = (Domain.self () :> int);
          }
        in
        Mutex.lock lock;
        rings := ring :: !rings;
        Mutex.unlock lock;
        ring)
  in
  Some { cap; sample; next_id = Atomic.make 1; lock; rings; key }

let is_on = function None -> false | Some _ -> true
let capacity = function None -> 0 | Some r -> r.cap
let sample_rate = function None -> 0 | Some r -> r.sample

let mint = function
  | None -> 0
  | Some r -> Atomic.fetch_and_add r.next_id 1

let sampled t id =
  match t with
  | None -> false
  | Some r -> id > 0 && (id - 1) mod r.sample = 0

let set_current t id =
  match t with
  | None -> ()
  | Some r ->
      let ring = Domain.DLS.get r.key in
      ring.cur_trace <- (if sampled t id then id else 0)

let clear_current = function
  | None -> ()
  | Some r -> (Domain.DLS.get r.key).cur_trace <- 0

let current = function
  | None -> 0
  | Some r -> (Domain.DLS.get r.key).cur_trace

(* Threads sharing a domain share its ring; a race on [cur] can at
   worst overwrite one concurrent event — acceptable for a flight
   recorder, and never out of bounds. *)
let push r trace ~name ~ts_ns ~dur_ns ~words =
  let ring = Domain.DLS.get r.key in
  ring.slots.(ring.cur) <-
    Some
      {
        ev_trace = trace;
        ev_name = name;
        ev_ts = ts_ns;
        ev_dur = dur_ns;
        ev_words = words;
        ev_dom = ring.dom;
      };
  ring.cur <- (ring.cur + 1) mod r.cap;
  ring.written <- ring.written + 1

let record t ~name ~ts_ns ~dur_ns ~words =
  match t with
  | None -> ()
  | Some r ->
      let trace = (Domain.DLS.get r.key).cur_trace in
      if trace <> 0 then push r trace ~name ~ts_ns ~dur_ns ~words

let record_as t ~trace ~name ~ts_ns ~dur_ns ~words =
  match t with
  | None -> ()
  | Some r -> if sampled t trace then push r trace ~name ~ts_ns ~dur_ns ~words

(* ---- dump ---- *)

let ring_events ring =
  (* Oldest-first: on wraparound the oldest slot is [cur]. A concurrent
     writer may already have bumped [written] past what [cur] reflects;
     clamp rather than lock. *)
  let cap = Array.length ring.slots in
  let n = min ring.written cap in
  let start = if ring.written <= cap then 0 else ring.cur in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match ring.slots.((start + i) mod cap) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  !out

let event_json ev =
  Json.Obj
    [
      ("name", Json.Str ev.ev_name);
      ("ph", Json.Str "X");
      ("ts", Json.Float (float_of_int ev.ev_ts /. 1000.));
      ("dur", Json.Float (float_of_int ev.ev_dur /. 1000.));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_dom);
      ( "args",
        Json.Obj
          [ ("trace", Json.Int ev.ev_trace); ("words", Json.Int ev.ev_words) ]
      );
    ]

let dump t =
  match t with
  | None -> Json.Obj [ ("traceEvents", Json.List []); ("dropped", Json.Int 0) ]
  | Some r ->
      let rings = !(r.rings) in
      let events = List.concat_map ring_events rings in
      let events =
        List.sort (fun a b -> compare (a.ev_ts, a.ev_trace) (b.ev_ts, b.ev_trace))
          events
      in
      let dropped =
        List.fold_left (fun acc ring -> acc + max 0 (ring.written - r.cap)) 0 rings
      in
      Json.Obj
        [
          ("traceEvents", Json.List (List.map event_json events));
          ("dropped", Json.Int dropped);
        ]

let dump_string t = Json.to_line (dump t)

(* ---- offline digest ---- *)

type digest = {
  dg_trace : int;
  dg_op : string;
  dg_latency_ns : int;
  dg_phase : string;
  dg_phase_ns : int;
}

let request_prefix = "request/"

let is_request name =
  String.length name > String.length request_prefix
  && String.sub name 0 (String.length request_prefix) = request_prefix

let parse_event j =
  match (Json.member "name" j, Json.member "args" j) with
  | Some name_j, Some args -> (
      match
        ( Json.to_str name_j,
          Option.bind (Json.member "trace" args) Json.to_int,
          Option.bind (Json.member "ts" j) Json.to_float,
          Option.bind (Json.member "dur" j) Json.to_float )
      with
      | Some name, Some trace, Some ts, Some dur ->
          Some
            {
              ev_trace = trace;
              ev_name = name;
              ev_ts = int_of_float (ts *. 1000.);
              ev_dur = int_of_float (dur *. 1000.);
              ev_words =
                Option.value ~default:0
                  (Option.bind (Json.member "words" args) Json.to_int);
              ev_dom =
                Option.value ~default:0
                  (Option.bind (Json.member "tid" j) Json.to_int);
            }
      | _ -> None)
  | _ -> None

let top_slow ?(n = 10) doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
      let events = List.filter_map parse_event evs in
      let by_trace : (int, event list ref) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun ev ->
          match Hashtbl.find_opt by_trace ev.ev_trace with
          | Some l -> l := ev :: !l
          | None -> Hashtbl.add by_trace ev.ev_trace (ref [ ev ]))
        events;
      let digests =
        Hashtbl.fold
          (fun trace evs acc ->
            match List.find_opt (fun e -> is_request e.ev_name) !evs with
            | None -> acc (* incomplete: no root event in the window *)
            | Some root ->
                let op =
                  String.sub root.ev_name
                    (String.length request_prefix)
                    (String.length root.ev_name - String.length request_prefix)
                in
                let phase, phase_ns =
                  List.fold_left
                    (fun ((_, best_ns) as best) e ->
                      if is_request e.ev_name || e.ev_dur <= best_ns then best
                      else (e.ev_name, e.ev_dur))
                    ("", 0) !evs
                in
                {
                  dg_trace = trace;
                  dg_op = op;
                  dg_latency_ns = root.ev_dur;
                  dg_phase = phase;
                  dg_phase_ns = phase_ns;
                }
                :: acc)
          by_trace []
      in
      let digests =
        List.sort
          (fun a b ->
            compare (b.dg_latency_ns, a.dg_trace) (a.dg_latency_ns, b.dg_trace))
          digests
      in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: tl -> x :: take (k - 1) tl
      in
      Ok (take (max 0 n) digests)
  | Some _ -> Error "traceEvents is not an array"
  | None -> Error "not a trace dump: no traceEvents field"

let digest_json digests =
  Json.List
    (List.map
       (fun d ->
         Json.Obj
           [
             ("trace", Json.Int d.dg_trace);
             ("op", Json.Str d.dg_op);
             ("latency_ns", Json.Int d.dg_latency_ns);
             ("phase", Json.Str d.dg_phase);
             ("phase_ns", Json.Int d.dg_phase_ns);
           ])
       digests)
