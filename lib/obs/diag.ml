(** Machine-readable rendering of compiler diagnostics.

    One diagnostic becomes one JSON object; a batch run ([mhc check])
    renders a summary object with per-file roll-ups. Field order is fixed,
    so the output is deterministic and diffable. *)

open Tc_support

let severity_string (s : Diagnostic.severity) : string =
  match s with
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Bug -> "ice"

(** One diagnostic:
    [{file, line, col, endLine, endCol, severity, message, hints}].
    Location fields are [null] for unlocated diagnostics. *)
let json (d : Diagnostic.t) : Json.t =
  let loc_fields =
    if Loc.is_none d.loc then
      [ ("file", Json.Null); ("line", Json.Null); ("col", Json.Null);
        ("endLine", Json.Null); ("endCol", Json.Null) ]
    else
      [ ("file", Json.Str d.loc.Loc.file);
        ("line", Json.Int d.loc.Loc.start_pos.line);
        ("col", Json.Int d.loc.Loc.start_pos.col);
        ("endLine", Json.Int d.loc.Loc.end_pos.line);
        ("endCol", Json.Int d.loc.Loc.end_pos.col) ]
  in
  Json.Obj
    (loc_fields
    @ [ ("severity", Json.Str (severity_string d.severity));
        ("message", Json.Str d.message);
        ("hints", Json.List (List.map (fun h -> Json.Str h) d.hints)) ])

let json_list (ds : Diagnostic.t list) : Json.t =
  Json.List (List.map json ds)

let count sev ds =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) ds)

(** Per-file roll-up: [{file, errors, warnings, ice}]. *)
let file_summary ~file (ds : Diagnostic.t list) : Json.t =
  Json.Obj
    [ ("file", Json.Str file);
      ("errors", Json.Int (count Diagnostic.Error ds));
      ("warnings", Json.Int (count Diagnostic.Warning ds));
      ("ice", Json.Int (count Diagnostic.Bug ds)) ]

(** The [mhc check --json] report:
    [{files: [...], diagnostics: [...], errors, warnings, ice}]. Each
    entry of [per_file] is one checked file with its own (sorted)
    diagnostics. *)
let report (per_file : (string * Diagnostic.t list) list) : Json.t =
  let all = List.concat_map snd per_file in
  Json.Obj
    [ ("files",
       Json.List (List.map (fun (f, ds) -> file_summary ~file:f ds) per_file));
      ("diagnostics", json_list all);
      ("errors", Json.Int (count Diagnostic.Error all));
      ("warnings", Json.Int (count Diagnostic.Warning all));
      ("ice", Json.Int (count Diagnostic.Bug all)) ]
