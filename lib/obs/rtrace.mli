(** Per-request tracing: a sampled flight recorder.

    Where {!Metrics} aggregates (p99 rose), [Rtrace] attributes: every
    {!Span.wrap} site emits a timestamped event — phase name, start,
    duration, allocated words — tagged with the {e trace ID} minted for
    the request at ingress, so a single slow request can be read back as
    a timeline across queueing, compile phases, execution and emit.

    Events land in a bounded per-domain ring buffer (one ring per
    domain, registered on first use, overwriting oldest-first), so a
    long-running server keeps a fixed-size window of recent history —
    a flight recorder, dumped on demand as Chrome trace-event JSON
    (loadable in Perfetto / [chrome://tracing]).

    The disabled recorder ({!disabled}) costs nothing: every operation
    is a [match] on [None] and {b allocates zero words} — the same
    contract as a disabled {!Metrics} registry, unit-tested the same
    way. An enabled recorder samples: one request in [sample] gets its
    events recorded (IDs are still minted for every request, so
    responses stay taggable).

    Recording charges events to an ambient {e current} trace ID kept
    per domain ({!set_current}/{!clear_current}); a worker sets it
    before handling a request and clears it after, so [Span.wrap] sites
    deep in the pipeline need no explicit ID plumbing. An unsampled (or
    unset) current ID makes {!record} a no-op.

    {!dump} is called from a SIGUSR1 handler: it takes no lock (the
    ring list is read through an atomic snapshot; the mutex guards only
    ring registration), so a handler firing while a worker records
    cannot deadlock — it just reads a slightly stale window. *)

type t
(** A recorder handle, or the disabled recorder. Immutable; share
    freely across domains. *)

val disabled : t
(** Records nothing, allocates nothing. *)

val create : ?capacity:int -> ?sample:int -> unit -> t
(** A live recorder. [capacity] (default 4096, min 16) bounds each
    per-domain ring; [sample] (default 1, min 1) records one request in
    [sample] — sampled IDs are [1, 1+sample, 1+2*sample, ...]. *)

val is_on : t -> bool

val capacity : t -> int
(** Per-domain ring bound; [0] when disabled. *)

val sample_rate : t -> int
(** The sampling interval; [0] when disabled. *)

val mint : t -> int
(** A fresh trace ID (1, 2, 3, ... — atomic across domains); [0] when
    disabled. Mint exactly once per request, at ingress. *)

val sampled : t -> int -> bool
(** Whether this ID's events are recorded. [false] when disabled, for
    ID 0, and for IDs the sampling interval skips. *)

(** {2 Ambient current trace (per domain)} *)

val set_current : t -> int -> unit
(** Charge subsequent {!record} calls on this domain to [id] — a no-op
    unless [sampled t id]. *)

val clear_current : t -> unit
val current : t -> int

(** {2 Recording} *)

val record : t -> name:string -> ts_ns:int -> dur_ns:int -> words:int -> unit
(** Append one event charged to the domain's current trace ID; no-op
    when disabled or no sampled trace is current. [ts_ns] is the
    event's start on the {!Tc_support.Mono} clock. *)

val record_as :
  t -> trace:int -> name:string -> ts_ns:int -> dur_ns:int -> words:int -> unit
(** Like {!record} but charged to an explicit ID (for events recorded
    outside the request's ambient window: queue wait measured by the
    worker, emit measured by the emitter thread). No-op unless
    [sampled t trace]. *)

(** {2 Dump: Chrome trace-event JSON} *)

val dump : t -> Json.t
(** Merge every domain's ring into
    [{"traceEvents": [...], "dropped": n}] — events sorted by
    timestamp, [ts]/[dur] in microseconds, [tid] the recording domain,
    [args] carrying the trace ID and allocated words. [dropped] counts
    events overwritten by ring wraparound. Lock-free; safe from a
    signal handler. *)

val dump_string : t -> string
(** {!dump} rendered compactly on one line (an empty [traceEvents]
    document when disabled). *)

(** {2 Offline digest: the slowest-N requests of a dump} *)

type digest = {
  dg_trace : int;
  dg_op : string;  (** from the request/<op> root event *)
  dg_latency_ns : int;  (** the root event's duration *)
  dg_phase : string;  (** dominant non-root phase, "" if none *)
  dg_phase_ns : int;
}

val top_slow : ?n:int -> Json.t -> (digest list, string) result
(** Read a {!dump} (or any Chrome trace-event document with our [args])
    back and rank complete requests by latency, slowest first, keeping
    [n] (default 10). Errors on documents without a [traceEvents]
    array. *)

val digest_json : digest list -> Json.t
