(** Pattern-match compilation: equation matrices (multi-equation,
    multi-pattern, with guards) into flat kernel [KCase] trees, via the
    classic variable/constructor/literal/mixture rules. Failure
    continuations are shared through join points. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Class_env = Tc_types.Class_env

(** One row of the equation matrix. [mc_body] builds the right-hand side
    given the expression to evaluate if its guards all fail. Patterns must
    be normalized (no tuple/list/string sugar; see
    {!Desugar.normalize_pat}). *)
type equation = {
  mc_pats : Ast.pat list;
  mc_body : fail:Kernel.expr -> Kernel.expr;
}

(** Compile a matrix over the given scrutinee variables; [fail] is the
    overall fall-through (typically a [KFail]). *)
val compile :
  env:Class_env.t ->
  loc:Loc.t ->
  scrutinees:Ident.t list ->
  equations:equation list ->
  fail:Kernel.expr ->
  Kernel.expr
