(** Desugaring: surface syntax to kernel.

    - list / tuple / string literals become constructor applications;
    - multi-equation definitions, guards and [where] blocks become
      match-compiled lambdas ({!Match_comp});
    - pattern bindings are expanded into a tuple-style selector form;
    - [let] blocks and the top level are split into strongly-connected
      binding groups in dependency order (needed both for correct
      generalization and for the paper's §8.3 letrec treatment). *)

open Tc_support
module Ast = Tc_syntax.Ast
module Class_env = Tc_types.Class_env

let err = Diagnostic.errorf

let nil = Ident.intern "[]"
let cons = Ident.intern ":"
let unit_con = Ident.intern "()"
let negate_id = Ident.intern "negate"

(* ------------------------------------------------------------------ *)
(* Pattern normalization: remove list/tuple/string pattern sugar.      *)
(* ------------------------------------------------------------------ *)

let rec normalize_pat (env : Class_env.t) (p : Ast.pat) : Ast.pat =
  let mk node = { p with Ast.p = node } in
  match p.p with
  | Ast.PVar _ | Ast.PWild -> p
  | Ast.PLit (Ast.LString s) ->
      (* "ab" matches like 'a' : 'b' : [] *)
      let chars = List.init (String.length s) (String.get s) in
      List.fold_right
        (fun c acc ->
          mk (Ast.PCon (cons, [ mk (Ast.PLit (Ast.LChar c)); acc ])))
        chars
        (mk (Ast.PCon (nil, [])))
  | Ast.PLit _ -> p
  | Ast.PCon (c, args) -> mk (Ast.PCon (c, List.map (normalize_pat env) args))
  | Ast.PTuple [] -> mk (Ast.PCon (unit_con, []))
  | Ast.PTuple [ q ] -> normalize_pat env q
  | Ast.PTuple qs ->
      let ci = Class_env.tuple_con env (List.length qs) in
      mk (Ast.PCon (ci.con_name, List.map (normalize_pat env) qs))
  | Ast.PList qs ->
      List.fold_right
        (fun q acc -> mk (Ast.PCon (cons, [ normalize_pat env q; acc ])))
        qs
        (mk (Ast.PCon (nil, [])))
  | Ast.PAs (x, q) -> mk (Ast.PAs (x, normalize_pat env q))

let check_linear (pats : Ast.pat list) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      List.iter
        (fun v ->
          if Hashtbl.mem seen v.Ident.id then
            err ~loc:p.Ast.p_loc "variable '%a' is bound twice in a pattern"
              Ident.pp v
          else Hashtbl.add seen v.Ident.id ())
        (Ast.pat_vars p))
    pats

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)
(* ------------------------------------------------------------------ *)

let op_to_kernel op loc : Kernel.expr =
  let s = Ident.text op in
  if String.length s > 0 && (s.[0] = ':' || (s.[0] >= 'A' && s.[0] <= 'Z')) then
    Kernel.KCon (op, loc)
  else Kernel.KVar (op, loc)

let rec expr (env : Class_env.t) (e : Ast.expr) : Kernel.expr =
  let loc = e.e_loc in
  match e.e with
  | Ast.EVar x -> Kernel.KVar (x, loc)
  | Ast.ECon c -> Kernel.KCon (c, loc)
  | Ast.ELit (Ast.LString s) ->
      let chars = List.init (String.length s) (String.get s) in
      List.fold_right
        (fun c acc ->
          Kernel.kapps (Kernel.KCon (cons, loc))
            [ Kernel.KLit (Ast.LChar c, loc); acc ])
        chars
        (Kernel.KCon (nil, loc))
  | Ast.ELit l -> Kernel.KLit (l, loc)
  | Ast.EApp (f, a) -> Kernel.KApp (expr env f, expr env a)
  | Ast.ELam (pats, body) ->
      let pats = List.map (normalize_pat env) pats in
      check_linear pats;
      lambda env ~loc pats (expr env body) ~what:"lambda"
  | Ast.ELet (ds, body) ->
      let groups = decls_to_groups env ds in
      List.fold_right (fun g acc -> Kernel.KLet (g, acc)) groups (expr env body)
  | Ast.EIf (c, t, f) -> Kernel.KIf (expr env c, expr env t, expr env f)
  | Ast.ECase (scrut, alts) ->
      let v = Ident.gensym "scrut" in
      let equations =
        List.map
          (fun (a : Ast.alt) ->
            let p = normalize_pat env a.alt_pat in
            check_linear [ p ];
            { Match_comp.mc_pats = [ p ]; mc_body = rhs_body env a.alt_rhs })
          alts
      in
      let fail = Kernel.KFail ("non-exhaustive case expression", loc) in
      let compiled =
        Match_comp.compile ~env ~loc ~scrutinees:[ v ] ~equations ~fail
      in
      warn_nonexhaustive env ~loc ~what:"a case expression" fail compiled;
      Kernel.KLet
        ( Kernel.KNonrec
            {
              kb_name = v;
              kb_expr = expr env scrut;
              kb_sig = None;
              kb_restricted = true;
              kb_loc = loc;
            },
          compiled )
  | Ast.ETuple [] -> Kernel.KCon (unit_con, loc)
  | Ast.ETuple [ e1 ] -> expr env e1
  | Ast.ETuple es ->
      let ci = Class_env.tuple_con env (List.length es) in
      Kernel.kapps (Kernel.KCon (ci.con_name, loc)) (List.map (expr env) es)
  | Ast.ERange (a, b) ->
      (* [a..b] / [a..] are sugar for the prelude's enumFromTo / enumFrom *)
      let fn = match b with Some _ -> "enumFromTo" | None -> "enumFrom" in
      Kernel.kapps
        (Kernel.KVar (Ident.intern fn, loc))
        (expr env a :: (match b with Some b -> [ expr env b ] | None -> []))
  | Ast.EList es ->
      List.fold_right
        (fun e1 acc -> Kernel.kapps (Kernel.KCon (cons, loc)) [ expr env e1; acc ])
        es
        (Kernel.KCon (nil, loc))
  | Ast.EAnnot (e1, q) -> Kernel.KAnnot (expr env e1, q, loc)
  | Ast.ENeg e1 -> Kernel.KApp (Kernel.KVar (negate_id, loc), expr env e1)
  | Ast.EOpSeq _ ->
      invalid_arg "Desugar.expr: operator sequence not fixity-resolved"
  | Ast.ELeftSection (e1, op) -> Kernel.KApp (op_to_kernel op loc, expr env e1)
  | Ast.ERightSection (op, e1) ->
      let x = Ident.gensym "x" in
      Kernel.KLam
        ( [ x ],
          Kernel.kapps (op_to_kernel op loc) [ Kernel.KVar (x, loc); expr env e1 ]
        )

(** Build [\p1 ... pn -> body], match-compiling non-variable patterns. *)
and lambda env ~loc (pats : Ast.pat list) (body : Kernel.expr) ~what : Kernel.expr
    =
  let all_vars =
    List.for_all (fun (p : Ast.pat) -> match p.p with Ast.PVar _ -> true | _ -> false) pats
  in
  if all_vars then
    Kernel.KLam
      ( List.map
          (fun (p : Ast.pat) ->
            match p.Ast.p with Ast.PVar x -> x | _ -> assert false)
          pats,
        body )
  else begin
    let vars = List.map (fun _ -> Ident.gensym "a") pats in
    let equations =
      [ { Match_comp.mc_pats = pats; mc_body = (fun ~fail -> ignore fail; body) } ]
    in
    Kernel.KLam
      ( vars,
        Match_comp.compile ~env ~loc ~scrutinees:vars ~equations
          ~fail:
            (Kernel.KFail
               (Printf.sprintf "non-exhaustive patterns in %s" what, loc)) )
  end

(** The right-hand side of an equation/alternative as a body builder: the
    [where] block scopes over the guards, and failed guards evaluate the
    [fail] continuation. *)
and rhs_body env (r : Ast.rhs) : fail:Kernel.expr -> Kernel.expr =
 fun ~fail ->
  (* a final [otherwise] (or literal [True]) guard is unconditional, so the
     failure continuation is unreachable — recognize it both to avoid dead
     code and to keep exhaustiveness warnings quiet *)
  let is_otherwise (c : Ast.expr) =
    match c.e with
    | Ast.EVar v -> Ident.text v = "otherwise"
    | Ast.ECon c' -> Ident.text c' = "True"
    | _ -> false
  in
  let inner =
    match r.rhs_body with
    | Ast.Unguarded e -> expr env e
    | Ast.Guarded guards ->
        let rec build = function
          | [] -> fail
          | [ (cond, e) ] when is_otherwise cond -> expr env e
          | (cond, e) :: rest -> Kernel.KIf (expr env cond, expr env e, build rest)
        in
        build guards
  in
  match r.rhs_where with
  | [] -> inner
  | ds ->
      let groups = decls_to_groups env ds in
      List.fold_right (fun g acc -> Kernel.KLet (g, acc)) groups inner

(* ------------------------------------------------------------------ *)
(* Exhaustiveness warnings.                                            *)
(* ------------------------------------------------------------------ *)

(** Does [needle] (a specific [KFail] node) remain reachable in [e]?
    Physical identity makes this precise: the match compiler inserts the
    failure continuation only where no equation covers a case. *)
and kfail_reachable (needle : Kernel.expr) (e : Kernel.expr) : bool =
  if e == needle then true
  else
    match e with
    | Kernel.KVar _ | Kernel.KCon _ | Kernel.KLit _ | Kernel.KFail _ -> false
    | Kernel.KApp (f, a) -> kfail_reachable needle f || kfail_reachable needle a
    | Kernel.KLam (_, b) | Kernel.KAnnot (b, _, _) -> kfail_reachable needle b
    | Kernel.KLet (g, b) ->
        List.exists
          (fun (kb : Kernel.bind) -> kfail_reachable needle kb.kb_expr)
          (Kernel.binds_of_group g)
        || kfail_reachable needle b
    | Kernel.KIf (c, t, f) ->
        kfail_reachable needle c || kfail_reachable needle t
        || kfail_reachable needle f
    | Kernel.KCase (s, alts, d) ->
        kfail_reachable needle s
        || List.exists (fun (a : Kernel.alt) -> kfail_reachable needle a.ka_body) alts
        || (match d with Some d -> kfail_reachable needle d | None -> false)

and warn_nonexhaustive env ~(loc : Loc.t) ~what fail compiled =
  if loc.Loc.file <> "<prelude>" && kfail_reachable fail compiled then
    Diagnostic.Sink.warn env.Class_env.sink ~loc
      "pattern matching in %s may be non-exhaustive" what

(* ------------------------------------------------------------------ *)
(* Function bindings.                                                  *)
(* ------------------------------------------------------------------ *)

(** Desugar a (grouped) function binding into a single expression. *)
and fun_bind_expr env (fb : Ast.fun_bind) : Kernel.expr =
  let arity =
    match fb.fb_equations with
    | eq :: _ -> List.length eq.eq_pats
    | [] -> assert false
  in
  List.iter
    (fun (eq : Ast.equation) ->
      if List.length eq.eq_pats <> arity then
        err ~loc:fb.fb_loc
          "equations for '%a' have different numbers of arguments" Ident.pp
          fb.fb_name)
    fb.fb_equations;
  if arity = 0 then begin
    match fb.fb_equations with
    | [ eq ] ->
        rhs_body env eq.eq_rhs
          ~fail:
            (Kernel.KFail
               ( Printf.sprintf "non-exhaustive guards in '%s'"
                   (Ident.text fb.fb_name),
                 fb.fb_loc ))
    | _ ->
        err ~loc:fb.fb_loc "multiple equations for '%a' require arguments"
          Ident.pp fb.fb_name
  end
  else begin
    let vars = List.map (fun _ -> Ident.gensym "a") (List.init arity Fun.id) in
    let equations =
      List.map
        (fun (eq : Ast.equation) ->
          let pats = List.map (normalize_pat env) eq.eq_pats in
          check_linear pats;
          { Match_comp.mc_pats = pats; mc_body = rhs_body env eq.eq_rhs })
        fb.fb_equations
    in
    let fail =
      Kernel.KFail
        ( Printf.sprintf "non-exhaustive patterns in '%s'" (Ident.text fb.fb_name),
          fb.fb_loc )
    in
    let compiled =
      Match_comp.compile ~env ~loc:fb.fb_loc ~scrutinees:vars ~equations ~fail
    in
    warn_nonexhaustive env ~loc:fb.fb_loc
      ~what:(Printf.sprintf "the definition of '%s'" (Ident.text fb.fb_name))
      fail compiled;
    Kernel.KLam (vars, compiled)
  end

(* ------------------------------------------------------------------ *)
(* Binding blocks: signatures, pattern-binding expansion, SCCs.        *)
(* ------------------------------------------------------------------ *)

and decls_to_groups ?sink env (ds : Ast.decl list) : Kernel.group list =
  (* per-item recovery boundary: with [sink], a bad signature or binding
     loses only itself (references to it desugar as free variables and are
     reported at their use sites); without, the error propagates *)
  let g ~loc f =
    match sink with
    | None -> f ()
    | Some sink ->
        Diagnostic.guard ~sink ~stage:"desugaring" ~loc
          ~recover:(fun () -> ())
          f
  in
  let grouped = Ast.group_decls ds in
  (* signatures *)
  let sigs : Ast.sqtyp Ident.Tbl.t = Ident.Tbl.create 8 in
  List.iter
    (fun (names, q, loc) ->
      g ~loc @@ fun () ->
      List.iter
        (fun n ->
          if Ident.Tbl.mem sigs n then
            err ~loc "duplicate type signature for '%a'" Ident.pp n;
          Ident.Tbl.add sigs n q)
        names)
    grouped.g_sigs;
  (* raw bindings *)
  let binds : Kernel.bind list ref = ref [] in
  let bound : Loc.t Ident.Tbl.t = Ident.Tbl.create 8 in
  let add_bind ~loc name e ~restricted_without_sig =
    if Ident.Tbl.mem bound name then
      err ~loc "'%a' is bound more than once in the same block" Ident.pp name;
    Ident.Tbl.add bound name loc;
    let sg = Ident.Tbl.find_opt sigs name in
    binds :=
      {
        Kernel.kb_name = name;
        kb_expr = e;
        kb_sig = sg;
        kb_restricted = restricted_without_sig && sg = None;
        kb_loc = loc;
      }
      :: !binds
  in
  List.iter
    (fun b ->
      let bloc =
        match b with
        | Ast.BFun fb -> fb.Ast.fb_loc
        | Ast.BPat (p, _, _) -> p.Ast.p_loc
      in
      g ~loc:bloc @@ fun () ->
      match b with
      | Ast.BFun fb ->
          let arity =
            match fb.fb_equations with
            | eq :: _ -> List.length eq.eq_pats
            | [] -> assert false
          in
          add_bind ~loc:fb.fb_loc fb.fb_name (fun_bind_expr env fb)
            ~restricted_without_sig:(arity = 0)
      | Ast.BPat ({ p = Ast.PVar x; p_loc }, r, _) ->
          add_bind ~loc:p_loc x
            (rhs_body env r
               ~fail:
                 (Kernel.KFail
                    ( Printf.sprintf "non-exhaustive guards in '%s'"
                        (Ident.text x),
                      p_loc )))
            ~restricted_without_sig:true
      | Ast.BPat (p, r, loc) ->
          (* p = e  ⇒  tmp = e; x = case tmp of p -> x  (for each x in p) *)
          let p = normalize_pat env p in
          check_linear [ p ];
          let vars = Ast.pat_vars p in
          if vars = [] then
            err ~loc "pattern binding binds no variables";
          let tmp = Ident.gensym "pb" in
          add_bind ~loc tmp
            (rhs_body env r
               ~fail:(Kernel.KFail ("non-exhaustive pattern binding", loc)))
            ~restricted_without_sig:true;
          List.iter
            (fun x ->
              let sel =
                Match_comp.compile ~env ~loc ~scrutinees:[ tmp ]
                  ~equations:
                    [
                      {
                        Match_comp.mc_pats = [ p ];
                        mc_body = (fun ~fail -> ignore fail; Kernel.KVar (x, loc));
                      };
                    ]
                  ~fail:
                    (Kernel.KFail ("non-exhaustive pattern binding", loc))
              in
              add_bind ~loc x sel ~restricted_without_sig:true)
            vars)
    grouped.g_binds;
  let binds = List.rev !binds in
  (* signatures without a binding *)
  Ident.Tbl.iter
    (fun n q ->
      if not (Ident.Tbl.mem bound n) then
        g ~loc:q.Ast.sq_loc (fun () ->
            err ~loc:q.Ast.sq_loc
              "type signature for '%a' lacks an accompanying binding" Ident.pp
              n))
    sigs;
  scc_groups binds

(** Split a list of bindings into strongly-connected components, returned in
    dependency order (Tarjan). *)
and scc_groups (binds : Kernel.bind list) : Kernel.group list =
  let n = List.length binds in
  let arr = Array.of_list binds in
  let index_of : int Ident.Tbl.t = Ident.Tbl.create 16 in
  Array.iteri (fun i b -> Ident.Tbl.add index_of b.Kernel.kb_name i) arr;
  let adj =
    Array.map
      (fun b ->
        Ident.Set.fold
          (fun v acc ->
            match Ident.Tbl.find_opt index_of v with
            | Some j -> j :: acc
            | None -> acc)
          (Kernel.free_vars b.Kernel.kb_expr)
          [])
      arr
  in
  (* Tarjan's algorithm *)
  let indices = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    indices.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if indices.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) indices.(w))
      adj.(v);
    if lowlink.(v) = indices.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if indices.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components dependencies-first; we accumulated by
     prepending, so reverse to restore dependency order. *)
  List.map
    (fun comp ->
      match comp with
      | [ v ] ->
          let b = arr.(v) in
          let self_recursive =
            Ident.Set.mem b.Kernel.kb_name (Kernel.free_vars b.Kernel.kb_expr)
          in
          if self_recursive then Kernel.KRec [ b ] else Kernel.KNonrec b
      | vs -> Kernel.KRec (List.map (fun v -> arr.(v)) vs))
    (List.rev !components)

(** Desugar top-level value declarations (signatures and bindings). *)
let top_decls ?sink env (ds : Ast.decl list) : Kernel.group list =
  decls_to_groups ?sink env ds
