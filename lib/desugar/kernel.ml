(** The kernel language: desugared surface syntax, input to type inference.

    All pattern matching has been compiled to flat [KCase] (one constructor
    or literal deep), multi-equation definitions merged, guards and [where]
    expanded, string/list/tuple sugar removed, and let blocks split into
    strongly-connected binding groups in dependency order. *)

open Tc_support

type lit = Tc_syntax.Ast.lit

type test =
  | KTcon of Ident.t  (* data constructor *)
  | KTlit of lit      (* literal; Int/Float/Char only *)

type expr =
  | KVar of Ident.t * Loc.t
  | KCon of Ident.t * Loc.t
  | KLit of lit * Loc.t
  | KApp of expr * expr
  | KLam of Ident.t list * expr
  | KLet of group * expr
  | KIf of expr * expr * expr
  | KCase of expr * alt list * expr option
  | KAnnot of expr * Tc_syntax.Ast.sqtyp * Loc.t  (* e :: ty *)
  | KFail of string * Loc.t  (* pattern-match failure *)

and alt = { ka_test : test; ka_vars : Ident.t list; ka_body : expr }

(** One binding of a group. *)
and bind = {
  kb_name : Ident.t;
  kb_expr : expr;
  kb_sig : Tc_syntax.Ast.sqtyp option;  (* user-supplied signature (§8.6) *)
  kb_restricted : bool;  (* monomorphism restriction applies (§8.7) *)
  kb_loc : Loc.t;
}

(** A strongly-connected binding group. *)
and group =
  | KNonrec of bind
  | KRec of bind list

let binds_of_group = function KNonrec b -> [ b ] | KRec bs -> bs

let rec loc_of = function
  | KVar (_, l) | KCon (_, l) | KLit (_, l) | KAnnot (_, _, l) | KFail (_, l) -> l
  | KApp (f, _) -> loc_of f
  | KLam (_, b) -> loc_of b
  | KLet (_, b) -> loc_of b
  | KIf (c, _, _) -> loc_of c
  | KCase (s, _, _) -> loc_of s

let kapps f args = List.fold_left (fun acc a -> KApp (acc, a)) f args

(* ------------------------------------------------------------------ *)
(* Free variables (value level) — used for dependency analysis.        *)
(* ------------------------------------------------------------------ *)

let free_vars (e : expr) : Ident.Set.t =
  let rec go bound acc = function
    | KVar (x, _) -> if Ident.Set.mem x bound then acc else Ident.Set.add x acc
    | KCon _ | KLit _ | KFail _ -> acc
    | KApp (f, a) -> go bound (go bound acc f) a
    | KLam (vs, b) ->
        go (List.fold_left (fun s v -> Ident.Set.add v s) bound vs) acc b
    | KLet (g, body) ->
        let binds = binds_of_group g in
        let bound' =
          List.fold_left (fun s b -> Ident.Set.add b.kb_name s) bound binds
        in
        let rhs_bound = match g with KNonrec _ -> bound | KRec _ -> bound' in
        let acc =
          List.fold_left (fun acc b -> go rhs_bound acc b.kb_expr) acc binds
        in
        go bound' acc body
    | KIf (c, t, f) -> go bound (go bound (go bound acc c) t) f
    | KCase (s, alts, d) ->
        let acc = go bound acc s in
        let acc =
          List.fold_left
            (fun acc a ->
              let bound' =
                List.fold_left (fun s v -> Ident.Set.add v s) bound a.ka_vars
              in
              go bound' acc a.ka_body)
            acc alts
        in
        (match d with Some d -> go bound acc d | None -> acc)
    | KAnnot (b, _, _) -> go bound acc b
  in
  go Ident.Set.empty Ident.Set.empty e

(* ------------------------------------------------------------------ *)
(* Pretty printing (for debugging dumps).                              *)
(* ------------------------------------------------------------------ *)

let pp_lit = Tc_syntax.Ast_pp.pp_lit

let rec pp ppf = function
  | KVar (x, _) -> Ident.pp ppf x
  | KCon (c, _) -> Ident.pp ppf c
  | KLit (l, _) -> pp_lit ppf l
  | KApp _ as e ->
      let rec collect acc = function
        | KApp (f, a) -> collect (a :: acc) f
        | f -> (f, acc)
      in
      let f, args = collect [] e in
      Fmt.pf ppf "(%a%a)" pp f
        (Fmt.list ~sep:Fmt.nop (fun ppf a -> Fmt.pf ppf " %a" pp a))
        args
  | KLam (vs, b) ->
      Fmt.pf ppf "(\\%a -> %a)" (Fmt.list ~sep:Fmt.sp Ident.pp) vs pp b
  | KLet (g, b) -> Fmt.pf ppf "(let %a in %a)" pp_group g pp b
  | KIf (c, t, f) -> Fmt.pf ppf "(if %a then %a else %a)" pp c pp t pp f
  | KCase (s, alts, d) ->
      Fmt.pf ppf "(case %a of {%a%s})" pp s
        (Fmt.list ~sep:(Fmt.any "; ") pp_alt)
        alts
        (match d with
         | Some d -> Fmt.str "; _ -> %s" (Fmt.str "%a" pp d)
         | None -> "")
  | KAnnot (e, q, _) -> Fmt.pf ppf "(%a :: %a)" pp e Tc_syntax.Ast_pp.pp_qtyp q
  | KFail (msg, _) -> Fmt.pf ppf "<fail: %s>" msg

and pp_alt ppf a =
  (match a.ka_test with
   | KTcon c ->
       Fmt.pf ppf "%a%a" Ident.pp c
         (Fmt.list ~sep:Fmt.nop (fun ppf v -> Fmt.pf ppf " %a" Ident.pp v))
         a.ka_vars
   | KTlit l -> pp_lit ppf l);
  Fmt.pf ppf " -> %a" pp a.ka_body

and pp_group ppf = function
  | KNonrec b -> Fmt.pf ppf "%a = %a" Ident.pp b.kb_name pp b.kb_expr
  | KRec bs ->
      Fmt.pf ppf "rec {%a}"
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf b ->
             Fmt.pf ppf "%a = %a" Ident.pp b.kb_name pp b.kb_expr))
        bs
