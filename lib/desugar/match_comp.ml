(** Pattern-match compilation.

    Translates equation matrices (multi-equation, multi-pattern definitions
    with guards) into flat kernel [KCase] trees, following the classic
    variable/constructor/literal/mixture rules. Failure continuations are
    bound as join points (unit-lambdas) to avoid code duplication. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Class_env = Tc_types.Class_env

(** One row of the equation matrix. [mc_body] builds the right-hand side
    given the expression to evaluate if its guards all fail. *)
type equation = {
  mc_pats : Ast.pat list;
  mc_body : fail:Kernel.expr -> Kernel.expr;
}

let unit_con = Ident.intern "()"

(** Is [fail] cheap enough to duplicate? *)
let is_cheap = function
  | Kernel.KVar _ | Kernel.KFail _ -> true
  | Kernel.KApp (Kernel.KVar _, Kernel.KCon _) -> true (* a join-point call *)
  | _ -> false

(** [with_join fail k]: pass [k] a duplicable version of [fail], binding a
    join point around the result if needed. *)
let with_join (fail : Kernel.expr) (k : Kernel.expr -> Kernel.expr) : Kernel.expr =
  if is_cheap fail then k fail
  else begin
    let j = Ident.gensym "fail" in
    let u = Ident.gensym "u" in
    let loc = Kernel.loc_of fail in
    let call = Kernel.KApp (Kernel.KVar (j, loc), Kernel.KCon (unit_con, loc)) in
    Kernel.KLet
      ( Kernel.KNonrec
          {
            kb_name = j;
            kb_expr = Kernel.KLam ([ u ], fail);
            kb_sig = None;
            kb_restricted = false;
            kb_loc = loc;
          },
        k call )
  end

(* ------------------------------------------------------------------ *)

type category = Cvar | Ccon | Clit

let rec categorize (p : Ast.pat) : category =
  match p.p with
  | Ast.PVar _ | Ast.PWild -> Cvar
  | Ast.PCon _ -> Ccon
  | Ast.PLit _ -> Clit
  | Ast.PAs (_, inner) -> categorize inner
  | Ast.PTuple _ | Ast.PList _ ->
      invalid_arg "Match_comp: tuple/list patterns must be normalized first"

(** Peel [x@p] aliases off the head pattern, binding the alias to the
    scrutinee variable. Returns the bare head pattern and a body wrapper. *)
let rec peel_as (v : Ident.t) (p : Ast.pat) (eq : equation) : Ast.pat * equation =
  match p.p with
  | Ast.PAs (x, inner) ->
      let wrap body ~fail =
        Kernel.KLet
          ( Kernel.KNonrec
              {
                kb_name = x;
                kb_expr = Kernel.KVar (v, p.p_loc);
                kb_sig = None;
                kb_restricted = true;
                kb_loc = p.p_loc;
              },
            body ~fail )
      in
      peel_as v inner { eq with mc_body = wrap eq.mc_body }
  | _ -> (p, eq)

let head_pat eq =
  match eq.mc_pats with
  | p :: _ -> p
  | [] -> invalid_arg "Match_comp: empty pattern row"

let rest_pats eq = List.tl eq.mc_pats

(* ------------------------------------------------------------------ *)

let rec compile ~(env : Class_env.t) ~loc ~(scrutinees : Ident.t list)
    ~(equations : equation list) ~(fail : Kernel.expr) : Kernel.expr =
  match scrutinees with
  | [] -> chain_rhs equations fail
  | v :: rest ->
      (* split into maximal runs of equations with same head category *)
      let runs = split_runs v equations in
      List.fold_right
        (fun run acc -> compile_run ~env ~loc v rest run acc)
        runs fail

and chain_rhs equations fail =
  match equations with
  | [] -> fail
  | eq :: restq ->
      assert (eq.mc_pats = []);
      with_join (chain_rhs restq fail) (fun f -> eq.mc_body ~fail:f)

and split_runs v equations : (category * equation list) list =
  let categorized =
    List.map
      (fun eq ->
        let head, eq = peel_as v (head_pat eq) eq in
        let eq = { eq with mc_pats = head :: rest_pats eq } in
        (categorize head, eq))
      equations
  in
  let rec runs = function
    | [] -> []
    | (c, eq) :: restq ->
        let same, others =
          let rec span acc = function
            | (c', eq') :: tl when c' = c -> span (eq' :: acc) tl
            | tl -> (List.rev acc, tl)
          in
          span [ eq ] restq
        in
        (c, same) :: runs others
  in
  runs categorized

and compile_run ~env ~loc v rest (cat, equations) fail : Kernel.expr =
  match cat with
  | Cvar ->
      (* bind the variable (if named) and drop the column *)
      let equations =
        List.map
          (fun eq ->
            let head = head_pat eq and restp = rest_pats eq in
            match head.p with
            | Ast.PWild -> { eq with mc_pats = restp }
            | Ast.PVar x ->
                let body = eq.mc_body in
                {
                  mc_pats = restp;
                  mc_body =
                    (fun ~fail ->
                      Kernel.KLet
                        ( Kernel.KNonrec
                            {
                              kb_name = x;
                              kb_expr = Kernel.KVar (v, head.p_loc);
                              kb_sig = None;
                              kb_restricted = true;
                              kb_loc = head.p_loc;
                            },
                          body ~fail ));
                }
            | _ -> assert false)
          equations
      in
      compile ~env ~loc ~scrutinees:rest ~equations ~fail
  | Ccon ->
      with_join fail (fun fail ->
          let groups = group_by_con equations in
          let span =
            match groups with
            | (c, _) :: _ -> (
                match Class_env.find_datacon env c with
                | Some info -> info.con_span
                | None ->
                    Diagnostic.errorf ~loc "unknown data constructor '%a'"
                      Ident.pp c)
            | [] -> assert false
          in
          let alts =
            List.map
              (fun (c, eqs) ->
                let info =
                  match Class_env.find_datacon env c with
                  | Some info -> info
                  | None ->
                      Diagnostic.errorf ~loc "unknown data constructor '%a'"
                        Ident.pp c
                in
                let fields =
                  List.init info.con_arity (fun i ->
                      Ident.gensym (Printf.sprintf "f%d" i))
                in
                let sub_eqs =
                  List.map
                    (fun eq ->
                      let head = head_pat eq in
                      match head.p with
                      | Ast.PCon (_, args) ->
                          if List.length args <> info.con_arity then
                            Diagnostic.errorf ~loc:head.p_loc
                              "constructor '%a' expects %d argument(s) but \
                               the pattern has %d"
                              Ident.pp c info.con_arity (List.length args);
                          { eq with mc_pats = args @ rest_pats eq }
                      | _ -> assert false)
                    eqs
                in
                {
                  Kernel.ka_test = Kernel.KTcon c;
                  ka_vars = fields;
                  ka_body =
                    compile ~env ~loc ~scrutinees:(fields @ rest)
                      ~equations:sub_eqs ~fail;
                })
              groups
          in
          let default = if List.length groups < span then Some fail else None in
          Kernel.KCase (Kernel.KVar (v, loc), alts, default))
  | Clit ->
      with_join fail (fun fail ->
          let groups = group_by_lit equations in
          let alts =
            List.map
              (fun (l, eqs) ->
                let sub_eqs =
                  List.map (fun eq -> { eq with mc_pats = rest_pats eq }) eqs
                in
                {
                  Kernel.ka_test = Kernel.KTlit l;
                  ka_vars = [];
                  ka_body =
                    compile ~env ~loc ~scrutinees:rest ~equations:sub_eqs ~fail;
                })
              groups
          in
          Kernel.KCase (Kernel.KVar (v, loc), alts, Some fail))

and group_by_con equations : (Ident.t * equation list) list =
  let order = ref [] in
  let table : (int, equation list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun eq ->
      match (head_pat eq).p with
      | Ast.PCon (c, _) ->
          if not (Hashtbl.mem table c.Ident.id) then begin
            order := c :: !order;
            Hashtbl.add table c.Ident.id []
          end;
          Hashtbl.replace table c.Ident.id (eq :: Hashtbl.find table c.Ident.id)
      | _ -> assert false)
    equations;
  (* [!order] is reversed first-appearance order; [rev_map] restores it *)
  List.rev_map (fun c -> (c, List.rev (Hashtbl.find table c.Ident.id))) !order

and group_by_lit equations : (Ast.lit * equation list) list =
  let groups : (Ast.lit * equation list ref) list ref = ref [] in
  List.iter
    (fun eq ->
      match (head_pat eq).p with
      | Ast.PLit l -> (
          match List.find_opt (fun (l', _) -> l' = l) !groups with
          | Some (_, cell) -> cell := eq :: !cell
          | None -> groups := !groups @ [ (l, ref [ eq ]) ])
      | _ -> assert false)
    equations;
  List.map (fun (l, cell) -> (l, List.rev !cell)) !groups
