(** Desugaring: surface syntax to kernel. List/tuple/string sugar becomes
    constructor applications; equations, guards and [where] are
    match-compiled; pattern bindings are expanded; [let] blocks and the top
    level are split into strongly-connected binding groups in dependency
    order (needed for correct generalization and §8.3). *)

module Ast = Tc_syntax.Ast
module Class_env = Tc_types.Class_env

(** Remove list/tuple/string pattern sugar (registers tuple constructors). *)
val normalize_pat : Class_env.t -> Ast.pat -> Ast.pat

val expr : Class_env.t -> Ast.expr -> Kernel.expr

(** Desugar a grouped function binding into a single (match-compiled)
    expression; used for instance methods and class defaults. *)
val fun_bind_expr : Class_env.t -> Ast.fun_bind -> Kernel.expr

(** Desugar a block of declarations into binding groups in dependency
    order. With [sink], each top-level signature group and binding is a
    fault-isolation boundary: a declaration that fails to desugar is
    reported and dropped, and the rest of the block still desugars. *)
val decls_to_groups :
  ?sink:Tc_support.Diagnostic.Sink.sink ->
  Class_env.t ->
  Ast.decl list ->
  Kernel.group list

(** Desugar top-level value declarations. *)
val top_decls :
  ?sink:Tc_support.Diagnostic.Sink.sink ->
  Class_env.t ->
  Ast.decl list ->
  Kernel.group list
