(** The kernel language: desugared surface syntax, input to type inference.
    Pattern matching is flat (one constructor or literal deep), guards and
    [where] are expanded, and let blocks are strongly-connected binding
    groups in dependency order. *)

open Tc_support

type lit = Tc_syntax.Ast.lit

type test =
  | KTcon of Ident.t  (** data constructor *)
  | KTlit of lit      (** Int/Float/Char literal *)

type expr =
  | KVar of Ident.t * Loc.t
  | KCon of Ident.t * Loc.t
  | KLit of lit * Loc.t
  | KApp of expr * expr
  | KLam of Ident.t list * expr
  | KLet of group * expr
  | KIf of expr * expr * expr
  | KCase of expr * alt list * expr option
  | KAnnot of expr * Tc_syntax.Ast.sqtyp * Loc.t
  | KFail of string * Loc.t  (** pattern-match failure *)

and alt = { ka_test : test; ka_vars : Ident.t list; ka_body : expr }

and bind = {
  kb_name : Ident.t;
  kb_expr : expr;
  kb_sig : Tc_syntax.Ast.sqtyp option;  (** user signature (§8.6) *)
  kb_restricted : bool;  (** monomorphism restriction applies (§8.7) *)
  kb_loc : Loc.t;
}

and group =
  | KNonrec of bind
  | KRec of bind list

val binds_of_group : group -> bind list
val loc_of : expr -> Loc.t
val kapps : expr -> expr list -> expr

(** Free value-level variables (for dependency analysis). *)
val free_vars : expr -> Ident.Set.t

val pp : Format.formatter -> expr -> unit
val pp_group : Format.formatter -> group -> unit
