(** The MiniHaskell standard prelude.

    Defines the standard classes of the paper's setting — [Eq], [Ord],
    [Text] (printing), [Parse] (return-type overloading, the paper's [read]
    example) and [Num] (with [Eq] and [Text] superclasses, as in §8.1) —
    together with instances for the primitive and built-in types and the
    usual list/function library.

    It is compiled together with every user program, so it exercises the
    whole pipeline: classes, superclasses, defaults, derived instances,
    overloaded literals, signatures, and pattern-match compilation. *)

let source = {prelude|
-- Booleans ----------------------------------------------------------

data Bool = False | True deriving (Eq, Ord, Text)

not True  = False
not False = True

otherwise = True

infixr 3 &&
infixr 2 ||

True  && x = x
False && x = False

True  || x = True
False || x = x

-- Classes ------------------------------------------------------------

class Eq a where
  (==) :: a -> a -> Bool
  (/=) :: a -> a -> Bool
  x /= y = not (x == y)

data Ordering = LT | EQ | GT deriving (Eq, Ord, Text)

class Eq a => Ord a where
  (<=)    :: a -> a -> Bool
  (<)     :: a -> a -> Bool
  (>)     :: a -> a -> Bool
  (>=)    :: a -> a -> Bool
  max     :: a -> a -> a
  min     :: a -> a -> a
  compare :: a -> a -> Ordering
  x < y   = not (y <= x)
  x > y   = not (x <= y)
  x >= y  = y <= x
  max x y = if x <= y then y else x
  min x y = if x <= y then x else y
  compare x y = if x == y then EQ else if x <= y then LT else GT

class Text a where
  str :: a -> String

class Parse a where
  parse :: String -> a

instance Parse Bool where
  parse "True"  = True
  parse "False" = False
  parse s       = error ("parse: not a Bool: " ++ s)

class (Eq a, Text a) => Num a where
  (+) :: a -> a -> a
  (-) :: a -> a -> a
  (*) :: a -> a -> a
  negate   :: a -> a
  abs      :: a -> a
  signum   :: a -> a
  fromInt  :: Int -> a
  negate x = fromInt 0 - x

-- Int ------------------------------------------------------------------

instance Eq Int where
  (==) = primEqInt

instance Ord Int where
  (<=) = primLeInt

instance Text Int where
  str = primIntStr

instance Parse Int where
  parse = primStrInt

instance Num Int where
  (+) = primAddInt
  (-) = primSubInt
  (*) = primMulInt
  negate = primNegInt
  abs n = if n < 0 then negate n else n
  signum n = if n < 0 then negate 1 else if n == 0 then 0 else 1
  fromInt n = n

div = primDivInt
mod = primModInt

even :: Int -> Bool
even n = mod n 2 == 0

odd :: Int -> Bool
odd n = not (even n)

-- Float ----------------------------------------------------------------

instance Eq Float where
  (==) = primEqFloat

instance Ord Float where
  (<=) = primLeFloat

instance Text Float where
  str = primFloatStr

instance Parse Float where
  parse = primStrFloat

instance Num Float where
  (+) = primAddFloat
  (-) = primSubFloat
  (*) = primMulFloat
  negate = primNegFloat
  abs x = if x < 0.0 then negate x else x
  signum x = if x < 0.0 then negate 1.0 else if x == 0.0 then 0.0 else 1.0
  fromInt = primIntToFloat

(/) :: Float -> Float -> Float
(/) = primDivFloat

fromIntegral :: Num a => Int -> a
fromIntegral = fromInt

-- Char -------------------------------------------------------------------

type String = [Char]

instance Eq Char where
  (==) = primEqChar

instance Ord Char where
  (<=) = primLeChar

instance Text Char where
  str c = c : []

ord = primOrd
chr = primChr

-- Unit, tuples -------------------------------------------------------------

instance Eq () where
  x == y = True

instance Text () where
  str x = "()"

instance (Eq a, Eq b) => Eq (a, b) where
  (a1, b1) == (a2, b2) = a1 == a2 && b1 == b2

instance (Ord a, Ord b) => Ord (a, b) where
  (a1, b1) <= (a2, b2) = a1 < a2 || (a1 == a2 && b1 <= b2)

instance (Text a, Text b) => Text (a, b) where
  str p = case p of
    (a, b) -> "(" ++ str a ++ ", " ++ str b ++ ")"

instance (Eq a, Eq b, Eq c) => Eq (a, b, c) where
  (a1, b1, c1) == (a2, b2, c2) = a1 == a2 && b1 == b2 && c1 == c2

instance (Text a, Text b, Text c) => Text (a, b, c) where
  str t = case t of
    (a, b, c) -> "(" ++ str a ++ ", " ++ str b ++ ", " ++ str c ++ ")"

fst (x, y) = x
snd (x, y) = y
curry f x y = f (x, y)
uncurry f p = case p of
  (x, y) -> f x y

-- Lists ----------------------------------------------------------------------

instance Eq a => Eq [a] where
  [] == []         = True
  (x:xs) == (y:ys) = x == y && xs == ys
  xs == ys         = False

instance Ord a => Ord [a] where
  [] <= ys         = True
  (x:xs) <= []     = False
  (x:xs) <= (y:ys) = x < y || (x == y && xs <= ys)

instance Text a => Text [a] where
  str xs = "[" ++ strCommaSep xs ++ "]"

strCommaSep :: Text a => [a] -> String
strCommaSep []     = ""
strCommaSep [x]    = str x
strCommaSep (x:xs) = str x ++ ", " ++ strCommaSep xs

-- Maybe / Either --------------------------------------------------------------

data Maybe a = Nothing | Just a deriving (Eq, Text)

data Either a b = Left a | Right b deriving (Eq, Text)

maybe d f Nothing  = d
maybe d f (Just x) = f x

either f g (Left x)  = f x
either f g (Right y) = g y

isJust Nothing  = False
isJust (Just x) = True

fromMaybe d Nothing  = d
fromMaybe d (Just x) = x

-- Functions ---------------------------------------------------------------------

infixr 9 .
infixr 0 $

id x = x
const x y = x
flip f x y = f y x
(.) f g x = f (g x)
($) f x = f x

seq :: a -> b -> b
seq = primForce

error :: String -> a
error = primError

undefined :: a
undefined = primError "undefined"

-- List library ---------------------------------------------------------------------

infixr 5 ++

[] ++ ys     = ys
(x:xs) ++ ys = x : (xs ++ ys)

map f []     = []
map f (x:xs) = f x : map f xs

filter p []     = []
filter p (x:xs) = if p x then x : filter p xs else filter p xs

foldr f z []     = z
foldr f z (x:xs) = f x (foldr f z xs)

foldl f z []     = z
foldl f z (x:xs) = foldl f (f z x) xs

length :: [a] -> Int
length []     = 0
length (x:xs) = 1 + length xs

null []     = True
null (x:xs) = False

reverse :: [a] -> [a]
reverse = foldl (flip (:)) []

member :: Eq a => a -> [a] -> Bool
member x []     = False
member x (y:ys) = x == y || member x ys

elem :: Eq a => a -> [a] -> Bool
elem = member

notElem :: Eq a => a -> [a] -> Bool
notElem x ys = not (elem x ys)

sum :: Num a => [a] -> a
sum []     = fromInt 0
sum (x:xs) = x + sum xs

product :: Num a => [a] -> a
product []     = fromInt 1
product (x:xs) = x * product xs

take :: Int -> [a] -> [a]
take n []     = []
take n (x:xs) = if n <= 0 then [] else x : take (n - 1) xs

drop :: Int -> [a] -> [a]
drop n []     = []
drop n (x:xs) = if n <= 0 then x : xs else drop (n - 1) xs

replicate :: Int -> a -> [a]
replicate n x = if n <= 0 then [] else x : replicate (n - 1) x

enumFromTo :: Int -> Int -> [Int]
enumFromTo a b = if a > b then [] else a : enumFromTo (a + 1) b

enumFrom :: Int -> [Int]
enumFrom a = a : enumFrom (a + 1)

zip []     ys     = []
zip (x:xs) []     = []
zip (x:xs) (y:ys) = (x, y) : zip xs ys

zipWith f []     ys     = []
zipWith f (x:xs) []     = []
zipWith f (x:xs) (y:ys) = f x y : zipWith f xs ys

unzip :: [(a, b)] -> ([a], [b])
unzip []          = ([], [])
unzip ((a, b):ps) = case unzip ps of
  (as, bs) -> (a : as, b : bs)

concat []       = []
concat (xs:xss) = xs ++ concat xss

concatMap f xs = concat (map f xs)

lookup :: Eq a => a -> [(a, b)] -> Maybe b
lookup k []            = Nothing
lookup k ((a, b):rest) = if k == a then Just b else lookup k rest

all p []     = True
all p (x:xs) = p x && all p xs

any p []     = False
any p (x:xs) = p x || any p xs

head (x:xs) = x
tail (x:xs) = xs

last [x]    = x
last (x:xs) = last xs

init [x]    = []
init (x:xs) = x : init xs

iterate f x = x : iterate f (f x)

repeat x = x : repeat x

takeWhile p []     = []
takeWhile p (x:xs) = if p x then x : takeWhile p xs else []

dropWhile p []     = []
dropWhile p (x:xs) = if p x then dropWhile p xs else x : xs

maximum :: Ord a => [a] -> a
maximum [x]    = x
maximum (x:xs) = max x (maximum xs)

minimum :: Ord a => [a] -> a
minimum [x]    = x
minimum (x:xs) = min x (minimum xs)

-- Showing values ------------------------------------------------------------------

show :: Text a => a -> String
show = str

lines :: String -> [String]
lines [] = []
lines s  = case break (\c -> c == '\n') s of
  (l, rest) -> l : case rest of
    []       -> []
    (c:rest2) -> lines rest2

break :: (a -> Bool) -> [a] -> ([a], [a])
break p []     = ([], [])
break p (x:xs) = if p x
  then ([], x : xs)
  else case break p xs of
    (as, bs) -> (x : as, bs)

words :: String -> [String]
words s = case dropWhile (\c -> c == ' ') s of
  []   -> []
  rest -> case break (\c -> c == ' ') rest of
    (w, rest2) -> w : words rest2

unlines :: [String] -> String
unlines []     = ""
unlines (l:ls) = l ++ "\n" ++ unlines ls

unwords :: [String] -> String
unwords []     = ""
unwords [w]    = w
unwords (w:ws) = w ++ " " ++ unwords ws

-- Sorting ------------------------------------------------------------------

insertBy :: (a -> a -> Bool) -> a -> [a] -> [a]
insertBy le x []     = [x]
insertBy le x (y:ys) = if le x y then x : y : ys else y : insertBy le x ys

sortBy :: (a -> a -> Bool) -> [a] -> [a]
sortBy le []     = []
sortBy le (x:xs) = insertBy le x (sortBy le xs)

sort :: Ord a => [a] -> [a]
sort = sortBy (<=)

-- More list functions ---------------------------------------------------------

span :: (a -> Bool) -> [a] -> ([a], [a])
span p xs = (takeWhile p xs, dropWhile p xs)

splitAt :: Int -> [a] -> ([a], [a])
splitAt n xs = (take n xs, drop n xs)

and :: [Bool] -> Bool
and = foldr (&&) True

or :: [Bool] -> Bool
or = foldr (||) False

zip3 :: [a] -> [b] -> [c] -> [(a, b, c)]
zip3 (x:xs) (y:ys) (z:zs) = (x, y, z) : zip3 xs ys zs
zip3 xs ys zs             = []

nub :: Eq a => [a] -> [a]
nub []     = []
nub (x:xs) = x : nub (filter (\y -> y /= x) xs)

delete :: Eq a => a -> [a] -> [a]
delete x []     = []
delete x (y:ys) = if x == y then ys else y : delete x ys

foldr1 :: (a -> a -> a) -> [a] -> a
foldr1 f [x]    = x
foldr1 f (x:xs) = f x (foldr1 f xs)

foldl1 :: (a -> a -> a) -> [a] -> a
foldl1 f (x:xs) = foldl f x xs

intersperse :: a -> [a] -> [a]
intersperse sep []     = []
intersperse sep [x]    = [x]
intersperse sep (x:xs) = x : sep : intersperse sep xs

until :: (a -> Bool) -> (a -> a) -> a -> a
until p f x = if p x then x else until p f (f x)

gcd :: Int -> Int -> Int
gcd a 0 = abs a
gcd a b = gcd b (mod a b)

lcm :: Int -> Int -> Int
lcm a 0 = 0
lcm a b = div (abs (a * b)) (gcd a b)
|prelude}
