(** The MiniHaskell standard prelude, compiled together with every user
    program: Eq, Ord (with Ordering/compare), Text, Parse, Num (with Eq and
    Text superclasses), instances for the builtin types, and the usual
    list/function library. *)

val source : string
