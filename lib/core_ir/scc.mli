(** Regroup a core program's top-level bindings into minimal
    strongly-connected groups in dependency order. *)

val regroup : Core.program -> Core.program
