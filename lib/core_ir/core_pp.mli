(** Pretty printer for the core language. Dictionaries print as
    [{Class.Tycon|fields|}], selections as [dict.#i{label}]. *)

val pp_lit : Format.formatter -> Core.lit -> unit
val pp : Format.formatter -> Core.expr -> unit
val pp_prec : int -> Format.formatter -> Core.expr -> unit
val pp_alt : Format.formatter -> Core.alt -> unit
val pp_group : Format.formatter -> Core.bind_group -> unit
val pp_program : Format.formatter -> Core.program -> unit
val to_string : Core.expr -> string
