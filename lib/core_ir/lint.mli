(** Well-formedness checking for core programs: no unresolved placeholders,
    every variable in scope. Runs after type checking and after each
    optimizer pipeline. *)

open Tc_support

type error = { lint_msg : string }

exception Lint of error

val check_expr : globals:Ident.Set.t -> Core.expr -> unit

(** Check a whole program, given the ambient primitive names. *)
val check_program : primitives:Ident.t list -> Core.program -> unit
