(** Pretty printer for the core language. *)

open Tc_support
open Core

let pp_lit ppf (l : lit) =
  match l with
  | Tc_syntax.Ast.LInt n -> Fmt.int ppf n
  | Tc_syntax.Ast.LFloat f -> Fmt.float ppf f
  | Tc_syntax.Ast.LChar c -> Fmt.pf ppf "%C" c
  | Tc_syntax.Ast.LString s -> Fmt.pf ppf "%S" s

let rec pp ppf e = pp_prec 0 ppf e

and pp_prec prec ppf (e : expr) =
  match e with
  | Var x -> Ident.pp ppf x
  | Lit l -> pp_lit ppf l
  | Con c -> Ident.pp ppf c
  | App _ ->
      let f, args = unfold_app e [] in
      let doc ppf () =
        Fmt.pf ppf "@[<2>%a@ %a@]" (pp_prec 10) f
          (Fmt.list ~sep:Fmt.sp (pp_prec 10))
          args
      in
      if prec >= 10 then Fmt.parens doc ppf () else doc ppf ()
  | Lam (vs, b) ->
      let doc ppf () =
        Fmt.pf ppf "@[<2>\\%a ->@ %a@]"
          (Fmt.list ~sep:Fmt.sp Ident.pp)
          vs (pp_prec 0) b
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Let (g, b) ->
      let doc ppf () =
        Fmt.pf ppf "@[<v>%a@ in %a@]" pp_group g (pp_prec 0) b
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | If (c, t, e') ->
      let doc ppf () =
        Fmt.pf ppf "@[<2>if %a@ then %a@ else %a@]" (pp_prec 0) c (pp_prec 0) t
          (pp_prec 0) e'
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Case (s, alts, d) ->
      let doc ppf () =
        Fmt.pf ppf "@[<v 2>case %a of" (pp_prec 0) s;
        List.iter (fun a -> Fmt.pf ppf "@ | %a" pp_alt a) alts;
        (match d with
         | Some d -> Fmt.pf ppf "@ | _ -> %a" (pp_prec 0) d
         | None -> ());
        Fmt.pf ppf "@]"
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | MkDict (tag, fields) ->
      Fmt.pf ppf "@[<2>{%a.%a|%a|}@]" Ident.pp tag.dt_class Ident.pp tag.dt_tycon
        (Fmt.list ~sep:(Fmt.any ",@ ") (pp_prec 0))
        fields
  | Sel (s, d) -> Fmt.pf ppf "%a.#%d{%s}" (pp_prec 10) d s.sel_index s.sel_label
  | Hole h -> (
      match h.hole_fill with
      | Some inner -> Fmt.pf ppf "%a" (pp_prec prec) inner
      | None -> Fmt.pf ppf "<hole %d>" h.hole_id)

and pp_alt ppf a =
  (match a.alt_con with
   | Tcon c ->
       Fmt.pf ppf "%a%a" Ident.pp c
         (Fmt.list ~sep:Fmt.nop (fun ppf v -> Fmt.pf ppf " %a" Ident.pp v))
         a.alt_vars
   | Tlit l -> pp_lit ppf l);
  Fmt.pf ppf " -> %a" (pp_prec 0) a.alt_body

and pp_group ppf = function
  | Nonrec b -> Fmt.pf ppf "@[<2>let %a =@ %a@]" Ident.pp b.b_name pp b.b_expr
  | Rec bs ->
      Fmt.pf ppf "@[<v>letrec";
      List.iter
        (fun b -> Fmt.pf ppf "@ @[<2>%a =@ %a@]" Ident.pp b.b_name pp b.b_expr)
        bs;
      Fmt.pf ppf "@]"

let pp_program ppf (p : program) =
  Fmt.pf ppf "@[<v>";
  List.iter (fun g -> Fmt.pf ppf "%a@ " pp_group g) p.p_binds;
  (match p.p_main with
   | Some m -> Fmt.pf ppf "-- main = %a" Ident.pp m
   | None -> ());
  Fmt.pf ppf "@]"

let to_string e = Fmt.str "%a" pp e
