(** Well-formedness checking for core programs.

    Verifies after type checking / optimization that:
    - no unresolved placeholders remain (every [Hole] is filled);
    - every variable is in scope (binders, known globals, primitives);
    - [Lam]/[Case] binders are non-conflicting.

    Runs in tests and (cheaply) after each optimizer pass. *)

open Tc_support
open Core

type error = { lint_msg : string }

exception Lint of error

let fail fmt = Format.kasprintf (fun m -> raise (Lint { lint_msg = m })) fmt

let check_expr ~(globals : Ident.Set.t) (e : expr) : unit =
  let rec go scope e =
    match e with
    | Var x ->
        if not (Ident.Set.mem x scope) then
          fail "variable '%a' is not in scope" Ident.pp x
    | Lit _ | Con _ -> ()
    | App (a, b) -> go scope a; go scope b
    | Lam (vs, b) ->
        let scope =
          List.fold_left (fun s v -> Ident.Set.add v s) scope vs
        in
        go scope b
    | Let (Nonrec bd, body) ->
        go scope bd.b_expr;
        go (Ident.Set.add bd.b_name scope) body
    | Let (Rec bds, body) ->
        let scope =
          List.fold_left (fun s bd -> Ident.Set.add bd.b_name s) scope bds
        in
        List.iter (fun bd -> go scope bd.b_expr) bds;
        go scope body
    | If (c, t, e') -> go scope c; go scope t; go scope e'
    | Case (s, alts, d) ->
        go scope s;
        List.iter
          (fun a ->
            let scope =
              List.fold_left (fun s v -> Ident.Set.add v s) scope a.alt_vars
            in
            go scope a.alt_body)
          alts;
        Option.iter (go scope) d
    | MkDict (_, fields) -> List.iter (go scope) fields
    | Sel (_, d) -> go scope d
    | Hole h -> (
        match h.hole_fill with
        | Some inner -> go scope inner
        | None -> fail "unresolved placeholder <hole %d>" h.hole_id)
  in
  go globals e

(** Check a whole program given the names bound by the runtime (primitives
    and data constructors are checked structurally elsewhere). *)
let check_program ~(primitives : Ident.t list) (p : program) : unit =
  let globals = ref (Ident.Set.of_list primitives) in
  List.iter
    (fun g ->
      (match g with
       | Nonrec bd ->
           check_expr ~globals:!globals bd.b_expr;
           globals := Ident.Set.add bd.b_name !globals
       | Rec bds ->
           globals :=
             List.fold_left (fun s bd -> Ident.Set.add bd.b_name s) !globals bds;
           List.iter (fun bd -> check_expr ~globals:!globals bd.b_expr) bds))
    p.p_binds;
  match p.p_main with
  | Some m when not (Ident.Set.mem m !globals) ->
      fail "main binding '%a' is not defined" Ident.pp m
  | _ -> ()
