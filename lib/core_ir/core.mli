(** The core language: the target of type checking and dictionary
    conversion. Overloading is gone — dictionaries are ordinary values,
    built with [MkDict] and consulted with [Sel] (both instrumentable).
    During checking the translation contains [Hole] placeholders (§6.1);
    generalization fills every hole. *)

open Tc_support

type lit = Tc_syntax.Ast.lit

(** A dispatch site: the identity of one [Sel]/[MkDict] node as created by
    dictionary conversion. Ids are unique per process and survive
    optimization and VM compilation, enabling per-site runtime profiling. *)
type site = {
  site_id : int;
  site_loc : Loc.t;
}

(** Which instance built a dictionary (debugging/statistics). *)
type dict_tag = {
  dt_class : Ident.t;
  dt_tycon : Ident.t;
  dt_site : site;
}

(** A selection out of a dictionary tuple. *)
type sel_info = {
  sel_class : Ident.t;
  sel_index : int;
  sel_label : string;  (** method or superclass name, for printing *)
  sel_site : site;
}

(** A placeholder awaiting resolution at generalization time. *)
type hole = {
  hole_id : int;
  mutable hole_fill : expr option;
}

and expr =
  | Var of Ident.t
  | Lit of lit
  | Con of Ident.t                    (** data constructor (curried) *)
  | App of expr * expr
  | Lam of Ident.t list * expr
  | Let of bind_group * expr
  | If of expr * expr * expr
  | Case of expr * alt list * expr option
  | MkDict of dict_tag * expr list
  | Sel of sel_info * expr
  | Hole of hole

and alt = {
  alt_con : test;
  alt_vars : Ident.t list;
  alt_body : expr;
}

and test =
  | Tcon of Ident.t
  | Tlit of lit

and bind = { b_name : Ident.t; b_expr : expr }

and bind_group =
  | Nonrec of bind
  | Rec of bind list

type program = {
  p_binds : bind_group list;  (** in dependency order *)
  p_main : Ident.t option;
}

val fresh_hole : unit -> hole

(** Mint a dispatch site (see {!site}); [loc] defaults to {!Loc.none}. *)
val fresh_site : ?loc:Loc.t -> unit -> site

(** {2 Constructors and helpers} *)

val var : Ident.t -> expr
val app : expr -> expr -> expr
val apps : expr -> expr list -> expr

(** [lam vs body]: a lambda, flattening nested lambdas; identity when
    [vs] is empty. *)
val lam : Ident.t list -> expr -> expr

val let1 : Ident.t -> expr -> expr -> expr

(** Split nested applications: [f a b] ↦ ([f], [a; b]). *)
val unfold_app : expr -> expr list -> expr * expr list

val binds_of_group : bind_group -> bind list

(** {2 Traversal} *)

(** Shallow map over immediate subexpressions (filled holes map their
    contents). *)
val map_sub : (expr -> expr) -> expr -> expr

val iter_sub : (expr -> unit) -> expr -> unit

(** Replace every filled hole by its contents; raises on unfilled holes. *)
val squash : expr -> expr

val squash_program : program -> program

(** {2 Analysis} *)

val free_vars : expr -> Ident.Set.t
val size : expr -> int

(** Capture-avoiding substitution of variables by expressions. *)
val subst : expr Ident.Map.t -> expr -> expr
