(** The core language: the target of type checking and dictionary conversion.

    Overloading is gone — dictionaries are ordinary values, built with
    [MkDict] and consulted with [Sel]. Both forms are explicit so the
    evaluator can count dictionary constructions and method selections, and
    so the optimizer can recognize dictionary redexes.

    During type checking the translation contains [Hole] nodes (the paper's
    *placeholders*, §6.1); generalization fills every hole, and
    {!Lint.check} verifies none survive. *)

open Tc_support

type lit = Tc_syntax.Ast.lit

(** A dispatch site: the identity of one [Sel]/[MkDict] node as created by
    dictionary conversion. Ids are unique per process; the optimizer and
    the VM compiler reuse the carrying records, so a site survives into
    whatever code finally runs and per-site runtime counts can be
    attributed back to this source location. *)
type site = {
  site_id : int;
  site_loc : Loc.t;
}

(** Debug/statistics label for a dictionary value: which instance built it. *)
type dict_tag = {
  dt_class : Ident.t;
  dt_tycon : Ident.t;
  dt_site : site;
}

(** A selection out of a dictionary tuple. *)
type sel_info = {
  sel_class : Ident.t;   (* class whose dictionary layout is consulted *)
  sel_index : int;       (* slot *)
  sel_label : string;    (* method or superclass name, for printing *)
  sel_site : site;
}

(** A placeholder awaiting resolution at generalization time. *)
type hole = {
  hole_id : int;
  mutable hole_fill : expr option;
}

and expr =
  | Var of Ident.t
  | Lit of lit
  | Con of Ident.t                    (* data constructor (curried) *)
  | App of expr * expr
  | Lam of Ident.t list * expr
  | Let of bind_group * expr
  | If of expr * expr * expr
  | Case of expr * alt list * expr option  (* alts + optional default *)
  | MkDict of dict_tag * expr list
  | Sel of sel_info * expr
  | Hole of hole

and alt = {
  alt_con : test;
  alt_vars : Ident.t list;  (* binders for constructor fields *)
  alt_body : expr;
}

and test =
  | Tcon of Ident.t   (* match a data constructor *)
  | Tlit of lit       (* match a literal *)

and bind = { b_name : Ident.t; b_expr : expr }

and bind_group =
  | Nonrec of bind
  | Rec of bind list

type program = {
  p_binds : bind_group list;  (* in dependency order *)
  p_main : Ident.t option;
}

(* ------------------------------------------------------------------ *)
(* Constructors and helpers.                                           *)
(* ------------------------------------------------------------------ *)

let hole_supply = Supply.create ~start:1 ()

let fresh_hole () : hole = { hole_id = Supply.next hole_supply; hole_fill = None }

let site_supply = Supply.create ~start:1 ()

let fresh_site ?(loc = Loc.none) () : site =
  { site_id = Supply.next site_supply; site_loc = loc }

let var x = Var x
let app f a = App (f, a)
let apps f args = List.fold_left app f args

let lam vars body =
  match (vars, body) with
  | [], _ -> body
  | _, Lam (vs2, b2) -> Lam (vars @ vs2, b2)
  | _ -> Lam (vars, body)

let let1 name rhs body = Let (Nonrec { b_name = name; b_expr = rhs }, body)

(** Split nested applications: [f a b c] ↦ ([f], [a;b;c]). *)
let rec unfold_app e args =
  match e with App (f, a) -> unfold_app f (a :: args) | _ -> (e, args)

let binds_of_group = function Nonrec b -> [ b ] | Rec bs -> bs

(* ------------------------------------------------------------------ *)
(* Traversal.                                                          *)
(* ------------------------------------------------------------------ *)

(** Shallow map over immediate subexpressions. Holes: a filled hole maps its
    contents (and stays filled with the image); an unfilled hole is
    returned unchanged. *)
let map_sub (f : expr -> expr) (e : expr) : expr =
  match e with
  | Var _ | Lit _ | Con _ -> e
  | App (a, b) -> App (f a, f b)
  | Lam (vs, b) -> Lam (vs, f b)
  | Let (g, b) ->
      let g' =
        match g with
        | Nonrec bd -> Nonrec { bd with b_expr = f bd.b_expr }
        | Rec bds -> Rec (List.map (fun bd -> { bd with b_expr = f bd.b_expr }) bds)
      in
      Let (g', f b)
  | If (c, t, e') -> If (f c, f t, f e')
  | Case (s, alts, d) ->
      Case
        ( f s,
          List.map (fun a -> { a with alt_body = f a.alt_body }) alts,
          Option.map f d )
  | MkDict (tag, fields) -> MkDict (tag, List.map f fields)
  | Sel (s, d) -> Sel (s, f d)
  | Hole h -> (
      match h.hole_fill with
      | Some inner ->
          h.hole_fill <- Some (f inner);
          e
      | None -> e)

let iter_sub (f : expr -> unit) (e : expr) : unit =
  match e with
  | Var _ | Lit _ | Con _ -> ()
  | App (a, b) -> f a; f b
  | Lam (_, b) -> f b
  | Let (g, b) ->
      List.iter (fun bd -> f bd.b_expr) (binds_of_group g);
      f b
  | If (c, t, e') -> f c; f t; f e'
  | Case (s, alts, d) ->
      f s;
      List.iter (fun a -> f a.alt_body) alts;
      Option.iter f d
  | MkDict (_, fields) -> List.iter f fields
  | Sel (_, d) -> f d
  | Hole h -> Option.iter f h.hole_fill

(** Replace every filled hole by its contents, recursively. Unfilled holes
    raise [Invalid_argument]. *)
let rec squash (e : expr) : expr =
  match e with
  | Hole h -> (
      match h.hole_fill with
      | Some inner -> squash inner
      | None -> invalid_arg "Core.squash: unresolved placeholder")
  | _ -> map_sub squash e

let squash_program (p : program) : program =
  let squash_bind b = { b with b_expr = squash b.b_expr } in
  {
    p with
    p_binds =
      List.map
        (function
          | Nonrec b -> Nonrec (squash_bind b)
          | Rec bs -> Rec (List.map squash_bind bs))
        p.p_binds;
  }

(* ------------------------------------------------------------------ *)
(* Free variables and size.                                            *)
(* ------------------------------------------------------------------ *)

let free_vars (e : expr) : Ident.Set.t =
  let rec go bound acc e =
    match e with
    | Var x -> if Ident.Set.mem x bound then acc else Ident.Set.add x acc
    | Lit _ | Con _ -> acc
    | App (a, b) -> go bound (go bound acc a) b
    | Lam (vs, b) -> go (List.fold_left (fun s v -> Ident.Set.add v s) bound vs) acc b
    | Let (Nonrec bd, body) ->
        let acc = go bound acc bd.b_expr in
        go (Ident.Set.add bd.b_name bound) acc body
    | Let (Rec bds, body) ->
        let bound' =
          List.fold_left (fun s bd -> Ident.Set.add bd.b_name s) bound bds
        in
        let acc = List.fold_left (fun acc bd -> go bound' acc bd.b_expr) acc bds in
        go bound' acc body
    | If (c, t, e') -> go bound (go bound (go bound acc c) t) e'
    | Case (s, alts, d) ->
        let acc = go bound acc s in
        let acc =
          List.fold_left
            (fun acc a ->
              let bound' =
                List.fold_left (fun s v -> Ident.Set.add v s) bound a.alt_vars
              in
              go bound' acc a.alt_body)
            acc alts
        in
        (match d with Some d -> go bound acc d | None -> acc)
    | MkDict (_, fields) -> List.fold_left (go bound) acc fields
    | Sel (_, d) -> go bound acc d
    | Hole h -> (
        match h.hole_fill with Some inner -> go bound acc inner | None -> acc)
  in
  go Ident.Set.empty Ident.Set.empty e

let rec size (e : expr) : int =
  let n = ref 1 in
  iter_sub (fun sub -> n := !n + size sub) e;
  !n

(* ------------------------------------------------------------------ *)
(* Capture-avoiding substitution of variables by expressions.          *)
(* ------------------------------------------------------------------ *)

(** [subst map e] replaces free occurrences of the mapped variables. Binders
    are freshened when they would capture a free variable of a substituted
    expression. *)
let subst (map : expr Ident.Map.t) (e : expr) : expr =
  let fvs_of_map m =
    Ident.Map.fold (fun _ e acc -> Ident.Set.union (free_vars e) acc) m
      Ident.Set.empty
  in
  let rec go map e =
    if Ident.Map.is_empty map then e
    else
      match e with
      | Var x -> (
          match Ident.Map.find_opt x map with Some e' -> e' | None -> e)
      | Lit _ | Con _ -> e
      | App (a, b) -> App (go map a, go map b)
      | Lam (vs, b) ->
          let map, vs, renaming = freshen map vs in
          Lam (vs, go map (rename renaming b))
      | Let (Nonrec bd, body) ->
          let bd' = { bd with b_expr = go map bd.b_expr } in
          let map', names, renaming = freshen map [ bd.b_name ] in
          let name = List.hd names in
          Let
            ( Nonrec { b_name = name; b_expr = bd'.b_expr },
              go map' (rename renaming body) )
      | Let (Rec bds, body) ->
          let map', names, renaming =
            freshen map (List.map (fun bd -> bd.b_name) bds)
          in
          let bds' =
            List.map2
              (fun bd name ->
                { b_name = name; b_expr = go map' (rename renaming bd.b_expr) })
              bds names
          in
          Let (Rec bds', go map' (rename renaming body))
      | If (c, t, e') -> If (go map c, go map t, go map e')
      | Case (s, alts, d) ->
          Case
            ( go map s,
              List.map
                (fun a ->
                  let map', vs, renaming = freshen map a.alt_vars in
                  {
                    a with
                    alt_vars = vs;
                    alt_body = go map' (rename renaming a.alt_body);
                  })
                alts,
              Option.map (go map) d )
      | MkDict (tag, fields) -> MkDict (tag, List.map (go map) fields)
      | Sel (s, d) -> Sel (s, go map d)
      | Hole h -> (
          match h.hole_fill with
          | Some inner -> go map inner
          | None -> invalid_arg "Core.subst: unresolved placeholder")
  and freshen map vs =
    (* remove shadowed entries; rename binders that would capture *)
    let map = List.fold_left (fun m v -> Ident.Map.remove v m) map vs in
    let fvs = fvs_of_map map in
    let renaming = ref Ident.Map.empty in
    let vs' =
      List.map
        (fun v ->
          if Ident.Set.mem v fvs then begin
            let v' = Ident.gensym (Ident.text v) in
            renaming := Ident.Map.add v (Var v') !renaming;
            v'
          end
          else v)
        vs
    in
    (map, vs', !renaming)
  and rename renaming e = if Ident.Map.is_empty renaming then e else go renaming e
  in
  go map e
