(** Regroup a core program's top-level bindings into minimal
    strongly-connected groups in dependency order.

    The pipeline emits user code, method implementations and dictionary
    bindings in phases that reference each other; this pass restores an
    evaluation-friendly topological order with the smallest possible
    recursive groups (which also maximizes later optimization). *)

open Tc_support
open Core

let regroup (p : program) : program =
  let binds = List.concat_map binds_of_group p.p_binds in
  let n = List.length binds in
  let arr = Array.of_list binds in
  let index_of : int Ident.Tbl.t = Ident.Tbl.create 64 in
  Array.iteri (fun i b -> Ident.Tbl.replace index_of b.b_name i) arr;
  let adj =
    Array.map
      (fun b ->
        Ident.Set.fold
          (fun v acc ->
            match Ident.Tbl.find_opt index_of v with
            | Some j -> j :: acc
            | None -> acc)
          (free_vars b.b_expr) [])
      arr
  in
  let indices = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    indices.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if indices.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) indices.(w))
      adj.(v);
    if lowlink.(v) = indices.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if indices.(v) = -1 then strongconnect v
  done;
  let groups =
    List.map
      (fun comp ->
        match comp with
        | [ v ] ->
            let b = arr.(v) in
            if Ident.Set.mem b.b_name (free_vars b.b_expr) then Rec [ b ]
            else Nonrec b
        | vs -> Rec (List.map (fun v -> arr.(v)) vs))
      (List.rev !components)
  in
  { p with p_binds = groups }
