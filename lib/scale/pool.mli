(** A supervised parallel worker pool behind the serve loop.

    [run] drives the same NDJSON request/response contract as
    {!Typeclasses.Serve.run}, but fans request handling out over OCaml 5
    domains. The coordinator (calling domain) is the only reader of
    [next], and a dedicated emitter thread is the only writer to [emit]
    — responses go out the moment they are next in sequence, even while
    the coordinator is blocked in [next], so a closed-loop client (one
    that awaits each response before sending the next request, the TCP
    front end's normal case) never deadlocks; each worker owns a private
    {!Typeclasses.Serve.t} — its own stats, latency registry and
    evaluator state — so request handling needs no locking beyond the
    bounded work queue, and per-request isolation and budget enforcement
    are exactly the sequential server's. Responses are re-sequenced
    through a reorder buffer, so output order equals input order
    regardless of which worker finishes first.

    {2 Supervision}

    The request boundary inside a worker never raises — but if an
    exception {e does} escape the worker loop (an injected
    {!Tc_resilience.Inject.Worker_crash}, a runtime bug), the pool
    survives it: the in-flight request is answered with a synthetic
    [worker-crash] response at its own sequence number (every request
    gets exactly one response, in order — the coordinator never hangs on
    a dead worker), the dead incarnation's stats and metrics registry
    are still merged into the pool totals, and a replacement domain is
    spawned after an exponential backoff ([restart_backoff_ms],
    doubling, capped at 64x), up to [max_restarts] restarts over the
    pool's lifetime. Past the budget the pool shrinks; if the last
    worker dies over budget, it remains as a lame-duck drainer
    answering every remaining request with [worker-crash] so the
    coordinator always drains. Restarts are counted in the summary and
    as [scale/pool/restarts].

    {2 Overload}

    [queue_depth] (clamped to at least [workers]) bounds how far the
    coordinator reads ahead; the high-water mark is exported as the
    [scale/pool/queue_depth] gauge. Two shedding mechanisms bound tail
    latency under overload, both answering the [shed] failure class:
    requests whose queue age exceeds their deadline ([deadline_ms]
    request field, or [config.default_deadline_ms]) are rejected by the
    handling worker without compiling, and with [shed_grace_ms >= 0]
    the coordinator itself rejects new requests at admission once the
    queue has been full past the grace window ([scale/pool/shed]
    counts these).

    On completion the per-worker registries are folded into one fresh
    registry with {!Tc_obs.Metrics.merge} along with the pool registry;
    counters add and histograms merge elementwise, so the serve
    telemetry invariant — the per-op [serve/latency] counts summing
    exactly to [serve/requests] — holds in the merged view whenever it
    holds per worker, synthetic responses included.

    {2 Tracing and out-of-band lines}

    With a live [config.rtrace] recorder, the coordinator mints each
    request's trace ID at admission and threads it through the queue,
    the handling worker ({!Typeclasses.Serve.handle_line}'s ingress ID)
    and the reorder buffer — so a sampled request's timeline spans the
    [queue] wait event (measured on the monotonic clock from admission
    to dequeue), the worker's pipeline phase events, its
    [request/<op>] root event, and the [emit] write event recorded by
    the emitter thread. Synthetic responses (crash, shed) carry their
    trace ID too.

    Spontaneous metrics-snapshot lines ([config.snapshot_every] > 0)
    are counted off lines read by the coordinator and routed through
    the emitter thread {e out-of-band} ([emit_oob], defaulting to
    [emit]) — they never consume a sequence number, so a front end
    that pairs every [emit] with a routing slot stays consistent.

    Pooled-mode deviations from the sequential loop, by design:

    - out-of-band snapshots carry the pool/caller registries
      ([scale/pool/*] plus the [extra_metrics] view), not the workers'
      private serve registries (which are not safely readable while
      their domains run — the merged view exists only at summary time);
    - in-band [stats]/[metrics] requests likewise report the handling
      worker's view plus the shared pool/cache registries;
    - a live [config.base_opts.trace] sink is unsupported (sinks are not
      domain-safe).

    With [workers <= 1] this is exactly [Serve.run] (same loop, same
    snapshot behaviour), just with the summary's merged-registry
    shape. *)

module Serve = Typeclasses.Serve

type summary = {
  stats : Serve.stats;
      (** all workers' stats summed — including crashed incarnations'
          partial counts and the coordinator's admission sheds *)
  metrics : Tc_obs.Metrics.t;
      (** all workers' registries plus the pool registry
          ([scale/pool/restarts], [scale/pool/queue_depth],
          [scale/pool/shed]) merged into one fresh registry *)
  workers : int;  (** domains initially spawned to handle requests *)
  restarts : int; (** worker domains respawned after a crash *)
}

val run :
  ?workers:int ->
  ?config:Serve.config ->
  ?queue_depth:int ->
  ?max_restarts:int ->
  ?restart_backoff_ms:float ->
  ?shed_grace_ms:float ->
  ?on_lame_duck:(unit -> unit) ->
  ?stop:(unit -> bool) ->
  ?emit_oob:(string -> unit) ->
  next:(unit -> string option) ->
  emit:(string -> unit) ->
  unit ->
  summary
(** [workers] defaults to 1 (sequential); [queue_depth] (default 64,
    clamped to at least [workers]) bounds how far the coordinator reads
    ahead of the slowest worker, so an input firehose cannot buffer
    unboundedly. [max_restarts] (default 8) bounds worker respawns per
    pool lifetime; [restart_backoff_ms] (default 1) is the base respawn
    delay, doubling per restart up to 64x. [shed_grace_ms] (default -1:
    disabled) enables admission shedding once the queue has been full
    that long. [on_lame_duck] (default no-op) fires once, from the dying
    worker's domain, when the pool enters the lame-duck drain — the
    network front end flips its readiness probe off here. [stop] is
    checked between reads. [emit_oob] (default: [emit]) receives
    spontaneous out-of-band lines — metrics snapshots — which are never
    part of the request/response pairing. Blocks until input is
    exhausted, every response is emitted, and all worker domains have
    joined. *)
