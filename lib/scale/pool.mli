(** A parallel worker pool behind the serve loop.

    [run] drives the same NDJSON request/response contract as
    {!Typeclasses.Serve.run}, but fans request handling out over OCaml 5
    domains. The coordinator (calling domain) is the only reader of
    [next] and the only writer to [emit]; each worker owns a private
    {!Typeclasses.Serve.t} — its own stats, latency registry and
    evaluator state — so request handling needs no locking beyond the
    bounded work queue, and per-request isolation and budget enforcement
    are exactly the sequential server's. Responses are re-sequenced
    through a reorder buffer, so output order equals input order
    regardless of which worker finishes first.

    On completion the per-worker registries are folded into one fresh
    registry with {!Tc_obs.Metrics.merge}; counters add and histograms
    merge elementwise, so the serve telemetry invariant — the per-op
    [serve/latency] counts summing exactly to [serve/requests] — holds
    in the merged view whenever it holds per worker.

    Pooled-mode deviations from the sequential loop, by design:

    - [config.snapshot_every] is ignored (spontaneous snapshot lines
      would interleave with re-sequenced responses);
    - in-band [stats]/[metrics] requests report the handling worker's
      view, not the pool-wide aggregate (the merged view exists only at
      summary time);
    - a live [config.base_opts.trace] sink is unsupported (sinks are not
      domain-safe).

    With [workers <= 1] this is exactly [Serve.run] (same loop, same
    snapshot behaviour), just with the summary's merged-registry
    shape. *)

module Serve = Typeclasses.Serve

type summary = {
  stats : Serve.stats;       (** all workers' stats, summed *)
  metrics : Tc_obs.Metrics.t;
      (** all workers' registries merged into one fresh registry *)
  workers : int;             (** domains that handled requests *)
}

val run :
  ?workers:int ->
  ?config:Serve.config ->
  ?queue_depth:int ->
  ?stop:(unit -> bool) ->
  next:(unit -> string option) ->
  emit:(string -> unit) ->
  unit ->
  summary
(** [workers] defaults to 1 (sequential); [queue_depth] (default 64)
    bounds how far the coordinator reads ahead of the slowest worker,
    so an input firehose cannot buffer unboundedly. [stop] is checked
    between reads. Blocks until input is exhausted, every response is
    emitted, and all workers have joined. *)
