(** Crash-safe persistent byte store; see the interface for the design. *)

module Ident = Tc_support.Ident
module Inject = Tc_resilience.Inject

let magic = "mhc-persist"
let version = 1

(* Marshaled OCaml values are only safe to read back into the exact
   binary that wrote them (type layouts must agree), and the intern
   snapshot is only meaningful under the same deterministic module-init
   interning order. The executable digest in every header enforces both;
   a rebuild simply starts the cache cold. Computed once — hashing the
   binary costs milliseconds, not per-entry time. Memoized under a
   mutex rather than [lazy]: pool workers race to the first use, and
   concurrently forcing a lazy from two domains raises
   [CamlinternalLazy.Undefined]. *)
let exe_digest =
  let memo = ref None in
  let lock = Mutex.create () in
  fun () ->
    Mutex.protect lock (fun () ->
        match !memo with
        | Some d -> d
        | None ->
            let d =
              try Digest.to_hex (Digest.file Sys.executable_name)
              with Sys_error _ -> "unknown-exe"
            in
            memo := Some d;
            d)

type init_report = {
  exclusive : bool;
  adopted : int;
  wiped : bool;
}

type t = {
  dir : string;
  mutable exclusive : bool;  (* we hold the writer lock; ops no-op otherwise *)
  mutable lock_fd : Unix.file_descr option;
}

let entry_file t key = Filename.concat t.dir ("entry-" ^ key ^ ".bin")
let intern_file dir = Filename.concat dir "intern.bin"

(* ---- file format ---- *)

let header ~payload =
  Printf.sprintf "%s %d %s %s %d\n" magic version (exe_digest ())
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

(* Validate a whole file's bytes against the header they start with.
   Every failure mode — no newline, wrong magic/version, foreign
   executable, length mismatch (torn write), checksum mismatch (bit
   rot) — is the same answer: the payload cannot be trusted. *)
let validate bytes : string option =
  match String.index_opt bytes '\n' with
  | None -> None
  | Some nl -> (
      let payload = String.sub bytes (nl + 1) (String.length bytes - nl - 1) in
      match String.split_on_char ' ' (String.sub bytes 0 nl) with
      | [ m; v; exe; md5; len ] ->
          if
            m = magic
            && int_of_string_opt v = Some version
            && exe = exe_digest ()
            && int_of_string_opt len = Some (String.length payload)
            && md5 = Digest.to_hex (Digest.string payload)
          then Some payload
          else None
      | _ -> None)

let read_file path : string option =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

(* Atomic publication: temp file in the same directory (rename must not
   cross a filesystem), then rename over the final name. The temp name
   carries a process-wide sequence number besides the pid: two pool
   workers racing to persist the same key must not interleave writes
   into one temp file (last rename wins, each rename atomic). *)
let tmp_seq = Atomic.make 0

let write_file_atomic ~dir ~path content : bool =
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp-%d-%d-%s" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1)
         (Filename.basename path))
  in
  try
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content);
    Sys.rename tmp path;
    true
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    false

(* ---- the intern snapshot ---- *)

let marshal_snapshot snap = Marshal.to_string (snap : (string * int) list * int) []

let write_intern t =
  let payload = marshal_snapshot (Ident.snapshot ()) in
  ignore
    (write_file_atomic ~dir:t.dir ~path:(intern_file t.dir)
       (header ~payload ^ payload))

(* ---- open / close ---- *)

let list_entries dir =
  match Sys.readdir dir with
  | files ->
      Array.to_list files
      |> List.filter (fun f ->
             String.starts_with ~prefix:"entry-" f
             && Filename.check_suffix f ".bin")
  | exception Sys_error _ -> []

let wipe dir =
  List.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (list_entries dir);
  (try Sys.remove (intern_file dir) with Sys_error _ -> ())

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let try_lock dir =
  try
    let fd =
      Unix.openfile (Filename.concat dir "lock") [ O_CREAT; O_RDWR ] 0o644
    in
    try
      Unix.lockf fd F_TLOCK 0;
      Some fd
    with Unix.Unix_error _ ->
      Unix.close fd;
      None
  with Unix.Unix_error _ -> None

let open_dir ~dir =
  (try mkdir_p dir with Unix.Unix_error _ -> ());
  match try_lock dir with
  | None ->
      ( { dir; exclusive = false; lock_fd = None },
        { exclusive = false; adopted = 0; wiped = false } )
  | Some fd -> (
      let t = { dir; exclusive = true; lock_fd = Some fd } in
      match read_file (intern_file dir) with
      | None ->
          (* No snapshot: any entries present are unreadable leftovers
             (a writer crashed before its first intern write, or the
             file was deleted) — clear them so reads cannot lie. *)
          let had_entries = list_entries dir <> [] in
          if had_entries then wipe dir;
          (t, { exclusive = true; adopted = 0; wiped = had_entries })
      | Some bytes -> (
          match validate bytes with
          | None ->
              wipe dir;
              (t, { exclusive = true; adopted = 0; wiped = true })
          | Some payload -> (
              match (Marshal.from_string payload 0 : (string * int) list * int)
              with
              | snap ->
                  if Ident.adopt snap then
                    ( t,
                      {
                        exclusive = true;
                        adopted = List.length (fst snap);
                        wiped = false;
                      } )
                  else begin
                    (* Stamps clash with names this process already
                       interned differently: the on-disk artifacts are
                       not expressible here. Start over. *)
                    wipe dir;
                    (t, { exclusive = true; adopted = 0; wiped = true })
                  end
              | exception _ ->
                  wipe dir;
                  (t, { exclusive = true; adopted = 0; wiped = true }))))

let close t =
  t.exclusive <- false;
  match t.lock_fd with
  | None -> ()
  | Some fd ->
      t.lock_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* ---- entries ---- *)

let remove t ~key =
  if t.exclusive then
    try Sys.remove (entry_file t key) with Sys_error _ -> ()

let read t ~key =
  if not t.exclusive then `Miss
  else
    let path = entry_file t key in
    if not (Sys.file_exists path) then `Miss
    else
      match Option.bind (read_file path) validate with
      | None ->
          (* torn or corrupt: heal by unlinking, answer miss-shaped *)
          (try Sys.remove path with Sys_error _ -> ());
          `Corrupt
      | Some payload -> (
          match
            if !Inject.live then Inject.hit ~detail:key Inject.Cache_read
          with
          | () -> `Hit payload
          | exception _ ->
              (* injected read corruption: same healing path as real
                 corruption, no exception escapes the store *)
              (try Sys.remove path with Sys_error _ -> ());
              `Corrupt)

let write t ~key ~payload =
  if not t.exclusive then `Skipped
  else begin
    (* The snapshot must cover every identifier the payload embeds, so
       it is republished (atomically) before the entry appears. *)
    write_intern t;
    let torn =
      match if !Inject.live then Inject.hit ~detail:key Inject.Cache_write with
      | () -> false
      | exception _ -> true
    in
    let content =
      if torn then
        (* a crash mid-write, simulated: correct header, half the bytes *)
        header ~payload ^ String.sub payload 0 (String.length payload / 2)
      else header ~payload ^ payload
    in
    if write_file_atomic ~dir:t.dir ~path:(entry_file t key) content then
      if torn then `Torn else `Written
    else `Skipped
  end

let scan ~dir =
  List.fold_left
    (fun (n, bytes, corrupt) f ->
      match Option.bind (read_file (Filename.concat dir f)) validate with
      | Some payload -> (n + 1, bytes + String.length payload, corrupt)
      | None -> (n, bytes, corrupt + 1))
    (0, 0, 0) (list_entries dir)
