(** Crash-safe persistent byte store for the compile cache ([--cache-dir]).

    A directory of content-addressed entries that must never take the
    server down, whatever is on disk. The defenses, in order:

    - {b Atomic writes}: every file (entries and the intern snapshot) is
      written to a temp file in the same directory and [rename]d into
      place, so a reader never observes a half-written final file and a
      crash mid-write leaves at worst a stray temp.
    - {b Self-describing entries}: each file starts with a one-line
      header — magic, format version, a digest of the writing
      executable, the payload's MD5 and its length. A torn, truncated,
      corrupted or foreign file fails validation and is treated as a
      miss: unlinked (self-healed) and recompiled, never an exception.
    - {b Identifier canonicality}: marshaled artifacts embed interned
      {!Tc_support.Ident.t} stamps, which are only meaningful relative
      to the writer's intern table. The store keeps a snapshot of that
      table ([intern.bin], rewritten before every entry write so it
      always covers every entry on disk) and {!open_dir} replays it via
      [Ident.adopt] at cold start. An incompatible snapshot — or one
      written by a different executable, whose marshaled representations
      may not even match — wipes the directory and starts fresh.
    - {b Single writer}: an advisory [Unix.lockf] lock on [<dir>/lock]
      is held for the store's lifetime. If another process holds it,
      this store opens {e disabled} (every operation a no-op) rather
      than corrupting a live writer's directory. Locks are per-process,
      so reopening the same directory inside one process (the cold
      restart tests) succeeds.

    Fault injection: {!Tc_resilience.Inject.Cache_write} makes {!write}
    produce a deliberately torn (truncated) entry, and
    {!Tc_resilience.Inject.Cache_read} makes {!read} treat a valid
    entry as corrupt — both exercise the self-healing path without any
    exception escaping the store. *)

type t

(** What {!open_dir} found. [exclusive] is false when another process
    holds the writer lock (store disabled); [adopted] is the number of
    interned spellings replayed from the directory's snapshot; [wiped]
    is true when an unusable directory (corrupt or incompatible intern
    snapshot, or one from a different executable) was cleared. *)
type init_report = {
  exclusive : bool;
  adopted : int;
  wiped : bool;
}

(** Open (creating if needed) a store rooted at [dir]. Never raises on
    bad directory contents — unusable state is wiped and reported. *)
val open_dir : dir:string -> t * init_report

(** Release the writer lock. Further operations are no-ops. *)
val close : t -> unit

(** [read t ~key] fetches the payload stored under [key]. [`Corrupt]
    means a file existed but failed validation (or the read-corruption
    injection fired) and has been unlinked. *)
val read : t -> key:string -> [ `Hit of string | `Miss | `Corrupt ]

(** [write t ~key ~payload] persists [payload] under [key], refreshing
    the intern snapshot first. [`Skipped] when the store is disabled or
    the write failed (a full disk must not take the server down);
    [`Torn] when the write-corruption injection truncated it. *)
val write : t -> key:string -> payload:string -> [ `Written | `Torn | `Skipped ]

(** [remove t ~key] unlinks the entry, if present (verification-failure
    healing). *)
val remove : t -> key:string -> unit

(** Non-destructive directory summary for [mhc stats]:
    [(entries, bytes, corrupt)] — valid entry count, their total payload
    bytes, and how many files failed validation (left in place). *)
val scan : dir:string -> int * int * int
