(** [mhc bench serve] — a load generator for the serve loop.

    Drives the NDJSON request/response contract in-process through
    {!Pool.run} (so the numbers include queueing, re-sequencing and
    per-worker registry merging, not just raw compiles) in two phases
    over the same compile cache:

    - {b cold}: every request carries a distinct generated program —
      all cache misses; the front end runs for each.
    - {b hot}: requests cycle over [clients] distinct programs — after
      one warm-up miss apiece, every request is a cache hit and skips
      the front end.

    The report carries throughput (requests/s) and p50/p99 latency per
    phase (quantiles of the merged [serve/latency] histograms, so they
    are the same numbers the serve telemetry exports), the hot/cold
    speedup, cache hit/miss totals, and whether the telemetry
    invariant — per-op latency counts summing exactly to
    [serve/requests] — held in the merged multi-worker registry.

    {!run_socket} runs the same experiment end-to-end against a running
    [mhc serve --listen] server: client threads each own one TCP
    connection and run a closed loop, so the numbers additionally
    include socket transit, the reader threads and ingest queueing, and
    latencies are client-side wall time. The invariant and the
    cache/pool tallies come from an in-band [metrics] snapshot probe. *)

type phase = {
  ph_label : string;    (** ["cold"] or ["hot"] *)
  ph_requests : int;
  ph_elapsed_s : float;
  ph_rps : float;
  ph_p50_us : int;
  ph_p99_us : int;
  ph_ok : int;
  ph_failed : int;
}

type report = {
  clients : int;
  requests : int;
  workers : int;     (** [0] in socket mode: the server's knob, not ours *)
  op : string;           (** ["run"] or ["check"] *)
  mode : string;         (** ["inproc"] or ["socket"] *)
  cold : phase;
  hot : phase;
  speedup : float;       (** hot rps / cold rps *)
  invariant_ok : bool;   (** latency counts sum to [serve/requests] *)
  cache_hits : int;
  cache_misses : int;
  shed : int;            (** [shed]-class responses across both phases *)
  worker_crashes : int;  (** [worker-crash]-class responses, both phases *)
  restarts : int;        (** worker domains respawned, both phases *)
}

val invariant_holds : Tc_obs.Metrics.t -> bool
(** [sum over serve/latency histograms of count = serve/requests]
    in the given registry — the telemetry invariant, checkable on any
    (including merged) registry. *)

val run :
  ?clients:int ->
  ?requests:int ->
  ?workers:int ->
  ?op:[ `Run | `Check ] ->
  ?cache_mb:int ->
  ?verify_every:int ->
  ?deadline_ms:int ->
  ?clock:(unit -> float) ->
  unit ->
  report
(** Defaults: 4 clients, 64 requests per phase, 1 worker, [`Run],
    64 MiB cache, no verification, no deadline ([deadline_ms = 0]; a
    positive value sheds requests older than that when dequeued, and the
    report's [shed] count lets the bench gate bound the shed rate under
    overload), the monotonic [Tc_support.Mono.now_s]. *)

val run_socket :
  ?clients:int ->
  ?requests:int ->
  ?op:[ `Run | `Check ] ->
  ?clock:(unit -> float) ->
  host:string ->
  port:int ->
  unit ->
  report
(** The socket-mode experiment against an already-running
    [mhc serve --listen host:port]. Same defaults as {!run} where
    shared. Failed connections count their requests as failures rather
    than raising. *)

val report_json : report -> Tc_obs.Json.t
(** The full report as one JSON object (the CI artifact). *)

val write_bench_rows : dir:string -> report -> string
(** Write the [BENCH_SERVE.json] trajectory rows (experiment ["serve"],
    the same record shape the bechamel benchmarks emit) under [dir];
    returns the path written. Read-merge-write keyed by
    [(backend, metric)] — in-process rows (backend ["workers=N"]) and
    socket rows (backend ["socket"], same metric names) share the file
    without clobbering each other, and one per-metric SLO bound covers
    both transports. *)
