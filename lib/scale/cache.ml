(** Content-addressed compile cache (see the interface for semantics).

    Layout: the entry table is striped — [n_stripes] independent
    (table, mutex, LRU clock, byte count) shards, a key's stripe chosen
    by its hash — so hits on distinct keys from different workers
    contend only when they land on the same stripe, not on one global
    mutex. The telemetry registry has its own lock (counter bumps from
    any stripe serialize there, but those are single increments, not
    table scans). Lock order: a stripe lock may be held while taking
    the registry lock, never the reverse, and no two stripe locks are
    ever held together — occupancy gauges read the other stripes'
    fields unlocked (a benign race: an int field read can be stale but
    never torn, and gauges are advisory).

    The byte budget divides evenly across stripes, so eviction is a
    stripe-local LRU scan: a global LRU would need every stripe's lock
    at once. The split can evict a key the global LRU would have kept
    (its stripe is hot while another is cold), which only costs a
    recompile, never correctness.

    Compiles always run {e outside} any lock — a slow compile must not
    stall other workers' hits — so two workers racing on the same
    missing key may both compile; the second insert is dropped
    (first-writer-wins) and only one copy is retained. *)

module Pipeline = Typeclasses.Pipeline
module Metrics = Tc_obs.Metrics
module Ident = Tc_support.Ident
module Diagnostic = Tc_support.Diagnostic
module Core = Tc_core_ir.Core

type value =
  | Artifact of Pipeline.compiled   (* run path: post-optimization *)
  | Checked of Pipeline.checked     (* check path: diagnostics + artifact *)

type entry = {
  e_value : value;
  e_bytes : int;          (* estimated reachable size, at insert *)
  mutable e_tick : int;   (* LRU clock value of the last touch *)
  mutable e_hits : int;   (* per-entry, drives sampled verification *)
}

type stripe = {
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;         (* stripe-local LRU clock *)
  mutable total_bytes : int;
}

(* Power of two so the stripe index is a mask, not a division. 16 covers
   the realistic worker counts (the pool caps out around core count)
   with low collision probability. *)
let n_stripes = 16

type t = {
  stripes : stripe array;
  stripe_max_bytes : int;  (* byte budget per stripe; 0 = unbounded *)
  verify_every : int;
  reg : Metrics.t;
  reg_lock : Mutex.t;
  persist : Persist.t option;  (* the [--cache-dir] disk tier *)
}

let locked lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let stripe_of t k = t.stripes.(Hashtbl.hash k land (n_stripes - 1))

(* Counter/gauge bumps serialize on the registry's own lock: the
   registry is not domain-safe, and the cache is shared across workers.
   Safe to call with a stripe lock held (stripe -> reg is the one
   permitted nesting). *)
let count t name =
  locked t.reg_lock @@ fun () ->
  Metrics.incr (Metrics.counter t.reg ("scale/cache/" ^ name))

let create ?(max_bytes = 64 * 1024 * 1024) ?(verify_every = 0) ?dir () =
  let persist, report =
    match dir with
    | None -> (None, None)
    | Some dir ->
        let p, r = Persist.open_dir ~dir in
        (Some p, Some r)
  in
  let t =
    {
      stripes =
        Array.init n_stripes (fun _ ->
            {
              table = Hashtbl.create 16;
              lock = Mutex.create ();
              tick = 0;
              total_bytes = 0;
            });
      stripe_max_bytes =
        (if max_bytes > 0 then max 1 (max_bytes / n_stripes) else 0);
      verify_every;
      reg = Metrics.create ();
      reg_lock = Mutex.create ();
      persist;
    }
  in
  (match report with
  | None -> ()
  | Some r ->
      if not r.Persist.exclusive then count t "persist/locked_out";
      if r.Persist.wiped then count t "persist/wiped";
      locked t.reg_lock (fun () ->
          Metrics.set
            (Metrics.gauge t.reg "scale/cache/persist/adopted_idents")
            r.Persist.adopted));
  t

let metrics t = t.reg

(* A point-in-time copy of the registry, safe to merge on any domain:
   the live registry is guarded by [reg_lock], so handing it out
   directly (e.g. into a serve [extra_metrics] view read by workers)
   would race with insert-path bumps. *)
let metrics_view t =
  locked t.reg_lock @@ fun () ->
  let m = Metrics.create () in
  Metrics.merge ~into:m t.reg;
  m

let close t =
  match t.persist with None -> () | Some p -> Persist.close p

(* Occupancy across all stripes. The other stripes' fields are read
   without their locks — int reads never tear, so the worst case is a
   momentarily stale gauge, which a concurrent insert would invalidate
   a moment later anyway. Must be called with NO stripe lock held
   (gauge writes take [reg_lock]; holding a stripe lock here would be
   fine for ordering but the callers don't need to). *)
let occupancy t =
  Array.fold_left
    (fun (n, b) s -> (n + Hashtbl.length s.table, b + s.total_bytes))
    (0, 0) t.stripes

let set_occupancy t =
  let n, b = occupancy t in
  locked t.reg_lock @@ fun () ->
  Metrics.set (Metrics.gauge t.reg "scale/cache/entries") n;
  Metrics.set (Metrics.gauge t.reg "scale/cache/bytes") b

let entries t = fst (occupancy t)
let bytes t = snd (occupancy t)

(* ---- key derivation ---- *)

(* Canonical rendering of exactly the inputs the artifact depends on.
   [trace]/[metrics]/[rtrace] are observation sinks, not inputs, and are
   excluded;
   [max_errors] only affects the accumulating path. The run path stores
   post-optimization artifacts, so everything that steers the optimizer —
   the pass list and the specializer options (profile digest, threshold,
   budgets, via [Pipeline.spec_signature]) — is part of the key. *)
let key kind ~(opts : Pipeline.options) ~src =
  let opt_fields =
    Printf.sprintf "strategy=%s;lits=%b;defaulting=%b;prelude=%b;lint=%b"
      (Pipeline.strategy_name opts.Pipeline.strategy)
      opts.Pipeline.overloaded_literals opts.Pipeline.defaulting
      opts.Pipeline.include_prelude opts.Pipeline.lint
  in
  let head =
    match kind with
    | `Run passes ->
        Printf.sprintf "run:%s;passes=%s;spec=%s" opt_fields
          (String.concat "," (List.map Tc_opt.Opt.pass_name passes))
          (Pipeline.spec_signature opts)
    | `Check ->
        Printf.sprintf "check:%s;max_errors=%d" opt_fields
          opts.Pipeline.max_errors
  in
  Digest.to_hex (Digest.string (head ^ "\x00" ^ src))

(* ---- sink stripping / splicing ---- *)

(* Stored artifacts must not retain the inserting request's trace sink or
   metrics registry (the registry alone would drag a server's whole
   instrument table into every size estimate), and a hit must report
   downstream phases (exec spans) to the *caller's* sinks, not the
   inserter's. So: strip on insert, splice on every return. *)
let strip_compiled (c : Pipeline.compiled) : Pipeline.compiled =
  {
    c with
    Pipeline.options =
      {
        c.Pipeline.options with
        Pipeline.metrics = Metrics.disabled;
        trace = Tc_obs.Trace.none;
        rtrace = Tc_obs.Rtrace.disabled;
      };
  }

let splice_compiled (opts : Pipeline.options) (c : Pipeline.compiled) :
    Pipeline.compiled =
  {
    c with
    Pipeline.options =
      {
        c.Pipeline.options with
        Pipeline.metrics = opts.Pipeline.metrics;
        trace = opts.Pipeline.trace;
        rtrace = opts.Pipeline.rtrace;
      };
  }

let strip_value = function
  | Artifact c -> Artifact (strip_compiled c)
  | Checked ck ->
      Checked
        {
          ck with
          Pipeline.artifact = Option.map strip_compiled ck.Pipeline.artifact;
        }

let splice_value opts = function
  | Artifact c -> Artifact (splice_compiled opts c)
  | Checked ck ->
      Checked
        {
          ck with
          Pipeline.artifact =
            Option.map (splice_compiled opts) ck.Pipeline.artifact;
        }

(* ---- the disk tier ---- *)

(* Marshaled artifacts must be closure-free. [strip_value] already
   clears the options' sinks; the type environment additionally carries
   its own trace sink on a mutable field, cleared here on a copy (the
   caller's env must keep its sink). [Diagnostic.Sink], [Stats.t] and
   everything else reachable is plain data. Marshaling WITHOUT
   [Closures] is the safety net: a closure sneaking into the artifact
   raises here and the entry simply isn't persisted, rather than
   producing bytes no other process could trust. *)
let persist_strip_compiled (c : Pipeline.compiled) : Pipeline.compiled =
  let c = strip_compiled c in
  {
    c with
    Pipeline.env =
      { c.Pipeline.env with Tc_types.Class_env.trace = Tc_obs.Trace.none };
  }

let persist_strip_value = function
  | Artifact c -> Artifact (persist_strip_compiled c)
  | Checked ck ->
      Checked
        {
          ck with
          Pipeline.artifact =
            Option.map persist_strip_compiled ck.Pipeline.artifact;
        }

(* Disk IO runs outside the cache lock (like compiles); only the counter
   bumps take it. *)
let persist_read t k : value option =
  match t.persist with
  | None -> None
  | Some p -> (
      match Persist.read p ~key:k with
      | `Miss ->
          count t "persist/misses";
          None
      | `Corrupt ->
          (* torn/corrupt bytes: already unlinked (self-healed); the
             caller recompiles and rewrites *)
          count t "persist/corrupt";
          None
      | `Hit payload -> (
          match (Marshal.from_string payload 0 : value) with
          | v ->
              count t "persist/hits";
              Some v
          | exception _ ->
              (* checksummed but unreadable (should be impossible given
                 the executable digest in the header; never crash on bad
                 bytes regardless) *)
              Persist.remove p ~key:k;
              count t "persist/corrupt";
              None))

let persist_write t k (v : value) =
  match t.persist with
  | None -> ()
  | Some p -> (
      match Marshal.to_string (persist_strip_value v) [] with
      | payload -> (
          match Persist.write p ~key:k ~payload with
          | `Written | `Torn ->
              (* a [`Torn] write (injected crash-mid-write) still counts:
                 the next read detects and heals it *)
              count t "persist/writes"
          | `Skipped -> count t "persist/errors")
      | exception _ -> count t "persist/errors")

let persist_remove t k =
  match t.persist with None -> () | Some p -> Persist.remove p ~key:k

(* ---- fingerprints (verification mode) ---- *)

(* Two compiles of the same source are not structurally equal — gensym
   stamps differ — so verification compares a digest of the
   gensym-invariant surface instead: what the user can observe. *)
let fingerprint (c : Pipeline.compiled) : string =
  let schemes =
    List.map
      (fun (n, s) -> Ident.text n ^ " :: " ^ Tc_types.Scheme.to_string s)
      c.Pipeline.user_schemes
    |> List.sort compare
  in
  let binds =
    List.fold_left
      (fun acc g ->
        acc
        + match g with Core.Nonrec _ -> 1 | Core.Rec bs -> List.length bs)
      0 c.Pipeline.core.Core.p_binds
  in
  Printf.sprintf "%s|groups=%d|binds=%d|warnings=%d"
    (String.concat ";" schemes)
    (List.length c.Pipeline.core.Core.p_binds)
    binds
    (List.length c.Pipeline.warnings)

let fingerprint_value = function
  | Artifact c -> "artifact:" ^ fingerprint c
  | Checked ck ->
      let count sev =
        List.length
          (List.filter
             (fun (d : Diagnostic.t) -> d.Diagnostic.severity = sev)
             ck.Pipeline.diagnostics)
      in
      Printf.sprintf "checked:errors=%d;warnings=%d;ice=%d;%s"
        (count Diagnostic.Error) (count Diagnostic.Warning)
        (count Diagnostic.Bug)
        (match ck.Pipeline.artifact with
        | None -> "-"
        | Some c -> fingerprint c)

(* ---- the table ---- *)

let size_of (v : value) : int =
  Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

(* Evict this stripe's least-recently-used entries until its share of
   the byte budget holds. Linear scan for the minimum tick: stripes are
   small (tens to hundreds of entries) and eviction is off the hit
   path. Caller holds the stripe lock. *)
let evict_over_budget t (s : stripe) =
  if t.stripe_max_bytes > 0 then
    while s.total_bytes > t.stripe_max_bytes && Hashtbl.length s.table > 0 do
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (_, oldest) when oldest.e_tick <= e.e_tick -> acc
            | _ -> Some (k, e))
          s.table None
      in
      match victim with
      | None -> ()
      | Some (k, e) ->
          Hashtbl.remove s.table k;
          s.total_bytes <- s.total_bytes - e.e_bytes;
          count t "evictions"
    done

(* A hit under the key's stripe lock: returns the entry plus whether
   this touch is a verification sample. *)
let lookup t k =
  let s = stripe_of t k in
  locked s.lock @@ fun () ->
  match Hashtbl.find_opt s.table k with
  | None ->
      count t "misses";
      None
  | Some e ->
      s.tick <- s.tick + 1;
      e.e_tick <- s.tick;
      e.e_hits <- e.e_hits + 1;
      count t "hits";
      let verify = t.verify_every > 0 && e.e_hits mod t.verify_every = 0 in
      Some (e.e_value, verify)

(* Insert after an out-of-lock compile. First-writer-wins: if a racing
   worker inserted the same key meanwhile, keep theirs. *)
let insert t k v =
  let v = strip_value v in
  let sz = size_of v in
  let s = stripe_of t k in
  locked s.lock (fun () ->
      if not (Hashtbl.mem s.table k) then begin
        s.tick <- s.tick + 1;
        Hashtbl.add s.table k
          { e_value = v; e_bytes = sz; e_tick = s.tick; e_hits = 0 };
        s.total_bytes <- s.total_bytes + sz;
        count t "inserts";
        evict_over_budget t s
      end);
  set_occupancy t

let drop t k =
  let s = stripe_of t k in
  locked s.lock (fun () ->
      match Hashtbl.find_opt s.table k with
      | None -> ()
      | Some e ->
          Hashtbl.remove s.table k;
          s.total_bytes <- s.total_bytes - e.e_bytes);
  set_occupancy t

(* The common shape of both paths: [compile ()] must produce the same
   [value] constructor the key's entries hold. *)
let memo t ~k ~opts ~(compile : unit -> value) : value =
  match lookup t k with
  | None -> (
      (* memory miss: consult the disk tier before paying for a compile.
         A disk hit warms the memory table — subsequent hits never touch
         disk again — and skips the front end entirely (no compile
         span). *)
      match persist_read t k with
      | Some v ->
          insert t k v;
          splice_value opts v
      | None ->
          let v = compile () in
          insert t k v;
          persist_write t k v;
          splice_value opts v)
  | Some (v, verify) ->
      if not verify then splice_value opts v
      else begin
        (* Sampled verification: recompile and compare fingerprints. On
           mismatch the cache self-heals — drop the stale entry (both
           tiers), answer with (and re-cache) the fresh compile. *)
        let fresh = compile () in
        if String.equal (fingerprint_value fresh) (fingerprint_value v) then begin
          count t "verified";
          splice_value opts v
        end
        else begin
          count t "verify_fail";
          drop t k;
          persist_remove t k;
          insert t k fresh;
          persist_write t k fresh;
          splice_value opts fresh
        end
      end

let compile_run t ~(opts : Pipeline.options) ~passes ~src =
  let k = key (`Run passes) ~opts ~src in
  let compile () =
    Artifact
      (Pipeline.optimize passes (Pipeline.compile ~opts ~file:"<serve>" src))
  in
  match memo t ~k ~opts ~compile with
  | Artifact c -> c
  | Checked _ -> assert false (* run keys only ever hold [Artifact] *)

let check t ~(opts : Pipeline.options) ~src =
  let k = key `Check ~opts ~src in
  let compile () =
    Checked (Pipeline.compile_collect ~opts ~file:"<serve>" src)
  in
  match memo t ~k ~opts ~compile with
  | Checked ck -> ck
  | Artifact _ -> assert false
