(** Supervised domain worker pool (see the interface for the contract).

    Concurrency layout: one mutex guards the work queue, the reorder
    buffer, the sequence counters, the pool registry and the
    supervision state (restart budget, live-worker count, dead-worker
    accumulators). Workers wait on [nonempty] (work arrived, or EOF);
    the coordinator waits on [progress] (queue room opened, or a
    response completed). Request handling, [next] and [emit] all run
    outside the lock.

    Supervision: the worker loop runs under a catch-all. An escaped
    exception — the wedge that used to hang the coordinator forever on
    the dead worker's sequence number — now posts a synthetic
    [worker-crash] response for the in-flight request (order
    preserved), folds the dead incarnation's stats/registry into the
    pool accumulators, and respawns a replacement domain after an
    exponential backoff, up to [max_restarts] across the pool's
    lifetime. When the budget is spent, the worker count just shrinks;
    if the {e last} worker dies over budget, it stays behind as a
    lame-duck drainer answering every remaining request with a
    synthetic [worker-crash] — degraded service, but every request
    still gets exactly one response and the coordinator always
    drains. *)

module Serve = Typeclasses.Serve
module Metrics = Tc_obs.Metrics
module Rtrace = Tc_obs.Rtrace
module Mono = Tc_support.Mono
module Inject = Tc_resilience.Inject

type summary = {
  stats : Serve.stats;
  metrics : Metrics.t;
  workers : int;
  restarts : int;
}

let empty_stats () : Serve.stats =
  {
    Serve.requests = 0;
    responses = 0;
    ok = 0;
    failed = 0;
    retried = 0;
    by_op = [];
    by_class = [];
  }

let merge_assoc into src =
  List.fold_left
    (fun acc (k, v) ->
      let n = match List.assoc_opt k acc with Some n -> n | None -> 0 in
      (k, n + v) :: List.remove_assoc k acc)
    into src

let merge_stats ~(into : Serve.stats) (s : Serve.stats) =
  into.Serve.requests <- into.Serve.requests + s.Serve.requests;
  into.responses <- into.responses + s.Serve.responses;
  into.ok <- into.ok + s.Serve.ok;
  into.failed <- into.failed + s.Serve.failed;
  into.retried <- into.retried + s.Serve.retried;
  into.by_op <- merge_assoc into.by_op s.Serve.by_op;
  into.by_class <- merge_assoc into.by_class s.Serve.by_class

let sequential ~config ?stop ?emit_oob ~next ~emit () =
  let server = Serve.create ~config () in
  let stats = Serve.run ~server ?stop ?emit_oob ~next ~emit () in
  let merged = Metrics.create () in
  Metrics.merge ~into:merged (Serve.metrics server);
  { stats; metrics = merged; workers = 1; restarts = 0 }

let parallel ~workers ~config ~queue_depth ~max_restarts ~restart_backoff_ms
    ~shed_grace_ms ~on_lame_duck ~stop ~snapshot_every ~emit_oob ~next ~emit
    () =
  let lock = Mutex.create () in
  let nonempty = Condition.create () in
  let progress = Condition.create () in
  let rt = config.Serve.rtrace in
  (* Queue entries carry their enqueue time (config clock) so workers
     can compute the queue age that drives deadline shedding, plus the
     trace ID minted at admission and — for sampled requests only — the
     monotonic enqueue time that becomes the "queue" trace event. *)
  let queue : (int * string * float * int * int) Queue.t = Queue.create () in
  (* seq -> (response, trace): the emitter charges its write to the
     response's own trace *)
  let ready : (int, string * int) Hashtbl.t = Hashtbl.create 64 in
  (* Spontaneous lines (metrics snapshots) ride the emitter thread too,
     but out-of-band: they never consume a sequence number, so response
     routing downstream stays strictly one [next] per [emit]. *)
  let oob : string Queue.t = Queue.create () in
  let eof = ref false in
  (* Both counters are written by the coordinator only. *)
  let next_seq = ref 0 in
  let next_emit = ref 0 in

  (* Pool-wide telemetry and supervision state, all guarded by [lock]. *)
  let pool_reg = Metrics.create () in
  let restarts_ctr = Metrics.counter pool_reg "scale/pool/restarts" in
  let depth_gauge = Metrics.gauge pool_reg "scale/pool/queue_depth" in
  (* instantaneous depth, refreshed on every push and pop, so a live
     [metrics]/[stats] request (or an out-of-band snapshot) reports how
     deep the queue is *now*, not just the high-water mark *)
  let depth_now_gauge = Metrics.gauge pool_reg "scale/pool/queue_depth_now" in
  let shed_ctr = Metrics.counter pool_reg "scale/pool/shed" in
  let acc_stats = empty_stats () in
  let acc_metrics = Metrics.create () in
  let restarts = ref 0 in
  let live = ref workers in
  let replacements : unit Domain.t list ref = ref [] in

  (* Fold a (finished or dead) incarnation's private stats and registry
     into the accumulators — a crashed worker's partial counts are part
     of the pool's story, not lost with its domain. *)
  let merge_server server =
    Mutex.lock lock;
    merge_stats ~into:acc_stats (Serve.stats server);
    Metrics.merge ~into:acc_metrics (Serve.metrics server);
    Mutex.unlock lock
  in

  (* The registry in-band stats/metrics requests see: a locked copy of
     the pool registry, composed with whatever view the caller already
     configured (the CLI passes the compile cache's). *)
  let caller_view = config.Serve.extra_metrics in
  let pool_view () =
    let m = Metrics.create () in
    Mutex.lock lock;
    Metrics.merge ~into:m pool_reg;
    Mutex.unlock lock;
    (match caller_view with
    | None -> ()
    | Some view -> Metrics.merge ~into:m (view ()));
    m
  in
  let config = { config with Serve.extra_metrics = Some pool_view } in
  let clock = config.Serve.clock in

  let post seq ~trace resp =
    Mutex.lock lock;
    Hashtbl.add ready seq (resp, trace);
    (* both the emitter and a backpressure-blocked coordinator wait on
       [progress]; a single signal could wake the wrong one *)
    Condition.broadcast progress;
    Mutex.unlock lock
  in

  (* Dequeue under [lock] (the caller holds it); [None] only at EOF with
     an empty queue, i.e. no request will ever arrive again. *)
  let rec take () =
    if not (Queue.is_empty queue) then begin
      let entry = Queue.pop queue in
      Metrics.set depth_now_gauge (Queue.length queue);
      Some entry
    end
    else if !eof then None
    else begin
      Condition.wait nonempty lock;
      take ()
    end
  in

  let rec worker () =
    let server = Serve.create ~config () in
    (* the request this incarnation holds, for crash accounting *)
    let inflight = ref None in
    let outcome =
      try
        let rec loop () =
          Mutex.lock lock;
          match take () with
          | None ->
              Mutex.unlock lock;
              `Done
          | Some (seq, line, enqueued, trace, enq_ns) ->
              (* Queue room opened: the coordinator may be blocked. *)
              Condition.broadcast progress;
              Mutex.unlock lock;
              inflight := Some (seq, line, trace);
              let queued_us =
                int_of_float (Float.max 0. ((clock () -. enqueued) *. 1e6))
              in
              (* the queue-wait event, measured on the monotonic clock
                 from admission to this dequeue *)
              if enq_ns > 0 then
                Rtrace.record_as rt ~trace ~name:"queue" ~ts_ns:enq_ns
                  ~dur_ns:(max 0 (Mono.now_ns () - enq_ns))
                  ~words:0;
              if !Inject.live then
                Inject.hit ~detail:"pool worker" Inject.Worker_crash;
              let resp =
                Serve.handle_line ~queued_us ~trace_id:trace server line
              in
              inflight := None;
              post seq ~trace resp;
              loop ()
        in
        loop ()
      with exn -> `Crashed exn
    in
    match outcome with
    | `Done ->
        merge_server server;
        Mutex.lock lock;
        decr live;
        Mutex.unlock lock
    | `Crashed exn -> (
        (* The request this incarnation held gets a synthetic response at
           its own sequence number — the coordinator's reorder buffer
           never waits on a dead worker. *)
        (match !inflight with
        | None -> ()
        | Some (seq, line, trace) ->
            let cls, msg = Serve.classify exn in
            post seq ~trace
              (Serve.synthetic_failure ~trace_id:trace server
                 ~cls:"worker-crash"
                 ~message:
                   (Printf.sprintf "worker crashed mid-request (%s: %s)" cls
                      msg)
                 line));
        merge_server server;
        Mutex.lock lock;
        if !restarts < max_restarts then begin
          incr restarts;
          Metrics.incr restarts_ctr;
          (* exponential backoff, capped at 64x, so a crash loop cannot
             busy-spin the pool *)
          let backoff_s =
            restart_backoff_ms
            *. (2. ** float_of_int (min 6 (!restarts - 1)))
            /. 1000.
          in
          match
            Domain.spawn (fun () ->
                if backoff_s > 0. then config.Serve.sleep backoff_s;
                worker ())
          with
          | d ->
              replacements := d :: !replacements;
              Mutex.unlock lock
          | exception _ ->
              (* could not spawn (domain limit): treat as budget spent *)
              decr live;
              let last = !live <= 0 in
              Mutex.unlock lock;
              if last then drain ()
        end
        else begin
          decr live;
          let last = !live <= 0 in
          Mutex.unlock lock;
          if last then drain ()
        end)
  and drain () =
    (* Restart budget exhausted and no live worker remains: become a
       lame-duck drainer so liveness survives total worker loss. Every
       queued (and still-arriving) request is answered with a synthetic
       worker-crash failure until EOF. The caller is told ([on_lame_duck])
       so it can flip its readiness probe off — a load balancer should
       stop routing here once every answer is a synthetic failure. *)
    on_lame_duck ();
    let server = Serve.create ~config () in
    let rec loop () =
      Mutex.lock lock;
      match take () with
      | None -> Mutex.unlock lock
      | Some (seq, line, _, trace, _) ->
          Condition.broadcast progress;
          Mutex.unlock lock;
          post seq ~trace
            (Serve.synthetic_failure ~trace_id:trace server
               ~cls:"worker-crash"
               ~message:
                 (Printf.sprintf
                    "worker pool degraded: restart budget (%d) exhausted"
                    max_restarts)
               line);
          loop ()
    in
    loop ();
    merge_server server
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in

  (* Admission control: the coordinator owns a server solely to account
     for requests it sheds before they ever reach a worker. *)
  let ctl = Serve.create ~config () in

  (* Emit every response as soon as it is next in sequence, from a
     dedicated thread. The coordinator cannot do this between [next]
     calls: a closed-loop client (the TCP front end's normal case)
     sends its next request only after reading its response, so a
     coordinator blocked in [next] while the response sat in [ready]
     would deadlock the connection. [emit] is still called from exactly
     one thread, in sequence order. Collects under the lock, emits
     outside it; exits when the coordinator has seen EOF and every
     sequenced response is out. *)
  let emitter =
    Thread.create
      (fun () ->
        (* Write one response, charging the write to the response's own
           trace so a slow/backpressured client shows up as a long
           [emit] event in its requests' timelines. *)
        let emit_traced (resp, trace) =
          if Rtrace.sampled rt trace then begin
            let ts0 = Mono.now_ns () in
            emit resp;
            Rtrace.record_as rt ~trace ~name:"emit" ~ts_ns:ts0
              ~dur_ns:(Mono.now_ns () - ts0) ~words:0
          end
          else emit resp
        in
        let rec loop () =
          Mutex.lock lock;
          while
            (not (Hashtbl.mem ready !next_emit))
            && Queue.is_empty oob
            && not (!eof && !next_emit >= !next_seq)
          do
            Condition.wait progress lock
          done;
          let batch = ref [] in
          let rec collect () =
            match Hashtbl.find_opt ready !next_emit with
            | None -> ()
            | Some entry ->
                Hashtbl.remove ready !next_emit;
                incr next_emit;
                batch := entry :: !batch;
                collect ()
          in
          collect ();
          let oob_batch = ref [] in
          while not (Queue.is_empty oob) do
            oob_batch := Queue.pop oob :: !oob_batch
          done;
          let finished = !eof && !next_emit >= !next_seq in
          Mutex.unlock lock;
          List.iter emit_traced (List.rev !batch);
          (* out-of-band lines after the responses of the same wakeup:
             they are unordered with respect to requests by contract,
             and this way a snapshot taken after request N tends to
             follow response N on stdio *)
          List.iter emit_oob (List.rev !oob_batch);
          if not finished then loop ()
        in
        loop ())
      ()
  in

  (* Spontaneous snapshots in pooled mode: counted off lines read by
     the coordinator, framed like the sequential loop's, but carrying
     the pool/caller registries (the workers' private serve registries
     are not safely readable while their domains run) and routed
     through the emitter thread out-of-band. *)
  let fed = ref 0 in
  let maybe_snapshot () =
    incr fed;
    if snapshot_every > 0 && !fed mod snapshot_every = 0 then begin
      let line =
        Serve.snapshot_event_line ~after_requests:!fed (pool_view ())
      in
      Mutex.lock lock;
      Queue.push line oob;
      Condition.broadcast progress;
      Mutex.unlock lock
    end
  in
  let rec feed () =
    if not (stop ()) then
      match next () with
      | None -> ()
      | Some line ->
          let seq = !next_seq in
          incr next_seq;
          let trace = Rtrace.mint rt in
          Mutex.lock lock;
          (* Backpressure with a grace window: wait for queue room, but
             if the queue stays full past [shed_grace_ms] of (progress-
             signalled) waiting, reject at admission — cheaper than
             letting the request age out in the queue, and bounded
             because supervision guarantees workers keep signalling. A
             negative grace disables admission shedding (pure
             backpressure, the pre-supervision behaviour). *)
          let full_since = ref None in
          let shed = ref false in
          while (not !shed) && Queue.length queue >= queue_depth do
            (match !full_since with
            | None -> full_since := Some (clock ())
            | Some t0 ->
                if
                  shed_grace_ms >= 0.
                  && (clock () -. t0) *. 1000. > shed_grace_ms
                then shed := true);
            if not !shed then Condition.wait progress lock
          done;
          if !shed then begin
            Metrics.incr shed_ctr;
            Mutex.unlock lock;
            post seq ~trace
              (Serve.synthetic_failure ~trace_id:trace ctl ~cls:"shed"
                 ~message:
                   (Printf.sprintf
                      "shed at admission: queue full past the %.0fms grace \
                       window"
                      shed_grace_ms)
                 line)
          end
          else begin
            let enq_ns = if Rtrace.sampled rt trace then Mono.now_ns () else 0 in
            Queue.push (seq, line, clock (), trace, enq_ns) queue;
            (* high-water queue depth; gauges merge by max *)
            let d = Queue.length queue in
            Metrics.set depth_now_gauge d;
            if d > Metrics.gauge_value depth_gauge then
              Metrics.set depth_gauge d;
            Condition.signal nonempty;
            Mutex.unlock lock
          end;
          maybe_snapshot ();
          feed ()
  in
  feed ();

  Mutex.lock lock;
  eof := true;
  Condition.broadcast nonempty;
  (* the emitter's exit condition just became decidable *)
  Condition.broadcast progress;
  Mutex.unlock lock;

  (* Input exhausted: the emitter writes out the in-flight tail, in
     order, then exits. *)
  Thread.join emitter;

  List.iter Domain.join domains;
  (* Replacement domains spawned by crashing workers: joining one may
     race a still-crashing worker spawning another, so drain the list
     to a fixed point. *)
  let rec join_replacements () =
    Mutex.lock lock;
    let ds = !replacements in
    replacements := [];
    Mutex.unlock lock;
    match ds with
    | [] -> ()
    | ds ->
        List.iter Domain.join ds;
        join_replacements ()
  in
  join_replacements ();

  (* All domains joined: the accumulators are quiescent. *)
  merge_server ctl;
  let merged = Metrics.create () in
  Metrics.merge ~into:merged acc_metrics;
  Metrics.merge ~into:merged pool_reg;
  { stats = acc_stats; metrics = merged; workers; restarts = !restarts }

let run ?(workers = 1) ?(config = Serve.default_config) ?(queue_depth = 64)
    ?(max_restarts = 8) ?(restart_backoff_ms = 1.) ?(shed_grace_ms = -1.)
    ?(on_lame_duck = fun () -> ()) ?(stop = fun () -> false) ?emit_oob ~next
    ~emit () =
  if workers <= 1 then sequential ~config ~stop ?emit_oob ~next ~emit ()
  else
    (* a queue shallower than the pool would idle workers by
       construction, so the depth is clamped to at least [workers] *)
    parallel ~workers ~config
      ~queue_depth:(max workers (max 1 queue_depth))
      ~max_restarts ~restart_backoff_ms ~shed_grace_ms ~on_lame_duck ~stop
      ~snapshot_every:config.Serve.snapshot_every
      ~emit_oob:(match emit_oob with Some f -> f | None -> emit)
      ~next ~emit ()
