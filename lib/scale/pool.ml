(** Domain worker pool (see the interface for the contract).

    Concurrency layout: one mutex guards the work queue, the reorder
    buffer and the sequence counters. Workers wait on [nonempty] (work
    arrived, or EOF); the coordinator waits on [progress] (queue room
    opened, or a response completed). Request handling, [next] and
    [emit] all run outside the lock. *)

module Serve = Typeclasses.Serve
module Metrics = Tc_obs.Metrics

type summary = {
  stats : Serve.stats;
  metrics : Metrics.t;
  workers : int;
}

let empty_stats () : Serve.stats =
  {
    Serve.requests = 0;
    responses = 0;
    ok = 0;
    failed = 0;
    retried = 0;
    by_op = [];
    by_class = [];
  }

let merge_assoc into src =
  List.fold_left
    (fun acc (k, v) ->
      let n = match List.assoc_opt k acc with Some n -> n | None -> 0 in
      (k, n + v) :: List.remove_assoc k acc)
    into src

let merge_stats ~(into : Serve.stats) (s : Serve.stats) =
  into.Serve.requests <- into.Serve.requests + s.Serve.requests;
  into.responses <- into.responses + s.Serve.responses;
  into.ok <- into.ok + s.Serve.ok;
  into.failed <- into.failed + s.Serve.failed;
  into.retried <- into.retried + s.Serve.retried;
  into.by_op <- merge_assoc into.by_op s.Serve.by_op;
  into.by_class <- merge_assoc into.by_class s.Serve.by_class

let sequential ~config ?stop ~next ~emit () =
  let server = Serve.create ~config () in
  let stats = Serve.run ~server ?stop ~next ~emit () in
  let merged = Metrics.create () in
  Metrics.merge ~into:merged (Serve.metrics server);
  { stats; metrics = merged; workers = 1 }

let parallel ~workers ~config ~queue_depth ~stop ~next ~emit () =
  let lock = Mutex.create () in
  let nonempty = Condition.create () in
  let progress = Condition.create () in
  let queue : (int * string) Queue.t = Queue.create () in
  let ready : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let eof = ref false in
  (* Both counters are written by the coordinator only. *)
  let next_seq = ref 0 in
  let next_emit = ref 0 in

  let worker () =
    let server = Serve.create ~config () in
    let rec take () =
      if not (Queue.is_empty queue) then Some (Queue.pop queue)
      else if !eof then None
      else begin
        Condition.wait nonempty lock;
        take ()
      end
    in
    let rec loop () =
      Mutex.lock lock;
      match take () with
      | None -> Mutex.unlock lock
      | Some (seq, line) ->
          (* Queue room opened: the coordinator may be blocked on it. *)
          Condition.signal progress;
          Mutex.unlock lock;
          let resp = Serve.handle_line server line in
          Mutex.lock lock;
          Hashtbl.add ready seq resp;
          Condition.signal progress;
          Mutex.unlock lock;
          loop ()
    in
    loop ();
    (Serve.stats server, Serve.metrics server)
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in

  (* Emit every response that is next in sequence. Collects under the
     lock, emits outside it. *)
  let drain_ready () =
    Mutex.lock lock;
    let batch = ref [] in
    let rec collect () =
      match Hashtbl.find_opt ready !next_emit with
      | None -> ()
      | Some resp ->
          Hashtbl.remove ready !next_emit;
          incr next_emit;
          batch := resp :: !batch;
          collect ()
    in
    collect ();
    Mutex.unlock lock;
    List.iter emit (List.rev !batch)
  in

  let rec feed () =
    if not (stop ()) then
      match next () with
      | None -> ()
      | Some line ->
          let seq = !next_seq in
          incr next_seq;
          Mutex.lock lock;
          while Queue.length queue >= queue_depth do
            Condition.wait progress lock
          done;
          Queue.push (seq, line) queue;
          Condition.signal nonempty;
          Mutex.unlock lock;
          drain_ready ();
          feed ()
  in
  feed ();

  Mutex.lock lock;
  eof := true;
  Condition.broadcast nonempty;
  Mutex.unlock lock;

  (* Input exhausted: wait out the in-flight tail, emitting in order. *)
  while !next_emit < !next_seq do
    Mutex.lock lock;
    while
      !next_emit < !next_seq && not (Hashtbl.mem ready !next_emit)
    do
      Condition.wait progress lock
    done;
    Mutex.unlock lock;
    drain_ready ()
  done;

  let results = List.map Domain.join domains in
  let stats = empty_stats () in
  let merged = Metrics.create () in
  List.iter
    (fun (s, m) ->
      merge_stats ~into:stats s;
      Metrics.merge ~into:merged m)
    results;
  { stats; metrics = merged; workers }

let run ?(workers = 1) ?(config = Serve.default_config) ?(queue_depth = 64)
    ?(stop = fun () -> false) ~next ~emit () =
  if workers <= 1 then sequential ~config ~stop ~next ~emit ()
  else
    parallel ~workers ~config ~queue_depth:(max 1 queue_depth) ~stop ~next
      ~emit ()
