(** A content-addressed compile cache.

    Serving recompiles the same program over and over — editor
    keystroke loops, fleets of identical queries, retries. The whole
    front end (lex through lower) is a pure function of the source text
    and the subset of {!Typeclasses.Pipeline.options} that affect its
    output, so the compiled artifact can be memoized under a content
    hash of exactly those inputs. This is the *Tabled Typeclass
    Resolution* idea lifted from individual resolution queries to
    whole-program granularity: the table key is a digest of everything
    the answer depends on, and nothing else.

    {2 Key derivation}

    The key is an MD5 digest over a canonical rendering of:

    - a kind tag ([run:]/[check:]), because the two paths produce
      different artifact types from the same source;
    - the output-relevant option fields — strategy,
      [overloaded_literals], [defaulting], [include_prelude], [lint],
      and (for the accumulating check path only) [max_errors];
    - the optimizer pass list, in order, and the specializer options
      ({!Typeclasses.Pipeline.spec_signature}: profile digest, hotness
      threshold, clone/growth budgets) — run path only; the cache stores
      post-optimization artifacts, so two differently-specialized
      compiles of one source must key apart;
    - the source text itself.

    [trace] and [metrics] are deliberately {e excluded}: they change
    what is observed, never what is produced. Cached artifacts are
    stored with both stripped and returned with the caller's sinks
    spliced back in, so a hit reports to the requesting server's
    registry and never retains another registry alive.

    {2 Semantics}

    - Hits are byte-for-byte keyed: any change to source or options
      misses. Compile {e errors} are never cached — a raising compile
      propagates and leaves no entry, so error responses always reflect
      a fresh compile.
    - Bounded LRU: entries are evicted least-recently-used-first once
      the byte budget (estimated reachable size of stored artifacts) is
      exceeded. The budget divides evenly across the stripes (below),
      and eviction is stripe-local — a hot stripe can evict an entry a
      global LRU would have kept, costing a recompile, never
      correctness.
    - Verification mode: with [verify_every = n > 0], every [n]-th hit
      on an entry recompiles from source and compares a
      gensym-invariant fingerprint (sorted user schemes, core
      bind/group counts, diagnostic tallies) against the cached
      artifact. A mismatch drops the entry, counts
      [scale/cache/verify_fail], and answers with the fresh compile.
    - Thread-safe and striped: the entry table is sharded into 16
      independently-locked stripes (a key's stripe chosen by its hash),
      so workers hitting distinct keys contend only on hash collisions,
      not on one global mutex; the telemetry registry has its own lock.
      Compiles themselves run outside every lock. One cache can be
      shared by every worker in a {!Pool}.

    {2 The persistent tier}

    With [create ~dir], the cache adds a crash-safe disk tier
    ({!Persist}) under the same content-addressed keys: a memory miss
    consults the directory before compiling (a warm restart serves its
    first repeated request with no compile span at all), and every fresh
    compile is written through — atomic temp+rename, version header,
    per-entry checksum — so a server restart starts warm. Corrupt or
    torn entries are dropped and healed on read, never an exception;
    entries from a different executable (marshaled layouts may differ)
    wipe the directory and start cold. Disk entries are exempt from the
    LRU byte budget (disk is cheap; the directory persists exactly so
    restarts are warm). Compile errors are never persisted, matching the
    memory tier.

    Telemetry lives in the cache's own always-live registry
    ({!metrics}): counters [scale/cache/hits], [misses], [inserts],
    [evictions], [verified], [verify_fail], and for the disk tier
    [scale/cache/persist/hits], [persist/misses], [persist/writes],
    [persist/corrupt] (torn/corrupt entries healed), [persist/errors],
    [persist/wiped], [persist/locked_out]; gauges [scale/cache/entries],
    [scale/cache/bytes], [scale/cache/persist/adopted_idents]. *)

module Pipeline = Typeclasses.Pipeline

type t

val create : ?max_bytes:int -> ?verify_every:int -> ?dir:string -> unit -> t
(** [max_bytes] bounds the estimated total size of cached artifacts
    (default 64 MiB; [0] = unbounded). [verify_every = n > 0] recompiles
    every [n]-th hit per entry and asserts fingerprint equality
    (default [0] = off). [dir] enables the persistent tier rooted at
    that directory (created if needed; opened disabled when another
    process holds its writer lock). *)

val metrics : t -> Tc_obs.Metrics.t
(** The cache's own registry (see the counter/gauge list above). Merge
    it into a server-wide view with {!Tc_obs.Metrics.merge}. Guarded by
    the cache's registry lock — read it through {!metrics_view} from
    other domains. *)

val metrics_view : t -> Tc_obs.Metrics.t
(** A point-in-time copy of {!metrics}, taken under the cache lock —
    safe to merge from any domain (the serve [extra_metrics] seam). *)

val close : t -> unit
(** Release the persistent tier's writer lock (no-op without [dir]).
    The memory tier keeps working. *)

val key :
  [ `Run of Tc_opt.Opt.pass list | `Check ] ->
  opts:Pipeline.options ->
  src:string ->
  string
(** The content hash (hex MD5) a request stores under — exposed for
    tests and diagnostics. *)

val compile_run :
  t ->
  opts:Pipeline.options ->
  passes:Tc_opt.Opt.pass list ->
  src:string ->
  Pipeline.compiled
(** The [run]-path compile: cached equivalent of [Pipeline.compile]
    followed by [Pipeline.optimize passes]. Raises whatever [compile]
    raises on a miss over erroneous source; hits skip the front end
    entirely. Shape-compatible with the [Serve.hooks.compile] seam. *)

val check :
  t -> opts:Pipeline.options -> src:string -> Pipeline.checked
(** The accumulating-path compile: cached equivalent of
    [Pipeline.compile_collect]. Never raises. Shape-compatible with the
    [Serve.hooks.check] seam. *)

val entries : t -> int
val bytes : t -> int
(** Current occupancy (also exported as gauges). *)

val fingerprint : Pipeline.compiled -> string
(** The gensym-invariant digest verification mode compares: sorted
    rendered user schemes, core group/bind counts, warning tally.
    Exposed for tests. *)
