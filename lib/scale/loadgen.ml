(** Load generator (see the interface for the phase design). *)

module Serve = Typeclasses.Serve
module Metrics = Tc_obs.Metrics
module Json = Tc_obs.Json

type phase = {
  ph_label : string;
  ph_requests : int;
  ph_elapsed_s : float;
  ph_rps : float;
  ph_p50_us : int;
  ph_p99_us : int;
  ph_ok : int;
  ph_failed : int;
}

type report = {
  clients : int;
  requests : int;
  workers : int;
  op : string;
  cold : phase;
  hot : phase;
  speedup : float;
  invariant_ok : bool;
  cache_hits : int;
  cache_misses : int;
  shed : int;
  worker_crashes : int;
  restarts : int;
}

(* A small but real program — classes, dictionaries, a compile that does
   actual inference work — made unique per variant through a padding
   binding, so cold-phase requests can never collide in the cache. *)
let source ~variant =
  Printf.sprintf
    "double :: Num a => a -> a\n\
     double x = x + x\n\
     pad%d = %d\n\
     main = double 21\n"
    variant variant

let request ~op ~variant =
  Json.to_line
    (Json.Obj
       [
         ("op", Json.Str op);
         ("id", Json.Int variant);
         ("src", Json.Str (source ~variant));
       ])

let latency_prefix = "serve/latency/"

(* Total latency observations vs. the request counter — the serve
   telemetry invariant, on any registry (including a merged one). *)
let latency_totals (m : Metrics.t) =
  let scratch = Metrics.create () in
  let acc = Metrics.histogram scratch "acc" in
  List.iter
    (fun (name, h) ->
      if String.starts_with ~prefix:latency_prefix name then
        Metrics.merge_hist ~into:acc h)
    (Metrics.histograms m);
  acc

let invariant_holds (m : Metrics.t) =
  let requests =
    match List.assoc_opt "serve/requests" (Metrics.counters m) with
    | Some n -> n
    | None -> 0
  in
  Metrics.hist_count (latency_totals m) = requests

let run_phase ~label ~workers ~config ~clock (lines : string array) =
  let i = ref 0 in
  let next () =
    if !i >= Array.length lines then None
    else begin
      let l = lines.(!i) in
      incr i;
      Some l
    end
  in
  let t0 = clock () in
  let summary = Pool.run ~workers ~config ~next ~emit:(fun _ -> ()) () in
  let dt = clock () -. t0 in
  let acc = latency_totals summary.Pool.metrics in
  let n = Array.length lines in
  ( {
      ph_label = label;
      ph_requests = n;
      ph_elapsed_s = dt;
      ph_rps = (if dt > 0. then float_of_int n /. dt else 0.);
      ph_p50_us = Metrics.quantile acc 0.5;
      ph_p99_us = Metrics.quantile acc 0.99;
      ph_ok = summary.Pool.stats.Serve.ok;
      ph_failed = summary.Pool.stats.Serve.failed;
    },
    summary )

let run ?(clients = 4) ?(requests = 64) ?(workers = 1) ?(op = `Run)
    ?(cache_mb = 64) ?(verify_every = 0) ?(deadline_ms = 0)
    ?(clock = Unix.gettimeofday) () =
  let clients = max 1 clients in
  let requests = max clients requests in
  let op_name = match op with `Run -> "run" | `Check -> "check" in
  let cache =
    Cache.create ~max_bytes:(cache_mb * 1024 * 1024) ~verify_every ()
  in
  let config =
    {
      Serve.default_config with
      Serve.default_deadline_ms = deadline_ms;
      Serve.hooks =
        {
          Serve.no_hooks with
          Serve.compile =
            Some
              (fun ~opts ~passes ~src ->
                Cache.compile_run cache ~opts ~passes ~src);
          check = Some (fun ~opts ~src -> Cache.check cache ~opts ~src);
        };
    }
  in
  (* Cold: request [i] carries variant [i] — every source distinct.
     Hot: variants cycle over a fresh block of [clients] programs, so
     each misses once (warm-up) and hits thereafter. *)
  let cold_lines =
    Array.init requests (fun i -> request ~op:op_name ~variant:i)
  in
  let hot_lines =
    Array.init requests (fun i ->
        request ~op:op_name ~variant:(requests + (i mod clients)))
  in
  let cold, cold_summary =
    run_phase ~label:"cold" ~workers ~config ~clock cold_lines
  in
  let hot, hot_summary =
    run_phase ~label:"hot" ~workers ~config ~clock hot_lines
  in
  let counter name =
    match List.assoc_opt name (Metrics.counters (Cache.metrics cache)) with
    | Some n -> n
    | None -> 0
  in
  (* overload/robustness tallies across both phases, so the bench gate
     can bound the shed rate and crash count of a whole run *)
  let by_class cls =
    let of_summary (s : Pool.summary) =
      match List.assoc_opt cls s.Pool.stats.Serve.by_class with
      | Some n -> n
      | None -> 0
    in
    of_summary cold_summary + of_summary hot_summary
  in
  {
    clients;
    requests;
    workers;
    op = op_name;
    cold;
    hot;
    speedup = (if cold.ph_rps > 0. then hot.ph_rps /. cold.ph_rps else 0.);
    invariant_ok = invariant_holds hot_summary.Pool.metrics;
    cache_hits = counter "scale/cache/hits";
    cache_misses = counter "scale/cache/misses";
    shed = by_class "shed";
    worker_crashes = by_class "worker-crash";
    restarts = cold_summary.Pool.restarts + hot_summary.Pool.restarts;
  }

(* ---- rendering ---- *)

let phase_json p =
  Json.Obj
    [
      ("requests", Json.Int p.ph_requests);
      ("elapsed_ms", Json.Int (int_of_float (p.ph_elapsed_s *. 1000.)));
      ("rps", Json.Int (int_of_float p.ph_rps));
      ("p50_us", Json.Int p.ph_p50_us);
      ("p99_us", Json.Int p.ph_p99_us);
      ("ok", Json.Int p.ph_ok);
      ("failed", Json.Int p.ph_failed);
    ]

let report_json r =
  Json.Obj
    [
      ("bench", Json.Str "serve");
      ("clients", Json.Int r.clients);
      ("requests", Json.Int r.requests);
      ("workers", Json.Int r.workers);
      ("op", Json.Str r.op);
      ("cold", phase_json r.cold);
      ("hot", phase_json r.hot);
      ("hot_speedup_x100", Json.Int (int_of_float (r.speedup *. 100.)));
      ("invariant_ok", Json.Bool r.invariant_ok);
      ("cache_hits", Json.Int r.cache_hits);
      ("cache_misses", Json.Int r.cache_misses);
      ("shed", Json.Int r.shed);
      ("worker_crashes", Json.Int r.worker_crashes);
      ("restarts", Json.Int r.restarts);
    ]

(* The trajectory rows, in the same record shape the bechamel harness
   writes (bench/bench_util.ml), so scripts/bench_gate.py can compare a
   fresh run against the committed BENCH_SERVE.json baseline. *)
let write_bench_rows ~dir r =
  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v
  in
  let backend = Printf.sprintf "workers=%d" r.workers in
  let rows =
    [
      ("cold_rps", r.cold.ph_rps);
      ("hot_rps", r.hot.ph_rps);
      ("hot_speedup", r.speedup);
      ("p50_ms/cold", float_of_int r.cold.ph_p50_us /. 1000.);
      ("p99_ms/cold", float_of_int r.cold.ph_p99_us /. 1000.);
      ("p50_ms/hot", float_of_int r.hot.ph_p50_us /. 1000.);
      ("p99_ms/hot", float_of_int r.hot.ph_p99_us /. 1000.);
      (* robustness counts (not *_ms: excluded from the gate's ratio
         normalization, available to absolute --slo bounds) *)
      ("shed", float_of_int r.shed);
      ("worker_crashes", float_of_int r.worker_crashes);
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (m, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           {|  {"experiment": "serve", "backend": %S, "metric": %S, "value": %s}|}
           backend m (num v)))
    rows;
  Buffer.add_string buf "\n]\n";
  let path = Filename.concat dir "BENCH_SERVE.json" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  path
