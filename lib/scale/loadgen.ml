(** Load generator (see the interface for the phase design). *)

module Serve = Typeclasses.Serve
module Metrics = Tc_obs.Metrics
module Json = Tc_obs.Json

type phase = {
  ph_label : string;
  ph_requests : int;
  ph_elapsed_s : float;
  ph_rps : float;
  ph_p50_us : int;
  ph_p99_us : int;
  ph_ok : int;
  ph_failed : int;
}

type report = {
  clients : int;
  requests : int;
  workers : int;
  op : string;
  mode : string;  (* "inproc" (direct Pool.run) or "socket" (TCP) *)
  cold : phase;
  hot : phase;
  speedup : float;
  invariant_ok : bool;
  cache_hits : int;
  cache_misses : int;
  shed : int;
  worker_crashes : int;
  restarts : int;
}

(* A small but real program — classes, dictionaries, a compile that does
   actual inference work — made unique per variant through a padding
   binding, so cold-phase requests can never collide in the cache. *)
let source ~variant =
  Printf.sprintf
    "double :: Num a => a -> a\n\
     double x = x + x\n\
     pad%d = %d\n\
     main = double 21\n"
    variant variant

let request ~op ~variant =
  Json.to_line
    (Json.Obj
       [
         ("op", Json.Str op);
         ("id", Json.Int variant);
         ("src", Json.Str (source ~variant));
       ])

let latency_prefix = "serve/latency/"

(* Total latency observations vs. the request counter — the serve
   telemetry invariant, on any registry (including a merged one). *)
let latency_totals (m : Metrics.t) =
  let scratch = Metrics.create () in
  let acc = Metrics.histogram scratch "acc" in
  List.iter
    (fun (name, h) ->
      if String.starts_with ~prefix:latency_prefix name then
        Metrics.merge_hist ~into:acc h)
    (Metrics.histograms m);
  acc

let invariant_holds (m : Metrics.t) =
  let requests =
    match List.assoc_opt "serve/requests" (Metrics.counters m) with
    | Some n -> n
    | None -> 0
  in
  Metrics.hist_count (latency_totals m) = requests

let run_phase ~label ~workers ~config ~clock (lines : string array) =
  let i = ref 0 in
  let next () =
    if !i >= Array.length lines then None
    else begin
      let l = lines.(!i) in
      incr i;
      Some l
    end
  in
  let t0 = clock () in
  let summary = Pool.run ~workers ~config ~next ~emit:(fun _ -> ()) () in
  let dt = clock () -. t0 in
  let acc = latency_totals summary.Pool.metrics in
  let n = Array.length lines in
  ( {
      ph_label = label;
      ph_requests = n;
      ph_elapsed_s = dt;
      ph_rps = (if dt > 0. then float_of_int n /. dt else 0.);
      ph_p50_us = Metrics.quantile acc 0.5;
      ph_p99_us = Metrics.quantile acc 0.99;
      ph_ok = summary.Pool.stats.Serve.ok;
      ph_failed = summary.Pool.stats.Serve.failed;
    },
    summary )

let run ?(clients = 4) ?(requests = 64) ?(workers = 1) ?(op = `Run)
    ?(cache_mb = 64) ?(verify_every = 0) ?(deadline_ms = 0)
    ?(clock = Tc_support.Mono.now_s) () =
  let clients = max 1 clients in
  let requests = max clients requests in
  let op_name = match op with `Run -> "run" | `Check -> "check" in
  let cache =
    Cache.create ~max_bytes:(cache_mb * 1024 * 1024) ~verify_every ()
  in
  let config =
    {
      Serve.default_config with
      Serve.default_deadline_ms = deadline_ms;
      Serve.hooks =
        {
          Serve.no_hooks with
          Serve.compile =
            Some
              (fun ~opts ~passes ~src ->
                Cache.compile_run cache ~opts ~passes ~src);
          check = Some (fun ~opts ~src -> Cache.check cache ~opts ~src);
        };
    }
  in
  (* Cold: request [i] carries variant [i] — every source distinct.
     Hot: variants cycle over a fresh block of [clients] programs, so
     each misses once (warm-up) and hits thereafter. *)
  let cold_lines =
    Array.init requests (fun i -> request ~op:op_name ~variant:i)
  in
  let hot_lines =
    Array.init requests (fun i ->
        request ~op:op_name ~variant:(requests + (i mod clients)))
  in
  let cold, cold_summary =
    run_phase ~label:"cold" ~workers ~config ~clock cold_lines
  in
  let hot, hot_summary =
    run_phase ~label:"hot" ~workers ~config ~clock hot_lines
  in
  let counter name =
    match List.assoc_opt name (Metrics.counters (Cache.metrics cache)) with
    | Some n -> n
    | None -> 0
  in
  (* overload/robustness tallies across both phases, so the bench gate
     can bound the shed rate and crash count of a whole run *)
  let by_class cls =
    let of_summary (s : Pool.summary) =
      match List.assoc_opt cls s.Pool.stats.Serve.by_class with
      | Some n -> n
      | None -> 0
    in
    of_summary cold_summary + of_summary hot_summary
  in
  {
    clients;
    requests;
    workers;
    op = op_name;
    mode = "inproc";
    cold;
    hot;
    speedup = (if cold.ph_rps > 0. then hot.ph_rps /. cold.ph_rps else 0.);
    invariant_ok = invariant_holds hot_summary.Pool.metrics;
    cache_hits = counter "scale/cache/hits";
    cache_misses = counter "scale/cache/misses";
    shed = by_class "shed";
    worker_crashes = by_class "worker-crash";
    restarts = cold_summary.Pool.restarts + hot_summary.Pool.restarts;
  }

(* ---- socket mode ---- *)

(* The same cold/hot experiment, but measured end-to-end through a
   running [mhc serve --listen] — socket transit, reader threads and
   ingest queueing included. Each client thread owns one connection and
   runs a closed loop (send, await response, repeat); latencies are
   client-side wall time. Threads write disjoint slots of the shared
   result arrays, so no locking. *)

let connect ~host ~port =
  let inet =
    try Unix.inet_addr_of_string host
    with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (inet, port));
  fd

let quantile_us (lat : int array) p =
  let xs = Array.of_list (List.filter (fun v -> v >= 0) (Array.to_list lat)) in
  let n = Array.length xs in
  if n = 0 then 0
  else begin
    Array.sort compare xs;
    xs.(min (n - 1) (int_of_float (p *. float_of_int n)))
  end

(* One request over an open connection: send the line, read the
   response line. Returns the raw response. *)
let roundtrip fd ic line =
  let s = line ^ "\n" in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done;
  In_channel.input_line ic

let socket_phase ~label ~clients ~requests ~op ~clock ~host ~port ~variant_of
    () =
  let lat = Array.make requests (-1) in
  let cls = Array.make requests "" in  (* failure class, "" = ok *)
  let client c () =
    try
      let fd = connect ~host ~port in
      let ic = Unix.in_channel_of_descr fd in
      for i = 0 to requests - 1 do
        if i mod clients = c then begin
          let t0 = clock () in
          match roundtrip fd ic (request ~op ~variant:(variant_of i)) with
          | None -> cls.(i) <- "connection-lost"
          | Some resp ->
              lat.(i) <- int_of_float ((clock () -. t0) *. 1e6);
              cls.(i) <-
                (match Json.parse resp with
                | Ok r when Json.member "ok" r = Some (Json.Bool true) -> ""
                | Ok r -> (
                    match
                      Option.bind (Json.member "error" r)
                        (fun e ->
                          Option.bind (Json.member "class" e) Json.to_str)
                    with
                    | Some c -> c
                    | None -> "unknown")
                | Error _ -> "unparseable")
        end
      done;
      Unix.close fd
    with _ ->
      (* connection refused / reset: every remaining slot of this client
         counts as a failure, latencies stay unrecorded *)
      for i = 0 to requests - 1 do
        if i mod clients = c && lat.(i) < 0 && cls.(i) = "" then
          cls.(i) <- "connection-lost"
      done
  in
  let t0 = clock () in
  let threads = List.init clients (fun c -> Thread.create (client c) ()) in
  List.iter Thread.join threads;
  let dt = clock () -. t0 in
  let ok = Array.fold_left (fun n c -> if c = "" then n + 1 else n) 0 cls in
  ( {
      ph_label = label;
      ph_requests = requests;
      ph_elapsed_s = dt;
      ph_rps = (if dt > 0. then float_of_int requests /. dt else 0.);
      ph_p50_us = quantile_us lat 0.5;
      ph_p99_us = quantile_us lat 0.99;
      ph_ok = ok;
      ph_failed = requests - ok;
    },
    cls )

(* Pull the server-side registry through the in-band [metrics] op and
   check the serve invariant on the snapshot JSON: the per-op latency
   counts must sum exactly to [serve/requests]. In pooled mode this is
   the handling worker's view (plus the shared pool/net/cache
   registries) — the invariant holds per worker, so it must hold
   here. *)
let snapshot_probe ~host ~port =
  match
    let fd = connect ~host ~port in
    let ic = Unix.in_channel_of_descr fd in
    let r = roundtrip fd ic (Json.to_line (Json.Obj [ ("op", Json.Str "metrics") ])) in
    Unix.close fd;
    r
  with
  | None | (exception _) -> None
  | Some resp -> (
      match Json.parse resp with
      | Error _ -> None
      | Ok r -> Json.member "metrics" r)

let snapshot_counter snap name =
  match
    Option.bind snap (fun s ->
        Option.bind (Json.member "counters" s) (Json.member name))
  with
  | Some (Json.Int n) -> n
  | _ -> 0

let snapshot_invariant_ok snap =
  match snap with
  | None -> false
  | Some s -> (
      let requests = snapshot_counter snap "serve/requests" in
      match Json.member "histograms" s with
      | Some (Json.Obj hs) ->
          let latency =
            List.fold_left
              (fun acc (name, h) ->
                if String.starts_with ~prefix:latency_prefix name then
                  acc
                  + (match Json.member "count" h with
                    | Some (Json.Int n) -> n
                    | _ -> 0)
                else acc)
              0 hs
          in
          latency = requests
      | _ -> false)

let run_socket ?(clients = 4) ?(requests = 64) ?(op = `Run)
    ?(clock = Tc_support.Mono.now_s) ~host ~port () =
  let clients = max 1 clients in
  let requests = max clients requests in
  let op_name = match op with `Run -> "run" | `Check -> "check" in
  let cold, cold_cls =
    socket_phase ~label:"cold" ~clients ~requests ~op:op_name ~clock ~host
      ~port ~variant_of:Fun.id ()
  in
  let hot, hot_cls =
    socket_phase ~label:"hot" ~clients ~requests ~op:op_name ~clock ~host
      ~port
      ~variant_of:(fun i -> requests + (i mod clients))
      ()
  in
  let by_class c =
    let count cls =
      Array.fold_left (fun n x -> if x = c then n + 1 else n) 0 cls
    in
    count cold_cls + count hot_cls
  in
  let snap = snapshot_probe ~host ~port in
  {
    clients;
    requests;
    workers = 0;  (* the server's business, not the client's *)
    op = op_name;
    mode = "socket";
    cold;
    hot;
    speedup = (if cold.ph_rps > 0. then hot.ph_rps /. cold.ph_rps else 0.);
    invariant_ok = snapshot_invariant_ok snap;
    cache_hits = snapshot_counter snap "scale/cache/hits";
    cache_misses = snapshot_counter snap "scale/cache/misses";
    shed = by_class "shed";
    worker_crashes = by_class "worker-crash";
    restarts = snapshot_counter snap "scale/pool/restarts";
  }

(* ---- rendering ---- *)

let phase_json p =
  Json.Obj
    [
      ("requests", Json.Int p.ph_requests);
      ("elapsed_ms", Json.Int (int_of_float (p.ph_elapsed_s *. 1000.)));
      ("rps", Json.Int (int_of_float p.ph_rps));
      ("p50_us", Json.Int p.ph_p50_us);
      ("p99_us", Json.Int p.ph_p99_us);
      ("ok", Json.Int p.ph_ok);
      ("failed", Json.Int p.ph_failed);
    ]

let report_json r =
  Json.Obj
    [
      ("bench", Json.Str "serve");
      ("clients", Json.Int r.clients);
      ("requests", Json.Int r.requests);
      ("workers", Json.Int r.workers);
      ("op", Json.Str r.op);
      ("mode", Json.Str r.mode);
      ("cold", phase_json r.cold);
      ("hot", phase_json r.hot);
      ("hot_speedup_x100", Json.Int (int_of_float (r.speedup *. 100.)));
      ("invariant_ok", Json.Bool r.invariant_ok);
      ("cache_hits", Json.Int r.cache_hits);
      ("cache_misses", Json.Int r.cache_misses);
      ("shed", Json.Int r.shed);
      ("worker_crashes", Json.Int r.worker_crashes);
      ("restarts", Json.Int r.restarts);
    ]

(* The trajectory rows, in the same record shape the bechamel harness
   writes (bench/bench_util.ml), so scripts/bench_gate.py can compare a
   fresh run against the committed BENCH_SERVE.json baseline.

   Read-merge-write keyed by (backend, metric): the in-process and
   socket benches run as separate invocations but share one file, so
   each overwrites only its own backend's rows and preserves the
   other's. Socket rows use backend ["socket"] with the {e same} metric
   names, so a per-metric SLO bound (the gate applies each bound to
   every backend recording that metric) covers both transports with one
   flag. *)
let write_bench_rows ~dir r =
  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v
  in
  let backend =
    if r.mode = "socket" then "socket"
    else Printf.sprintf "workers=%d" r.workers
  in
  let rows =
    [
      ("cold_rps", r.cold.ph_rps);
      ("hot_rps", r.hot.ph_rps);
      ("hot_speedup", r.speedup);
      ("p50_ms/cold", float_of_int r.cold.ph_p50_us /. 1000.);
      ("p99_ms/cold", float_of_int r.cold.ph_p99_us /. 1000.);
      ("p50_ms/hot", float_of_int r.hot.ph_p50_us /. 1000.);
      ("p99_ms/hot", float_of_int r.hot.ph_p99_us /. 1000.);
      (* robustness counts (not *_ms: excluded from the gate's ratio
         normalization, available to absolute --slo bounds) *)
      ("shed", float_of_int r.shed);
      ("worker_crashes", float_of_int r.worker_crashes);
    ]
  in
  let path = Filename.concat dir "BENCH_SERVE.json" in
  (* rows from a previous invocation under a different backend *)
  let kept =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception _ -> []
    | contents -> (
        match Json.parse contents with
        | Ok (Json.List olds) ->
            List.filter_map
              (fun row ->
                match
                  ( Option.bind (Json.member "backend" row) Json.to_str,
                    Option.bind (Json.member "metric" row) Json.to_str,
                    Option.bind (Json.member "value" row) Json.to_float )
                with
                | Some b, Some m, Some v when b <> backend -> Some (b, m, v)
                | _ -> None)
              olds
        | _ -> [])
  in
  let all = kept @ List.map (fun (m, v) -> (backend, m, v)) rows in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (b, m, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           {|  {"experiment": "serve", "backend": %S, "metric": %S, "value": %s}|}
           b m (num v)))
    all;
  Buffer.add_string buf "\n]\n";
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  path
