(** Pretty-printing of surface syntax (used in diagnostics and dumps). *)

open Tc_support
open Ast

let pp_lit ppf = function
  | LInt n -> Fmt.int ppf n
  | LFloat f -> Fmt.float ppf f
  | LChar c -> Fmt.pf ppf "%C" c
  | LString s -> Fmt.pf ppf "%S" s

let rec pp_styp ppf t = pp_styp_prec 0 ppf t

and pp_styp_prec prec ppf = function
  | TSVar v -> Ident.pp ppf v
  | TSCon c -> Ident.pp ppf c
  | TSApp (f, a) ->
      let doc ppf () = Fmt.pf ppf "%a %a" (pp_styp_prec 1) f (pp_styp_prec 2) a in
      if prec >= 2 then Fmt.parens doc ppf () else doc ppf ()
  | TSFun (a, b) ->
      let doc ppf () = Fmt.pf ppf "%a -> %a" (pp_styp_prec 1) a (pp_styp_prec 0) b in
      if prec >= 1 then Fmt.parens doc ppf () else doc ppf ()
  | TSList t -> Fmt.pf ppf "[%a]" (pp_styp_prec 0) t
  | TSTuple [] -> Fmt.string ppf "()"
  | TSTuple ts ->
      Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") (pp_styp_prec 0)) ts

let pp_pred ppf p = Fmt.pf ppf "%a %a" Ident.pp p.sp_class (pp_styp_prec 2) p.sp_ty

let pp_qtyp ppf (q : sqtyp) =
  match q.sq_context with
  | [] -> pp_styp ppf q.sq_ty
  | [ p ] -> Fmt.pf ppf "%a => %a" pp_pred p pp_styp q.sq_ty
  | ps ->
      Fmt.pf ppf "(%a) => %a" (Fmt.list ~sep:(Fmt.any ", ") pp_pred) ps pp_styp
        q.sq_ty

let rec pp_pat ppf p = pp_pat_prec 0 ppf p

and pp_pat_prec prec ppf (p : pat) =
  match p.p with
  | PVar x -> Ident.pp ppf x
  | PWild -> Fmt.string ppf "_"
  | PLit l -> pp_lit ppf l
  | PCon (c, []) -> Ident.pp ppf c
  | PCon (c, args) when Ident.text c = ":" -> (
      match args with
      | [ h; t ] ->
          let doc ppf () =
            Fmt.pf ppf "%a : %a" (pp_pat_prec 1) h (pp_pat_prec 0) t
          in
          if prec >= 1 then Fmt.parens doc ppf () else doc ppf ()
      | _ -> assert false)
  | PCon (c, args) ->
      let doc ppf () =
        Fmt.pf ppf "%a %a" Ident.pp c
          (Fmt.list ~sep:(Fmt.any " ") (pp_pat_prec 2))
          args
      in
      if prec >= 2 then Fmt.parens doc ppf () else doc ppf ()
  | PTuple [] -> Fmt.string ppf "()"
  | PTuple ps -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_pat) ps
  | PList ps -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") pp_pat) ps
  | PAs (x, q) -> Fmt.pf ppf "%a@@%a" Ident.pp x (pp_pat_prec 2) q

let rec pp_expr ppf e = pp_expr_prec 0 ppf e

and pp_expr_prec prec ppf (e : expr) =
  match e.e with
  | EVar x | ECon x -> Ident.pp ppf x
  | ELit l -> pp_lit ppf l
  | EApp (f, a) ->
      let doc ppf () =
        Fmt.pf ppf "%a %a" (pp_expr_prec 9) f (pp_expr_prec 10) a
      in
      if prec >= 10 then Fmt.parens doc ppf () else doc ppf ()
  | ELam (ps, b) ->
      let doc ppf () =
        Fmt.pf ppf "\\%a -> %a"
          (Fmt.list ~sep:(Fmt.any " ") (pp_pat_prec 2))
          ps pp_expr b
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | ELet (ds, b) ->
      let doc ppf () =
        Fmt.pf ppf "let {%a} in %a" (Fmt.list ~sep:(Fmt.any "; ") pp_decl) ds
          pp_expr b
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | EIf (c, t, f) ->
      let doc ppf () =
        Fmt.pf ppf "if %a then %a else %a" pp_expr c pp_expr t pp_expr f
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | ECase (s, alts) ->
      let doc ppf () =
        Fmt.pf ppf "case %a of {%a}" pp_expr s
          (Fmt.list ~sep:(Fmt.any "; ") pp_alt)
          alts
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | ETuple [] -> Fmt.string ppf "()"
  | ETuple es -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) es
  | EList es -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) es
  | ERange (a, None) -> Fmt.pf ppf "[%a ..]" pp_expr a
  | ERange (a, Some b) -> Fmt.pf ppf "[%a .. %a]" pp_expr a pp_expr b
  | EAnnot (b, t) -> Fmt.pf ppf "(%a :: %a)" pp_expr b pp_qtyp t
  | ENeg b -> Fmt.pf ppf "(- %a)" (pp_expr_prec 10) b
  | EOpSeq (first, rest) ->
      let doc ppf () =
        pp_expr_prec 9 ppf first;
        List.iter
          (fun (op, _, e') ->
            Fmt.pf ppf " %a %a" Ident.pp op (pp_expr_prec 9) e')
          rest
      in
      Fmt.parens doc ppf ()
  | ELeftSection (b, op) -> Fmt.pf ppf "(%a %a)" (pp_expr_prec 9) b Ident.pp op
  | ERightSection (op, b) -> Fmt.pf ppf "(%a %a)" Ident.pp op (pp_expr_prec 9) b

and pp_alt ppf a = Fmt.pf ppf "%a%a" pp_pat a.alt_pat (pp_rhs "->") a.alt_rhs

and pp_rhs sep ppf r =
  (match r.rhs_body with
   | Unguarded e -> Fmt.pf ppf " %s %a" sep pp_expr e
   | Guarded gs ->
       List.iter (fun (c, e) -> Fmt.pf ppf " | %a %s %a" pp_expr c sep pp_expr e) gs);
  match r.rhs_where with
  | [] -> ()
  | ds -> Fmt.pf ppf " where {%a}" (Fmt.list ~sep:(Fmt.any "; ") pp_decl) ds

and pp_decl ppf = function
  | DSig (ns, t, _) ->
      Fmt.pf ppf "%a :: %a" (Fmt.list ~sep:(Fmt.any ", ") Ident.pp) ns pp_qtyp t
  | DFun (n, eq, _) ->
      Fmt.pf ppf "%a %a%a" Ident.pp n
        (Fmt.list ~sep:(Fmt.any " ") (pp_pat_prec 2))
        eq.eq_pats (pp_rhs "=") eq.eq_rhs
  | DPat (p, r, _) -> Fmt.pf ppf "%a%a" pp_pat p (pp_rhs "=") r
  | DFix (a, p, ops, _) ->
      let kw =
        match a with LeftAssoc -> "infixl" | RightAssoc -> "infixr" | NonAssoc -> "infix"
      in
      Fmt.pf ppf "%s %d %a" kw p (Fmt.list ~sep:(Fmt.any ", ") Ident.pp) ops

let pp_top_decl ppf = function
  | TData d ->
      Fmt.pf ppf "data %a%a = %a%s" Ident.pp d.td_name
        (Fmt.list ~sep:Fmt.nop (fun ppf v -> Fmt.pf ppf " %a" Ident.pp v))
        d.td_params
        (Fmt.list ~sep:(Fmt.any " | ") (fun ppf c ->
             Fmt.pf ppf "%a%a" Ident.pp c.cd_name
               (Fmt.list ~sep:Fmt.nop (fun ppf t ->
                    Fmt.pf ppf " %a" (pp_styp_prec 2) t))
               c.cd_args))
        d.td_cons
        (if d.td_deriving = [] then ""
         else
           Fmt.str " deriving (%a)"
             (Fmt.list ~sep:(Fmt.any ", ") Ident.pp)
             d.td_deriving)
  | TSyn s ->
      Fmt.pf ppf "type %a%a = %a" Ident.pp s.ts_name
        (Fmt.list ~sep:Fmt.nop (fun ppf v -> Fmt.pf ppf " %a" Ident.pp v))
        s.ts_params pp_styp s.ts_body
  | TClass c ->
      Fmt.pf ppf "class %s%a %a where {%a}"
        (if c.tc_supers = [] then ""
         else
           Fmt.str "(%a) => " (Fmt.list ~sep:(Fmt.any ", ") pp_pred) c.tc_supers)
        Ident.pp c.tc_name Ident.pp c.tc_var
        (Fmt.list ~sep:(Fmt.any "; ") pp_decl)
        c.tc_body
  | TInstance i ->
      Fmt.pf ppf "instance %s%a %a where {%a}"
        (if i.ti_context = [] then ""
         else
           Fmt.str "(%a) => " (Fmt.list ~sep:(Fmt.any ", ") pp_pred) i.ti_context)
        Ident.pp i.ti_class (pp_styp_prec 2) i.ti_head
        (Fmt.list ~sep:(Fmt.any "; ") pp_decl)
        i.ti_body
  | TDecl d -> pp_decl ppf d

let pp_program ppf (p : program) =
  Fmt.list ~sep:(Fmt.any "@\n") pp_top_decl ppf p
