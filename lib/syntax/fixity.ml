(** Fixity resolution.

    The parser leaves infix expressions as flat sequences ([EOpSeq]); this
    pass rebuilds them into left/right-nested applications once all [infixl]/
    [infixr]/[infix] declarations have been collected. Fixity declarations
    are treated as global (local re-declarations apply program-wide), which
    matches how every realistic program uses them. *)

open Tc_support
open Ast

type fixity = { assoc : assoc; prec : int }

type env = fixity Ident.Map.t

let default_fixity = { assoc = LeftAssoc; prec = 9 }

(** The standard-prelude operator fixities, always in scope. *)
let builtin : env =
  let l p = { assoc = LeftAssoc; prec = p } in
  let r p = { assoc = RightAssoc; prec = p } in
  let n p = { assoc = NonAssoc; prec = p } in
  List.fold_left
    (fun m (name, fx) -> Ident.Map.add (Ident.intern name) fx m)
    Ident.Map.empty
    [
      (".", r 9);
      ("!!", l 9);
      ("^", r 8);
      ("*", l 7);
      ("/", l 7);
      ("div", l 7);
      ("mod", l 7);
      ("+", l 6);
      ("-", l 6);
      (":", r 5);
      ("++", r 5);
      ("==", n 4);
      ("/=", n 4);
      ("<", n 4);
      ("<=", n 4);
      (">", n 4);
      (">=", n 4);
      ("elem", n 4);
      ("notElem", n 4);
      ("&&", r 3);
      ("||", r 2);
      ("$", r 0);
    ]

let lookup env op =
  match Ident.Map.find_opt op env with Some f -> f | None -> default_fixity

(** Collect every fixity declaration in a program into [env]. *)
let collect_program (env : env) (prog : program) : env =
  let env = ref env in
  let add assoc prec ops =
    List.iter (fun op -> env := Ident.Map.add op { assoc; prec } !env) ops
  in
  let rec decl = function
    | DFix (a, p, ops, _) -> add a p ops
    | DFun (_, eq, _) -> rhs eq.eq_rhs
    | DPat (_, r, _) -> rhs r
    | DSig _ -> ()
  and rhs r = List.iter decl r.rhs_where
  in
  List.iter
    (function
      | TDecl d -> decl d
      | TClass c -> List.iter decl c.tc_body
      | TInstance i -> List.iter decl i.ti_body
      | TData _ | TSyn _ -> ())
    prog;
  !env

(* ------------------------------------------------------------------ *)
(* Rebuilding operator sequences.                                      *)
(* ------------------------------------------------------------------ *)

let op_expr op loc =
  let s = Ident.text op in
  let node =
    if String.length s > 0 && (s.[0] = ':' || (s.[0] >= 'A' && s.[0] <= 'Z'))
    then ECon op
    else EVar op
  in
  mk_expr ~loc node

let apply_op op oloc lhs rhs =
  let loc = Loc.merge lhs.e_loc rhs.e_loc in
  mk_expr ~loc (EApp (mk_expr ~loc (EApp (op_expr op oloc, lhs)), rhs))

(** Precedence-climbing resolution of a flat sequence. *)
let resolve_seq env first rest : expr =
  (* [climb lhs rest min_prec] consumes operators of precedence >= min_prec. *)
  let rec climb lhs rest min_prec =
    match rest with
    | [] -> (lhs, [])
    | (op, oloc, rhs0) :: rest1 ->
        let { assoc; prec } = lookup env op in
        if prec < min_prec then (lhs, rest)
        else begin
          (* check for an ambiguous same-precedence neighbour *)
          (match rest1 with
           | (op2, oloc2, _) :: _ ->
               let f2 = lookup env op2 in
               if f2.prec = prec
                  && (assoc = NonAssoc || f2.assoc = NonAssoc || assoc <> f2.assoc)
               then
                 Diagnostic.errorf ~loc:oloc2
                   "ambiguous use of operators '%s' and '%s' with equal \
                    precedence %d: add parentheses"
                   (Ident.text op) (Ident.text op2) prec
           | [] -> ());
          let sub_min = match assoc with RightAssoc -> prec | _ -> prec + 1 in
          let rhs, rest2 = climb rhs0 rest1 sub_min in
          climb (apply_op op oloc lhs rhs) rest2 min_prec
        end
  in
  match climb first rest 0 with
  | e, [] -> e
  | _, (op, oloc, _) :: _ ->
      Diagnostic.errorf ~loc:oloc "cannot resolve operator '%s'" (Ident.text op)

(* ------------------------------------------------------------------ *)
(* Traversal.                                                          *)
(* ------------------------------------------------------------------ *)

let rec expr env (e : expr) : expr =
  let mk node = { e with e = node } in
  match e.e with
  | EVar _ | ECon _ | ELit _ -> e
  | EApp (f, a) -> mk (EApp (expr env f, expr env a))
  | ELam (ps, b) -> mk (ELam (ps, expr env b))
  | ELet (ds, b) -> mk (ELet (List.map (decl env) ds, expr env b))
  | EIf (c, t, f) -> mk (EIf (expr env c, expr env t, expr env f))
  | ECase (s, alts) -> mk (ECase (expr env s, List.map (alt env) alts))
  | ETuple es -> mk (ETuple (List.map (expr env) es))
  | EList es -> mk (EList (List.map (expr env) es))
  | ERange (a, b) -> mk (ERange (expr env a, Option.map (expr env) b))
  | EAnnot (b, t) -> mk (EAnnot (expr env b, t))
  | ENeg b -> mk (ENeg (expr env b))
  | EOpSeq (first, rest) ->
      let first = expr env first in
      let rest = List.map (fun (op, l, e') -> (op, l, expr env e')) rest in
      resolve_seq env first rest
  | ELeftSection (b, op) -> mk (ELeftSection (expr env b, op))
  | ERightSection (op, b) -> mk (ERightSection (op, expr env b))

and alt env a = { a with alt_rhs = rhs env a.alt_rhs }

and rhs env r =
  let body =
    match r.rhs_body with
    | Unguarded e -> Unguarded (expr env e)
    | Guarded gs -> Guarded (List.map (fun (c, e) -> (expr env c, expr env e)) gs)
  in
  { r with rhs_body = body; rhs_where = List.map (decl env) r.rhs_where }

and decl env = function
  | DSig _ as d -> d
  | DFix _ as d -> d
  | DFun (n, eq, l) -> DFun (n, { eq with eq_rhs = rhs env eq.eq_rhs }, l)
  | DPat (p, r, l) -> DPat (p, rhs env r, l)

let top_decl env = function
  | TDecl d -> TDecl (decl env d)
  | TClass c -> TClass { c with tc_body = List.map (decl env) c.tc_body }
  | TInstance i -> TInstance { i with ti_body = List.map (decl env) i.ti_body }
  | (TData _ | TSyn _) as d -> d

(** Resolve all operator sequences in [prog], using fixities declared in
    [prog] itself plus the builtin table. *)
let resolve_program ?(env = builtin) (prog : program) : program * env =
  let env = collect_program env prog in
  (List.map (top_decl env) prog, env)
