(** Haskell-style layout (offside rule): inserts virtual open/close braces
    and semicolons into a lexed token stream. Blocks open after [let],
    [where] and [of] (and at the start of the file).

    Divergence from the Haskell report: the parse-error(t) rule is replaced
    by a special case for [in]; blocks ending mid-line before a closing
    bracket need explicit braces. *)

(** Lay out an already-lexed stream. *)
val layout : Token.spanned list -> Token.spanned list

(** Lex and lay out in one step. *)
val tokenize : file:string -> string -> Token.spanned list
