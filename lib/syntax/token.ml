(** Tokens of the MiniHaskell surface language. *)

type t =
  (* identifiers and literals *)
  | VARID of string   (* lower-case identifier: names, type variables *)
  | CONID of string   (* upper-case identifier: constructors, classes, tycons *)
  | VARSYM of string  (* symbolic operator: ==, +, ... *)
  | CONSYM of string  (* symbolic constructor operator: only ":" is used *)
  | INT of int
  | FLOAT of float
  | CHAR of char
  | STRING of string
  (* keywords *)
  | KW_case
  | KW_class
  | KW_data
  | KW_deriving
  | KW_else
  | KW_if
  | KW_in
  | KW_infix
  | KW_infixl
  | KW_infixr
  | KW_instance
  | KW_let
  | KW_of
  | KW_then
  | KW_type
  | KW_where
  (* reserved operators *)
  | EQUALS       (* = *)
  | DCOLON       (* :: *)
  | DARROW       (* => *)
  | ARROW        (* -> *)
  | LAMBDA       (* \ *)
  | BAR          (* | *)
  | UNDERSCORE   (* _ *)
  | AT           (* @ *)
  | DOTDOT       (* .. *)
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | BACKQUOTE
  | LBRACE      (* explicit { *)
  | RBRACE      (* explicit } *)
  | SEMI        (* explicit ; *)
  (* inserted by the layout algorithm *)
  | VLBRACE
  | VRBRACE
  | VSEMI
  | EOF

let keyword_table =
  [
    ("case", KW_case);
    ("class", KW_class);
    ("data", KW_data);
    ("deriving", KW_deriving);
    ("else", KW_else);
    ("if", KW_if);
    ("in", KW_in);
    ("infix", KW_infix);
    ("infixl", KW_infixl);
    ("infixr", KW_infixr);
    ("instance", KW_instance);
    ("let", KW_let);
    ("of", KW_of);
    ("then", KW_then);
    ("type", KW_type);
    ("where", KW_where);
  ]

let to_string = function
  | VARID s | CONID s | VARSYM s | CONSYM s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | CHAR c -> Printf.sprintf "%C" c
  | STRING s -> Printf.sprintf "%S" s
  | KW_case -> "case"
  | KW_class -> "class"
  | KW_data -> "data"
  | KW_deriving -> "deriving"
  | KW_else -> "else"
  | KW_if -> "if"
  | KW_in -> "in"
  | KW_infix -> "infix"
  | KW_infixl -> "infixl"
  | KW_infixr -> "infixr"
  | KW_instance -> "instance"
  | KW_let -> "let"
  | KW_of -> "of"
  | KW_then -> "then"
  | KW_type -> "type"
  | KW_where -> "where"
  | EQUALS -> "="
  | DCOLON -> "::"
  | DARROW -> "=>"
  | ARROW -> "->"
  | LAMBDA -> "\\"
  | BAR -> "|"
  | UNDERSCORE -> "_"
  | AT -> "@"
  | DOTDOT -> ".."
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | BACKQUOTE -> "`"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | VLBRACE -> "{(layout)"
  | VRBRACE -> "}(layout)"
  | VSEMI -> ";(layout)"
  | EOF -> "<eof>"

let pp ppf t = Fmt.string ppf (to_string t)

(** A token paired with its source span. *)
type spanned = { tok : t; loc : Tc_support.Loc.t }
