(** Abstract syntax of the MiniHaskell surface language. *)

open Tc_support

type id = Ident.t

type lit =
  | LInt of int
  | LFloat of float
  | LChar of char
  | LString of string

(* ------------------------------------------------------------------ *)
(* Types as written in the source.                                     *)
(* ------------------------------------------------------------------ *)

type styp =
  | TSVar of id                (* a *)
  | TSCon of id                (* Int, Maybe, ... *)
  | TSApp of styp * styp       (* Maybe a; left-nested application *)
  | TSFun of styp * styp       (* t1 -> t2 *)
  | TSList of styp             (* [t] *)
  | TSTuple of styp list       (* (t1, t2, ...); [] is the unit type *)

(** A single class constraint, e.g. [Eq a]. The constrained type is usually a
    variable; instance heads constrain a constructor application. *)
type spred = { sp_class : id; sp_ty : styp; sp_loc : Loc.t }

(** A qualified type: [context => type]. *)
type sqtyp = { sq_context : spred list; sq_ty : styp; sq_loc : Loc.t }

(* ------------------------------------------------------------------ *)
(* Patterns.                                                           *)
(* ------------------------------------------------------------------ *)

type pat = { p : pat_node; p_loc : Loc.t }

and pat_node =
  | PVar of id
  | PWild
  | PLit of lit
  | PCon of id * pat list      (* constructor pattern, fully applied *)
  | PTuple of pat list
  | PList of pat list          (* [p1, p2, ...] *)
  | PAs of id * pat            (* x@p *)

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)
(* ------------------------------------------------------------------ *)

type expr = { e : expr_node; e_loc : Loc.t }

and expr_node =
  | EVar of id
  | ECon of id
  | ELit of lit
  | EApp of expr * expr
  | ELam of pat list * expr
  | ELet of decl list * expr
  | EIf of expr * expr * expr
  | ECase of expr * alt list
  | ETuple of expr list        (* (e1, e2, ...); [] is the unit value *)
  | EList of expr list
  | ERange of expr * expr option  (* [a..b] / [a..] *)
  | EAnnot of expr * sqtyp     (* e :: ty *)
  | ENeg of expr               (* unary minus; resolves to [negate] *)
  (* A flat infix sequence [e0 op1 e1 op2 e2 ...]; rewritten into
     applications by {!Fixity.resolve} once fixities are known. *)
  | EOpSeq of expr * (id * Loc.t * expr) list
  | ELeftSection of expr * id  (* (e op) *)
  | ERightSection of id * expr (* (op e) *)

and alt = { alt_pat : pat; alt_rhs : rhs }

(** Right-hand side: either a plain expression or boolean guards, plus an
    optional [where] block. *)
and rhs = { rhs_body : guarded; rhs_where : decl list; rhs_loc : Loc.t }

and guarded =
  | Unguarded of expr
  | Guarded of (expr * expr) list  (* [(condition, body); ...] *)

(* ------------------------------------------------------------------ *)
(* Declarations.                                                       *)
(* ------------------------------------------------------------------ *)

and assoc = LeftAssoc | RightAssoc | NonAssoc

(** Declarations that may appear in [let]/[where] blocks (and, lifted, at the
    top level). A function may be defined by several adjacent equations; the
    parser emits one [DFun] per equation and {!group_equations} merges them. *)
and decl =
  | DSig of id list * sqtyp * Loc.t          (* f, g :: ty *)
  | DFun of id * equation * Loc.t            (* one defining equation *)
  | DPat of pat * rhs * Loc.t                (* pattern binding, incl. x = e *)
  | DFix of assoc * int * id list * Loc.t    (* fixity declaration *)

and equation = { eq_pats : pat list; eq_rhs : rhs }

(* ------------------------------------------------------------------ *)
(* Top-level declarations.                                             *)
(* ------------------------------------------------------------------ *)

type con_decl = {
  cd_name : id;
  cd_args : styp list;
  cd_loc : Loc.t;
}

type data_decl = {
  td_name : id;
  td_params : id list;
  td_cons : con_decl list;
  td_deriving : id list;
  td_loc : Loc.t;
}

type syn_decl = {
  ts_name : id;
  ts_params : id list;
  ts_body : styp;
  ts_loc : Loc.t;
}

type class_decl = {
  tc_supers : spred list;      (* superclass context, constrains tc_var *)
  tc_name : id;
  tc_var : id;                 (* the class type variable *)
  tc_body : decl list;         (* method signatures and default methods *)
  tc_loc : Loc.t;
}

type inst_decl = {
  ti_context : spred list;     (* instance context *)
  ti_class : id;
  ti_head : styp;              (* T a1 ... an *)
  ti_body : decl list;         (* method definitions *)
  ti_loc : Loc.t;
}

type top_decl =
  | TData of data_decl
  | TSyn of syn_decl
  | TClass of class_decl
  | TInstance of inst_decl
  | TDecl of decl

type program = top_decl list

(* ------------------------------------------------------------------ *)
(* Grouping adjacent equations of the same function.                   *)
(* ------------------------------------------------------------------ *)

(** A function binding after grouping: name and its defining equations. *)
type fun_bind = { fb_name : id; fb_equations : equation list; fb_loc : Loc.t }

type binding =
  | BFun of fun_bind
  | BPat of pat * rhs * Loc.t

(** Declarations of a block, separated into signatures, fixities and
    bindings, with adjacent equations of the same name merged. *)
type grouped = {
  g_sigs : (id list * sqtyp * Loc.t) list;
  g_fixes : (assoc * int * id list * Loc.t) list;
  g_binds : binding list;
}

let group_decls (ds : decl list) : grouped =
  let sigs = ref [] and fixes = ref [] and binds = ref [] in
  let flush_fun = ref None in
  let flush () =
    match !flush_fun with
    | None -> ()
    | Some fb ->
        binds := BFun { fb with fb_equations = List.rev fb.fb_equations } :: !binds;
        flush_fun := None
  in
  let add_eq name eq loc =
    match !flush_fun with
    | Some fb when Ident.equal fb.fb_name name ->
        flush_fun := Some { fb with fb_equations = eq :: fb.fb_equations }
    | _ ->
        flush ();
        flush_fun := Some { fb_name = name; fb_equations = [ eq ]; fb_loc = loc }
  in
  List.iter
    (fun d ->
      match d with
      | DSig (ns, t, l) ->
          flush ();
          sigs := (ns, t, l) :: !sigs
      | DFix (a, p, ns, l) ->
          flush ();
          fixes := (a, p, ns, l) :: !fixes
      | DFun (name, eq, l) -> add_eq name eq l
      | DPat (p, r, l) ->
          flush ();
          binds := BPat (p, r, l) :: !binds)
    ds;
  flush ();
  { g_sigs = List.rev !sigs; g_fixes = List.rev !fixes; g_binds = List.rev !binds }

(* ------------------------------------------------------------------ *)
(* Small helpers.                                                      *)
(* ------------------------------------------------------------------ *)

let mk_expr ~loc e = { e; e_loc = loc }
let mk_pat ~loc p = { p; p_loc = loc }

(** Variables bound by a pattern, left to right. *)
let rec pat_vars (p : pat) : id list =
  match p.p with
  | PVar x -> [ x ]
  | PWild | PLit _ -> []
  | PCon (_, ps) | PTuple ps | PList ps -> List.concat_map pat_vars ps
  | PAs (x, q) -> x :: pat_vars q

(** Apply a function expression to arguments, left-nested. *)
let apply f args =
  List.fold_left
    (fun acc a -> mk_expr ~loc:(Loc.merge f.e_loc a.e_loc) (EApp (acc, a)))
    f args
