(** Haskell-style layout (offside rule).

    Rewrites a lexed token stream, inserting virtual open/close braces and
    semicolons so the parser can treat blocks uniformly. Blocks open after
    [let], [where] and [of] (and at the start of the file); entries are
    separated by lines starting at the block's reference column; a line
    starting further left closes the block.

    Divergence from the Haskell report: the general parse-error(t) rule is
    replaced by a special case for [in] (which closes an open [let] block).
    Blocks that must end mid-line before a closing bracket therefore need
    explicit braces, e.g. [(case x of { True -> 1; False -> 2 })]. *)

open Tc_support

type opener = Top | Let | Where | Of

type context =
  | Explicit              (* opened by a literal '{' *)
  | Implicit of int * opener  (* reference column *)

let layout (tokens : Token.spanned list) : Token.spanned list =
  let out = ref [] in
  let emit_at loc tok = out := { Token.tok; loc } :: !out in
  let stack : context list ref = ref [] in
  let push c = stack := c :: !stack in
  let pop () = match !stack with [] -> () | _ :: rest -> stack := rest in
  let prev_line = ref 0 in
  (* [None] = not expecting a block open; [Some opener] = the previous
     significant token was let/where/of (or start of file). *)
  let expecting = ref (Some Top) in
  let rec close_on_newline (t : Token.spanned) =
    match !stack with
    | Implicit (m, _) :: _ when t.loc.start_pos.col < m ->
        emit_at t.loc Token.VRBRACE;
        pop ();
        close_on_newline t
    | Implicit (m, _) :: _ when t.loc.start_pos.col = m ->
        (* A semicolon would separate entries, but [in] instead closes the
           block via the special rule below. *)
        if t.tok <> Token.KW_in then emit_at t.loc Token.VSEMI
    | _ -> ()
  in
  let process (t : Token.spanned) =
    (match !expecting with
     | Some opener ->
         expecting := None;
         (match t.tok with
          | Token.LBRACE -> () (* explicit block; handled below *)
          | Token.EOF ->
              (* empty input / empty block at end of file: {} *)
              emit_at t.loc Token.VLBRACE;
              emit_at t.loc Token.VRBRACE
          | _ ->
              let n = t.loc.start_pos.col in
              let enclosing_col =
                match !stack with
                | Implicit (m, _) :: _ -> m
                | _ -> 0
              in
              if n > enclosing_col then begin
                emit_at t.loc Token.VLBRACE;
                push (Implicit (n, opener))
              end
              else begin
                (* empty block: {} then reprocess the line start *)
                emit_at t.loc Token.VLBRACE;
                emit_at t.loc Token.VRBRACE;
                if t.loc.start_pos.line <> !prev_line then close_on_newline t
              end)
     | None ->
         if t.loc.start_pos.line <> !prev_line then close_on_newline t;
         (* [in] closes the implicit block of the nearest open [let]. *)
         (match t.tok, !stack with
          | Token.KW_in, Implicit (_, Let) :: _ ->
              emit_at t.loc Token.VRBRACE;
              pop ()
          | _ -> ()));
    (match t.tok with
     | Token.LBRACE -> push Explicit
     | Token.RBRACE -> (
         match !stack with
         | Explicit :: _ -> pop ()
         | _ ->
             Diagnostic.errorf ~loc:t.loc
               "unexpected '}': no matching explicit '{'")
     | _ -> ());
    (match t.tok with
     | Token.EOF ->
         (* close any remaining implicit blocks *)
         let rec close_all () =
           match !stack with
           | Implicit _ :: _ ->
               emit_at t.loc Token.VRBRACE;
               pop ();
               close_all ()
           | _ -> ()
         in
         close_all ();
         emit_at t.loc Token.EOF
     | _ -> emit_at t.loc t.tok);
    prev_line := t.loc.end_pos.line;
    match t.tok with
    | Token.KW_let -> expecting := Some Let
    | Token.KW_where -> expecting := Some Where
    | Token.KW_of -> expecting := Some Of
    | _ -> ()
  in
  List.iter process tokens;
  List.rev !out

(** Convenience: lex and lay out in one step. *)
let tokenize ~file src = layout (Lexer.tokenize ~file src)
