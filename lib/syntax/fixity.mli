(** Fixity resolution: rebuild the parser's flat operator sequences into
    applications once [infixl]/[infixr]/[infix] declarations are known. *)

open Tc_support

type fixity = { assoc : Ast.assoc; prec : int }

type env = fixity Ident.Map.t

(** Unknown operators default to [infixl 9]. *)
val default_fixity : fixity

(** The standard-prelude operator table. *)
val builtin : env

val lookup : env -> Ident.t -> fixity

(** Collect every fixity declaration of a program. *)
val collect_program : env -> Ast.program -> env

(** Resolve operator sequences in one expression. *)
val expr : env -> Ast.expr -> Ast.expr

(** Resolve operator sequences in one top-level declaration. *)
val top_decl : env -> Ast.top_decl -> Ast.top_decl

(** Resolve a whole program, using its own fixity declarations plus the
    builtin table; returns the extended environment. *)
val resolve_program : ?env:env -> Ast.program -> Ast.program * env
