(** Pretty-printing of surface syntax (diagnostics and dumps). *)

val pp_lit : Format.formatter -> Ast.lit -> unit
val pp_styp : Format.formatter -> Ast.styp -> unit
val pp_styp_prec : int -> Format.formatter -> Ast.styp -> unit
val pp_pred : Format.formatter -> Ast.spred -> unit
val pp_qtyp : Format.formatter -> Ast.sqtyp -> unit
val pp_pat : Format.formatter -> Ast.pat -> unit
val pp_pat_prec : int -> Format.formatter -> Ast.pat -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_top_decl : Format.formatter -> Ast.top_decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit
