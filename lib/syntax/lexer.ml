(** Hand-written lexer for MiniHaskell.

    Produces a list of located tokens; the layout algorithm ({!Layout}) then
    inserts virtual braces and semicolons before parsing. *)

open Tc_support

type state = {
  src : string;
  file : string;
  mutable pos : int;   (* byte offset *)
  mutable line : int;  (* 1-based *)
  mutable col : int;   (* 1-based *)
}

let make ~file src = { src; file; pos = 0; line = 1; col = 1 }

let is_eof st = st.pos >= String.length st.src
let peek st = if is_eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (is_eof st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let here st : Loc.pos = { line = st.line; col = st.col }

let span st start_pos : Loc.t =
  Loc.make ~file:st.file ~start_pos ~end_pos:{ line = st.line; col = st.col - 1 }

let error st fmt =
  Diagnostic.errorf ~loc:(Loc.point ~file:st.file ~line:st.line ~col:st.col) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'
let is_symbol_char c = String.contains "!#$%&*+./<=>?@\\^|-~:" c

let take_while st pred =
  let buf = Buffer.create 16 in
  while (not (is_eof st)) && pred (peek st) do
    Buffer.add_char buf (peek st);
    advance st
  done;
  Buffer.contents buf

(* Skip whitespace and comments; returns unit, positioned at next token. *)
let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_trivia st
  | '-' when peek2 st = '-' ->
      (* "--" begins a line comment only if the maximal symbol run is all
         dashes (so "-->" stays an operator, as in Haskell). *)
      let all_dashes =
        let rec scan i =
          if i >= String.length st.src then true
          else if st.src.[i] = '-' then scan (i + 1)
          else not (is_symbol_char st.src.[i])
        in
        scan st.pos
      in
      if all_dashes then begin
        while (not (is_eof st)) && peek st <> '\n' do
          advance st
        done;
        skip_trivia st
      end
  | '{' when peek2 st = '-' ->
      advance st;
      advance st;
      skip_block_comment st 1;
      skip_trivia st
  | _ -> ()

and skip_block_comment st depth =
  if depth = 0 then ()
  else if is_eof st then error st "unterminated block comment"
  else if peek st = '{' && peek2 st = '-' then begin
    advance st;
    advance st;
    skip_block_comment st (depth + 1)
  end
  else if peek st = '-' && peek2 st = '}' then begin
    advance st;
    advance st;
    skip_block_comment st (depth - 1)
  end
  else begin
    advance st;
    skip_block_comment st depth
  end

let escape_char st =
  match peek st with
  | 'n' -> advance st; '\n'
  | 't' -> advance st; '\t'
  | 'r' -> advance st; '\r'
  | '\\' -> advance st; '\\'
  | '\'' -> advance st; '\''
  | '"' -> advance st; '"'
  | '0' -> advance st; '\000'
  | c -> error st "unknown escape sequence '\\%c'" c

let lex_char st =
  advance st (* opening quote *);
  let c =
    match peek st with
    | '\\' ->
        advance st;
        escape_char st
    | '\'' -> error st "empty character literal"
    | '\000' -> error st "unterminated character literal"
    | c ->
        advance st;
        c
  in
  if peek st <> '\'' then error st "unterminated character literal"
  else begin
    advance st;
    Token.CHAR c
  end

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | '"' ->
        advance st;
        Token.STRING (Buffer.contents buf)
    | '\000' -> error st "unterminated string literal"
    | '\n' -> error st "newline in string literal"
    | '\\' ->
        advance st;
        Buffer.add_char buf (escape_char st);
        go ()
    | c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let lex_number st =
  let int_part = take_while st is_digit in
  let is_float =
    peek st = '.' && is_digit (peek2 st)
  in
  if is_float then begin
    advance st (* '.' *);
    let frac = take_while st is_digit in
    let exp =
      if peek st = 'e' || peek st = 'E' then begin
        advance st;
        let sign =
          if peek st = '+' || peek st = '-' then begin
            let c = peek st in
            advance st;
            String.make 1 c
          end
          else ""
        in
        let digits = take_while st is_digit in
        if digits = "" then error st "malformed float exponent";
        "e" ^ sign ^ digits
      end
      else ""
    in
    Token.FLOAT (float_of_string (int_part ^ "." ^ frac ^ exp))
  end
  else Token.INT (int_of_string int_part)

let lex_symbol st =
  let s = take_while st is_symbol_char in
  match s with
  | "=" -> Token.EQUALS
  | "::" -> Token.DCOLON
  | "=>" -> Token.DARROW
  | "->" -> Token.ARROW
  | "\\" -> Token.LAMBDA
  | "|" -> Token.BAR
  | "@" -> Token.AT
  | ".." -> Token.DOTDOT
  | _ -> if s.[0] = ':' then Token.CONSYM s else Token.VARSYM s

let next_token st : Token.spanned =
  skip_trivia st;
  let start_pos = here st in
  let finish tok = { Token.tok; loc = span st start_pos } in
  if is_eof st then finish Token.EOF
  else
    match peek st with
    | '(' -> advance st; finish Token.LPAREN
    | ')' -> advance st; finish Token.RPAREN
    | '[' -> advance st; finish Token.LBRACKET
    | ']' -> advance st; finish Token.RBRACKET
    | ',' -> advance st; finish Token.COMMA
    | '`' -> advance st; finish Token.BACKQUOTE
    | '{' -> advance st; finish Token.LBRACE
    | '}' -> advance st; finish Token.RBRACE
    | ';' -> advance st; finish Token.SEMI
    | '\'' -> finish (lex_char st)
    | '"' -> finish (lex_string st)
    | '_' when not (is_ident_char (peek2 st)) ->
        advance st;
        finish Token.UNDERSCORE
    | c when is_digit c -> finish (lex_number st)
    | c when is_ident_start c || c = '_' ->
        let s = take_while st is_ident_char in
        let tok =
          match List.assoc_opt s Token.keyword_table with
          | Some kw -> kw
          | None ->
              if s.[0] >= 'A' && s.[0] <= 'Z' then Token.CONID s else Token.VARID s
        in
        finish tok
    | c when is_symbol_char c -> finish (lex_symbol st)
    | c -> error st "unexpected character %C" c

(** Tokenize an entire input. The resulting list always ends with [EOF]. *)
let tokenize ~file src =
  let st = make ~file src in
  let rec go acc =
    let t = next_token st in
    match t.Token.tok with Token.EOF -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []
