(** Recursive-descent parser over the layout-processed token stream.
    Infix expressions are left as flat sequences for {!Fixity.resolve_program}. *)

(** Parse a complete program.

    Without [sink], raises {!Tc_support.Diagnostic.Error} with a located
    message on the first syntax error (fail-fast). With [sink], parse
    errors are recorded in the sink and the parser resynchronizes at the
    next layout-inferred top-level declaration, so every malformed
    declaration yields its own diagnostic; the declarations that did parse
    are returned. Lexer errors still raise. *)
val parse_program :
  ?sink:Tc_support.Diagnostic.Sink.sink -> file:string -> string -> Ast.program

(** Parse an already-lexed, layout-processed token stream. Callers that
    need to time lexing, layout and parsing separately run
    {!Lexer.tokenize} and {!Layout.layout} themselves and hand the result
    here; [parse_program ~file src] is equivalent to composing the three.
    With [recover], parse errors are reported through the callback and
    parsing resynchronizes at the next top-level declaration. *)
val parse_program_tokens :
  ?recover:(Tc_support.Diagnostic.t -> unit) ->
  Token.spanned list ->
  Ast.program

(** Parse a single expression (tests, REPL). *)
val parse_expression : file:string -> string -> Ast.expr
