(** Recursive-descent parser over the layout-processed token stream.
    Infix expressions are left as flat sequences for {!Fixity.resolve_program}. *)

(** Parse a complete program. Raises {!Tc_support.Diagnostic.Error} with a
    located message on syntax errors. *)
val parse_program : file:string -> string -> Ast.program

(** Parse a single expression (tests, REPL). *)
val parse_expression : file:string -> string -> Ast.expr
