(** Hand-written lexer for MiniHaskell. *)

(** Tokenize an entire input. The result always ends with [EOF]. Raises
    {!Tc_support.Diagnostic.Error} on malformed input (unterminated
    literals or comments, unknown characters). *)
val tokenize : file:string -> string -> Token.spanned list
