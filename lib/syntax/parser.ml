(** Recursive-descent parser for MiniHaskell.

    Operates on the layout-processed token stream ({!Layout.tokenize}).
    Infix expressions are parsed as flat operator sequences ([EOpSeq]) and
    rebuilt into applications by {!Fixity.resolve} once fixity declarations
    have been collected. *)

open Tc_support
open Ast

type state = {
  toks : Token.spanned array;
  mutable pos : int;
  (* The deepest failure seen while backtracking: (position, diagnostic).
     When a later parse fails *before* that point, the deeper error is the
     more specific one and is reported instead, so speculative parses
     (signatures, function-binding heads, contexts) never hide the real
     problem. *)
  mutable furthest : (int * Diagnostic.t) option;
}

let make_state toks = { toks = Array.of_list toks; pos = 0; furthest = None }

let peek st = st.toks.(st.pos).Token.tok
let peek_loc st = st.toks.(st.pos).Token.loc

let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Token.tok
  else Token.EOF

let advance st =
  let t = st.toks.(st.pos) in
  if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1;
  t

(** Record a failure caught during backtracking, keeping the deepest one. *)
let note st (d : Diagnostic.t) =
  match st.furthest with
  | Some (p, _) when p >= st.pos -> ()
  | _ -> st.furthest <- Some (st.pos, d)

(** Raise [d], unless a noted backtracking failure got strictly further —
    then that one carries the more specific message. *)
let raise_best st (d : Diagnostic.t) =
  match st.furthest with
  | Some (p, fd) when p > st.pos -> raise (Diagnostic.Error fd)
  | _ -> raise (Diagnostic.Error d)

let error st fmt =
  Format.kasprintf
    (fun message ->
      raise_best st
        (Diagnostic.make ~severity:Diagnostic.Error ~loc:(peek_loc st) message))
    ("parse error: " ^^ fmt ^^ " (found '%s')")

let fail_expect st what = error st "expected %s" what (Token.to_string (peek st))

let expect st tok what =
  if peek st = tok then advance st else fail_expect st what

let accept st tok = if peek st = tok then (ignore (advance st); true) else false

(* ------------------------------------------------------------------ *)
(* Small token classifiers.                                            *)
(* ------------------------------------------------------------------ *)

let is_varid st = match peek st with Token.VARID _ -> true | _ -> false
let is_conid st = match peek st with Token.CONID _ -> true | _ -> false

(** A variable name: [x] or a parenthesized operator [(==)] / [(:)] . *)
let parse_var st =
  match peek st with
  | Token.VARID s ->
      let t = advance st in
      (Ident.intern s, t.loc)
  | Token.LPAREN -> (
      match peek2 st with
      | Token.VARSYM s | Token.CONSYM s ->
          let l = (advance st).loc in
          ignore (advance st);
          let r = expect st Token.RPAREN "')'" in
          (Ident.intern s, Loc.merge l r.loc)
      | _ -> fail_expect st "a variable")
  | _ -> fail_expect st "a variable"

let parse_conid st =
  match peek st with
  | Token.CONID s ->
      let t = advance st in
      (Ident.intern s, t.loc)
  | _ -> fail_expect st "a constructor or type name"

let parse_varid st =
  match peek st with
  | Token.VARID s ->
      let t = advance st in
      (Ident.intern s, t.loc)
  | _ -> fail_expect st "an identifier"

(** An infix operator occurrence: symbolic, [:], or a backquoted name.
    Returns [None] without consuming if the next token is not an operator. *)
let peek_operator st : (Ident.t * Loc.t * int) option =
  (* third component: number of tokens the operator occupies *)
  match peek st with
  | Token.VARSYM s -> Some (Ident.intern s, peek_loc st, 1)
  | Token.CONSYM s -> Some (Ident.intern s, peek_loc st, 1)
  | Token.BACKQUOTE -> (
      match peek2 st with
      | Token.VARID s | Token.CONID s ->
          if st.pos + 2 < Array.length st.toks
             && st.toks.(st.pos + 2).Token.tok = Token.BACKQUOTE
          then Some (Ident.intern s, peek_loc st, 3)
          else None
      | _ -> None)
  | _ -> None

let consume_operator st n =
  for _ = 1 to n do
    ignore (advance st)
  done

(* ------------------------------------------------------------------ *)
(* Blocks: { p ; p ; ... } with virtual or explicit braces.             *)
(* ------------------------------------------------------------------ *)

let parse_block ?recover st (parse_item : state -> 'a) : 'a list =
  let close =
    if accept st Token.VLBRACE then Token.VRBRACE
    else if accept st Token.LBRACE then Token.RBRACE
    else fail_expect st "a block"
  in
  let items = ref [] in
  let rec skip_semis () =
    if accept st Token.SEMI || accept st Token.VSEMI then skip_semis ()
  in
  (* Skip forward to the next item boundary: a separator or close brace at
     bracket depth 0. The layout pass inserts VSEMI exactly at each
     declaration that starts at the block's reference column, so for the
     top-level block this resynchronizes at the next top-level
     declaration. *)
  let resync () =
    let depth = ref 0 in
    let stop = ref false in
    while not !stop do
      match peek st with
      | Token.EOF -> stop := true
      | Token.VLBRACE | Token.LBRACE ->
          incr depth;
          ignore (advance st)
      | Token.VRBRACE | Token.RBRACE ->
          if !depth > 0 then begin
            decr depth;
            ignore (advance st)
          end
          else if peek2 st = Token.EOF then
            (* the block's own close: recovery only runs on the top-level
               block, so its close brace is always followed by EOF *)
            stop := true
          else
            (* a stray closer from a block left unfinished at the error
               point (e.g. an aborted [let]): skip it and keep scanning *)
            ignore (advance st)
      | (Token.VSEMI | Token.SEMI) when !depth = 0 -> stop := true
      | _ -> ignore (advance st)
    done
  in
  let rec go () =
    skip_semis ();
    if peek st = close then ignore (advance st)
    else if peek st = Token.EOF && recover <> None then
      (* a recovery skip consumed the close; treat EOF as end of block *)
      ()
    else begin
      let start = st.pos in
      match
        let item = parse_item st in
        items := item :: !items;
        match peek st with
        | t when t = close -> `Close
        | Token.SEMI | Token.VSEMI -> `More
        | _ -> fail_expect st "';' or end of block"
      with
      | `Close -> ignore (advance st)
      | `More -> go ()
      | exception Diagnostic.Error d -> (
          match recover with
          | None -> raise (Diagnostic.Error d)
          | Some report ->
              report d;
              st.furthest <- None;
              if st.pos = start then ignore (advance st);
              resync ();
              go ())
    end
  in
  go ();
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Types.                                                              *)
(* ------------------------------------------------------------------ *)

let rec parse_qtyp st : sqtyp =
  let start = peek_loc st in
  (* A context is syntactically a btype followed by '=>'; we detect it by
     backtracking. *)
  let saved = st.pos in
  let context =
    match try_parse_context st with
    | Some ctx when peek st = Token.DARROW ->
        ignore (advance st);
        ctx
    | _ ->
        st.pos <- saved;
        []
  in
  let t = parse_typ st in
  { sq_context = context; sq_ty = t; sq_loc = Loc.merge start (peek_loc st) }

and try_parse_context st : spred list option =
  try
    if peek st = Token.LPAREN && not (is_pred_start (peek2 st)) then None
    else if peek st = Token.LPAREN then begin
      (* ( C t, C t, ... ) => ... *)
      ignore (advance st);
      if accept st Token.RPAREN then Some []
      else begin
        let preds = ref [ parse_pred st ] in
        while accept st Token.COMMA do
          preds := parse_pred st :: !preds
        done;
        ignore (expect st Token.RPAREN "')'");
        Some (List.rev !preds)
      end
    end
    else if is_conid st then Some [ parse_pred st ]
    else None
  with Diagnostic.Error d ->
    note st d;
    None

and is_pred_start = function Token.CONID _ -> true | _ -> false

and parse_pred st : spred =
  let cls, l = parse_conid st in
  let ty = parse_atype st in
  { sp_class = cls; sp_ty = ty; sp_loc = Loc.merge l (peek_loc st) }

and parse_typ st : styp =
  let t = parse_btype st in
  if accept st Token.ARROW then TSFun (t, parse_typ st) else t

and parse_btype st : styp =
  let head = parse_atype st in
  let rec go acc =
    if starts_atype st then go (TSApp (acc, parse_atype st)) else acc
  in
  go head

and starts_atype st =
  match peek st with
  | Token.CONID _ | Token.VARID _ | Token.LPAREN | Token.LBRACKET -> true
  | _ -> false

and parse_atype st : styp =
  match peek st with
  | Token.CONID s ->
      ignore (advance st);
      TSCon (Ident.intern s)
  | Token.VARID s ->
      ignore (advance st);
      TSVar (Ident.intern s)
  | Token.LBRACKET ->
      ignore (advance st);
      let t = parse_typ st in
      ignore (expect st Token.RBRACKET "']'");
      TSList t
  | Token.LPAREN ->
      ignore (advance st);
      if accept st Token.RPAREN then TSTuple []
      else begin
        let t = parse_typ st in
        if accept st Token.COMMA then begin
          let ts = ref [ parse_typ st; t ] in
          while accept st Token.COMMA do
            ts := parse_typ st :: !ts
          done;
          ignore (expect st Token.RPAREN "')'");
          TSTuple (List.rev !ts)
        end
        else begin
          ignore (expect st Token.RPAREN "')'");
          t
        end
      end
  | _ -> fail_expect st "a type"

(* ------------------------------------------------------------------ *)
(* Patterns.                                                           *)
(* ------------------------------------------------------------------ *)

let rec parse_pat st : pat =
  (* cons is the only infix constructor: right-associative *)
  let p = parse_pat10 st in
  match peek st with
  | Token.CONSYM ":" ->
      ignore (advance st);
      let rest = parse_pat st in
      mk_pat ~loc:(Loc.merge p.p_loc rest.p_loc)
        (PCon (Ident.intern ":", [ p; rest ]))
  | _ -> p

and parse_pat10 st : pat =
  match peek st with
  | Token.CONID s when starts_apat_after_con st ->
      let l = (advance st).loc in
      let args = parse_apats st in
      let last_loc =
        match List.rev args with a :: _ -> a.p_loc | [] -> l
      in
      mk_pat ~loc:(Loc.merge l last_loc) (PCon (Ident.intern s, args))
  | _ -> parse_apat st

and starts_apat_after_con st =
  match peek2 st with
  | Token.VARID _ | Token.CONID _ | Token.UNDERSCORE | Token.LPAREN
  | Token.LBRACKET | Token.INT _ | Token.FLOAT _ | Token.CHAR _
  | Token.STRING _ ->
      true
  | _ -> false

and parse_apats st : pat list =
  if starts_apat st then
    let p = parse_apat st in
    p :: parse_apats st
  else []

and starts_apat st =
  match peek st with
  | Token.VARID _ | Token.CONID _ | Token.UNDERSCORE | Token.LPAREN
  | Token.LBRACKET | Token.INT _ | Token.FLOAT _ | Token.CHAR _
  | Token.STRING _ ->
      true
  | _ -> false

and parse_apat st : pat =
  let loc = peek_loc st in
  match peek st with
  | Token.VARID s ->
      ignore (advance st);
      let x = Ident.intern s in
      if accept st Token.AT then
        let p = parse_apat st in
        mk_pat ~loc:(Loc.merge loc p.p_loc) (PAs (x, p))
      else mk_pat ~loc (PVar x)
  | Token.UNDERSCORE ->
      ignore (advance st);
      mk_pat ~loc PWild
  | Token.CONID s ->
      ignore (advance st);
      mk_pat ~loc (PCon (Ident.intern s, []))
  | Token.INT n ->
      ignore (advance st);
      mk_pat ~loc (PLit (LInt n))
  | Token.FLOAT f ->
      ignore (advance st);
      mk_pat ~loc (PLit (LFloat f))
  | Token.CHAR c ->
      ignore (advance st);
      mk_pat ~loc (PLit (LChar c))
  | Token.STRING s ->
      ignore (advance st);
      mk_pat ~loc (PLit (LString s))
  | Token.VARSYM "-" when (match peek2 st with Token.INT _ | Token.FLOAT _ -> true | _ -> false) ->
      ignore (advance st);
      (match advance st with
       | { Token.tok = Token.INT n; _ } -> mk_pat ~loc (PLit (LInt (-n)))
       | { Token.tok = Token.FLOAT f; _ } -> mk_pat ~loc (PLit (LFloat (-.f)))
       | _ -> assert false)
  | Token.LBRACKET ->
      ignore (advance st);
      if accept st Token.RBRACKET then mk_pat ~loc (PList [])
      else begin
        let ps = ref [ parse_pat st ] in
        while accept st Token.COMMA do
          ps := parse_pat st :: !ps
        done;
        let close = expect st Token.RBRACKET "']'" in
        mk_pat ~loc:(Loc.merge loc close.loc) (PList (List.rev !ps))
      end
  | Token.LPAREN ->
      ignore (advance st);
      if accept st Token.RPAREN then mk_pat ~loc (PTuple [])
      else begin
        let p = parse_pat st in
        if accept st Token.COMMA then begin
          let ps = ref [ parse_pat st; p ] in
          while accept st Token.COMMA do
            ps := parse_pat st :: !ps
          done;
          let close = expect st Token.RPAREN "')'" in
          mk_pat ~loc:(Loc.merge loc close.loc) (PTuple (List.rev !ps))
        end
        else begin
          ignore (expect st Token.RPAREN "')'");
          p
        end
      end
  | _ -> fail_expect st "a pattern"

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : expr =
  let e = parse_opseq st in
  if accept st Token.DCOLON then
    let t = parse_qtyp st in
    mk_expr ~loc:(Loc.merge e.e_loc t.sq_loc) (EAnnot (e, t))
  else e

and parse_opseq st : expr =
  let first = parse_operand st in
  let rec go acc =
    match peek_operator st with
    (* an operator directly followed by ')' belongs to a left section *)
    | Some (op, oloc, n) when peek_after st n <> Token.RPAREN ->
        consume_operator st n;
        let operand = parse_operand st in
        go ((op, oloc, operand) :: acc)
    | Some _ | None -> acc
  in
  let rhs = List.rev (go []) in
  if rhs = [] then first
  else
    let last = match List.rev rhs with (_, _, e) :: _ -> e | [] -> first in
    mk_expr ~loc:(Loc.merge first.e_loc last.e_loc) (EOpSeq (first, rhs))

and parse_operand st : expr =
  match peek st with
  | Token.VARSYM "-" ->
      let l = (advance st).loc in
      let e = parse_operand st in
      mk_expr ~loc:(Loc.merge l e.e_loc) (ENeg e)
  | _ -> parse_exp10 st

and parse_exp10 st : expr =
  let loc = peek_loc st in
  match peek st with
  | Token.LAMBDA ->
      ignore (advance st);
      let ps = parse_apats st in
      if ps = [] then fail_expect st "lambda parameters";
      ignore (expect st Token.ARROW "'->'");
      let body = parse_expr st in
      mk_expr ~loc:(Loc.merge loc body.e_loc) (ELam (ps, body))
  | Token.KW_let ->
      ignore (advance st);
      let ds = parse_block st parse_decl in
      ignore (expect st Token.KW_in "'in'");
      let body = parse_expr st in
      mk_expr ~loc:(Loc.merge loc body.e_loc) (ELet (ds, body))
  | Token.KW_if ->
      ignore (advance st);
      let c = parse_expr st in
      ignore (expect st Token.KW_then "'then'");
      let t = parse_expr st in
      ignore (expect st Token.KW_else "'else'");
      let f = parse_expr st in
      mk_expr ~loc:(Loc.merge loc f.e_loc) (EIf (c, t, f))
  | Token.KW_case ->
      ignore (advance st);
      let scrut = parse_expr st in
      ignore (expect st Token.KW_of "'of'");
      let alts = parse_block st parse_alt in
      mk_expr ~loc:(Loc.merge loc (peek_loc st)) (ECase (scrut, alts))
  | _ -> parse_fexp st

and parse_alt st : alt =
  let p = parse_pat st in
  let rhs = parse_rhs st ~sep:Token.ARROW in
  { alt_pat = p; alt_rhs = rhs }

and parse_fexp st : expr =
  let head = parse_aexp st in
  let rec go acc =
    if starts_aexp st then
      let a = parse_aexp st in
      go (mk_expr ~loc:(Loc.merge acc.e_loc a.e_loc) (EApp (acc, a)))
    else acc
  in
  go head

and starts_aexp st =
  match peek st with
  | Token.VARID _ | Token.CONID _ | Token.INT _ | Token.FLOAT _
  | Token.CHAR _ | Token.STRING _ | Token.LPAREN | Token.LBRACKET ->
      true
  | _ -> false

and parse_aexp st : expr =
  let loc = peek_loc st in
  match peek st with
  | Token.VARID s ->
      ignore (advance st);
      mk_expr ~loc (EVar (Ident.intern s))
  | Token.CONID s ->
      ignore (advance st);
      mk_expr ~loc (ECon (Ident.intern s))
  | Token.INT n ->
      ignore (advance st);
      mk_expr ~loc (ELit (LInt n))
  | Token.FLOAT f ->
      ignore (advance st);
      mk_expr ~loc (ELit (LFloat f))
  | Token.CHAR c ->
      ignore (advance st);
      mk_expr ~loc (ELit (LChar c))
  | Token.STRING s ->
      ignore (advance st);
      mk_expr ~loc (ELit (LString s))
  | Token.LBRACKET ->
      ignore (advance st);
      if accept st Token.RBRACKET then mk_expr ~loc (EList [])
      else begin
        let first = parse_expr st in
        if accept st Token.DOTDOT then
          (* arithmetic sequence: [a..] or [a..b] *)
          if accept st Token.RBRACKET then
            mk_expr ~loc:(Loc.merge loc (peek_loc st)) (ERange (first, None))
          else begin
            let upper = parse_expr st in
            let close = expect st Token.RBRACKET "']'" in
            mk_expr ~loc:(Loc.merge loc close.loc) (ERange (first, Some upper))
          end
        else begin
          let es = ref [ first ] in
          while accept st Token.COMMA do
            es := parse_expr st :: !es
          done;
          let close = expect st Token.RBRACKET "']'" in
          mk_expr ~loc:(Loc.merge loc close.loc) (EList (List.rev !es))
        end
      end
  | Token.LPAREN -> parse_paren st loc
  | _ -> fail_expect st "an expression"

and parse_paren st loc : expr =
  ignore (advance st);
  (* () | (op) | (op e) | (e) | (e, ...) | (e op) *)
  if accept st Token.RPAREN then mk_expr ~loc (ETuple [])
  else
    match peek_operator st with
    | Some (op, oloc, n) when n = 1 && Ident.text op <> "-" ->
        (* symbolic operator directly after '(': (op) or right section *)
        consume_operator st n;
        if accept st Token.RPAREN then
          mk_expr ~loc:(Loc.merge loc oloc) (operator_ref op oloc)
        else begin
          let e = parse_opseq st in
          let close = expect st Token.RPAREN "')'" in
          mk_expr ~loc:(Loc.merge loc close.loc) (ERightSection (op, e))
        end
    | _ ->
        let e = parse_expr st in
        if accept st Token.COMMA then begin
          let es = ref [ parse_expr st; e ] in
          while accept st Token.COMMA do
            es := parse_expr st :: !es
          done;
          let close = expect st Token.RPAREN "')'" in
          mk_expr ~loc:(Loc.merge loc close.loc) (ETuple (List.rev !es))
        end
        else
          match peek_operator st with
          | Some (op, _, n) when peek_after st n = Token.RPAREN ->
              consume_operator st n;
              let close = expect st Token.RPAREN "')'" in
              mk_expr ~loc:(Loc.merge loc close.loc) (ELeftSection (e, op))
          | _ ->
              let close = expect st Token.RPAREN "')'" in
              mk_expr ~loc:(Loc.merge loc close.loc) e.e

and peek_after st n =
  if st.pos + n < Array.length st.toks then st.toks.(st.pos + n).Token.tok
  else Token.EOF

and operator_ref op oloc : expr_node =
  ignore oloc;
  let s = Ident.text op in
  if s = ":" || (String.length s > 0 && s.[0] = ':') then ECon op else EVar op

(* ------------------------------------------------------------------ *)
(* Right-hand sides, guards, where.                                    *)
(* ------------------------------------------------------------------ *)

and parse_rhs st ~sep : rhs =
  let loc = peek_loc st in
  let body =
    if peek st = Token.BAR then begin
      let guards = ref [] in
      while accept st Token.BAR do
        let cond = parse_expr st in
        ignore (expect st sep (if sep = Token.EQUALS then "'='" else "'->'"));
        let e = parse_expr st in
        guards := (cond, e) :: !guards
      done;
      Guarded (List.rev !guards)
    end
    else begin
      ignore (expect st sep (if sep = Token.EQUALS then "'='" else "'->'"));
      Unguarded (parse_expr st)
    end
  in
  let where_decls =
    if accept st Token.KW_where then parse_block st parse_decl else []
  in
  { rhs_body = body; rhs_where = where_decls; rhs_loc = Loc.merge loc (peek_loc st) }

(* ------------------------------------------------------------------ *)
(* Declarations.                                                       *)
(* ------------------------------------------------------------------ *)

and parse_decl st : decl =
  let loc = peek_loc st in
  match peek st with
  | Token.KW_infixl | Token.KW_infixr | Token.KW_infix ->
      let assoc =
        match (advance st).tok with
        | Token.KW_infixl -> LeftAssoc
        | Token.KW_infixr -> RightAssoc
        | _ -> NonAssoc
      in
      let prec =
        match peek st with
        | Token.INT n when n >= 0 && n <= 9 ->
            ignore (advance st);
            n
        | _ -> fail_expect st "a precedence between 0 and 9"
      in
      let ops = ref [] in
      let rec get_ops () =
        match peek_operator st with
        | Some (op, _, n) ->
            consume_operator st n;
            ops := op :: !ops;
            if accept st Token.COMMA then get_ops ()
        | None -> fail_expect st "an operator"
      in
      get_ops ();
      DFix (assoc, prec, List.rev !ops, Loc.merge loc (peek_loc st))
  | _ ->
      (* try a type signature: vars :: qtyp *)
      let saved = st.pos in
      (match try_parse_sig st loc with
       | Some d -> d
       | None ->
           st.pos <- saved;
           parse_bind st loc)

and try_parse_sig st loc : decl option =
  (* Speculative part: the 'vars ::' head. A '::' commits us to a
     signature, so errors in the type that follows are real and must
     propagate rather than being swallowed by backtracking. *)
  let head =
    try
      let names = ref [ fst (parse_var st) ] in
      while accept st Token.COMMA do
        names := fst (parse_var st) :: !names
      done;
      if accept st Token.DCOLON then Some (List.rev !names) else None
    with Diagnostic.Error d ->
      note st d;
      None
  in
  match head with
  | None -> None
  | Some names ->
      let t = parse_qtyp st in
      Some (DSig (names, t, Loc.merge loc t.sq_loc))

and parse_bind st loc : decl =
  (* Attempt 1: function binding  var apat+ rhs  (or (op) apat+ rhs).
     Only the head 'var apat*' is speculative — an '='/'|' after it
     commits to this form, so errors in the right-hand side propagate
     instead of being retried (and mis-reported) as a pattern binding. *)
  let saved = st.pos in
  let funbind_head =
    try
      let name, name_loc = parse_var st in
      let pats = parse_apats st in
      if peek st = Token.EQUALS || peek st = Token.BAR then
        Some (name, name_loc, pats)
      else None
    with Diagnostic.Error d ->
      note st d;
      None
  in
  match funbind_head with
  | Some (name, name_loc, pats) ->
      if pats <> [] then
        let rhs = parse_rhs st ~sep:Token.EQUALS in
        DFun (name, { eq_pats = pats; eq_rhs = rhs }, Loc.merge loc rhs.rhs_loc)
      else
        (* a variable binding, e.g.  f = e  or  (==) = primEqInt *)
        let rhs = parse_rhs st ~sep:Token.EQUALS in
        DPat (mk_pat ~loc:name_loc (PVar name), rhs, Loc.merge loc rhs.rhs_loc)
  | None ->
      st.pos <- saved;
      (* Attempt 2: infix definition  pat op pat rhs — same commit point. *)
      let infix_head =
        try
          let p1 = parse_pat10 st in
          match peek_operator st with
          | Some (op, _, n) when Ident.text op <> ":" ->
              consume_operator st n;
              let p2 = parse_pat10 st in
              if peek st = Token.EQUALS || peek st = Token.BAR then
                Some (op, p1, p2)
              else None
          | _ -> None
        with Diagnostic.Error d ->
          note st d;
          None
      in
      (match infix_head with
       | Some (op, p1, p2) ->
           let rhs = parse_rhs st ~sep:Token.EQUALS in
           DFun (op, { eq_pats = [ p1; p2 ]; eq_rhs = rhs }, Loc.merge loc rhs.rhs_loc)
       | None ->
           st.pos <- saved;
           (* Attempt 3: pattern binding  pat rhs. *)
           let p = parse_pat st in
           let rhs = parse_rhs st ~sep:Token.EQUALS in
           DPat (p, rhs, Loc.merge loc rhs.rhs_loc))

(* ------------------------------------------------------------------ *)
(* Top-level declarations.                                             *)
(* ------------------------------------------------------------------ *)

let parse_deriving st : id list =
  if accept st Token.KW_deriving then
    if accept st Token.LPAREN then begin
      if accept st Token.RPAREN then []
      else begin
        let cs = ref [ fst (parse_conid st) ] in
        while accept st Token.COMMA do
          cs := fst (parse_conid st) :: !cs
        done;
        ignore (expect st Token.RPAREN "')'");
        List.rev !cs
      end
    end
    else [ fst (parse_conid st) ]
  else []

let parse_con_decl st : con_decl =
  let name, loc = parse_conid st in
  let rec args acc =
    if starts_atype st then args (parse_atype st :: acc) else List.rev acc
  in
  { cd_name = name; cd_args = args []; cd_loc = loc }

let parse_params st : id list =
  let rec go acc =
    if is_varid st then go (fst (parse_varid st) :: acc) else List.rev acc
  in
  go []

(** Optional context before a class/instance head: [ctx =>]. *)
let parse_opt_context st : spred list =
  let saved = st.pos in
  match try_parse_context st with
  | Some ctx when peek st = Token.DARROW ->
      ignore (advance st);
      ctx
  | _ ->
      st.pos <- saved;
      []

let parse_where_body st : decl list =
  if accept st Token.KW_where then parse_block st parse_decl else []

let parse_top_decl st : top_decl =
  let loc = peek_loc st in
  match peek st with
  | Token.KW_data ->
      ignore (advance st);
      let name, _ = parse_conid st in
      let params = parse_params st in
      ignore (expect st Token.EQUALS "'='");
      let cons = ref [ parse_con_decl st ] in
      while accept st Token.BAR do
        cons := parse_con_decl st :: !cons
      done;
      let deriv = parse_deriving st in
      TData
        {
          td_name = name;
          td_params = params;
          td_cons = List.rev !cons;
          td_deriving = deriv;
          td_loc = Loc.merge loc (peek_loc st);
        }
  | Token.KW_type ->
      ignore (advance st);
      let name, _ = parse_conid st in
      let params = parse_params st in
      ignore (expect st Token.EQUALS "'='");
      let body = parse_typ st in
      TSyn
        {
          ts_name = name;
          ts_params = params;
          ts_body = body;
          ts_loc = Loc.merge loc (peek_loc st);
        }
  | Token.KW_class ->
      ignore (advance st);
      let supers = parse_opt_context st in
      let name, _ = parse_conid st in
      let var, _ = parse_varid st in
      let body = parse_where_body st in
      TClass
        {
          tc_supers = supers;
          tc_name = name;
          tc_var = var;
          tc_body = body;
          tc_loc = Loc.merge loc (peek_loc st);
        }
  | Token.KW_instance ->
      ignore (advance st);
      let ctx = parse_opt_context st in
      let cls, _ = parse_conid st in
      let head = parse_atype st in
      let body = parse_where_body st in
      TInstance
        {
          ti_context = ctx;
          ti_class = cls;
          ti_head = head;
          ti_body = body;
          ti_loc = Loc.merge loc (peek_loc st);
        }
  | _ -> TDecl (parse_decl st)

(** Parse a complete program (the whole file is one layout block).
    With [recover], parse errors are reported through the callback and
    parsing resynchronizes at the next top-level declaration instead of
    aborting. *)
let parse_program_tokens ?recover toks : program =
  let st = make_state toks in
  let decls = parse_block ?recover st parse_top_decl in
  (match recover with
   | None -> ignore (expect st Token.EOF "end of file")
   | Some report ->
       if peek st <> Token.EOF then (
         try ignore (fail_expect st "end of file")
         with Diagnostic.Error d -> report d));
  decls

let parse_program ?sink ~file src : program =
  let toks = Layout.tokenize ~file src in
  match sink with
  | None -> parse_program_tokens toks
  | Some sink ->
      parse_program_tokens ~recover:(Diagnostic.Sink.report sink) toks

(** Parse a single expression (for tests and the REPL-ish API). *)
let parse_expression ~file src : expr =
  let st = make_state (Layout.tokenize ~file src) in
  (* the layout pass wraps the input in a virtual block; skip it *)
  ignore (accept st Token.VLBRACE);
  let e = parse_expr st in
  ignore (accept st Token.VRBRACE);
  ignore (expect st Token.EOF "end of input");
  e
