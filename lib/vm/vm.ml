(** A stack-based interpreter for {!Bytecode}.

    The machine is fully iterative: calls, tail calls and thunk updates
    are explicit frames on a growable frame stack, so deep non-tail
    recursion is reported as a clean {!Tc_eval.Eval.Runtime_error} (the
    [max_frames] budget) instead of a native stack overflow, and the
    {!Tc_eval.Eval.Out_of_fuel} step budget is honoured per instruction.

    Laziness lives in slots: a slot is a mutable cell holding either a
    value, a delayed closure (thunk) or a black hole. Forcing pushes an
    update frame; when it returns, the result is written back into the
    cell (call-by-need sharing, as in the tree evaluator's [Todo]/[Done]
    cells).

    Dictionaries are contiguous slot arrays: [MKDICT n] is one allocation,
    [DICTSEL i] one bounds-checked indexed load. All dictionary operations
    bump the same {!Tc_eval.Counters} the tree evaluator maintains. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval
module Counters = Tc_eval.Counters
module Budget = Tc_resilience.Budget
module Inject = Tc_resilience.Inject
module B = Bytecode

(* The VM reuses the evaluator's exceptions so callers handle both
   backends uniformly. *)
let runtime fmt = Format.kasprintf (fun m -> raise (Eval.Runtime_error m)) fmt

(** A condition the front end or the bytecode compiler is supposed to have
    ruled out; reaching it is a compiler bug, not a user error. *)
let bug fmt =
  Format.kasprintf (fun m -> raise (Eval.Runtime_error ("[BUG] " ^ m))) fmt

type value =
  | VInt of int
  | VFloat of float
  | VChar of char
  | VStr of string                        (* internal message strings *)
  | VData of Eval.rcon * slot array
  | VConPartial of Eval.rcon * slot list  (* unsaturated ctor, args reversed *)
  | VClosure of closure
  | VPap of closure * slot list           (* partial application, in order *)
  | VDict of Core.dict_tag * slot array
  | VPrim of prim * slot list             (* partial primitive, in order *)

and closure = { c_proto : B.proto; c_env : slot array }

and slot = { mutable cell : cell }

and cell =
  | Ready of value
  | Delay of closure
  | Busy  (* black hole *)

and prim = {
  pr_name : string;
  pr_arity : int;
  pr_fn : state -> slot list -> value;
}

(* Frames are mutated in place and reused from a preallocated pool (the
   frame stack), so a call allocates no frame record. *)
and frame = {
  mutable f_proto : B.proto;
  mutable f_code : B.instr array;
  mutable f_pc : int;
  mutable f_locals : slot array;
  mutable f_env : slot array;
  mutable f_base : int;   (* operand-stack watermark to restore on return *)
  mutable f_update : slot option;
                          (* thunk cell to update instead of pushing *)
}

and state = {
  cons : Eval.con_table;
  counters : Counters.t;
  profile : Tc_obs.Profile.rt option;  (* per-site dispatch counts *)
  budget : Budget.meter;    (* steps = instructions on this backend *)
  max_frames : int;         (* frame-stack bound; see [create_state] *)
  mutable protos : B.proto array;
  mutable consts : slot array;
  mutable globals : slot array;
  mutable global_names : (Ident.t * int) list;  (* latest binding first *)
  mutable bools : (value * value) option;  (* cached True/False values *)
  (* operand stack *)
  mutable stack : slot array;
  mutable sp : int;
  (* frame stack *)
  mutable frames : frame array;
  mutable fp : int;
}

let counters (st : state) : Counters.t = st.counters
let meter (st : state) : Budget.meter = st.budget

let ready v = { cell = Ready v }

let dummy_slot = { cell = Busy }

let fresh_frame () =
  {
    f_proto =
      { B.p_name = "<none>"; p_arity = 0; p_nlocals = 0;
        p_captures = [||]; p_code = [||] };
    f_code = [||];
    f_pc = 0;
    f_locals = [||];
    f_env = [||];
    f_base = 0;
    f_update = None;
  }

(* ------------------------------------------------------------------ *)
(* Stacks.                                                             *)
(* ------------------------------------------------------------------ *)

let push (st : state) (s : slot) : unit =
  if st.sp = Array.length st.stack then begin
    let a = Array.make (2 * st.sp) dummy_slot in
    Array.blit st.stack 0 a 0 st.sp;
    st.stack <- a
  end;
  st.stack.(st.sp) <- s;
  st.sp <- st.sp + 1

let pop (st : state) : slot =
  st.sp <- st.sp - 1;
  st.stack.(st.sp)

let make_closure (fr : frame) (proto : B.proto) : closure =
  let caps = proto.B.p_captures in
  let n = Array.length caps in
  if n = 0 then { c_proto = proto; c_env = [||] }
  else begin
    let env = Array.make n dummy_slot in
    for i = 0 to n - 1 do
      env.(i) <-
        (match Array.unsafe_get caps i with
         | B.Cap_local j -> fr.f_locals.(j)
         | B.Cap_env j -> fr.f_env.(j))
    done;
    { c_proto = proto; c_env = env }
  end

(* A proto with no locals never reads or writes a slot, so all its frames
   can share one array. *)
let no_locals = [| dummy_slot |]

let make_locals (proto : B.proto) : slot array =
  if proto.B.p_nlocals = 0 then no_locals
  else Array.make proto.B.p_nlocals dummy_slot

let push_frame (st : state) (proto : B.proto) ~(env : slot array)
    ~(locals : slot array) ~(update : slot option) : unit =
  if st.fp >= st.max_frames then
    Budget.exhausted Budget.Frames ~spent:st.fp ~limit:st.max_frames;
  if st.fp = Array.length st.frames then
    st.frames <-
      Array.init (2 * st.fp) (fun i ->
          if i < st.fp then st.frames.(i) else fresh_frame ());
  let fr = st.frames.(st.fp) in
  fr.f_proto <- proto;
  fr.f_code <- proto.B.p_code;
  fr.f_pc <- 0;
  fr.f_locals <- locals;
  fr.f_env <- env;
  fr.f_base <- st.sp;
  fr.f_update <- update;
  st.fp <- st.fp + 1

(** Begin forcing [s] if it is a thunk (the update frame completes the
    job); no-op when already a value. *)
let start_force (st : state) (s : slot) : unit =
  match s.cell with
  | Ready _ -> ()
  | Busy -> runtime "<<loop>> (value depends on itself)"
  | Delay clo ->
      st.counters.Counters.thunk_forces <-
        st.counters.Counters.thunk_forces + 1;
      s.cell <- Busy;
      push_frame st clo.c_proto ~env:clo.c_env
        ~locals:(make_locals clo.c_proto) ~update:(Some s)

let value_of (s : slot) : value =
  match s.cell with
  | Ready v -> v
  | _ -> bug "expected a forced slot"

(* Synthetic protos for over-application: after an inner call returns a
   function, apply it to the [n] pending arguments held in the frame's
   locals. The table is process-global (protos are immutable and shared
   across every VM state, including states running on other domains in
   the [Tc_scale.Pool] worker pool), so it is guarded by a mutex. *)
let apply_protos : (int, B.proto) Hashtbl.t = Hashtbl.create 8
let apply_protos_lock = Mutex.create ()

let apply_proto (n : int) : B.proto =
  Mutex.lock apply_protos_lock;
  let p =
    match Hashtbl.find_opt apply_protos n with
    | Some p -> p
    | None ->
        let p =
          {
            B.p_name = Printf.sprintf "<apply/%d>" n;
            p_arity = n;
            p_nlocals = n;
            p_captures = [||];
            p_code = [| B.APPLY_LOCALS n |];
          }
        in
        Hashtbl.replace apply_protos n p;
        p
  in
  Mutex.unlock apply_protos_lock;
  p

(* ------------------------------------------------------------------ *)
(* The interpreter loop.                                               *)
(* ------------------------------------------------------------------ *)

let lit_matches (l : Ast.lit) (v : value) : bool =
  match (l, v) with
  | Ast.LInt a, VInt b -> a = b
  | Ast.LFloat a, VFloat b -> a = b
  | Ast.LChar a, VChar b -> a = b
  | Ast.LString a, VStr b -> a = b  (* tag-dispatch branches on type tags *)
  | _ -> false

let return_value (st : state) (v : value) : unit =
  let fr = st.frames.(st.fp - 1) in
  st.sp <- fr.f_base;
  st.fp <- st.fp - 1;
  match fr.f_update with
  | Some s -> s.cell <- Ready v
  | None -> push st (ready v)

(** Apply [fnv] to [args]; [tail] means the current frame is finished and
    should be replaced (or returned through) rather than grown. *)
let rec do_apply (st : state) ~(tail : bool) (fnv : value) (args : slot list) :
    unit =
  st.counters.Counters.applications <-
    st.counters.Counters.applications + List.length args;
  apply_value st ~tail fnv args

and apply_value (st : state) ~tail (fnv : value) (args : slot list) : unit =
  match fnv with
  | VClosure clo -> apply_closure st ~tail clo args
  | VPap (clo, prev) -> apply_closure st ~tail clo (prev @ args)
  | VConPartial (rc, prev) -> apply_con st ~tail rc prev args
  | VPrim (p, prev) -> apply_prim st ~tail p prev args
  | VInt _ | VFloat _ | VChar _ | VStr _ | VData _ | VDict _ ->
      bug "applied a non-function value"

and apply_closure (st : state) ~tail (clo : closure) (args : slot list) : unit =
  let m = clo.c_proto.B.p_arity in
  let n = List.length args in
  if n < m then begin
    st.counters.Counters.allocations <- st.counters.Counters.allocations + 1;
    finish st ~tail (VPap (clo, args))
  end
  else begin
    let locals = make_locals clo.c_proto in
    let rec fill i = function
      | [] -> []
      | a :: rest when i < m ->
          locals.(i) <- a;
          fill (i + 1) rest
      | rest -> rest
    in
    let rest = fill 0 args in
    (if tail then begin
       (* the current frame is done: collapse to its watermark and reuse
          its return obligation *)
       let cur = st.frames.(st.fp - 1) in
       st.sp <- cur.f_base;
       st.fp <- st.fp - 1;
       if rest = [] then
         push_frame st clo.c_proto ~env:clo.c_env ~locals
           ~update:cur.f_update
       else begin
         let k = apply_proto (List.length rest) in
         push_frame st k ~env:[||] ~locals:(Array.of_list rest)
           ~update:cur.f_update;
         push_frame st clo.c_proto ~env:clo.c_env ~locals ~update:None
       end
     end
     else begin
       (if rest <> [] then
          let k = apply_proto (List.length rest) in
          push_frame st k ~env:[||] ~locals:(Array.of_list rest) ~update:None);
       push_frame st clo.c_proto ~env:clo.c_env ~locals ~update:None
     end)
  end

and apply_con (st : state) ~tail (rc : Eval.rcon) (prev : slot list)
    (args : slot list) : unit =
  (* accumulate one argument at a time, as the tree evaluator does *)
  let rec go acc = function
    | [] -> finish st ~tail (VConPartial (rc, acc))
    | a :: rest ->
        let acc' = a :: acc in
        if List.length acc' = rc.Eval.rc_arity then begin
          st.counters.Counters.allocations <-
            st.counters.Counters.allocations + 1;
          let v = VData (rc, Array.of_list (List.rev acc')) in
          if rest = [] then finish st ~tail v
          else apply_value st ~tail v rest (* errors: data is not a function *)
        end
        else go acc' rest
  in
  go prev args

and apply_prim (st : state) ~tail (p : prim) (prev : slot list)
    (args : slot list) : unit =
  let all = prev @ args in
  let n = List.length all in
  if n < p.pr_arity then finish st ~tail (VPrim (p, all))
  else begin
    let rec split i = function
      | rest when i = 0 -> ([], rest)
      | a :: rest ->
          let used, over = split (i - 1) rest in
          (a :: used, over)
      | [] -> assert false
    in
    let used, over = split p.pr_arity all in
    st.counters.Counters.prim_calls <- st.counters.Counters.prim_calls + 1;
    let v = p.pr_fn st used in
    if over = [] then finish st ~tail v else apply_value st ~tail v over
  end

and finish (st : state) ~tail (v : value) : unit =
  if tail then return_value st v else push st (ready v)

(** Execute until the frame stack drops back to depth [stop]. *)
and run_loop (st : state) ~(stop : int) : unit =
  while st.fp > stop do
    let fr = st.frames.(st.fp - 1) in
    Budget.step st.budget;
    Budget.check_allocs st.budget st.counters.Counters.allocations;
    if !Inject.live then Inject.hit Inject.Vm_step;
    st.counters.Counters.steps <- st.counters.Counters.steps + 1;
    let i = fr.f_code.(fr.f_pc) in
    fr.f_pc <- fr.f_pc + 1;
    match i with
    | B.CONST k -> push st st.consts.(k)
    | B.LOCAL i -> push st fr.f_locals.(i)
    | B.LOCALV i ->
        let s = fr.f_locals.(i) in
        push st s;
        start_force st s
    | B.ENV i -> push st fr.f_env.(i)
    | B.ENVV i ->
        let s = fr.f_env.(i) in
        push st s;
        start_force st s
    | B.GLOBAL i -> push st st.globals.(i)
    | B.GLOBALV i ->
        let s = st.globals.(i) in
        push st s;
        start_force st s
    | B.CON rc ->
        if rc.Eval.rc_arity = 0 then begin
          st.counters.Counters.allocations <-
            st.counters.Counters.allocations + 1;
          push st (ready (VData (rc, [||])))
        end
        else push st (ready (VConPartial (rc, [])))
    | B.CLOSURE p ->
        st.counters.Counters.allocations <-
          st.counters.Counters.allocations + 1;
        push st (ready (VClosure (make_closure fr st.protos.(p))))
    | B.DELAY p -> push st { cell = Delay (make_closure fr st.protos.(p)) }
    | B.STORE i -> fr.f_locals.(i) <- pop st
    | B.REC_ALLOC i -> fr.f_locals.(i) <- { cell = Busy }
    | B.REC_SET (l, p) ->
        fr.f_locals.(l).cell <- Delay (make_closure fr st.protos.(p))
    | B.FORCE_LOCAL i -> start_force st fr.f_locals.(i)
    | B.JUMP pc -> fr.f_pc <- pc
    | B.IFELSE pc_false -> (
        match value_of (pop st) with
        | VData (rc, _) -> (
            match Ident.text rc.Eval.rc_name with
            | "True" -> ()
            | "False" -> fr.f_pc <- pc_false
            | s -> bug "if: expected a Bool, got constructor '%s'" s)
        | _ -> bug "if: condition is not a Bool")
    | B.SWITCH sw -> (
        let s = pop st in
        fr.f_locals.(sw.B.sw_scrut) <- s;
        let find_con name =
          let n = Array.length sw.B.sw_cons in
          let rec go i =
            if i >= n then None
            else
              let c, pc = sw.B.sw_cons.(i) in
              if Ident.equal c name then Some pc else go (i + 1)
          in
          go 0
        in
        let find_lit v =
          let n = Array.length sw.B.sw_lits in
          let rec go i =
            if i >= n then None
            else
              let l, pc = sw.B.sw_lits.(i) in
              if lit_matches l v then Some pc else go (i + 1)
          in
          go 0
        in
        let jump = function
          | Some pc -> fr.f_pc <- pc
          | None ->
              if sw.B.sw_default >= 0 then fr.f_pc <- sw.B.sw_default
              else bug "case: no matching alternative"
        in
        match value_of s with
        | VData (rc, _) -> jump (find_con rc.Eval.rc_name)
        | (VInt _ | VFloat _ | VChar _ | VStr _) as v -> jump (find_lit v)
        | _ -> bug "case: scrutinee is not a data value")
    | B.FIELD (l, i) -> (
        match fr.f_locals.(l).cell with
        | Ready (VData (_, fields)) -> push st fields.(i)
        | _ -> bug "FIELD of a non-data value")
    | B.MKDICT (tag, n) ->
        st.counters.Counters.dict_constructions <-
          st.counters.Counters.dict_constructions + 1;
        st.counters.Counters.dict_fields <-
          st.counters.Counters.dict_fields + n;
        st.counters.Counters.allocations <-
          st.counters.Counters.allocations + 1;
        (match st.profile with
         | Some p -> Tc_obs.Profile.hit_dict p tag
         | None -> ());
        let fields = Array.make (max n 1) dummy_slot in
        for k = n - 1 downto 0 do
          fields.(k) <- pop st
        done;
        push st (ready (VDict (tag, if n = 0 then [||] else fields)))
    | B.DICTSEL info -> (
        st.counters.Counters.selections <-
          st.counters.Counters.selections + 1;
        (match st.profile with
         | Some p -> Tc_obs.Profile.hit_sel p info
         | None -> ());
        match value_of (pop st) with
        | VDict (_, fields) ->
            if info.Core.sel_index >= Array.length fields then
              bug "dictionary selection out of range (%d of %d)"
                info.Core.sel_index (Array.length fields)
            else begin
              let s = fields.(info.Core.sel_index) in
              push st s;
              start_force st s
            end
        | _ -> bug "selection from a non-dictionary value")
    | B.CALL n -> (
        match (pop st).cell with
        (* fast path: saturated closure call, args copied straight from
           the operand stack into the callee's locals *)
        | Ready (VClosure clo) when clo.c_proto.B.p_arity = n ->
            st.counters.Counters.applications <-
              st.counters.Counters.applications + n;
            let locals = make_locals clo.c_proto in
            Array.blit st.stack (st.sp - n) locals 0 n;
            st.sp <- st.sp - n;
            push_frame st clo.c_proto ~env:clo.c_env ~locals ~update:None
        (* fast path: saturated primitive call *)
        | Ready (VPrim (p, [])) when p.pr_arity = n ->
            st.counters.Counters.applications <-
              st.counters.Counters.applications + n;
            st.counters.Counters.prim_calls <-
              st.counters.Counters.prim_calls + 1;
            let args = ref [] in
            for k = st.sp - 1 downto st.sp - n do
              args := st.stack.(k) :: !args
            done;
            st.sp <- st.sp - n;
            push st (ready (p.pr_fn st !args))
        | cell ->
            let fnv =
              match cell with
              | Ready v -> v
              | _ -> bug "expected a forced slot"
            in
            let args = ref [] in
            for _ = 1 to n do
              args := pop st :: !args
            done;
            do_apply st ~tail:false fnv !args)
    | B.TAILCALL n -> (
        match (pop st).cell with
        | Ready (VClosure clo) when clo.c_proto.B.p_arity = n ->
            st.counters.Counters.applications <-
              st.counters.Counters.applications + n;
            let locals = make_locals clo.c_proto in
            Array.blit st.stack (st.sp - n) locals 0 n;
            let update = fr.f_update in
            st.sp <- fr.f_base;
            st.fp <- st.fp - 1;
            push_frame st clo.c_proto ~env:clo.c_env ~locals ~update
        | Ready (VPrim (p, [])) when p.pr_arity = n ->
            st.counters.Counters.applications <-
              st.counters.Counters.applications + n;
            st.counters.Counters.prim_calls <-
              st.counters.Counters.prim_calls + 1;
            let args = ref [] in
            for k = st.sp - 1 downto st.sp - n do
              args := st.stack.(k) :: !args
            done;
            st.sp <- st.sp - n;
            return_value st (p.pr_fn st !args)
        | cell ->
            let fnv =
              match cell with
              | Ready v -> v
              | _ -> bug "expected a forced slot"
            in
            let args = ref [] in
            for _ = 1 to n do
              args := pop st :: !args
            done;
            do_apply st ~tail:true fnv !args)
    | B.APPLY_LOCALS n ->
        let fnv = value_of (pop st) in
        let args = ref [] in
        for k = n - 1 downto 0 do
          args := fr.f_locals.(k) :: !args
        done;
        apply_value st ~tail:true fnv !args
    | B.RETURN -> (
        let res = pop st in
        st.sp <- fr.f_base;
        st.fp <- st.fp - 1;
        match fr.f_update with
        | Some s -> s.cell <- res.cell
        | None -> push st res)
    | B.FAIL m -> raise (Eval.Runtime_error m)
  done

(** Force a slot to a value, running the machine as needed. Re-entrant:
    primitives use this on their arguments. *)
and force (st : state) (s : slot) : value =
  match s.cell with
  | Ready v -> v
  | _ ->
      let stop = st.fp in
      start_force st s;
      run_loop st ~stop;
      value_of s

(* ------------------------------------------------------------------ *)
(* Conversions between values and OCaml strings / lists.               *)
(* ------------------------------------------------------------------ *)

let string_of_char_list st (v : value) : string =
  let buf = Buffer.create 16 in
  let rec go v =
    match v with
    | VData (rc, fields) -> (
        match Ident.text rc.Eval.rc_name with
        | "[]" -> ()
        | ":" -> (
            (match force st fields.(0) with
             | VChar c -> Buffer.add_char buf c
             | _ -> bug "expected a character in a string");
            go (force st fields.(1)))
        | s -> bug "expected a list of characters, got '%s'" s)
    | _ -> bug "expected a list of characters"
  in
  go v;
  Buffer.contents buf

let char_list_of_string st (s : string) : value =
  let nil_rc =
    match Ident.Tbl.find_opt st.cons (Ident.intern "[]") with
    | Some rc -> rc
    | None -> runtime "list constructors not registered"
  in
  let cons_rc = Option.get (Ident.Tbl.find_opt st.cons (Ident.intern ":")) in
  let rec build i =
    if i >= String.length s then VData (nil_rc, [||])
    else VData (cons_rc, [| ready (VChar s.[i]); ready (build (i + 1)) |])
  in
  build 0

(* ------------------------------------------------------------------ *)
(* Rendering results (forces the value's spine).                       *)
(* ------------------------------------------------------------------ *)

let rec render ?(depth = 50) st (v : value) : string =
  if depth = 0 then "..."
  else
    match v with
    | VInt n -> string_of_int n
    | VFloat f -> Eval.float_str f
    | VChar c -> Printf.sprintf "%C" c
    | VStr s -> Printf.sprintf "%S" s
    | VDict (tag, fields) ->
        Printf.sprintf "<dict %s %s (%d fields)>"
          (Ident.text tag.Core.dt_class) (Ident.text tag.Core.dt_tycon)
          (Array.length fields)
    | VClosure _ | VPap _ | VConPartial _ | VPrim _ -> "<function>"
    | VData (rc, fields) -> render_data ~depth st rc fields

and render_data ~depth st rc fields =
  let name = Ident.text rc.Eval.rc_name in
  if name = ":" || name = "[]" then render_list ~depth st rc fields
  else if
    String.length name >= 2 && name.[0] = '(' && (name.[1] = ',' || name.[1] = ')')
  then
    if Array.length fields = 0 then "()"
    else
      "("
      ^ String.concat ", "
          (Array.to_list
             (Array.map (fun t -> render ~depth:(depth - 1) st (force st t)) fields))
      ^ ")"
  else if Array.length fields = 0 then name
  else
    "("
    ^ name
    ^ Array.fold_left
        (fun acc t -> acc ^ " " ^ render ~depth:(depth - 1) st (force st t))
        "" fields
    ^ ")"

and render_list ~depth st rc fields =
  let items = ref [] in
  let rec collect rc fields =
    match Ident.text rc.Eval.rc_name with
    | "[]" -> true
    | ":" -> (
        items := force st fields.(0) :: !items;
        match force st fields.(1) with
        | VData (rc', fields') -> collect rc' fields'
        | _ -> false)
    | _ -> false
  in
  let proper = collect rc fields in
  let items = List.rev !items in
  if proper && items <> [] && List.for_all (function VChar _ -> true | _ -> false) items
  then
    Printf.sprintf "%S"
      (String.init (List.length items)
         (fun i ->
           match List.nth items i with VChar c -> c | _ -> assert false))
  else
    "["
    ^ String.concat ", " (List.map (render ~depth:(depth - 1) st) items)
    ^ (if proper then "" else " ...")
    ^ "]"

(* ------------------------------------------------------------------ *)
(* Primitives.                                                         *)
(* ------------------------------------------------------------------ *)

let prim name arity fn =
  (Ident.intern name, { pr_name = name; pr_arity = arity; pr_fn = fn })

let bool_value st b : value =
  match st.bools with
  | Some (t, f) -> if b then t else f
  | None ->
      let find name =
        match Ident.Tbl.find_opt st.cons (Ident.intern name) with
        | Some rc -> VData (rc, [||])
        | None -> runtime "Bool is not defined (missing prelude?)"
      in
      let t = find "True" and f = find "False" in
      st.bools <- Some (t, f);
      if b then t else f

let int_arg st t =
  match force st t with
  | VInt n -> n
  | _ -> bug "primitive expected an Int"

let float_arg st t =
  match force st t with
  | VFloat f -> f
  | _ -> bug "primitive expected a Float"

let char_arg st t =
  match force st t with
  | VChar c -> c
  | _ -> bug "primitive expected a Char"

let int2 f = fun st args ->
  match args with
  | [ a; b ] -> VInt (f (int_arg st a) (int_arg st b))
  | _ -> assert false

let float2 f = fun st args ->
  match args with
  | [ a; b ] -> VFloat (f (float_arg st a) (float_arg st b))
  | _ -> assert false

let primitives : (Ident.t * prim) list =
  [
    prim "primEqInt" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (int_arg st a = int_arg st b)
        | _ -> assert false);
    prim "primEqFloat" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (float_arg st a = float_arg st b)
        | _ -> assert false);
    prim "primEqChar" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (char_arg st a = char_arg st b)
        | _ -> assert false);
    prim "primLeInt" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (int_arg st a <= int_arg st b)
        | _ -> assert false);
    prim "primLeFloat" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (float_arg st a <= float_arg st b)
        | _ -> assert false);
    prim "primLeChar" 2 (fun st args ->
        match args with
        | [ a; b ] -> bool_value st (char_arg st a <= char_arg st b)
        | _ -> assert false);
    prim "primAddInt" 2 (int2 ( + ));
    prim "primSubInt" 2 (int2 ( - ));
    prim "primMulInt" 2 (int2 ( * ));
    prim "primDivInt" 2 (fun st args ->
        match args with
        | [ a; b ] ->
            let d = int_arg st b in
            if d = 0 then runtime "division by zero"
            else VInt (int_arg st a / d)
        | _ -> assert false);
    prim "primModInt" 2 (fun st args ->
        match args with
        | [ a; b ] ->
            let d = int_arg st b in
            if d = 0 then runtime "modulo by zero"
            else VInt (int_arg st a mod d)
        | _ -> assert false);
    prim "primNegInt" 1 (fun st args ->
        match args with
        | [ a ] -> VInt (-int_arg st a)
        | _ -> assert false);
    prim "primAddFloat" 2 (float2 ( +. ));
    prim "primSubFloat" 2 (float2 ( -. ));
    prim "primMulFloat" 2 (float2 ( *. ));
    prim "primDivFloat" 2 (float2 ( /. ));
    prim "primNegFloat" 1 (fun st args ->
        match args with
        | [ a ] -> VFloat (-.float_arg st a)
        | _ -> assert false);
    prim "primIntToFloat" 1 (fun st args ->
        match args with
        | [ a ] -> VFloat (float_of_int (int_arg st a))
        | _ -> assert false);
    prim "primIntStr" 1 (fun st args ->
        match args with
        | [ a ] -> char_list_of_string st (string_of_int (int_arg st a))
        | _ -> assert false);
    prim "primFloatStr" 1 (fun st args ->
        match args with
        | [ a ] -> char_list_of_string st (Eval.float_str (float_arg st a))
        | _ -> assert false);
    prim "primStrInt" 1 (fun st args ->
        match args with
        | [ a ] -> (
            let s = string_of_char_list st (force st a) in
            match int_of_string_opt (String.trim s) with
            | Some n -> VInt n
            | None ->
                raise
                  (Eval.User_error
                     (Printf.sprintf "primStrInt: cannot parse %S" s)))
        | _ -> assert false);
    prim "primStrFloat" 1 (fun st args ->
        match args with
        | [ a ] -> (
            let s = string_of_char_list st (force st a) in
            match float_of_string_opt (String.trim s) with
            | Some f -> VFloat f
            | None ->
                raise
                  (Eval.User_error
                     (Printf.sprintf "primStrFloat: cannot parse %S" s)))
        | _ -> assert false);
    prim "primChr" 1 (fun st args ->
        match args with
        | [ a ] ->
            let n = int_arg st a in
            if n < 0 || n > 255 then runtime "primChr: out of range"
            else VChar (Char.chr n)
        | _ -> assert false);
    prim "primOrd" 1 (fun st args ->
        match args with
        | [ a ] -> VInt (Char.code (char_arg st a))
        | _ -> assert false);
    prim "primError" 1 (fun st args ->
        match args with
        | [ a ] ->
            raise (Eval.User_error (string_of_char_list st (force st a)))
        | _ -> assert false);
    prim "primFailure" 1 (fun st args ->
        match args with
        | [ a ] -> (
            match force st a with
            | VStr s -> raise (Eval.Pattern_fail s)
            | _ -> raise (Eval.Pattern_fail "pattern-match failure"))
        | _ -> assert false);
    prim "primTypeTag" 1 (fun st args ->
        match args with
        | [ a ] ->
            st.counters.Counters.tag_dispatches <-
              st.counters.Counters.tag_dispatches + 1;
            let tag =
              match force st a with
              | VInt _ -> "Int"
              | VFloat _ -> "Float"
              | VChar _ -> "Char"
              | VStr _ -> "<str>"
              | VData (rc, _) -> Ident.text rc.Eval.rc_tycon
              | VClosure _ | VPap _ | VConPartial _ | VPrim _ -> "->"
              | VDict _ -> "<dict>"
            in
            VStr tag
        | _ -> assert false);
    prim "primForce" 2 (fun st args ->
        match args with
        | [ a; b ] ->
            ignore (force st a);
            force st b
        | _ -> assert false);
  ]

(* ------------------------------------------------------------------ *)
(* Whole programs.                                                     *)
(* ------------------------------------------------------------------ *)

let create_state ?(budget = Budget.unlimited) ?profile
    (cons : Eval.con_table) : state =
  {
    cons;
    counters = Counters.create ();
    profile;
    budget = Budget.meter budget;
    (* the frame stack is an explicit growable array: even an "unlimited"
       budget keeps a bound on it, or runaway non-tail recursion would
       consume all memory before anything was reported *)
    max_frames = (if budget.Budget.frames > 0 then budget.Budget.frames
                  else 1_000_000);
    protos = [||];
    consts = [||];
    globals = [||];
    global_names = [];
    bools = None;
    stack = Array.make 256 dummy_slot;
    sp = 0;
    frames = Array.init 64 (fun _ -> fresh_frame ());
    fp = 0;
  }

let value_of_lit (l : Ast.lit) : value =
  match l with
  | Ast.LInt n -> VInt n
  | Ast.LFloat f -> VFloat f
  | Ast.LChar c -> VChar c
  | Ast.LString s -> VStr s

(** Install a program's constant pool and global table (primitives plus
    delayed CAFs) into the state. *)
let load_program (st : state) (p : B.program) : unit =
  st.protos <- p.B.protos;
  st.consts <- Array.map (fun l -> ready (value_of_lit l)) p.B.consts;
  st.globals <-
    Array.map
      (fun (_, init) ->
        match init with
        | B.Gprim name -> (
            match
              List.find_opt
                (fun (n, _) -> Ident.text n = name)
                primitives
            with
            | Some (_, pr) -> ready (VPrim (pr, []))
            | None -> bug "unknown primitive '%s'" name)
        | B.Gproto ix ->
            { cell = Delay { c_proto = p.B.protos.(ix); c_env = [||] } })
      p.B.globals;
  st.global_names <-
    List.rev (Array.to_list (Array.mapi (fun i (n, _) -> (n, i)) p.B.globals))

(** Run the requested [entry], or the program's [main]. *)
let run ?entry (st : state) (p : B.program) : value =
  load_program st p;
  let entry =
    match entry with
    | Some e -> e
    | None -> (
        match p.B.entry with Some m -> m | None -> Ident.intern "main")
  in
  match B.find_global p entry with
  | Some g -> force st st.globals.(g)
  | None -> runtime "no '%s' binding to run" (Ident.text entry)
