(** A stack-based interpreter for {!Bytecode}, with the same observable
    behaviour and {!Tc_eval.Counters} dictionary accounting as the tree
    evaluator. Fully iterative: deep non-tail recursion hits the frame
    budget and every exhausted resource raises the same classified
    {!Tc_resilience.Budget.Exhausted} the tree evaluator uses. On this
    backend a budget's [steps] are {e instructions} and [frames] is the
    explicit frame-stack depth. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval
module Counters = Tc_eval.Counters
module Budget = Tc_resilience.Budget

type value =
  | VInt of int
  | VFloat of float
  | VChar of char
  | VStr of string
  | VData of Eval.rcon * slot array
  | VConPartial of Eval.rcon * slot list
  | VClosure of closure
  | VPap of closure * slot list
  | VDict of Core.dict_tag * slot array
  | VPrim of prim * slot list

and closure = { c_proto : Bytecode.proto; c_env : slot array }

and slot = { mutable cell : cell }

and cell =
  | Ready of value
  | Delay of closure
  | Busy

and prim = {
  pr_name : string;
  pr_arity : int;
  pr_fn : state -> slot list -> value;
}

and state

val counters : state -> Counters.t

(** The state's budget meter (for post-run checks such as the output
    cap). *)
val meter : state -> Budget.meter

(** [create_state ?budget ?profile cons]: [budget] bounds the run
    (steps = instructions here; a budget without a frame bound still gets
    the default [1_000_000]-frame stack bound, because the explicit frame
    stack would otherwise grow without limit); [profile] attaches a
    per-site dispatch profile counting every [MKDICT]/[DICTSEL] against
    its compile-time site. Creating the state starts the budget's wall
    clock. *)
val create_state :
  ?budget:Budget.t ->
  ?profile:Tc_obs.Profile.rt ->
  Eval.con_table ->
  state

(** Load [program] and force its entry point ([?entry], the program's
    [main] otherwise). Raises the {!Tc_eval.Eval} exceptions. *)
val run : ?entry:Ident.t -> state -> Bytecode.program -> value

(** Force a slot to a value (runs the machine as needed). *)
val force : state -> slot -> value

(** Render a value the same way the tree evaluator does (forces the
    spine; lists of characters print as strings). *)
val render : ?depth:int -> state -> value -> string
