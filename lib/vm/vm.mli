(** A stack-based interpreter for {!Bytecode}, with the same observable
    behaviour and {!Tc_eval.Counters} dictionary accounting as the tree
    evaluator. Fully iterative: deep non-tail recursion hits the
    [max_frames] budget and raises {!Tc_eval.Eval.Runtime_error} instead
    of overflowing the native stack; the instruction budget raises
    {!Tc_eval.Eval.Out_of_fuel}. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval
module Counters = Tc_eval.Counters

type value =
  | VInt of int
  | VFloat of float
  | VChar of char
  | VStr of string
  | VData of Eval.rcon * slot array
  | VConPartial of Eval.rcon * slot list
  | VClosure of closure
  | VPap of closure * slot list
  | VDict of Core.dict_tag * slot array
  | VPrim of prim * slot list

and closure = { c_proto : Bytecode.proto; c_env : slot array }

and slot = { mutable cell : cell }

and cell =
  | Ready of value
  | Delay of closure
  | Busy

and prim = {
  pr_name : string;
  pr_arity : int;
  pr_fn : state -> slot list -> value;
}

and state

val counters : state -> Counters.t

(** [create_state ?fuel ?max_frames ?profile cons]: [fuel] is an instruction
    budget ([-1] = unlimited, the default); [max_frames] bounds the frame
    stack (default [1_000_000]); [profile] attaches a per-site dispatch
    profile counting every [MKDICT]/[DICTSEL] against its compile-time
    site. *)
val create_state :
  ?fuel:int ->
  ?max_frames:int ->
  ?profile:Tc_obs.Profile.rt ->
  Eval.con_table ->
  state

(** Load [program] and force its entry point ([?entry], the program's
    [main] otherwise). Raises the {!Tc_eval.Eval} exceptions. *)
val run : ?entry:Ident.t -> state -> Bytecode.program -> value

(** Force a slot to a value (runs the machine as needed). *)
val force : state -> slot -> value

(** Render a value the same way the tree evaluator does (forces the
    spine; lists of characters print as strings). *)
val render : ?depth:int -> state -> value -> string
