(** Core → bytecode: closure conversion and slot assignment.

    The compilation is mode-directed so the bytecode realises the same
    reduction strategy the tree evaluator implements at run time:

    - [`Lazy]: argument and let-bound expressions become [DELAY]ed protos
      (thunks); variables, literals and lambdas are passed as bare slots
      (sharing the existing cell instead of wrapping it, which preserves
      every observable evaluation count).
    - [`Strict]: arguments and let bindings are evaluated inline.

    In both modes dictionary fields are always delayed and top-level
    bindings stay lazy (CAFs), exactly as in {!Tc_eval.Eval}: this is what
    keeps the dictionary counters ([dict_constructions], [selections])
    identical between the two backends. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval
module B = Bytecode

type mode = [ `Lazy | `Strict ]

(* ------------------------------------------------------------------ *)
(* Compile-time environment.                                           *)
(* ------------------------------------------------------------------ *)

type loc =
  | Llocal of int
  | Lenv of int
  | Lglobal of int

type scope = loc Ident.Map.t

(* Program-wide compilation state. *)
type gstate = {
  mode : mode;
  cons : Eval.con_table;
  mutable protos : B.proto option array;
  mutable nprotos : int;
  const_ix : (Ast.lit, int) Hashtbl.t;
  mutable consts : Ast.lit list;  (* reversed *)
  mutable nconsts : int;
}

let reserve_proto (g : gstate) : int =
  if g.nprotos = Array.length g.protos then begin
    let a = Array.make (max 16 (2 * g.nprotos)) None in
    Array.blit g.protos 0 a 0 g.nprotos;
    g.protos <- a
  end;
  let ix = g.nprotos in
  g.nprotos <- ix + 1;
  ix

let const_ix (g : gstate) (l : Ast.lit) : int =
  match Hashtbl.find_opt g.const_ix l with
  | Some i -> i
  | None ->
      let i = g.nconsts in
      Hashtbl.replace g.const_ix l i;
      g.consts <- l :: g.consts;
      g.nconsts <- i + 1;
      i

(* Per-proto code builder. *)
type builder = {
  g : gstate;
  mutable code : B.instr array;
  mutable len : int;
  mutable nlocals : int;
}

let new_builder (g : gstate) ~(arity : int) : builder =
  { g; code = Array.make 16 B.RETURN; len = 0; nlocals = arity }

let emit (b : builder) (i : B.instr) : unit =
  if b.len = Array.length b.code then begin
    let a = Array.make (2 * b.len) B.RETURN in
    Array.blit b.code 0 a 0 b.len;
    b.code <- a
  end;
  b.code.(b.len) <- i;
  b.len <- b.len + 1

let pos (b : builder) : int = b.len
let patch (b : builder) (at : int) (i : B.instr) : unit = b.code.(at) <- i

let alloc_local (b : builder) : int =
  let l = b.nlocals in
  b.nlocals <- l + 1;
  l

(* ------------------------------------------------------------------ *)
(* Expression compilation.                                             *)
(* ------------------------------------------------------------------ *)

(** Push a variable's slot; [force] selects the forcing variant (value
    position) over the bare one (argument position). *)
let emit_var (b : builder) (scope : scope) ~(force : bool) (x : Ident.t) : unit =
  match Ident.Map.find_opt x scope with
  | Some (Llocal i) -> emit b (if force then B.LOCALV i else B.LOCAL i)
  | Some (Lenv i) -> emit b (if force then B.ENVV i else B.ENV i)
  | Some (Lglobal i) -> emit b (if force then B.GLOBALV i else B.GLOBAL i)
  | None ->
      emit b (B.FAIL (Printf.sprintf "unbound variable '%s'" (Ident.text x)))

let emit_con (b : builder) (c : Ident.t) : unit =
  match Ident.Tbl.find_opt b.g.cons c with
  | Some rc -> emit b (B.CON rc)
  | None ->
      emit b (B.FAIL (Printf.sprintf "unknown constructor '%s'" (Ident.text c)))

(** Compile [e] so its (forced) value ends up on the operand stack. In
    tail position, ends the proto ([RETURN]/[TAILCALL]). *)
let rec compile_value (b : builder) (scope : scope) (e : Core.expr)
    ~(tail : bool) : unit =
  let ret () = if tail then emit b B.RETURN in
  match e with
  | Core.Var x ->
      emit_var b scope ~force:true x;
      ret ()
  | Core.Lit l ->
      emit b (B.CONST (const_ix b.g l));
      ret ()
  | Core.Con c ->
      emit_con b c;
      ret ()
  | Core.Lam (vs, body) ->
      let p = compile_proto b.g scope ~name:"<lambda>" ~params:vs body in
      emit b (B.CLOSURE p);
      ret ()
  | Core.App _ ->
      let f, args = Core.unfold_app e [] in
      List.iter (fun a -> compile_arg b scope a) args;
      compile_value b scope f ~tail:false;
      let n = List.length args in
      emit b (if tail then B.TAILCALL n else B.CALL n)
  | Core.Let (Core.Nonrec bd, body) ->
      (if b.g.mode = `Lazy then compile_arg b scope bd.Core.b_expr
       else compile_value b scope bd.Core.b_expr ~tail:false);
      let l = alloc_local b in
      emit b (B.STORE l);
      let scope' = Ident.Map.add bd.Core.b_name (Llocal l) scope in
      compile_value b scope' body ~tail
  | Core.Let (Core.Rec bds, body) ->
      let slots = List.map (fun (bd : Core.bind) -> (bd, alloc_local b)) bds in
      let scope' =
        List.fold_left
          (fun s ((bd : Core.bind), l) -> Ident.Map.add bd.b_name (Llocal l) s)
          scope slots
      in
      List.iter (fun (_, l) -> emit b (B.REC_ALLOC l)) slots;
      List.iter
        (fun ((bd : Core.bind), l) ->
          let p =
            compile_proto b.g scope' ~name:(Ident.text bd.b_name) ~params:[]
              bd.b_expr
          in
          emit b (B.REC_SET (l, p)))
        slots;
      if b.g.mode = `Strict then
        (* force in order; dictionary knots survive because MKDICT's fields
           stay delayed, as in the tree evaluator *)
        List.iter (fun (_, l) -> emit b (B.FORCE_LOCAL l)) slots;
      compile_value b scope' body ~tail
  | Core.If (c, t, f) ->
      compile_value b scope c ~tail:false;
      let jif = pos b in
      emit b (B.IFELSE 0);
      compile_value b scope t ~tail;
      if tail then begin
        patch b jif (B.IFELSE (pos b));
        compile_value b scope f ~tail
      end
      else begin
        let jend = pos b in
        emit b (B.JUMP 0);
        patch b jif (B.IFELSE (pos b));
        compile_value b scope f ~tail;
        patch b jend (B.JUMP (pos b))
      end
  | Core.Case (s, alts, default) ->
      compile_value b scope s ~tail:false;
      let scrut = alloc_local b in
      let jsw = pos b in
      emit b (B.JUMP 0) (* placeholder for SWITCH *);
      let joins = ref [] in
      let finish () =
        if not tail then begin
          joins := pos b :: !joins;
          emit b (B.JUMP 0)
        end
      in
      let compile_alt (a : Core.alt) : int =
        let target = pos b in
        let scope' =
          List.fold_left
            (fun (sc, i) v ->
              let l = alloc_local b in
              emit b (B.FIELD (scrut, i));
              emit b (B.STORE l);
              (Ident.Map.add v (Llocal l) sc, i + 1))
            (scope, 0) a.Core.alt_vars
          |> fst
        in
        compile_value b scope' a.Core.alt_body ~tail;
        finish ();
        target
      in
      let targets = List.map (fun a -> (a, compile_alt a)) alts in
      let sw_default =
        match default with
        | None -> -1
        | Some d ->
            let target = pos b in
            compile_value b scope d ~tail;
            finish ();
            target
      in
      let cons, lits =
        List.partition_map
          (fun ((a : Core.alt), target) ->
            match a.alt_con with
            | Core.Tcon c -> Left (c, target)
            | Core.Tlit l -> Right (l, target))
          targets
      in
      patch b jsw
        (B.SWITCH
           {
             B.sw_scrut = scrut;
             sw_cons = Array.of_list cons;
             sw_lits = Array.of_list lits;
             sw_default;
           });
      let join = pos b in
      List.iter (fun at -> patch b at (B.JUMP join)) !joins
  | Core.MkDict (tag, fields) ->
      (* dictionary fields are always delayed, in both modes *)
      List.iter (fun f -> compile_delayed b scope f) fields;
      emit b (B.MKDICT (tag, List.length fields));
      ret ()
  | Core.Sel (info, d) ->
      compile_value b scope d ~tail:false;
      emit b (B.DICTSEL info);
      ret ()
  | Core.Hole h -> (
      match h.Core.hole_fill with
      | Some inner -> compile_value b scope inner ~tail
      | None ->
          emit b (B.FAIL "evaluated an unresolved placeholder");
          ret ())

(** Compile an argument (or let-bound) expression: a bare slot push. Under
    [`Strict] the expression is evaluated inline; under [`Lazy] it is
    delayed, except for pure leaves that can be pushed directly. *)
and compile_arg (b : builder) (scope : scope) (e : Core.expr) : unit =
  if b.g.mode = `Strict then compile_value b scope e ~tail:false
  else compile_delayed b scope e

(** Lazy slot push: share existing cells for variables, push pure leaves
    directly, delay everything else. Also used for dictionary fields in
    both modes. *)
and compile_delayed (b : builder) (scope : scope) (e : Core.expr) : unit =
  match e with
  | Core.Var x when Ident.Map.mem x scope -> emit_var b scope ~force:false x
  | Core.Lit l -> emit b (B.CONST (const_ix b.g l))
  | Core.Lam (vs, body) ->
      let p = compile_proto b.g scope ~name:"<lambda>" ~params:vs body in
      emit b (B.CLOSURE p)
  | Core.Hole { Core.hole_fill = Some inner; _ } -> compile_delayed b scope inner
  | _ ->
      let p = compile_proto b.g scope ~name:"<thunk>" ~params:[] e in
      emit b (B.DELAY p)

(** Closure-convert [body] as a proto with parameters [params], capturing
    the free variables that are locals or environment slots of the
    enclosing scope (globals are reached directly). *)
and compile_proto (g : gstate) (outer : scope) ~(name : string)
    ~(params : Ident.t list) (body : Core.expr) : int =
  let ix = reserve_proto g in
  let fv =
    Ident.Set.filter
      (fun v -> not (List.exists (Ident.equal v) params))
      (Core.free_vars body)
  in
  let captures =
    Ident.Set.elements fv
    |> List.filter_map (fun v ->
           match Ident.Map.find_opt v outer with
           | Some (Llocal i) -> Some (v, B.Cap_local i)
           | Some (Lenv i) -> Some (v, B.Cap_env i)
           | Some (Lglobal _) | None -> None)
  in
  let scope =
    List.fold_left
      (fun (sc, i) (v, _) -> (Ident.Map.add v (Lenv i) sc, i + 1))
      (outer, 0) captures
    |> fst
  in
  let scope =
    List.fold_left
      (fun (sc, i) v -> (Ident.Map.add v (Llocal i) sc, i + 1))
      (scope, 0) params
    |> fst
  in
  let b = new_builder g ~arity:(List.length params) in
  compile_value b scope body ~tail:true;
  g.protos.(ix) <-
    Some
      {
        B.p_name = name;
        p_arity = List.length params;
        p_nlocals = b.nlocals;
        p_captures = Array.of_list (List.map snd captures);
        p_code = Array.sub b.code 0 b.len;
      };
  ix

(* ------------------------------------------------------------------ *)
(* Whole programs.                                                     *)
(* ------------------------------------------------------------------ *)

let program ?(mode : mode = `Lazy) ~(cons : Eval.con_table)
    (p : Core.program) : B.program =
  let g =
    {
      mode;
      cons;
      protos = Array.make 64 None;
      nprotos = 0;
      const_ix = Hashtbl.create 64;
      consts = [];
      nconsts = 0;
    }
  in
  let gtab = ref (Array.make 64 (Ident.intern "", B.Gprim "")) in
  let nglobals = ref 0 in
  let add_global name init =
    if !nglobals = Array.length !gtab then begin
      let a = Array.make (2 * !nglobals) (Ident.intern "", B.Gprim "") in
      Array.blit !gtab 0 a 0 !nglobals;
      gtab := a
    end;
    let ix = !nglobals in
    !gtab.(ix) <- (name, init);
    nglobals := ix + 1;
    ix
  in
  (* primitives first; user bindings may shadow them (find_global scans
     from the end, like the evaluator's environment override) *)
  let scope0 =
    List.fold_left
      (fun sc (name, (pr : Eval.prim)) ->
        let ix = add_global name (B.Gprim pr.Eval.pr_name) in
        Ident.Map.add name (Lglobal ix) sc)
      Ident.Map.empty Eval.primitives
  in
  (* top-level groups, in dependency order; a Nonrec binding sees only the
     bindings before it, a Rec group also sees itself — mirroring
     Eval.load_program *)
  let scope =
    List.fold_left
      (fun scope group ->
        match group with
        | Core.Nonrec (bd : Core.bind) ->
            let px =
              compile_proto g scope ~name:(Ident.text bd.b_name) ~params:[]
                bd.b_expr
            in
            let ix = add_global bd.b_name (B.Gproto px) in
            Ident.Map.add bd.b_name (Lglobal ix) scope
        | Core.Rec bds ->
            (* reserve the slots first so the whole group is in scope,
               then back-patch each with its compiled proto *)
            let slots =
              List.map
                (fun (bd : Core.bind) ->
                  (bd, add_global bd.b_name (B.Gproto (-1))))
                bds
            in
            let scope' =
              List.fold_left
                (fun sc ((bd : Core.bind), ix) ->
                  Ident.Map.add bd.b_name (Lglobal ix) sc)
                scope slots
            in
            List.iter
              (fun ((bd : Core.bind), ix) ->
                let px =
                  compile_proto g scope' ~name:(Ident.text bd.b_name)
                    ~params:[] bd.b_expr
                in
                !gtab.(ix) <- (bd.b_name, B.Gproto px))
              slots;
            scope')
      scope0 p.Core.p_binds
  in
  ignore scope;
  {
    B.protos = Array.init g.nprotos (fun i -> Option.get g.protos.(i));
    consts = Array.of_list (List.rev g.consts);
    globals = Array.sub !gtab 0 !nglobals;
    entry = p.Core.p_main;
  }
