(** Core → bytecode: closure conversion, slot assignment, constant
    pooling. The [mode] selects the reduction strategy the bytecode
    realises (argument thunks vs inline evaluation); dictionary fields are
    always delayed and top-level bindings stay lazy (CAFs) in both modes,
    matching {!Tc_eval.Eval} so the dictionary counters agree exactly. *)

module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval

type mode = [ `Lazy | `Strict ]

val program :
  ?mode:mode -> cons:Eval.con_table -> Core.program -> Bytecode.program
