(** The flat bytecode targeted by {!Compile} and executed by {!Vm}:
    closure-converted protos with explicit capture lists, a constant pool,
    a global slot table, and explicit [MKDICT]/[DICTSEL]/[TAILCALL]
    instructions. Dictionaries are contiguous slot arrays: construction is
    one allocation, selection one indexed load (§9's cost model). *)

open Tc_support
module Ast = Tc_syntax.Ast
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval

type capture =
  | Cap_local of int
  | Cap_env of int

type switch = {
  sw_scrut : int;  (** local slot stashing the forced scrutinee *)
  sw_cons : (Ident.t * int) array;  (** constructor name → target pc *)
  sw_lits : (Ast.lit * int) array;  (** literal → target pc *)
  sw_default : int;  (** target pc of the default alternative, or -1 *)
}

type instr =
  | CONST of int
  | LOCAL of int
  | LOCALV of int
  | ENV of int
  | ENVV of int
  | GLOBAL of int
  | GLOBALV of int
  | CON of Eval.rcon
  | CLOSURE of int
  | DELAY of int
  | STORE of int
  | REC_ALLOC of int
  | REC_SET of int * int
  | FORCE_LOCAL of int
  | JUMP of int
  | IFELSE of int
  | SWITCH of switch
  | FIELD of int * int
  | MKDICT of Core.dict_tag * int
  | DICTSEL of Core.sel_info
  | CALL of int
  | TAILCALL of int
  | APPLY_LOCALS of int
  | RETURN
  | FAIL of string

type proto = {
  p_name : string;
  p_arity : int;
  p_nlocals : int;
  p_captures : capture array;
  p_code : instr array;
}

type ginit =
  | Gproto of int
  | Gprim of string

type program = {
  protos : proto array;
  consts : Ast.lit array;
  globals : (Ident.t * ginit) array;
  entry : Ident.t option;
}

val find_global : program -> Ident.t -> int option

(** {2 Disassembly} *)

val pp_instr : Format.formatter -> instr -> unit
val pp_proto : Format.formatter -> int -> proto -> unit
val pp_program : Format.formatter -> program -> unit
