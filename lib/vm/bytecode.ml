(** The flat bytecode targeted by {!Compile} and executed by {!Vm}.

    The format is closure-converted: every lambda (and every delayed
    expression — argument thunks, let bindings, dictionary fields, CAFs)
    becomes a {!proto} with an explicit capture list; variables are slot
    indices into the frame's locals, the closure environment, or the
    global table. Dictionaries are contiguous slot arrays built by
    [MKDICT n] and consulted by [DICTSEL i] — one allocation, one indexed
    load — which is exactly the cost model the paper's §9 assigns to
    dictionary passing. *)

open Tc_support
module Ast = Tc_syntax.Ast
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval

(** Where a closure fetches a captured slot from, relative to the frame
    executing the [CLOSURE]/[DELAY] instruction. *)
type capture =
  | Cap_local of int
  | Cap_env of int

type switch = {
  sw_scrut : int;  (** local slot stashing the forced scrutinee *)
  sw_cons : (Ident.t * int) array;  (** constructor name → target pc *)
  sw_lits : (Ast.lit * int) array;  (** literal → target pc *)
  sw_default : int;  (** target pc of the default alternative, or -1 *)
}

type instr =
  | CONST of int  (** push the (shared) constant-pool slot *)
  | LOCAL of int  (** push a local slot, unforced *)
  | LOCALV of int  (** push a local slot and force it *)
  | ENV of int  (** push a closure-environment slot, unforced *)
  | ENVV of int  (** push a closure-environment slot and force it *)
  | GLOBAL of int  (** push a global slot, unforced *)
  | GLOBALV of int  (** push a global slot and force it *)
  | CON of Eval.rcon  (** push a constructor value *)
  | CLOSURE of int  (** allocate a closure of the given proto; push it *)
  | DELAY of int  (** push a fresh thunk of the given 0-ary proto *)
  | STORE of int  (** pop into a local slot *)
  | REC_ALLOC of int  (** install a fresh unfilled cell in a local slot *)
  | REC_SET of int * int  (** [REC_SET (l, p)]: back-patch cell [l] with a
                              thunk of proto [p] (closing over the cells) *)
  | FORCE_LOCAL of int  (** force a local slot in place (strict letrec) *)
  | JUMP of int
  | IFELSE of int  (** pop a Bool; True falls through, False jumps *)
  | SWITCH of switch  (** pop, force, stash and dispatch the scrutinee *)
  | FIELD of int * int  (** [FIELD (l, i)]: push field [i] of the data
                            value stashed in local [l], unforced *)
  | MKDICT of Core.dict_tag * int  (** pop n field slots; push a dictionary *)
  | DICTSEL of Core.sel_info  (** pop a dictionary; push field [sel_index],
                                  forced *)
  | CALL of int  (** pop function and n argument slots; apply *)
  | TAILCALL of int  (** as [CALL], replacing the current frame *)
  | APPLY_LOCALS of int  (** synthetic (over-application continuation):
                             pop a function, apply it to locals [0..n) *)
  | RETURN
  | FAIL of string  (** raise a runtime error (unbound name, unfilled
                        placeholder, unknown constructor) *)

type proto = {
  p_name : string;  (** for disassembly and error reports *)
  p_arity : int;  (** parameters occupy locals [0..arity) *)
  p_nlocals : int;
  p_captures : capture array;
  p_code : instr array;
}

(** How a global slot is initialised at load time. *)
type ginit =
  | Gproto of int  (** a delayed CAF: thunk of the given proto *)
  | Gprim of string  (** a built-in primitive, by name *)

type program = {
  protos : proto array;
  consts : Ast.lit array;
  globals : (Ident.t * ginit) array;  (** the array index is the slot *)
  entry : Ident.t option;  (** the program's [main], if any *)
}

(* Scan from the end: a later binding shadows an earlier one of the same
   name (user bindings over primitives), as in the tree evaluator's
   environment. *)
let find_global (p : program) (name : Ident.t) : int option =
  let rec go i =
    if i < 0 then None
    else if Ident.equal (fst p.globals.(i)) name then Some i
    else go (i - 1)
  in
  go (Array.length p.globals - 1)

(* ------------------------------------------------------------------ *)
(* Disassembly.                                                        *)
(* ------------------------------------------------------------------ *)

let pp_lit ppf (l : Ast.lit) =
  match l with
  | Ast.LInt n -> Fmt.int ppf n
  | Ast.LFloat f -> Fmt.string ppf (Eval.float_str f)
  | Ast.LChar c -> Fmt.pf ppf "%C" c
  | Ast.LString s -> Fmt.pf ppf "%S" s

let pp_instr ppf (i : instr) =
  match i with
  | CONST k -> Fmt.pf ppf "CONST %d" k
  | LOCAL i -> Fmt.pf ppf "LOCAL %d" i
  | LOCALV i -> Fmt.pf ppf "LOCALV %d" i
  | ENV i -> Fmt.pf ppf "ENV %d" i
  | ENVV i -> Fmt.pf ppf "ENVV %d" i
  | GLOBAL i -> Fmt.pf ppf "GLOBAL %d" i
  | GLOBALV i -> Fmt.pf ppf "GLOBALV %d" i
  | CON rc -> Fmt.pf ppf "CON %s/%d" (Ident.text rc.Eval.rc_name) rc.Eval.rc_arity
  | CLOSURE p -> Fmt.pf ppf "CLOSURE %d" p
  | DELAY p -> Fmt.pf ppf "DELAY %d" p
  | STORE i -> Fmt.pf ppf "STORE %d" i
  | REC_ALLOC i -> Fmt.pf ppf "REC_ALLOC %d" i
  | REC_SET (l, p) -> Fmt.pf ppf "REC_SET %d <- %d" l p
  | FORCE_LOCAL i -> Fmt.pf ppf "FORCE_LOCAL %d" i
  | JUMP pc -> Fmt.pf ppf "JUMP %d" pc
  | IFELSE pc -> Fmt.pf ppf "IFELSE else:%d" pc
  | SWITCH sw ->
      Fmt.pf ppf "SWITCH scrut:%d [%s]%s" sw.sw_scrut
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun (c, pc) -> Printf.sprintf "%s->%d" (Ident.text c) pc)
                 sw.sw_cons)
            @ Array.to_list
                (Array.map
                   (fun (l, pc) -> Fmt.str "%a->%d" pp_lit l pc)
                   sw.sw_lits)))
        (if sw.sw_default >= 0 then Printf.sprintf " default:%d" sw.sw_default
         else "")
  | FIELD (l, i) -> Fmt.pf ppf "FIELD %d.%d" l i
  | MKDICT (tag, n) ->
      Fmt.pf ppf "MKDICT %d  ; %s %s" n
        (Ident.text tag.Core.dt_class) (Ident.text tag.Core.dt_tycon)
  | DICTSEL s ->
      Fmt.pf ppf "DICTSEL %d  ; %s.%s" s.Core.sel_index
        (Ident.text s.Core.sel_class) s.Core.sel_label
  | CALL n -> Fmt.pf ppf "CALL %d" n
  | TAILCALL n -> Fmt.pf ppf "TAILCALL %d" n
  | APPLY_LOCALS n -> Fmt.pf ppf "APPLY_LOCALS %d" n
  | RETURN -> Fmt.string ppf "RETURN"
  | FAIL m -> Fmt.pf ppf "FAIL %S" m

let pp_proto ppf (ix : int) (p : proto) =
  Fmt.pf ppf "proto %d: %s (arity %d, locals %d%s)@." ix p.p_name p.p_arity
    p.p_nlocals
    (if Array.length p.p_captures = 0 then ""
     else
       Printf.sprintf ", captures [%s]"
         (String.concat "; "
            (Array.to_list
               (Array.map
                  (function
                    | Cap_local i -> Printf.sprintf "local %d" i
                    | Cap_env i -> Printf.sprintf "env %d" i)
                  p.p_captures))));
  Array.iteri (fun pc i -> Fmt.pf ppf "  %4d  %a@." pc pp_instr i) p.p_code

let pp_program ppf (p : program) =
  Fmt.pf ppf "; constants: %d, globals: %d, protos: %d@." (Array.length p.consts)
    (Array.length p.globals) (Array.length p.protos);
  if Array.length p.consts > 0 then begin
    Fmt.pf ppf "@.constants:@.";
    Array.iteri (fun i l -> Fmt.pf ppf "  %4d  %a@." i pp_lit l) p.consts
  end;
  Fmt.pf ppf "@.globals:@.";
  Array.iteri
    (fun i (name, init) ->
      Fmt.pf ppf "  %4d  %s = %s@." i (Ident.text name)
        (match init with
         | Gprim s -> Printf.sprintf "<prim %s>" s
         | Gproto p -> Printf.sprintf "proto %d" p))
    p.globals;
  Fmt.pf ppf "@.";
  Array.iteri (fun i pr -> pp_proto ppf i pr; Fmt.pf ppf "@.") p.protos
