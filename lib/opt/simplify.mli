(** Local core-to-core simplifications: selection from a known dictionary
    collapses to the field (§8.4/§9), beta reduction, trivial/used-once let
    inlining, known-case reduction, dead lets. Meaning-preserving under the
    source's non-strict semantics. *)

val expr : Tc_core_ir.Core.expr -> Tc_core_ir.Core.expr
val program : Tc_core_ir.Core.program -> Tc_core_ir.Core.program
