(** Dictionary hoisting (paper §8.8): float dictionary computations that
    depend only on a binding's dictionary parameters out of its inner
    lambdas, so they are built once instead of once per call — the paper's
    [eqList] fix (full laziness restricted to dictionary expressions). *)

val program : Tc_core_ir.Core.program -> Tc_core_ir.Core.program
