(** Optimizer driver: named core-to-core passes and standard pipelines. *)

module Core = Tc_core_ir.Core

type pass =
  | Simplify      (** local rewrites incl. §8.4 constant-dictionary reduction *)
  | Inner_entry   (** §6.3/§7: avoid passing dictionaries to recursive calls *)
  | Hoist         (** §8.8: float dictionary construction out of lambdas *)
  | Specialise    (** §9: type-specific clones, removing dispatch *)
  | Dce           (** drop unreachable bindings *)

val pass_name : pass -> string

(** [spec] (default {!Specialise.default_policy}) parameterizes the
    [Specialise] pass and is ignored by every other pass; the report is
    [Some] exactly when the specializer ran. *)
val run_pass_report :
  ?spec:Specialise.policy -> pass -> Core.program ->
  Core.program * Specialise.report option

val run_pass : ?spec:Specialise.policy -> pass -> Core.program -> Core.program
val run : ?spec:Specialise.policy -> pass list -> Core.program -> Core.program

(** The standard "everything on" pipeline. *)
val all : pass list

(** Parse a CLI optimization level: [none], [simplify], [inner-entry],
    [hoist], [spec], [all]. *)
val of_string : string -> pass list option
