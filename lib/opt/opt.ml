(** Optimizer driver: named passes and standard pipelines. *)

module Core = Tc_core_ir.Core

type pass =
  | Simplify      (* local rewrites incl. §8.4 constant-dictionary reduction *)
  | Inner_entry   (* §6.3/§7: avoid passing dictionaries to recursive calls *)
  | Hoist         (* §8.8: float dictionary construction out of lambdas *)
  | Specialise    (* §9: type-specific clones, removing dispatch *)
  | Dce           (* drop unreachable bindings *)

let pass_name = function
  | Simplify -> "simplify"
  | Inner_entry -> "inner-entry"
  | Hoist -> "hoist"
  | Specialise -> "specialise"
  | Dce -> "dce"

(** Run one pass; [spec] parameterizes the [Specialise] pass (ignored by
    every other pass). The specializer's report, when it ran, rides in the
    second component. *)
let run_pass_report ?(spec = Specialise.default_policy) (p : pass)
    (prog : Core.program) : Core.program * Specialise.report option =
  match p with
  | Simplify -> (Simplify.program prog, None)
  | Inner_entry -> (Inner_entry.program prog, None)
  | Hoist -> (Hoist.program prog, None)
  | Specialise ->
      let prog, r = Specialise.program ~policy:spec prog in
      (prog, Some r)
  | Dce -> (Dce.program prog, None)

let run_pass ?spec (p : pass) (prog : Core.program) : Core.program =
  fst (run_pass_report ?spec p prog)

let run ?spec (passes : pass list) (prog : Core.program) : Core.program =
  List.fold_left (fun prog p -> run_pass ?spec p prog) prog passes

(** The standard "everything on" pipeline. *)
let all : pass list = [ Simplify; Inner_entry; Hoist; Specialise; Simplify; Dce ]

let of_string = function
  | "none" -> Some []
  | "simplify" -> Some [ Simplify ]
  | "inner-entry" -> Some [ Simplify; Inner_entry ]
  | "hoist" -> Some [ Simplify; Inner_entry; Hoist ]
  | "spec" | "specialise" | "specialize" -> Some [ Simplify; Specialise; Simplify; Dce ]
  | "all" -> Some all
  | _ -> None
