(** Specialization (paper §9): calls of overloaded functions with constant
    dictionary arguments are redirected to memoized type-specific clones
    with the dictionaries substituted; combined with simplification this
    eliminates dictionary operations from fully-specializable code. *)

val program : Tc_core_ir.Core.program -> Tc_core_ir.Core.program
