(** Specialization (paper §9): calls of overloaded functions with constant
    dictionary arguments are redirected to memoized type-specific clones
    with the dictionaries substituted; combined with simplification this
    eliminates dictionary operations from fully-specializable code.

    The pass is driven by a {!policy}: in static mode (the default) every
    overloaded binding is a cloning candidate; in profile-guided mode the
    caller supplies per-site hit counts (remapped from a
    {!Tc_obs.Profile.spec} by the pipeline — this library sits below the
    observability layer) and only {e hot} bindings, those whose bodies
    account for at least [hot_threshold] profiled dispatches, are cloned.
    The cold tail keeps dictionary dispatch unchanged. [max_clones] and
    [max_growth] bound code growth; a clone refused by the budget leaves
    its call site on dictionaries and is tallied in the report. *)

type policy = {
  hot_counts : (int * int) list option;
      (** profiled (site id, hits); [None] = static mode: all hot *)
  hot_threshold : int;
      (** minimum profiled hits in a binding's body to count as hot *)
  max_clones : int;  (** [<= 0] makes the pass the identity transform *)
  max_growth : float;
      (** cap on (estimated) program size as a multiple of the input;
          [<= 0] disables the cap *)
}

(** Static mode, threshold 1, 2000 clones, no growth cap — the behavior
    of the un-parameterized pass. *)
val default_policy : policy

(** What the pass did — replaces the old silent [program -> program]. *)
type report = {
  sr_clones : int;        (** type-specific clones minted *)
  sr_call_sites : int;    (** calls redirected to clones *)
  sr_hot_binds : int;     (** overloaded bindings deemed hot *)
  sr_cold_binds : int;    (** overloaded bindings left on dictionaries *)
  sr_budget_skips : int;  (** clones refused by the budget *)
  sr_size_before : int;
  sr_size_after : int;
  sr_sels_before : int;   (** static [Sel] node counts *)
  sr_sels_after : int;
  sr_dicts_before : int;  (** static [MkDict] node counts *)
  sr_dicts_after : int;
  sr_profile_guided : bool;
}

(** Code-growth ratio, [size_after / size_before] ([1.0] when empty). *)
val growth : report -> float

val program :
  ?policy:policy -> Tc_core_ir.Core.program ->
  Tc_core_ir.Core.program * report
