(** Specialization: type-specific clones of overloaded functions (paper §9:
    "It is possible to completely eliminate dynamic method dispatch within
    an overloaded function at specific overloadings by creating type
    specific clones").

    A call [f d1 .. dk a ..] where [f] is a top-level overloaded binding
    and every [di] is a constant dictionary expression (built only from
    top-level names) is rewritten to [f$T a ..], where the clone [f$T] is
    [f]'s body with the dictionaries substituted. Clones are memoized per
    dictionary tuple and processed to a fixed point, so recursive calls
    collapse onto the clone. A final {!Simplify} pass then removes the
    [Sel]/[MkDict] indirections — together with known-dictionary inlining
    this eliminates dictionary operations from fully-specializable code. *)

open Tc_support
module Core = Tc_core_ir.Core

let max_clones = 2000

type ctx = {
  (* top-level overloaded bindings: name -> (dict params, other params, body) *)
  overloaded : (Ident.t list * Ident.t list * Core.expr) Ident.Tbl.t;
  (* top-level dictionary bindings with literal MkDict bodies *)
  dict_bodies : Core.expr Ident.Tbl.t;
  top_names : unit Ident.Tbl.t;
  (* memo: (f, rendered dicts) -> clone name *)
  memo : (string, Ident.t) Hashtbl.t;
  mutable new_binds : Core.bind list;  (* clones, most recent first *)
  mutable clone_count : int;
}

(** Is [e] closed except for top-level names? *)
let is_constant ctx (e : Core.expr) : bool =
  Ident.Set.for_all (fun v -> Ident.Tbl.mem ctx.top_names v) (Core.free_vars e)

let key_of ctx f dicts =
  Fmt.str "%a|%a" Ident.pp f
    (Fmt.list ~sep:(Fmt.any ";") Tc_core_ir.Core_pp.pp)
    dicts
  |> fun s -> ignore ctx; s

let binders_of = Inner_entry.binders_of

(** Map over subexpressions carrying the set of locally-bound names (a
    conservative union per node: precise enough to avoid rewriting shadowed
    occurrences, the only soundness requirement here). *)
let map_sub_scoped (f : Ident.Set.t -> Core.expr -> Core.expr)
    (bound : Ident.Set.t) (e : Core.expr) : Core.expr =
  match e with
  | Core.Case (s, alts, d) ->
      Core.Case
        ( f bound s,
          List.map
            (fun (a : Core.alt) ->
              let bound' =
                List.fold_left (fun s' v -> Ident.Set.add v s') bound a.alt_vars
              in
              { a with alt_body = f bound' a.alt_body })
            alts,
          Option.map (f bound) d )
  | _ ->
      let bound' =
        List.fold_left (fun s v -> Ident.Set.add v s) bound (binders_of e)
      in
      Core.map_sub (f bound') e

let rec specialise_expr ctx ?(bound = Ident.Set.empty) (e : Core.expr) :
    Core.expr =
  let e = map_sub_scoped (fun b e' -> specialise_expr ctx ~bound:b e') bound e in
  match Core.unfold_app e [] with
  | Core.Var f, args
    when Ident.Tbl.mem ctx.overloaded f && not (Ident.Set.mem f bound) ->
      let dict_params, _, _ = Ident.Tbl.find ctx.overloaded f in
      let k = List.length dict_params in
      if List.length args >= k && ctx.clone_count < max_clones then begin
        let dicts = List.filteri (fun i _ -> i < k) args in
        let rest = List.filteri (fun i _ -> i >= k) args in
        if List.for_all (is_constant ctx) dicts then
          let clone = clone_for ctx f dicts in
          Core.apps (Core.Var clone) rest
        else e
      end
      else e
  | _ -> e

and clone_for ctx (f : Ident.t) (dicts : Core.expr list) : Ident.t =
  let key = key_of ctx f dicts in
  match Hashtbl.find_opt ctx.memo key with
  | Some name -> name
  | None ->
      let dict_params, other_params, body = Ident.Tbl.find ctx.overloaded f in
      let name = Ident.gensym (Ident.text f ^ "$spec") in
      ctx.clone_count <- ctx.clone_count + 1;
      Hashtbl.add ctx.memo key name;
      Ident.Tbl.replace ctx.top_names name ();
      let subst =
        List.fold_left2
          (fun m p d -> Ident.Map.add p d m)
          Ident.Map.empty dict_params dicts
      in
      let body' = Core.subst subst body in
      (* simplify first (collapses Sel-of-known-dict), then look for more
         specializable calls inside the clone — including its own
         recursive calls, which now carry constant dictionaries *)
      let body' = Simplify.expr body' in
      let body' = specialise_expr ctx body' in
      let body' = Simplify.expr body' in
      ctx.new_binds <-
        { Core.b_name = name; b_expr = Core.lam other_params body' }
        :: ctx.new_binds;
      name

(** Forward selections from constant top-level dictionaries:
    [Sel i d$Eq$Int] → the field expression. Applied during clone
    simplification via an extra rewrite walk. *)
let resolve_top_sels ctx (e : Core.expr) : Core.expr =
  let rec go e =
    let e = Core.map_sub go e in
    match e with
    | Core.Sel (info, Core.Var d) -> (
        match Ident.Tbl.find_opt ctx.dict_bodies d with
        | Some (Core.MkDict (_, fields))
          when info.sel_index < List.length fields ->
            go (List.nth fields info.sel_index)
        | _ -> e)
    | _ -> e
  in
  go e

(* ------------------------------------------------------------------ *)
(* §8.4 "Reducing Constant Dictionaries": "local functions which are     *)
(* inferred to have an overloaded type but are used at only one          *)
(* overloading". When every call of a let-bound overloaded function      *)
(* passes the same constant dictionaries, bake them in.                  *)
(* ------------------------------------------------------------------ *)

(** All (first-k-argument lists of) calls of [g] in [e]; [None] if [g]
    occurs other than as the head of a sufficiently-applied call. *)
let call_dicts (g : Ident.t) (k : int) (e : Core.expr) :
    Core.expr list list option =
  let acc = ref [] in
  let ok = ref true in
  let rec go e =
    (* conservatively refuse when any node rebinds g *)
    if List.exists (Ident.equal g) (binders_of e) then ok := false
    else
      match Core.unfold_app e [] with
      | Core.Var g', args when Ident.equal g g' ->
          if List.length args >= k then begin
            acc := List.filteri (fun i _ -> i < k) args :: !acc;
            List.iter go args
          end
          else ok := false
      | _ ->
          (match e with
           | Core.Var g' when Ident.equal g g' -> ok := false
           | _ -> ());
          Core.iter_sub go e
  in
  go e;
  if !ok then Some !acc else None

let rewrite_local_calls (g : Ident.t) (k : int) (e : Core.expr) : Core.expr =
  let rec go e =
    if List.exists (Ident.equal g) (binders_of e) then e
    else
      match Core.unfold_app e [] with
      | Core.Var g', args when Ident.equal g g' && List.length args >= k ->
          Core.apps (Core.Var g')
            (List.filteri (fun i _ -> i >= k) (List.map go args))
      | _ -> Core.map_sub go e
  in
  go e

let rec local_reduce ctx (e : Core.expr) : Core.expr =
  let e = Core.map_sub (local_reduce ctx) e in
  match e with
  | Core.Let ((Core.Nonrec { b_name = g; b_expr = Core.Lam (vs, body) } as grp), ebody)
    -> (
      ignore grp;
      match Inner_entry.dict_prefix vs with
      | [], _ -> e
      | ds, rest -> (
          let k = List.length ds in
          match call_dicts g k ebody with
          | Some (first :: others)
            when List.for_all (List.for_all (is_constant ctx)) (first :: others)
                 && List.for_all
                      (fun args ->
                        List.for_all2
                          (fun a b ->
                            Fmt.str "%a" Tc_core_ir.Core_pp.pp a
                            = Fmt.str "%a" Tc_core_ir.Core_pp.pp b)
                          args first)
                      others ->
              (* bake the dictionaries into the binding, drop them at calls *)
              let subst =
                List.fold_left2
                  (fun m p d -> Ident.Map.add p d m)
                  Ident.Map.empty ds first
              in
              let body' = Simplify.expr (Core.subst subst (Core.lam rest body)) in
              Core.Let
                ( Core.Nonrec { b_name = g; b_expr = body' },
                  rewrite_local_calls g k ebody )
          | _ -> e))
  | _ -> e

let program (p : Core.program) : Core.program =
  let ctx =
    {
      overloaded = Ident.Tbl.create 64;
      dict_bodies = Ident.Tbl.create 64;
      top_names = Ident.Tbl.create 256;
      memo = Hashtbl.create 64;
      new_binds = [];
      clone_count = 0;
    }
  in
  let all_binds = List.concat_map Core.binds_of_group p.p_binds in
  List.iter
    (fun (b : Core.bind) ->
      Ident.Tbl.replace ctx.top_names b.b_name ();
      (match b.b_expr with
       | Core.Lam (vs, body) -> (
           match Inner_entry.dict_prefix vs with
           | [], _ -> ()
           | ds, others -> Ident.Tbl.replace ctx.overloaded b.b_name (ds, others, body))
       | _ -> ());
      match b.b_expr with
      | Core.MkDict _ -> Ident.Tbl.replace ctx.dict_bodies b.b_name b.b_expr
      | Core.Let
          ( Core.Rec [ { b_name = self; b_expr = Core.MkDict (tag, fields) } ],
            Core.Var self' )
        when Ident.equal self self' ->
          (* a dictionary tied through a knot for its default methods: the
             knot variable IS the top-level dictionary, so substitute it *)
          let subst = Ident.Map.singleton self (Core.Var b.b_name) in
          Ident.Tbl.replace ctx.dict_bodies b.b_name
            (Core.MkDict (tag, List.map (Core.subst subst) fields))
      | _ -> ())
    all_binds;
  let do_bind (b : Core.bind) =
    (* §8.4 constant-dictionary reduction everywhere, then clone calls *)
    let e =
      if Ident.Tbl.mem ctx.dict_bodies b.b_name then b.b_expr
      else resolve_top_sels ctx (local_reduce ctx b.b_expr)
    in
    { b with b_expr = specialise_expr ctx e }
  in
  let rewritten =
    List.map
      (function
        | Core.Nonrec b -> Core.Nonrec (do_bind b)
        | Core.Rec bs -> Core.Rec (List.map do_bind bs))
      p.p_binds
  in
  (* drain the clone worklist: post-processing a clone can create more *)
  let clones = ref [] in
  let rec drain () =
    match ctx.new_binds with
    | [] -> ()
    | b :: rest ->
        ctx.new_binds <- rest;
        let b =
          { b with b_expr = specialise_expr ctx (resolve_top_sels ctx b.b_expr) }
        in
        clones := Core.Nonrec b :: !clones;
        drain ()
  in
  drain ();
  let clones = List.rev !clones in
  let p' = { p with p_binds = rewritten @ clones } in
  let p' = Tc_core_ir.Scc.regroup p' in
  Simplify.program p'
