(** Specialization: type-specific clones of overloaded functions (paper §9:
    "It is possible to completely eliminate dynamic method dispatch within
    an overloaded function at specific overloadings by creating type
    specific clones").

    A call [f d1 .. dk a ..] where [f] is a top-level overloaded binding
    and every [di] is a constant dictionary expression (built only from
    top-level names) is rewritten to [f$T a ..], where the clone [f$T] is
    [f]'s body with the dictionaries substituted. Clones are memoized per
    dictionary tuple and processed to a fixed point, so recursive calls
    collapse onto the clone. A final {!Simplify} pass then removes the
    [Sel]/[MkDict] indirections — together with known-dictionary inlining
    this eliminates dictionary operations from fully-specializable code. *)

open Tc_support
module Core = Tc_core_ir.Core

(* ------------------------------------------------------------------ *)
(* Policy and report.                                                  *)
(* ------------------------------------------------------------------ *)

type policy = {
  hot_counts : (int * int) list option;
      (* profiled (site id, hit count) pairs for the program being
         specialized; [None] = static mode, every overloaded binding is
         hot. Dependency note: this library sits below [Tc_obs], so the
         profile arrives pre-remapped as plain pairs. *)
  hot_threshold : int;
      (* an overloaded binding is hot iff the profiled hits over the
         dispatch sites in its body sum to at least this *)
  max_clones : int;   (* <= 0 disables cloning entirely (identity) *)
  max_growth : float; (* size cap as a multiple of the input; <= 0 = off *)
}

let default_policy =
  { hot_counts = None; hot_threshold = 1; max_clones = 2000; max_growth = 0. }

type report = {
  sr_clones : int;        (* type-specific clones minted *)
  sr_call_sites : int;    (* calls redirected to clones *)
  sr_hot_binds : int;     (* overloaded bindings deemed hot *)
  sr_cold_binds : int;    (* overloaded bindings left on dictionaries *)
  sr_budget_skips : int;  (* clones refused by max_clones/max_growth *)
  sr_size_before : int;
  sr_size_after : int;
  sr_sels_before : int;   (* static Sel node counts *)
  sr_sels_after : int;
  sr_dicts_before : int;  (* static MkDict node counts *)
  sr_dicts_after : int;
  sr_profile_guided : bool;
}

let growth (r : report) : float =
  if r.sr_size_before = 0 then 1.
  else float_of_int r.sr_size_after /. float_of_int r.sr_size_before

(* static program measurements, for the report (this library cannot see
   [Tc_obs.Profile], which has the same helpers for the trace layer) *)
let program_size (p : Core.program) : int =
  List.fold_left
    (fun acc g ->
      List.fold_left
        (fun acc (b : Core.bind) -> acc + Core.size b.Core.b_expr)
        acc (Core.binds_of_group g))
    0 p.Core.p_binds

let static_dict_ops (p : Core.program) : int * int =
  let sels = ref 0 and dicts = ref 0 in
  let rec go (e : Core.expr) =
    (match e with
     | Core.Sel _ -> incr sels
     | Core.MkDict _ -> incr dicts
     | _ -> ());
    Core.iter_sub go e
  in
  List.iter
    (fun g ->
      List.iter (fun (b : Core.bind) -> go b.Core.b_expr) (Core.binds_of_group g))
    p.Core.p_binds;
  (!sels, !dicts)

type ctx = {
  policy : policy;
  (* top-level overloaded bindings: name -> (dict params, other params, body) *)
  overloaded : (Ident.t list * Ident.t list * Core.expr) Ident.Tbl.t;
  (* the hot subset of [overloaded] — the only bindings worth cloning *)
  hot : unit Ident.Tbl.t;
  (* top-level dictionary bindings with literal MkDict bodies *)
  dict_bodies : Core.expr Ident.Tbl.t;
  top_names : unit Ident.Tbl.t;
  (* memo: (f, rendered dicts) -> clone name *)
  memo : (string, Ident.t) Hashtbl.t;
  mutable new_binds : Core.bind list;  (* clones, most recent first *)
  mutable clone_count : int;
  mutable call_sites : int;    (* calls redirected to clones *)
  mutable budget_skips : int;  (* clone mints refused by the budget *)
  mutable est_size : int;      (* input size + estimated clone growth *)
  size_allowance : int;        (* max_int when max_growth is off *)
}

(** Is [e] closed except for top-level names? *)
let is_constant ctx (e : Core.expr) : bool =
  Ident.Set.for_all (fun v -> Ident.Tbl.mem ctx.top_names v) (Core.free_vars e)

let key_of ctx f dicts =
  Fmt.str "%a|%a" Ident.pp f
    (Fmt.list ~sep:(Fmt.any ";") Tc_core_ir.Core_pp.pp)
    dicts
  |> fun s -> ignore ctx; s

let binders_of = Inner_entry.binders_of

(** Map over subexpressions carrying the set of locally-bound names (a
    conservative union per node: precise enough to avoid rewriting shadowed
    occurrences, the only soundness requirement here). *)
let map_sub_scoped (f : Ident.Set.t -> Core.expr -> Core.expr)
    (bound : Ident.Set.t) (e : Core.expr) : Core.expr =
  match e with
  | Core.Case (s, alts, d) ->
      Core.Case
        ( f bound s,
          List.map
            (fun (a : Core.alt) ->
              let bound' =
                List.fold_left (fun s' v -> Ident.Set.add v s') bound a.alt_vars
              in
              { a with alt_body = f bound' a.alt_body })
            alts,
          Option.map (f bound) d )
  | _ ->
      let bound' =
        List.fold_left (fun s v -> Ident.Set.add v s) bound (binders_of e)
      in
      Core.map_sub (f bound') e

let rec specialise_expr ctx ?(bound = Ident.Set.empty) (e : Core.expr) :
    Core.expr =
  let e = map_sub_scoped (fun b e' -> specialise_expr ctx ~bound:b e') bound e in
  match Core.unfold_app e [] with
  | Core.Var f, args
    when Ident.Tbl.mem ctx.hot f && not (Ident.Set.mem f bound) ->
      let dict_params, _, _ = Ident.Tbl.find ctx.overloaded f in
      let k = List.length dict_params in
      if List.length args >= k then begin
        let dicts = List.filteri (fun i _ -> i < k) args in
        let rest = List.filteri (fun i _ -> i >= k) args in
        if List.for_all (is_constant ctx) dicts then
          match clone_for ctx f dicts with
          | Some clone ->
              ctx.call_sites <- ctx.call_sites + 1;
              Core.apps (Core.Var clone) rest
          | None -> e
        else e
      end
      else e
  | _ -> e

and clone_for ctx (f : Ident.t) (dicts : Core.expr list) : Ident.t option =
  let key = key_of ctx f dicts in
  match Hashtbl.find_opt ctx.memo key with
  | Some name -> Some name
  | None ->
      let dict_params, other_params, body = Ident.Tbl.find ctx.overloaded f in
      (* the budget: a clone count cap plus an (estimated, checked before
         the mint so recursion through the memo stays simple) code-growth
         cap relative to the input program *)
      let est = Core.size body in
      if
        ctx.clone_count >= ctx.policy.max_clones
        || ctx.est_size + est > ctx.size_allowance
      then begin
        ctx.budget_skips <- ctx.budget_skips + 1;
        None
      end
      else begin
        let name = Ident.gensym (Ident.text f ^ "$spec") in
        ctx.clone_count <- ctx.clone_count + 1;
        ctx.est_size <- ctx.est_size + est;
        Hashtbl.add ctx.memo key name;
        Ident.Tbl.replace ctx.top_names name ();
        let subst =
          List.fold_left2
            (fun m p d -> Ident.Map.add p d m)
            Ident.Map.empty dict_params dicts
        in
        let body' = Core.subst subst body in
        (* simplify first (collapses Sel-of-known-dict), then look for more
           specializable calls inside the clone — including its own
           recursive calls, which now carry constant dictionaries *)
        let body' = Simplify.expr body' in
        let body' = specialise_expr ctx body' in
        let body' = Simplify.expr body' in
        ctx.new_binds <-
          { Core.b_name = name; b_expr = Core.lam other_params body' }
          :: ctx.new_binds;
        Some name
      end

(** Forward selections from constant top-level dictionaries:
    [Sel i d$Eq$Int] → the field expression. Applied during clone
    simplification via an extra rewrite walk. *)
let resolve_top_sels ctx (e : Core.expr) : Core.expr =
  let rec go e =
    let e = Core.map_sub go e in
    match e with
    | Core.Sel (info, Core.Var d) -> (
        match Ident.Tbl.find_opt ctx.dict_bodies d with
        | Some (Core.MkDict (_, fields))
          when info.sel_index < List.length fields ->
            go (List.nth fields info.sel_index)
        | _ -> e)
    | _ -> e
  in
  go e

(* ------------------------------------------------------------------ *)
(* §8.4 "Reducing Constant Dictionaries": "local functions which are     *)
(* inferred to have an overloaded type but are used at only one          *)
(* overloading". When every call of a let-bound overloaded function      *)
(* passes the same constant dictionaries, bake them in.                  *)
(* ------------------------------------------------------------------ *)

(** All (first-k-argument lists of) calls of [g] in [e]; [None] if [g]
    occurs other than as the head of a sufficiently-applied call. *)
let call_dicts (g : Ident.t) (k : int) (e : Core.expr) :
    Core.expr list list option =
  let acc = ref [] in
  let ok = ref true in
  let rec go e =
    (* conservatively refuse when any node rebinds g *)
    if List.exists (Ident.equal g) (binders_of e) then ok := false
    else
      match Core.unfold_app e [] with
      | Core.Var g', args when Ident.equal g g' ->
          if List.length args >= k then begin
            acc := List.filteri (fun i _ -> i < k) args :: !acc;
            List.iter go args
          end
          else ok := false
      | _ ->
          (match e with
           | Core.Var g' when Ident.equal g g' -> ok := false
           | _ -> ());
          Core.iter_sub go e
  in
  go e;
  if !ok then Some !acc else None

let rewrite_local_calls (g : Ident.t) (k : int) (e : Core.expr) : Core.expr =
  let rec go e =
    if List.exists (Ident.equal g) (binders_of e) then e
    else
      match Core.unfold_app e [] with
      | Core.Var g', args when Ident.equal g g' && List.length args >= k ->
          Core.apps (Core.Var g')
            (List.filteri (fun i _ -> i >= k) (List.map go args))
      | _ -> Core.map_sub go e
  in
  go e

let rec local_reduce ctx (e : Core.expr) : Core.expr =
  let e = Core.map_sub (local_reduce ctx) e in
  match e with
  | Core.Let ((Core.Nonrec { b_name = g; b_expr = Core.Lam (vs, body) } as grp), ebody)
    -> (
      ignore grp;
      match Inner_entry.dict_prefix vs with
      | [], _ -> e
      | ds, rest -> (
          let k = List.length ds in
          match call_dicts g k ebody with
          | Some (first :: others)
            when List.for_all (List.for_all (is_constant ctx)) (first :: others)
                 && List.for_all
                      (fun args ->
                        List.for_all2
                          (fun a b ->
                            Fmt.str "%a" Tc_core_ir.Core_pp.pp a
                            = Fmt.str "%a" Tc_core_ir.Core_pp.pp b)
                          args first)
                      others ->
              (* bake the dictionaries into the binding, drop them at calls *)
              let subst =
                List.fold_left2
                  (fun m p d -> Ident.Map.add p d m)
                  Ident.Map.empty ds first
              in
              let body' = Simplify.expr (Core.subst subst (Core.lam rest body)) in
              Core.Let
                ( Core.Nonrec { b_name = g; b_expr = body' },
                  rewrite_local_calls g k ebody )
          | _ -> e))
  | _ -> e

(* Profiled hits attributed to [e]: the sum over the dispatch sites
   occurring in it. *)
let profiled_hits (counts : (int, int) Hashtbl.t) (e : Core.expr) : int =
  let total = ref 0 in
  let hit id =
    match Hashtbl.find_opt counts id with
    | Some n -> total := !total + n
    | None -> ()
  in
  let rec go (e : Core.expr) =
    (match e with
     | Core.Sel (s, _) -> hit s.Core.sel_site.Core.site_id
     | Core.MkDict (t, _) -> hit t.Core.dt_site.Core.site_id
     | _ -> ());
    Core.iter_sub go e
  in
  go e;
  !total

let empty_report ~profile_guided (p : Core.program) : report =
  let size = program_size p in
  let sels, dicts = static_dict_ops p in
  {
    sr_clones = 0;
    sr_call_sites = 0;
    sr_hot_binds = 0;
    sr_cold_binds = 0;
    sr_budget_skips = 0;
    sr_size_before = size;
    sr_size_after = size;
    sr_sels_before = sels;
    sr_sels_after = sels;
    sr_dicts_before = dicts;
    sr_dicts_after = dicts;
    sr_profile_guided = profile_guided;
  }

let program ?(policy = default_policy) (p : Core.program) :
    Core.program * report =
  let profile_guided = policy.hot_counts <> None in
  if policy.max_clones <= 0 then
    (* clone budget 0 is the identity transform: no cloning, and also no
       §8.4 local reduction or top-level Sel forwarding — the program
       comes back untouched *)
    (p, empty_report ~profile_guided p)
  else begin
  let size_before = program_size p in
  let sels_before, dicts_before = static_dict_ops p in
  let ctx =
    {
      policy;
      overloaded = Ident.Tbl.create 64;
      hot = Ident.Tbl.create 64;
      dict_bodies = Ident.Tbl.create 64;
      top_names = Ident.Tbl.create 256;
      memo = Hashtbl.create 64;
      new_binds = [];
      clone_count = 0;
      call_sites = 0;
      budget_skips = 0;
      est_size = size_before;
      size_allowance =
        (if policy.max_growth <= 0. then max_int
         else int_of_float (policy.max_growth *. float_of_int size_before));
    }
  in
  let all_binds = List.concat_map Core.binds_of_group p.p_binds in
  List.iter
    (fun (b : Core.bind) ->
      Ident.Tbl.replace ctx.top_names b.b_name ();
      (match b.b_expr with
       | Core.Lam (vs, body) -> (
           match Inner_entry.dict_prefix vs with
           | [], _ -> ()
           | ds, others -> Ident.Tbl.replace ctx.overloaded b.b_name (ds, others, body))
       | _ -> ());
      match b.b_expr with
      | Core.MkDict _ -> Ident.Tbl.replace ctx.dict_bodies b.b_name b.b_expr
      | Core.Let
          ( Core.Rec [ { b_name = self; b_expr = Core.MkDict (tag, fields) } ],
            Core.Var self' )
        when Ident.equal self self' ->
          (* a dictionary tied through a knot for its default methods: the
             knot variable IS the top-level dictionary, so substitute it *)
          let subst = Ident.Map.singleton self (Core.Var b.b_name) in
          Ident.Tbl.replace ctx.dict_bodies b.b_name
            (Core.MkDict (tag, List.map (Core.subst subst) fields))
      | _ -> ())
    all_binds;
  (* hotness: in static mode every overloaded binding is hot; under a
     profile, hot iff the profiled hits over the dispatch sites in the
     binding's body reach the threshold. Cold bindings keep dictionary
     dispatch — their call sites are left alone entirely. *)
  let hot_binds = ref 0 and cold_binds = ref 0 in
  (match policy.hot_counts with
   | None ->
       Ident.Tbl.iter
         (fun f _ ->
           incr hot_binds;
           Ident.Tbl.replace ctx.hot f ())
         ctx.overloaded
   | Some pairs ->
       let counts = Hashtbl.create 64 in
       List.iter
         (fun (id, n) ->
           let prev = Option.value ~default:0 (Hashtbl.find_opt counts id) in
           Hashtbl.replace counts id (prev + n))
         pairs;
       let threshold = max 1 policy.hot_threshold in
       List.iter
         (fun (b : Core.bind) ->
           if Ident.Tbl.mem ctx.overloaded b.b_name then
             if profiled_hits counts b.b_expr >= threshold then begin
               incr hot_binds;
               Ident.Tbl.replace ctx.hot b.b_name ()
             end
             else incr cold_binds)
         all_binds);
  let do_bind (b : Core.bind) =
    (* §8.4 constant-dictionary reduction everywhere, then clone calls *)
    let e =
      if Ident.Tbl.mem ctx.dict_bodies b.b_name then b.b_expr
      else resolve_top_sels ctx (local_reduce ctx b.b_expr)
    in
    { b with b_expr = specialise_expr ctx e }
  in
  let rewritten =
    List.map
      (function
        | Core.Nonrec b -> Core.Nonrec (do_bind b)
        | Core.Rec bs -> Core.Rec (List.map do_bind bs))
      p.p_binds
  in
  (* drain the clone worklist: post-processing a clone can create more *)
  let clones = ref [] in
  let rec drain () =
    match ctx.new_binds with
    | [] -> ()
    | b :: rest ->
        ctx.new_binds <- rest;
        let b =
          { b with b_expr = specialise_expr ctx (resolve_top_sels ctx b.b_expr) }
        in
        clones := Core.Nonrec b :: !clones;
        drain ()
  in
  drain ();
  let clones = List.rev !clones in
  let p' = { p with p_binds = rewritten @ clones } in
  let p' = Tc_core_ir.Scc.regroup p' in
  let p' = Simplify.program p' in
  let sels_after, dicts_after = static_dict_ops p' in
  ( p',
    {
      sr_clones = ctx.clone_count;
      sr_call_sites = ctx.call_sites;
      sr_hot_binds = !hot_binds;
      sr_cold_binds = !cold_binds;
      sr_budget_skips = ctx.budget_skips;
      sr_size_before = size_before;
      sr_size_after = program_size p';
      sr_sels_before = sels_before;
      sr_sels_after = sels_after;
      sr_dicts_before = dicts_before;
      sr_dicts_after = dicts_after;
      sr_profile_guided = profile_guided;
    } )
  end
