(** Dead-binding elimination: drop top-level bindings unreachable from
    [main] (or the given roots; everything is kept when no roots exist). *)

open Tc_support

val program : ?roots:Ident.t list -> Tc_core_ir.Core.program -> Tc_core_ir.Core.program
