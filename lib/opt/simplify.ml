(** Local core-to-core simplifications.

    The workhorse behind §8.4/§9 optimizations: after dictionaries are made
    constant (by specialization or inlining), [Sel] applied to a literal
    [MkDict] collapses to the selected field, turning dictionary dispatch
    into direct calls. Also performs beta reduction, inlining of trivial or
    used-once lets, known-case reduction and dead-let elimination.

    MiniHaskell is pure (non-termination and [error] are the only effects)
    and the source semantics is non-strict, so discarding or duplicating
    {e unevaluated} expressions is meaning-preserving. *)

open Tc_support
module Core = Tc_core_ir.Core

(** Count free occurrences of [x] in [e]. *)
let occurrences (x : Ident.t) (e : Core.expr) : int =
  let n = ref 0 in
  let rec go bound e =
    match e with
    | Core.Var y -> if Ident.equal x y && not (Ident.Set.mem y bound) then incr n
    | Core.Lit _ | Core.Con _ -> ()
    | Core.Lam (vs, b) ->
        if not (List.exists (Ident.equal x) vs) then
          go (List.fold_left (fun s v -> Ident.Set.add v s) bound vs) b
    | Core.Let (Core.Nonrec bd, body) ->
        go bound bd.b_expr;
        if not (Ident.equal x bd.b_name) then
          go (Ident.Set.add bd.b_name bound) body
    | Core.Let (Core.Rec bds, body) ->
        if not (List.exists (fun (b : Core.bind) -> Ident.equal x b.b_name) bds)
        then begin
          let bound =
            List.fold_left (fun s (b : Core.bind) -> Ident.Set.add b.b_name s)
              bound bds
          in
          List.iter (fun (b : Core.bind) -> go bound b.b_expr) bds;
          go bound body
        end
    | Core.App (f, a) -> go bound f; go bound a
    | Core.If (c, t, f) -> go bound c; go bound t; go bound f
    | Core.Case (s, alts, d) ->
        go bound s;
        List.iter
          (fun (a : Core.alt) ->
            if not (List.exists (Ident.equal x) a.alt_vars) then
              go
                (List.fold_left (fun s' v -> Ident.Set.add v s') bound a.alt_vars)
                a.alt_body)
          alts;
        Option.iter (go bound) d
    | Core.MkDict (_, fs) -> List.iter (go bound) fs
    | Core.Sel (_, d) -> go bound d
    | Core.Hole h -> Option.iter (go bound) h.hole_fill
  in
  go Ident.Set.empty e;
  !n

let is_atom = function
  | Core.Var _ | Core.Lit _ | Core.Con _ -> true
  | _ -> false

(** A cheap, duplication-safe expression: atoms and selection chains. *)
let rec is_cheap = function
  | Core.Var _ | Core.Lit _ | Core.Con _ -> true
  | Core.Sel (_, d) -> is_cheap d
  | _ -> false

let rec simpl (e : Core.expr) : Core.expr =
  let e = Core.map_sub simpl e in
  rewrite e

and rewrite (e : Core.expr) : Core.expr =
  match e with
  (* selection from a known dictionary: the §8.4/§9 payoff *)
  | Core.Sel (info, Core.MkDict (_, fields))
    when info.sel_index < List.length fields ->
      simpl (List.nth fields info.sel_index)
  (* beta reduction *)
  | Core.App (Core.Lam ([ v ], b), a) -> rewrite (Core.let1 v a b)
  | Core.App (Core.Lam (v :: vs, b), a) ->
      rewrite (Core.let1 v a (Core.Lam (vs, b)))
  (* let simplifications *)
  | Core.Let (Core.Nonrec bd, body) ->
      (* a let-bound literal dictionary: forward its fields to selections
         so the construction can die (§8.4 constant-dictionary reduction) *)
      let body =
        match bd.b_expr with
        | Core.MkDict (_, fields) -> forward_sels bd.b_name fields body
        | _ -> body
      in
      let uses = occurrences bd.b_name body in
      if uses = 0 then body
      else if is_atom bd.b_expr || (uses = 1 && is_cheap bd.b_expr) then
        simpl (Core.subst (Ident.Map.singleton bd.b_name bd.b_expr) body)
      else Core.Let (Core.Nonrec bd, body)
  | Core.Let (Core.Rec bds, body) ->
      (* drop recursive bindings unused by the body or the other binds *)
      let used (b : Core.bind) =
        occurrences b.b_name body > 0
        || List.exists
             (fun (b' : Core.bind) ->
               (not (Ident.equal b'.b_name b.b_name))
               && occurrences b.b_name b'.b_expr > 0)
             bds
      in
      (match List.filter used bds with
       | [] -> body
       | bds' -> Core.Let (Core.Rec bds', body))
  (* known conditionals *)
  | Core.If (Core.Con c, t, f) ->
      if Ident.text c = "True" then t
      else if Ident.text c = "False" then f
      else e
  (* case of a known constructor application *)
  | Core.Case (s, alts, d) -> (
      match Core.unfold_app s [] with
      | Core.Con c, args -> (
          match
            List.find_opt
              (fun (a : Core.alt) ->
                match a.alt_con with
                | Core.Tcon c' -> Ident.equal c c'
                | Core.Tlit _ -> false)
              alts
          with
          | Some a when List.length a.alt_vars = List.length args ->
              simpl
                (List.fold_right2
                   (fun v arg acc -> Core.let1 v arg acc)
                   a.alt_vars args a.alt_body)
          | Some _ -> e
          | None -> ( match d with Some d' -> d' | None -> e))
      | _ -> e)
  | _ -> e

(** Replace [Sel (i, Var d)] by the corresponding field of the literal
    dictionary bound to [d]. Duplicated fields are instance-method partial
    applications — cheap and pure — and once no selection mentions [d] the
    construction itself is removed as dead. *)
and forward_sels (d : Ident.t) (fields : Core.expr list) (body : Core.expr) :
    Core.expr =
  let rec go e =
    match e with
    | Core.Sel (info, Core.Var d') when Ident.equal d d' ->
        if info.sel_index < List.length fields then
          go (List.nth fields info.sel_index)
        else e
    | Core.Lam (vs, _) when List.exists (Ident.equal d) vs -> e
    | Core.Let (Core.Nonrec bd, b) when Ident.equal bd.b_name d ->
        (* shadowed in the body; still rewrite the right-hand side *)
        Core.Let (Core.Nonrec { bd with b_expr = go bd.b_expr }, b)
    | Core.Let (Core.Rec bds, _)
      when List.exists (fun (b : Core.bind) -> Ident.equal b.b_name d) bds ->
        e
    | Core.Case (s, alts, dflt) ->
        Core.Case
          ( go s,
            List.map
              (fun (a : Core.alt) ->
                if List.exists (Ident.equal d) a.alt_vars then a
                else { a with alt_body = go a.alt_body })
              alts,
            Option.map go dflt )
    | _ -> Core.map_sub go e
  in
  go body

let expr = simpl

let program (p : Core.program) : Core.program =
  let do_bind (b : Core.bind) = { b with b_expr = simpl b.b_expr } in
  {
    p with
    p_binds =
      List.map
        (function
          | Core.Nonrec b -> Core.Nonrec (do_bind b)
          | Core.Rec bs -> Core.Rec (List.map do_bind bs))
        p.p_binds;
  }
