(** Inner entry points for recursive overloaded functions (paper §6.3/§7).

    "Since any dictionaries passed to a recursive call remain unchanged
    from the original entry to the function, the need to pass dictionaries
    to inner recursive calls can be eliminated by using an inner entry
    point where the dictionaries have already been bound."

    [f = \d1..dk x.. -> ...(f d1..dk e)...] becomes
    [f = \d1..dk -> letrec f' = \x.. -> ...(f' e)... in f']
    whenever every recursive occurrence of [f] passes exactly its own
    dictionary parameters. *)

open Tc_support
module Core = Tc_core_ir.Core

let is_dict_param (v : Ident.t) =
  let s = Ident.text v in
  String.length s >= 2 && s.[0] = 'd' && s.[1] = '$'

(** Leading dictionary parameters of a lambda binder list. *)
let rec dict_prefix = function
  | v :: rest when is_dict_param v ->
      let ds, others = dict_prefix rest in
      (v :: ds, others)
  | rest -> ([], rest)

(** Binders introduced by one node (shadow-aware traversals). *)
let binders_of (e : Core.expr) : Ident.t list =
  match e with
  | Core.Lam (vs, _) -> vs
  | Core.Let (g, _) ->
      List.map (fun (b : Core.bind) -> b.b_name) (Core.binds_of_group g)
  | Core.Case (_, alts, _) ->
      List.concat_map (fun (a : Core.alt) -> a.alt_vars) alts
  | _ -> []

(** Does every occurrence of [f] in [e] appear as the head of an
    application to exactly the dictionary arguments [ds] (as variables, in
    order)? Conservatively false when anything rebinds [f]. *)
let all_calls_saturated (f : Ident.t) (ds : Ident.t list) (e : Core.expr) : bool
    =
  let ok = ref true in
  let k = List.length ds in
  let check_args args =
    List.length args >= k
    && List.for_all2
         (fun d arg -> match arg with Core.Var v -> Ident.equal v d | _ -> false)
         ds
         (List.filteri (fun i _ -> i < k) args)
  in
  let rec go e =
    if List.exists (Ident.equal f) (binders_of e) then ok := false
    else
      match Core.unfold_app e [] with
      | Core.Var g, args when Ident.equal g f ->
          if not (check_args args) then ok := false;
          List.iter go args
      | _ ->
          (match e with
           | Core.Var g when Ident.equal g f -> ok := false
           | _ -> ());
          Core.iter_sub go e
  in
  go e;
  !ok

(** Rewrite calls [f d1..dk a..] to [f' a..]. *)
let rewrite_calls (f : Ident.t) (k : int) (f' : Ident.t) (e : Core.expr) :
    Core.expr =
  let rec go e =
    if List.exists (Ident.equal f) (binders_of e) then e
    else
      match Core.unfold_app e [] with
      | Core.Var g, args when Ident.equal g f && List.length args >= k ->
          let rest = List.filteri (fun i _ -> i >= k) args in
          Core.apps (Core.Var f') (List.map go rest)
      | _ -> Core.map_sub go e
  in
  go e

let transform_bind (b : Core.bind) : Core.bind * bool =
  match b.b_expr with
  | Core.Lam (vs, body) -> (
      match dict_prefix vs with
      | [], _ -> (b, false)
      | ds, others when others <> [] && all_calls_saturated b.b_name ds body ->
          let f' = Ident.gensym (Ident.text b.b_name ^ "_in") in
          let body' = rewrite_calls b.b_name (List.length ds) f' body in
          let inner =
            Core.Let
              ( Core.Rec [ { Core.b_name = f'; b_expr = Core.Lam (others, body') } ],
                Core.Var f' )
          in
          ({ b with b_expr = Core.Lam (ds, inner) }, true)
      | _ -> (b, false))
  | _ -> (b, false)

(** Apply to every self-recursive top-level binding. Mutually recursive
    groups are left alone (§8.3: "It is simplest to pass all dictionaries
    to each recursive call within the letrec"). *)
let program (p : Core.program) : Core.program =
  let binds =
    List.map
      (function
        | Core.Rec [ b ]
          when Ident.Set.mem b.b_name (Core.free_vars b.b_expr) -> (
            match transform_bind b with
            | b', true ->
                (* the recursion now lives in the inner letrec *)
                if Ident.Set.mem b.b_name (Core.free_vars b'.b_expr) then
                  Core.Rec [ b' ]
                else Core.Nonrec b'
            | b', false -> Core.Rec [ b' ])
        | g -> g)
      p.p_binds
  in
  { p with p_binds = binds }
